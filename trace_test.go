package doacross

import (
	"fmt"
	"testing"

	"doacross/internal/tac"
)

// TestTraceAttribution is the stall-attribution property test: over ~200
// generated loops, traced on both simulator engines, every non-issue cycle
// must carry exactly one attributed cause — per processor, issued +
// sync-wait + window-wait + drain cycles equal the machine's total cycles —
// and the attributed wait-stall and signal totals must agree bit-exactly
// with the engines' own Timing counters. The two engines must also produce
// identical traces (same processor assignment, issue cycles and stall
// spans), the trace-level form of their documented timing bit-identity.
func TestTraceAttribution(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 50
	}
	loops := differentialCorpus(t, count)
	machines := []Machine{NewMachine(4, 1), Machine2Issue(2), UniformMachine(2, 1)}
	const n = 12
	procsChoices := []int{0, 3, 1}
	for i, gl := range loops {
		gl := gl
		name := fmt.Sprintf("%03d-%s", i, gl.Template)
		t.Run(name, func(t *testing.T) {
			p, err := CompileLoop(gl.AST)
			if err != nil {
				t.Fatalf("compile:\n%s\n%v", gl.Source, err)
			}
			m := machines[i%len(machines)]
			s, err := p.ScheduleSync(m)
			if err != nil {
				t.Fatalf("schedule on %s: %v", m.Name, err)
			}
			opt := SimOptions{Lo: 1, Hi: n, Procs: procsChoices[i%len(procsChoices)]}

			// Recurrence engine, traced; SimulateTraced runs Check itself.
			tm, ttr, err := SimulateTraced(s, opt)
			if err != nil {
				t.Fatalf("traced recurrence sim:\n%s\n%v", gl.Source, err)
			}

			// Detailed engine, traced, with real data.
			rtr := &SimTracer{}
			ropt := opt
			ropt.Tracer = rtr
			rm, err := Execute(s, p.SeedStore(n, uint64(i)*2654435761+1), ropt)
			if err != nil {
				t.Fatalf("traced detailed sim:\n%s\n%v", gl.Source, err)
			}
			if err := rtr.Check(rm); err != nil {
				t.Errorf("detailed-engine attribution:\n%s\n%v", gl.Source, err)
			}
			if rm.Total != tm.Total || rm.StallCycles != tm.StallCycles || rm.SignalsSent != tm.SignalsSent {
				t.Fatalf("engines disagree: detailed %+v vs recurrence %+v", rm, tm)
			}

			// Trace-level bit-identity across engines.
			if len(ttr.Iters) != len(rtr.Iters) {
				t.Fatalf("trace covers %d vs %d iterations", len(ttr.Iters), len(rtr.Iters))
			}
			for k := range ttr.Iters {
				a, b := &ttr.Iters[k], &rtr.Iters[k]
				if a.Proc != b.Proc || a.Start != b.Start || a.Done != b.Done {
					t.Fatalf("iteration %d: recurrence proc=%d start=%d done=%d, detailed proc=%d start=%d done=%d",
						k, a.Proc, a.Start, a.Done, b.Proc, b.Start, b.Done)
				}
				for r := range a.Rows {
					if a.Rows[r] != b.Rows[r] {
						t.Fatalf("iteration %d row %d issued at %d vs %d", k, r, a.Rows[r], b.Rows[r])
					}
				}
				if len(a.Stalls) != len(b.Stalls) {
					t.Fatalf("iteration %d: %d vs %d stall spans:\n%v\n%v", k, len(a.Stalls), len(b.Stalls), a.Stalls, b.Stalls)
				}
				for j := range a.Stalls {
					if a.Stalls[j] != b.Stalls[j] {
						t.Fatalf("iteration %d stall %d: %+v vs %+v", k, j, a.Stalls[j], b.Stalls[j])
					}
				}
			}

			// The derived utilization must balance to the cycle.
			u := ttr.Utilization()
			if got := u.IssuedCycles + u.SyncWaitCycles + u.WindowWaitCycles + u.DrainCycles; got != u.Procs*u.Cycles {
				t.Errorf("utilization books: %d attributed cycles over %d procs x %d cycles", got, u.Procs, u.Cycles)
			}
			if u.SyncWaitCycles+u.WindowWaitCycles != tm.StallCycles {
				t.Errorf("utilization wait cycles %d+%d != engine stall cycles %d", u.SyncWaitCycles, u.WindowWaitCycles, tm.StallCycles)
			}
			if u.LBDWaitCycles+u.LFDWaitCycles != u.SyncWaitCycles {
				t.Errorf("LBD %d + LFD %d wait cycles != sync wait cycles %d", u.LBDWaitCycles, u.LFDWaitCycles, u.SyncWaitCycles)
			}
			if u.SignalsSent != tm.SignalsSent {
				t.Errorf("utilization signals %d != engine %d", u.SignalsSent, tm.SignalsSent)
			}
		})
	}
}

// TestTraceAttributionWindow exercises the bounded-signal-window stall path
// (CauseWindowWait) explicitly: the same corpus under a tight window must
// still attribute every cycle on both engines.
func TestTraceAttributionWindow(t *testing.T) {
	loops := differentialCorpus(t, 40)
	const n = 10
	for i, gl := range loops {
		gl := gl
		t.Run(fmt.Sprintf("%03d-%s", i, gl.Template), func(t *testing.T) {
			p, err := CompileLoop(gl.AST)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			s, err := p.ScheduleSync(NewMachine(2, 1))
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			// The tightest always-valid window: one past the largest
			// dependence distance (equality on an LFD pair is rejected).
			maxDist := 1
			for _, in := range s.Prog.Instrs {
				if in.Op == tac.Wait && in.SigDist > maxDist {
					maxDist = in.SigDist
				}
			}
			opt := SimOptions{Lo: 1, Hi: n, Procs: 4, Window: maxDist + 1}
			tm, _, err := SimulateTraced(s, opt)
			if err != nil {
				t.Fatalf("traced recurrence sim (window %d): %v", opt.Window, err)
			}
			rtr := &SimTracer{}
			ropt := opt
			ropt.Tracer = rtr
			rm, err := Execute(s, p.SeedStore(n, uint64(i)+99), ropt)
			if err != nil {
				t.Fatalf("traced detailed sim (window %d): %v", opt.Window, err)
			}
			if err := rtr.Check(rm); err != nil {
				t.Errorf("detailed-engine attribution: %v", err)
			}
			if rm.Total != tm.Total || rm.StallCycles != tm.StallCycles {
				t.Fatalf("engines disagree under window: %+v vs %+v", rm, tm)
			}
		})
	}
}
