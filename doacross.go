// Package doacross reproduces Rong-Yuh Hwang's IPPS 1997 paper "An
// Efficient Technique of Instruction Scheduling on a Superscalar-Based
// Multiprocessor": synchronization-aware instruction scheduling for DOACROSS
// loops executing one iteration per superscalar processor.
//
// The package is a facade over the full pipeline:
//
//	source loop ─lang→ AST ─dep→ dependences ─syncop→ DOACROSS+Send/Wait
//	  ─tac→ DLX-style code ─dfg→ data-flow graph (Sig/Wat/Sigwat partition)
//	  ─core→ schedule (list baseline or the paper's technique)
//	  ─sim→ parallel execution time on n processors
//
// Quick start:
//
//	prog, err := doacross.Compile(`
//	DO I = 1, N
//	  S1: B[I] = A[I-2] + E[I+1]
//	  S2: G[I-3] = A[I-1] * E[I+2]
//	  S3: A[I] = B[I] + C[I+3]
//	ENDDO`)
//	m := doacross.Machine4Issue(1)
//	list, _ := prog.ScheduleList(m)
//	sync, _ := prog.ScheduleSync(m)
//	fmt.Println(doacross.Simulate(list, 100).Total) // paper's T_a-4-1
//	fmt.Println(doacross.Simulate(sync, 100).Total) // paper's T_b-4-1
package doacross

import (
	"context"
	"fmt"
	"strings"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/dlx"
	"doacross/internal/dlxisa"
	"doacross/internal/exact"
	"doacross/internal/lang"
	"doacross/internal/migrate"
	"doacross/internal/model"
	"doacross/internal/passes"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Re-exported pipeline types. The implementation lives in internal packages;
// these aliases are the public names.
type (
	// Loop is a parsed DO/DOACROSS loop.
	Loop = lang.Loop
	// Store is the shared-memory state simulations execute against.
	Store = lang.Store
	// Machine is a superscalar processor configuration.
	Machine = dlx.Config
	// Schedule is a cycle-by-cycle issue assignment for one iteration.
	Schedule = core.Schedule
	// PairSpan describes one synchronization pair's placement.
	PairSpan = core.PairSpan
	// Timing is a simulation result.
	Timing = sim.Timing
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimTracer is the opt-in cycle-accurate machine trace with stall-cause
	// attribution (set SimOptions.Tracer, or use SimulateTraced).
	SimTracer = sim.Tracer
	// MachineUtilization is the per-FU/per-cycle utilization report derived
	// from a SimTracer.
	MachineUtilization = sim.Utilization
	// Dependence is one data dependence of a loop.
	Dependence = dep.Dependence
	// SyncOptions holds ablation knobs for the new scheduler.
	SyncOptions = core.SyncOptions
	// Scheduler is the pluggable scheduling-backend seam: the paper's
	// heuristic, the list baselines, the never-degrades Best pick and the
	// exact branch-and-bound solver all implement it.
	Scheduler = core.Scheduler
	// ScheduleOutcome is a backend's schedule plus its optimality evidence
	// (objective value, proven lower bound, search-node count, diagnostic).
	ScheduleOutcome = core.Outcome
	// ExactOptions configures the exact branch-and-bound backend: the
	// objective's trip count and the search's node/time budget.
	ExactOptions = exact.Options
	// CompileOptions selects and configures the compilation passes: the
	// optional unroll/migrate/if-conversion passes, flow-only
	// synchronization, artifact dumps, and a pass tracer.
	CompileOptions = passes.Options
	// PassTrace records a compilation's per-pass timings, dumped artifacts
	// and diagnostics.
	PassTrace = passes.Trace
	// PassTiming is one pass execution time.
	PassTiming = passes.Timing
	// Diagnostic is a structured compile error or warning carrying its
	// source line:col and statement label.
	Diagnostic = diag.Diagnostic
	// Diagnostics is an ordered diagnostic collection.
	Diagnostics = diag.List
	// SourcePos is a source position (line, column).
	SourcePos = diag.Pos
	// Severity grades a Diagnostic: SeverityError fails the compilation (or
	// the lint run), SeverityWarning is advisory.
	Severity = diag.Severity
)

// Diagnostic severities.
const (
	SeverityError   = diag.Error
	SeverityWarning = diag.Warning
)

// Machine constructors mirroring the paper's configurations.

// NewMachine returns the paper's machine with the given issue width and
// function units of each class (multiplier 3 cycles, divider 6, others 1).
func NewMachine(issue, fuCount int) Machine { return dlx.Standard(issue, fuCount) }

// Machine2Issue returns the 2-issue configuration with fuCount units each.
func Machine2Issue(fuCount int) Machine { return dlx.Standard(2, fuCount) }

// Machine4Issue returns the 4-issue configuration with fuCount units each.
func Machine4Issue(fuCount int) Machine { return dlx.Standard(4, fuCount) }

// UniformMachine returns a machine with single-cycle latencies everywhere
// (the paper's Fig. 4 setting).
func UniformMachine(issue, fuCount int) Machine { return dlx.Uniform(issue, fuCount) }

// PaperMachines returns the four Table 2 configurations.
func PaperMachines() []Machine { return dlx.PaperConfigs() }

// Program is a fully analyzed and compiled DOACROSS loop.
type Program struct {
	// Loop is the parsed source loop (after any transforming passes).
	Loop *Loop
	// Analysis holds its data dependences.
	Analysis *dep.Analysis
	// Sync is the DOACROSS form with Send_Signal/Wait_Signal inserted.
	Sync *syncop.Loop
	// Code is the compiled three-address body of one iteration.
	Code *tac.Program
	// Graph is the synchronization-augmented data-flow graph.
	Graph *dfg.Graph
	// Trace is the pass manager's record of this compilation: per-pass
	// timings, the artifacts requested via CompileOptions.Dump, and all
	// collected diagnostics (e.g. conservative-dependence warnings with
	// source positions).
	Trace *PassTrace
	// Diags are the compile diagnostics (warnings for a successful
	// compilation).
	Diags Diagnostics
}

// Parse parses loop source without compiling it.
func Parse(src string) (*Loop, error) { return lang.Parse(src) }

// Compile parses and compiles a loop through the default pass pipeline.
func Compile(src string) (*Program, error) {
	return CompileWith(src, CompileOptions{})
}

// CompileLoop compiles an already parsed loop through the default pass
// pipeline.
func CompileLoop(loop *Loop) (*Program, error) {
	return CompileLoopWith(loop, CompileOptions{})
}

// CompileWith parses and compiles a loop through a pass pipeline configured
// by opt: optional unroll/migrate passes, if-conversion control, flow-only
// synchronization, and per-pass artifact dumps (Program.Trace).
func CompileWith(src string, opt CompileOptions) (*Program, error) {
	return CompileWithContext(context.Background(), src, opt)
}

// CompileWithContext is CompileWith under a cancellation context, checked
// between compilation passes: a compilation caught by a deadline stops at
// the next pass boundary and reports the context's error.
func CompileWithContext(ctx context.Context, src string, opt CompileOptions) (*Program, error) {
	pctx, err := passes.CompileCtx(ctx, src, opt)
	if err != nil {
		return nil, err
	}
	return programFrom(pctx), nil
}

// CompileLoopWith is CompileWith over an already parsed loop. Transforming
// passes do not modify the input loop; Program.Loop holds the rewritten
// copy.
func CompileLoopWith(loop *Loop, opt CompileOptions) (*Program, error) {
	return CompileLoopWithContext(context.Background(), loop, opt)
}

// CompileLoopWithContext is CompileLoopWith under a cancellation context.
func CompileLoopWithContext(ctx context.Context, loop *Loop, opt CompileOptions) (*Program, error) {
	pctx, err := passes.CompileLoopCtx(ctx, loop, opt)
	if err != nil {
		return nil, err
	}
	return programFrom(pctx), nil
}

// programFrom maps a completed compile context onto the facade Program.
func programFrom(ctx *passes.Context) *Program {
	return &Program{
		Loop: ctx.Loop, Analysis: ctx.Analysis, Sync: ctx.Sync,
		Code: ctx.Code, Graph: ctx.Graph, Trace: ctx.Trace, Diags: ctx.Diags,
	}
}

// CompileBest compiles the loop twice — once with the precise dependence
// analysis, once with the conservative baseline webs (the seed analyzer's
// verdicts) — schedules both with ScheduleBest on m, and keeps whichever
// compilation simulates faster over n iterations, preferring the precise
// analysis on ties. This is the analysis-level never-degrades guard,
// mirroring ScheduleBest's backend-level one: the precise analysis provably
// never admits an invalid schedule (every refinement carries machine-checked
// evidence), but the scheduling heuristic is not monotone in the constraint
// set, so on rare loops the conservative webs happen to steer it better.
// The returned bool reports whether the precise compilation was kept.
func CompileBest(src string, m Machine, n int, opt CompileOptions) (*Program, bool, error) {
	opt.BaselineDeps = false
	precise, err := CompileWith(src, opt)
	if err != nil {
		return nil, false, err
	}
	opt.BaselineDeps = true
	baseline, err := CompileWith(src, opt)
	if err != nil {
		return nil, false, err
	}
	ps, err := precise.ScheduleBest(m)
	if err != nil {
		return nil, false, err
	}
	bs, err := baseline.ScheduleBest(m)
	if err != nil {
		return nil, false, err
	}
	if Simulate(bs, n).Total < Simulate(ps, n).Total {
		return baseline, false, nil
	}
	return precise, true, nil
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// IsDoall reports whether the loop has no loop-carried dependences.
func (p *Program) IsDoall() bool { return p.Analysis.IsDoall() }

// Dependences returns the loop-carried dependences requiring
// synchronization.
func (p *Program) Dependences() []Dependence { return p.Analysis.Carried() }

// CountLexical returns how many carried dependences are lexically forward
// (LFD) and backward (LBD).
func (p *Program) CountLexical() (lfd, lbd int) { return p.Analysis.CountLexical() }

// DoacrossSource renders the synchronized loop (the paper's Fig. 1(b) view).
func (p *Program) DoacrossSource() string { return p.Sync.String() }

// Listing renders the compiled three-address code (the Fig. 2 view).
func (p *Program) Listing() string { return tac.Listing(p.Code.Instrs) }

// GraphInfo summarizes the data-flow graph partition (the Fig. 3 view).
func (p *Program) GraphInfo() string { return p.Graph.SyncInfo() }

// ScheduleList builds the baseline list schedule with critical-path
// priority (traditional list scheduling).
func (p *Program) ScheduleList(m Machine) (*Schedule, error) {
	return core.List(p.Graph, m, core.CriticalPath)
}

// ScheduleListProgramOrder builds the baseline with program-order priority
// (the construction of the paper's Fig. 4(a)).
func (p *Program) ScheduleListProgramOrder(m Machine) (*Schedule, error) {
	return core.List(p.Graph, m, core.ProgramOrder)
}

// ScheduleSync builds the paper's synchronization-aware schedule.
func (p *Program) ScheduleSync(m Machine) (*Schedule, error) {
	return core.Sync(p.Graph, m)
}

// ScheduleSyncWithOptions builds the new schedule with ablation knobs.
func (p *Program) ScheduleSyncWithOptions(m Machine, opt SyncOptions) (*Schedule, error) {
	return core.SyncWithOptions(p.Graph, m, opt)
}

// ScheduleBest builds both schedules and returns the better one, realizing
// the paper's never-degrades guarantee.
func (p *Program) ScheduleBest(m Machine) (*Schedule, error) {
	return core.Best(p.Graph, m)
}

// Scratch is reusable scheduler working state: every buffer the heuristic
// schedulers need, grown once and recycled, so steady-state scheduling with a
// warm Scratch allocates nothing. A Scratch is not safe for concurrent use —
// give each worker its own.
type Scratch = core.Scratch

// NewScratch returns fresh scheduler scratch state for ScheduleWith.
func NewScratch() *Scratch { return core.NewScratch() }

// ScheduleWith builds a schedule with the named heuristic backend ("sync" —
// also the empty name — "list", "order" or "best") into sc's reusable
// buffers. The returned schedule is BORROWED: its storage is recycled by the
// next ScheduleWith call on the same Scratch. Clone it to keep it. Use this
// in steady-state loops (services, sweeps) where Schedule's per-call
// allocation shows up; the exact backend is excluded because its search
// state dwarfs the schedule allocation.
func (p *Program) ScheduleWith(backend string, m Machine, sc *Scratch) (*Schedule, error) {
	switch backend {
	case "", "sync":
		return sc.Sync(p.Graph, m)
	case "list":
		return sc.List(p.Graph, m, core.CriticalPath)
	case "order":
		return sc.List(p.Graph, m, core.ProgramOrder)
	case "best":
		return sc.Best(p.Graph, m)
	}
	return nil, fmt.Errorf("doacross: unknown scratch backend %q (want sync, list, order or best)", backend)
}

// BackendNames lists the recognized scheduling backend names ("sync" the
// paper's heuristic, "list" and "order" the baselines, "best" the
// never-degrades pick, "exact" the branch-and-bound solver).
func BackendNames() []string { return passes.BackendNames() }

// Backend resolves a scheduling backend by name with default knobs; the
// empty name is "sync". Unknown names fail with the accepted list.
func Backend(name string) (Scheduler, error) {
	return passes.Backend(name, passes.BackendConfig{})
}

// Schedule builds a schedule through the named backend. Unlike the
// Schedule* shorthands it returns the backend's full outcome, including any
// optimality evidence the exact backend proves.
func (p *Program) Schedule(backend string, m Machine) (*ScheduleOutcome, error) {
	sch, err := Backend(backend)
	if err != nil {
		return nil, err
	}
	return sch.Schedule(p.Graph, m)
}

// ScheduleExact runs the branch-and-bound solver (internal/exact): it
// minimizes the paper's T = (n/d)(i-j) + l directly and returns the schedule
// with its proof — Optimal when the search completed, otherwise the best
// schedule found plus a proven lower bound and a budget diagnostic.
func (p *Program) ScheduleExact(m Machine, opt ExactOptions) (*ScheduleOutcome, error) {
	return exact.Backend{Opt: opt}.Schedule(p.Graph, m)
}

// Simulate computes the parallel execution time of n iterations on n
// processors (the paper's setting) using the recurrence simulator.
func Simulate(s *Schedule, n int) Timing {
	return sim.MustTime(s, sim.Options{Lo: 1, Hi: n})
}

// SimulateOptions computes the parallel execution time with explicit bounds
// and processor count.
func SimulateOptions(s *Schedule, opt SimOptions) (Timing, error) {
	return sim.Time(s, opt)
}

// Execute runs the detailed simulator against the store (mutating it) and
// returns the timing. The store must define the loop bounds' scalars (e.g.
// N); use SeedStore for synthetic data.
func Execute(s *Schedule, st *Store, opt SimOptions) (Timing, error) {
	return sim.Run(s, st, opt)
}

// SimulateTraced simulates with a cycle-accurate tracer attached, verifies
// that the stall-cause attribution accounts for every non-issue cycle
// bit-exactly against the timing counters, and returns both. Reuses
// opt.Tracer when the caller supplies one.
func SimulateTraced(s *Schedule, opt SimOptions) (Timing, *SimTracer, error) {
	tr := opt.Tracer
	if tr == nil {
		tr = &SimTracer{}
		opt.Tracer = tr
	}
	tm, err := sim.Time(s, opt)
	if err != nil {
		return tm, nil, err
	}
	if err := tr.Check(tm); err != nil {
		return tm, nil, err
	}
	return tm, tr, nil
}

// SeedStore builds a deterministic pseudo-random store covering the loop's
// arrays for n iterations.
func (p *Program) SeedStore(n int, seed uint64) *Store {
	st := p.Loop.SeedStore(n, marginFor(p.Loop, n), seed)
	return st
}

// marginFor picks a safe subscript margin from the loop's affine offsets.
// It considers every array reference of each statement — guard condition,
// LHS and RHS — via the same helper the interpreter uses, so conditional
// loops cannot index outside the seeded margin.
func marginFor(l *Loop, n int) int {
	margin := 8
	for _, st := range l.Body {
		for _, r := range lang.StmtArrayRefs(st) {
			if _, off, ok := lang.AffineIndex(r.Index, l.Var); ok {
				if off < 0 {
					off = -off
				}
				if off+2 > margin {
					margin = off + 2
				}
			}
		}
	}
	return margin
}

// RunSequential executes the loop sequentially (reference semantics).
func (p *Program) RunSequential(st *Store) error { return p.Loop.Run(st) }

// Predict applies the paper's LBD loop theorem to a schedule.
func Predict(s *Schedule, n int) int { return model.Predict(s, n) }

// Verify checks a schedule with the independent static verifier
// (internal/check): it re-derives the dependence edges from the compiled
// code attached to the schedule — deliberately sharing no code with the
// data-flow graph or the schedulers — and re-checks intra-iteration
// dependence preservation, the paper's synchronization conditions 1 and 2,
// issue-width and function-unit feasibility, cross-iteration deadlock
// freedom and the LBD accounting. An empty list means the schedule passed;
// findings of Error severity mean it must not be executed.
//
// This is the same checker the batch pipeline applies to every schedule
// before serving it. CompileOptions.Verify additionally runs it (plus the
// linter) as a compilation pass.
func Verify(s *Schedule) Diagnostics { return check.Verify(s) }

// VerifyTiming audits a simulated execution time for a schedule against the
// analytical model: total must cover at least one full iteration and at
// least the LBD loop theorem's closed-form bound T = (n/d)(i-j) + l.
func VerifyTiming(s *Schedule, total, n int) Diagnostics {
	return check.VerifyTiming(s, total, n)
}

// Lint runs the DOACROSS synchronization linter over a parsed loop's
// explicit Send_Signal/Wait_Signal statements: statically deadlocking
// waits, dead or duplicate sends, mismatched or non-positive distances,
// self-synchronization, and redundant waits subsumed by transitive
// synchronization. Findings carry source positions.
func Lint(loop *Loop) Diagnostics { return check.Lint(loop) }

// Lint runs the synchronization linter over the program: the explicit sync
// statements of its source loop and the compiler-inserted synchronization
// of its DOACROSS form.
func (p *Program) Lint() Diagnostics {
	return append(check.Lint(p.Loop), check.LintSync(p.Sync)...)
}

// Speedup returns the Table 3 improvement percentage between two times.
func Speedup(ta, tb int) float64 { return model.Speedup(ta, tb) }

// Compare schedules a program both ways on a machine and reports the paper's
// headline numbers for n iterations.
type Comparison struct {
	Machine  string
	N        int
	ListTime int
	SyncTime int
	// Improvement is the Table 3 percentage.
	Improvement float64
	// ListLBD and SyncLBD count remaining lexically backward pairs.
	ListLBD, SyncLBD int
	// List and Sync are the two schedules. On the aggregate returned by
	// CompareFile they are nil (a summed comparison has no single
	// schedule); the per-loop schedules live in PerLoop.
	List, Sync *Schedule
	// PerLoop holds the individual loop comparisons behind an aggregate
	// built by CompareFile, in source order. Nil on single-loop
	// comparisons.
	PerLoop []Comparison
}

// Compare runs the full experiment for one loop on one machine.
func (p *Program) Compare(m Machine, n int) (Comparison, error) {
	list, err := p.ScheduleList(m)
	if err != nil {
		return Comparison{}, err
	}
	syn, err := p.ScheduleSync(m)
	if err != nil {
		return Comparison{}, err
	}
	lt, err := sim.Time(list, sim.Options{Lo: 1, Hi: n})
	if err != nil {
		return Comparison{}, err
	}
	st, err := sim.Time(syn, sim.Options{Lo: 1, Hi: n})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Machine:     m.Name,
		N:           n,
		ListTime:    lt.Total,
		SyncTime:    st.Total,
		Improvement: model.Speedup(lt.Total, st.Total),
		ListLBD:     list.NumLBD(),
		SyncLBD:     syn.NumLBD(),
		List:        list,
		Sync:        syn,
	}, nil
}

// Migration is the result of source-level synchronization migration.
type Migration = migrate.Result

// Migrate applies the cited statement-reordering baseline (synchronization
// migration) to the program's loop, returning the reordered loop and
// before/after LBD counts. Compile the result to measure its effect:
//
//	mig, _ := prog.Migrate()
//	prog2, _ := doacross.CompileLoop(mig.Loop)
func (p *Program) Migrate() (*Migration, error) {
	return migrate.Migrate(p.Analysis)
}

// SourceFile is a parsed multi-loop source file.
type SourceFile = lang.File

// ParseSource parses a source file containing one or more loops.
func ParseSource(src string) (*SourceFile, error) { return lang.ParseFile(src) }

// CompileFile parses and compiles every loop of a multi-loop source file.
func CompileFile(src string) ([]*Program, error) {
	f, err := lang.ParseFile(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Program, 0, len(f.Loops))
	for i, l := range f.Loops {
		p, err := CompileLoop(l)
		if err != nil {
			return nil, fmt.Errorf("loop %d: %w", i+1, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// CompareFile runs the full list-vs-new experiment over every loop of a
// source file and returns the summed times (the per-benchmark rows of the
// paper's Table 2 are exactly this, applied to each extracted suite). The
// aggregate's List/Sync schedules are nil; the per-loop breakdown — each
// loop's times, LBD counts and schedules — is attached as PerLoop.
func CompareFile(src string, m Machine, n int) (Comparison, error) {
	progs, err := CompileFile(src)
	if err != nil {
		return Comparison{}, err
	}
	total := Comparison{Machine: m.Name, N: n, PerLoop: make([]Comparison, 0, len(progs))}
	for _, p := range progs {
		c, err := p.Compare(m, n)
		if err != nil {
			return Comparison{}, err
		}
		total.ListTime += c.ListTime
		total.SyncTime += c.SyncTime
		total.ListLBD += c.ListLBD
		total.SyncLBD += c.SyncLBD
		total.PerLoop = append(total.PerLoop, c)
	}
	total.Improvement = model.Speedup(total.ListTime, total.SyncTime)
	return total, nil
}

// Unroll unrolls the program's loop by factor k and recompiles it, running
// the pass pipeline with the unroll pass inserted. One Send/Wait pair then
// covers k original iterations, amortizing synchronization overhead. The
// unrolled loop is equivalent to the original when the trip count divides
// by k.
func (p *Program) Unroll(k int) (*Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("unroll: factor %d < 1", k)
	}
	return CompileLoopWith(p.Loop, CompileOptions{Unroll: k})
}

// MachineCode is an assembled DLX-like binary of one iteration body.
type MachineCode = dlxisa.Program

// Assemble lowers the program's three-address code to DLX-like machine code
// (register allocation, constant pool, binary encoding). The generated code
// may address array elements in [minIdx, maxIdx].
func (p *Program) Assemble(minIdx, maxIdx int) (*MachineCode, error) {
	return dlxisa.Assemble(p.Code, minIdx, maxIdx)
}

// String renders the comparison.
func (c Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s, n=%d:\n", c.Machine, c.N)
	fmt.Fprintf(&sb, "  list scheduling: %6d cycles (%d LBD pairs)\n", c.ListTime, c.ListLBD)
	fmt.Fprintf(&sb, "  new  scheduling: %6d cycles (%d LBD pairs)\n", c.SyncTime, c.SyncLBD)
	fmt.Fprintf(&sb, "  improvement:     %6.2f%%\n", c.Improvement)
	return sb.String()
}
