package doacross

// Extension benchmarks: the migration comparison, the bounded-signal-window
// sweep, and the machine-code backend.
import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/perfect"
	"doacross/internal/tables"
)

// BenchmarkMigration runs the migration-vs-scheduling extension experiment
// and reports the headline gains.
func BenchmarkMigration(b *testing.B) {
	suites := perfect.MustSuites()
	var r *tables.MigrationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = tables.RunMigration(suites, Machine4Issue(1), core.ProgramOrder)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Total.MigPct, "migration-gain-%")
	b.ReportMetric(r.Total.SyncPct, "new-sched-gain-%")
	b.ReportMetric(float64(r.Total.ConvertedByMig), "LBDs-converted")
}

// BenchmarkWindowSweep measures how bounded signal hardware throttles an
// otherwise LFD-converted loop (time at n=200 for several window sizes).
func BenchmarkWindowSweep(b *testing.B) {
	prog := MustCompile("DO I = 1, N\nA[I] = E[I]\nB[I+2] = A[I-3] * F[I+1]\nENDDO")
	s, err := prog.ScheduleSync(Machine4Issue(2))
	if err != nil {
		b.Fatal(err)
	}
	windows := []int{4, 6, 8, 32, 0} // the d=3 pair is LFD, so windows must exceed 3
	totals := make([]int, len(windows))
	for i := 0; i < b.N; i++ {
		for k, w := range windows {
			t, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 200, Window: w})
			if err != nil {
				b.Fatal(err)
			}
			totals[k] = t.Total
		}
	}
	b.ReportMetric(float64(totals[0]), "cycles-window4")
	b.ReportMetric(float64(totals[2]), "cycles-window8")
	b.ReportMetric(float64(totals[4]), "cycles-unbounded")
}

// BenchmarkUnroll reports per-element parallel time of the serialized chain
// at unroll factors 1, 2 and 4 — the synchronization-amortization ablation.
func BenchmarkUnroll(b *testing.B) {
	prog := MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	elements := 96
	cfg := Machine2Issue(1)
	per := make([]float64, 3)
	for i := 0; i < b.N; i++ {
		for k, factor := range []int{1, 2, 4} {
			p := prog
			if factor > 1 {
				var err error
				p, err = prog.Unroll(factor)
				if err != nil {
					b.Fatal(err)
				}
			}
			s, err := p.ScheduleSync(cfg)
			if err != nil {
				b.Fatal(err)
			}
			per[k] = float64(Simulate(s, elements/factor).Total) / float64(elements)
		}
	}
	b.ReportMetric(per[0], "cyc/elem-k1")
	b.ReportMetric(per[1], "cyc/elem-k2")
	b.ReportMetric(per[2], "cyc/elem-k4")
}

// BenchmarkISAAssemble measures assembly (selection + allocation + layout +
// encoding) of the Fig. 1 loop.
func BenchmarkISAAssemble(b *testing.B) {
	prog := MustCompile(fig1)
	for i := 0; i < b.N; i++ {
		code, err := prog.Assemble(1-8, 108)
		if err != nil {
			b.Fatal(err)
		}
		if len(code.Words) == 0 {
			b.Fatal("empty assembly")
		}
	}
}

// BenchmarkISAExecute measures binary execution of 100 iterations on the
// machine interpreter, relative to the reference interpreter's pace.
func BenchmarkISAExecute(b *testing.B) {
	prog := MustCompile(fig1)
	code, err := prog.Assemble(1-8, 108)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("machine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := prog.SeedStore(100, uint64(i))
			b.StartTimer()
			if err := code.Run(st, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := prog.SeedStore(100, uint64(i))
			b.StartTimer()
			if err := prog.RunSequential(st); err != nil {
				b.Fatal(err)
			}
		}
	})
}
