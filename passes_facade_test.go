package doacross

import (
	"strings"
	"testing"
)

const fig1Src = `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`

func TestCompileWithTraceAndDump(t *testing.T) {
	prog, err := CompileWith(fig1Src, CompileOptions{Dump: []string{"codegen", "graph"}})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Trace == nil || len(prog.Trace.Timings) == 0 {
		t.Fatal("CompileWith left no trace")
	}
	if a, ok := prog.Trace.Artifact("codegen"); !ok || a != prog.Listing() {
		t.Error("codegen artifact does not match Listing()")
	}
	if a, ok := prog.Trace.Artifact("graph"); !ok || a != prog.GraphInfo() {
		t.Error("graph artifact does not match GraphInfo()")
	}
	if _, ok := prog.Trace.Artifact("parse"); ok {
		t.Error("unrequested parse artifact dumped")
	}
}

// TestCompileEquivalence is the acceptance check that the thin wrappers over
// the default pipeline reproduce the historical Compile output exactly.
func TestCompileEquivalence(t *testing.T) {
	a := MustCompile(fig1Src)
	b, err := CompileWith(fig1Src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DoacrossSource() != b.DoacrossSource() ||
		a.Listing() != b.Listing() ||
		a.GraphInfo() != b.GraphInfo() {
		t.Error("CompileWith(zero options) diverges from Compile")
	}
}

func TestCompileWithUnroll(t *testing.T) {
	prog := MustCompile(fig1Src)
	un, err := prog.Unroll(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Loop.Body) != 6 {
		t.Errorf("unrolled body = %d statements, want 6", len(un.Loop.Body))
	}
	direct, err := CompileWith(fig1Src, CompileOptions{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Listing() != un.Listing() {
		t.Error("CompileOptions.Unroll diverges from Program.Unroll")
	}
	for _, k := range []int{0, -3} {
		if _, err := prog.Unroll(k); err == nil {
			t.Errorf("Unroll(%d) succeeded", k)
		}
	}
	if one, err := prog.Unroll(1); err != nil {
		t.Errorf("Unroll(1): %v", err)
	} else if one.Listing() != prog.Listing() {
		t.Error("Unroll(1) changed the program")
	}
}

func TestCompileDiagnosticPosition(t *testing.T) {
	_, err := Compile("DO I = 1, N\nS1: B[I] = ,\nENDDO")
	if err == nil {
		t.Fatal("bad source compiled")
	}
	var d *Diagnostic
	if dd, ok := err.(*Diagnostic); ok {
		d = dd
	} else {
		t.Fatalf("Compile error %T is not a *Diagnostic", err)
	}
	if d.Pos.Line != 2 {
		t.Errorf("error position = %v, want line 2", d.Pos)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("rendered error lacks position: %v", err)
	}
}

func TestCompareFilePerLoop(t *testing.T) {
	src := fig1Src + "\n" + "DO I = 1, N\nX[I] = X[I-1] + 1\nENDDO"
	m := NewMachine(4, 1)
	c, err := CompareFile(src, m, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PerLoop) != 2 {
		t.Fatalf("PerLoop = %d entries, want 2", len(c.PerLoop))
	}
	if c.List != nil || c.Sync != nil {
		t.Error("aggregate comparison carries schedules (documented nil)")
	}
	var lt, st int
	for i, pc := range c.PerLoop {
		if pc.List == nil || pc.Sync == nil {
			t.Errorf("per-loop comparison %d missing schedules", i)
		}
		lt += pc.ListTime
		st += pc.SyncTime
	}
	if lt != c.ListTime || st != c.SyncTime {
		t.Errorf("per-loop sums %d/%d diverge from aggregate %d/%d", lt, st, c.ListTime, c.SyncTime)
	}
}

// TestMarginForGuardRefs is the satellite bugfix check: the seeding margin
// must cover array offsets that appear only in a guard condition.
func TestMarginForGuardRefs(t *testing.T) {
	prog := MustCompile("DO I = 1, N\nS1: IF (E[I-9] > 0) A[I] = A[I-1] + 1\nENDDO")
	if got := marginFor(prog.Loop, 20); got < 11 {
		t.Errorf("marginFor = %d, want >= 11 (guard reads E[I-9])", got)
	}
	// The seeded store must execute the loop without indexing outside the
	// margin.
	st := prog.SeedStore(20, 7)
	if err := prog.RunSequential(st); err != nil {
		t.Errorf("sequential run over seeded store: %v", err)
	}
}
