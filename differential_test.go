package doacross

import (
	"fmt"
	"testing"

	"doacross/internal/perfect"
)

// differentialCorpus generates ~200 random loops by re-seeding the five
// paper benchmark profiles. Generation is deterministic, so failures are
// reproducible by name.
func differentialCorpus(t *testing.T, want int) []perfect.Loop {
	t.Helper()
	var out []perfect.Loop
	for variant := uint64(0); len(out) < want; variant++ {
		for _, p := range perfect.Profiles() {
			p.Name = fmt.Sprintf("%s/v%d", p.Name, variant)
			p.Seed = p.Seed ^ (variant * 0x9E3779B97F4A7C15)
			s, err := perfect.Generate(p)
			if err != nil {
				t.Fatalf("generate %s: %v", p.Name, err)
			}
			out = append(out, s.Loops...)
			if len(out) >= want {
				break
			}
		}
	}
	return out[:want]
}

// TestDifferentialExecution is the differential property test: for ~200
// generated loops, executing the synchronization-aware schedule with real
// data must produce exactly the final store of sequential execution, and
// the analytical Predict bound must never exceed the simulated time (Predict
// is documented as a lower bound, i.e. the allowed slack is zero).
func TestDifferentialExecution(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 50
	}
	loops := differentialCorpus(t, count)
	machines := []Machine{NewMachine(4, 1), Machine2Issue(2), UniformMachine(2, 1)}
	const n = 12
	for i, gl := range loops {
		gl := gl
		name := fmt.Sprintf("%03d-%s", i, gl.Template)
		t.Run(name, func(t *testing.T) {
			p, err := CompileLoop(gl.AST)
			if err != nil {
				t.Fatalf("compile:\n%s\n%v", gl.Source, err)
			}
			m := machines[i%len(machines)]
			s, err := p.ScheduleSync(m)
			if err != nil {
				t.Fatalf("schedule on %s: %v", m.Name, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}

			// Property 1: parallel execution == sequential execution.
			seq := p.SeedStore(n, uint64(i)*2654435761+1)
			par := seq.Clone()
			if err := p.RunSequential(seq); err != nil {
				t.Fatalf("sequential run:\n%s\n%v", gl.Source, err)
			}
			if _, err := Execute(s, par, SimOptions{Lo: 1, Hi: n}); err != nil {
				t.Fatalf("parallel execution:\n%s\n%v", gl.Source, err)
			}
			if d := seq.Diff(par); d != "" {
				t.Errorf("parallel store diverges from sequential:\n%s\n%s", gl.Source, d)
			}

			// Property 2: Predict never exceeds the simulated time.
			tm := Simulate(s, n)
			if pred := Predict(s, n); pred > tm.Total {
				t.Errorf("Predict = %d exceeds simulated total %d at n=%d:\n%s",
					pred, tm.Total, n, gl.Source)
			}
		})
	}
}
