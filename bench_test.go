package doacross

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Benchmarks that regenerate a result
// report it through b.ReportMetric, so `go test -bench .` reproduces the
// paper's numbers alongside the usual ns/op:
//
//	BenchmarkFig1SyncInsertion   Fig. 1  — synchronization insertion
//	BenchmarkFig2Codegen         Fig. 2  — three-address lowering
//	BenchmarkFig3GraphBuild      Fig. 3  — DFG + Sigwat partition
//	BenchmarkFig4                Fig. 4  — list vs new schedule + times
//	BenchmarkTable1              Table 1 — suite characteristics
//	BenchmarkTable2              Table 2 — parallel times, 4 configs
//	BenchmarkTable3              Table 3 — improvement percentages
//	BenchmarkSimFidelity         detailed vs recurrence simulator
//	BenchmarkAblation*           design-choice ablations
import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/lang"
	"doacross/internal/perfect"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tables"
	"doacross/internal/tac"
)

const benchN = 100 // the paper's trip count

// BenchmarkFig1SyncInsertion measures parse + dependence analysis +
// synchronization insertion for the Fig. 1 loop.
func BenchmarkFig1SyncInsertion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loop, err := lang.Parse(fig1)
		if err != nil {
			b.Fatal(err)
		}
		a := dep.Analyze(loop)
		sl := syncop.Insert(a, syncop.Options{})
		sends, waits := sl.NumOps()
		if sends != 1 || waits != 2 {
			b.Fatalf("unexpected sync ops %d/%d", sends, waits)
		}
	}
}

// BenchmarkFig2Codegen measures the DLX-style lowering.
func BenchmarkFig2Codegen(b *testing.B) {
	loop := lang.MustParse(fig1)
	a := dep.Analyze(loop)
	sl := syncop.Insert(a, syncop.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tac.Generate(sl)
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Instrs) != 28 {
			b.Fatalf("got %d instrs", len(p.Instrs))
		}
	}
}

// BenchmarkFig3GraphBuild measures DFG construction with the Sigwat
// partition and synchronization-path search.
func BenchmarkFig3GraphBuild(b *testing.B) {
	loop := lang.MustParse(fig1)
	a := dep.Analyze(loop)
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := dfg.Build(p, a)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.SyncPaths()) != 1 {
			b.Fatal("missing sync path")
		}
	}
}

// BenchmarkFig4 regenerates the Fig. 4 experiment: both schedules at
// 4-issue and their parallel times. Metrics report the headline numbers.
func BenchmarkFig4(b *testing.B) {
	prog := MustCompile(fig1)
	m := UniformMachine(4, 1)
	var ta, tb int
	for i := 0; i < b.N; i++ {
		list, err := prog.ScheduleListProgramOrder(m)
		if err != nil {
			b.Fatal(err)
		}
		syn, err := prog.ScheduleSync(m)
		if err != nil {
			b.Fatal(err)
		}
		ta = Simulate(list, benchN).Total
		tb = Simulate(syn, benchN).Total
	}
	b.ReportMetric(float64(ta), "list-cycles")
	b.ReportMetric(float64(tb), "new-cycles")
	b.ReportMetric(Speedup(ta, tb), "improvement-%")
}

// BenchmarkFig4ListSchedule isolates the baseline scheduler.
func BenchmarkFig4ListSchedule(b *testing.B) {
	prog := MustCompile(fig1)
	m := UniformMachine(4, 1)
	for i := 0; i < b.N; i++ {
		if _, err := prog.ScheduleListProgramOrder(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SyncSchedule isolates the new scheduler.
func BenchmarkFig4SyncSchedule(b *testing.B) {
	prog := MustCompile(fig1)
	m := UniformMachine(4, 1)
	for i := 0; i < b.N; i++ {
		if _, err := prog.ScheduleSync(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the benchmark-characteristics table.
func BenchmarkTable1(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		suites, err := perfect.Suites()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, s := range suites {
			c, err := s.Characteristics()
			if err != nil {
				b.Fatal(err)
			}
			total += c.LBD
		}
	}
	b.ReportMetric(float64(total), "total-LBD")
}

// BenchmarkTable2 regenerates the full Table 2 experiment (5 suites x 4
// machine configurations x 2 schedulers, 100 iterations each loop) and
// reports the grand totals.
func BenchmarkTable2(b *testing.B) {
	var r *tables.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = tables.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for k := 0; k < tables.NumConfigs; k++ {
		b.ReportMetric(float64(r.Total2.Ta[k]), "Ta-cfg"+string(rune('1'+k)))
		b.ReportMetric(float64(r.Total2.Tb[k]), "Tb-cfg"+string(rune('1'+k)))
	}
}

// BenchmarkTable3 regenerates the improvement percentages.
func BenchmarkTable3(b *testing.B) {
	var r *tables.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = tables.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Summary2Issue, "mean-improvement-2issue-%")
	b.ReportMetric(r.Summary4Issue, "mean-improvement-4issue-%")
}

// BenchmarkSimFidelity compares the two simulator engines on the same
// schedule: the detailed executing simulator must produce the identical
// cycle count the recurrence model computes, at higher cost.
func BenchmarkSimFidelity(b *testing.B) {
	prog := MustCompile(fig1)
	s, err := prog.ScheduleSync(Machine4Issue(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("recurrence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Simulate(s, benchN).Total == 0 {
				b.Fatal("zero time")
			}
		}
	})
	b.Run("detailed", func(b *testing.B) {
		want := Simulate(s, benchN).Total
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := prog.SeedStore(benchN, uint64(i))
			b.StartTimer()
			t, err := Execute(s, st, SimOptions{Lo: 1, Hi: benchN})
			if err != nil {
				b.Fatal(err)
			}
			if t.Total != want {
				b.Fatalf("detailed %d != recurrence %d", t.Total, want)
			}
		}
	})
}

// ablationCycles sums the simulated parallel time of FLQ52's DOACROSS loops
// under the sync scheduler with the given options.
func ablationCycles(b *testing.B, opt core.SyncOptions) int {
	b.Helper()
	suite, err := perfect.Generate(perfect.Profiles()[0]) // FLQ52
	if err != nil {
		b.Fatal(err)
	}
	m := Machine4Issue(1)
	total := 0
	for _, l := range suite.Doacross() {
		prog, err := CompileLoop(l.AST)
		if err != nil {
			b.Fatal(err)
		}
		s, err := prog.ScheduleSyncWithOptions(m, opt)
		if err != nil {
			b.Fatal(err)
		}
		t, err := sim.Time(s, sim.Options{Lo: 1, Hi: benchN})
		if err != nil {
			b.Fatal(err)
		}
		total += t.Total
	}
	return total
}

func benchAblation(b *testing.B, opt core.SyncOptions) {
	var cycles int
	for i := 0; i < b.N; i++ {
		cycles = ablationCycles(b, opt)
	}
	b.ReportMetric(float64(cycles), "FLQ52-cycles")
}

// BenchmarkAblationFull is the reference point: the complete technique.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, core.SyncOptions{}) }

// BenchmarkAblationSPOrder sorts synchronization paths ascending instead of
// the paper's descending (n/d)·|SP| order.
func BenchmarkAblationSPOrder(b *testing.B) { benchAblation(b, core.SyncOptions{AscendingSP: true}) }

// BenchmarkAblationContiguity disables lazy waits (the contiguous-SP rule at
// the path head).
func BenchmarkAblationContiguity(b *testing.B) { benchAblation(b, core.SyncOptions{NoLazyWaits: true}) }

// BenchmarkAblationPairArcs disables the LBD→LFD conversion arcs.
func BenchmarkAblationPairArcs(b *testing.B) { benchAblation(b, core.SyncOptions{NoPairArcs: true}) }

// BenchmarkAblationNoSPPriority drops the priority classes.
func BenchmarkAblationNoSPPriority(b *testing.B) {
	benchAblation(b, core.SyncOptions{NoSPPriority: true})
}

// BenchmarkRecurrenceSimulatorScaling measures the fast simulator on a long
// run (10k iterations) — it is linear in n and row count.
func BenchmarkRecurrenceSimulatorScaling(b *testing.B) {
	prog := MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	s, err := prog.ScheduleSync(Machine2Issue(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		t, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 10000})
		if err != nil {
			b.Fatal(err)
		}
		if t.Total == 0 {
			b.Fatal("zero")
		}
	}
}

// The hot-path workloads (BenchmarkBatch64, BenchmarkHot*) live in
// hotbench_test.go, delegating to internal/hotbench so the same code backs
// `go test -bench` and the committed BENCH_hotpath.json snapshot.
