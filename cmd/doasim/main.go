// Command doasim runs the detailed multiprocessor simulator on a source
// file of one or more DOACROSS loops: each loop is scheduled, all its
// iterations execute on the simulated shared-memory machine with real data
// (loops run one after another, sharing the store), the result is verified
// against sequential execution, and per-loop plus total timings are
// reported.
//
// Usage:
//
//	doasim [-issue 4] [-fu 1] [-n 100] [-procs 0] [-sched sync] [-seed 1] [-window 0] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doacross"
)

func main() {
	issue := flag.Int("issue", 4, "issue width")
	fu := flag.Int("fu", 1, "function units per class")
	n := flag.Int("n", 100, "loop trip count")
	procs := flag.Int("procs", 0, "processor count (0 = one per iteration)")
	sched := flag.String("sched", "sync", "scheduler: sync, list or best")
	seed := flag.Uint64("seed", 1, "data seed")
	window := flag.Int("window", 0, "signal hardware window (0 = unbounded)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	progs, err := doacross.CompileFile(src)
	if err != nil {
		fail(err)
	}
	m := doacross.NewMachine(*issue, *fu)

	// One shared store: loops feed each other, as in a real program.
	source, err := doacross.ParseSource(src)
	if err != nil {
		fail(err)
	}
	seq := source.SeedStore(*n, 24, *seed)
	par := seq.Clone()
	if err := source.Run(seq); err != nil {
		fail(err)
	}

	totalCycles, totalStalls, totalLen := 0, 0, 0
	for i, prog := range progs {
		var s *doacross.Schedule
		var err error
		switch *sched {
		case "sync":
			s, err = prog.ScheduleSync(m)
		case "list":
			s, err = prog.ScheduleList(m)
		case "best":
			s, err = prog.ScheduleBest(m)
		default:
			fail(fmt.Errorf("unknown scheduler %q", *sched))
		}
		if err != nil {
			fail(err)
		}
		timing, err := doacross.Execute(s, par, doacross.SimOptions{Lo: 1, Hi: *n, Procs: *procs, Window: *window})
		if err != nil {
			fail(err)
		}
		fmt.Printf("loop %d: %3d rows/iter, parallel time %6d cycles, %6d stall cycles\n",
			i+1, s.Length(), timing.Total, timing.StallCycles)
		totalCycles += timing.Total
		totalStalls += timing.StallCycles
		totalLen += s.CompletionLength()
	}
	procsUsed := *procs
	if procsUsed == 0 {
		procsUsed = *n
	}
	fmt.Printf("\nscheduler:        %s on %s\n", *sched, m.Name)
	fmt.Printf("processors:       %d\n", procsUsed)
	fmt.Printf("iterations:       %d per loop, %d loops\n", *n, len(progs))
	fmt.Printf("parallel time:    %d cycles\n", totalCycles)
	fmt.Printf("stall cycles:     %d\n", totalStalls)
	seqTime := totalLen * *n
	fmt.Printf("speedup vs 1 CPU: %.2fx (sequential ~%d cycles)\n",
		float64(seqTime)/float64(totalCycles), seqTime)
	if d := seq.Diff(par); d != "" {
		fail(fmt.Errorf("parallel result differs from sequential execution: %s", d))
	}
	fmt.Println("memory check:     parallel result matches sequential execution")
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "doasim:", err)
	os.Exit(1)
}
