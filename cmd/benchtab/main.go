// Command benchtab regenerates the paper's evaluation tables from the
// synthetic Perfect suites.
//
// Usage:
//
//	benchtab                 # all three tables + observations
//	benchtab -table 2        # a single table
//	benchtab -baseline order # program-order baseline instead of critical path
//	benchtab -loops          # per-loop drill-down
//	benchtab -j 8 -stats     # 8 pipeline workers + cache/latency report
//	benchtab -trace          # per-pass compile timings from the metrics registry
//	benchtab -dump codegen   # render a pass artifact for each suite's first loop
//	benchtab -serve :8080    # HTTP admin surface: /metrics /stats /trace /healthz /debug/pprof
//	benchtab -trace-out t.json  # write a Chrome trace (view in Perfetto)
//	benchtab -backend exact  # serve the sync slot from the branch-and-bound backend
//	benchtab -cpuprofile cpu.pb.gz -memprofile mem.pb.gz  # pprof profiles of the run
//
// The tables are produced by the internal/pipeline batch scheduler: every
// (loop, configuration) problem fans out over -j workers and repeated loop
// shapes hit the content-addressed schedule cache instead of rescheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"doacross/internal/cliutil"
	"doacross/internal/core"
	"doacross/internal/dlx"
	"doacross/internal/passes"
	"doacross/internal/perfect"
	"doacross/internal/pipeline"
	"doacross/internal/tables"
)

// dlxConfig is the machine configuration used by the extension experiments.
func dlxConfig() dlx.Config { return dlx.Standard(4, 1) }

func main() { os.Exit(run()) }

func run() int {
	table := flag.Int("table", 0, "table to print (1, 2 or 3; 0 = all)")
	baseline := flag.String("baseline", "cp", "list-scheduling baseline: cp (critical path) or order (program order)")
	loops := flag.Bool("loops", false, "print per-loop measurements")
	migration := flag.Bool("migration", false, "run the migration-vs-scheduling extension experiment")
	format := flag.String("format", "text", "output format: text or csv")
	cf := cliutil.Register(flag.CommandLine)
	flag.Parse()

	pri := core.CriticalPath
	switch *baseline {
	case "cp", "critical-path":
	case "order", "program-order":
		pri = core.ProgramOrder
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown baseline %q\n", *baseline)
		return 2
	}
	suites, err := perfect.Suites()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		return 1
	}
	if cf.Dump != "" {
		opts := passes.Options{Dump: cf.DumpPasses()}
		for _, s := range suites {
			loops := s.Doacross()
			if len(loops) == 0 {
				continue
			}
			ctx, err := passes.CompileLoop(loops[0].AST, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				return 1
			}
			fmt.Printf("======== %s loop 0 ========\n", s.Profile.Name)
			for _, tm := range ctx.Trace.Timings {
				if a, ok := ctx.Trace.Artifact(tm.Pass); ok {
					fmt.Printf("== dump: %s ==\n%s\n", tm.Pass, strings.TrimRight(a, "\n"))
				}
			}
		}
		return 0
	}
	if *migration {
		for _, p := range []core.ListPriority{core.ProgramOrder, core.CriticalPath} {
			name := map[core.ListPriority]string{core.ProgramOrder: "program-order", core.CriticalPath: "critical-path"}[p]
			mr, err := tables.RunMigration(suites, dlxConfig(), p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				return 1
			}
			fmt.Printf("-- baseline: %s list scheduling --\n", name)
			fmt.Print(mr.Render())
			fmt.Println()
		}
		return 0
	}
	metrics := pipeline.NewMetrics()
	ob, err := cf.Observability(metrics, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		return 1
	}
	defer ob.Close()
	// Registered before the -stats/-trace printers so it executes after
	// them: with -trace-out it writes the Chrome trace, and with -serve it
	// blocks until Ctrl-C so the finished run stays scrapeable.
	defer func() {
		if err := ob.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
		}
	}()
	stopProf, err := cf.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		return 1
	}
	// Deferred after ob.Finish so the profiles land before -serve blocks.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
		}
	}()
	r, err := tables.RunParallelWith(suites, pri, pipeline.Options{
		Workers:  cf.Jobs,
		Cache:    pipeline.NewCache(),
		Metrics:  metrics,
		Deadline: cf.Timeout,
		Observer: ob.Recorder,
		Compile:  cf.BackendOptions(passes.Options{}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		return 1
	}
	// A failing loop does not abort the run: its diagnostic is printed, the
	// aggregates cover the loops that worked, and the exit status is
	// non-zero at the end.
	code := 0
	for _, f := range r.Failures {
		fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", f.Name, f.Err)
		code = 1
	}
	if cf.Stats {
		defer func() { fmt.Printf("\nPipeline stats:\n%s", metrics.Stats()) }()
	}
	if cf.Trace {
		defer func() {
			fmt.Printf("\nPer-pass compile timings:\n%s", cliutil.PassTimings(metrics.Stats()))
		}()
	}
	if *format == "csv" {
		fmt.Print(r.CSV())
		if *loops {
			fmt.Println()
			fmt.Print(r.LoopCSV())
		}
		return code
	}
	switch *table {
	case 1:
		fmt.Print(r.RenderTable1())
	case 2:
		fmt.Print(r.RenderTable2())
	case 3:
		fmt.Print(r.RenderTable3())
	case 0:
		fmt.Println(r.Render())
		spread, ok := r.Observation1()
		fmt.Printf("Observation 1 (new scheduling ~flat across configs): spread %.1f%%, holds=%v\n", 100*spread, ok)
		anoms := r.Observation2()
		fmt.Printf("Observation 2 (list scheduling slower at 4-issue for some benchmarks): %v\n", anoms)
	default:
		fmt.Fprintf(os.Stderr, "benchtab: no table %d\n", *table)
		return 2
	}
	if *loops {
		fmt.Println("\nPer-loop measurements:")
		fmt.Printf("%-8s %5s %-16s %-16s %8s %8s %6s %6s %6s %6s\n",
			"suite", "loop", "template", "config", "Ta", "Tb", "LBDa", "LBDb", "lenA", "lenB")
		for _, lr := range r.Loops {
			fmt.Printf("%-8s %5d %-16s %-16s %8d %8d %6d %6d %6d %6d\n",
				lr.Suite, lr.Index, lr.Template, lr.Config, lr.Ta, lr.Tb, lr.LBDa, lr.LBDb, lr.LenA, lr.LenB)
		}
	}
	return code
}
