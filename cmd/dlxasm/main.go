// Command dlxasm compiles a loop all the way to DLX-like machine code and
// prints the assembly with its binary encoding, then (with -run) executes
// the encoded program sequentially and in DOACROSS parallel on the machine
// interpreter, verifying both against the reference interpreter.
//
// Usage:
//
//	dlxasm [-n 20] [-run] [-procs 0] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doacross"
)

func main() {
	n := flag.Int("n", 20, "loop trip count for -run and the address window")
	run := flag.Bool("run", false, "execute the binary and verify against the interpreter")
	procs := flag.Int("procs", 0, "processor count for the parallel run (0 = one per iteration)")
	seed := flag.Uint64("seed", 1, "data seed")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := doacross.Compile(src)
	if err != nil {
		fail(err)
	}
	code, err := prog.Assemble(1-16, *n+16)
	if err != nil {
		fail(err)
	}
	fmt.Print(code.Listing())
	fmt.Printf("\n%d instructions, %d spill slots, %d memory cells (%d bytes), signals %v\n",
		len(code.Insts), code.NumSpills, code.Layout.Cells, 4*code.Layout.Cells, code.Signals)
	if !*run {
		return
	}

	ref := prog.SeedStore(*n, *seed)
	seq := ref.Clone()
	par := ref.Clone()
	if err := prog.RunSequential(ref); err != nil {
		fail(err)
	}
	if err := code.Run(seq, true); err != nil {
		fail(err)
	}
	res, err := code.RunParallel(par, *procs)
	if err != nil {
		fail(err)
	}
	check := func(name string, st *doacross.Store) {
		for _, arr := range prog.Loop.Arrays() {
			for i := 1; i <= *n; i++ {
				if ref.Elem(arr, i) != st.Elem(arr, i) {
					fail(fmt.Errorf("%s: %s[%d] = %v, want %v", name, arr, i, st.Elem(arr, i), ref.Elem(arr, i)))
				}
			}
		}
		fmt.Printf("%s: memory matches the reference interpreter\n", name)
	}
	check("sequential binary run", seq)
	check("parallel binary run", par)
	fmt.Printf("parallel run: %d cycles, %d stall processor-cycles\n", res.Cycles, res.Stalls)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlxasm:", err)
	os.Exit(1)
}
