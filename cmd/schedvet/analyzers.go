package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// finding is one reported contract violation.
type finding struct {
	position token.Position
	msg      string
}

// unit is one typechecked package under analysis.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// allowDirective is the suppression marker: a comment containing it on the
// reported line or the line above silences the finding, keeping deliberate
// exceptions (with their reason inline) out of the report.
const allowDirective = "schedvet:allow"

// analyze runs the suite over one package and returns the surviving
// findings in source order.
func analyze(u *unit) []finding {
	var out []finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding{position: u.fset.Position(pos), msg: fmt.Sprintf(format, args...)})
	}
	for _, f := range u.files {
		u.checkBorrowedSchedules(f, report)
		u.checkDiagnosticPositions(f, report)
		u.checkContextDiscipline(f, report)
	}
	allowed := u.allowedLines()
	kept := out[:0]
	for _, f := range out {
		if allowed[lineKey{f.position.Filename, f.position.Line}] ||
			allowed[lineKey{f.position.Filename, f.position.Line - 1}] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

type lineKey struct {
	file string
	line int
}

// allowedLines collects the lines carrying a suppression directive.
func (u *unit) allowedLines() map[lineKey]bool {
	allowed := map[lineKey]bool{}
	for _, f := range u.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, allowDirective) {
					continue
				}
				p := u.fset.Position(c.Pos())
				allowed[lineKey{p.Filename, p.Line}] = true
			}
		}
	}
	return allowed
}

// pathHasSuffix reports whether an import path is pkg or ends in "/pkg".
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// named unwraps pointers and aliases down to a named type, or nil.
func named(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named type
// pkgSuffix.name.
func isPkgType(t types.Type, pkgSuffix, name string) bool {
	n := named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg().Path() == "context"
}

// --- borrowed-schedule retention -----------------------------------------

// isBorrowedCall reports whether e is a call returning a BORROWED schedule:
// a Scratch.Sync/List/Best method call (internal/core) or any ScheduleWith
// call (the facade's scratch-backed entry point).
func (u *unit) isBorrowedCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := u.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if obj.Name() == "ScheduleWith" {
		return true
	}
	switch obj.Name() {
	case "Sync", "List", "Best":
		return isPkgType(sig.Recv().Type(), "internal/core", "Scratch")
	}
	return false
}

// checkBorrowedSchedules flags retention sinks for borrowed schedules:
// writes into struct fields, map or slice elements, package-level
// variables, append targets, channel sends and composite literals. Locals,
// returns and direct uses are fine — the borrow propagates with the
// documentation.
func (u *unit) checkBorrowedSchedules(f *ast.File, report func(token.Pos, string, ...any)) {
	const advice = "result of %s is BORROWED (recycled by the next call on the same Scratch); Clone it before storing"
	callName := func(e ast.Expr) string {
		call := ast.Unparen(e).(*ast.CallExpr)
		sel := call.Fun.(*ast.SelectorExpr)
		return sel.Sel.Name
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !u.isBorrowedCall(rhs) {
					continue
				}
				// A single call assigning multiple values binds its first
				// result — the schedule — to the first LHS.
				lhs := n.Lhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					lhs = n.Lhs[i]
				}
				if u.isRetentionTarget(lhs) {
					report(n.Pos(), advice, callName(rhs))
				}
			}
		case *ast.SendStmt:
			if u.isBorrowedCall(n.Value) {
				report(n.Pos(), advice, callName(n.Value))
			}
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok && fn.Name == "append" {
				for _, arg := range n.Args[1:] {
					if u.isBorrowedCall(arg) {
						report(n.Pos(), advice, callName(arg))
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if u.isBorrowedCall(v) {
					report(v.Pos(), advice, callName(v))
				}
			}
		}
		return true
	})
}

// isRetentionTarget reports whether writing to lhs outlives the call site:
// struct fields, map or slice elements, and package-level variables.
func (u *unit) isRetentionTarget(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// A selector LHS is a field write (package-qualified identifiers
		// resolve to a Var of the package, handled below).
		if id, ok := lhs.X.(*ast.Ident); ok {
			if _, isPkg := u.info.Uses[id].(*types.PkgName); isPkg {
				obj := u.info.Uses[lhs.Sel]
				return obj != nil && obj.Parent() == obj.Pkg().Scope()
			}
		}
		return true
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		obj := u.info.ObjectOf(lhs)
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

// --- positioned diagnostics ----------------------------------------------

// checkDiagnosticPositions flags diag.Diagnostic composite literals without
// a Pos field. The diag package itself is exempt: its helpers are exactly
// where posless construction is centralized.
func (u *unit) checkDiagnosticPositions(f *ast.File, report func(token.Pos, string, ...any)) {
	if pathHasSuffix(u.pkg.Path(), "internal/diag") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := u.info.Types[lit]
		if !ok || !isPkgType(tv.Type, "internal/diag", "Diagnostic") {
			return true
		}
		if len(lit.Elts) > 0 {
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
				return true // positional literal sets every field
			}
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Pos" {
				return true
			}
		}
		report(lit.Pos(), "diag.Diagnostic literal without a Pos: findings must be positioned (use diag.Errorf/Warningf with the statement position)")
		return true
	})
}

// --- context discipline ---------------------------------------------------

// checkContextDiscipline enforces, in the pipeline and server packages,
// that context.Context is the first parameter of any function taking one
// and is never stored in a struct.
func (u *unit) checkContextDiscipline(f *ast.File, report func(token.Pos, string, ...any)) {
	path := u.pkg.Path()
	if !pathHasSuffix(path, "internal/pipeline") && !pathHasSuffix(path, "internal/server") {
		return
	}
	checkParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		idx := 0
		for _, field := range ft.Params.List {
			tv, ok := u.info.Types[field.Type]
			isCtx := ok && isContextType(tv.Type)
			names := len(field.Names)
			if names == 0 {
				names = 1
			}
			if isCtx && idx > 0 {
				report(field.Pos(), "context.Context must be the first parameter")
			}
			idx += names
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkParams(n.Type)
		case *ast.FuncLit:
			checkParams(n.Type)
		case *ast.StructType:
			for _, field := range n.Fields.List {
				tv, ok := u.info.Types[field.Type]
				if ok && isContextType(tv.Type) {
					report(field.Pos(), "context.Context must not be stored in a struct; pass it through call chains")
				}
			}
		}
		return true
	})
}
