// Command schedvet is the repo-native static-analysis suite, run as a
// `go vet -vettool` plugin:
//
//	go build -o /tmp/schedvet ./cmd/schedvet
//	go vet -vettool=/tmp/schedvet ./...
//
// It enforces three contracts the compiler cannot:
//
//   - borrowed-schedule retention: the results of Scratch.Sync/List/Best and
//     Program.ScheduleWith are BORROWED (their storage is recycled by the
//     next call on the same Scratch) and must not be retained — stored into
//     a struct field, map, slice, package variable or channel — without
//     Clone.
//   - positioned diagnostics: diag.Diagnostic literals outside the diag
//     package itself must carry a Pos, so every surfaced finding is
//     clickable; posless diagnostics route through the package helpers.
//   - context discipline in pipeline/server: context.Context is always the
//     first parameter and never a struct field.
//
// A finding can be suppressed by a `//schedvet:allow <reason>` comment on
// the same line or the line above (used for the singleflight Group, which
// stores the leader's context by design).
//
// The command speaks cmd/go's vettool protocol (-flags, -V=full, then one
// JSON config file per package) using only the standard library: the
// container's toolchain has no x/tools, so the unitchecker wire format is
// implemented directly.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON document cmd/go writes for each package (the
// unitchecker wire format). Fields the suite does not need are still listed
// so the document round-trips cleanly if it is ever re-emitted.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	// Protocol handshake: cmd/go first asks for the supported flags, then
	// for a version line it uses as the analysis cache key.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(arg, "-V"):
			fmt.Printf("schedvet version devel buildID=%s\n", selfID())
			return
		}
	}
	if len(os.Args) != 2 || !strings.HasSuffix(os.Args[1], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: go vet -vettool=$(which schedvet) ./...")
		os.Exit(1)
	}
	os.Exit(runConfig(os.Args[1]))
}

// selfID derives the tool's build ID from its own binary, so cmd/go's vet
// result cache is invalidated whenever the tool is rebuilt with different
// analyzers.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func runConfig(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %s: %v\n", path, err)
		return 1
	}
	// cmd/go expects the facts file to exist for every analyzed package;
	// the suite keeps no cross-package facts, so an empty one suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "schedvet:", err)
			return 1
		}
	}
	// Dependency packages are analyzed facts-only by cmd/go; with no facts
	// to compute, only the packages of this module need typechecking.
	if cfg.VetxOnly || !inModule(cfg.ImportPath) {
		return 0
	}
	findings, err := checkPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "schedvet:", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.position, f.msg)
	}
	return 2
}

// inModule reports whether the import path belongs to this module (test
// binary pseudo-packages like "doacross/internal/dep.test" included).
func inModule(path string) bool {
	return path == "doacross" || strings.HasPrefix(path, "doacross/") ||
		strings.HasPrefix(path, "doacross.") || strings.HasSuffix(path, ".test")
}

// checkPackage parses and typechecks one package from its vet config and
// runs the analyzer suite over it.
func checkPackage(cfg *vetConfig) ([]finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Imports resolve through the export data cmd/go already compiled,
	// mapped via ImportMap (vendoring, canonical paths) then PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compilerFor(cfg), lookup),
		GoVersion: languageVersion(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analyze(&unit{fset: fset, files: files, pkg: pkg, info: info}), nil
}

func compilerFor(cfg *vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

// languageVersion reduces a toolchain version ("go1.24.0") to the language
// version go/types accepts ("go1.24").
func languageVersion(v string) string {
	if parts := strings.SplitN(v, ".", 3); len(parts) > 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}
