package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mapImporter resolves imports from packages typechecked earlier in the
// test, letting synthetic sources stand in for internal/core, internal/diag
// and context without export data.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("test importer: unknown package %q", path)
}

// checkSource typechecks src as a package with the given import path
// against deps and runs the analyzer suite over it.
func checkSource(t *testing.T, deps mapImporter, path, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: deps}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v\n%s", err, src)
	}
	if deps != nil {
		deps[path] = pkg
	}
	return analyze(&unit{fset: fset, files: []*ast.File{f}, pkg: pkg, info: info})
}

// deps builds the synthetic dependency universe: a Scratch with the
// borrowed-schedule methods, a Diagnostic with a Pos, and a context
// package.
func deps(t *testing.T) mapImporter {
	t.Helper()
	m := mapImporter{}
	checkSource(t, m, "fake/internal/core", `
package core
type Schedule struct{ Cycles []int }
func (s *Schedule) Clone() *Schedule { return s }
type Scratch struct{}
func (s *Scratch) Sync(g, m int) (*Schedule, error) { return nil, nil }
func (s *Scratch) Best(g, m int) (*Schedule, error) { return nil, nil }
func (s *Scratch) List(g, m, pri int) (*Schedule, error) { return nil, nil }
`)
	checkSource(t, m, "fake/internal/diag", `
package diag
type Pos struct{ Line, Col int }
type Diagnostic struct {
	Stage string
	Pos   Pos
	Msg   string
}
`)
	checkSource(t, m, "context", `
package context
type Context interface{ Err() error }
func Background() Context { return nil }
`)
	return m
}

// msgs flattens findings for substring assertions.
func msgs(fs []finding) string {
	var sb strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&sb, "%s: %s\n", f.position, f.msg)
	}
	return sb.String()
}

func TestBorrowedScheduleRetention(t *testing.T) {
	d := deps(t)
	got := checkSource(t, d, "fake/app", `
package app

import "fake/internal/core"

type cacheT struct{ best *core.Schedule }

var global *core.Schedule

func bad(sc *core.Scratch, c *cacheT, m map[int]*core.Schedule, ch chan *core.Schedule) {
	c.best, _ = sc.Best(1, 2)            // field write: flagged
	global, _ = sc.Sync(1, 2)            // package var: flagged
	s, _ := sc.List(1, 2, 3)             // local: fine
	m[7] = s                             // aliased local: out of scope for the checker
	one, _ := sc.Sync(1, 2)
	ch <- one                            // aliased local: out of scope
	var all []*core.Schedule
	_ = all
}

func worse(sc *core.Scratch, ch chan *core.Schedule) {
	var all []*core.Schedule
	two, _ := sc.Best(1, 2)
	_ = two
	all = appendOne(all, sc)
	_ = all
}

func appendOne(all []*core.Schedule, sc *core.Scratch) []*core.Schedule {
	s, _ := sc.Sync(1, 2)
	return append(all, s.Clone()) // cloned: fine
}

func ok(sc *core.Scratch) (*core.Schedule, error) {
	return sc.Best(1, 2) // returning propagates the borrow: fine
}
`)
	out := msgs(got)
	if n := len(got); n != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", n, out)
	}
	for _, want := range []string{"result of Best is BORROWED", "result of Sync is BORROWED"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBorrowedScheduleSinks(t *testing.T) {
	d := deps(t)
	got := checkSource(t, d, "fake/sink", `
package sink

import "fake/internal/core"

type holder struct{ s *core.Schedule }

func sinks(sc *core.Scratch, m map[int]*core.Schedule, ch chan *core.Schedule, all []*core.Schedule) []*core.Schedule {
	s3, _ := sc.Sync(1, 2)
	m[1] = s3 // aliased separately; the direct forms below are flagged
	h := holder{}
	h.s, _ = sc.Best(1, 2)
	return all
}
`)
	if len(got) != 1 || !strings.Contains(msgs(got), "result of Best is BORROWED") {
		t.Fatalf("want exactly the field-write finding, got:\n%s", msgs(got))
	}
}

func TestDiagnosticPositionRequired(t *testing.T) {
	d := deps(t)
	got := checkSource(t, d, "fake/consumer", `
package consumer

import "fake/internal/diag"

func bad(stage, msg string) *diag.Diagnostic {
	return &diag.Diagnostic{Stage: stage, Msg: msg}
}

func good(stage, msg string, pos diag.Pos) diag.Diagnostic {
	return diag.Diagnostic{Stage: stage, Pos: pos, Msg: msg}
}

func positional(stage, msg string, pos diag.Pos) diag.Diagnostic {
	return diag.Diagnostic{stage, pos, msg}
}
`)
	if len(got) != 1 || !strings.Contains(msgs(got), "without a Pos") {
		t.Fatalf("want exactly one posless-literal finding, got:\n%s", msgs(got))
	}
	// The diag package itself is exempt: helpers centralize posless
	// construction there.
	exempt := checkSource(t, d, "fake2/internal/diag", `
package diag
import real "fake/internal/diag"
func FromPanic(stage, msg string) *real.Diagnostic {
	return &real.Diagnostic{Stage: stage, Msg: msg}
}
`)
	if len(exempt) != 0 {
		t.Fatalf("diag package should be exempt, got:\n%s", msgs(exempt))
	}
}

func TestContextDiscipline(t *testing.T) {
	d := deps(t)
	got := checkSource(t, d, "fake/internal/pipeline", `
package pipeline

import "context"

type flight struct {
	ctx context.Context
}

type allowed struct {
	ctx context.Context //schedvet:allow leader-scoped by design
}

func bad(name string, ctx context.Context) error { return nil }

func good(ctx context.Context, name string) error {
	f := func(n int, c context.Context) {}
	f(1, ctx)
	return nil
}
`)
	out := msgs(got)
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(got), out)
	}
	if !strings.Contains(out, "must not be stored in a struct") {
		t.Errorf("missing struct-field finding:\n%s", out)
	}
	if c := strings.Count(out, "must be the first parameter"); c != 2 {
		t.Errorf("want 2 first-parameter findings (decl + literal), got %d:\n%s", c, out)
	}
	// Outside pipeline/server the rule does not apply.
	free := checkSource(t, d, "fake/internal/sim", `
package sim
import "context"
type job struct{ ctx context.Context }
func run(n int, ctx context.Context) {}
`)
	if len(free) != 0 {
		t.Fatalf("context rules must be scoped to pipeline/server, got:\n%s", msgs(free))
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	d := deps(t)
	got := checkSource(t, d, "fake/internal/server", `
package server

import "context"

type lease struct {
	//schedvet:allow stored for the watchdog, cancelled on release
	ctx context.Context
}
`)
	if len(got) != 0 {
		t.Fatalf("directive on the line above should suppress, got:\n%s", msgs(got))
	}
}

func TestLanguageVersion(t *testing.T) {
	for in, want := range map[string]string{
		"go1.24.0": "go1.24",
		"go1.22":   "go1.22",
		"":         "",
	} {
		if got := languageVersion(in); got != want {
			t.Errorf("languageVersion(%q) = %q, want %q", in, got, want)
		}
	}
}
