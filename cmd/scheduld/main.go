// Command scheduld is the scheduling daemon: the batch pipeline served as
// a long-running HTTP/JSON service with request coalescing, admission
// control, load shedding and a crash-safe persistent cache tier.
//
// Usage:
//
//	scheduld -addr :8080                    # serve on :8080
//	scheduld -disk /var/lib/scheduld        # persistent tier: restarts come up warm
//	scheduld -rate 50 -burst 100            # per-tenant token bucket (X-Tenant header)
//	scheduld -inflight 8 -queue 32          # admission bound + bounded queue
//	scheduld -breaker-threshold 5 -breaker-cooldown 30s
//	scheduld -request-timeout 30s -drain 10s
//	scheduld -backend exact -j 4 -n 100
//	scheduld -log info -flight-dir /var/log/scheduld -machine-obs
//
// Endpoints: POST /v1/schedule, GET /healthz, /metrics, /stats,
// /debug/flightrecord. Every request carries a correlation ID (the client's
// X-Request-Id, or a minted one), echoed on the response and keyed into
// every structured log line; the always-on flight recorder dumps its ring
// as JSONL on panic, deadline breach, breaker-open — and on SIGQUIT, for
// live inspection without stopping the daemon. On SIGTERM (or SIGINT) the
// daemon drains: admitted requests finish within -drain, new ones are shed
// with 503 + Retry-After, the disk tier is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"doacross/internal/passes"
	"doacross/internal/pipeline"
	"doacross/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	disk := flag.String("disk", "", "directory of the crash-safe persistent cache tier (\"\" = off)")
	cacheCap := flag.Int("cache", 0, "in-memory cache capacity in entries (0 = unbounded)")
	rate := flag.Float64("rate", 0, "per-tenant token-bucket refill rate in requests/s (0 = no rate limit)")
	burst := flag.Float64("burst", 0, "token-bucket capacity (0 = max(1, rate))")
	inflight := flag.Int("inflight", 0, "max concurrently served requests (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for admission (0 = 4*inflight, negative = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive backend failures that open its circuit (0 = 5, negative = off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a probe (0 = 30s)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline, queue wait included (0 = 30s, negative = none)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain budget for admitted requests")
	backend := flag.String("backend", "", "default scheduling backend: "+strings.Join(passes.BackendNames(), ", ")+" (default sync)")
	jobs := flag.Int("j", 0, "pipeline workers per flight (0 = GOMAXPROCS)")
	n := flag.Int("n", 0, "default trip count (0 = 100, the paper's)")
	logLevel := flag.String("log", "", "structured decision log level on stderr: debug, info, warn, error (\"\" = off; the flight recorder records regardless)")
	flightDir := flag.String("flight-dir", "", "directory for triggered flight-recorder dumps (\"\" = stderr)")
	flightRing := flag.Int("flight-ring", 0, "flight-recorder ring capacity in records (0 = 256)")
	machineObs := flag.Bool("machine-obs", false, "trace every simulation and attach machine-level utilization reports to responses")
	flag.Parse()

	var logger *slog.Logger
	if *logLevel != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "scheduld: -log %s: %v\n", *logLevel, err)
			return 2
		}
		logger = slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	}

	popt := pipeline.Options{Workers: *jobs, N: *n, Utilization: *machineObs}
	popt.Compile.Backend = *backend
	srv, err := server.New(server.Config{
		Pipeline:         popt,
		CacheCap:         *cacheCap,
		DiskDir:          *disk,
		MaxInFlight:      *inflight,
		QueueLimit:       *queue,
		RatePerSec:       *rate,
		Burst:            *burst,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		RequestTimeout:   *requestTimeout,
		Logger:           logger,
		FlightDir:        *flightDir,
		FlightRing:       *flightRing,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scheduld: %v\n", err)
		return 1
	}
	if *disk != "" {
		fmt.Fprintf(os.Stderr, "scheduld: disk tier %s: %s\n", *disk, srv.LoadStats())
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scheduld: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "scheduld: serving on http://%s (/v1/schedule /healthz /metrics /stats /debug/flightrecord)\n", bound)

	// SIGQUIT dumps the flight recorder without stopping the daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			if path, err := srv.DumpFlightRecord("sigquit"); err != nil {
				fmt.Fprintf(os.Stderr, "scheduld: flight-record dump: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "scheduld: flight record dumped to %s\n", path)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintf(os.Stderr, "scheduld: draining (up to %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "scheduld: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "scheduld: drained cleanly")
	return 0
}
