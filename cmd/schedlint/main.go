// Command schedlint statically checks DOACROSS loops for synchronization
// bugs without running them: explicit Wait_Signal statements with no
// matching Send (static deadlock), dead or duplicate sends, mismatched or
// non-positive synchronization distances, self-synchronization, and
// redundant waits subsumed by transitive synchronization — plus everything
// the compiler-inserted synchronization of the DOACROSS form trips over.
// Findings are printed with their source line:col; the exit status is
// non-zero when any finding is an error (or a loop fails to compile).
//
// Usage:
//
//	schedlint [-q] [-j 8] [-stats] [-trace] [-serve :8080] [file]
//
// With no file, the loops are read from standard input. Input may contain
// several loops back to back; all of them are compiled and linted
// concurrently by the batch pipeline. Example finding:
//
//	loop1: error: lint: line 2 col 3: statement S1: static deadlock:
//	Wait_Signal(S2, I-1) has no matching Send_Signal(S2)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doacross"
	"doacross/internal/cliutil"
)

func main() {
	quiet := flag.Bool("q", false, "suppress warnings; only errors are printed (the exit status is unaffected)")
	cf := cliutil.Register(flag.CommandLine)
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	metrics := doacross.NewBatchMetrics()
	ob, err := cf.Observability(metrics, os.Stderr)
	if err != nil {
		fail(err)
	}
	defer ob.Close()
	bopts := doacross.BatchOptions{
		Workers:  cf.Jobs,
		Metrics:  metrics,
		Compile:  cf.BackendOptions(doacross.CompileOptions{Dump: cf.DumpPasses()}),
		Deadline: cf.Timeout,
		Observer: ob.Recorder,
	}
	var batch *doacross.Batch
	if file, perr := doacross.ParseSource(src); perr == nil {
		batch, err = doacross.ScheduleAllLoops(file.Loops, bopts)
	} else if chunks := splitLoops(src); len(chunks) > 1 {
		// A malformed loop fails file-level parsing outright; resubmit the
		// input one loop chunk at a time so the bad loop fails alone and the
		// rest is still linted.
		batch, err = doacross.ScheduleAll(chunks, bopts)
	} else {
		fail(perr)
	}
	if err != nil {
		fail(err)
	}

	code := 0
	findings := 0
	for i := range batch.Loops {
		lr := &batch.Loops[i]
		if lr.Err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", lr.Name, lr.Err)
			code = 1
			continue
		}
		for _, d := range lr.Lint {
			if d.Severity == doacross.SeverityError {
				code = 1
			} else if *quiet {
				continue
			}
			findings++
			fmt.Printf("%s: %s: %s\n", lr.Name, d.Severity, d.Error())
		}
	}
	if findings == 0 && code == 0 {
		fmt.Printf("schedlint: %d loops clean\n", len(batch.Loops))
	}
	if cf.Trace {
		fmt.Printf("\nPer-pass compile timings:\n%s", cliutil.PassTimings(batch.Stats))
	}
	if cf.Stats {
		fmt.Printf("\nPipeline stats:\n%s", batch.Stats)
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
	}
	os.Exit(code)
}

// splitLoops cuts a source file into per-loop chunks on ENDDO lines, so a
// loop that cannot parse can be isolated from its neighbours.
func splitLoops(src string) []string {
	var out []string
	var cur []string
	flush := func() {
		chunk := strings.Join(cur, "\n")
		if strings.TrimSpace(chunk) != "" {
			out = append(out, chunk)
		}
		cur = nil
	}
	for _, line := range strings.Split(src, "\n") {
		cur = append(cur, line)
		if strings.EqualFold(strings.TrimSpace(line), "ENDDO") {
			flush()
		}
	}
	flush()
	return out
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedlint:", err)
	os.Exit(2)
}
