// Command loopgen emits the synthetic Perfect benchmark suites — the loop
// sources, their templates, and the Table 1 characteristics — and generates
// random loops with controlled dependence character for fuzzing the
// dependence analyzer (internal/loopgen).
//
// Usage:
//
//	loopgen                 # characteristics of all suites
//	loopgen -bench TRACK    # print TRACK's loops
//	loopgen -bench ADM -doacross   # only ADM's DOACROSS loops
//	loopgen -gen 20 -shape coupled -seed 7   # 20 coupled-subscript loops
//	loopgen -gen 10 -shape nonaffine -stmts 4 -const-bounds
package main

import (
	"flag"
	"fmt"
	"os"

	"doacross/internal/loopgen"
	"doacross/internal/perfect"
)

func main() {
	bench := flag.String("bench", "", "print the loops of one benchmark (FLQ52, QCD, MDG, TRACK, ADM)")
	doacrossOnly := flag.Bool("doacross", false, "with -bench: skip DOALL loops")
	gen := flag.Int("gen", 0, "generate this many analyzer-fuzzing loops instead of the Perfect suites")
	shape := flag.String("shape", "", "with -gen: dependence shape (affine, coupled, symbolic, nonaffine, guarded, mixed); empty cycles through all")
	seed := flag.Uint64("seed", 1, "with -gen: generation seed")
	stmts := flag.Int("stmts", 3, "with -gen -shape: body statements per loop")
	constBounds := flag.Bool("const-bounds", false, "with -gen -shape: constant loop bounds (unlocks Diophantine enumeration)")
	flag.Parse()

	if *gen > 0 {
		if *shape == "" {
			for i, src := range loopgen.Suite(*seed, *gen) {
				fmt.Printf("! loop %d\n%s\n", i, src)
			}
			return
		}
		sh, err := loopgen.ParseShape(*shape)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loopgen:", err)
			os.Exit(1)
		}
		for i := 0; i < *gen; i++ {
			src := loopgen.Generate(*seed+uint64(i)*0x9E3779B97F4A7C15, loopgen.Options{
				Shape: sh, Stmts: *stmts, ConstBounds: *constBounds,
			})
			fmt.Printf("! %s loop %d\n%s\n", sh, i, src)
		}
		return
	}

	suites, err := perfect.Suites()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loopgen:", err)
		os.Exit(1)
	}
	if *bench == "" {
		fmt.Printf("%-8s %-45s %6s %6s %6s %6s %6s\n",
			"suite", "description", "loops", "doall", "dlx", "LFD", "LBD")
		for _, s := range suites {
			c, err := s.Characteristics()
			if err != nil {
				fmt.Fprintln(os.Stderr, "loopgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%-8s %-45s %6d %6d %6d %6d %6d\n",
				c.Name, s.Profile.Description, c.TotalLoops, c.DoallLoops, c.DLXLines, c.LFD, c.LBD)
		}
		return
	}
	for _, s := range suites {
		if s.Profile.Name != *bench {
			continue
		}
		loops := s.Loops
		if *doacrossOnly {
			loops = s.Doacross()
		}
		for i, l := range loops {
			fmt.Printf("! %s loop %d (%s)\n%s\n", s.Profile.Name, i, l.Template, l.Source)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "loopgen: unknown benchmark %q\n", *bench)
	os.Exit(1)
}
