// Command loopgen emits the synthetic Perfect benchmark suites: the loop
// sources, their templates, and the Table 1 characteristics.
//
// Usage:
//
//	loopgen                 # characteristics of all suites
//	loopgen -bench TRACK    # print TRACK's loops
//	loopgen -bench ADM -doacross   # only ADM's DOACROSS loops
package main

import (
	"flag"
	"fmt"
	"os"

	"doacross/internal/perfect"
)

func main() {
	bench := flag.String("bench", "", "print the loops of one benchmark (FLQ52, QCD, MDG, TRACK, ADM)")
	doacrossOnly := flag.Bool("doacross", false, "with -bench: skip DOALL loops")
	flag.Parse()

	suites, err := perfect.Suites()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loopgen:", err)
		os.Exit(1)
	}
	if *bench == "" {
		fmt.Printf("%-8s %-45s %6s %6s %6s %6s %6s\n",
			"suite", "description", "loops", "doall", "dlx", "LFD", "LBD")
		for _, s := range suites {
			c, err := s.Characteristics()
			if err != nil {
				fmt.Fprintln(os.Stderr, "loopgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%-8s %-45s %6d %6d %6d %6d %6d\n",
				c.Name, s.Profile.Description, c.TotalLoops, c.DoallLoops, c.DLXLines, c.LFD, c.LBD)
		}
		return
	}
	for _, s := range suites {
		if s.Profile.Name != *bench {
			continue
		}
		loops := s.Loops
		if *doacrossOnly {
			loops = s.Doacross()
		}
		for i, l := range loops {
			fmt.Printf("! %s loop %d (%s)\n%s\n", s.Profile.Name, i, l.Template, l.Source)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "loopgen: unknown benchmark %q\n", *bench)
	os.Exit(1)
}
