// Command schedcmp compiles one or more DOACROSS loops and compares
// traditional list scheduling against the paper's synchronization-aware
// scheduling on a chosen machine, printing the schedules, the
// synchronization pair spans, and simulated parallel execution times.
//
// Input may contain several loops back to back; all of them are compiled,
// scheduled and simulated concurrently by the batch pipeline (-j workers),
// with repeated loop shapes served from the content-addressed schedule
// cache.
//
// Usage:
//
//	schedcmp [-issue 4] [-fu 1] [-uniform] [-n 100] [-baseline cp] [-backend exact] [-exact-budget 200000] [-why] [-j 8] [-stats] [-trace] [-dump pass,...] [-serve :8080] [-trace-out t.json] [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz] [file]
//
// -why re-simulates both schedules under the cycle-accurate machine tracer
// and prints where the cycles went: a stall-cause attribution diff (sync
// waits split LBD/LFD, window waits, drain, empty-issue-slot causes) plus
// the hottest synchronization pairs of the served schedule. With -serve or
// -trace-out, the traced loops' machine timelines (per-processor issue and
// function-unit tracks) are merged into the Chrome trace next to the
// pipeline spans.
//
// With no file, the loops are read from standard input. Example loop:
//
//	DO I = 1, N
//	  S1: B[I] = A[I-2] + E[I+1]
//	  S2: G[I-3] = A[I-1] * E[I+2]
//	  S3: A[I] = B[I] + C[I+3]
//	ENDDO
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doacross"
	"doacross/internal/cliutil"
)

func main() {
	issue := flag.Int("issue", 4, "issue width")
	fu := flag.Int("fu", 1, "function units per class")
	uniform := flag.Bool("uniform", false, "use single-cycle latencies everywhere (Fig. 4 setting)")
	n := flag.Int("n", 100, "loop trip count (one processor per iteration)")
	baseline := flag.String("baseline", "cp", "baseline priority: cp (critical path) or order (program order)")
	gantt := flag.Bool("gantt", false, "print per-cycle function-unit occupancy charts")
	dot := flag.Bool("dot", false, "print the data-flow graphs in Graphviz DOT format and exit")
	window := flag.Int("window", 0, "signal hardware window (0 = unbounded)")
	why := flag.Bool("why", false, "print per-loop stall-cause attribution diffs between the baseline and served schedules (traced simulation)")
	lint := flag.Bool("lint", false, "print synchronization-linter findings for each loop (see schedlint)")
	cf := cliutil.Register(flag.CommandLine)
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var m doacross.Machine
	if *uniform {
		m = doacross.UniformMachine(*issue, *fu)
	} else {
		m = doacross.NewMachine(*issue, *fu)
	}
	var pri doacross.ListPriority
	switch *baseline {
	case "cp":
		pri = doacross.BaselineCriticalPath
	case "order":
		pri = doacross.BaselineProgramOrder
	default:
		fail(fmt.Errorf("unknown baseline %q", *baseline))
	}

	metrics := doacross.NewBatchMetrics()
	ob, err := cf.Observability(metrics, os.Stderr)
	if err != nil {
		fail(err)
	}
	defer ob.Close()
	stopProf, err := cf.StartProfiling()
	if err != nil {
		fail(err)
	}
	bopts := doacross.BatchOptions{
		Workers:  cf.Jobs,
		Machines: []doacross.Machine{m},
		N:        *n,
		Window:   *window,
		Baseline: pri,
		Cache:    doacross.NewScheduleCache(),
		Metrics:  metrics,
		Compile:  cf.BackendOptions(doacross.CompileOptions{Dump: cf.DumpPasses()}),
		Deadline: cf.Timeout,
		Observer: ob.Recorder,
	}
	var batch *doacross.Batch
	if file, perr := doacross.ParseSource(src); perr == nil {
		batch, err = doacross.ScheduleAllLoops(file.Loops, bopts)
	} else if chunks := splitLoops(src); len(chunks) > 1 {
		// A malformed loop fails file-level parsing outright; resubmit the
		// input one loop chunk at a time so the bad loop fails alone and
		// the rest of the batch still runs.
		batch, err = doacross.ScheduleAll(chunks, bopts)
	} else {
		fail(perr)
	}
	if err != nil {
		fail(err)
	}

	// A failing loop prints its diagnostic and is skipped; the rest of the
	// batch still renders, and the final exit status reports the failure.
	code := 0
	timelines := 0
	for i := range batch.Loops {
		lr := &batch.Loops[i]
		if lr.Err != nil {
			fmt.Fprintf(os.Stderr, "schedcmp: %s: %v\n", lr.Name, lr.Err)
			code = 1
			continue
		}
		if len(batch.Loops) > 1 {
			fmt.Printf("======== loop %d of %d ========\n", i+1, len(batch.Loops))
		}
		fmt.Println("== Synchronized DOACROSS form ==")
		fmt.Print(lr.DoacrossSource())
		fmt.Println("\n== Three-address code ==")
		fmt.Print(lr.Listing())
		fmt.Println("\n== Data-flow graph ==")
		fmt.Println(lr.GraphInfo())
		if lr.Trace != nil {
			for _, tm := range lr.Trace.Timings {
				if a, ok := lr.Trace.Artifact(tm.Pass); ok {
					fmt.Printf("== dump: %s ==\n%s\n", tm.Pass, strings.TrimRight(a, "\n"))
				}
			}
			for _, d := range lr.Trace.Diags.Warnings() {
				fmt.Fprintln(os.Stderr, "schedcmp: warning:", d)
			}
		}
		if *dot {
			fmt.Print(lr.Graph.DOT())
			continue
		}
		mr := lr.Machines[0]
		if mr.Degraded {
			fmt.Printf("\n(degraded to program-order fallback: %s)\n", mr.DegradedReason)
		}
		if mr.Backend != "" && mr.Backend != "sync" {
			fmt.Printf("\nbackend %s: predicted T=%d", mr.Backend, mr.PredictedT)
			if mr.Optimal {
				fmt.Printf(" — proven optimal (%d search nodes)", mr.SearchNodes)
			} else if mr.LowerBound > 0 {
				fmt.Printf(" — proven lower bound %d (%d search nodes)", mr.LowerBound, mr.SearchNodes)
			}
			fmt.Println()
			if mr.BackendNote != "" {
				fmt.Printf("  note: %s\n", mr.BackendNote)
			}
		}
		for _, s := range []*doacross.Schedule{mr.List, mr.Sync} {
			if err := s.Validate(); err != nil {
				fail(fmt.Errorf("%s schedule invalid: %w", s.Method, err))
			}
			fmt.Printf("\n== %s schedule (%s, %d rows) ==\n", s.Method, m.Name, s.Length())
			fmt.Print(s.String())
			if *gantt {
				fmt.Println()
				fmt.Print(s.Gantt())
			}
			printSpans(s)
			fmt.Printf("register pressure (max live temps): %d\n", s.MaxLive())
		}
		fmt.Printf("\nlist: %d cycles (%d stall), sync: %d cycles (%d stall) at n=%d\n",
			mr.ListTime, mr.ListStalls, mr.SyncTime, mr.SyncStalls, lr.N)
		fmt.Printf("signals sent: %d (sync), arcs %d LBD / %d LFD\n",
			mr.SyncSignals, mr.SyncLBD, mr.SyncLFD)
		fmt.Printf("improvement: %.2f%%\n", mr.Improvement)
		if *why {
			str, err := printWhy(os.Stdout, mr.List, mr.Sync, lr.N, *window)
			if err != nil {
				fail(err)
			}
			if timelines < maxTimelineLoops {
				str.Loop = lr.Name
				ob.AddMachineEvents(str.Events(uint64(2 + i)))
				timelines++
			}
		}
		if *lint && len(lr.Lint) > 0 {
			fmt.Printf("\n== lint findings ==\n")
			for _, d := range lr.Lint {
				fmt.Printf("  %s: %s\n", d.Severity, d.Error())
			}
		}
	}
	if cf.Trace {
		fmt.Printf("\nPer-pass compile timings:\n%s", cliutil.PassTimings(batch.Stats))
	}
	if cf.Stats {
		fmt.Printf("\nPipeline stats:\n%s", batch.Stats)
	}
	// Stop the profiles before ob.Finish: with -serve, Finish blocks until
	// Ctrl-C, and os.Exit below skips deferred functions.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "schedcmp:", err)
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "schedcmp:", err)
	}
	os.Exit(code)
}

// maxTimelineLoops caps how many traced loops merge their machine timeline
// into the Chrome trace: each timeline carries per-cycle spans for every
// processor, so an unbounded batch would swamp the trace viewer.
const maxTimelineLoops = 8

// printWhy re-simulates both schedules under the cycle-accurate machine
// tracer (which verifies that the attribution covers 100% of every
// processor's cycles) and prints the stall-cause diff plus the served
// schedule's hottest synchronization pairs. The served schedule's tracer is
// returned so its machine timeline can be merged into the run's trace.
func printWhy(w io.Writer, list, served *doacross.Schedule, n, window int) (*doacross.SimTracer, error) {
	opt := doacross.SimOptions{Lo: 1, Hi: n, Window: window}
	_, ltr, err := doacross.SimulateTraced(list, opt)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", list.Method, err)
	}
	_, str, err := doacross.SimulateTraced(served, opt)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", served.Method, err)
	}
	lu, su := ltr.Utilization(), str.Utilization()
	fmt.Fprintf(w, "\n== why: stall-cause attribution at n=%d ==\n", n)
	fmt.Fprintf(w, "%-26s %12s %12s %12s\n", "", list.Method, served.Method, "delta")
	row := func(name string, a, b int) {
		fmt.Fprintf(w, "%-26s %12d %12d %+12d\n", name, a, b, b-a)
	}
	row("cycles (makespan)", lu.Cycles, su.Cycles)
	row("issued proc-cycles", lu.IssuedCycles, su.IssuedCycles)
	row("sync-wait proc-cycles", lu.SyncWaitCycles, su.SyncWaitCycles)
	row("  on LBD arcs", lu.LBDWaitCycles, su.LBDWaitCycles)
	row("  on LFD arcs", lu.LFDWaitCycles, su.LFDWaitCycles)
	row("window-wait proc-cycles", lu.WindowWaitCycles, su.WindowWaitCycles)
	row("drain proc-cycles", lu.DrainCycles, su.DrainCycles)
	row("empty slots: RAW", lu.EmptyRAW, su.EmptyRAW)
	row("empty slots: FU busy", lu.EmptyFUBusy, su.EmptyFUBusy)
	row("empty slots: issue width", lu.EmptyWidth, su.EmptyWidth)
	row("empty slots: drain", lu.EmptyDrain, su.EmptyDrain)
	row("signals sent", lu.SignalsSent, su.SignalsSent)
	fmt.Fprintf(w, "%-26s %11.1f%% %11.1f%% %+11.1f%%\n", "issue-slot efficiency",
		100*lu.SlotEfficiency, 100*su.SlotEfficiency, 100*(su.SlotEfficiency-lu.SlotEfficiency))
	if stalls := str.SyncStalls(); len(stalls) > 0 {
		fmt.Fprintf(w, "hottest sync pairs (%s):\n", served.Method)
		for i, st := range stalls {
			if i == 5 {
				fmt.Fprintf(w, "  ... and %d more\n", len(stalls)-i)
				break
			}
			kind := "LFD"
			if st.LBD {
				kind = "LBD"
			}
			fmt.Fprintf(w, "  %-8s d=%-3d %s %8d stall cycles over %d waits\n",
				st.Signal, st.Dist, kind, st.Cycles, st.Count)
		}
	}
	return str, nil
}

func printSpans(s *doacross.Schedule) {
	for _, p := range s.PairSpans() {
		kind := "LFD"
		if p.LBD() {
			kind = "LBD"
		}
		fmt.Printf("  pair %s d=%d: wait@%d send@%d  %s (span %d)\n",
			p.Signal, p.Distance, p.WaitCycle, p.SendCycle, kind, p.Span())
	}
}

// splitLoops cuts a source file into per-loop chunks on ENDDO lines, so a
// loop that cannot parse can be isolated from its neighbours.
func splitLoops(src string) []string {
	var out []string
	var cur []string
	flush := func() {
		chunk := strings.Join(cur, "\n")
		if strings.TrimSpace(chunk) != "" {
			out = append(out, chunk)
		}
		cur = nil
	}
	for _, line := range strings.Split(src, "\n") {
		cur = append(cur, line)
		if strings.EqualFold(strings.TrimSpace(line), "ENDDO") {
			flush()
		}
	}
	flush()
	return out
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedcmp:", err)
	os.Exit(1)
}
