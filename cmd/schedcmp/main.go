// Command schedcmp compiles a DOACROSS loop and compares traditional list
// scheduling against the paper's synchronization-aware scheduling on a
// chosen machine, printing both schedules, the synchronization pair spans,
// and simulated parallel execution times.
//
// Usage:
//
//	schedcmp [-issue 4] [-fu 1] [-uniform] [-n 100] [-baseline cp] [file]
//
// With no file, the loop is read from standard input. Example loop:
//
//	DO I = 1, N
//	  S1: B[I] = A[I-2] + E[I+1]
//	  S2: G[I-3] = A[I-1] * E[I+2]
//	  S3: A[I] = B[I] + C[I+3]
//	ENDDO
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doacross"
)

func main() {
	issue := flag.Int("issue", 4, "issue width")
	fu := flag.Int("fu", 1, "function units per class")
	uniform := flag.Bool("uniform", false, "use single-cycle latencies everywhere (Fig. 4 setting)")
	n := flag.Int("n", 100, "loop trip count (one processor per iteration)")
	baseline := flag.String("baseline", "cp", "baseline priority: cp (critical path) or order (program order)")
	gantt := flag.Bool("gantt", false, "print per-cycle function-unit occupancy charts")
	dot := flag.Bool("dot", false, "print the data-flow graph in Graphviz DOT format and exit")
	window := flag.Int("window", 0, "signal hardware window (0 = unbounded)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := doacross.Compile(src)
	if err != nil {
		fail(err)
	}
	var m doacross.Machine
	if *uniform {
		m = doacross.UniformMachine(*issue, *fu)
	} else {
		m = doacross.NewMachine(*issue, *fu)
	}

	fmt.Println("== Synchronized DOACROSS form ==")
	fmt.Print(prog.DoacrossSource())
	fmt.Println("\n== Three-address code ==")
	fmt.Print(prog.Listing())
	fmt.Println("\n== Data-flow graph ==")
	fmt.Println(prog.GraphInfo())
	if *dot {
		fmt.Print(prog.Graph.DOT())
		return
	}

	var list *doacross.Schedule
	switch *baseline {
	case "cp":
		list, err = prog.ScheduleList(m)
	case "order":
		list, err = prog.ScheduleListProgramOrder(m)
	default:
		fail(fmt.Errorf("unknown baseline %q", *baseline))
	}
	if err != nil {
		fail(err)
	}
	syn, err := prog.ScheduleSync(m)
	if err != nil {
		fail(err)
	}
	for _, s := range []*doacross.Schedule{list, syn} {
		if err := s.Validate(); err != nil {
			fail(fmt.Errorf("%s schedule invalid: %w", s.Method, err))
		}
		fmt.Printf("\n== %s schedule (%s, %d rows) ==\n", s.Method, m.Name, s.Length())
		fmt.Print(s.String())
		if *gantt {
			fmt.Println()
			fmt.Print(s.Gantt())
		}
		printSpans(s)
		t, err := doacross.SimulateOptions(s, doacross.SimOptions{Lo: 1, Hi: *n, Window: *window})
		if err != nil {
			fail(err)
		}
		fmt.Printf("register pressure (max live temps): %d\n", s.MaxLive())
		fmt.Printf("parallel execution time (n=%d): %d cycles, %d stall cycles\n",
			*n, t.Total, t.StallCycles)
	}
	lt, err := doacross.SimulateOptions(list, doacross.SimOptions{Lo: 1, Hi: *n, Window: *window})
	if err != nil {
		fail(err)
	}
	st, err := doacross.SimulateOptions(syn, doacross.SimOptions{Lo: 1, Hi: *n, Window: *window})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nimprovement: %.2f%%\n", doacross.Speedup(lt.Total, st.Total))
}

func printSpans(s *doacross.Schedule) {
	for _, p := range s.PairSpans() {
		kind := "LFD"
		if p.LBD() {
			kind = "LBD"
		}
		fmt.Printf("  pair %s d=%d: wait@%d send@%d  %s (span %d)\n",
			p.Signal, p.Distance, p.WaitCycle, p.SendCycle, kind, p.Span())
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedcmp:", err)
	os.Exit(1)
}
