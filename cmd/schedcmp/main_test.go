package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"doacross"
)

var update = flag.Bool("update", false, "rewrite golden files")

const fig1 = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

// TestWhyGolden pins the -why stall-attribution report for the paper's
// Fig. 1 loop (4-issue uniform machine, n=100) to a golden file. The report
// is deterministic — every number is a verified cycle count from the traced
// simulation — so any drift means the attribution or the format changed.
// Regenerate with: go test ./cmd/schedcmp -run WhyGolden -update
func TestWhyGolden(t *testing.T) {
	prog, err := doacross.Compile(fig1)
	if err != nil {
		t.Fatal(err)
	}
	m := doacross.UniformMachine(4, 1)
	list, err := prog.ScheduleListProgramOrder(m)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := prog.ScheduleSync(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := printWhy(&buf, list, syn, 100, 0); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "fig1_why.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-why report diverges from %s:\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}
