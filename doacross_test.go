package doacross

import (
	"strings"
	"testing"
)

const fig1 = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func TestCompilePipeline(t *testing.T) {
	p, err := Compile(fig1)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsDoall() {
		t.Error("fig1 loop is not DOALL")
	}
	lfd, lbd := p.CountLexical()
	if lfd != 0 || lbd != 2 {
		t.Errorf("lexical = (%d,%d), want (0,2)", lfd, lbd)
	}
	if !strings.Contains(p.DoacrossSource(), "Send_Signal(S3)") {
		t.Error("DoacrossSource missing send")
	}
	if !strings.Contains(p.Listing(), "Wait_Signal(S3, I-2)") {
		t.Error("Listing missing wait")
	}
	if !strings.Contains(p.GraphInfo(), "Sigwat") {
		t.Errorf("GraphInfo = %q", p.GraphInfo())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not a loop"); err == nil {
		t.Error("expected parse error")
	}
}

func TestEndToEndComparison(t *testing.T) {
	p := MustCompile(fig1)
	c, err := p.Compare(Machine4Issue(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.SyncTime >= c.ListTime {
		t.Errorf("no improvement: %+v", c)
	}
	if c.Improvement <= 0 {
		t.Error("non-positive improvement")
	}
	if c.SyncLBD >= c.ListLBD {
		t.Errorf("LBD count not reduced: %d vs %d", c.SyncLBD, c.ListLBD)
	}
	s := c.String()
	for _, want := range []string{"list scheduling", "new  scheduling", "improvement"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExecuteMatchesSequential(t *testing.T) {
	p := MustCompile(fig1)
	s, err := p.ScheduleSync(Machine2Issue(2))
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	seq := p.SeedStore(n, 7)
	par := seq.Clone()
	if err := p.RunSequential(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s, par, SimOptions{Lo: 1, Hi: n}); err != nil {
		t.Fatal(err)
	}
	if d := seq.Diff(par); d != "" {
		t.Errorf("parallel execution diverges: %s", d)
	}
}

func TestScheduleBestNeverWorse(t *testing.T) {
	p := MustCompile(fig1)
	for _, m := range PaperMachines() {
		list, err := p.ScheduleList(m)
		if err != nil {
			t.Fatal(err)
		}
		best, err := p.ScheduleBest(m)
		if err != nil {
			t.Fatal(err)
		}
		n := 100
		if Simulate(best, n).Total > Simulate(list, n).Total {
			t.Errorf("%s: best slower than list", m.Name)
		}
	}
}

func TestPredictFacade(t *testing.T) {
	p := MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	s, err := p.ScheduleSync(UniformMachine(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := 50
	if got, want := Predict(s, n), Simulate(s, n).Total; got != want {
		t.Errorf("Predict = %d, simulated = %d", got, want)
	}
}

func TestSpeedupFacade(t *testing.T) {
	if Speedup(100, 25) != 75 {
		t.Error("Speedup(100,25) != 75")
	}
}

func TestSimulateOptionsProcs(t *testing.T) {
	p := MustCompile(fig1)
	s, err := p.ScheduleSync(Machine4Issue(2))
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 32})
	if err != nil {
		t.Fatal(err)
	}
	two, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 32, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if two.Total < full.Total {
		t.Error("2 processors cannot beat 32")
	}
}

func TestAblationFacade(t *testing.T) {
	p := MustCompile(fig1)
	s, err := p.ScheduleSyncWithOptions(Machine4Issue(1), SyncOptions{NoLazyWaits: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSeedStoreMarginCoversOffsets(t *testing.T) {
	p := MustCompile("DO I = 1, N\nA[I] = B[I-7] + C[I+9]\nENDDO")
	st := p.SeedStore(5, 3)
	// Elements up to offset 9 beyond the range must be seeded (non-zero with
	// high probability under the generator; check presence in the map).
	if _, ok := st.Arrays["C"][5+9]; !ok {
		t.Error("seed store does not cover C[I+9]")
	}
	if _, ok := st.Arrays["B"][1-7]; !ok {
		t.Error("seed store does not cover B[I-7]")
	}
}
