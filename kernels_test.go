package doacross

// Integration tests over the kernel corpus in testdata/kernels: every .loop
// file (Livermore-style shapes: recurrences, reductions, relaxations,
// indirect subscripts, guarded updates) runs through the complete pipeline —
// parse, analyze, synchronize, compile, schedule both ways on every paper
// machine, simulate, execute in parallel with real data, and assemble to
// machine code — with differential checks at each level.
import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/lang"
)

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func kernelSources(t *testing.T) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "kernels"))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".loop") {
			continue
		}
		b, err := os.ReadFile(filepath.Join("testdata", "kernels", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(e.Name(), ".loop")] = string(b)
	}
	if len(out) < 10 {
		t.Fatalf("kernel corpus too small: %d files", len(out))
	}
	return out
}

func kernelPrograms(t *testing.T, src string) []*Program {
	t.Helper()
	progs, err := CompileFile(src)
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

func TestKernelsCompile(t *testing.T) {
	for name, src := range kernelSources(t) {
		t.Run(name, func(t *testing.T) {
			for _, prog := range kernelPrograms(t, src) {
				if len(prog.Code.Instrs) == 0 {
					t.Fatal("no code generated")
				}
			}
		})
	}
}

// kernelExpectations pin the dependence structure of each kernel.
var kernelExpectations = map[string]struct {
	doall    bool
	lbd, lfd int // -1 = don't check
}{
	"firstsum":   {doall: false, lbd: 1, lfd: 0},
	"tridiag":    {doall: false, lbd: 1, lfd: 0},
	"state":      {doall: true, lbd: 0, lfd: 0},
	"iir":        {doall: false, lbd: 2, lfd: 0},
	"hydro":      {doall: true, lbd: 0, lfd: 0},
	"innerprod":  {doall: false, lbd: -1, lfd: -1},
	"maxmono":    {doall: false, lbd: -1, lfd: -1},
	"pic1d":      {doall: false, lbd: -1, lfd: -1},
	"relax":      {doall: false, lbd: -1, lfd: -1},
	"wavefront":  {doall: false, lbd: 1, lfd: 1},
	"convert":    {doall: false, lbd: 1, lfd: 0},
	"banded":     {doall: false, lbd: 1, lfd: 0},
	"smooth":     {doall: false, lbd: -1, lfd: -1},
	"twophase":   {doall: false, lbd: 1, lfd: 0}, // first loop
	"clip":       {doall: false, lbd: -1, lfd: -1},
	"interleave": {doall: false, lbd: 2, lfd: 0},
	// PR 10 precision-showcase kernels: the precise engine proves boundsep
	// independent (bound separation over its constant 8-iteration range),
	// symoff an exact forward distance-3 flow (symbolic offsets cancel), and
	// fixedcell an exact same-element web.
	"boundsep":  {doall: true, lbd: 0, lfd: 0},
	"symoff":    {doall: false, lbd: 0, lfd: 1},
	"fixedcell": {doall: false, lbd: 2, lfd: 0},
}

func TestKernelsDependenceStructure(t *testing.T) {
	for name, src := range kernelSources(t) {
		want, ok := kernelExpectations[name]
		if !ok {
			t.Errorf("kernel %s has no expectation entry", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			prog := kernelPrograms(t, src)[0]
			if prog.IsDoall() != want.doall {
				t.Errorf("IsDoall = %v, want %v (%v)", prog.IsDoall(), want.doall, prog.Dependences())
			}
			lfd, lbd := prog.CountLexical()
			if want.lbd >= 0 && lbd != want.lbd {
				t.Errorf("LBD = %d, want %d (%v)", lbd, want.lbd, prog.Dependences())
			}
			if want.lfd >= 0 && lfd != want.lfd {
				t.Errorf("LFD = %d, want %d (%v)", lfd, want.lfd, prog.Dependences())
			}
		})
	}
}

func TestKernelsScheduleAndSimulate(t *testing.T) {
	for name, src := range kernelSources(t) {
		t.Run(name, func(t *testing.T) {
			for _, prog := range kernelPrograms(t, src) {
				testScheduleAndSimulate(t, prog)
			}
		})
	}
}

func testScheduleAndSimulate(t *testing.T, prog *Program) {
	t.Helper()
	for _, m := range PaperMachines() {
		list, err := prog.ScheduleList(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		syn, err := prog.ScheduleSync(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, s := range []*Schedule{list, syn} {
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", m.Name, s.Method, err)
			}
		}
		n := 100
		ta := Simulate(list, n).Total
		tb := Simulate(syn, n).Total
		// The pure heuristic may lose by a constant couple of cycles
		// on trivial bodies; anything beyond 1 % is a regression.
		if float64(tb) > 1.01*float64(ta) {
			t.Errorf("%s: new scheduling slower (%d vs %d)", m.Name, tb, ta)
		}
		best, err := prog.ScheduleBest(m)
		if err != nil {
			t.Fatal(err)
		}
		if Simulate(best, n).Total > ta {
			t.Errorf("%s: Best slower than list", m.Name)
		}
	}
}

func TestKernelsParallelExecutionCorrect(t *testing.T) {
	for name, src := range kernelSources(t) {
		t.Run(name, func(t *testing.T) {
			source, err := ParseSource(src)
			if err != nil {
				t.Fatal(err)
			}
			progs := kernelPrograms(t, src)
			n := 16
			ref := source.SeedStore(n, 24, 42)
			// The guarded-max kernel needs a sensible initial M.
			ref.SetScalar("M", -1e6)
			got := ref.Clone()
			if err := source.Run(ref); err != nil {
				t.Fatal(err)
			}
			// Loops execute one after another on the shared store, each as a
			// DOACROSS over n processors. Constant-bound loops run their own
			// iteration range — the sequential reference does too, and any
			// bound-separation refinement is only proven inside it.
			for _, prog := range progs {
				s, err := prog.ScheduleSync(Machine4Issue(1))
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := 1, n
				if clo, ok := lang.ConstInt(prog.Loop.Lo); ok {
					if chi, ok := lang.ConstInt(prog.Loop.Hi); ok {
						lo, hi = clo, chi
					}
				}
				if _, err := Execute(s, got, SimOptions{Lo: lo, Hi: hi}); err != nil {
					t.Fatal(err)
				}
			}
			if d := ref.Diff(got); d != "" {
				t.Errorf("parallel result wrong: %s", d)
			}
		})
	}
}

func TestKernelsAssemble(t *testing.T) {
	for name, src := range kernelSources(t) {
		t.Run(name, func(t *testing.T) {
			prog := kernelPrograms(t, src)[0]
			n := 10
			code, err := prog.Assemble(1-20, n+20)
			if err != nil {
				t.Fatal(err)
			}
			ref := prog.SeedStore(n, 7)
			ref.SetScalar("M", -1e6)
			// Symbolic subscript offsets must stay inside the flat memory
			// arena's window (the symbolic simulator has no such bound).
			ref.SetScalar("K", 2)
			// Indirection arrays must hold in-window subscripts for the flat
			// memory arena (the symbolic simulator has no such bound).
			if _, ok := ref.Arrays["IX"]; ok {
				for i := -19; i <= n+19; i++ {
					ref.SetElem("IX", i, float64((abs(i)%n)+1))
				}
			}
			got := ref.Clone()
			if err := prog.RunSequential(ref); err != nil {
				t.Fatal(err)
			}
			if err := code.Run(got, true); err != nil {
				t.Fatal(err)
			}
			for _, arr := range prog.Loop.Arrays() {
				for i := 1; i <= n; i++ {
					a, b := ref.Elem(arr, i), got.Elem(arr, i)
					if a != b && !(a != a && b != b) {
						t.Fatalf("%s[%d]: %v vs %v after binary execution", arr, i, b, a)
					}
				}
			}
		})
	}
}

// TestKernelsImprovementProfile pins the qualitative outcome per kernel
// class at 4-issue: recurrence-bound kernels gain little, convertible and
// filler-heavy kernels gain a lot, DOALL kernels have nothing to gain.
func TestKernelsImprovementProfile(t *testing.T) {
	srcs := kernelSources(t)
	gain := func(name string) float64 {
		prog := kernelPrograms(t, srcs[name])[0]
		c, err := prog.Compare(Machine4Issue(1), 100)
		if err != nil {
			t.Fatal(err)
		}
		return c.Improvement
	}
	if g := gain("convert"); g < 50 {
		t.Errorf("convert kernel gain = %.1f%%, want > 50%%", g)
	}
	if g := gain("firstsum"); g > 60 {
		t.Errorf("firstsum (tight chain) gain = %.1f%%, expected modest (< 60%%)", g)
	}
	if g := gain("state"); g != 0 {
		t.Errorf("DOALL kernel gain = %.1f%%, want 0", g)
	}
	if gc, gt := gain("convert"), gain("tridiag"); gc <= gt {
		t.Errorf("convertible kernel (%.1f%%) should beat the pure recurrence (%.1f%%)", gc, gt)
	}
}
