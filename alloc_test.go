// Allocation-regression pins for the zero-alloc hot path. Excluded under
// the race detector: -race instruments every allocation and inflates
// testing.AllocsPerRun, so the pins only hold (and only matter) in normal
// builds — CI runs them in the bench job.

//go:build !race

package doacross_test

import (
	"testing"

	"doacross"
	"doacross/internal/hotbench"
	"doacross/internal/pipeline"
)

// TestScratchScheduleAllocs pins steady-state scheduling into a warm
// Scratch at exactly zero allocations per call, for every heuristic
// backend. This is the contract BenchmarkHotScheduleWarm reports on: the
// schedule is borrowed from the scratch, every buffer is grown once and
// recycled, so a scheduling service in steady state puts no pressure on
// the garbage collector.
func TestScratchScheduleAllocs(t *testing.T) {
	prog := doacross.MustCompile(hotbench.Fig1)
	m := doacross.Machine4Issue(1)
	for _, backend := range []string{"sync", "list", "order", "best"} {
		t.Run(backend, func(t *testing.T) {
			sc := doacross.NewScratch()
			// One cold call grows the buffers; the pin is on the warm
			// steady state after it.
			if _, err := prog.ScheduleWith(backend, m, sc); err != nil {
				t.Fatal(err)
			}
			var failed error
			got := testing.AllocsPerRun(100, func() {
				s, err := prog.ScheduleWith(backend, m, sc)
				if err != nil {
					failed = err
				} else if s.Length() == 0 {
					t.Error("empty schedule")
				}
			})
			if failed != nil {
				t.Fatal(failed)
			}
			if got != 0 {
				t.Errorf("warm-scratch %s scheduling: %v allocs/op, want 0", backend, got)
			}
		})
	}
}

// TestSimNilTracerAllocs pins the untraced recurrence simulator's warm
// steady state at exactly 2 allocations per run — the returned IterIssue
// and IterDone timing slices, the only allocation sim.Time documents. The
// point of the pin is the tracer hook: with no tracer attached it must add
// nothing to the hot path. The pooled iteration scratch is warmed by one
// cold call first.
func TestSimNilTracerAllocs(t *testing.T) {
	prog := doacross.MustCompile(hotbench.Fig1)
	s, err := prog.ScheduleSync(doacross.Machine4Issue(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := doacross.SimOptions{Lo: 1, Hi: hotbench.N}
	if _, err := doacross.SimulateOptions(s, opt); err != nil {
		t.Fatal(err)
	}
	var failed error
	got := testing.AllocsPerRun(100, func() {
		tm, err := doacross.SimulateOptions(s, opt)
		if err != nil {
			failed = err
		} else if tm.Total == 0 {
			t.Error("zero makespan")
		}
	})
	if failed != nil {
		t.Fatal(failed)
	}
	if got != 2 {
		t.Errorf("warm untraced simulation: %v allocs/op, want exactly 2 (the returned timing slices)", got)
	}
}

// TestPipelineCachedHitAllocs pins the per-request allocation count of a
// cached-hit batch request — the steady-state service shape where every
// stage after compile is served from the schedule cache. The bound has a
// little headroom over the measured count (21 allocs/op) because the
// pipeline spawns its worker goroutine per Run; it exists to catch the
// hot path regressing back to per-request rescheduling, which costs
// hundreds of allocations.
func TestPipelineCachedHitAllocs(t *testing.T) {
	reqs := []pipeline.Request{{Name: "hot", Source: hotbench.Fig1, N: hotbench.N}}
	opt := doacross.BatchOptions{
		Workers:  1,
		Machines: []doacross.Machine{doacross.Machine4Issue(1)},
		Cache:    doacross.NewScheduleCache(),
	}
	var failed error
	run := func() {
		batch, err := pipeline.Run(reqs, opt)
		if err != nil {
			failed = err
			return
		}
		if err := batch.FirstErr(); err != nil {
			failed = err
		}
	}
	run() // warm the cache
	got := testing.AllocsPerRun(50, run)
	if failed != nil {
		t.Fatal(failed)
	}
	const limit = 40
	if got > limit {
		t.Errorf("cached-hit pipeline request: %v allocs/op, want <= %d", got, limit)
	}
}
