package doacross_test

// The hot-path benchmark entry points tracked by BENCH_hotpath.json. The
// workloads live in internal/hotbench so `go test -bench 'Batch64|Hot'`
// and the snapshot emitter (`go run ./cmd/report -hotpath-json`) measure
// identical code. This file is in the external test package because
// hotbench imports doacross itself.

import (
	"testing"

	"doacross/internal/hotbench"
)

// BenchmarkBatch64 compares scheduling the 64-loop corpus one loop at a time
// (the pre-pipeline code path: compile, schedule both ways, simulate,
// serially, no reuse) against the batch pipeline with 8 workers and a
// persistent schedule cache (the steady-state service shape). The pipeline
// sub-benchmark reports the cache hit rate; stage latencies are available
// via -stats on cmd/benchtab and cmd/schedcmp.
func BenchmarkBatch64(b *testing.B) {
	b.Run("serial", hotbench.SerialBatch)
	b.Run("pipeline-j8", hotbench.PipelineBatch)
}

// BenchmarkHotCompileSchedule is the single-loop compile→schedule hot path:
// parse, dependence analysis, synchronization insertion, lowering, graph
// build, then a sync schedule into a warm Scratch.
func BenchmarkHotCompileSchedule(b *testing.B) { hotbench.CompileSchedule(b) }

// BenchmarkHotScheduleWarm is the steady-state scheduling kernel alone: a
// compiled program rescheduled into a warm Scratch. The loop body allocates
// nothing (pinned to 0 by TestScratchScheduleAllocs).
func BenchmarkHotScheduleWarm(b *testing.B) { hotbench.ScheduleWarm(b) }

// BenchmarkHotPipelineCachedHit is a steady-state batch request whose
// schedule is already cached: one request through a warm pipeline, measuring
// the per-request overhead when every stage after compile is a cache hit.
func BenchmarkHotPipelineCachedHit(b *testing.B) { hotbench.PipelineCachedHit(b) }

// BenchmarkHotSim measures the recurrence simulator on the Fig. 1 sync
// schedule untraced (the pipeline's hot path — the nil tracer hook must
// cost nothing, pinned by TestSimNilTracerAllocs) against the same run with
// the cycle-accurate tracer attached and its attribution books verified
// (the cost of -why, -machine-obs and the utilization audit).
func BenchmarkHotSim(b *testing.B) {
	b.Run("untraced", hotbench.SimUntraced)
	b.Run("traced", hotbench.SimTraced)
}
