// Migration contrasts three generations of the author's techniques on one
// loop: plain list scheduling, source-level synchronization migration
// (EURO-PAR'95, the cited predecessor), and the paper's instruction-level
// scheduling — showing why the paper moved the problem into the scheduler:
// a synchronization-blind scheduler undoes whatever the source level
// arranged.
package main

import (
	"fmt"
	"log"

	"doacross"
)

// A convertible loop: the A[I-2] consumer (S2) is data-independent of the
// A[I] producer (S4), so migration can hoist the producer — but only an
// instruction scheduler that respects synchronization keeps it hoisted.
const loopSrc = `
DO I = 1, N
  S1: P[I+4] = E[I+5] + F[I-6]
  S2: B[I+1] = A[I-2] * E[I-1]
  S3: Q[I+4] = G[I+6] - H[I-5]
  S4: A[I] = F[I] + G[I+2]
  S5: R[I+4] = E[I+7] + H[I-7]
ENDDO
`

func main() {
	prog, err := doacross.Compile(loopSrc)
	if err != nil {
		log.Fatal(err)
	}
	_, lbd := prog.CountLexical()
	fmt.Printf("original loop: %d LBD\n%s\n", lbd, prog.DoacrossSource())

	mig, err := prog.Migrate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after synchronization migration: %d -> %d LBD\n", mig.Before, mig.After)
	migProg, err := doacross.CompileLoop(mig.Loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(migProg.DoacrossSource())

	// Semantics are preserved — prove it.
	n := 50
	a := prog.SeedStore(n, 3)
	b := a.Clone()
	if err := prog.RunSequential(a); err != nil {
		log.Fatal(err)
	}
	if err := migProg.RunSequential(b); err != nil {
		log.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		log.Fatalf("migration changed semantics: %s", d)
	}
	fmt.Println("\nmigrated loop is semantically identical (differential check passed)")

	m := doacross.Machine4Issue(1)
	show := func(name string, t int) { fmt.Printf("  %-34s %6d cycles\n", name, t) }

	fmt.Printf("\nparallel execution time, n=%d, %s:\n", n, m.Name)
	// Program-order list scheduling respects source placement.
	lo, err := prog.ScheduleListProgramOrder(m)
	if err != nil {
		log.Fatal(err)
	}
	lom, err := migProg.ScheduleListProgramOrder(m)
	if err != nil {
		log.Fatal(err)
	}
	show("list (program order)", doacross.Simulate(lo, n).Total)
	show("migration + list (program order)", doacross.Simulate(lom, n).Total)

	// Critical-path list scheduling hoists the waits and destroys it.
	lc, err := prog.ScheduleList(m)
	if err != nil {
		log.Fatal(err)
	}
	lcm, err := migProg.ScheduleList(m)
	if err != nil {
		log.Fatal(err)
	}
	show("list (critical path)", doacross.Simulate(lc, n).Total)
	show("migration + list (critical path)", doacross.Simulate(lcm, n).Total)

	// The paper's technique needs no source-level help.
	sy, err := prog.ScheduleSync(m)
	if err != nil {
		log.Fatal(err)
	}
	show("new instruction scheduling", doacross.Simulate(sy, n).Total)
}
