// Paperfig4 reproduces the paper's worked example end to end: the Fig. 1
// loop, its synchronization insertion (Fig. 1(b)), the three-address code
// (Fig. 2), the Sigwat/Wat partition with the synchronization path (Fig. 3),
// and the list vs. new schedules at 4-issue (Fig. 4), closing with the
// parallel-execution-time comparison the paper quotes ((12·N)+13 vs
// ~(N/2)·7+13 in its position-based model).
package main

import (
	"fmt"
	"log"

	"doacross"
)

const fig1 = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func main() {
	prog, err := doacross.Compile(fig1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 1(a): the source loop ===")
	fmt.Print(prog.Loop.String())

	fmt.Println("\n=== Fig. 1(b): after synchronization insertion ===")
	fmt.Print(prog.DoacrossSource())
	fmt.Println("\nTwo dependences: A[I] (S3) -> A[I-2] (S1) at distance 2 and")
	fmt.Println("A[I] (S3) -> A[I-1] (S2) at distance 1; one shared Send_Signal(S3).")

	fmt.Println("\n=== Fig. 2: three-address code ===")
	fmt.Print(prog.Listing())
	fmt.Println("(Instructions 1-26 match the paper one to one; the paper fuses our")
	fmt.Println("add 26 + store 27 into its single line 26.)")

	fmt.Println("\n=== Fig. 3: data-flow graph with synchronization arcs ===")
	fmt.Println(prog.GraphInfo())
	for _, sp := range prog.Graph.SyncPaths() {
		ids := make([]int, len(sp.Nodes))
		for i, v := range sp.Nodes {
			ids[i] = prog.Code.Instrs[v].ID
		}
		fmt.Printf("synchronization path SP(Wat,Sig) d=%d: instructions %v\n", sp.Distance, ids)
	}

	// Fig. 4 uses 4-issue with one unit each and single-cycle latencies.
	m := doacross.UniformMachine(4, 1)

	list, err := prog.ScheduleListProgramOrder(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 4(a): list scheduling, 4-issue ===")
	fmt.Print(list.String())
	report(list)

	syn, err := prog.ScheduleSync(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 4(b): the new scheduling ===")
	fmt.Print(syn.String())
	report(syn)

	n := 100
	ta := doacross.Simulate(list, n).Total
	tb := doacross.Simulate(syn, n).Total
	fmt.Printf("\nparallel execution time, n=%d iterations on %d processors:\n", n, n)
	fmt.Printf("  list scheduling: %5d cycles\n", ta)
	fmt.Printf("  new  scheduling: %5d cycles\n", tb)
	fmt.Printf("  improvement:     %5.1f%%\n", doacross.Speedup(ta, tb))
	fmt.Printf("\nLBD loop theorem cross-check (model.Predict): list %d, new %d\n",
		doacross.Predict(list, n), doacross.Predict(syn, n))
}

func report(s *doacross.Schedule) {
	for _, p := range s.PairSpans() {
		kind := "LFD"
		if p.LBD() {
			kind = "LBD"
		}
		fmt.Printf("pair (Wait d=%d, Send %s): wait@%d send@%d -> %s\n",
			p.Distance, p.Signal, p.WaitCycle, p.SendCycle, kind)
	}
}
