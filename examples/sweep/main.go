// Sweep explores the Table 2 axes beyond the paper's four points: issue
// width x function-unit count x trip count, printing a data series per
// scheduler that shows where the two techniques diverge and where extra
// hardware stops helping (the new schedule is bound by the synchronization
// path, not by issue width — §4.2 observation 1).
package main

import (
	"fmt"
	"log"

	"doacross"
)

const loopSrc = `
DO I = 1, N
  S1: P[I+4] = E[I+5] + F[I-6]
  S2: Q[I+4] = G[I+6] * H[I-5]
  S3: B[I] = A[I-2] + E[I+1]
  S4: R[I+4] = F[I+7] - G[I-7]
  S5: A[I] = B[I] + C[I+3]
  S6: T[I+4] = H[I+8] + E[I-8]
ENDDO
`

func main() {
	prog, err := doacross.Compile(loopSrc)
	if err != nil {
		log.Fatal(err)
	}
	n := 100

	fmt.Println("=== issue width x unit count sweep (n=100) ===")
	fmt.Printf("%8s %5s %10s %10s %12s\n", "issue", "FUs", "T_list", "T_new", "improvement")
	for _, issue := range []int{1, 2, 4, 8} {
		for _, fu := range []int{1, 2, 4} {
			m := doacross.NewMachine(issue, fu)
			cmp, err := prog.Compare(m, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d %5d %10d %10d %11.2f%%\n",
				issue, fu, cmp.ListTime, cmp.SyncTime, cmp.Improvement)
		}
	}

	fmt.Println("\n=== trip-count scaling at 4-issue(#FU=1) ===")
	m := doacross.Machine4Issue(1)
	list, err := prog.ScheduleList(m)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := prog.ScheduleSync(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %10s %10s\n", "n", "T_list", "T_new")
	for _, n := range []int{1, 10, 50, 100, 500, 1000} {
		fmt.Printf("%8d %10d %10d\n", n,
			doacross.Simulate(list, n).Total, doacross.Simulate(syn, n).Total)
	}

	fmt.Println("\n=== processor scaling, n=256 iterations, new scheduling ===")
	fmt.Printf("%8s %10s %10s\n", "procs", "T_new", "speedup")
	base := 0
	for _, procs := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		t, err := doacross.SimulateOptions(syn, doacross.SimOptions{Lo: 1, Hi: 256, Procs: procs})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = t.Total
		}
		fmt.Printf("%8d %10d %9.2fx\n", procs, t.Total, float64(base)/float64(t.Total))
	}
}
