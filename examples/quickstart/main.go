// Quickstart: compile a DOACROSS loop, schedule it both ways, and compare
// parallel execution times — the library's three-call workflow.
package main

import (
	"fmt"
	"log"

	"doacross"
)

func main() {
	// A loop with a loop-carried flow dependence: iteration I reads the
	// value iteration I-1 wrote into A.
	prog, err := doacross.Compile(`
DO I = 1, N
  S1: T[I] = A[I-1] * E[I]
  S2: U[I+4] = F[I] + G[I-2]
  S3: V[I+5] = F[I+1] - G[I-3]
  S4: A[I] = T[I] + C[I]
ENDDO`)
	if err != nil {
		log.Fatal(err)
	}

	lfd, lbd := prog.CountLexical()
	fmt.Printf("loop-carried dependences: %d forward (LFD), %d backward (LBD)\n", lfd, lbd)
	fmt.Println("\nsynchronized DOACROSS form:")
	fmt.Print(prog.DoacrossSource())

	// The paper's 4-issue machine with one unit of each class.
	m := doacross.Machine4Issue(1)
	cmp, err := prog.Compare(m, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(cmp)

	// The detailed simulator executes real data and double-checks that the
	// parallel schedule computes exactly what sequential execution does.
	sched, err := prog.ScheduleSync(m)
	if err != nil {
		log.Fatal(err)
	}
	seq := prog.SeedStore(100, 42)
	par := seq.Clone()
	if err := prog.RunSequential(seq); err != nil {
		log.Fatal(err)
	}
	if _, err := doacross.Execute(sched, par, doacross.SimOptions{Lo: 1, Hi: 100}); err != nil {
		log.Fatal(err)
	}
	if d := seq.Diff(par); d != "" {
		log.Fatalf("parallel result differs: %s", d)
	}
	fmt.Println("\ndetailed simulation matches sequential execution bit for bit")
}
