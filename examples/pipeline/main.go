// Pipeline visualizes the DOACROSS wavefront on the detailed simulator: each
// iteration runs on its own processor but cannot pass its Wait_Signal until
// the producing iteration's Send_Signal lands, so iteration start times form
// a software pipeline whose skew is exactly the wait→send span the scheduler
// controls.
package main

import (
	"fmt"
	"log"
	"strings"

	"doacross"
)

const loopSrc = `
DO I = 1, N
  S1: B[I] = A[I-1] + E[I+1]
  S2: P[I+4] = E[I+5] * F[I-5]
  S3: A[I] = B[I] + C[I+2]
ENDDO
`

func main() {
	prog, err := doacross.Compile(loopSrc)
	if err != nil {
		log.Fatal(err)
	}
	m := doacross.Machine4Issue(1)
	n := 12

	for _, mk := range []struct {
		name  string
		build func(doacross.Machine) (*doacross.Schedule, error)
	}{
		{"list scheduling", prog.ScheduleList},
		{"new scheduling", prog.ScheduleSync},
	} {
		s, err := mk.build(m)
		if err != nil {
			log.Fatal(err)
		}
		st := prog.SeedStore(n, 9)
		ref := st.Clone()
		if err := prog.RunSequential(ref); err != nil {
			log.Fatal(err)
		}
		t, err := doacross.Execute(s, st, doacross.SimOptions{Lo: 1, Hi: n})
		if err != nil {
			log.Fatal(err)
		}
		if d := ref.Diff(st); d != "" {
			log.Fatalf("%s: wrong result: %s", mk.name, d)
		}
		fmt.Printf("=== %s: iteration wavefront (total %d cycles) ===\n", mk.name, t.Total)
		scale := 1
		for t.Total/scale > 100 {
			scale++
		}
		for i := 0; i < n; i++ {
			start, end := t.IterIssue[i], t.IterDone[i]
			bar := strings.Repeat(" ", start/scale) +
				strings.Repeat("#", max((end-start)/scale, 1))
			fmt.Printf("iter %3d |%s\n", i+1, bar)
		}
		fmt.Printf("pipeline skew: %d cycles/iteration; 1 column = %d cycles\n\n",
			skew(t), scale)
	}
}

// skew is the steady-state cycles-per-iteration growth of completion times —
// with the wait mid-body, iterations all *start* immediately and stall at
// the wait, so the completion times carry the recurrence.
func skew(t doacross.Timing) int {
	if len(t.IterDone) < 2 {
		return 0
	}
	return t.IterDone[len(t.IterDone)-1] - t.IterDone[len(t.IterDone)-2]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
