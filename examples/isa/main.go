// Isa demonstrates the machine-code backend: the Fig. 1 loop is lowered all
// the way to encoded DLX-like binary (register allocation, constant pool,
// 32-bit words), executed on the machine interpreter, and cross-checked
// against the reference interpreter.
package main

import (
	"fmt"
	"log"

	"doacross"
)

const fig1 = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func main() {
	prog, err := doacross.Compile(fig1)
	if err != nil {
		log.Fatal(err)
	}
	n := 20
	code, err := prog.Assemble(1-8, n+8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== three-address internal form ===")
	fmt.Print(prog.Listing())

	fmt.Println("\n=== assembled DLX-like machine code ===")
	fmt.Print(code.Listing())
	fmt.Printf("\n%d instructions, %d spill slots, %d memory cells, signals %v\n",
		len(code.Insts), code.NumSpills, code.Layout.Cells, code.Signals)

	// Execute the *encoded binary* for all iterations and compare against
	// the reference interpreter.
	ref := prog.SeedStore(n, 1234)
	got := ref.Clone()
	if err := prog.RunSequential(ref); err != nil {
		log.Fatal(err)
	}
	if err := code.Run(got, true); err != nil {
		log.Fatal(err)
	}
	mismatch := false
	for _, name := range prog.Loop.Arrays() {
		for i := 1; i <= n; i++ {
			if ref.Elem(name, i) != got.Elem(name, i) {
				fmt.Printf("MISMATCH %s[%d]: %v vs %v\n", name, i, ref.Elem(name, i), got.Elem(name, i))
				mismatch = true
			}
		}
	}
	if mismatch {
		log.Fatal("binary execution diverged")
	}
	fmt.Printf("\nexecuted %d iterations from the encoded binary; memory matches the reference interpreter\n", n)
}
