package doacross

// Facade-level tests of the hardened execution layer: the degradation
// contract across the whole kernel corpus, and context threading through
// the exported batch and compile entry points.

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
)

// TestFallbackValidatesAcrossKernels forces the scheduling stage to fail for
// every kernel in the corpus and asserts the degradation contract: each loop
// is served by the program-order fallback, flagged with a reason, and the
// fallback passes Validate and simulates to a positive time.
func TestFallbackValidatesAcrossKernels(t *testing.T) {
	srcs := kernelSources(t)
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var loops []*Loop
	for _, name := range names {
		f, err := ParseSource(srcs[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loops = append(loops, f.Loops...)
	}
	batch, err := ScheduleAllLoops(loops, BatchOptions{
		Machines: PaperMachines(),
		FaultHook: func(stage, name string) error {
			if stage == "schedule" {
				return errors.New("forced scheduler failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range batch.Loops {
		if lr.Err != nil {
			t.Fatalf("%s: degradation failed the request: %v", lr.Name, lr.Err)
		}
		if !lr.Degraded() {
			t.Fatalf("%s: scheduler failure did not degrade", lr.Name)
		}
		for _, mr := range lr.Machines {
			if !mr.Degraded || !strings.Contains(mr.DegradedReason, "forced scheduler failure") {
				t.Errorf("%s/%s: degraded=%v reason=%q", lr.Name, mr.Machine, mr.Degraded, mr.DegradedReason)
			}
			if err := mr.Sync.Validate(); err != nil {
				t.Errorf("%s/%s: fallback schedule invalid: %v", lr.Name, mr.Machine, err)
			}
			if mr.SyncTime <= 0 {
				t.Errorf("%s/%s: fallback not simulated (time %d)", lr.Name, mr.Machine, mr.SyncTime)
			}
		}
	}
	if batch.Stats.Fallbacks == 0 {
		t.Error("fallbacks counter untouched")
	}
}

// TestScheduleAllContextCancelled: a dead context fails every request
// individually; the batch call itself still succeeds with ordered results.
func TestScheduleAllContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []string{"DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", "DO I = 1, N\nS = S + A[I]\nENDDO"}
	batch, err := ScheduleAllContext(ctx, srcs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Loops) != len(srcs) {
		t.Fatalf("got %d results, want %d", len(batch.Loops), len(srcs))
	}
	for i, lr := range batch.Loops {
		if lr.Index != i {
			t.Errorf("result %d has Index %d", i, lr.Index)
		}
		if !errors.Is(lr.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", lr.Name, lr.Err)
		}
	}
}

// TestCompileWithContextCancelled: the compile facade honors its context.
func TestCompileWithContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileWithContext(ctx, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", CompileOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := CompileWithContext(context.Background(), "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", CompileOptions{}); err != nil {
		t.Errorf("live context failed compilation: %v", err)
	}
}
