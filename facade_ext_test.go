package doacross

import (
	"strings"
	"testing"
)

func TestFacadeMigrate(t *testing.T) {
	prog := MustCompile("DO I = 1, N\nB[I+1] = A[I-2] + E[I-1]\nA[I] = F[I] * 2\nENDDO")
	mig, err := prog.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if mig.Before != 1 || mig.After != 0 {
		t.Errorf("migration %d -> %d, want 1 -> 0", mig.Before, mig.After)
	}
	// The migrated loop compiles and runs.
	prog2, err := CompileLoop(mig.Loop)
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	a := prog.SeedStore(n, 2)
	b := a.Clone()
	if err := prog.RunSequential(a); err != nil {
		t.Fatal(err)
	}
	if err := prog2.RunSequential(b); err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("migration semantics: %s", d)
	}
}

func TestFacadeAssemble(t *testing.T) {
	prog := MustCompile(fig1)
	n := 10
	code, err := prog.Assemble(1-8, n+8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code.Listing(), "sends") {
		t.Error("assembly missing sends")
	}
	ref := prog.SeedStore(n, 5)
	got := ref.Clone()
	if err := prog.RunSequential(ref); err != nil {
		t.Fatal(err)
	}
	if err := code.Run(got, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range prog.Loop.Arrays() {
		for i := 1; i <= n; i++ {
			if ref.Elem(name, i) != got.Elem(name, i) {
				t.Fatalf("%s[%d] differs after binary execution", name, i)
			}
		}
	}
}

func TestFacadeWindowOption(t *testing.T) {
	prog := MustCompile("DO I = 1, N\nA[I] = E[I]\nB[I+2] = A[I-3] * F[I+1]\nENDDO")
	s, err := prog.ScheduleSync(Machine4Issue(2))
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SimulateOptions(s, SimOptions{Lo: 1, Hi: 100, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Total <= unbounded.Total {
		t.Errorf("window 4 (%d) should be slower than unbounded (%d)", tight.Total, unbounded.Total)
	}
}

func TestFacadeUnroll(t *testing.T) {
	prog := MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	un, err := prog.Unroll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Loop.Body) != 4 {
		t.Fatalf("unrolled body = %d statements", len(un.Loop.Body))
	}
	// Same elements, fewer compressed iterations: per-element time improves.
	elements := 64
	s1, err := prog.ScheduleSync(Machine2Issue(1))
	if err != nil {
		t.Fatal(err)
	}
	s4, err := un.ScheduleSync(Machine2Issue(1))
	if err != nil {
		t.Fatal(err)
	}
	t1 := Simulate(s1, elements).Total
	t4 := Simulate(s4, elements/4).Total
	if t4 >= t1 {
		t.Errorf("unroll-4 (%d cycles) not faster than original (%d cycles)", t4, t1)
	}
	// Parallel execution of the unrolled schedule stays correct.
	ref := un.SeedStore(elements, 5)
	got := ref.Clone()
	if err := un.RunSequential(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s4, got, SimOptions{Lo: 1, Hi: elements / 4}); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(got); d != "" {
		t.Errorf("unrolled parallel execution wrong: %s", d)
	}
}

func TestFacadeGantt(t *testing.T) {
	prog := MustCompile(fig1)
	s, err := prog.ScheduleSync(Machine4Issue(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Gantt(), "cycle") {
		t.Error("gantt missing header")
	}
}

func TestFacadeSmallSurfaces(t *testing.T) {
	if m := NewMachine(3, 2); m.Issue != 3 || m.Units[0] != 2 {
		t.Errorf("NewMachine = %+v", m)
	}
	loop, err := Parse("DO I = 1, N\nA[I] = 1\nENDDO")
	if err != nil || loop.Var != "I" {
		t.Errorf("Parse: %v %v", loop, err)
	}
	prog := MustCompile(fig1)
	if len(prog.Dependences()) != 2 {
		t.Errorf("Dependences = %v", prog.Dependences())
	}
}

func TestFacadeCompareFile(t *testing.T) {
	src := `DO I = 1, N
A[I] = A[I-1] + E[I]
ENDDO

DO I = 1, N
B[I] = A[I] * 2
ENDDO`
	c, err := CompareFile(src, Machine4Issue(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.SyncTime <= 0 || c.ListTime < c.SyncTime {
		t.Errorf("CompareFile = %+v", c)
	}
	if c.Improvement <= 0 {
		t.Errorf("improvement = %v", c.Improvement)
	}
}
