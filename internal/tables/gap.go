package tables

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/exact"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// GapLoop is one compiled loop entering the optimality-gap audit.
type GapLoop struct {
	// Name labels the loop in rows and reports.
	Name string
	// Graph is its synchronization-augmented data-flow graph.
	Graph *dfg.Graph
}

// CompileGapLoops compiles every loop of a source file into audit inputs.
// Multi-loop files yield "<name>#k" entries.
func CompileGapLoops(name, src string) ([]GapLoop, error) {
	f, err := lang.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("gap: %s: %w", name, err)
	}
	var out []GapLoop
	for i, l := range f.Loops {
		a := dep.Analyze(l)
		prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return nil, fmt.Errorf("gap: %s: %w", name, err)
		}
		g, err := dfg.Build(prog, a)
		if err != nil {
			return nil, fmt.Errorf("gap: %s: %w", name, err)
		}
		label := name
		if len(f.Loops) > 1 {
			label = fmt.Sprintf("%s#%d", name, i+1)
		}
		out = append(out, GapLoop{Name: label, Graph: g})
	}
	return out, nil
}

// GapOptions configures the audit.
type GapOptions struct {
	// N is the objective's trip count (0 = 100, the paper's).
	N int
	// MaxNodes is the exact solver's node budget per (loop, machine)
	// problem (0 = exact.DefaultMaxNodes, negative = unlimited).
	MaxNodes int64
	// Configs are the machine shapes to audit (nil = the paper's four).
	Configs []dlx.Config
}

func (o GapOptions) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o GapOptions) configs() []dlx.Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return dlx.PaperConfigs()
}

// GapRow is one (loop, machine shape) measurement: the heuristic's predicted
// parallel time against the exact solver's, and the solver's proven lower
// bound on any schedule's time.
type GapRow struct {
	Loop   string `json:"loop"`
	Config string `json:"config"`
	// HeurT is the best heuristic's T = (n/d)(i-j)+l (core.Best: the
	// paper's scheduler vs both list baselines, never-degrades).
	HeurT int `json:"heur_t"`
	// ExactT is the exact backend's best T within budget.
	ExactT int `json:"exact_t"`
	// Bound is the proven lower bound (== ExactT when Optimal).
	Bound int `json:"bound"`
	// Optimal reports that ExactT was proven minimal within the budget.
	Optimal bool `json:"optimal"`
	// Nodes counts branch-and-bound nodes expanded.
	Nodes int64 `json:"nodes"`
	// GapPct is 100·(HeurT−ExactT)/ExactT — how far the heuristic is above
	// the exact schedule.
	GapPct float64 `json:"gap_pct"`
	// Note carries the solver's diagnostic ("" when optimal).
	Note string `json:"note,omitempty"`
}

// GapConfigSummary aggregates one machine shape's rows.
type GapConfigSummary struct {
	Config string `json:"config"`
	// Loops is the number of audited loops; Proven of them were solved to
	// proven optimality within budget.
	Loops  int `json:"loops"`
	Proven int `json:"proven"`
	// MeanGapPct and MaxGapPct summarize the heuristic's optimality gap
	// over the proven rows.
	MeanGapPct float64 `json:"mean_gap_pct"`
	MaxGapPct  float64 `json:"max_gap_pct"`
	// Tight counts proven rows where the heuristic already matched the
	// optimum (gap 0).
	Tight int `json:"tight"`
}

// GapResult is the corpus-wide audit outcome.
type GapResult struct {
	// N and MaxNodes echo the options the audit ran with.
	N        int   `json:"n"`
	MaxNodes int64 `json:"max_nodes"`
	// Rows are the measurements, ordered loop-major in input order, then by
	// machine shape.
	Rows []GapRow `json:"rows"`
	// Summaries aggregates per machine shape, in configuration order.
	Summaries []GapConfigSummary `json:"summaries"`
}

// RunGap audits the heuristic's optimality gap over the given loops on the
// given machine shapes: for each (loop, shape) it builds the never-degrades
// heuristic schedule (core.Best) and runs the exact branch-and-bound solver,
// recording both predicted times and the solver's proven lower bound. Every
// exact schedule passes the independent verifier (internal/check) before it
// is reported; a rejected schedule fails the audit — by construction the
// solver and the verifier agree, so a rejection is a bug worth failing loud.
//
// Problems are independent, so they are audited concurrently; rows land at
// their precomputed loop-major index, keeping the output deterministic.
func RunGap(loops []GapLoop, opt GapOptions) (*GapResult, error) {
	n := opt.n()
	budget := opt.MaxNodes
	if budget == 0 {
		budget = exact.DefaultMaxNodes
	}
	configs := opt.configs()
	res := &GapResult{N: n, MaxNodes: budget}
	res.Rows = make([]GapRow, len(loops)*len(configs))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		sem     = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for li, gl := range loops {
		for ci, cfg := range configs {
			idx, gl, cfg := li*len(configs)+ci, gl, cfg
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				row, err := gapProblem(gl, cfg, n, opt.MaxNodes)
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
				res.Rows[idx] = row
			}()
		}
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	for _, cfg := range configs {
		s := GapConfigSummary{Config: cfg.Name}
		for _, row := range res.Rows {
			if row.Config != cfg.Name {
				continue
			}
			s.Loops++
			if row.Optimal {
				s.Proven++
				s.MeanGapPct += row.GapPct
				if row.GapPct > s.MaxGapPct {
					s.MaxGapPct = row.GapPct
				}
				if row.HeurT == row.ExactT {
					s.Tight++
				}
			}
		}
		if s.Proven > 0 {
			s.MeanGapPct /= float64(s.Proven)
		}
		res.Summaries = append(res.Summaries, s)
	}
	return res, nil
}

// gapProblem audits one (loop, machine shape) problem.
func gapProblem(gl GapLoop, cfg dlx.Config, n int, maxNodes int64) (GapRow, error) {
	h, err := core.Best(gl.Graph, cfg)
	if err != nil {
		return GapRow{}, fmt.Errorf("gap: %s on %s: heuristic: %w", gl.Name, cfg.Name, err)
	}
	r, err := exact.Schedule(gl.Graph, cfg, exact.Options{N: n, MaxNodes: maxNodes})
	if err != nil {
		return GapRow{}, fmt.Errorf("gap: %s on %s: exact: %w", gl.Name, cfg.Name, err)
	}
	if err := check.Err(check.Verify(r.Schedule)); err != nil {
		return GapRow{}, fmt.Errorf("gap: %s on %s: verifier rejected exact schedule: %w",
			gl.Name, cfg.Name, err)
	}
	row := GapRow{
		Loop: gl.Name, Config: cfg.Name,
		HeurT: model.Predict(h, n), ExactT: r.T,
		Bound: r.LowerBound, Optimal: r.Optimal,
		Nodes: r.Nodes, Note: r.Note,
	}
	if r.T > 0 {
		row.GapPct = 100 * float64(row.HeurT-row.ExactT) / float64(row.ExactT)
	}
	return row, nil
}

// Render formats the audit as a fixed-width gap table plus the per-machine
// summary, deterministic for golden tests.
func (r *GapResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Optimality gap: heuristic vs exact T = (n/d)(i-j)+l at n=%d (budget %d nodes)\n", r.N, r.MaxNodes)
	fmt.Fprintf(&sb, "%-16s %-16s %8s %8s %8s %7s %8s\n",
		"loop", "config", "heurT", "exactT", "bound", "gap%", "proof")
	for _, row := range r.Rows {
		proof := "optimal"
		if !row.Optimal {
			proof = "bound"
		}
		fmt.Fprintf(&sb, "%-16s %-16s %8d %8d %8d %6.1f%% %8s\n",
			row.Loop, row.Config, row.HeurT, row.ExactT, row.Bound, row.GapPct, proof)
	}
	sb.WriteString("\nPer machine shape:\n")
	for _, s := range r.Summaries {
		fmt.Fprintf(&sb, "  %-16s %d/%d proven optimal, mean gap %.1f%%, max gap %.1f%%, heuristic tight on %d\n",
			s.Config, s.Proven, s.Loops, s.MeanGapPct, s.MaxGapPct, s.Tight)
	}
	return sb.String()
}

// JSON renders the audit as stable, indented JSON (the committed
// BENCH_exact_gap.json snapshot).
func (r *GapResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SortRows orders rows by loop name then configuration name — for callers
// assembling rows from concurrently audited shards.
func (r *GapResult) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		if r.Rows[i].Loop != r.Rows[j].Loop {
			return r.Rows[i].Loop < r.Rows[j].Loop
		}
		return r.Rows[i].Config < r.Rows[j].Config
	})
}
