package tables

import (
	"fmt"
	"strings"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/migrate"
	"doacross/internal/model"
	"doacross/internal/perfect"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// MigRow is one benchmark's three-way comparison: traditional list
// scheduling, source-level synchronization migration followed by list
// scheduling, and the paper's instruction-level technique.
type MigRow struct {
	Name string
	// List, Mig and Sync are summed parallel times under one configuration.
	List, Mig, Sync int
	// MigPct and SyncPct are improvement percentages over List.
	MigPct, SyncPct float64
	// ConvertedByMig counts LBDs the migration removed across the suite.
	ConvertedByMig int
}

// MigrationResult is the extension experiment comparing the paper's
// technique against its own cited predecessor.
type MigrationResult struct {
	Config string
	Rows   []MigRow
	Total  MigRow
}

// RunMigration measures list vs migration+list vs new scheduling on all
// suites under one machine configuration, using the given list-scheduling
// priority for both list runs. Program-order priority respects the source
// placement migration produces; critical-path priority hoists waits and
// destroys it — comparing the two quantifies the paper's core thesis that
// source-level techniques are undone by synchronization-blind scheduling.
func RunMigration(suites []*perfect.Suite, cfg dlx.Config, baseline core.ListPriority) (*MigrationResult, error) {
	res := &MigrationResult{Config: cfg.Name}
	for _, s := range suites {
		row := MigRow{Name: s.Profile.Name}
		for li, l := range s.Doacross() {
			a := dep.Analyze(l.AST)
			// Plain list and new scheduling on the original order.
			cl, err := compileLoop(l)
			if err != nil {
				return nil, fmt.Errorf("tables: %s loop %d: %w", s.Profile.Name, li, err)
			}
			list, err := core.List(cl.g, cfg, baseline)
			if err != nil {
				return nil, err
			}
			syn, err := core.Sync(cl.g, cfg)
			if err != nil {
				return nil, err
			}
			// Migration, then list scheduling of the migrated loop.
			mig, err := migrate.Migrate(a)
			if err != nil {
				return nil, err
			}
			ma := dep.Analyze(mig.Loop)
			mprog, err := tac.Generate(syncop.Insert(ma, syncop.Options{}))
			if err != nil {
				return nil, err
			}
			mg, err := dfg.Build(mprog, ma)
			if err != nil {
				return nil, err
			}
			mlist, err := core.List(mg, cfg, baseline)
			if err != nil {
				return nil, err
			}
			opt := sim.Options{Lo: 1, Hi: s.Profile.N}
			tl, err := sim.Time(list, opt)
			if err != nil {
				return nil, err
			}
			tm, err := sim.Time(mlist, opt)
			if err != nil {
				return nil, err
			}
			ts, err := sim.Time(syn, opt)
			if err != nil {
				return nil, err
			}
			row.List += tl.Total
			row.Mig += tm.Total
			row.Sync += ts.Total
			row.ConvertedByMig += mig.Before - mig.After
		}
		row.MigPct = model.Speedup(row.List, row.Mig)
		row.SyncPct = model.Speedup(row.List, row.Sync)
		res.Rows = append(res.Rows, row)
		res.Total.List += row.List
		res.Total.Mig += row.Mig
		res.Total.Sync += row.Sync
		res.Total.ConvertedByMig += row.ConvertedByMig
	}
	res.Total.Name = "Total"
	res.Total.MigPct = model.Speedup(res.Total.List, res.Total.Mig)
	res.Total.SyncPct = model.Speedup(res.Total.List, res.Total.Sync)
	return res, nil
}

// Render formats the migration comparison.
func (r *MigrationResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: migration vs. instruction scheduling (%s, 100 iterations)\n", r.Config)
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %10s %8s\n",
		"Benchmark", "T_list", "T_mig", "T_new", "mig-gain", "new-gain", "LBD-fix")
	write := func(row MigRow) {
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %9.2f%% %9.2f%% %8d\n",
			row.Name, row.List, row.Mig, row.Sync, row.MigPct, row.SyncPct, row.ConvertedByMig)
	}
	for _, row := range r.Rows {
		write(row)
	}
	write(r.Total)
	return sb.String()
}
