package tables

import (
	"strings"
	"sync"
	"testing"

	"doacross/internal/core"
	"doacross/internal/perfect"
)

// The harness is deterministic and moderately expensive; share one result
// across the tests in this package.
var (
	resultOnce sync.Once
	result     *Result
	resultErr  error
)

func run(t *testing.T) *Result {
	t.Helper()
	resultOnce.Do(func() { result, resultErr = Run() })
	if resultErr != nil {
		t.Fatal(resultErr)
	}
	return result
}

func TestTable1Rows(t *testing.T) {
	r := run(t)
	if len(r.Table1) != 5 {
		t.Fatalf("table 1 has %d rows, want 5", len(r.Table1))
	}
	names := []string{"FLQ52", "QCD", "MDG", "TRACK", "ADM"}
	for i, c := range r.Table1 {
		if c.Name != names[i] {
			t.Errorf("row %d = %s, want %s", i, c.Name, names[i])
		}
	}
}

func TestTable2NewSchedulingAlwaysWins(t *testing.T) {
	r := run(t)
	for _, row := range r.Table2 {
		for k := 0; k < NumConfigs; k++ {
			if row.Tb[k] > row.Ta[k] {
				t.Errorf("%s config %d: Tb %d > Ta %d (new scheduling degraded performance)",
					row.Name, k, row.Tb[k], row.Ta[k])
			}
		}
	}
}

func TestTable3ImprovementBands(t *testing.T) {
	r := run(t)
	byName := map[string]Row3{}
	for _, row := range r.Table3 {
		byName[row.Name] = row
	}
	// The paper's qualitative bands: TRACK the highest (~90 %), QCD by far
	// the lowest, the rest substantial.
	track, qcd := byName["TRACK"], byName["QCD"]
	for k := 0; k < NumConfigs; k++ {
		if track.Percent[k] < 80 {
			t.Errorf("TRACK config %d improvement %.1f%% < 80%%", k, track.Percent[k])
		}
		if qcd.Percent[k] > 40 {
			t.Errorf("QCD config %d improvement %.1f%% > 40%% (should be the outlier)", k, qcd.Percent[k])
		}
		for _, name := range []string{"FLQ52", "MDG", "ADM"} {
			if byName[name].Percent[k] < 50 {
				t.Errorf("%s config %d improvement %.1f%% < 50%%", name, k, byName[name].Percent[k])
			}
		}
		if qcd.Percent[k] >= track.Percent[k] {
			t.Errorf("config %d: QCD (%.1f%%) >= TRACK (%.1f%%)", k, qcd.Percent[k], track.Percent[k])
		}
	}
	// Overall means in the paper are ~83-85 %; our synthetic suites land in
	// the 60-85 % band — assert the order of magnitude, not the digit.
	if r.Summary2Issue < 55 || r.Summary4Issue < 55 {
		t.Errorf("summary improvements %.1f%%/%.1f%% below 55%%", r.Summary2Issue, r.Summary4Issue)
	}
}

// TestObservation1 checks §4.2 observation 1: the new schedule's time is
// nearly configuration-independent.
func TestObservation1(t *testing.T) {
	r := run(t)
	spread, ok := r.Observation1()
	if !ok {
		t.Errorf("new-scheduling time spread across configs = %.1f%%, want < 25%%", 100*spread)
	}
}

// TestObservation2 checks §4.2 observation 2: for list scheduling, some
// benchmarks are *slower* at 4-issue than at 2-issue.
func TestObservation2(t *testing.T) {
	r := run(t)
	anoms := r.Observation2()
	if len(anoms) == 0 {
		t.Error("no benchmark shows the paper's 4-issue list-scheduling anomaly")
	}
}

// TestSummaryImprovement pins the headline claim: large mean improvement at
// both issue widths.
func TestSummaryImprovement(t *testing.T) {
	r := run(t)
	t.Logf("mean total improvement: %.2f%% (2-issue), %.2f%% (4-issue)", r.Summary2Issue, r.Summary4Issue)
	if r.Summary2Issue <= 0 || r.Summary4Issue <= 0 {
		t.Fatal("no improvement measured")
	}
}

func TestRenderings(t *testing.T) {
	r := run(t)
	t1, t2, t3 := r.RenderTable1(), r.RenderTable2(), r.RenderTable3()
	for _, s := range []string{t1, t2, t3} {
		for _, name := range []string{"FLQ52", "QCD", "MDG", "TRACK", "ADM"} {
			if !strings.Contains(s, name) {
				t.Errorf("rendering missing %s:\n%s", name, s)
			}
		}
	}
	if !strings.Contains(t2, "Total") || !strings.Contains(t3, "Summary") {
		t.Error("missing totals/summary lines")
	}
	all := r.Render()
	if !strings.Contains(all, "Table 1") || !strings.Contains(all, "Table 2") || !strings.Contains(all, "Table 3") {
		t.Error("Render() must include all three tables")
	}
}

func TestLoopResultsComplete(t *testing.T) {
	r := run(t)
	// Every DOACROSS loop must appear under all four configurations.
	doacross := 0
	for _, s := range r.Suites {
		doacross += len(s.Doacross())
	}
	if len(r.Loops) != doacross*NumConfigs {
		t.Errorf("loop results = %d, want %d", len(r.Loops), doacross*NumConfigs)
	}
	for _, lr := range r.Loops {
		if lr.LiveA <= 0 || lr.LiveB <= 0 {
			t.Errorf("%s loop %d (%s): missing register pressure", lr.Suite, lr.Index, lr.Config)
		}
		if lr.Ta <= 0 || lr.Tb <= 0 {
			t.Errorf("%s loop %d (%s): non-positive times %d/%d", lr.Suite, lr.Index, lr.Config, lr.Ta, lr.Tb)
		}
		if lr.LBDb > lr.LBDa {
			t.Errorf("%s loop %d (%s): new scheduling has more LBDs (%d) than list (%d)",
				lr.Suite, lr.Index, lr.Config, lr.LBDb, lr.LBDa)
		}
	}
}

func TestBaselineChoiceBothWork(t *testing.T) {
	suites := perfect.MustSuites()
	for _, pri := range []core.ListPriority{core.ProgramOrder, core.CriticalPath} {
		r, err := RunOn(suites, pri)
		if err != nil {
			t.Fatalf("priority %d: %v", pri, err)
		}
		for k := 0; k < NumConfigs; k++ {
			if r.Total3.Percent[k] <= 0 {
				t.Errorf("priority %d config %d: no total improvement", pri, k)
			}
		}
	}
}
