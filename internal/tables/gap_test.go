package tables

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"doacross/internal/perfect"
)

var update = flag.Bool("update", false, "rewrite golden files")

// gapCorpus generates `want` loops by re-seeding the five paper benchmark
// profiles (the same scheme as the repo's differential execution test), so
// failures are reproducible by name.
func gapCorpus(t testing.TB, want int) []GapLoop {
	t.Helper()
	var out []GapLoop
	for variant := uint64(0); len(out) < want; variant++ {
		for _, p := range perfect.Profiles() {
			p.Name = fmt.Sprintf("%s/v%d", p.Name, variant)
			p.Seed = p.Seed ^ (variant * 0x9E3779B97F4A7C15)
			s, err := perfect.Generate(p)
			if err != nil {
				t.Fatalf("generate %s: %v", p.Name, err)
			}
			for li, l := range s.Loops {
				c, err := compileLoop(l)
				if err != nil {
					t.Fatalf("compile %s loop %d:\n%s\n%v", p.Name, li, l.Source, err)
				}
				out = append(out, GapLoop{Name: fmt.Sprintf("%s/%d", p.Name, li), Graph: c.g})
				if len(out) >= want {
					return out
				}
			}
		}
	}
	return out
}

// TestOptimalityGap is the differential audit over generated loops: on every
// (loop, paper machine shape) problem the exact backend must never lose to
// the heuristic, never dip below its own proven lower bound, and a claimed
// proof must close the gap (bound == T). The anytime budget is deliberately
// modest — the invariants hold whether or not the search completes.
func TestOptimalityGap(t *testing.T) {
	count := 200
	if raceEnabled {
		count = 24
	}
	if testing.Short() {
		count = 10
	}
	loops := gapCorpus(t, count)
	const workers = 8
	var (
		mu   sync.Mutex
		rows []GapRow
		wg   sync.WaitGroup
		sem  = make(chan struct{}, workers)
	)
	for _, gl := range loops {
		gl := gl
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := RunGap([]GapLoop{gl}, GapOptions{MaxNodes: 25_000})
			if err != nil {
				t.Errorf("%s: %v", gl.Name, err)
				return
			}
			mu.Lock()
			rows = append(rows, res.Rows...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if want := len(loops) * NumConfigs; len(rows) != want {
		t.Fatalf("audited %d rows, want %d", len(rows), want)
	}
	proven := 0
	for _, row := range rows {
		if row.ExactT > row.HeurT {
			t.Errorf("%s on %s: exact T=%d worse than heuristic T=%d",
				row.Loop, row.Config, row.ExactT, row.HeurT)
		}
		if row.Bound > row.ExactT {
			t.Errorf("%s on %s: proven bound %d above exact T=%d",
				row.Loop, row.Config, row.Bound, row.ExactT)
		}
		if row.Optimal {
			proven++
			if row.Bound != row.ExactT {
				t.Errorf("%s on %s: optimal but bound %d != T=%d",
					row.Loop, row.Config, row.Bound, row.ExactT)
			}
			if row.Note != "" {
				t.Errorf("%s on %s: optimal row carries note %q", row.Loop, row.Config, row.Note)
			}
		} else if row.Note == "" {
			t.Errorf("%s on %s: non-optimal row without diagnostic note", row.Loop, row.Config)
		}
	}
	// The generated population must be largely solvable at this budget —
	// an audit that proves nothing audits nothing.
	if proven*2 < len(rows) {
		t.Fatalf("only %d/%d rows proven optimal; budget or solver regressed", proven, len(rows))
	}
	t.Logf("proven optimal on %d/%d (loop, shape) problems", proven, len(rows))
}

// TestGapGolden pins the rendered gap table of a small deterministic corpus
// (the first 6 generated loops at a fixed budget) to a golden file.
// Regenerate with: go test ./internal/tables -run GapGolden -update
func TestGapGolden(t *testing.T) {
	if testing.Short() {
		// The golden content is budget-sensitive, so it cannot shrink under
		// -short; the full lane covers it.
		t.Skip("golden gap table runs in the full lane")
	}
	loops := gapCorpus(t, 6)
	res, err := RunGap(loops, GapOptions{MaxNodes: 25_000})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Render()
	path := filepath.Join("testdata", "gap_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("gap table diverges from %s:\n-- got --\n%s-- want --\n%s", path, got, want)
	}
}

// TestGapJSONRoundTrip pins the JSON snapshot shape: it must parse back and
// carry every row.
func TestGapJSONRoundTrip(t *testing.T) {
	loops := gapCorpus(t, 2)
	res, err := RunGap(loops, GapOptions{MaxNodes: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Fatal("JSON snapshot must be newline-terminated")
	}
	if got, want := len(res.Rows), 2*NumConfigs; got != want {
		t.Fatalf("rows %d, want %d", got, want)
	}
}

// TestExactBudgetConsistency: the same problem audited under two budgets
// must agree wherever both prove optimality (exact.DefaultMaxNodes is a
// compile-time default, not part of the answer).
func TestExactBudgetConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("budget cross-check runs in the full lane")
	}
	loops := gapCorpus(t, 3)
	small, err := RunGap(loops, GapOptions{MaxNodes: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunGap(loops, GapOptions{MaxNodes: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Rows {
		s, b := small.Rows[i], big.Rows[i]
		if s.Optimal && b.Optimal && s.ExactT != b.ExactT {
			t.Errorf("%s on %s: optimal T=%d at 10k nodes but %d at 50k",
				s.Loop, s.Config, s.ExactT, b.ExactT)
		}
		if s.Optimal && !b.Optimal {
			t.Errorf("%s on %s: proven at the smaller budget only", s.Loop, s.Config)
		}
	}
}
