package tables

import (
	"strings"
	"testing"

	"doacross/internal/core"
	"doacross/internal/dlx"
	"doacross/internal/perfect"
)

func TestMigrationExperiment(t *testing.T) {
	suites := perfect.MustSuites()
	cfg := dlx.Standard(4, 1)
	order, err := RunMigration(suites, cfg, core.ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := RunMigration(suites, cfg, core.CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	// Migration converts LBDs regardless of the scheduler.
	if order.Total.ConvertedByMig == 0 {
		t.Fatal("migration converted no LBDs across the suites")
	}
	if order.Total.ConvertedByMig != cp.Total.ConvertedByMig {
		t.Error("conversion count must not depend on the baseline priority")
	}
	// The paper's thesis, quantified: migration helps when the scheduler
	// respects program order, but a synchronization-blind critical-path
	// scheduler destroys the source-level placement.
	if order.Total.MigPct <= cp.Total.MigPct {
		t.Errorf("expected migration to help more under program order: %.2f%% vs %.2f%%",
			order.Total.MigPct, cp.Total.MigPct)
	}
	// The instruction-level technique dominates migration in both settings.
	for _, r := range []*MigrationResult{order, cp} {
		if r.Total.SyncPct <= r.Total.MigPct {
			t.Errorf("new scheduling (%.2f%%) should beat migration (%.2f%%)",
				r.Total.SyncPct, r.Total.MigPct)
		}
		if r.Total.SyncPct < 50 {
			t.Errorf("new scheduling gain %.2f%% suspiciously low", r.Total.SyncPct)
		}
	}
	// TRACK is dominated by convertible LBDs: migration's best case.
	for _, row := range order.Rows {
		if row.Name == "TRACK" && row.MigPct < 20 {
			t.Errorf("TRACK migration gain %.2f%%, expected its best case (> 20%%)", row.MigPct)
		}
	}
	s := order.Render()
	for _, want := range []string{"T_list", "T_mig", "T_new", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	r := run(t)
	c := r.CSV()
	lines := strings.Split(strings.TrimSpace(c), "\n")
	// Header + (5 benchmarks + total) * 4 configs.
	if len(lines) != 1+6*NumConfigs {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+6*NumConfigs)
	}
	if !strings.HasPrefix(lines[0], "benchmark,config,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	lc := r.LoopCSV()
	llines := strings.Split(strings.TrimSpace(lc), "\n")
	if len(llines) != 1+len(r.Loops) {
		t.Errorf("loop CSV has %d lines, want %d", len(llines), 1+len(r.Loops))
	}
}
