package tables

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV renders the Table 2/3 measurements as machine-readable CSV: one row
// per (benchmark, configuration) with both schedulers' times and the
// improvement percentage, followed by the totals.
func (r *Result) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"benchmark", "config", "t_list", "t_new", "improvement_pct"})
	names := ConfigNames()
	emit := func(row2 Row2, row3 Row3) {
		for k := 0; k < NumConfigs; k++ {
			_ = w.Write([]string{
				row2.Name, names[k],
				fmt.Sprintf("%d", row2.Ta[k]),
				fmt.Sprintf("%d", row2.Tb[k]),
				fmt.Sprintf("%.2f", row3.Percent[k]),
			})
		}
	}
	for i, row := range r.Table2 {
		emit(row, r.Table3[i])
	}
	emit(r.Total2, r.Total3)
	w.Flush()
	return sb.String()
}

// LoopCSV renders the per-loop drill-down as CSV.
func (r *Result) LoopCSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"suite", "loop", "template", "config", "t_list", "t_new", "lbd_list", "lbd_new", "len_list", "len_new", "live_list", "live_new"})
	for _, lr := range r.Loops {
		_ = w.Write([]string{
			lr.Suite, fmt.Sprintf("%d", lr.Index), lr.Template.String(), lr.Config,
			fmt.Sprintf("%d", lr.Ta), fmt.Sprintf("%d", lr.Tb),
			fmt.Sprintf("%d", lr.LBDa), fmt.Sprintf("%d", lr.LBDb),
			fmt.Sprintf("%d", lr.LenA), fmt.Sprintf("%d", lr.LenB),
			fmt.Sprintf("%d", lr.LiveA), fmt.Sprintf("%d", lr.LiveB),
		})
	}
	w.Flush()
	return sb.String()
}
