//go:build race

package tables

// raceEnabled reports that the race detector (and its ~6x slowdown) is
// compiled in; expensive differential tests shrink their corpus under it.
const raceEnabled = true
