package tables

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// depKernel loads one named kernel from the committed corpus.
func depKernel(t *testing.T, name string) []DepLoop {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "kernels", name+".loop"))
	if err != nil {
		t.Fatalf("read kernel %s: %v", name, err)
	}
	ls, err := CollectDepLoops(name, string(b))
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// TestDepPrecisionAudit runs the baseline-vs-precise audit over a slice of
// the committed corpus and pins the refinements the new kernels were added
// to demonstrate: strictly fewer conservative verdicts corpus-wide, reduced
// synchronization on the symbolic-offset and bound-separation kernels, and
// exact-backend agreement on every row.
func TestDepPrecisionAudit(t *testing.T) {
	var loops []DepLoop
	for _, name := range []string{"symoff", "fixedcell", "boundsep", "tridiag", "hydro"} {
		loops = append(loops, depKernel(t, name)...)
	}
	res, err := RunDepPrecision(loops, DepPrecisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]DepPrecisionRow{}
	for _, row := range res.Rows {
		rows[row.Loop] = row
	}

	s := res.Summary
	if s.PreciseConservative >= s.BaselineConservative {
		t.Errorf("corpus conservative pairs did not strictly decrease: baseline %d, precise %d",
			s.BaselineConservative, s.PreciseConservative)
	}
	if s.Verified != 4*s.Loops {
		t.Errorf("verified %d schedules, want %d (4 per loop)", s.Verified, 4*s.Loops)
	}
	if s.ExactAgree != s.Loops {
		t.Errorf("exact backend agrees on %d/%d rows", s.ExactAgree, s.Loops)
	}

	if row := rows["symoff"]; !row.Refined || !row.ArcsReduced {
		t.Errorf("symoff: want refined with reduced sync arcs, got %+v", row)
	}
	if row := rows["fixedcell"]; !row.Refined {
		t.Errorf("fixedcell: want refined (same-element web proven exact), got %+v", row)
	}
	row := rows["boundsep"]
	if !row.Refined || !row.ArcsReduced {
		t.Errorf("boundsep: want refined with reduced sync arcs, got %+v", row)
	}
	if row.Precise.Sends != 0 || row.Precise.Waits != 0 {
		t.Errorf("boundsep: precise analysis should drop all synchronization, got %d+%d",
			row.Precise.Sends, row.Precise.Waits)
	}
	if row.N != 8 {
		t.Errorf("boundsep: constant-bound loop should be priced at its own trip 8, got n=%d", row.N)
	}
	if base := rows["tridiag"]; base.Refined {
		t.Errorf("tridiag: unit-stride recurrence was already exact in the baseline; must not count as refined: %+v", base)
	}

	// The audit is deterministic: a second run renders and marshals
	// identically (the committed snapshot must regenerate bit for bit).
	again, err := RunDepPrecision(loops, DepPrecisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Error("audit render is not deterministic across runs")
	}
	j1, err1 := res.JSON()
	j2, err2 := again.JSON()
	if err1 != nil || err2 != nil {
		t.Fatalf("JSON: %v / %v", err1, err2)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("audit JSON is not deterministic across runs")
	}
}
