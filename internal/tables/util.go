package tables

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"doacross/internal/core"
	"doacross/internal/dlx"
	"doacross/internal/sim"
)

// Machine-utilization audit: every kernel loop is scheduled (list baseline
// and the paper's never-degrades scheduler), traced through the machine-
// level tracer and rendered as a stall-cause breakdown. sim.Utilize
// verifies the attribution books of every traced run — attributed stall
// causes plus issued cycles must cover 100% of every processor's cycles —
// so running the audit over the full kernel × paper-machine corpus is also
// the exhaustiveness proof of the tracer.

// UtilOptions configures the audit.
type UtilOptions struct {
	// N is the simulated trip count (0 = 100, the paper's).
	N int
	// Configs are the machine shapes to audit (nil = the paper's four).
	Configs []dlx.Config
}

func (o UtilOptions) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o UtilOptions) configs() []dlx.Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return dlx.PaperConfigs()
}

// UtilRow is one (loop, machine shape) measurement: the traced simulation
// of the served (synchronization-aware) schedule, with the list baseline's
// totals alongside for contrast. The cycle split partitions every
// processor's cycles exactly: Issued+SyncWait+WindowWait+Drain =
// Procs×Cycles.
type UtilRow struct {
	Loop   string `json:"loop"`
	Config string `json:"config"`
	// ListCycles and SyncCycles are the simulated makespans.
	ListCycles int `json:"list_cycles"`
	SyncCycles int `json:"sync_cycles"`
	// ListEff and SyncEff are the issue-slot efficiencies (slots filled /
	// slots offered).
	ListEff float64 `json:"list_eff"`
	SyncEff float64 `json:"sync_eff"`
	// Cycle-level stall attribution of the sync schedule's run.
	Issued     int `json:"issued_cycles"`
	SyncWait   int `json:"sync_wait_cycles"`
	WindowWait int `json:"window_wait_cycles,omitempty"`
	Drain      int `json:"drain_cycles"`
	// Static empty-slot causes on the sync schedule's issued rows.
	EmptyRAW    int `json:"empty_raw"`
	EmptyFUBusy int `json:"empty_fu_busy"`
	EmptyWidth  int `json:"empty_issue_width"`
	EmptyDrain  int `json:"empty_drain"`
	// LBD/LFD split of the wait-stall cycles plus signal traffic.
	LBDWait int `json:"lbd_wait_cycles"`
	LFDWait int `json:"lfd_wait_cycles"`
	Signals int `json:"signals_sent"`
}

// UtilConfigSummary aggregates one machine shape's rows.
type UtilConfigSummary struct {
	Config string `json:"config"`
	Loops  int    `json:"loops"`
	// MeanListEff and MeanSyncEff average the issue-slot efficiencies.
	MeanListEff float64 `json:"mean_list_eff"`
	MeanSyncEff float64 `json:"mean_sync_eff"`
	// Cycle totals over all rows of the shape (sync schedules).
	Issued, SyncWait, WindowWait, Drain int64
}

// MarshalJSON keeps the summary's cycle totals in snake_case like the rows.
func (s UtilConfigSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Config      string  `json:"config"`
		Loops       int     `json:"loops"`
		MeanListEff float64 `json:"mean_list_eff"`
		MeanSyncEff float64 `json:"mean_sync_eff"`
		Issued      int64   `json:"issued_cycles"`
		SyncWait    int64   `json:"sync_wait_cycles"`
		WindowWait  int64   `json:"window_wait_cycles"`
		Drain       int64   `json:"drain_cycles"`
	}{s.Config, s.Loops, s.MeanListEff, s.MeanSyncEff,
		s.Issued, s.SyncWait, s.WindowWait, s.Drain})
}

// UtilResult is the corpus-wide audit outcome (the committed
// BENCH_machine_util.json snapshot).
type UtilResult struct {
	// N echoes the trip count the audit simulated with.
	N int `json:"n"`
	// Rows are the measurements, loop-major in input order, then by shape.
	Rows []UtilRow `json:"rows"`
	// Summaries aggregates per machine shape, in configuration order.
	Summaries []UtilConfigSummary `json:"summaries"`
}

// RunUtil traces every (loop, machine shape) problem: the list baseline
// (critical path) and the paper's never-degrades scheduler are both
// simulated under the machine-level tracer, whose attribution books are
// verified to cover every cycle of every processor before a row is
// reported. Problems are independent and audited concurrently; rows land
// at precomputed indices, keeping the output deterministic.
func RunUtil(loops []GapLoop, opt UtilOptions) (*UtilResult, error) {
	n := opt.n()
	configs := opt.configs()
	res := &UtilResult{N: n}
	res.Rows = make([]UtilRow, len(loops)*len(configs))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		sem     = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for li, gl := range loops {
		for ci, cfg := range configs {
			idx, gl, cfg := li*len(configs)+ci, gl, cfg
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				row, err := utilProblem(gl, cfg, n)
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
				res.Rows[idx] = row
			}()
		}
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	for _, cfg := range configs {
		s := UtilConfigSummary{Config: cfg.Name}
		for _, row := range res.Rows {
			if row.Config != cfg.Name {
				continue
			}
			s.Loops++
			s.MeanListEff += row.ListEff
			s.MeanSyncEff += row.SyncEff
			s.Issued += int64(row.Issued)
			s.SyncWait += int64(row.SyncWait)
			s.WindowWait += int64(row.WindowWait)
			s.Drain += int64(row.Drain)
		}
		if s.Loops > 0 {
			s.MeanListEff /= float64(s.Loops)
			s.MeanSyncEff /= float64(s.Loops)
		}
		res.Summaries = append(res.Summaries, s)
	}
	return res, nil
}

// utilProblem traces one (loop, machine shape) problem.
func utilProblem(gl GapLoop, cfg dlx.Config, n int) (UtilRow, error) {
	list, err := core.List(gl.Graph, cfg, core.CriticalPath)
	if err != nil {
		return UtilRow{}, fmt.Errorf("util: %s on %s: list: %w", gl.Name, cfg.Name, err)
	}
	best, err := core.Best(gl.Graph, cfg)
	if err != nil {
		return UtilRow{}, fmt.Errorf("util: %s on %s: scheduler: %w", gl.Name, cfg.Name, err)
	}
	simOpt := sim.Options{Lo: 1, Hi: n}
	_, lu, err := sim.Utilize(list, simOpt)
	if err != nil {
		return UtilRow{}, fmt.Errorf("util: %s on %s: trace list: %w", gl.Name, cfg.Name, err)
	}
	_, su, err := sim.Utilize(best, simOpt)
	if err != nil {
		return UtilRow{}, fmt.Errorf("util: %s on %s: trace sync: %w", gl.Name, cfg.Name, err)
	}
	return UtilRow{
		Loop: gl.Name, Config: cfg.Name,
		ListCycles: lu.Cycles, SyncCycles: su.Cycles,
		ListEff: lu.SlotEfficiency, SyncEff: su.SlotEfficiency,
		Issued: su.IssuedCycles, SyncWait: su.SyncWaitCycles,
		WindowWait: su.WindowWaitCycles, Drain: su.DrainCycles,
		EmptyRAW: su.EmptyRAW, EmptyFUBusy: su.EmptyFUBusy,
		EmptyWidth: su.EmptyWidth, EmptyDrain: su.EmptyDrain,
		LBDWait: su.LBDWaitCycles, LFDWait: su.LFDWaitCycles,
		Signals: su.SignalsSent,
	}, nil
}

// Render formats the audit as a fixed-width machine-observability table,
// deterministic for golden tests.
func (r *UtilResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Machine utilization: stall-cause attribution at n=%d (sync schedule)\n", r.N)
	fmt.Fprintf(&sb, "%-16s %-16s %7s %7s %7s %8s %8s %8s %8s\n",
		"loop", "config", "cycles", "listEff", "syncEff", "issued", "syncwait", "window", "drain")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-16s %-16s %7d %6.1f%% %6.1f%% %8d %8d %8d %8d\n",
			row.Loop, row.Config, row.SyncCycles,
			100*row.ListEff, 100*row.SyncEff,
			row.Issued, row.SyncWait, row.WindowWait, row.Drain)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-16s %5s %9s %9s %10s %10s %10s %10s\n",
		"config", "loops", "listEff", "syncEff", "issued", "syncwait", "window", "drain")
	for _, s := range r.Summaries {
		fmt.Fprintf(&sb, "%-16s %5d %8.1f%% %8.1f%% %10d %10d %10d %10d\n",
			s.Config, s.Loops, 100*s.MeanListEff, 100*s.MeanSyncEff,
			s.Issued, s.SyncWait, s.WindowWait, s.Drain)
	}
	return sb.String()
}

// JSON renders the audit as stable, indented JSON (the committed
// BENCH_machine_util.json snapshot).
func (r *UtilResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
