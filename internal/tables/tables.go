// Package tables regenerates the paper's evaluation artifacts: Table 1
// (benchmark characteristics), Table 2 (parallel execution time of list vs.
// new scheduling over four machine configurations) and Table 3 (improvement
// percentages), using the synthetic Perfect suites, the two schedulers, and
// the recurrence simulator.
package tables

import (
	"fmt"
	"strings"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/model"
	"doacross/internal/perfect"
	"doacross/internal/pipeline"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// NumConfigs is the number of machine configurations in Table 2.
const NumConfigs = 4

// ConfigNames lists the Table 2 column groups in order.
func ConfigNames() []string {
	names := make([]string, 0, NumConfigs)
	for _, c := range dlx.PaperConfigs() {
		names = append(names, c.Name)
	}
	return names
}

// LoopResult is the measurement of one DOACROSS loop under one configuration.
type LoopResult struct {
	Suite    string
	Index    int
	Template perfect.Template
	Config   string
	// Ta and Tb are the list-scheduling and new-scheduling parallel times
	// (the paper's T_a-y-z and T_b-y-z) for N iterations on N processors.
	Ta, Tb int
	// LBDa/LBDb count remaining LBD pairs under each scheduler.
	LBDa, LBDb int
	// LenA/LenB are single-iteration schedule lengths.
	LenA, LenB int
	// LiveA/LiveB are peak register pressures (max simultaneously live
	// temps) — the scheduling-vs-registers trade the paper's reference [7]
	// studies.
	LiveA, LiveB int
}

// Row2 is one benchmark's Table 2 row: totals per configuration.
type Row2 struct {
	Name string
	// Ta[k] and Tb[k] are the benchmark's summed parallel times under
	// configuration k (order of dlx.PaperConfigs).
	Ta, Tb [NumConfigs]int
}

// Row3 is one benchmark's Table 3 row: improvement percentages.
type Row3 struct {
	Name    string
	Percent [NumConfigs]float64
}

// Result bundles everything the experiment harness produces.
type Result struct {
	Suites []*perfect.Suite
	Table1 []perfect.Characteristics
	Table2 []Row2
	Total2 Row2
	Table3 []Row3
	Total3 Row3
	// Summary2Issue and Summary4Issue are the paper's closing statistics:
	// mean total improvement over the two FU variants of each issue width.
	Summary2Issue, Summary4Issue float64
	// Loops holds per-loop detail for drill-down reports.
	Loops []LoopResult
	// Failures records loops that failed in the batch pipeline (one entry
	// per failed loop, in request order) when the harness was asked to keep
	// going; their measurements are missing from the aggregates.
	Failures []LoopFailure
}

// LoopFailure is one loop the batch pipeline could not measure.
type LoopFailure struct {
	// Name is the pipeline request name ("<suite> loop <i>").
	Name string
	// Err is the per-loop pipeline error.
	Err error
}

// compiled caches one loop's analysis pipeline output.
type compiled struct {
	prog *tac.Program
	g    *dfg.Graph
}

func compileLoop(l perfect.Loop) (compiled, error) {
	a := dep.Analyze(l.AST)
	prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		return compiled{}, err
	}
	g, err := dfg.Build(prog, a)
	if err != nil {
		return compiled{}, err
	}
	return compiled{prog: prog, g: g}, nil
}

// Run generates the suites and produces all tables with the default
// baseline — critical-path list scheduling, the textbook "traditional list
// scheduling" the paper compares against. The trip count comes from each
// suite's profile (the paper uses 100 iterations, one processor each).
func Run() (*Result, error) {
	suites, err := perfect.Suites()
	if err != nil {
		return nil, err
	}
	return RunOn(suites, core.CriticalPath)
}

// RunOn produces the tables for the given suites, using the given list-
// scheduling priority as the paper's "traditional list scheduling" baseline.
// It runs the batch pipeline with a single worker and no cache, so it is
// bit-identical to (and a thin wrapper over) RunParallel.
func RunOn(suites []*perfect.Suite, baseline core.ListPriority) (*Result, error) {
	return RunParallel(suites, baseline, 1, nil, nil)
}

// RunParallel produces the tables by fanning every (loop, configuration)
// scheduling problem out over the batch pipeline with the given worker
// count. An optional shared cache skips rescheduling repeated loop shapes
// (the generated suites contain many); an optional shared metrics registry
// aggregates stage latencies and cache traffic across calls (pass nil for a
// private one — the numbers still reach the caller via pipeline stats when
// a registry is supplied).
func RunParallel(suites []*perfect.Suite, baseline core.ListPriority, workers int, cache *pipeline.Cache, metrics *pipeline.Metrics) (*Result, error) {
	res, err := RunParallelWith(suites, baseline, pipeline.Options{
		Workers: workers,
		Cache:   cache,
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Failures) > 0 {
		f := res.Failures[0]
		return nil, fmt.Errorf("tables: %s: %w", f.Name, f.Err)
	}
	return res, nil
}

// RunParallelWith produces the tables through the batch pipeline configured
// by opt (Machines and Baseline are overridden with the paper's four
// configurations and the given baseline; Deadline/RequestTimeout and the
// other robustness knobs pass through). Unlike RunParallel it keeps going
// when individual loops fail: failed loops are skipped from the aggregates
// and recorded in Result.Failures so callers can report them and decide the
// exit status themselves.
func RunParallelWith(suites []*perfect.Suite, baseline core.ListPriority, opt pipeline.Options) (*Result, error) {
	res := &Result{Suites: suites}
	configs := dlx.PaperConfigs()

	// One request per DOACROSS loop; each loop is scheduled on all four
	// configurations by the pipeline. Requests carry the suite's trip count.
	type ref struct {
		suite int
		index int
		tpl   perfect.Template
	}
	var reqs []pipeline.Request
	var refs []ref
	for si, s := range suites {
		for li, l := range s.Doacross() {
			reqs = append(reqs, pipeline.Request{
				Name: fmt.Sprintf("%s loop %d", s.Profile.Name, li),
				Loop: l.AST,
				N:    s.Profile.N,
			})
			refs = append(refs, ref{suite: si, index: li, tpl: l.Template})
		}
	}
	opt.Machines = configs
	opt.Baseline = baseline
	batch, err := pipeline.Run(reqs, opt)
	if err != nil {
		return nil, fmt.Errorf("tables: %w", err)
	}

	rows := make([]Row2, len(suites))
	for i, lr := range batch.Loops {
		r := refs[i]
		if lr.Err != nil {
			res.Failures = append(res.Failures, LoopFailure{Name: lr.Name, Err: lr.Err})
			continue
		}
		row := &rows[r.suite]
		for k, mr := range lr.Machines {
			row.Ta[k] += mr.ListTime
			row.Tb[k] += mr.SyncTime
			res.Loops = append(res.Loops, LoopResult{
				Suite: suites[r.suite].Profile.Name, Index: r.index, Template: r.tpl,
				Config: mr.Machine, Ta: mr.ListTime, Tb: mr.SyncTime,
				LBDa: mr.ListLBD, LBDb: mr.SyncLBD,
				LenA: mr.List.Length(), LenB: mr.Sync.Length(),
				LiveA: mr.List.MaxLive(), LiveB: mr.Sync.MaxLive(),
			})
		}
	}
	for si, s := range suites {
		ch, err := s.Characteristics()
		if err != nil {
			return nil, err
		}
		res.Table1 = append(res.Table1, ch)
		row := rows[si]
		row.Name = s.Profile.Name
		res.Table2 = append(res.Table2, row)
		r3 := Row3{Name: s.Profile.Name}
		for k := range configs {
			r3.Percent[k] = model.Speedup(row.Ta[k], row.Tb[k])
		}
		res.Table3 = append(res.Table3, r3)
		for k := range configs {
			res.Total2.Ta[k] += row.Ta[k]
			res.Total2.Tb[k] += row.Tb[k]
		}
	}
	res.Total2.Name = "Total"
	res.Total3.Name = "Total"
	for k := 0; k < NumConfigs; k++ {
		res.Total3.Percent[k] = model.Speedup(res.Total2.Ta[k], res.Total2.Tb[k])
	}
	res.Summary2Issue = (res.Total3.Percent[0] + res.Total3.Percent[1]) / 2
	res.Summary4Issue = (res.Total3.Percent[2] + res.Total3.Percent[3]) / 2
	return res, nil
}

// RenderTable1 formats Table 1.
func (r *Result) RenderTable1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Characteristics of the synthetic Perfect benchmarks\n")
	fmt.Fprintf(&sb, "%-28s", "Items \\ Benchmarks")
	total := perfect.Characteristics{Name: "TOTAL"}
	for _, c := range r.Table1 {
		fmt.Fprintf(&sb, "%9s", c.Name)
		total.SourceLines += c.SourceLines
		total.TotalLoops += c.TotalLoops
		total.DoallLoops += c.DoallLoops
		total.DLXLines += c.DLXLines
		total.LFD += c.LFD
		total.LBD += c.LBD
	}
	fmt.Fprintf(&sb, "%9s\n", "TOTAL")
	row := func(label string, get func(perfect.Characteristics) int) {
		fmt.Fprintf(&sb, "%-28s", label)
		for _, c := range r.Table1 {
			fmt.Fprintf(&sb, "%9d", get(c))
		}
		fmt.Fprintf(&sb, "%9d\n", get(total))
	}
	row("source lines", func(c perfect.Characteristics) int { return c.SourceLines })
	row("total no. of loops", func(c perfect.Characteristics) int { return c.TotalLoops })
	row("no. of Doall loops", func(c perfect.Characteristics) int { return c.DoallLoops })
	row("DLX instructions", func(c perfect.Characteristics) int { return c.DLXLines })
	row("total no. of LFD", func(c perfect.Characteristics) int { return c.LFD })
	row("total no. of LBD", func(c perfect.Characteristics) int { return c.LBD })
	return sb.String()
}

// RenderTable2 formats Table 2.
func (r *Result) RenderTable2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: Parallel execution time (cycles, 100 iterations)\n")
	fmt.Fprintf(&sb, "%-10s", "Benchmark")
	for _, name := range ConfigNames() {
		fmt.Fprintf(&sb, "%22s", name)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-10s", "")
	for range ConfigNames() {
		fmt.Fprintf(&sb, "%11s%11s", "Ta", "Tb")
	}
	sb.WriteString("\n")
	writeRow := func(row Row2) {
		fmt.Fprintf(&sb, "%-10s", row.Name)
		for k := 0; k < NumConfigs; k++ {
			fmt.Fprintf(&sb, "%11d%11d", row.Ta[k], row.Tb[k])
		}
		sb.WriteString("\n")
	}
	for _, row := range r.Table2 {
		writeRow(row)
	}
	writeRow(r.Total2)
	return sb.String()
}

// RenderTable3 formats Table 3.
func (r *Result) RenderTable3() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Improved percentage (list scheduling -> new scheduling)\n")
	fmt.Fprintf(&sb, "%-10s", "Benchmark")
	for _, name := range ConfigNames() {
		fmt.Fprintf(&sb, "%18s", name)
	}
	sb.WriteString("\n")
	writeRow := func(row Row3) {
		fmt.Fprintf(&sb, "%-10s", row.Name)
		for k := 0; k < NumConfigs; k++ {
			fmt.Fprintf(&sb, "%17.2f%%", row.Percent[k])
		}
		sb.WriteString("\n")
	}
	for _, row := range r.Table3 {
		writeRow(row)
	}
	writeRow(r.Total3)
	fmt.Fprintf(&sb, "\nSummary: mean total improvement %.2f%% (2-issue), %.2f%% (4-issue)\n",
		r.Summary2Issue, r.Summary4Issue)
	return sb.String()
}

// Observation1 checks §4.2 observation 1: the new scheduling's parallel time
// is much the same across all four configurations (the shortest possible
// synchronization path dominates, not issue width). Returns the worst
// relative spread of Tb across configs per benchmark.
func (r *Result) Observation1() (worstSpread float64, ok bool) {
	for _, row := range r.Table2 {
		mn, mx := row.Tb[0], row.Tb[0]
		for _, v := range row.Tb[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		spread := float64(mx-mn) / float64(mx)
		if spread > worstSpread {
			worstSpread = spread
		}
	}
	// "Much the same": within 25 % across configurations.
	return worstSpread, worstSpread < 0.25
}

// Observation2 checks §4.2 observation 2: for list scheduling, some
// benchmarks run *slower* at 4-issue than at 2-issue with the same unit
// count (hoisted waits lengthen the synchronization path). Returns the
// benchmarks exhibiting the anomaly.
func (r *Result) Observation2() []string {
	var out []string
	for _, row := range r.Table2 {
		// Compare (2-issue,#FU=1) vs (4-issue,#FU=1) and (#FU=2) pairs.
		if row.Ta[0] < row.Ta[2] || row.Ta[1] < row.Ta[3] {
			out = append(out, row.Name)
		}
	}
	return out
}

// Render returns all three tables.
func (r *Result) Render() string {
	return r.RenderTable1() + "\n" + r.RenderTable2() + "\n" + r.RenderTable3()
}
