package tables

import (
	"encoding/json"
	"fmt"
	"strings"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dlx"
	"doacross/internal/exact"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/passes"
	"doacross/internal/sim"
)

// DepLoop is one source loop entering the dependence-precision audit. Unlike
// GapLoop it keeps the parsed loop rather than a compiled graph: the audit
// compiles each loop twice, once per analysis mode.
type DepLoop struct {
	// Name labels the loop in rows and reports.
	Name string
	// Loop is the parsed source loop.
	Loop *lang.Loop
}

// CollectDepLoops parses every loop of a source file into audit inputs.
// Multi-loop files yield "<name>#k" entries.
func CollectDepLoops(name, src string) ([]DepLoop, error) {
	f, err := lang.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("depprec: %s: %w", name, err)
	}
	var out []DepLoop
	for i, l := range f.Loops {
		label := name
		if len(f.Loops) > 1 {
			label = fmt.Sprintf("%s#%d", name, i+1)
		}
		out = append(out, DepLoop{Name: label, Loop: l})
	}
	return out, nil
}

// DepPrecisionOptions configures the audit.
type DepPrecisionOptions struct {
	// N is the objective's trip count (0 = 100, the paper's). Loops with
	// constant bounds are measured at their own trip count instead — the
	// precise engine's bound-separation refutations are only valid inside
	// the declared iteration range, so pricing such a loop at a larger n
	// would credit the refinement beyond its proof.
	N int
	// Config is the machine shape (zero Issue = the paper's 4-issue #FU=2).
	Config dlx.Config
	// MaxNodes is the exact solver's node budget per compilation
	// (0 = exact.DefaultMaxNodes, negative = unlimited).
	MaxNodes int64
}

func (o DepPrecisionOptions) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o DepPrecisionOptions) config() dlx.Config {
	if o.Config.Issue > 0 {
		return o.Config
	}
	return dlx.Standard(4, 2)
}

// DepModeStats is one analysis mode's measured outcome on one loop.
type DepModeStats struct {
	// Exact, Independent and Conservative count the analyzer's pair
	// verdicts (dep.Analysis.Counts).
	Exact        int `json:"exact"`
	Independent  int `json:"independent"`
	Conservative int `json:"conservative"`
	// Sends and Waits count the synchronization operations inserted.
	Sends int `json:"sends"`
	Waits int `json:"waits"`
	// PredT is the heuristic's predicted T = (n/d)(i-j)+l; SimT is the
	// recurrence simulator's measured total over the same n.
	PredT int `json:"pred_t"`
	SimT  int `json:"sim_t"`
	// ExactT is the exact branch-and-bound backend's best T within budget;
	// ExactOptimal reports it was proven minimal.
	ExactT       int  `json:"exact_t"`
	ExactOptimal bool `json:"exact_optimal"`
}

// arcs is the loop-carried synchronization footprint.
func (s DepModeStats) arcs() int { return s.Sends + s.Waits }

// DepPrecisionRow is one loop's baseline-vs-precise measurement.
type DepPrecisionRow struct {
	Loop string `json:"loop"`
	// N is the trip count this row was priced at (the loop's own trip for
	// constant-bound loops, the audit's N otherwise).
	N        int          `json:"n"`
	Baseline DepModeStats `json:"baseline"`
	Precise  DepModeStats `json:"precise"`
	// Refined reports the precise analysis strictly improved a verdict:
	// fewer conservative pairs or more proven-independent pairs.
	Refined bool `json:"refined"`
	// ArcsReduced and SimImproved report strictly fewer sync operations and
	// a strictly faster simulation under the precise analysis.
	ArcsReduced bool `json:"arcs_reduced"`
	SimImproved bool `json:"sim_improved"`
	// ExactAgree reports the exact backend confirmed the refinement: with
	// both solves proven optimal, the precise graph's optimum is no worse
	// than the baseline graph's. Rows where a budget ran out agree vacuously
	// (the comparison is between incomparable bounds).
	ExactAgree bool `json:"exact_agree"`
}

// DepPrecisionSummary aggregates the corpus.
type DepPrecisionSummary struct {
	Loops   int `json:"loops"`
	Refined int `json:"refined"`
	// BaselineConservative and PreciseConservative total the conservative
	// pair verdicts corpus-wide; the audit's headline claim is the strict
	// decrease.
	BaselineConservative int `json:"baseline_conservative"`
	PreciseConservative  int `json:"precise_conservative"`
	ArcsReduced          int `json:"arcs_reduced"`
	SimImproved          int `json:"sim_improved"`
	SimRegressed         int `json:"sim_regressed"`
	// Verified counts verifier-accepted schedules (four per loop: heuristic
	// and exact, both modes); a rejection fails the audit instead of being
	// counted, so Verified == 4*Loops on success.
	Verified int `json:"verified"`
	// ExactAgree counts rows where the exact backend confirmed refinement.
	ExactAgree int `json:"exact_agree"`
}

// DepPrecisionResult is the corpus-wide audit outcome.
type DepPrecisionResult struct {
	N        int                 `json:"n"`
	Config   string              `json:"config"`
	MaxNodes int64               `json:"max_nodes"`
	Rows     []DepPrecisionRow   `json:"rows"`
	Summary  DepPrecisionSummary `json:"summary"`
}

// RunDepPrecision audits the precise dependence engine against the seed
// analyzer's baseline over the given loops: each loop is compiled twice
// (dep.Options.Baseline toggled through the pass pipeline), scheduled with
// the never-degrades heuristic, priced by the model and the recurrence
// simulator, and solved by the exact branch-and-bound backend on both
// graphs. Every schedule — heuristic and exact, both modes — must pass the
// independent verifier (internal/check), and the precise analysis must never
// report more conservative pairs than the baseline; either violation fails
// the audit loudly.
func RunDepPrecision(loops []DepLoop, opt DepPrecisionOptions) (*DepPrecisionResult, error) {
	cfg := opt.config()
	res := &DepPrecisionResult{N: opt.n(), Config: cfg.Name, MaxNodes: opt.MaxNodes}
	if res.MaxNodes == 0 {
		res.MaxNodes = exact.DefaultMaxNodes
	}
	for _, dl := range loops {
		row, verified, err := depProblem(dl, cfg, opt.n(), opt.MaxNodes)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		s := &res.Summary
		s.Loops++
		s.Verified += verified
		s.BaselineConservative += row.Baseline.Conservative
		s.PreciseConservative += row.Precise.Conservative
		if row.Refined {
			s.Refined++
		}
		if row.ArcsReduced {
			s.ArcsReduced++
		}
		if row.SimImproved {
			s.SimImproved++
		}
		if row.Precise.SimT > row.Baseline.SimT {
			s.SimRegressed++
		}
		if row.ExactAgree {
			s.ExactAgree++
		}
	}
	return res, nil
}

// depProblem measures one loop in both analysis modes. It returns the number
// of verifier-accepted schedules (always 4 on success — failures are errors).
func depProblem(dl DepLoop, cfg dlx.Config, n int, maxNodes int64) (DepPrecisionRow, int, error) {
	row := DepPrecisionRow{Loop: dl.Name, N: n}
	if lo, ok := lang.ConstInt(dl.Loop.Lo); ok {
		if hi, ok := lang.ConstInt(dl.Loop.Hi); ok && hi >= lo {
			row.N = hi - lo + 1
		}
	}
	verified := 0
	for _, mode := range []struct {
		baseline bool
		dst      *DepModeStats
	}{
		{true, &row.Baseline},
		{false, &row.Precise},
	} {
		st, v, err := depMode(dl, cfg, row.N, maxNodes, mode.baseline)
		if err != nil {
			return DepPrecisionRow{}, 0, err
		}
		*mode.dst = st
		verified += v
	}
	if row.Precise.Conservative > row.Baseline.Conservative {
		return DepPrecisionRow{}, 0, fmt.Errorf(
			"depprec: %s: precise analysis is more conservative than the baseline (%d > %d pairs)",
			dl.Name, row.Precise.Conservative, row.Baseline.Conservative)
	}
	row.Refined = row.Precise.Conservative < row.Baseline.Conservative ||
		row.Precise.Independent > row.Baseline.Independent
	row.ArcsReduced = row.Precise.arcs() < row.Baseline.arcs()
	row.SimImproved = row.Precise.SimT < row.Baseline.SimT
	row.ExactAgree = !(row.Baseline.ExactOptimal && row.Precise.ExactOptimal) ||
		row.Precise.ExactT <= row.Baseline.ExactT
	return row, verified, nil
}

// depMode compiles and measures one analysis mode.
func depMode(dl DepLoop, cfg dlx.Config, n int, maxNodes int64, baseline bool) (DepModeStats, int, error) {
	label := "precise"
	if baseline {
		label = "baseline"
	}
	ctx, err := passes.CompileLoop(dl.Loop, passes.Options{BaselineDeps: baseline})
	if err != nil {
		return DepModeStats{}, 0, fmt.Errorf("depprec: %s (%s): compile: %w", dl.Name, label, err)
	}
	var st DepModeStats
	st.Exact, st.Independent, st.Conservative = ctx.Analysis.Counts()
	st.Sends, st.Waits = ctx.Sync.NumOps()
	h, err := core.Best(ctx.Graph, cfg)
	if err != nil {
		return DepModeStats{}, 0, fmt.Errorf("depprec: %s (%s): heuristic: %w", dl.Name, label, err)
	}
	if err := check.Err(check.Verify(h)); err != nil {
		return DepModeStats{}, 0, fmt.Errorf("depprec: %s (%s): verifier rejected heuristic schedule: %w",
			dl.Name, label, err)
	}
	st.PredT = model.Predict(h, n)
	st.SimT = sim.MustTime(h, sim.Options{Lo: 1, Hi: n}).Total
	r, err := exact.Schedule(ctx.Graph, cfg, exact.Options{N: n, MaxNodes: maxNodes})
	if err != nil {
		return DepModeStats{}, 0, fmt.Errorf("depprec: %s (%s): exact: %w", dl.Name, label, err)
	}
	if err := check.Err(check.Verify(r.Schedule)); err != nil {
		return DepModeStats{}, 0, fmt.Errorf("depprec: %s (%s): verifier rejected exact schedule: %w",
			dl.Name, label, err)
	}
	st.ExactT, st.ExactOptimal = r.T, r.Optimal
	return st, 2, nil
}

// Render formats the audit as a fixed-width table plus the corpus summary,
// deterministic for golden tests and the committed report.
func (r *DepPrecisionResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dependence precision: seed baseline vs precise engine on %s, T at n=%d\n", r.Config, r.N)
	sb.WriteString("(constant-bound loops are priced at their own trip; pair verdicts are exact/independent/conservative)\n")
	fmt.Fprintf(&sb, "%-16s %5s %12s %12s %9s %9s %13s %13s  %s\n",
		"loop", "n", "base e/i/c", "prec e/i/c", "base s+w", "prec s+w", "simT b->p", "exactT b->p", "notes")
	for _, row := range r.Rows {
		var notes []string
		if row.Refined {
			notes = append(notes, "refined")
		}
		if row.ArcsReduced {
			notes = append(notes, "arcs-")
		}
		if row.SimImproved {
			notes = append(notes, "simT-")
		}
		if !row.ExactAgree {
			notes = append(notes, "exact-disagrees")
		}
		note := "="
		if len(notes) > 0 {
			note = strings.Join(notes, ",")
		}
		fmt.Fprintf(&sb, "%-16s %5d %12s %12s %9s %9s %13s %13s  %s\n",
			row.Loop, row.N,
			fmt.Sprintf("%d/%d/%d", row.Baseline.Exact, row.Baseline.Independent, row.Baseline.Conservative),
			fmt.Sprintf("%d/%d/%d", row.Precise.Exact, row.Precise.Independent, row.Precise.Conservative),
			fmt.Sprintf("%d+%d", row.Baseline.Sends, row.Baseline.Waits),
			fmt.Sprintf("%d+%d", row.Precise.Sends, row.Precise.Waits),
			fmt.Sprintf("%d->%d", row.Baseline.SimT, row.Precise.SimT),
			fmt.Sprintf("%d->%d", row.Baseline.ExactT, row.Precise.ExactT),
			note)
	}
	s := r.Summary
	fmt.Fprintf(&sb, "\nCorpus: %d loops, %d refined; conservative pairs %d -> %d; sync arcs reduced on %d, simulated T improved on %d, regressed on %d.\n",
		s.Loops, s.Refined, s.BaselineConservative, s.PreciseConservative, s.ArcsReduced, s.SimImproved, s.SimRegressed)
	fmt.Fprintf(&sb, "Verifier accepted all %d schedules (heuristic and exact, both modes); exact backend agrees on %d/%d rows.\n",
		s.Verified, s.ExactAgree, s.Loops)
	return sb.String()
}

// JSON renders the audit as stable, indented JSON (the committed
// BENCH_dep_precision.json snapshot).
func (r *DepPrecisionResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
