package tables

import (
	"encoding/json"
	"reflect"
	"testing"

	"doacross/internal/dlx"
)

// TestRunUtilPartitionInvariant runs the machine-utilization audit over
// generated loops and checks the tentpole invariant on every row: the
// stall-cause attribution partitions every processor's cycles exactly —
// Issued + SyncWait + WindowWait + Drain = procs × makespan (one processor
// per iteration, so procs = n). sim.Utilize has already verified the
// per-processor books internally; this pins the aggregate arithmetic the
// report publishes.
func TestRunUtilPartitionInvariant(t *testing.T) {
	count := 12
	if testing.Short() {
		count = 4
	}
	loops := gapCorpus(t, count)
	r, err := RunUtil(loops, UtilOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != count*len(dlx.PaperConfigs()) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), count*len(dlx.PaperConfigs()))
	}
	for _, row := range r.Rows {
		if row.Loop == "" {
			t.Fatal("unfilled row (concurrent index bug)")
		}
		total := row.Issued + row.SyncWait + row.WindowWait + row.Drain
		if want := r.N * row.SyncCycles; total != want {
			t.Errorf("%s on %s: attribution covers %d proc-cycles, want %d (procs %d x cycles %d)",
				row.Loop, row.Config, total, want, r.N, row.SyncCycles)
		}
		if row.LBDWait+row.LFDWait != row.SyncWait {
			t.Errorf("%s on %s: LBD %d + LFD %d != sync-wait %d",
				row.Loop, row.Config, row.LBDWait, row.LFDWait, row.SyncWait)
		}
		if row.SyncEff < 0 || row.SyncEff > 1 || row.ListEff < 0 || row.ListEff > 1 {
			t.Errorf("%s on %s: efficiency out of [0,1]: list %v sync %v",
				row.Loop, row.Config, row.ListEff, row.SyncEff)
		}
	}
	for _, s := range r.Summaries {
		if s.Loops != count {
			t.Errorf("summary %s covers %d loops, want %d", s.Config, s.Loops, count)
		}
	}
}

// TestRunUtilDeterministic pins the audit's concurrency to a deterministic
// output: two runs over the same corpus must agree byte for byte, or the
// committed BENCH_machine_util.json snapshot could not be reproducible.
func TestRunUtilDeterministic(t *testing.T) {
	loops := gapCorpus(t, 6)
	a, err := RunUtil(loops, UtilOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUtil(loops, UtilOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("two RunUtil runs over the same corpus differ")
	}
	if a.Render() != b.Render() {
		t.Error("two renders differ")
	}
}

// TestUtilJSONRoundTrip checks the snapshot survives marshal/unmarshal with
// nothing lost, so CI can diff a regenerated BENCH_machine_util.json
// against the committed one field by field.
func TestUtilJSONRoundTrip(t *testing.T) {
	loops := gapCorpus(t, 3)
	r, err := RunUtil(loops, UtilOptions{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back UtilResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 50 {
		t.Errorf("round-tripped N = %d, want 50", back.N)
	}
	if !reflect.DeepEqual(back.Rows, r.Rows) {
		t.Error("rows changed across the JSON round trip")
	}
	if len(back.Summaries) != len(r.Summaries) {
		t.Fatalf("summaries: got %d, want %d", len(back.Summaries), len(r.Summaries))
	}
}
