package hotbench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// TrajectorySchemaVersion is the trajectory document version this code
// reads and writes. Loading a document with a newer version fails instead
// of silently dropping fields the newer writer considered meaningful.
const TrajectorySchemaVersion = 1

// TrajectorySnapshot is one appended measurement point: the benchmark and
// audit snapshots current at append time, carried verbatim so the
// trajectory never re-interprets (or breaks on) an older snapshot shape.
type TrajectorySnapshot struct {
	// Seq numbers entries in append order, from 1.
	Seq int `json:"seq"`
	// Hotpath, ExactGap, MachineUtil and DepPrecision are the raw snapshot
	// documents (BENCH_hotpath.json, BENCH_exact_gap.json,
	// BENCH_machine_util.json, BENCH_dep_precision.json); absent when the
	// snapshot did not exist at append time.
	Hotpath      json.RawMessage `json:"hotpath,omitempty"`
	ExactGap     json.RawMessage `json:"exact_gap,omitempty"`
	MachineUtil  json.RawMessage `json:"machine_util,omitempty"`
	DepPrecision json.RawMessage `json:"dep_precision,omitempty"`
}

// Trajectory is the consolidated benchmark-trajectory artifact: an
// append-only sequence of snapshot points, so a CI run (or a developer)
// can diff performance and utilization across PRs without spelunking git
// history for each snapshot file.
type Trajectory struct {
	SchemaVersion int                  `json:"schema_version"`
	Entries       []TrajectorySnapshot `json:"entries"`
}

// LoadTrajectory reads a trajectory document; a missing file is an empty
// current-version trajectory, a future schema version is an error.
func LoadTrajectory(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Trajectory{SchemaVersion: TrajectorySchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("trajectory %s: %w", path, err)
	}
	if t.SchemaVersion > TrajectorySchemaVersion {
		return nil, fmt.Errorf("trajectory %s: schema version %d is newer than this build understands (%d)",
			path, t.SchemaVersion, TrajectorySchemaVersion)
	}
	t.SchemaVersion = TrajectorySchemaVersion
	return &t, nil
}

// Append adds one snapshot point built from whichever documents are
// non-nil, numbering it after the last entry. Documents must be valid JSON
// (they are embedded verbatim).
func (t *Trajectory) Append(hotpath, exactGap, machineUtil, depPrecision []byte) error {
	snap := TrajectorySnapshot{Seq: len(t.Entries) + 1}
	for _, d := range []struct {
		name string
		raw  []byte
		dst  *json.RawMessage
	}{
		{"hotpath", hotpath, &snap.Hotpath},
		{"exact_gap", exactGap, &snap.ExactGap},
		{"machine_util", machineUtil, &snap.MachineUtil},
		{"dep_precision", depPrecision, &snap.DepPrecision},
	} {
		if d.raw == nil {
			continue
		}
		if !json.Valid(d.raw) {
			return fmt.Errorf("trajectory: %s snapshot is not valid JSON", d.name)
		}
		*d.dst = json.RawMessage(d.raw)
	}
	t.Entries = append(t.Entries, snap)
	return nil
}

// Save writes the trajectory as indented JSON.
func (t *Trajectory) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
