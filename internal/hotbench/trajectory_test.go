package hotbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadTrajectoryMissingFile(t *testing.T) {
	tr, err := LoadTrajectory(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SchemaVersion != TrajectorySchemaVersion || len(tr.Entries) != 0 {
		t.Fatalf("missing file should load as empty current-version trajectory, got %+v", tr)
	}
}

func TestTrajectoryAppendSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trajectory.json")
	tr, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	hot := []byte(`{"rows":[{"bench":"b","ns_op":1}]}`)
	util := []byte(`{"n":100}`)
	if err := tr.Append(hot, nil, util, []byte(`{"summary":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(nil, []byte(`{"rows":[]}`), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(back.Entries))
	}
	e1, e2 := back.Entries[0], back.Entries[1]
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Errorf("seq numbering = %d, %d, want 1, 2", e1.Seq, e2.Seq)
	}
	// Save re-indents the embedded documents; the structure must survive
	// untouched even though the whitespace does not.
	sameJSON := func(a, b []byte) bool {
		var av, bv any
		if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
			return false
		}
		ac, _ := json.Marshal(av)
		bc, _ := json.Marshal(bv)
		return string(ac) == string(bc)
	}
	if !sameJSON(e1.Hotpath, hot) || !sameJSON(e1.MachineUtil, util) {
		t.Errorf("snapshots changed structurally: %s / %s", e1.Hotpath, e1.MachineUtil)
	}
	if !sameJSON(e1.DepPrecision, []byte(`{"summary":{}}`)) {
		t.Errorf("dep-precision snapshot changed structurally: %s", e1.DepPrecision)
	}
	if e1.ExactGap != nil {
		t.Error("absent snapshot should stay nil")
	}
	if e2.Hotpath != nil || e2.ExactGap == nil {
		t.Errorf("entry 2 = %+v", e2)
	}
	// A third append onto the reloaded document keeps numbering.
	if err := back.Append(hot, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if back.Entries[2].Seq != 3 {
		t.Errorf("seq after reload = %d, want 3", back.Entries[2].Seq)
	}
}

func TestTrajectoryRejectsInvalidSnapshot(t *testing.T) {
	tr := &Trajectory{SchemaVersion: TrajectorySchemaVersion}
	if err := tr.Append([]byte("{not json"), nil, nil, nil); err == nil {
		t.Fatal("invalid JSON snapshot accepted")
	}
	if len(tr.Entries) != 0 {
		t.Fatal("failed append still added an entry")
	}
}

func TestTrajectoryFutureVersionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	doc, _ := json.Marshal(Trajectory{SchemaVersion: TrajectorySchemaVersion + 1})
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadTrajectory(path)
	if err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future schema version: err = %v, want newer-version error", err)
	}
}
