// Package hotbench holds the hot-path benchmark workloads tracked by
// BENCH_hotpath.json: the 64-loop batch corpus scheduled serially and
// through the pipeline, the single-loop compile→schedule path, the
// steady-state warm-Scratch scheduling kernel, and a cached-hit pipeline
// request. The workloads take *testing.B so the same code serves both the
// `go test -bench` entry points (hotbench_test.go at the repo root) and
// the committed-snapshot emitter (`go run ./cmd/report -hotpath-json`),
// keeping the numbers in CI, in the benchmarks and in the JSON artifact
// from drifting apart.
package hotbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"doacross"
	"doacross/internal/pipeline"
)

// Fig1 is the paper's Fig. 1 loop, the single-loop workload.
const Fig1 = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

// N is the trip count used by the single-loop workloads (the paper's).
const N = 100

// Corpus64 builds the 64-loop batch corpus: 8 distinct loop shapes swept
// over 8 trip counts — the repeated-shape workload the schedule cache is
// designed for (a trip-count sweep reschedules nothing).
func Corpus64() []pipeline.Request {
	shapes := []string{
		Fig1,
		"DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO",
		"DO I = 1, N\nS1: B[I] = A[I-1] * C[I]\nS2: A[I] = B[I] + E[I]\nENDDO",
		"DO I = 1, N\nS1: A[I] = E[I] + 1\nS2: B[I] = A[I-2] * 2\nENDDO",
		"DO I = 1, N\nS = S + A[I] * B[I]\nENDDO",
		"DO I = 1, N\nS1: A[I] = A[I-3] / B[I]\nS2: C[I] = A[I] * A[I]\nENDDO",
		"DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + B[I]\nENDDO",
		"DO I = 1, N\nS1: B[I] = A[I-2] + E[I]\nS2: G[I] = A[I-1] * E[I+1]\nS3: A[I] = B[I] + G[I]\nENDDO",
	}
	var reqs []pipeline.Request
	for _, n := range []int{25, 50, 75, 100, 150, 200, 300, 400} {
		for si, src := range shapes {
			reqs = append(reqs, pipeline.Request{
				Name:   fmt.Sprintf("shape%d-n%d", si, n),
				Source: src,
				N:      n,
			})
		}
	}
	return reqs
}

// SerialBatch schedules the 64-loop corpus one loop at a time — the
// pre-pipeline code path: compile, schedule both ways, simulate, serially,
// no reuse.
func SerialBatch(b *testing.B) {
	reqs := Corpus64()
	m := doacross.Machine4Issue(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			prog, err := doacross.Compile(r.Source)
			if err != nil {
				b.Fatal(err)
			}
			list, err := prog.ScheduleList(m)
			if err != nil {
				b.Fatal(err)
			}
			syn, err := prog.ScheduleSync(m)
			if err != nil {
				b.Fatal(err)
			}
			if doacross.Simulate(list, r.N).Total < doacross.Simulate(syn, r.N).Total {
				b.Fatal("sync schedule degraded")
			}
		}
	}
}

// PipelineBatch runs the same corpus through the batch pipeline with 8
// workers and a persistent schedule cache (the steady-state service
// shape), reporting the cache hit rate.
func PipelineBatch(b *testing.B) {
	reqs := Corpus64()
	m := doacross.Machine4Issue(1)
	cache := doacross.NewScheduleCache()
	metrics := doacross.NewBatchMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := pipeline.Run(reqs, doacross.BatchOptions{
			Workers:  8,
			Machines: []doacross.Machine{m},
			Cache:    cache,
			Metrics:  metrics,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := batch.FirstErr(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*metrics.Stats().HitRate(), "hit%")
}

// CompileSchedule is the single-loop compile→schedule hot path: parse,
// dependence analysis, synchronization insertion, lowering, graph build,
// then a sync schedule into a warm Scratch. This is the path the
// zero-alloc refactor targets end to end.
func CompileSchedule(b *testing.B) {
	m := doacross.Machine4Issue(1)
	sc := doacross.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := doacross.Compile(Fig1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := prog.ScheduleWith("sync", m, sc)
		if err != nil {
			b.Fatal(err)
		}
		if s.Length() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// ScheduleWarm is the steady-state scheduling kernel alone: a compiled
// program rescheduled into a warm Scratch. The schedule is borrowed from
// the scratch, so the loop body allocates nothing (pinned to 0 by
// TestScratchScheduleAllocs at the repo root).
func ScheduleWarm(b *testing.B) {
	prog := doacross.MustCompile(Fig1)
	m := doacross.Machine4Issue(1)
	sc := doacross.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := prog.ScheduleWith("sync", m, sc)
		if err != nil {
			b.Fatal(err)
		}
		if s.Length() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// PipelineCachedHit is a steady-state batch request whose schedule is
// already cached: one request through a warm single-worker pipeline,
// measuring the per-request overhead when every stage after compile is a
// cache hit.
func PipelineCachedHit(b *testing.B) {
	reqs := []pipeline.Request{{Name: "hot", Source: Fig1, N: N}}
	m := doacross.Machine4Issue(1)
	opt := doacross.BatchOptions{
		Workers:  1,
		Machines: []doacross.Machine{m},
		Cache:    doacross.NewScheduleCache(),
	}
	if _, err := pipeline.Run(reqs, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := pipeline.Run(reqs, opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := batch.FirstErr(); err != nil {
			b.Fatal(err)
		}
	}
}

// SimUntraced is the recurrence simulator alone on the Fig. 1 sync
// schedule with no tracer attached — the pipeline's hot simulate path.
// TestSimNilTracerAllocs at the repo root pins its steady-state allocation
// count so the opt-in tracer hook stays free when unused.
func SimUntraced(b *testing.B) {
	s := simSchedule(b)
	opt := doacross.SimOptions{Lo: 1, Hi: N}
	if _, err := doacross.SimulateOptions(s, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, err := doacross.SimulateOptions(s, opt)
		if err != nil {
			b.Fatal(err)
		}
		if tm.Total == 0 {
			b.Fatal("zero makespan")
		}
	}
}

// SimTraced is the same simulation with the cycle-accurate tracer attached
// and its attribution books verified every iteration — the cost of -why,
// -machine-obs and the utilization audit, measured against SimUntraced.
func SimTraced(b *testing.B) {
	s := simSchedule(b)
	tr := &doacross.SimTracer{}
	opt := doacross.SimOptions{Lo: 1, Hi: N, Tracer: tr}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := doacross.SimulateTraced(s, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func simSchedule(b *testing.B) *doacross.Schedule {
	b.Helper()
	prog := doacross.MustCompile(Fig1)
	s, err := prog.ScheduleSync(doacross.Machine4Issue(1))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// Row is one benchmark's snapshot: the current measurement next to the
// recorded seed (pre-refactor) numbers, when the workload existed then.
type Row struct {
	// Bench is the workload name (matches the Benchmark* entry points).
	Bench string `json:"bench"`
	// NsOp, BytesOp, AllocsOp are the current measurement.
	NsOp     int64 `json:"ns_op"`
	BytesOp  int64 `json:"bytes_op"`
	AllocsOp int64 `json:"allocs_op"`
	// SeedNsOp/SeedAllocsOp are the recorded pre-refactor baseline (zero
	// when the workload was introduced with the refactor and has no seed
	// measurement).
	SeedNsOp     int64 `json:"seed_ns_op,omitempty"`
	SeedAllocsOp int64 `json:"seed_allocs_op,omitempty"`
	// SpeedupVsSeed is SeedNsOp/NsOp; AllocRatioVsSeed is
	// SeedAllocsOp/AllocsOp (omitted when AllocsOp is 0 — the ratio would
	// be infinite — or when there is no seed).
	SpeedupVsSeed    float64 `json:"speedup_vs_seed,omitempty"`
	AllocRatioVsSeed float64 `json:"alloc_ratio_vs_seed,omitempty"`
}

// Report is the BENCH_hotpath.json document: run parameters plus one row
// per tracked workload, mirroring the BENCH_exact_gap.json shape.
type Report struct {
	// N is the single-loop trip count; CorpusLoops the batch corpus size.
	N           int `json:"n"`
	CorpusLoops int `json:"corpus_loops"`
	// GoMaxProcs records the parallelism the pipeline rows ran under.
	GoMaxProcs int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	Rows       []Row  `json:"rows"`
}

// seed is the pre-refactor baseline, measured at the commit before the
// arena/bitset/struct-of-arrays refactor landed (ScheduleWarm's seed is
// the then-current per-call ScheduleSync, the only steady-state kernel
// that existed). These are recorded numbers: regenerating them requires
// checking out that commit, so they are carried here verbatim.
var seed = map[string]struct{ ns, allocs int64 }{
	"BenchmarkBatch64/serial":      {8_495_044, 35_428},
	"BenchmarkBatch64/pipeline-j8": {1_092_219, 4_208},
	"BenchmarkHotCompileSchedule":  {65_693, 623},
	"BenchmarkHotScheduleWarm":     {31_739, 327},
}

// workloads pairs each tracked benchmark name with its workload.
var workloads = []struct {
	name string
	fn   func(*testing.B)
}{
	{"BenchmarkBatch64/serial", SerialBatch},
	{"BenchmarkBatch64/pipeline-j8", PipelineBatch},
	{"BenchmarkHotCompileSchedule", CompileSchedule},
	{"BenchmarkHotScheduleWarm", ScheduleWarm},
	{"BenchmarkHotPipelineCachedHit", PipelineCachedHit},
	{"BenchmarkHotSim/untraced", SimUntraced},
	{"BenchmarkHotSim/traced", SimTraced},
}

// Run measures every tracked workload with testing.Benchmark and returns
// the snapshot report.
func Run() Report {
	r := Report{
		N:           N,
		CorpusLoops: len(Corpus64()),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Note: "hot-path benchmark trajectory: current measurement vs the recorded " +
			"pre-refactor seed; regenerate with `go run ./cmd/report -hotpath-json BENCH_hotpath.json -hotpath-only`",
	}
	for _, w := range workloads {
		res := testing.Benchmark(w.fn)
		row := Row{
			Bench:    w.name,
			NsOp:     res.NsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
		}
		if s, ok := seed[w.name]; ok {
			row.SeedNsOp, row.SeedAllocsOp = s.ns, s.allocs
			if row.NsOp > 0 {
				row.SpeedupVsSeed = round2(float64(s.ns) / float64(row.NsOp))
			}
			if row.AllocsOp > 0 {
				row.AllocRatioVsSeed = round2(float64(s.allocs) / float64(row.AllocsOp))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// JSON renders the report as the committed BENCH_hotpath.json document.
func (r Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
