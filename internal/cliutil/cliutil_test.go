package cliutil

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doacross/internal/obs"
	"doacross/internal/pipeline"
)

func TestRegisterAndDumpPasses(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	err := fs.Parse([]string{
		"-j", "4", "-stats", "-trace", "-dump", "parse,codegen",
		"-timeout", "2s", "-serve", ":0", "-trace-out", "t.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Jobs != 4 || !f.Stats || !f.Trace || f.Timeout != 2*time.Second {
		t.Fatalf("parsed flags = %+v", f)
	}
	if f.Serve != ":0" || f.TraceOut != "t.json" {
		t.Fatalf("parsed flags = %+v", f)
	}
	got := f.DumpPasses()
	if len(got) != 2 || got[0] != "parse" || got[1] != "codegen" {
		t.Fatalf("DumpPasses = %v", got)
	}
	empty := Register(flag.NewFlagSet("empty", flag.ContinueOnError))
	if empty.DumpPasses() != nil {
		t.Fatal("unset -dump should yield nil")
	}
}

// TestStartProfiling: -cpuprofile/-memprofile produce non-empty pprof
// files, and without either flag the whole lifecycle is a no-op.
func TestStartProfiling(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	f := &Flags{CPUProfile: cpu, MemProfile: mem}
	stop, err := f.StartProfiling()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so both profiles have something to say.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}

	off := &Flags{}
	stop, err = off.StartProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityOff: without -serve or -trace-out the wiring is inert —
// no recorder, no server, and Finish/Close are cheap no-ops.
func TestObservabilityOff(t *testing.T) {
	f := &Flags{}
	var out bytes.Buffer
	ob, err := f.Observability(pipeline.NewMetrics(), &out)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()
	if ob.Recorder != nil || ob.Server != nil || ob.Addr != "" {
		t.Fatalf("observability not inert: %+v", ob)
	}
	if err := ob.Finish(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("inert observability announced: %q", out.String())
	}
}

// TestObservabilityServe: -serve starts the admin surface on the announced
// address and serves live metrics from the wired registry.
func TestObservabilityServe(t *testing.T) {
	f := &Flags{Serve: "127.0.0.1:0"}
	metrics := pipeline.NewMetrics()
	metrics.CacheHit()
	var out bytes.Buffer
	ob, err := f.Observability(metrics, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()
	if ob.Recorder == nil || ob.Server == nil || ob.Addr == "" {
		t.Fatalf("serve wiring incomplete: %+v", ob)
	}
	if !strings.Contains(out.String(), ob.Addr) {
		t.Fatalf("bound address not announced: %q", out.String())
	}
	resp, err := http.Get("http://" + ob.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "doacross_cache_hits_total 1") {
		t.Fatalf("/metrics not wired to the registry:\n%s", body.String())
	}
}

// TestObservabilityTraceOut: -trace-out alone creates a recorder (no server)
// and Finish writes the Chrome trace file.
func TestObservabilityTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	f := &Flags{TraceOut: path}
	var out bytes.Buffer
	ob, err := f.Observability(pipeline.NewMetrics(), &out)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()
	if ob.Recorder == nil {
		t.Fatal("-trace-out did not create a recorder")
	}
	if ob.Server != nil {
		t.Fatal("-trace-out alone should not start a server")
	}
	sp := ob.Recorder.Start(obs.KindBatch, "batch", obs.Span{})
	ob.Recorder.End(&sp, nil)
	if err := ob.Finish(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "traceEvents") {
		t.Fatalf("trace file malformed:\n%s", b)
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("trace path not announced: %q", out.String())
	}
}

func TestPassTimings(t *testing.T) {
	m := pipeline.NewMetrics()
	m.Observe("parse", time.Millisecond)
	m.Observe(pipeline.StageSchedule, time.Millisecond)
	m.Observe(pipeline.StageSimulate, time.Millisecond)
	s := PassTimings(m.Stats())
	if !strings.Contains(s, "parse") || !strings.Contains(s, "compile") {
		t.Fatalf("PassTimings missing rows:\n%s", s)
	}
	if strings.Contains(s, pipeline.StageSchedule) || strings.Contains(s, pipeline.StageSimulate) {
		t.Fatalf("PassTimings leaked pipeline stages:\n%s", s)
	}
}
