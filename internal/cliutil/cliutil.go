// Package cliutil holds the flag wiring and observability plumbing shared
// by cmd/benchtab and cmd/schedcmp, so the two binaries register the same
// pipeline flags (-j, -stats, -trace, -dump, -timeout, -serve, -trace-out,
// -cpuprofile, -memprofile) with the same semantics and stop drifting apart.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"doacross/internal/obs"
	"doacross/internal/passes"
	"doacross/internal/pipeline"
)

// Flags are the pipeline flags common to the batch-scheduling commands.
type Flags struct {
	// Jobs is -j: the pipeline worker count (0 = GOMAXPROCS).
	Jobs int
	// Stats is -stats: print the pipeline cache/latency report at exit.
	Stats bool
	// Trace is -trace: print per-pass compile timings at exit.
	Trace bool
	// Dump is -dump: comma-separated pass names whose artifacts to print.
	Dump string
	// Timeout is -timeout: the per-batch deadline (0 = none).
	Timeout time.Duration
	// Serve is -serve: the address of the HTTP admin surface ("" = off).
	Serve string
	// TraceOut is -trace-out: a file to write the Chrome trace to ("" =
	// off).
	TraceOut string
	// Backend is -backend: the scheduling backend serving the
	// synchronization-aware slot ("" = sync, the paper's heuristic).
	Backend string
	// ExactBudget is -exact-budget: the exact backend's branch-and-bound
	// node budget (0 = default, negative = unlimited).
	ExactBudget int64
	// CPUProfile is -cpuprofile: a file to write a pprof CPU profile of
	// the run to ("" = off).
	CPUProfile string
	// MemProfile is -memprofile: a file to write a pprof heap profile to
	// after the run ("" = off).
	MemProfile string
}

// Register installs the shared flags on fs (flag.CommandLine in the cmds).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Jobs, "j", 0, "pipeline workers (0 = GOMAXPROCS)")
	fs.BoolVar(&f.Stats, "stats", false, "print pipeline cache and stage-latency stats")
	fs.BoolVar(&f.Trace, "trace", false, "print per-pass compile timings from the pipeline metrics registry")
	fs.StringVar(&f.Dump, "dump", "", "comma-separated pass names whose artifacts to print ('all' for every pass)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-batch deadline (0 = none); loops cut off by it fail individually")
	fs.StringVar(&f.Serve, "serve", "", "serve the observability admin surface on this address (e.g. :8080 or :0; /metrics, /stats, /trace, /healthz, /debug/pprof)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file of the run (view in Perfetto)")
	fs.StringVar(&f.Backend, "backend", "", "scheduling backend: "+strings.Join(passes.BackendNames(), ", ")+" (default sync, the paper's heuristic)")
	fs.Int64Var(&f.ExactBudget, "exact-budget", 0, "exact backend branch-and-bound node budget (0 = default, negative = unlimited)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file after the run")
	return f
}

// StartProfiling begins the CPU profile when -cpuprofile is set. The
// returned stop function must run once after the workload (and before any
// blocking teardown like Observability.Finish with -serve): it stops the
// CPU profile, and with -memprofile it runs a GC and writes the heap
// profile so the snapshot reflects live memory, not transient garbage.
// Without either flag both the start and the stop are no-ops.
func (f *Flags) StartProfiling() (stop func() error, err error) {
	var cpu *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if f.MemProfile == "" {
			return nil
		}
		fh, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(fh); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}, nil
}

// BackendOptions merges the -backend/-exact-budget selection into base (the
// command's other compile options) for pipeline.Options.Compile.
func (f *Flags) BackendOptions(base passes.Options) passes.Options {
	base.Backend = f.Backend
	base.Exact.MaxNodes = f.ExactBudget
	return base
}

// DumpPasses splits -dump into pass names (nil when unset).
func (f *Flags) DumpPasses() []string {
	if f.Dump == "" {
		return nil
	}
	return strings.Split(f.Dump, ",")
}

// Observability is the wired-up observability side of one command run: the
// span recorder handed to the pipeline (nil when tracing is off) and the
// admin server (nil when -serve is off).
type Observability struct {
	// Recorder is non-nil when -serve or -trace-out asked for spans; pass
	// it as pipeline.Options.Observer.
	Recorder *obs.Recorder
	// Server is the running admin server, nil without -serve.
	Server *obs.Server
	// Addr is the bound address of the admin server ("" without -serve).
	Addr string

	flags    *Flags
	announce io.Writer

	mu      sync.Mutex
	machine []obs.Event
}

// AddMachineEvents merges pre-built machine-timeline events (the simulator
// tracer's per-processor issue and FU tracks) into the run's trace: they are
// served on /trace next to the pipeline spans and written into the
// -trace-out file. Safe from concurrent loop renderers; a no-op when neither
// -serve nor -trace-out asked for a trace.
func (o *Observability) AddMachineEvents(evs []obs.Event) {
	if o.Recorder == nil || len(evs) == 0 {
		return
	}
	o.mu.Lock()
	o.machine = append(o.machine, evs...)
	o.mu.Unlock()
}

// machineEvents snapshots the collected machine timelines.
func (o *Observability) machineEvents() []obs.Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]obs.Event(nil), o.machine...)
}

// Observability starts the observability side requested by the flags: a
// span recorder when -serve or -trace-out is set, plus the admin server
// (publishing metrics to expvar as well) when -serve is set. The bound
// address is announced on w (so scripts can scrape ":0" runs). Callers must
// Close the result.
func (f *Flags) Observability(metrics *pipeline.Metrics, w io.Writer) (*Observability, error) {
	if w == nil {
		w = os.Stderr
	}
	o := &Observability{flags: f, announce: w}
	if f.Serve == "" && f.TraceOut == "" {
		return o, nil
	}
	o.Recorder = obs.NewRecorder(0)
	if f.Serve == "" {
		return o, nil
	}
	metrics.PublishExpvar("")
	o.Server = &obs.Server{
		Recorder: o.Recorder,
		Metrics:  metrics.WritePrometheus,
		Stats:    func() any { return metrics.Stats() },
		Extra:    o.machineEvents,
	}
	addr, err := o.Server.Start(f.Serve)
	if err != nil {
		return nil, err
	}
	o.Addr = addr.String()
	fmt.Fprintf(w, "obs: serving on http://%s (/metrics /stats /trace /healthz /debug/pprof)\n", o.Addr)
	return o, nil
}

// shutdownGrace bounds how long Close waits for in-flight admin requests
// (a /metrics scrape, a /trace download) before closing hard.
const shutdownGrace = 5 * time.Second

// Finish completes the observability side after the batch ran: it writes
// the -trace-out file if requested, and with -serve it keeps the admin
// surface up until SIGINT or SIGTERM so the finished run can still be
// scraped and its trace downloaded. On either signal the server is drained
// gracefully (see Close) instead of exiting mid-scrape.
func (o *Observability) Finish() error {
	if o.flags.TraceOut != "" && o.Recorder != nil {
		fh, err := os.Create(o.flags.TraceOut)
		if err != nil {
			return err
		}
		err = obs.WriteChromeTraceMerged(fh, o.Recorder.Snapshot(), o.Recorder.Epoch(), o.machineEvents())
		if err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(o.announce, "obs: wrote Chrome trace to %s (open in ui.perfetto.dev)\n", o.flags.TraceOut)
	}
	if o.Server != nil {
		fmt.Fprintf(o.announce, "obs: batch done; still serving on http://%s — Ctrl-C to exit\n", o.Addr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		signal.Stop(ch)
	}
	return nil
}

// Close tears the admin server down (safe on every Observability): requests
// already being served get shutdownGrace to finish — a SIGTERM during a
// Prometheus scrape must not truncate the exposition mid-body — and only
// then are stragglers closed hard.
func (o *Observability) Close() {
	if o.Server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		_ = o.Server.Shutdown(ctx)
	}
}

// PassTimings renders the compilation-pass rows of a stats snapshot
// (scheduling and simulation stages are left to the -stats report).
func PassTimings(st pipeline.Stats) string {
	var sb strings.Builder
	for _, s := range st.Stages {
		if s.Stage == pipeline.StageSchedule || s.Stage == pipeline.StageVerify || s.Stage == pipeline.StageSimulate {
			continue
		}
		fmt.Fprintf(&sb, "%-10s %6d runs, mean %9v, max %9v, total %9v\n",
			s.Stage, s.Count, s.Mean(), s.Max, s.Total)
	}
	fmt.Fprintf(&sb, "%-10s %v\n", "compile", st.CompileTime())
	return sb.String()
}
