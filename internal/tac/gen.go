package tac

import (
	"fmt"

	"doacross/internal/diag"
	"doacross/internal/lang"
	"doacross/internal/syncop"
)

// ScalarKey identifies a scalar access site for dependence→instruction
// mapping.
type ScalarKey struct {
	Stmt  int
	Name  string
	Write bool
}

// Program is the compiled body of one DOACROSS iteration.
type Program struct {
	// Sync is the synchronized source loop.
	Sync *syncop.Loop
	// Instrs is the instruction sequence in program order.
	Instrs []*Instr
	// NumTemps is the highest temp number used.
	NumTemps int
	// ArrayInstr maps each array reference node of the AST to the load or
	// store instruction generated for it (used to attach synchronization
	// dependence arcs).
	ArrayInstr map[*lang.ArrayRef]*Instr
	// ScalarInstr maps scalar access sites to their load/store instruction.
	// Scalar loads are CSE'd per statement, so several reads of X in one
	// statement share an entry.
	ScalarInstr map[ScalarKey]*Instr
	// MergeLoad maps the LHS array reference of a conditional assignment to
	// the merge load of the old element value emitted by if-conversion.
	MergeLoad map[*lang.ArrayRef]*Instr
}

// instrArena hands out pointer-stable Instr storage in fixed-capacity
// chunks: a chunk's backing array never reallocates, so the *Instr pointers
// threaded through Program's maps and the DFG stay valid while the bulk of
// the instruction stream lives in a handful of contiguous blocks instead of
// one heap object per instruction.
type instrArena struct {
	chunks [][]Instr
}

const instrArenaChunk = 64

func (a *instrArena) alloc() *Instr {
	k := len(a.chunks) - 1
	if k < 0 || len(a.chunks[k]) == cap(a.chunks[k]) {
		a.chunks = append(a.chunks, make([]Instr, 0, instrArenaChunk))
		k++
	}
	a.chunks[k] = append(a.chunks[k], Instr{})
	return &a.chunks[k][len(a.chunks[k])-1]
}

// affineKey is the CSE key of a pure subscript: AffineIndex proves the
// subscript evaluates to coef*I + off, so the coefficient pair identifies its
// value without stringifying the expression.
type affineKey struct {
	coef, off int
}

// binOpcode maps source binary operators to opcodes (a switch rather than a
// map literal: genIndex/genValue run per expression node on the compile hot
// path).
func binOpcode(op lang.BinOp) Opcode {
	switch op {
	case lang.OpAdd:
		return Add
	case lang.OpSub:
		return Sub
	case lang.OpMul:
		return Mul
	default:
		return Div
	}
}

// generator lowers one loop.
type generator struct {
	prog     *Program
	arena    instrArena
	iv       string
	nextTemp int
	// addrCSE caches scaled-address temps of pure subscripts within the
	// iteration.
	addrCSE map[affineKey]int
	// idxCSE caches unscaled index temps.
	idxCSE map[affineKey]int
	stmt   int
}

// Generate compiles the synchronized loop to three-address code.
func Generate(sl *syncop.Loop) (*Program, error) {
	// Maps are initialized on first write (nil-map reads are free): simple
	// loops without conditionals or scalars never pay for the ones they
	// don't use.
	g := &generator{
		prog: &Program{
			Sync:   sl,
			Instrs: make([]*Instr, 0, instrArenaChunk),
		},
		iv:   sl.Base.Var,
		stmt: -1,
	}
	for k, st := range sl.Base.Body {
		g.stmt = k
		for _, op := range sl.Pre[k] {
			g.emit(Instr{Op: Wait, Signal: op.Src, SigDist: op.Distance})
		}
		if err := g.genAssign(st); err != nil {
			// Attribute the failure to the statement's source position; the
			// inner message stays intact ("unsupported expression ...").
			if d, ok := diag.As(err); ok {
				return nil, d
			}
			return nil, diag.Errorf("tac", st.Pos(), "%v", err).WithStmt(st.Label)
		}
		for _, op := range sl.Post[k] {
			g.emit(Instr{Op: Send, Signal: op.Src})
		}
	}
	g.prog.NumTemps = g.nextTemp
	return g.prog, nil
}

// MustGenerate is Generate for known-good inputs (tests, examples).
func MustGenerate(sl *syncop.Loop) *Program {
	p, err := Generate(sl)
	if err != nil {
		panic(err)
	}
	return p
}

func (g *generator) emit(in Instr) *Instr {
	p := g.arena.alloc()
	*p = in
	p.ID = len(g.prog.Instrs) + 1
	p.Stmt = g.stmt
	g.prog.Instrs = append(g.prog.Instrs, p)
	return p
}

func (g *generator) setArrayInstr(ref *lang.ArrayRef, in *Instr) {
	if g.prog.ArrayInstr == nil {
		// Sized for the common loop body up front — incremental map growth
		// costs several allocations on the compile hot path.
		g.prog.ArrayInstr = make(map[*lang.ArrayRef]*Instr, 16)
	}
	g.prog.ArrayInstr[ref] = in
}

func (g *generator) setScalarInstr(key ScalarKey, in *Instr) {
	if g.prog.ScalarInstr == nil {
		g.prog.ScalarInstr = map[ScalarKey]*Instr{}
	}
	g.prog.ScalarInstr[key] = in
}

func (g *generator) temp() int {
	g.nextTemp++
	return g.nextTemp
}

// genAssign lowers one assignment, paper order: LHS address first, then RHS,
// then the store. Guarded assignments are if-converted: load the old value,
// compute the guard and the new value, select, store unconditionally — the
// form superscalar schedulers need (no intra-body control flow).
func (g *generator) genAssign(st *lang.Assign) error {
	switch lhs := st.LHS.(type) {
	case *lang.ArrayRef:
		addr, err := g.genAddress(lhs.Index)
		if err != nil {
			return err
		}
		var oldv Operand
		if st.Cond != nil {
			t := g.temp()
			in := g.emit(Instr{Op: Load, Dst: t, Array: lhs.Name, A: TempOp(addr)})
			if g.prog.MergeLoad == nil {
				g.prog.MergeLoad = map[*lang.ArrayRef]*Instr{}
			}
			g.prog.MergeLoad[lhs] = in
			oldv = TempOp(t)
		}
		val, err := g.genValue(st.RHS)
		if err != nil {
			return err
		}
		if st.Cond != nil {
			val, err = g.genSelect(st.Cond, val, oldv)
			if err != nil {
				return err
			}
		}
		in := g.emit(Instr{Op: Store, Array: lhs.Name, A: TempOp(addr), B: val})
		g.setArrayInstr(lhs, in)
		return nil
	case *lang.Scalar:
		var oldv Operand
		if st.Cond != nil {
			// The merge read shares the statement's scalar-load CSE slot.
			oldv = TempOp(g.scalarLoad(lhs.Name))
		}
		val, err := g.genValue(st.RHS)
		if err != nil {
			return err
		}
		if st.Cond != nil {
			val, err = g.genSelect(st.Cond, val, oldv)
			if err != nil {
				return err
			}
		}
		in := g.emit(Instr{Op: StoreS, Array: lhs.Name, B: val})
		g.setScalarInstr(ScalarKey{Stmt: g.stmt, Name: lhs.Name, Write: true}, in)
		return nil
	}
	return fmt.Errorf("unsupported assignment target %T", st.LHS)
}

// genSelect lowers the guard and merges new/old values.
func (g *generator) genSelect(c *lang.Cond, newv, oldv Operand) (Operand, error) {
	l, err := g.genValue(c.L)
	if err != nil {
		return Operand{}, err
	}
	r, err := g.genValue(c.R)
	if err != nil {
		return Operand{}, err
	}
	ct := g.temp()
	g.emit(Instr{Op: Cmp, Dst: ct, A: l, B: r, Rel: c.Op})
	st := g.temp()
	g.emit(Instr{Op: Select, Dst: st, A: newv, B: oldv, C: TempOp(ct)})
	return TempOp(st), nil
}

// genAddress computes the scaled byte address (4 * subscript) of an array
// element, reusing previously computed addresses for identical subscripts.
func (g *generator) genAddress(idx lang.Expr) (int, error) {
	// Cross-statement reuse is only safe for subscripts that are pure
	// functions of the induction variable; anything touching a mutable
	// scalar or array must be recomputed.
	coef, off, pure := lang.AffineIndex(idx, g.iv)
	key := affineKey{coef, off}
	if pure {
		if t, ok := g.addrCSE[key]; ok {
			return t, nil
		}
	}
	it, err := g.genIndex(idx)
	if err != nil {
		return 0, err
	}
	t := g.temp()
	g.emit(Instr{Op: Shl, Dst: t, A: it, IntegerTyped: true})
	if pure {
		if g.addrCSE == nil {
			g.addrCSE = map[affineKey]int{}
		}
		g.addrCSE[key] = t
	}
	return t, nil
}

// genIndex lowers a subscript expression with integer arithmetic, returning
// an operand (temps for compound expressions, I / constants directly).
func (g *generator) genIndex(e lang.Expr) (Operand, error) {
	switch v := e.(type) {
	case *lang.Const:
		return ConstOp(v.Value), nil
	case *lang.Scalar:
		if v.Name == g.iv {
			return IVOp(), nil
		}
		// Loop-invariant scalar used in a subscript: load it once per
		// statement.
		return TempOp(g.scalarLoad(v.Name)), nil
	case *lang.Neg:
		x, err := g.genIndex(v.X)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		g.emit(Instr{Op: Sub, Dst: t, A: ConstOp(0), B: x, IntegerTyped: true})
		return TempOp(t), nil
	case *lang.ArrayRef:
		// Indirect subscript (A[X[I]]): load the index element.
		addr, err := g.genAddress(v.Index)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		in := g.emit(Instr{Op: Load, Dst: t, Array: v.Name, A: TempOp(addr)})
		g.setArrayInstr(v, in)
		return TempOp(t), nil
	case *lang.Binary:
		coef, off, pure := lang.AffineIndex(e, g.iv)
		key := affineKey{coef, off}
		if pure {
			if t, ok := g.idxCSE[key]; ok {
				return TempOp(t), nil
			}
		}
		a, err := g.genIndex(v.L)
		if err != nil {
			return Operand{}, err
		}
		b, err := g.genIndex(v.R)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		op := binOpcode(v.Op)
		g.emit(Instr{Op: op, Dst: t, A: a, B: b, IntegerTyped: op == Add || op == Sub})
		if pure {
			if g.idxCSE == nil {
				g.idxCSE = map[affineKey]int{}
			}
			g.idxCSE[key] = t
		}
		return TempOp(t), nil
	}
	return Operand{}, fmt.Errorf("unsupported subscript expression %T", e)
}

// genValue lowers a data expression (float pipeline).
func (g *generator) genValue(e lang.Expr) (Operand, error) {
	switch v := e.(type) {
	case *lang.Const:
		return ConstOp(v.Value), nil
	case *lang.Scalar:
		if v.Name == g.iv {
			return IVOp(), nil
		}
		return TempOp(g.scalarLoad(v.Name)), nil
	case *lang.ArrayRef:
		addr, err := g.genAddress(v.Index)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		in := g.emit(Instr{Op: Load, Dst: t, Array: v.Name, A: TempOp(addr)})
		g.setArrayInstr(v, in)
		return TempOp(t), nil
	case *lang.Neg:
		x, err := g.genValue(v.X)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		g.emit(Instr{Op: Sub, Dst: t, A: ConstOp(0), B: x})
		return TempOp(t), nil
	case *lang.Binary:
		a, err := g.genValue(v.L)
		if err != nil {
			return Operand{}, err
		}
		b, err := g.genValue(v.R)
		if err != nil {
			return Operand{}, err
		}
		t := g.temp()
		op := binOpcode(v.Op)
		g.emit(Instr{Op: op, Dst: t, A: a, B: b})
		return TempOp(t), nil
	}
	return Operand{}, fmt.Errorf("unsupported expression %T", e)
}

// scalarLoad loads a scalar from shared memory, CSE'd per statement. Writes
// to the scalar elsewhere in the loop make cross-statement reuse unsafe in
// general, so the cache resets per statement (the dependence analyzer's
// distance-0 arcs then order the accesses correctly).
func (g *generator) scalarLoad(name string) int {
	key := ScalarKey{Stmt: g.stmt, Name: name, Write: false}
	if in, ok := g.prog.ScalarInstr[key]; ok {
		return in.Dst
	}
	t := g.temp()
	in := g.emit(Instr{Op: LoadS, Dst: t, Array: name})
	g.setScalarInstr(key, in)
	return t
}

// Waits returns the wait instructions in program order.
func (p *Program) Waits() []*Instr {
	var out []*Instr
	for _, in := range p.Instrs {
		if in.Op == Wait {
			out = append(out, in)
		}
	}
	return out
}

// Sends returns the send instructions in program order.
func (p *Program) Sends() []*Instr {
	var out []*Instr
	for _, in := range p.Instrs {
		if in.Op == Send {
			out = append(out, in)
		}
	}
	return out
}

// SendFor returns the send instruction for the given signal name, or nil.
func (p *Program) SendFor(signal string) *Instr {
	for _, in := range p.Instrs {
		if in.Op == Send && in.Signal == signal {
			return in
		}
	}
	return nil
}
