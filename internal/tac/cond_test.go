package tac

import (
	"strings"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/lang"
	"doacross/internal/syncop"
)

func TestConditionalLowering(t *testing.T) {
	p := compile(t, "DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + 1\nENDDO")
	var hasCmp, hasSelect, mergeLoads int
	for _, in := range p.Instrs {
		switch in.Op {
		case Cmp:
			hasCmp++
		case Select:
			hasSelect++
		}
	}
	mergeLoads = len(p.MergeLoad)
	if hasCmp != 1 || hasSelect != 1 || mergeLoads != 1 {
		t.Errorf("cmp=%d select=%d merge=%d, want 1/1/1\n%s", hasCmp, hasSelect, mergeLoads, Listing(p.Instrs))
	}
	// The store must be unconditional and consume the select result.
	ls := Listing(p.Instrs)
	if !strings.Contains(ls, "?") {
		t.Errorf("listing missing select:\n%s", ls)
	}
}

func TestConditionalSemantics(t *testing.T) {
	src := "DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + E[I]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 6)
	st.SetElem("A", 0, 10)
	for i := 1; i <= 6; i++ {
		v := float64(i)
		if i%3 == 0 {
			v = -v
		}
		st.SetElem("E", i, v)
		st.SetElem("A", i, 100+float64(i))
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(st); d != "" {
		t.Errorf("conditional TAC diverges: %s\n%s", d, Listing(p.Instrs))
	}
}

func TestConditionalScalarSemantics(t *testing.T) {
	// Conditional max-reduction: M = A[I] when A[I] > M.
	src := "DO I = 1, N\nIF (A[I] > M) M = A[I]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 8)
	st.SetScalar("M", -1e9)
	vals := []float64{3, 7, 2, 9, 1, 9, 4, 8}
	for i, v := range vals {
		st.SetElem("A", i+1, v)
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if st.Scalar("M") != 9 || ref.Scalar("M") != 9 {
		t.Errorf("max = %v / %v, want 9", st.Scalar("M"), ref.Scalar("M"))
	}
}

func TestConditionalDependences(t *testing.T) {
	// A conditional write still sources a loop-carried dependence, and the
	// merge read adds an anti-dependence on the written element.
	a := dep.Analyze(lang.MustParse("DO I = 1, N\nIF (E[I] > 0) A[I] = E[I]\nB[I] = A[I-1]\nENDDO"))
	foundFlow := false
	for _, d := range a.Deps {
		if d.Kind == dep.Flow && d.Carried() && d.Src.Name() == "A" {
			foundFlow = true
		}
	}
	if !foundFlow {
		t.Errorf("conditional write must source the carried flow dep: %v", a.Deps)
	}
}

func TestConditionalSyncArcs(t *testing.T) {
	// The merge load of a conditionally-written sink element must be guarded
	// by the wait: IF (..) A[I] = ..; with a consumer A[I-1] elsewhere the
	// write is a source; conversely a conditional *sink* read: check the
	// pipeline compiles and schedules.
	src := "DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + 1\nENDDO"
	loop := lang.MustParse(src)
	a := dep.Analyze(loop)
	sl := syncop.Insert(a, syncop.Options{})
	sends, waits := sl.NumOps()
	if sends == 0 || waits == 0 {
		t.Fatalf("conditional recurrence got %d sends %d waits", sends, waits)
	}
	if _, err := Generate(sl); err != nil {
		t.Fatal(err)
	}
}

func TestCmpSelectExec(t *testing.T) {
	f := NewFrame(4, 1)
	st := lang.NewStore()
	if err := Exec(&Instr{Op: Cmp, Dst: 1, A: ConstOp(3), B: ConstOp(2), Rel: lang.RelGT}, f, st); err != nil {
		t.Fatal(err)
	}
	if f.Temps[1] != 1 {
		t.Errorf("3 > 2 = %v, want 1", f.Temps[1])
	}
	if err := Exec(&Instr{Op: Select, Dst: 2, A: ConstOp(10), B: ConstOp(20), C: TempOp(1)}, f, st); err != nil {
		t.Fatal(err)
	}
	if f.Temps[2] != 10 {
		t.Errorf("select true = %v, want 10", f.Temps[2])
	}
	if err := Exec(&Instr{Op: Cmp, Dst: 3, A: ConstOp(3), B: ConstOp(3), Rel: lang.RelNE}, f, st); err != nil {
		t.Fatal(err)
	}
	if err := Exec(&Instr{Op: Select, Dst: 4, A: ConstOp(10), B: ConstOp(20), C: TempOp(3)}, f, st); err != nil {
		t.Fatal(err)
	}
	if f.Temps[4] != 20 {
		t.Errorf("select false = %v, want 20", f.Temps[4])
	}
}
