// Package tac lowers a synchronized DOACROSS loop body to DLX-style
// three-address code, the "internal form" the paper feeds its simulator
// (§4.1). The lowering follows the paper's Fig. 2 exactly:
//
//   - array subscripts are computed in integer registers (integer unit),
//   - byte addresses are formed by a scale-by-4 shift (shifter unit),
//   - array elements move through load/store instructions,
//   - data arithmetic runs on the float/multiplier/divider units,
//   - Wait_Signal sits immediately before its statement's code and
//     Send_Signal immediately after, preserving the synchronization
//     conditions at the instruction level.
//
// Address computations are reused across statements of the iteration
// (common-subexpression elimination), matching the paper's reuse of
// t1 = 4*I for B[t1], B[t1] and A[t1].
package tac

import (
	"fmt"
	"strings"

	"doacross/internal/dlx"
	"doacross/internal/lang"
)

// Opcode is a three-address-code operation.
type Opcode int

// Opcodes.
const (
	Load   Opcode = iota // Dst <- Array[A]       (A = address temp)
	Store                // Array[A] <- B
	LoadS                // Dst <- scalar Array   (scalar load; Array = name)
	StoreS               // scalar Array <- B
	Add                  // Dst <- A + B
	Sub                  // Dst <- A - B
	Mul                  // Dst <- A * B
	Div                  // Dst <- A / B
	Shl                  // Dst <- A * 4          (address scaling shift)
	Move                 // Dst <- A
	Cmp                  // Dst <- A rel B (1.0 or 0.0); Rel selects the relation
	Select               // Dst <- C != 0 ? A : B (if-conversion merge)
	Send                 // Send_Signal(Signal)
	Wait                 // Wait_Signal(Signal, I-SigDist)
)

// String names the opcode.
func (op Opcode) String() string {
	switch op {
	case Load:
		return "load"
	case Store:
		return "store"
	case LoadS:
		return "loads"
	case StoreS:
		return "stores"
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case Shl:
		return "shl"
	case Move:
		return "move"
	case Cmp:
		return "cmp"
	case Select:
		return "select"
	case Send:
		return "send"
	case Wait:
		return "wait"
	}
	return fmt.Sprintf("Opcode(%d)", int(op))
}

// OperandKind classifies an instruction operand.
type OperandKind int

// Operand kinds.
const (
	None  OperandKind = iota
	Temp              // virtual register t<k>
	IV                // the induction variable register
	Const             // immediate
)

// Operand is one source operand.
type Operand struct {
	Kind OperandKind
	// Reg is the temp number for Kind==Temp.
	Reg int
	// Val is the immediate for Kind==Const.
	Val float64
}

// TempOp returns a temp operand.
func TempOp(r int) Operand { return Operand{Kind: Temp, Reg: r} }

// IVOp returns the induction-variable operand.
func IVOp() Operand { return Operand{Kind: IV} }

// ConstOp returns an immediate operand.
func ConstOp(v float64) Operand { return Operand{Kind: Const, Val: v} }

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case None:
		return "_"
	case Temp:
		return fmt.Sprintf("t%d", o.Reg)
	case IV:
		return "I"
	case Const:
		if o.Val == float64(int64(o.Val)) {
			return fmt.Sprintf("%d", int64(o.Val))
		}
		return fmt.Sprintf("%g", o.Val)
	}
	return "?"
}

// Instr is one three-address instruction.
type Instr struct {
	// ID is the 1-based position in the generated sequence (the paper's
	// instruction numbering in Fig. 2/3/4).
	ID int
	Op Opcode
	// Dst is the destination temp (0 = none).
	Dst int
	// A, B are the source operands. For Load, A is the address temp; for
	// Store, A is the address and B the stored value. C is the guard operand
	// of Select (Dst <- C != 0 ? A : B).
	A, B, C Operand
	// Rel is the relation computed by Cmp.
	Rel lang.RelOp
	// Array is the array (or scalar, for LoadS/StoreS) name.
	Array string
	// Signal and SigDist describe Send/Wait operations: the signal name
	// (source statement label) and the wait distance d.
	Signal  string
	SigDist int
	// Stmt is the 0-based index of the originating source statement; -1 for
	// none.
	Stmt int
	// IntegerTyped marks address/index arithmetic, which runs on the integer
	// unit; data arithmetic runs on the float unit.
	IntegerTyped bool
}

// Class returns the function-unit class executing the instruction.
func (in *Instr) Class() dlx.Class {
	switch in.Op {
	case Load, Store, LoadS, StoreS:
		return dlx.LoadStore
	case Shl:
		return dlx.Shifter
	case Mul:
		return dlx.Multiplier
	case Div:
		return dlx.Divider
	case Send, Wait:
		return dlx.Sync
	case Cmp:
		// Comparisons run on the integer unit (DLX-style set-on-condition).
		return dlx.Integer
	case Add, Sub, Move, Select:
		if in.IntegerTyped {
			return dlx.Integer
		}
		return dlx.Float
	}
	return dlx.Integer
}

// Uses returns the temps read by the instruction.
func (in *Instr) Uses() []int {
	return in.AppendUses(nil)
}

// AppendUses appends the temps read by the instruction to dst and returns
// the extended slice. With a caller-provided buffer (at most 3 entries are
// ever appended) it does not allocate — the hot-path form of Uses.
func (in *Instr) AppendUses(dst []int) []int {
	if in.A.Kind == Temp {
		dst = append(dst, in.A.Reg)
	}
	if in.B.Kind == Temp {
		dst = append(dst, in.B.Reg)
	}
	if in.C.Kind == Temp {
		dst = append(dst, in.C.Reg)
	}
	return dst
}

// IsSync reports whether the instruction is a synchronization operation.
func (in *Instr) IsSync() bool { return in.Op == Send || in.Op == Wait }

// IsMem reports whether the instruction accesses memory.
func (in *Instr) IsMem() bool {
	switch in.Op {
	case Load, Store, LoadS, StoreS:
		return true
	}
	return false
}

// String renders the instruction in the paper's Fig. 2 style.
func (in *Instr) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("t%d <- %s[%s]", in.Dst, in.Array, in.A)
	case Store:
		return fmt.Sprintf("%s[%s] <- %s", in.Array, in.A, in.B)
	case LoadS:
		return fmt.Sprintf("t%d <- %s", in.Dst, in.Array)
	case StoreS:
		return fmt.Sprintf("%s <- %s", in.Array, in.B)
	case Add:
		return fmt.Sprintf("t%d <- %s + %s", in.Dst, in.A, in.B)
	case Sub:
		return fmt.Sprintf("t%d <- %s - %s", in.Dst, in.A, in.B)
	case Mul:
		return fmt.Sprintf("t%d <- %s * %s", in.Dst, in.A, in.B)
	case Div:
		return fmt.Sprintf("t%d <- %s / %s", in.Dst, in.A, in.B)
	case Shl:
		return fmt.Sprintf("t%d <- 4 * %s", in.Dst, in.A)
	case Move:
		return fmt.Sprintf("t%d <- %s", in.Dst, in.A)
	case Cmp:
		return fmt.Sprintf("t%d <- %s %s %s", in.Dst, in.A, in.Rel, in.B)
	case Select:
		return fmt.Sprintf("t%d <- %s ? %s : %s", in.Dst, in.C, in.A, in.B)
	case Send:
		return fmt.Sprintf("Send_Signal(%s)", in.Signal)
	case Wait:
		if in.SigDist == 0 {
			return fmt.Sprintf("Wait_Signal(%s, I)", in.Signal)
		}
		return fmt.Sprintf("Wait_Signal(%s, I-%d)", in.Signal, in.SigDist)
	}
	return fmt.Sprintf("op%d", int(in.Op))
}

// Listing renders a numbered instruction listing like the paper's Fig. 2.
func Listing(instrs []*Instr) string {
	var sb strings.Builder
	for _, in := range instrs {
		fmt.Fprintf(&sb, "%3d: %s\n", in.ID, in)
	}
	return sb.String()
}
