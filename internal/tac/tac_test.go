package tac

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"doacross/internal/dep"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/syncop"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func compile(t testing.TB, src string) *Program {
	a := dep.Analyze(lang.MustParse(src))
	sl := syncop.Insert(a, syncop.Options{})
	p, err := Generate(sl)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFig2Shape checks the lowering against the paper's Fig. 2. Our code
// generator emits a separate add before the final store where the paper's
// line 26 fuses "A[t1] <- t18+t21" into one instruction, so we expect 28
// instructions whose first 26 line up one-to-one with the paper.
func TestFig2Shape(t *testing.T) {
	p := compile(t, fig1Source)
	if len(p.Instrs) != 28 {
		t.Fatalf("got %d instructions, want 28:\n%s", len(p.Instrs), Listing(p.Instrs))
	}
	checks := map[int]string{
		1:  "Wait_Signal(S3, I-2)",
		2:  "t1 <- 4 * I",
		3:  "t2 <- I - 2",
		5:  "t4 <- A[t3]",
		9:  "t8 <- t4 + t7",
		10: "B[t1] <- t8",
		11: "Wait_Signal(S3, I-1)",
		16: "t13 <- A[t12]",
		20: "t17 <- t13 * t16",
		22: "t18 <- B[t1]",
		25: "t21 <- C[t20]",
		26: "t22 <- t18 + t21",
		27: "A[t1] <- t22",
		28: "Send_Signal(S3)",
	}
	for id, want := range checks {
		if got := p.Instrs[id-1].String(); got != want {
			t.Errorf("instr %d = %q, want %q\n%s", id, got, want, Listing(p.Instrs))
		}
	}
}

func TestAddressCSE(t *testing.T) {
	p := compile(t, fig1Source)
	// 4*I must be computed once (t1), shared by B[I] store, B[I] load and
	// A[I] store.
	count := 0
	for _, in := range p.Instrs {
		if in.Op == Shl && in.A.Kind == IV {
			count++
		}
	}
	if count != 1 {
		t.Errorf("4*I computed %d times, want 1 (CSE)", count)
	}
}

func TestNoCSEAcrossMutableScalars(t *testing.T) {
	// J changes between the two uses of A[J]; addresses must not be reused.
	p := compile(t, "DO I = 1, N\nB[I] = A[J]\nJ = J + 1\nC[I] = A[J]\nENDDO")
	loads := 0
	for _, in := range p.Instrs {
		if in.Op == LoadS && in.Array == "J" {
			loads++
		}
	}
	if loads < 2 {
		t.Errorf("J loaded %d times, want >= 2 (no unsafe CSE)", loads)
	}
}

func TestClassMapping(t *testing.T) {
	p := compile(t, fig1Source)
	byID := func(id int) *Instr { return p.Instrs[id-1] }
	cases := []struct {
		id   int
		want dlx.Class
	}{
		{1, dlx.Sync},       // wait
		{2, dlx.Shifter},    // 4*I
		{3, dlx.Integer},    // I-2
		{5, dlx.LoadStore},  // load
		{9, dlx.Float},      // data add
		{10, dlx.LoadStore}, // store
		{20, dlx.Multiplier},
		{28, dlx.Sync}, // send
	}
	for _, c := range cases {
		if got := byID(c.id).Class(); got != c.want {
			t.Errorf("instr %d class = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestDivClass(t *testing.T) {
	p := compile(t, "DO I = 1, N\nA[I] = B[I] / C[I]\nENDDO")
	found := false
	for _, in := range p.Instrs {
		if in.Op == Div {
			found = true
			if in.Class() != dlx.Divider {
				t.Errorf("div class = %v", in.Class())
			}
		}
	}
	if !found {
		t.Fatal("no div instruction generated")
	}
}

func TestArrayInstrMapping(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	a := dep.Analyze(loop)
	p := MustGenerate(syncop.Insert(a, syncop.Options{}))
	// Every array reference in the AST must map to a load or store.
	for _, st := range loop.Body {
		for _, r := range lang.ArrayRefs(st.LHS) {
			in, ok := p.ArrayInstr[r]
			if !ok || in.Op != Store {
				t.Errorf("LHS ref %s has no store mapping", r)
			}
		}
		for _, r := range lang.ArrayRefs(st.RHS) {
			in, ok := p.ArrayInstr[r]
			if !ok || in.Op != Load {
				t.Errorf("RHS ref %s has no load mapping", r)
			}
		}
	}
}

func TestRunMatchesInterpreter(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	p := compile(t, fig1Source)
	n := 10
	ref := loop.SeedStore(n, 8, 99)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(got); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(got); d != "" {
		t.Errorf("TAC execution diverges from interpreter: %s", d)
	}
}

func TestRunReduction(t *testing.T) {
	src := "DO I = 1, N\nS = S + A[I]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 5)
	for i := 1; i <= 5; i++ {
		st.SetElem("A", i, float64(i))
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if st.Scalar("S") != ref.Scalar("S") {
		t.Errorf("S = %v, want %v", st.Scalar("S"), ref.Scalar("S"))
	}
}

func TestRunIndirectSubscript(t *testing.T) {
	src := "DO I = 1, N\nB[I] = A[X[I]]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 4)
	for i := 1; i <= 4; i++ {
		st.SetElem("X", i, float64(5-i))
		st.SetElem("A", i, float64(10*i))
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(st); d != "" {
		t.Errorf("indirect subscript mismatch: %s", d)
	}
}

func TestQuickTACMatchesInterpreter(t *testing.T) {
	arrays := []string{"A", "B", "C"}
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
		nst := 1 + r.Intn(4)
		mkRef := func() lang.Expr {
			return &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(7) - 3)}}}
		}
		var mkExpr func(d int) lang.Expr
		mkExpr = func(d int) lang.Expr {
			if d == 0 || r.Intn(3) == 0 {
				switch r.Intn(3) {
				case 0:
					return &lang.Const{Value: float64(r.Intn(9))}
				case 1:
					return &lang.Scalar{Name: "Q"}
				default:
					return mkRef()
				}
			}
			return &lang.Binary{Op: lang.BinOp(r.Intn(3)), L: mkExpr(d - 1), R: mkExpr(d - 1)} // +,-,* keep arithmetic exact
		}
		for s := 0; s < nst; s++ {
			var lhs lang.Expr = mkRef()
			if r.Intn(5) == 0 {
				lhs = &lang.Scalar{Name: "Q"}
			}
			loop.Body = append(loop.Body, &lang.Assign{Label: "S" + string(rune('1'+s)), LHS: lhs, RHS: mkExpr(2)})
		}
		a := dep.Analyze(loop)
		p, err := Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		n := 6
		ref := loop.SeedStore(n, 10, uint64(seed))
		got := ref.Clone()
		if err := loop.Run(ref); err != nil {
			return true
		}
		if err := p.Run(got); err != nil {
			t.Logf("seed %d: tac run: %v", seed, err)
			return false
		}
		if d := ref.Diff(got); d != "" {
			t.Logf("seed %d: diff: %s\n%s\n%s", seed, d, loop, Listing(p.Instrs))
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestExecUndefinedTemp(t *testing.T) {
	f := NewFrame(3, 1)
	in := &Instr{Op: Add, Dst: 2, A: TempOp(1), B: ConstOp(1)}
	if err := Exec(in, f, lang.NewStore()); err == nil {
		t.Error("expected use-of-undefined-temp error")
	}
}

func TestExecSyncNoops(t *testing.T) {
	f := NewFrame(1, 1)
	st := lang.NewStore()
	if err := Exec(&Instr{Op: Send, Signal: "S1"}, f, st); err != nil {
		t.Error(err)
	}
	if err := Exec(&Instr{Op: Wait, Signal: "S1", SigDist: 1}, f, st); err != nil {
		t.Error(err)
	}
}

func TestWaitsSendsHelpers(t *testing.T) {
	p := compile(t, fig1Source)
	if len(p.Waits()) != 2 {
		t.Errorf("waits = %d, want 2", len(p.Waits()))
	}
	if len(p.Sends()) != 1 {
		t.Errorf("sends = %d, want 1", len(p.Sends()))
	}
	if p.SendFor("S3") == nil {
		t.Error("SendFor(S3) = nil")
	}
	if p.SendFor("S1") != nil {
		t.Error("SendFor(S1) should be nil")
	}
}

func TestListingFormat(t *testing.T) {
	p := compile(t, fig1Source)
	ls := Listing(p.Instrs)
	for _, want := range []string{"1: Wait_Signal(S3, I-2)", "28: Send_Signal(S3)"} {
		if !strings.Contains(ls, want) {
			t.Errorf("listing missing %q:\n%s", want, ls)
		}
	}
}

func TestInstrUses(t *testing.T) {
	in := &Instr{Op: Add, Dst: 3, A: TempOp(1), B: TempOp(2)}
	u := in.Uses()
	if len(u) != 2 || u[0] != 1 || u[1] != 2 {
		t.Errorf("Uses = %v", u)
	}
	in2 := &Instr{Op: Add, Dst: 3, A: IVOp(), B: ConstOp(1)}
	if len(in2.Uses()) != 0 {
		t.Errorf("Uses of IV+const = %v, want none", in2.Uses())
	}
}

func TestExecMove(t *testing.T) {
	// Move is part of the IR surface (used by hand-built programs and the
	// ISA backend) even though the loop lowering never emits it.
	f := NewFrame(2, 1)
	st := lang.NewStore()
	if err := Exec(&Instr{Op: Move, Dst: 1, A: ConstOp(7)}, f, st); err != nil {
		t.Fatal(err)
	}
	if f.Temps[1] != 7 {
		t.Errorf("move const = %v", f.Temps[1])
	}
	if err := Exec(&Instr{Op: Move, Dst: 2, A: TempOp(1)}, f, st); err != nil {
		t.Fatal(err)
	}
	if f.Temps[2] != 7 {
		t.Errorf("move temp = %v", f.Temps[2])
	}
}

func TestOpcodeStrings(t *testing.T) {
	want := map[Opcode]string{
		Load: "load", Store: "store", LoadS: "loads", StoreS: "stores",
		Add: "add", Sub: "sub", Mul: "mul", Div: "div", Shl: "shl",
		Move: "move", Cmp: "cmp", Select: "select", Send: "send", Wait: "wait",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
	if Opcode(99).String() == "" {
		t.Error("unknown opcode should render a placeholder")
	}
}

func TestInstrPredicates(t *testing.T) {
	cases := []struct {
		in        Instr
		sync, mem bool
	}{
		{Instr{Op: Send}, true, false},
		{Instr{Op: Wait}, true, false},
		{Instr{Op: Load}, false, true},
		{Instr{Op: Store}, false, true},
		{Instr{Op: LoadS}, false, true},
		{Instr{Op: StoreS}, false, true},
		{Instr{Op: Add}, false, false},
		{Instr{Op: Select}, false, false},
	}
	for _, c := range cases {
		if c.in.IsSync() != c.sync {
			t.Errorf("%v.IsSync() = %v", c.in.Op, c.in.IsSync())
		}
		if c.in.IsMem() != c.mem {
			t.Errorf("%v.IsMem() = %v", c.in.Op, c.in.IsMem())
		}
	}
}

func TestInstrStringsAllForms(t *testing.T) {
	cases := map[string]Instr{
		"t1 <- X":            {Op: LoadS, Dst: 1, Array: "X"},
		"X <- t2":            {Op: StoreS, Array: "X", B: TempOp(2)},
		"t3 <- t1 - t2":      {Op: Sub, Dst: 3, A: TempOp(1), B: TempOp(2)},
		"t3 <- t1 / t2":      {Op: Div, Dst: 3, A: TempOp(1), B: TempOp(2)},
		"t3 <- t1":           {Op: Move, Dst: 3, A: TempOp(1)},
		"t3 <- t1 < t2":      {Op: Cmp, Dst: 3, A: TempOp(1), B: TempOp(2), Rel: lang.RelLT},
		"t4 <- t3 ? t1 : t2": {Op: Select, Dst: 4, A: TempOp(1), B: TempOp(2), C: TempOp(3)},
		"Wait_Signal(S2, I)": {Op: Wait, Signal: "S2", SigDist: 0},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if (Operand{Kind: None}).String() != "_" {
		t.Error("None operand rendering")
	}
	if ConstOp(2.5).String() != "2.5" {
		t.Errorf("float const rendering = %q", ConstOp(2.5).String())
	}
}

func TestExecFaults(t *testing.T) {
	st := lang.NewStore()
	// Misaligned address: addr temp holding a non-multiple of 4.
	f := NewFrame(2, 1)
	if err := f.setTemp(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := Exec(&Instr{Op: Load, Dst: 2, Array: "A", A: TempOp(1)}, f, st); err == nil {
		t.Error("misaligned load should fault")
	}
	// Non-finite subscript through Shl.
	f2 := NewFrame(2, 1)
	if err := f2.setTemp(1, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := Exec(&Instr{Op: Shl, Dst: 2, A: TempOp(1)}, f2, st); err == nil {
		t.Error("non-finite shift input should fault")
	}
	// Out-of-range destination register.
	if err := Exec(&Instr{Op: Add, Dst: 99, A: ConstOp(1), B: ConstOp(2)}, NewFrame(2, 1), st); err == nil {
		t.Error("out-of-range destination should fault")
	}
}

func TestGenNegationAndIndirectIndex(t *testing.T) {
	// Unary minus in both value and index position, plus an indirect index
	// expression with arithmetic on the loaded value.
	src := "DO I = 1, N\nB[I] = -A[X[I]+1]\nC[-I+8] = E[I]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 3)
	for i := -10; i <= 12; i++ {
		st.SetElem("X", i, float64((i+10)%4))
		st.SetElem("A", i, float64(i*3))
		st.SetElem("E", i, float64(i+100))
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(st); d != "" {
		t.Errorf("negation/indirect mismatch: %s\n%s", d, Listing(p.Instrs))
	}
}

func TestGenValueDivision(t *testing.T) {
	src := "DO I = 1, N\nA[I] = E[I] / F[I]\nENDDO"
	loop := lang.MustParse(src)
	p := compile(t, src)
	st := lang.NewStore()
	st.SetScalar("N", 3)
	for i := 1; i <= 3; i++ {
		st.SetElem("E", i, float64(12*i))
		st.SetElem("F", i, float64(i))
	}
	ref := st.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(st); d != "" {
		t.Errorf("division mismatch: %s", d)
	}
}
