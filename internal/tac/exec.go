package tac

import (
	"fmt"
	"math"

	"doacross/internal/lang"
)

// Frame holds the register state of one executing iteration.
type Frame struct {
	// IV is the iteration number bound to the induction-variable register.
	IV int
	// Temps maps temp number -> value. Index 0 unused.
	Temps []float64
	// written tracks defined temps so use-before-def bugs in schedulers are
	// caught instead of silently reading zero.
	written []bool
}

// NewFrame returns a frame for a program with numTemps temps at iteration iv.
func NewFrame(numTemps, iv int) *Frame {
	return &Frame{IV: iv, Temps: make([]float64, numTemps+1), written: make([]bool, numTemps+1)}
}

// operand evaluates a source operand.
func (f *Frame) operand(o Operand) (float64, error) {
	switch o.Kind {
	case Temp:
		if o.Reg <= 0 || o.Reg >= len(f.Temps) {
			return 0, fmt.Errorf("tac: temp t%d out of range", o.Reg)
		}
		if !f.written[o.Reg] {
			return 0, fmt.Errorf("tac: use of undefined temp t%d", o.Reg)
		}
		return f.Temps[o.Reg], nil
	case IV:
		return float64(f.IV), nil
	case Const:
		return o.Val, nil
	}
	return 0, fmt.Errorf("tac: invalid operand kind %d", o.Kind)
}

func (f *Frame) setTemp(r int, v float64) error {
	if r <= 0 || r >= len(f.Temps) {
		return fmt.Errorf("tac: destination temp t%d out of range", r)
	}
	f.Temps[r] = v
	f.written[r] = true
	return nil
}

// Exec executes a single instruction against the frame and store.
// Synchronization instructions are no-ops here; the parallel simulator
// interprets them against the shared signal vector.
func Exec(in *Instr, f *Frame, st *lang.Store) error {
	switch in.Op {
	case Send, Wait:
		return nil
	case Load:
		addr, err := f.operand(in.A)
		if err != nil {
			return err
		}
		idx, err := byteToIndex(addr)
		if err != nil {
			return err
		}
		return f.setTemp(in.Dst, st.Elem(in.Array, idx))
	case Store:
		addr, err := f.operand(in.A)
		if err != nil {
			return err
		}
		idx, err := byteToIndex(addr)
		if err != nil {
			return err
		}
		v, err := f.operand(in.B)
		if err != nil {
			return err
		}
		st.SetElem(in.Array, idx, v)
		return nil
	case LoadS:
		return f.setTemp(in.Dst, st.Scalar(in.Array))
	case StoreS:
		v, err := f.operand(in.B)
		if err != nil {
			return err
		}
		st.SetScalar(in.Array, v)
		return nil
	case Move:
		v, err := f.operand(in.A)
		if err != nil {
			return err
		}
		return f.setTemp(in.Dst, v)
	case Shl:
		v, err := f.operand(in.A)
		if err != nil {
			return err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tac: non-finite subscript %v", v)
		}
		// Subscripts truncate toward zero at address formation, matching the
		// reference interpreter's FORTRAN-style integer subscripting.
		return f.setTemp(in.Dst, 4*math.Trunc(v))
	case Cmp:
		a, err := f.operand(in.A)
		if err != nil {
			return err
		}
		b, err := f.operand(in.B)
		if err != nil {
			return err
		}
		var holds bool
		switch in.Rel {
		case lang.RelLT:
			holds = a < b
		case lang.RelLE:
			holds = a <= b
		case lang.RelGT:
			holds = a > b
		case lang.RelGE:
			holds = a >= b
		case lang.RelEQ:
			holds = a == b
		case lang.RelNE:
			holds = a != b
		default:
			return fmt.Errorf("tac: unknown relation %d", int(in.Rel))
		}
		v := 0.0
		if holds {
			v = 1.0
		}
		return f.setTemp(in.Dst, v)
	case Select:
		c, err := f.operand(in.C)
		if err != nil {
			return err
		}
		a, err := f.operand(in.A)
		if err != nil {
			return err
		}
		b, err := f.operand(in.B)
		if err != nil {
			return err
		}
		if c != 0 {
			return f.setTemp(in.Dst, a)
		}
		return f.setTemp(in.Dst, b)
	case Add, Sub, Mul, Div:
		a, err := f.operand(in.A)
		if err != nil {
			return err
		}
		b, err := f.operand(in.B)
		if err != nil {
			return err
		}
		var v float64
		switch in.Op {
		case Add:
			v = a + b
		case Sub:
			v = a - b
		case Mul:
			v = a * b
		case Div:
			v = a / b
		}
		return f.setTemp(in.Dst, v)
	}
	return fmt.Errorf("tac: cannot execute %v", in)
}

func byteToIndex(addr float64) (int, error) {
	if math.IsNaN(addr) || math.IsInf(addr, 0) {
		return 0, fmt.Errorf("tac: non-finite address %v", addr)
	}
	i := int(addr)
	if i%4 != 0 {
		return 0, fmt.Errorf("tac: misaligned address %d", i)
	}
	return i / 4, nil
}

// ExecIteration executes the whole instruction sequence for iteration iv.
// The sequence need not be the program order — any order that respects data
// dependences produces the same result, which is exactly what the scheduler
// differential tests verify.
func ExecIteration(instrs []*Instr, numTemps, iv int, st *lang.Store) error {
	f := NewFrame(numTemps, iv)
	for _, in := range instrs {
		if err := Exec(in, f, st); err != nil {
			return fmt.Errorf("instr %d (%v): %w", in.ID, in, err)
		}
	}
	return nil
}

// Run executes the compiled loop sequentially for iterations lo..hi, the TAC
// analogue of lang.Loop.Run.
func (p *Program) Run(st *lang.Store) error {
	lo, hi, err := p.Sync.Base.Bounds(st)
	if err != nil {
		return err
	}
	for i := lo; i <= hi; i++ {
		if err := ExecIteration(p.Instrs, p.NumTemps, i, st); err != nil {
			return fmt.Errorf("tac: iteration %d: %w", i, err)
		}
	}
	return nil
}
