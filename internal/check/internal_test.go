package check

import (
	"strings"
	"testing"

	"doacross/internal/core"
	"doacross/internal/tac"
)

// syncSchedule hand-builds a schedule containing only synchronization
// instructions, for exercising the wait-for-graph deadlock analysis in
// isolation.
func syncSchedule(instrs []*tac.Instr, cycles []int) (*core.Schedule, []int) {
	for i, in := range instrs {
		in.ID = i + 1
		in.Stmt = -1
	}
	max := 0
	for _, c := range cycles {
		if c > max {
			max = c
		}
	}
	rows := make([][]int, max+1)
	rowPos := make([]int, len(instrs))
	for v, c := range cycles {
		rowPos[v] = len(rows[c])
		rows[c] = append(rows[c], v)
	}
	s := &core.Schedule{
		Prog:  &tac.Program{Instrs: instrs},
		Cycle: cycles,
		Rows:  rows,
	}
	return s, rowPos
}

func TestDeadlockDetection(t *testing.T) {
	wait := func(sig string, d int) *tac.Instr {
		return &tac.Instr{Op: tac.Wait, Signal: sig, SigDist: d}
	}
	send := func(sig string) *tac.Instr {
		return &tac.Instr{Op: tac.Send, Signal: sig}
	}
	cases := []struct {
		name     string
		instrs   []*tac.Instr
		cycles   []int
		deadlock bool
	}{
		{
			// An LBD pair: the wait stalls but each iteration's send
			// eventually unblocks the next. Not a deadlock.
			name:   "lbd pair",
			instrs: []*tac.Instr{wait("S1", 1), send("S1")},
			cycles: []int{0, 1},
		},
		{
			// Distance 0 with the send after the wait: the wait needs its
			// own iteration's send, which sits behind it. Deadlock.
			name:     "distance zero send after",
			instrs:   []*tac.Instr{wait("S1", 0), send("S1")},
			cycles:   []int{0, 1},
			deadlock: true,
		},
		{
			// Distance 0 with the send before the wait is satisfied within
			// the iteration.
			name:   "distance zero send before",
			instrs: []*tac.Instr{send("S1"), wait("S1", 0)},
			cycles: []int{0, 1},
		},
		{
			// Negative distance (wait on a future iteration) with the send
			// behind the wait: infinite regress across iterations.
			name:     "future wait send after",
			instrs:   []*tac.Instr{wait("S1", -1), send("S1")},
			cycles:   []int{0, 1},
			deadlock: true,
		},
		{
			// Negative distance but the send issues first: every iteration
			// sends early, so the waits resolve.
			name:   "future wait send before",
			instrs: []*tac.Instr{send("S1"), wait("S1", -1)},
			cycles: []int{0, 1},
		},
		{
			// Two crossing distance-0 pairs blocking each other.
			name: "crossing pairs",
			instrs: []*tac.Instr{
				wait("S1", 0), send("S2"), wait("S2", 0), send("S1"),
			},
			cycles:   []int{0, 1, 2, 3},
			deadlock: true,
		},
		{
			// The same crossing shape with positive distances recedes to
			// earlier iterations and bottoms out.
			name: "crossing pairs positive",
			instrs: []*tac.Instr{
				wait("S1", 1), send("S2"), wait("S2", 1), send("S1"),
			},
			cycles: []int{0, 1, 2, 3},
		},
		{
			name:     "missing send",
			instrs:   []*tac.Instr{wait("S9", 1)},
			cycles:   []int{0},
			deadlock: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, rowPos := syncSchedule(c.instrs, c.cycles)
			l := verifyDeadlockFree(s, rowPos)
			if got := len(l.Errors()) > 0; got != c.deadlock {
				t.Errorf("deadlock = %v, want %v; diagnostics:\n%s", got, c.deadlock, l)
			}
		})
	}
}

func TestDeadlockReportNamesCycle(t *testing.T) {
	s, rowPos := syncSchedule([]*tac.Instr{
		{Op: tac.Wait, Signal: "S1", SigDist: 0},
		{Op: tac.Send, Signal: "S1"},
	}, []int{0, 1})
	l := verifyDeadlockFree(s, rowPos)
	if len(l.Errors()) == 0 {
		t.Fatal("no deadlock reported")
	}
	if msg := l.String(); !strings.Contains(msg, "S1") {
		t.Errorf("report does not name the signal:\n%s", msg)
	}
}
