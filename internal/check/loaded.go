// Load-time verification: the persistent cache tier's trust boundary.
//
// Schedules that come back from disk have survived a checksum, but a
// checksum only proves "these are the bytes that were written" — it cannot
// prove the bytes were right when written, that the store's key still maps
// to this scheduling problem, or that a tampered file was not re-framed
// with a fresh checksum. VerifyLoaded therefore re-runs the full
// translation-validation pipeline over a deserialized schedule set exactly
// as if the schedules had just been produced by an untrusted scheduler:
// nothing restored from disk is ever served on the strength of its
// checksum alone.
package check

import (
	"doacross/internal/core"
	"doacross/internal/diag"
)

// VerifyLoaded verifies a schedule set deserialized from the persistent
// tier before it may re-enter service: each non-nil schedule passes the
// full independent verification (Verify: shape, dependence order, both
// synchronization conditions, resource feasibility, deadlock freedom,
// LBD/LFD agreement), and the set's recorded simulated time for the served
// (sync) schedule passes the timing audit (VerifyTiming) at the recorded
// trip count. An empty Errors() set means the restored entry is as
// trustworthy as a freshly computed one; any error means the bytes must be
// quarantined, not served.
//
// Like Verify, VerifyLoaded never panics, whatever shape the deserialized
// schedules are in — it is safe on adversarially mutated inputs.
func VerifyLoaded(list, sync, best *core.Schedule, syncTime, n int) diag.List {
	var out diag.List
	if sync == nil {
		out = append(out, diag.Errorf(Stage, diag.Pos{},
			"loaded entry has no synchronization-aware schedule"))
		return out
	}
	for _, s := range []*core.Schedule{list, sync, best} {
		if s == nil {
			continue
		}
		out = append(out, Verify(s)...)
	}
	if Err(out) == nil {
		out = append(out, VerifyTiming(sync, syncTime, n)...)
	}
	return out
}
