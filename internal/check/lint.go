package check

import (
	"fmt"
	"strings"

	"doacross/internal/dep"
	"doacross/internal/diag"
	"doacross/internal/lang"
	"doacross/internal/syncop"
)

// LintStage is the diagnostic stage name of the source linter.
const LintStage = "lint"

// lintOp is the linter's neutral view of one synchronization operation,
// shared between explicitly written Send_Signal/Wait_Signal statements
// (lang.SyncOp) and compiler-inserted ones (syncop.Op).
type lintOp struct {
	wait   bool
	signal string
	dist   int // wait distance d; 0 for sends
	seq    int // textual order among sync ops and statements
	prev   int // statement index textually before the op, -1 if none
	next   int // statement index textually after the op, len(Body) if none
	pos    diag.Pos
	stmt   string // label of the anchor statement, "" past the last one
}

// Lint checks the explicitly written synchronization of a source loop and
// returns positioned findings (stage "lint"): waits that can never be
// satisfied (static deadlock), dead sends, non-positive or mismatched
// distances, self-synchronization, and redundant waits subsumed by the
// transitive closure of the remaining synchronization. A loop without
// explicit sync ops has nothing to lint and yields nil.
func Lint(loop *lang.Loop) diag.List {
	if loop == nil || len(loop.Syncs) == 0 {
		return nil
	}
	var ops []lintOp
	seq := 0
	k := 0 // statements emitted so far
	for _, o := range loop.Syncs {
		// Syncs are recorded in textual order with nondecreasing anchors.
		for k < o.At {
			k++
			seq++
		}
		op := lintOp{
			wait: o.Wait, signal: o.Signal, dist: o.Dist,
			seq: seq, prev: k - 1, next: k,
			pos: o.Pos(),
		}
		if k < len(loop.Body) {
			op.stmt = loop.Body[k].Label
		}
		ops = append(ops, op)
		seq++
	}
	return lintOps(loop, dep.Analyze(loop), ops)
}

// LintSync checks compiler-inserted synchronization. The same rules apply;
// in particular it surfaces waits made redundant by transitivity, which
// syncop.Insert does not eliminate.
func LintSync(sl *syncop.Loop) diag.List {
	if sl == nil {
		return nil
	}
	var ops []lintOp
	for seq, it := range sl.Items() {
		if it.Op == nil {
			continue
		}
		op := lintOp{
			wait:   it.Op.Kind == syncop.Wait,
			signal: it.Op.Src,
			dist:   it.Op.Distance,
			seq:    seq,
			pos:    sl.Base.Body[it.StmtIndex].Pos(),
			stmt:   sl.Base.Body[it.StmtIndex].Label,
		}
		if op.wait {
			op.prev, op.next = it.StmtIndex-1, it.StmtIndex
		} else {
			op.prev, op.next = it.StmtIndex, it.StmtIndex+1
		}
		ops = append(ops, op)
	}
	return lintOps(sl.Base, sl.Analysis, ops)
}

// lintOps runs every lint rule over the neutral op list.
func lintOps(base *lang.Loop, a *dep.Analysis, ops []lintOp) diag.List {
	var out diag.List
	report := func(op lintOp, err bool, format string, args ...any) {
		var d *diag.Diagnostic
		if err {
			d = diag.Errorf(LintStage, op.pos, format, args...)
		} else {
			d = diag.Warningf(LintStage, op.pos, format, args...)
		}
		if op.stmt != "" {
			d = d.WithStmt(op.stmt)
		}
		out = append(out, d)
	}
	render := func(op lintOp) string {
		if !op.wait {
			return fmt.Sprintf("Send_Signal(%s)", op.signal)
		}
		switch {
		case op.dist == 0:
			return fmt.Sprintf("Wait_Signal(%s, %s)", op.signal, base.Var)
		case op.dist < 0:
			return fmt.Sprintf("Wait_Signal(%s, %s+%d)", op.signal, base.Var, -op.dist)
		default:
			return fmt.Sprintf("Wait_Signal(%s, %s-%d)", op.signal, base.Var, op.dist)
		}
	}

	srcOf := func(signal string) int { return base.StmtIndex(signal) }
	firstSendSeq := map[string]int{}
	awaited := map[string]bool{}
	for _, op := range ops {
		if op.wait {
			awaited[op.signal] = true
		} else if _, dup := firstSendSeq[op.signal]; !dup {
			firstSendSeq[op.signal] = op.seq
		}
	}

	for _, op := range ops {
		src := srcOf(op.signal)
		if src < 0 {
			report(op, true, "%s references unknown statement label %q", render(op), op.signal)
			continue
		}
		if op.wait {
			sendSeq, sent := firstSendSeq[op.signal]
			if !sent {
				report(op, true, "static deadlock: %s has no matching Send_Signal(%s)", render(op), op.signal)
				continue
			}
			if op.dist < 0 {
				report(op, true, "%s waits on a future iteration (negative distance %d)", render(op), op.dist)
				continue
			}
			if op.dist == 0 {
				if sendSeq > op.seq {
					if src == op.next {
						report(op, true, "self-synchronization deadlock: %s waits for its own statement's signal within the same iteration", render(op))
					} else {
						report(op, true, "static deadlock: %s waits within the iteration for Send_Signal(%s), which executes after it", render(op), op.signal)
					}
				} else {
					report(op, false, "%s is always satisfied by the preceding Send_Signal(%s); redundant", render(op), op.signal)
				}
				continue
			}
			// Distance audit against the dependence analysis: the wait
			// guards its anchor statement against the signal's source.
			if a != nil && op.next < len(base.Body) {
				var dists []int
				match := false
				for _, d := range a.Deps {
					if d.Src.Stmt == src && d.Snk.Stmt == op.next && d.Distance > 0 {
						dists = append(dists, d.Distance)
						if d.Distance == op.dist {
							match = true
						}
					}
				}
				if len(dists) == 0 {
					report(op, false, "no loop-carried dependence from %s to %s requires %s", op.signal, base.Body[op.next].Label, render(op))
				} else if !match {
					report(op, false, "%s distance %d matches no analyzed dependence %s->%s (analysis finds distances %v)",
						render(op), op.dist, op.signal, base.Body[op.next].Label, dists)
				}
			}
		} else {
			if op.prev < src {
				report(op, true, "%s precedes its source statement %s (synchronization condition 1)", render(op), op.signal)
			}
			if !awaited[op.signal] {
				report(op, false, "signal %s is sent but never awaited (dead synchronization)", op.signal)
			}
			if firstSendSeq[op.signal] != op.seq {
				report(op, false, "duplicate %s", render(op))
			}
		}
	}

	lintRedundantWaits(base, ops, report, render)
	out = append(out, lintDepPrecision(base, a, ops, render)...)
	return out
}

// hotspotThreshold is how many conservative pair decisions one statement must
// be party to before the linter flags it as a hotspot worth rewriting.
const hotspotThreshold = 2

// lintDepPrecision surfaces the precise dependence analysis through the
// linter: waits whose guarded statement pair is proven independent on every
// subscript pair (the synchronization arc is provably redundant, with the
// independence certificate named), and statements concentrating conservative
// pair decisions (hotspots where the analysis had to assume a dependence).
func lintDepPrecision(base *lang.Loop, a *dep.Analysis, ops []lintOp, render func(lintOp) string) diag.List {
	if a == nil || len(a.Pairs) == 0 {
		return nil
	}
	var out diag.List
	for _, op := range ops {
		if !op.wait || op.dist <= 0 || op.next >= len(base.Body) {
			continue
		}
		src := base.StmtIndex(op.signal)
		if src < 0 || src == op.next {
			continue
		}
		indep, total := 0, 0
		var rule dep.Rule
		for i := range a.Pairs {
			p := &a.Pairs[i]
			if (p.A.Stmt == src && p.B.Stmt == op.next) || (p.A.Stmt == op.next && p.B.Stmt == src) {
				total++
				if p.Verdict == dep.VerdictIndependent {
					indep++
					rule = p.Evidence.Rule
				}
			}
		}
		if total > 0 && indep == total {
			d := diag.Warningf(LintStage, op.pos,
				"provably-redundant synchronization arc: %s guards %s against %s, but every subscript pair between them is proven independent (%s)",
				render(op), base.Body[op.next].Label, op.signal, rule)
			if op.stmt != "" {
				d = d.WithStmt(op.stmt)
			}
			out = append(out, d)
		}
	}
	// Conservative hotspots: statements party to several pair decisions the
	// analysis could not refine. Counted once per pair even when both
	// references sit in the same statement.
	counts := make([]int, len(base.Body))
	reasons := make([]map[dep.Rule]bool, len(base.Body))
	note := func(stmt int, r dep.Rule) {
		if stmt < 0 || stmt >= len(base.Body) {
			return
		}
		counts[stmt]++
		if reasons[stmt] == nil {
			reasons[stmt] = map[dep.Rule]bool{}
		}
		reasons[stmt][r] = true
	}
	for i := range a.Pairs {
		p := &a.Pairs[i]
		if p.Verdict != dep.VerdictConservative || p.Evidence.Rule == dep.RuleScalar {
			continue
		}
		note(p.A.Stmt, p.Evidence.Rule)
		if p.B.Stmt != p.A.Stmt {
			note(p.B.Stmt, p.Evidence.Rule)
		}
	}
	for s, n := range counts {
		if n < hotspotThreshold {
			continue
		}
		var rules []string
		for r := dep.Rule(0); int(r) < 16; r++ {
			if reasons[s][r] {
				rules = append(rules, r.String())
			}
		}
		st := base.Body[s]
		out = append(out, diag.Warningf(LintStage, st.Pos(),
			"conservative-dependence hotspot: %s is party to %d conservative dependence pairs (%s); the analyzer had to assume distance-1 webs for each",
			st.Label, n, strings.Join(rules, ", ")).WithStmt(st.Label))
	}
	return out
}

// lintRedundantWaits flags waits subsumed by the transitive closure of the
// other waits. A wait W for signal src(W) with distance d guarantees that
// statement src(W) of iteration i-d completed before W's anchor statement
// of iteration i starts. A chain of other waits V1..Vm re-establishes that
// guarantee when src(V1) >= src(W), src(V(k+1)) >= anchor(Vk), anchor(Vm)
// <= anchor(W), and the distances sum to exactly d — the exact-sum
// requirement matters because iterations of a DOACROSS loop are otherwise
// unordered. Waits already flagged redundant are excluded from chains, so
// of two identical waits only the later is flagged.
func lintRedundantWaits(base *lang.Loop, ops []lintOp, report func(lintOp, bool, string, ...any), render func(lintOp) string) {
	// Waits eligible to participate: positive distance, known signal.
	var waits []lintOp
	for _, op := range ops {
		if op.wait && op.dist > 0 && base.StmtIndex(op.signal) >= 0 {
			waits = append(waits, op)
		}
	}
	redundant := map[int]bool{} // seq -> flagged
	for _, w := range waits {
		srcW := base.StmtIndex(w.signal)
		type state struct {
			anchor, used int
		}
		type entry struct {
			st    state
			chain []string
		}
		var queue []entry
		seen := map[state]bool{}
		push := func(st state, chain []string) {
			if st.used > w.dist || seen[st] {
				return
			}
			seen[st] = true
			queue = append(queue, entry{st: st, chain: chain})
		}
		for _, v := range waits {
			if v.seq == w.seq || redundant[v.seq] {
				continue
			}
			if base.StmtIndex(v.signal) >= srcW {
				push(state{anchor: v.next, used: v.dist}, []string{render(v)})
			}
		}
		found := false
		for len(queue) > 0 && !found {
			e := queue[0]
			queue = queue[1:]
			if e.st.used == w.dist && e.st.anchor <= w.next {
				report(w, false, "%s is redundant: subsumed by transitive synchronization through %v", render(w), e.chain)
				redundant[w.seq] = true
				found = true
				break
			}
			for _, v := range waits {
				if v.seq == w.seq || redundant[v.seq] {
					continue
				}
				if base.StmtIndex(v.signal) >= e.st.anchor {
					push(state{anchor: v.next, used: e.st.used + v.dist}, append(append([]string{}, e.chain...), render(v)))
				}
			}
		}
	}
}
