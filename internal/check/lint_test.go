package check_test

import (
	"strings"
	"testing"

	"doacross/internal/check"
	"doacross/internal/dep"
	"doacross/internal/lang"
	"doacross/internal/syncop"
)

func lint(t *testing.T, src string) (errs, warns []string) {
	t.Helper()
	loop, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l := check.Lint(loop)
	for _, d := range l.Errors() {
		errs = append(errs, d.Error())
	}
	for _, d := range l.Warnings() {
		warns = append(warns, d.Error())
	}
	return errs, warns
}

func wantFinding(t *testing.T, got []string, frag string) {
	t.Helper()
	for _, g := range got {
		if strings.Contains(g, frag) {
			return
		}
	}
	t.Errorf("no finding mentions %q; got %q", frag, got)
}

func TestLintCleanLoop(t *testing.T) {
	// The paper's Fig. 1(b): explicit synchronization exactly matching the
	// analyzed dependences.
	errs, warns := lint(t, `DOACROSS I = 1, N
  Wait_Signal(S3, I-2)
  S1: B[I] = A[I-2] + E[I+1]
  Wait_Signal(S3, I-1)
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
  Send_Signal(S3)
ENDDO`)
	if len(errs) != 0 || len(warns) != 0 {
		t.Errorf("clean loop has findings: errors %q, warnings %q", errs, warns)
	}
}

func TestLintMissingSend(t *testing.T) {
	errs, warns := lint(t, `DOACROSS I = 1, N
  Wait_Signal(S2, I-1)
  S1: A[I] = B[I-1] + 1
  Send_Signal(S1)
  S2: B[I] = A[I-1] * 2
ENDDO`)
	wantFinding(t, errs, "static deadlock")
	wantFinding(t, errs, "no matching Send_Signal(S2)")
	wantFinding(t, warns, "never awaited")
}

func TestLintUnknownLabel(t *testing.T) {
	errs, _ := lint(t, `DOACROSS I = 1, N
  Wait_Signal(S9, I-1)
  S1: A[I] = A[I-1] + 1
  Send_Signal(S1)
  Wait_Signal(S1, I-1)
  S2: B[I] = A[I-1] + 2
ENDDO`)
	wantFinding(t, errs, `unknown statement label "S9"`)
}

func TestLintNegativeDistance(t *testing.T) {
	errs, _ := lint(t, `DOACROSS I = 1, N
  Wait_Signal(S1, I+1)
  S1: A[I] = A[I-1] + 1
  Send_Signal(S1)
ENDDO`)
	wantFinding(t, errs, "future iteration")
}

func TestLintSelfSynchronization(t *testing.T) {
	errs, _ := lint(t, `DOACROSS I = 1, N
  S1: A[I] = A[I-1] + 1
  Wait_Signal(S2, I)
  S2: B[I] = A[I] * 2
  Send_Signal(S2)
ENDDO`)
	wantFinding(t, errs, "self-synchronization deadlock")
}

func TestLintDistanceZeroRedundant(t *testing.T) {
	_, warns := lint(t, `DOACROSS I = 1, N
  S1: A[I] = A[I-1] + 1
  Send_Signal(S1)
  Wait_Signal(S1, I)
  S2: B[I] = A[I] * 2
ENDDO`)
	wantFinding(t, warns, "always satisfied")
}

func TestLintSendBeforeSource(t *testing.T) {
	errs, _ := lint(t, `DOACROSS I = 1, N
  Send_Signal(S1)
  S1: A[I] = A[I-1] + 1
  Wait_Signal(S1, I-1)
  S2: B[I] = A[I-1] + 2
ENDDO`)
	wantFinding(t, errs, "precedes its source statement")
}

func TestLintDistanceMismatch(t *testing.T) {
	_, warns := lint(t, `DOACROSS I = 1, N
  S1: A[I] = B[I] + 1
  Send_Signal(S1)
  Wait_Signal(S1, I-3)
  S2: C[I] = A[I-2] * 2
ENDDO`)
	wantFinding(t, warns, "matches no analyzed dependence")
}

func TestLintDuplicateSend(t *testing.T) {
	_, warns := lint(t, `DOACROSS I = 1, N
  S1: A[I] = A[I-1] + 1
  Send_Signal(S1)
  Send_Signal(S1)
  Wait_Signal(S1, I-1)
  S2: B[I] = A[I-1] + 2
ENDDO`)
	wantFinding(t, warns, "duplicate Send_Signal(S1)")
}

// TestLintTransitiveRedundancy: Wait_Signal(S3, I-1) before S1 makes both
// other waits redundant — Wait_Signal(S1, I-1) directly (completing S3 of
// the previous iteration implies completing its S1), and the trailing
// Wait_Signal(S3, I-2) by chaining the S3 wait across two iterations
// (distances sum to 2 and the anchors compose). The load-bearing wait
// itself must not be flagged.
func TestLintTransitiveRedundancy(t *testing.T) {
	loop, err := lang.Parse(`DOACROSS I = 1, N
  Wait_Signal(S3, I-1)
  S1: A[I] = C[I-1] + 1
  Wait_Signal(S1, I-1)
  S2: B[I] = A[I-1] * 2
  Wait_Signal(S3, I-2)
  S3: C[I] = B[I-1] + 3
  Send_Signal(S1)
  Send_Signal(S3)
ENDDO`)
	if err != nil {
		t.Fatal(err)
	}
	l := check.Lint(loop)
	var redundant []string
	for _, d := range l {
		if strings.Contains(d.Error(), "subsumed by transitive synchronization") {
			redundant = append(redundant, d.Error())
		}
	}
	if len(redundant) != 2 {
		t.Fatalf("want two transitive-redundancy findings, got %q (all: %s)", redundant, l)
	}
	wantFinding(t, redundant, "Wait_Signal(S1, I-1) is redundant")
	wantFinding(t, redundant, "Wait_Signal(S3, I-2) is redundant")
	for _, r := range redundant {
		if strings.Contains(r, "Wait_Signal(S3, I-1) is redundant") {
			t.Errorf("load-bearing wait flagged: %s", r)
		}
	}
}

// TestLintDuplicateWait: of two identical waits only the later is flagged
// (the first serves as its chain, then stays).
func TestLintDuplicateWait(t *testing.T) {
	loop, err := lang.Parse(`DOACROSS I = 1, N
  Wait_Signal(S2, I-1)
  S1: A[I] = B[I-1] + 1
  Wait_Signal(S2, I-1)
  S2: B[I] = A[I-1] * 2
  Send_Signal(S2)
ENDDO`)
	if err != nil {
		t.Fatal(err)
	}
	l := check.Lint(loop)
	count := 0
	for _, d := range l {
		if strings.Contains(d.Error(), "subsumed by transitive synchronization") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want 1 duplicate-wait finding, got %d:\n%s", count, l)
	}
}

// TestLintSyncCompilerOutput: compiler-inserted synchronization never
// produces lint errors (warnings — e.g. transitivity-redundant waits — are
// legitimate findings on it).
func TestLintSyncCompilerOutput(t *testing.T) {
	for _, src := range []string{paperSrc, condSrc} {
		loop, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sl := syncop.Insert(dep.Analyze(loop), syncop.Options{})
		if l := check.LintSync(sl); len(l.Errors()) != 0 {
			t.Errorf("compiler-inserted sync lints with errors:\n%s", l.Errors())
		}
	}
}

func TestLintNoSyncOps(t *testing.T) {
	loop, err := lang.Parse("DO I = 1, N\n  S1: A[I] = B[I] + 1\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	if l := check.Lint(loop); len(l) != 0 {
		t.Errorf("loop without sync ops has findings: %s", l)
	}
}

// TestLintProvablyRedundantArc: a hand-written wait guarding a statement pair
// the precise analysis proves independent is flagged with the certificate.
func TestLintProvablyRedundantArc(t *testing.T) {
	_, warns := lint(t, `DOACROSS I = 1, N
  S1: A[2*I] = B[I] + 1
  Wait_Signal(S1, I-1)
  S2: C[I] = A[2*I+1] * 2
  Send_Signal(S1)
ENDDO`)
	wantFinding(t, warns, "provably-redundant synchronization arc")
	wantFinding(t, warns, "proven independent (gcd)")
}

// TestLintConservativeHotspot: a statement party to several pair decisions
// the analyzer could not refine is flagged with line:col and the reasons.
func TestLintConservativeHotspot(t *testing.T) {
	_, warns := lint(t, `DOACROSS I = 1, N
  Wait_Signal(S3, I-1)
  S1: A[X[I]] = B[I] + 1
  S2: C[I] = A[X[I]+1] * 2
  S3: A[I*I] = C[I-1] + 3
  Send_Signal(S3)
ENDDO`)
	wantFinding(t, warns, "conservative-dependence hotspot")
	wantFinding(t, warns, "non-affine")
	found := false
	for _, w := range warns {
		if strings.Contains(w, "hotspot") && strings.Contains(w, "line 3") {
			found = true
		}
	}
	if !found {
		t.Errorf("hotspot finding carries no source position; got %q", warns)
	}
}
