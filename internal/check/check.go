// Package check is the static verification layer: a translation validator
// for schedules and a synchronization linter for DOACROSS sources.
//
// The verifier follows the translation-validation discipline: instead of
// trusting the dependence graph the schedulers consumed (internal/dfg), it
// re-derives its own dependence edges directly from the three-address code
// and the dependence analysis, and then checks a core.Schedule against
// them — intra-iteration data dependences with latencies, the paper's two
// synchronization conditions (a Send never precedes its source store, a
// Wait never follows its sink), issue-width and function-unit feasibility,
// cross-iteration deadlock freedom over the wait-for graph induced by the
// synchronization arcs and their distances, and agreement of the LBD/LFD
// classification the cost model is built on. A scheduler bug that slips a
// constraint therefore cannot also hide the evidence: the verifier would
// have to share the bug, and it shares no scheduling code.
package check

import (
	"fmt"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/diag"
	"doacross/internal/dlx"
	"doacross/internal/model"
	"doacross/internal/tac"
)

// Stage is the diagnostic stage name of the verifier.
const Stage = "check"

// EdgeKind classifies an independently derived dependence edge.
type EdgeKind int

// Edge kinds, mirroring the constraint families the schedulers must honor.
const (
	// EdgeData is a register def-use edge.
	EdgeData EdgeKind = iota
	// EdgeMem is a loop-independent (distance-0) memory dependence edge.
	EdgeMem
	// EdgeSrcToSend is synchronization condition 1: source store → send.
	EdgeSrcToSend
	// EdgeWaitToSnk is synchronization condition 2: wait → sink access.
	EdgeWaitToSnk
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeSrcToSend:
		return "src->send"
	case EdgeWaitToSnk:
		return "wait->snk"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is one derived dependence edge between instruction indices: To may
// not issue before From's result latency has elapsed.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Edges re-derives the dependence edges of a compiled program from first
// principles: register def-use chains from the instruction operands,
// distance-0 memory dependences from the dependence analysis attached to
// the program's synchronized loop, and the two synchronization-condition
// edges for every synchronized dependence. It deliberately does not read
// dfg.Graph.Arcs; the result is the independent ground truth schedules are
// verified against (and internal/dfg is audited against, in the verify
// pass).
func Edges(p *tac.Program) ([]Edge, error) {
	if p == nil || p.Sync == nil || p.Sync.Analysis == nil {
		return nil, fmt.Errorf("check: program carries no dependence analysis")
	}
	var out []Edge
	seen := map[[3]int]bool{}
	add := func(from, to int, kind EdgeKind) {
		if from == to {
			// A self-edge cannot constrain a schedule (the builders skip
			// them the same way: a reference pair mapping to one
			// instruction orders itself).
			return
		}
		key := [3]int{from, to, int(kind)}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Edge{From: from, To: to, Kind: kind})
	}

	// Register def-use edges. Temps are single-assignment in this IR.
	defOf := map[int]int{}
	for i, in := range p.Instrs {
		if in.Dst != 0 {
			if prev, dup := defOf[in.Dst]; dup {
				return nil, fmt.Errorf("check: temp t%d defined twice (instrs %d and %d)", in.Dst, prev+1, i+1)
			}
			defOf[in.Dst] = i
		}
	}
	for i, in := range p.Instrs {
		for _, t := range in.Uses() {
			d, ok := defOf[t]
			if !ok {
				return nil, fmt.Errorf("check: instr %d uses undefined temp t%d", i+1, t)
			}
			if d >= i {
				return nil, fmt.Errorf("check: instr %d uses temp t%d defined later (instr %d)", i+1, t, d+1)
			}
			add(d, i, EdgeData)
		}
	}

	// Distance-0 memory dependence edges from the analysis.
	a := p.Sync.Analysis
	for _, d := range a.Deps {
		if d.Distance != 0 {
			continue
		}
		src, ok1 := refInstr(p, d.Src)
		snk, ok2 := refInstr(p, d.Snk)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("check: dependence %v has unmapped reference", d)
		}
		add(src.ID-1, snk.ID-1, EdgeMem)
	}

	// Synchronization-condition edges for every synchronized dependence.
	for _, d := range p.Sync.Synced {
		if d.Src.Stmt < 0 || d.Src.Stmt >= len(p.Sync.Base.Body) {
			return nil, fmt.Errorf("check: synchronized dependence %v has no source statement", d)
		}
		label := p.Sync.Base.Body[d.Src.Stmt].Label
		send := p.SendFor(label)
		if send == nil {
			return nil, fmt.Errorf("check: missing send for signal %s", label)
		}
		srcIn, ok := refInstr(p, d.Src)
		if !ok {
			return nil, fmt.Errorf("check: dependence %v source unmapped", d)
		}
		add(srcIn.ID-1, send.ID-1, EdgeSrcToSend)
		wi, ok := waitIndex(p, d.Snk.Stmt, label, d.Distance)
		if !ok {
			return nil, fmt.Errorf("check: missing wait for %v", d)
		}
		snkIn, ok := refInstr(p, d.Snk)
		if !ok {
			return nil, fmt.Errorf("check: dependence %v sink unmapped", d)
		}
		add(wi, snkIn.ID-1, EdgeWaitToSnk)
	}
	return out, nil
}

// refInstr maps a dependence reference to the instruction that performs it.
func refInstr(p *tac.Program, r dep.Ref) (*tac.Instr, bool) {
	if r.Array != nil {
		if r.Merge {
			in, ok := p.MergeLoad[r.Array]
			return in, ok
		}
		in, ok := p.ArrayInstr[r.Array]
		return in, ok
	}
	in, ok := p.ScalarInstr[tac.ScalarKey{Stmt: r.Stmt, Name: r.ScalarName, Write: r.Write}]
	return in, ok
}

// waitIndex finds the wait instruction of statement stmt for (signal, dist).
func waitIndex(p *tac.Program, stmt int, signal string, dist int) (int, bool) {
	for i, in := range p.Instrs {
		if in.Op == tac.Wait && in.Stmt == stmt && in.Signal == signal && in.SigDist == dist {
			return i, true
		}
	}
	return 0, false
}

// Err reduces a diagnostic list to its first error, or nil. It is the
// yes/no form of Verify for callers that gate on acceptance.
func Err(l diag.List) error {
	if errs := l.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// Verify statically verifies a schedule against independently derived
// dependence edges. It returns positioned diagnostics (stage "check"); an
// empty Errors() set means the schedule is proven to respect every derived
// intra-iteration dependence with latencies, both synchronization
// conditions, the machine's issue width and function-unit capacities, to
// be free of cross-iteration deadlock, and to agree with the schedule's
// own LBD/LFD accounting. Verify never panics, whatever the schedule's
// shape — it is safe on adversarially mutated inputs.
func Verify(s *core.Schedule) diag.List {
	var out diag.List
	fail := func(pos diag.Pos, stmt string, format string, args ...any) {
		d := diag.Errorf(Stage, pos, format, args...)
		if stmt != "" {
			d = d.WithStmt(stmt)
		}
		out = append(out, d)
	}
	if s == nil || s.Prog == nil {
		fail(diag.Pos{}, "", "no schedule to verify")
		return out
	}
	if err := s.Cfg.Validate(); err != nil {
		fail(diag.Pos{}, "", "unusable machine configuration: %v", err)
		return out
	}
	n := len(s.Prog.Instrs)
	pos := func(v int) (diag.Pos, string) {
		in := s.Prog.Instrs[v]
		if s.Prog.Sync != nil && in.Stmt >= 0 && in.Stmt < len(s.Prog.Sync.Base.Body) {
			st := s.Prog.Sync.Base.Body[in.Stmt]
			return st.Pos(), st.Label
		}
		return diag.Pos{}, ""
	}

	// Shape: every instruction scheduled exactly once, rows and cycles in
	// agreement, issue width respected. Everything after this section may
	// index by cycle, so a malformed shape returns early.
	if len(s.Cycle) != n {
		fail(diag.Pos{}, "", "schedule covers %d of %d instructions", len(s.Cycle), n)
		return out
	}
	rowPos := make([]int, n) // issue order within the row
	seen := make([]bool, n)
	shapeOK := true
	for c, row := range s.Rows {
		if len(row) > s.Cfg.Issue {
			fail(diag.Pos{}, "", "cycle %d issues %d instructions, width is %d", c, len(row), s.Cfg.Issue)
			shapeOK = false
		}
		for k, v := range row {
			if v < 0 || v >= n {
				fail(diag.Pos{}, "", "cycle %d issues unknown instruction index %d", c, v)
				shapeOK = false
				continue
			}
			if seen[v] {
				p, st := pos(v)
				fail(p, st, "instruction %d scheduled twice", s.Prog.Instrs[v].ID)
				shapeOK = false
				continue
			}
			seen[v] = true
			rowPos[v] = k
			if s.Cycle[v] != c {
				p, st := pos(v)
				fail(p, st, "instruction %d: cycle %d disagrees with row %d", s.Prog.Instrs[v].ID, s.Cycle[v], c)
				shapeOK = false
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			p, st := pos(v)
			fail(p, st, "instruction %d (%v) never scheduled", s.Prog.Instrs[v].ID, s.Prog.Instrs[v])
			shapeOK = false
		}
	}
	if !shapeOK {
		return out
	}

	lat := func(v int) int { return s.Cfg.Latency[s.Prog.Instrs[v].Class()] }

	// Derived dependence edges with latencies. Synchronization-condition
	// violations get their own message so condition 1 and 2 findings are
	// recognizable.
	edges, err := Edges(s.Prog)
	if err != nil {
		fail(diag.Pos{}, "", "%v", err)
		return out
	}
	for _, e := range edges {
		if s.Cycle[e.To] >= s.Cycle[e.From]+lat(e.From) {
			continue
		}
		p, st := pos(e.To)
		from, to := s.Prog.Instrs[e.From], s.Prog.Instrs[e.To]
		switch e.Kind {
		case EdgeSrcToSend:
			fail(p, st, "synchronization condition 1 violated: %v (instr %d, cycle %d) precedes its source store (instr %d, cycle %d, latency %d)",
				from, from.ID, s.Cycle[e.To], to.ID, s.Cycle[e.From], lat(e.From))
		case EdgeWaitToSnk:
			fail(p, st, "synchronization condition 2 violated: sink %v (instr %d, cycle %d) precedes %v (instr %d, cycle %d)",
				to, to.ID, s.Cycle[e.To], from, from.ID, s.Cycle[e.From])
		default:
			fail(p, st, "%s dependence violated: instr %d (cycle %d, latency %d) -> instr %d (cycle %d)",
				e.Kind, from.ID, s.Cycle[e.From], lat(e.From), to.ID, s.Cycle[e.To])
		}
	}

	// Function-unit occupancy: units are not pipelined, so an instruction
	// holds a unit of its class for its full latency.
	horizon := 0
	for v := 0; v < n; v++ {
		if end := s.Cycle[v] + lat(v); end > horizon {
			horizon = end
		}
	}
	occupancy := map[dlx.Class][]int{}
	for v := 0; v < n; v++ {
		cls := s.Prog.Instrs[v].Class()
		if !dlx.NeedsUnit(cls) {
			continue
		}
		occ := occupancy[cls]
		if occ == nil {
			occ = make([]int, horizon)
			occupancy[cls] = occ
		}
		for c := s.Cycle[v]; c < s.Cycle[v]+lat(v); c++ {
			occ[c]++
			if occ[c] == s.Cfg.Units[cls]+1 {
				// Report each oversubscribed (class, cycle) once.
				p, st := pos(v)
				fail(p, st, "cycle %d oversubscribes %s units (%d available)", c, cls, s.Cfg.Units[cls])
			}
		}
	}

	out = append(out, verifyDeadlockFree(s, rowPos)...)
	out = append(out, verifyLBDAccounting(s)...)
	return out
}

// verifyDeadlockFree checks cross-iteration deadlock freedom. Every
// iteration runs the same schedule in order; a blocked Wait stalls every
// instruction at a later cycle (or later in the same row). The wait-for
// graph over synchronization instructions therefore has two arc families:
//
//   - wait → its send, weighted by the wait's distance d (iteration i's
//     wait depends on iteration i-d's send), and
//   - x → wait, weight 0, whenever x issues at or after the wait (same
//     iteration's in-order stall).
//
// The schedule deadlocks exactly when this graph has a cycle of total
// weight <= 0: the dependence then fails to recede toward earlier
// iterations and can never bottom out at the loop's first iterations.
// Positive distances alone make every cycle positive, so organic schedules
// pass; a distance-0 or negative wait whose send sits at or after it is
// caught here.
func verifyDeadlockFree(s *core.Schedule, rowPos []int) diag.List {
	var out diag.List
	var syncs []int
	for v, in := range s.Prog.Instrs {
		if in.IsSync() {
			syncs = append(syncs, v)
		}
	}
	if len(syncs) == 0 {
		return nil
	}
	idx := map[int]int{}
	for i, v := range syncs {
		idx[v] = i
	}
	type arc struct {
		from, to, w int
	}
	var arcs []arc
	for i, v := range syncs {
		in := s.Prog.Instrs[v]
		if in.Op == tac.Wait {
			send := s.Prog.SendFor(in.Signal)
			if send == nil {
				st := ""
				p := diag.Pos{}
				if s.Prog.Sync != nil && in.Stmt >= 0 && in.Stmt < len(s.Prog.Sync.Base.Body) {
					stmt := s.Prog.Sync.Base.Body[in.Stmt]
					p, st = stmt.Pos(), stmt.Label
				}
				d := diag.Errorf(Stage, p, "deadlock: %v waits for a signal that is never sent", in)
				if st != "" {
					d = d.WithStmt(st)
				}
				out = append(out, d)
				continue
			}
			arcs = append(arcs, arc{from: i, to: idx[send.ID-1], w: in.SigDist})
			// Same-iteration stall arcs into this wait.
			for j, x := range syncs {
				if x == v {
					continue
				}
				if s.Cycle[x] > s.Cycle[v] || (s.Cycle[x] == s.Cycle[v] && rowPos[x] > rowPos[v]) {
					arcs = append(arcs, arc{from: j, to: i, w: 0})
				}
			}
		}
	}
	if len(arcs) == 0 {
		return out
	}
	// Detect a cycle with total weight <= 0: scale weights by K = |arcs|+1
	// and subtract 1 per arc, then any such cycle (and only such a cycle)
	// is strictly negative; Bellman-Ford from an implicit all-zero source.
	k := len(arcs) + 1
	dist := make([]int, len(syncs))
	pred := make([]int, len(syncs))
	for i := range pred {
		pred[i] = -1
	}
	bad := -1
	for pass := 0; pass < len(syncs); pass++ {
		changed := false
		for _, a := range arcs {
			if w := dist[a.from] + a.w*k - 1; w < dist[a.to] {
				dist[a.to] = w
				pred[a.to] = a.from
				changed = true
				if pass == len(syncs)-1 {
					bad = a.to
				}
			}
		}
		if !changed {
			break
		}
	}
	if bad >= 0 {
		// Walk predecessors into the cycle and collect it for the report.
		v := bad
		for i := 0; i < len(syncs); i++ {
			v = pred[v]
		}
		var names []string
		start := v
		for {
			names = append(names, s.Prog.Instrs[syncs[v]].String())
			v = pred[v]
			if v == start || len(names) > len(syncs) {
				break
			}
		}
		in := s.Prog.Instrs[syncs[start]]
		p := diag.Pos{}
		st := ""
		if s.Prog.Sync != nil && in.Stmt >= 0 && in.Stmt < len(s.Prog.Sync.Base.Body) {
			stmt := s.Prog.Sync.Base.Body[in.Stmt]
			p, st = stmt.Pos(), stmt.Label
		}
		d := diag.Errorf(Stage, p, "cross-iteration deadlock: wait-for cycle with non-positive total distance through %v", names)
		if st != "" {
			d = d.WithStmt(st)
		}
		out = append(out, d)
	}
	return out
}

// verifyLBDAccounting recomputes the LBD/LFD classification of every
// synchronization pair straight from the instruction cycles and cross-
// checks the schedule's own NumLBD/MaxLBDStall — the inputs of the LBD
// loop theorem T = (n/d)(i-j) + l. A divergence means the cost model is
// being fed a misclassified schedule.
func verifyLBDAccounting(s *core.Schedule) diag.List {
	var out diag.List
	lbd := 0
	worst := 0.0
	for v, in := range s.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := s.Prog.SendFor(in.Signal)
		if send == nil {
			continue // reported by the deadlock check
		}
		span := s.Cycle[send.ID-1] - s.Cycle[v]
		if span < 0 {
			continue // LFD in the schedule
		}
		lbd++
		if v := float64(span+1) / float64(in.SigDist); v > worst {
			worst = v
		}
	}
	if got := s.NumLBD(); got != lbd {
		out = append(out, diag.Errorf(Stage, diag.Pos{},
			"LBD accounting mismatch: schedule reports %d LBD pairs, recount finds %d", got, lbd))
	}
	if got := s.MaxLBDStall(); got != worst {
		out = append(out, diag.Errorf(Stage, diag.Pos{},
			"LBD stall mismatch: schedule reports %.3f, recount finds %.3f", got, worst))
	}
	return out
}

// VerifyTiming audits the cost model against a simulated execution: the
// analytical Predict bound (the LBD loop theorem applied to the schedule)
// is documented as a lower bound of the simulated parallel time, and no
// execution of n >= 1 iterations can finish before one iteration's
// completion length. total is sim.Timing.Total for the same schedule and
// trip count.
func VerifyTiming(s *core.Schedule, total, n int) diag.List {
	var out diag.List
	if s == nil || n < 1 {
		return nil
	}
	if cl := s.CompletionLength(); total < cl {
		out = append(out, diag.Errorf(Stage, diag.Pos{},
			"timing audit: simulated total %d below one-iteration completion length %d", total, cl))
	}
	if pred := model.Predict(s, n); pred > total {
		out = append(out, diag.Errorf(Stage, diag.Pos{},
			"timing audit: predicted T = %d exceeds simulated total %d at n=%d (Predict must lower-bound the simulation)", pred, total, n))
	}
	return out
}
