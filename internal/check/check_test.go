package check_test

import (
	"testing"

	"doacross"
	"doacross/internal/check"
	"doacross/internal/core"
)

// paperSrc is the paper's running example (Fig. 1(a)).
const paperSrc = `DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO`

// condSrc exercises if-conversion (merge loads) and scalar references.
const condSrc = `DO I = 1, N
  S1: T = A[I-1] * 3
  S2: IF (T > 0) A[I] = T + B[I]
  S3: C[I] = A[I] / 2
ENDDO`

func machines() []doacross.Machine {
	return []doacross.Machine{
		doacross.NewMachine(4, 1),
		doacross.Machine2Issue(2),
		doacross.UniformMachine(2, 1),
	}
}

func schedules(t *testing.T, src string) []*core.Schedule {
	t.Helper()
	p, err := doacross.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out []*core.Schedule
	for _, m := range machines() {
		for _, build := range []func(doacross.Machine) (*core.Schedule, error){
			p.ScheduleList, p.ScheduleListProgramOrder, p.ScheduleSync, p.ScheduleBest,
		} {
			s, err := build(m)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			out = append(out, s)
		}
	}
	return out
}

// rebuildRows recomputes Rows from Cycle after a mutation, keeping the
// schedule shape self-consistent so only the mutated property is violated.
func rebuildRows(s *core.Schedule) {
	max := 0
	for _, c := range s.Cycle {
		if c > max {
			max = c
		}
	}
	s.Rows = make([][]int, max+1)
	for v, c := range s.Cycle {
		s.Rows[c] = append(s.Rows[c], v)
	}
}

func cloneSchedule(s *core.Schedule) *core.Schedule {
	cp := *s
	cp.Cycle = append([]int(nil), s.Cycle...)
	rebuildRows(&cp)
	return &cp
}

func TestVerifyAcceptsEmittedSchedules(t *testing.T) {
	for _, src := range []string{paperSrc, condSrc} {
		for _, s := range schedules(t, src) {
			if l := check.Verify(s); check.Err(l) != nil {
				t.Errorf("%s schedule rejected:\n%s", s.Method, l)
			}
			total := doacross.Simulate(s, 12).Total
			if l := check.VerifyTiming(s, total, 12); check.Err(l) != nil {
				t.Errorf("%s timing audit failed:\n%s", s.Method, l)
			}
		}
	}
}

func TestEdgesCoverAllKinds(t *testing.T) {
	p := doacross.MustCompile(paperSrc)
	edges, err := check.Edges(p.Code)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[check.EdgeKind]int{}
	for _, e := range edges {
		kinds[e.Kind]++
		if e.From == e.To {
			t.Errorf("self edge %v", e)
		}
	}
	for _, k := range []check.EdgeKind{check.EdgeData, check.EdgeMem, check.EdgeSrcToSend, check.EdgeWaitToSnk} {
		if kinds[k] == 0 {
			t.Errorf("no %v edges derived from the paper loop", k)
		}
	}
}

// TestVerifyMutationKill breaks every single derived dependence edge in
// turn and demands the verifier notice each time.
func TestVerifyMutationKill(t *testing.T) {
	for _, src := range []string{paperSrc, condSrc} {
		p, err := doacross.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := check.Edges(p.Code)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range machines() {
			s, err := p.ScheduleSync(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges {
				mut := cloneSchedule(s)
				// Latencies are >= 1, so issuing To together with From
				// violates the edge.
				mut.Cycle[e.To] = mut.Cycle[e.From]
				rebuildRows(mut)
				if check.Err(check.Verify(mut)) == nil {
					t.Errorf("machine %s: broken %v edge %d->%d not flagged", m.Name, e.Kind, e.From, e.To)
				}
			}
		}
	}
}

func TestVerifyShapeMutations(t *testing.T) {
	p := doacross.MustCompile(paperSrc)
	s, err := p.ScheduleSync(doacross.NewMachine(4, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Dropping an instruction from the schedule.
	mut := cloneSchedule(s)
	mut.Cycle = mut.Cycle[:len(mut.Cycle)-1]
	rebuildRows(mut)
	if check.Err(check.Verify(mut)) == nil {
		t.Error("truncated schedule not flagged")
	}

	// Scheduling a node twice.
	mut = cloneSchedule(s)
	mut.Rows[0] = append(mut.Rows[0], mut.Rows[0][0])
	if check.Err(check.Verify(mut)) == nil {
		t.Error("double-scheduled node not flagged")
	}

	// Cramming everything into cycle 0 overflows the issue width (and
	// every dependence).
	mut = cloneSchedule(s)
	for v := range mut.Cycle {
		mut.Cycle[v] = 0
	}
	rebuildRows(mut)
	if check.Err(check.Verify(mut)) == nil {
		t.Error("width overflow not flagged")
	}

	// Rows and Cycle disagreeing.
	mut = cloneSchedule(s)
	if len(mut.Rows) > 1 && len(mut.Rows[0]) > 0 {
		v := mut.Rows[0][0]
		mut.Rows[0] = mut.Rows[0][1:]
		mut.Rows[1] = append(mut.Rows[1], v)
		if check.Err(check.Verify(mut)) == nil {
			t.Error("row/cycle disagreement not flagged")
		}
	}
}

func TestVerifyTimingMutations(t *testing.T) {
	p := doacross.MustCompile(paperSrc)
	s, err := p.ScheduleSync(doacross.NewMachine(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if l := check.VerifyTiming(s, s.CompletionLength()-1, 12); check.Err(l) == nil {
		t.Error("total below completion length not flagged")
	}
	total := doacross.Simulate(s, 12).Total
	if pred := doacross.Predict(s, 12); pred > 1 {
		if l := check.VerifyTiming(s, pred-1, 12); check.Err(l) == nil && pred-1 >= s.CompletionLength() {
			t.Error("total below prediction not flagged")
		}
		_ = total
	}
}
