package check_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/check"
	"doacross/internal/lang"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenLintDiagnostics pins the linter's rendered findings for a set
// of source fixtures to golden files. Each fixture is one loop in
// testdata/<name>.loop; its findings (or "clean\n") live in
// testdata/<name>_lint.golden. Regenerate with:
// go test ./internal/check -run Golden -update
func TestGoldenLintDiagnostics(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.loop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no lint fixtures in testdata/")
	}
	for _, src := range fixtures {
		name := strings.TrimSuffix(filepath.Base(src), ".loop")
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			loop, err := lang.Parse(string(text))
			if err != nil {
				t.Fatalf("parse %s: %v", src, err)
			}
			got := check.Lint(loop).String()
			if got == "" {
				got = "clean\n"
			}
			path := filepath.Join("testdata", name+"_lint.golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("lint findings diverge from %s:\n-- got --\n%s-- want --\n%s", path, got, want)
			}
		})
	}
}
