package check_test

import (
	"testing"

	"doacross"
	"doacross/internal/check"
)

// fuzzCorpus are the loops FuzzVerify mutates schedules of. Fuzzing varies
// the mutation, not the source: the target exercises the verifier, not the
// compiler (FuzzParse already covers the front end).
var fuzzCorpus = []string{
	paperSrc,
	condSrc,
	"DO I = 1, N\n  S1: A[I] = A[I-1] + B[I]\nENDDO",
	"DO I = 1, N\n  S1: A[I] = B[I-3] / C[I]\n  S2: B[I] = A[I-2] * A[I-1]\nENDDO",
}

// FuzzVerify checks two properties of the verifier under arbitrary
// schedule mutations: it never panics, and any mutation that breaks a
// derived dependence edge is flagged (mutation kill). The unmutated
// schedule must always be accepted.
func FuzzVerify(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(1), uint16(2), uint16(7))
	f.Add(uint8(1), uint8(1), uint16(9), uint16(0), uint16(3))
	f.Add(uint8(2), uint8(2), uint16(4), uint16(4), uint16(4))
	f.Add(uint8(3), uint8(0), uint16(0), uint16(65535), uint16(1))
	f.Fuzz(func(t *testing.T, srcIdx, machineIdx uint8, a, b, c uint16) {
		src := fuzzCorpus[int(srcIdx)%len(fuzzCorpus)]
		ms := machines()
		m := ms[int(machineIdx)%len(ms)]
		p, err := doacross.Compile(src)
		if err != nil {
			t.Fatalf("corpus loop does not compile: %v", err)
		}
		s, err := p.ScheduleSync(m)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if l := check.Verify(s); check.Err(l) != nil {
			t.Fatalf("organic schedule rejected:\n%s", l)
		}

		// Arbitrary mutation: reassign a few cycles pseudo-randomly from
		// the fuzz ints. Verify must never panic, whatever comes out.
		mut := cloneSchedule(s)
		n := len(mut.Cycle)
		rng := uint32(a)<<16 | uint32(b) + uint32(c)*2654435761
		next := func() int {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return int(rng % uint32(n*2+4))
		}
		for i := 0; i < int(c%5)+1; i++ {
			mut.Cycle[next()%n] = next()
		}
		rebuildRows(mut)
		_ = check.Verify(mut)

		// Deletion mutation: always flagged.
		if n > 1 {
			mut = cloneSchedule(s)
			mut.Cycle = mut.Cycle[:n-1-int(a)%(n-1)]
			rebuildRows(mut)
			if check.Err(check.Verify(mut)) == nil {
				t.Fatal("truncated schedule accepted")
			}
		}

		// Edge-targeted mutation kill: breaking one derived dependence or
		// synchronization-condition edge must be flagged.
		edges, err := check.Edges(p.Code)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) > 0 {
			e := edges[int(b)%len(edges)]
			mut = cloneSchedule(s)
			mut.Cycle[e.To] = mut.Cycle[e.From]
			rebuildRows(mut)
			if check.Err(check.Verify(mut)) == nil {
				t.Fatalf("broken %v edge %d->%d accepted", e.Kind, e.From, e.To)
			}
		}
	})
}
