package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Event is one raw Chrome trace_event entry: ph=X "complete" spans, ph=M
// metadata (process/thread names), ph=i instants. The format is the one
// chrome://tracing and Perfetto load: timestamps and durations in
// microseconds, pid/tid selecting the display track, args free-form.
// Producers outside the span recorder — the simulator's machine-level
// tracer — build Events directly and merge them into the same timeline via
// WriteChromeTraceMerged.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON object format.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// attrArgs renders a span's attributes (plus its error, if any) as trace
// args.
func attrArgs(s Span) map[string]any {
	if len(s.Attrs) == 0 && s.Err == "" {
		return nil
	}
	args := make(map[string]any, len(s.Attrs)+1)
	for _, a := range s.Attrs {
		if a.Str != "" {
			args[a.Key] = a.Str
		} else {
			args[a.Key] = a.Int
		}
	}
	if s.Err != "" {
		args["error"] = s.Err
	}
	return args
}

// WriteChromeTrace writes the spans as Chrome trace_event JSON relative to
// epoch (zero epoch: the earliest span's start). The output loads directly
// in Perfetto (ui.perfetto.dev) and chrome://tracing; request spans appear
// as separate tracks with their stage and pass spans nested inside.
func WriteChromeTrace(w io.Writer, spans []Span, epoch time.Time) error {
	return WriteChromeTraceMerged(w, spans, epoch, nil)
}

// WriteChromeTraceMerged writes the spans plus pre-built extra events (e.g.
// the simulator's machine timelines, which use their own pid so each loop
// appears as its own process group) as one merged trace.
func WriteChromeTraceMerged(w io.Writer, spans []Span, epoch time.Time, extra []Event) error {
	if epoch.IsZero() {
		for _, s := range spans {
			if epoch.IsZero() || s.Start.Before(epoch) {
				epoch = s.Start
			}
		}
	}
	events := make([]Event, 0, len(spans)+len(extra))
	for _, s := range spans {
		events = append(events, Event{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.Track,
			Args: attrArgs(s),
		})
	}
	events = append(events, extra...)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteEvents writes pre-built events alone as a loadable trace.
func WriteEvents(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace exports the recorder's current snapshot; see the package
// function.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Snapshot(), r.Epoch())
}

// jsonlSpan is the JSONL event-log shape of one span.
type jsonlSpan struct {
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent,omitempty"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurNS  int64          `json:"dur_ns"`
	Err    string         `json:"err,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL writes the spans as a structured JSONL event log, one JSON
// object per line, in the given order.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		js := jsonlSpan{
			ID:     uint64(s.ID),
			Parent: uint64(s.Parent),
			Kind:   s.Kind.String(),
			Name:   s.Name,
			Start:  s.Start.Format(time.RFC3339Nano),
			DurNS:  s.Duration.Nanoseconds(),
			Err:    s.Err,
			Attrs:  attrArgs(s),
		}
		// attrArgs folds Err into the map for Chrome args; the JSONL shape
		// carries it as its own field instead.
		if js.Attrs != nil {
			delete(js.Attrs, "error")
			if len(js.Attrs) == 0 {
				js.Attrs = nil
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL exports the recorder's current snapshot; see the package
// function.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Snapshot())
}

// Tree groups a span snapshot by parent ID, for reconstructing the
// batch → request → stage → pass hierarchy.
type Tree struct {
	// ByID indexes every span.
	ByID map[SpanID]Span
	// Children maps a span ID to its children in start order; Children[0]
	// holds the roots.
	Children map[SpanID][]Span
}

// BuildTree indexes a snapshot (as returned by Recorder.Snapshot) into a
// parent/child tree. A span whose parent was dropped by ring wrap-around is
// treated as a root.
func BuildTree(spans []Span) *Tree {
	t := &Tree{
		ByID:     make(map[SpanID]Span, len(spans)),
		Children: make(map[SpanID][]Span),
	}
	for _, s := range spans {
		t.ByID[s.ID] = s
	}
	for _, s := range spans {
		parent := s.Parent
		if _, ok := t.ByID[parent]; !ok {
			parent = 0
		}
		t.Children[parent] = append(t.Children[parent], s)
	}
	return t
}

// Path returns the kinds from the root down to the span, e.g.
// [batch request stage pass].
func (t *Tree) Path(id SpanID) []Kind {
	var kinds []Kind
	for id != 0 {
		s, ok := t.ByID[id]
		if !ok {
			break
		}
		kinds = append([]Kind{s.Kind}, kinds...)
		id = s.Parent
	}
	return kinds
}

// String renders the tree for debugging.
func (t *Tree) String() string {
	var b []byte
	var walk func(id SpanID, depth int)
	walk = func(id SpanID, depth int) {
		for _, c := range t.Children[id] {
			for i := 0; i < depth; i++ {
				b = append(b, ' ', ' ')
			}
			b = append(b, fmt.Sprintf("%s %s (%v)\n", c.Kind, c.Name, c.Duration)...)
			walk(c.ID, depth+1)
		}
	}
	walk(0, 0)
	return string(b)
}
