package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStartEndNilRecorder(t *testing.T) {
	var r *Recorder
	sp := r.Start(KindBatch, "batch", Span{})
	if sp.ID != 0 {
		t.Fatalf("nil recorder issued span ID %d", sp.ID)
	}
	r.End(&sp, errors.New("boom")) // must not panic
	if r.Snapshot() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder should report empty state")
	}
}

func TestSpanHierarchyAndTracks(t *testing.T) {
	r := NewRecorder(64)
	batch := r.Start(KindBatch, "batch", Span{})
	req := r.Start(KindRequest, "loop0", batch)
	stage := r.Start(KindStage, "compile", req)
	pass := r.Start(KindPass, "parse", stage)
	r.End(&pass, nil)
	r.End(&stage, nil, B("cache_hit", false))
	r.End(&req, nil)
	r.End(&batch, nil, I("requests", 1))

	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	tree := BuildTree(spans)
	path := tree.Path(pass.ID)
	want := []Kind{KindBatch, KindRequest, KindStage, KindPass}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	// Request spans open their own display track; stage and pass spans
	// inherit it.
	if req.Track == batch.Track {
		t.Fatal("request should open its own track")
	}
	if stage.Track != req.Track || pass.Track != req.Track {
		t.Fatalf("stage/pass tracks %d/%d, want request track %d", stage.Track, pass.Track, req.Track)
	}
	if tree.String() == "" {
		t.Fatal("tree rendering is empty")
	}
}

func TestBuildTreeOrphanBecomesRoot(t *testing.T) {
	// A span whose parent was overwritten by ring wrap-around must still be
	// reachable from the root.
	spans := []Span{{ID: 7, Parent: 3, Kind: KindStage, Name: "schedule"}}
	tree := BuildTree(spans)
	roots := tree.Children[0]
	if len(roots) != 1 || roots[0].ID != 7 {
		t.Fatalf("orphan not promoted to root: %v", roots)
	}
	if got := tree.Path(7); len(got) != 1 || got[0] != KindStage {
		t.Fatalf("orphan path = %v", got)
	}
}

func TestRingWrapCountsDropped(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		sp := r.Start(KindPass, fmt.Sprintf("p%d", i), Span{})
		r.End(&sp, nil)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	if got := len(r.Snapshot()); got != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", got)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(128)
	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				sp := r.Start(KindPass, fmt.Sprintf("g%d-%d", g, i), Span{})
				r.End(&sp, nil, I("i", int64(i)))
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range r.Snapshot() {
					if s.ID == 0 {
						t.Error("snapshot observed unpublished span")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if r.Dropped() == 0 {
		t.Fatal("expected ring wrap with 4000 spans in a 128 ring")
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(16)
	batch := r.Start(KindBatch, "batch", Span{})
	req := r.Start(KindRequest, "loop0", batch)
	r.End(&req, errors.New("boom"), S("machine", "4-issue"))
	r.End(&batch, nil)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  uint64         `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	var sawRequest bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", ev.Name)
		}
		if ev.Cat == "request" {
			sawRequest = true
			if ev.Args["machine"] != "4-issue" || ev.Args["error"] != "boom" {
				t.Fatalf("request args = %v", ev.Args)
			}
		}
	}
	if !sawRequest {
		t.Fatal("no request event exported")
	}
}

func TestJSONLExport(t *testing.T) {
	r := NewRecorder(16)
	sp := r.Start(KindPass, "parse", Span{})
	r.End(&sp, errors.New("boom"), I("n", 3))
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row["kind"] != "pass" || row["name"] != "parse" || row["err"] != "boom" {
		t.Fatalf("row = %v", row)
	}
	attrs, _ := row["attrs"].(map[string]any)
	if attrs["n"] != float64(3) {
		t.Fatalf("attrs = %v", row["attrs"])
	}
	if _, dup := attrs["error"]; dup {
		t.Fatal("error duplicated into attrs in JSONL shape")
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRecorder(16)
	sp := r.Start(KindBatch, "batch", Span{})
	r.End(&sp, nil)
	srv := &Server{
		Recorder: r,
		Metrics:  func(w io.Writer) { fmt.Fprintln(w, "# TYPE doacross_test counter") },
		Stats:    func() any { return map[string]int{"requests": 1} },
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b), resp.Header
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body, hdr := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "doacross_test") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if code, body, _ := get("/stats"); code != http.StatusOK || !strings.Contains(body, `"requests": 1`) {
		t.Fatalf("/stats: %d %q", code, body)
	}
	if code, body, _ := get("/trace"); code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Fatalf("/trace: %d %q", code, body)
	}
	if code, body, _ := get("/trace.jsonl"); code != http.StatusOK || !strings.Contains(body, `"kind":"batch"`) {
		t.Fatalf("/trace.jsonl: %d %q", code, body)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestServerNilHooks404(t *testing.T) {
	srv := &Server{}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/stats", "/trace", "/trace.jsonl"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServerStartClose(t *testing.T) {
	srv := &Server{Recorder: NewRecorder(8)}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over Start: %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
