package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in HTTP admin surface of a pipeline run. It serves:
//
//	/metrics      Prometheus text-format exposition (Metrics hook)
//	/stats        JSON snapshot of the pipeline stats (Stats hook)
//	/trace        Chrome trace_event JSON of the recorded spans (Perfetto)
//	/trace.jsonl  the same spans as a structured JSONL event log
//	/healthz      liveness probe with uptime and span-buffer occupancy
//	/debug/pprof  the standard net/http/pprof handlers
//
// The hooks keep the package decoupled from internal/pipeline: the caller
// (internal/cliutil, or any embedder) wires in whatever registry it uses.
// Hooks left nil make the corresponding endpoint return 404.
type Server struct {
	// Recorder supplies the spans for /trace and /trace.jsonl (nil: 404).
	Recorder *Recorder
	// Metrics writes the Prometheus exposition for /metrics.
	Metrics func(w io.Writer)
	// Stats returns the JSON-marshalable snapshot for /stats.
	Stats func() any
	// Extra supplies pre-built events (machine timelines from the simulator
	// tracer) merged into /trace alongside the recorded spans (nil: spans
	// only).
	Extra func() []Event

	start time.Time
	srv   *http.Server
	ln    net.Listener
}

// Handler builds the admin mux.
func (s *Server) Handler() http.Handler {
	if s.start.IsZero() {
		s.start = time.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/trace.jsonl", s.handleTraceJSONL)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.Recorder != nil {
		resp["spans"] = s.Recorder.Len()
		resp["spans_dropped"] = s.Recorder.Dropped()
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.Metrics == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics(w)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.Stats == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.Recorder == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="doacross-trace.json"`)
	var extra []Event
	if s.Extra != nil {
		extra = s.Extra()
	}
	_ = WriteChromeTraceMerged(w, s.Recorder.Snapshot(), s.Recorder.Epoch(), extra)
}

func (s *Server) handleTraceJSONL(w http.ResponseWriter, _ *http.Request) {
	if s.Recorder == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = s.Recorder.WriteJSONL(w)
}

// Start listens on addr (":0" picks a free port) and serves the admin
// surface in a background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops the server started by Start (no-op otherwise):
// the listener closes immediately, but handlers already running — a
// /metrics scrape, a /trace download — finish before Shutdown returns, up
// to ctx's deadline. Past the deadline remaining connections are closed
// hard and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
		return err
	}
	return nil
}

// Close stops the server started by Start immediately, dropping in-flight
// requests (no-op otherwise). Prefer Shutdown for orderly teardown.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
