package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// FlightRecord is one entry of the flight recorder's ring: a structured log
// record, a completed request with its span tree, or a dump trigger marker.
type FlightRecord struct {
	Time time.Time `json:"time"`
	// Kind is "log", "request" or "trigger".
	Kind string `json:"kind"`
	// RequestID correlates the record with a request (X-Request-Id).
	RequestID string         `json:"request_id,omitempty"`
	Level     string         `json:"level,omitempty"`
	Msg       string         `json:"msg,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Request   *RequestRecord `json:"request,omitempty"`
}

// RequestRecord summarizes one served request for the flight recorder.
type RequestRecord struct {
	Name       string     `json:"name,omitempty"`
	Backend    string     `json:"backend,omitempty"`
	Status     int        `json:"status,omitempty"`
	DurationMS float64    `json:"duration_ms"`
	Coalesced  bool       `json:"coalesced,omitempty"`
	Degraded   bool       `json:"degraded,omitempty"`
	Err        string     `json:"err,omitempty"`
	Spans      []SpanNode `json:"spans,omitempty"`
}

// SpanNode is one span of a request's trace tree, nested.
type SpanNode struct {
	Kind     string     `json:"kind"`
	Name     string     `json:"name"`
	DurUS    int64      `json:"dur_us"`
	Err      string     `json:"err,omitempty"`
	Children []SpanNode `json:"children,omitempty"`
}

// SpanNodes folds a span snapshot (Recorder.Snapshot order) into nested
// trees, roots first.
func SpanNodes(spans []Span) []SpanNode {
	t := BuildTree(spans)
	var build func(id SpanID) []SpanNode
	build = func(id SpanID) []SpanNode {
		kids := t.Children[id]
		if len(kids) == 0 {
			return nil
		}
		out := make([]SpanNode, 0, len(kids))
		for _, c := range kids {
			out = append(out, SpanNode{
				Kind:     c.Kind.String(),
				Name:     c.Name,
				DurUS:    c.Duration.Microseconds(),
				Err:      c.Err,
				Children: build(c.ID),
			})
		}
		return out
	}
	return build(0)
}

// FlightRecorder is the always-on black box: a bounded mutex-guarded ring of
// recent FlightRecords (request span trees plus slog records), cheap enough
// to keep hot and dumped as JSONL when something goes wrong — panic,
// deadline breach, breaker-open, SIGQUIT — or on demand from
// /debug/flightrecord.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next int
	full bool
}

// NewFlightRecorder returns a recorder keeping the last n records (n <= 0:
// 256).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{buf: make([]FlightRecord, n)}
}

// Add appends a record, evicting the oldest when full. A zero Time is
// stamped with the current time.
func (f *FlightRecorder) Add(r FlightRecord) {
	if f == nil {
		return
	}
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	f.mu.Lock()
	f.buf[f.next] = r
	f.next++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Len reports the number of retained records.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Snapshot copies the retained records, oldest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]FlightRecord(nil), f.buf[:f.next]...)
	}
	out := make([]FlightRecord, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// WriteJSONL dumps the ring as JSONL, one record per line, oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range f.Snapshot() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// flightHandler tees every slog record into the flight recorder — before
// and regardless of the inner handler's level filtering, so the black box
// keeps debug-grade context even when the live log level is higher — then
// forwards to the inner handler when it is enabled.
type flightHandler struct {
	fr    *FlightRecorder
	inner slog.Handler
	// attrs carries WithAttrs attachments with their keys already qualified
	// by the group that was open when they were attached (slog semantics: a
	// group prefixes only attrs added after it opens).
	attrs []slog.Attr
	group string
}

// FlightLogger returns a logger that records into fr and forwards to inner
// (nil inner: records only).
func FlightLogger(fr *FlightRecorder, inner slog.Handler) *slog.Logger {
	return slog.New(&flightHandler{fr: fr, inner: inner})
}

func (h *flightHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *flightHandler) Handle(ctx context.Context, r slog.Record) error {
	rec := FlightRecord{Time: r.Time, Kind: "log", Level: r.Level.String(), Msg: r.Message}
	attrs := make(map[string]any, r.NumAttrs()+len(h.attrs))
	fold := func(key string, v slog.Value) {
		if key == "request_id" {
			rec.RequestID, _ = v.Any().(string)
			return
		}
		attrs[key] = v.Any()
	}
	for _, a := range h.attrs {
		fold(a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		fold(key, a.Value)
		return true
	})
	if len(attrs) > 0 {
		rec.Attrs = attrs
	}
	h.fr.Add(rec)
	if h.inner != nil && h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	qual := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		qual[i] = a
	}
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), qual...)
	if h.inner != nil {
		nh.inner = h.inner.WithAttrs(attrs)
	}
	return &nh
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	if nh.group != "" {
		nh.group += "." + name
	} else {
		nh.group = name
	}
	if h.inner != nil {
		nh.inner = h.inner.WithGroup(name)
	}
	return &nh
}
