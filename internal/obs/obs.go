// Package obs is the observability layer of the batch scheduling service:
// span-based tracing with a bounded lock-free ring buffer, exporters for the
// Chrome trace_event format (loadable in Perfetto) and a structured JSONL
// event log, and an opt-in HTTP admin surface serving metrics, stats
// snapshots, trace downloads and pprof.
//
// Spans form a batch → request → stage → pass hierarchy: the pipeline starts
// a batch span, one request span per loop, one stage span per pipeline stage
// (compile, schedule, simulate) and the pass manager one pass span per
// compilation pass. Each span carries its parent's ID, so the tree is
// reconstructible from any snapshot.
//
// All hot-path methods are safe for concurrent use and are no-ops on a nil
// *Recorder: a pipeline run with tracing disabled pays exactly one nil check
// per would-be span.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies a span's level in the batch → request → stage → pass
// hierarchy.
type Kind uint8

// The span kinds, outermost first.
const (
	KindBatch Kind = iota
	KindRequest
	KindStage
	KindPass
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindRequest:
		return "request"
	case KindStage:
		return "stage"
	case KindPass:
		return "pass"
	}
	return "span"
}

// SpanID identifies a span within one Recorder; 0 means "no span" (the
// parent of a root span, or a span started on a nil Recorder).
type SpanID uint64

// Attr is one span attribute: a key with either an integer or a string
// value (Str wins when non-empty).
type Attr struct {
	Key string
	Int int64
	Str string
}

// I builds an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v} }

// B builds a boolean attribute (rendered as 0/1).
func B(key string, v bool) Attr {
	if v {
		return Attr{Key: key, Int: 1}
	}
	return Attr{Key: key, Int: 0}
}

// Span is one recorded operation. A Span is created by Recorder.Start,
// carried by value while the operation runs, and published immutably by
// Recorder.End — snapshots only ever observe finished spans.
type Span struct {
	// ID identifies the span; Parent is the enclosing span (0 for roots).
	ID, Parent SpanID
	// Track groups the span for timeline display: each request span opens
	// its own track and stage/pass spans inherit it, so concurrent requests
	// render as parallel lanes whose spans nest by time containment.
	Track uint64
	// Kind is the hierarchy level.
	Kind Kind
	// Name labels the span (request name, stage or pass name).
	Name string
	// Start and Duration delimit the operation.
	Start    time.Time
	Duration time.Duration
	// Err is the failure message ("" on success).
	Err string
	// Attrs are the span's attributes (recorded at End).
	Attrs []Attr
}

// Recorder records finished spans into a bounded lock-free ring buffer:
// writers claim a slot with one atomic add and publish the span with one
// atomic pointer store, so recording never blocks and never allocates beyond
// the span itself. When the ring wraps, the oldest spans are overwritten and
// counted as dropped. A nil *Recorder is valid and disables tracing.
type Recorder struct {
	epoch time.Time
	ids   atomic.Uint64
	next  atomic.Uint64
	slots []atomic.Pointer[Span]
	mask  uint64
}

// DefaultCapacity is the ring size used when NewRecorder is given n <= 0.
const DefaultCapacity = 8192

// NewRecorder returns a recorder whose ring holds at least n spans (rounded
// up to a power of two; n <= 0 means DefaultCapacity).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Recorder{
		epoch: time.Now(),
		slots: make([]atomic.Pointer[Span], size),
		mask:  uint64(size - 1),
	}
}

// Epoch is the recorder's time base (trace timestamps are relative to it).
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Start opens a span under parent. On a nil recorder it returns the zero
// Span, which End ignores — the disabled path is a single nil check.
func (r *Recorder) Start(kind Kind, name string, parent Span) Span {
	if r == nil {
		return Span{}
	}
	s := Span{
		ID:     SpanID(r.ids.Add(1)),
		Parent: parent.ID,
		Track:  parent.Track,
		Kind:   kind,
		Name:   name,
		Start:  time.Now(),
	}
	// Batch spans and request spans open their own display track;
	// stage/pass spans stay on their request's track.
	if kind == KindBatch || kind == KindRequest || parent.ID == 0 {
		s.Track = uint64(s.ID)
	}
	return s
}

// End finishes the span and publishes it. err may be nil; attrs are attached
// as recorded. Ending a zero span (from a nil recorder) is a no-op.
func (r *Recorder) End(s *Span, err error, attrs ...Attr) {
	if r == nil || s.ID == 0 {
		return
	}
	s.Duration = time.Since(s.Start)
	if err != nil {
		s.Err = err.Error()
	}
	if len(attrs) > 0 {
		s.Attrs = append(s.Attrs, attrs...)
	}
	r.publish(*s)
}

// publish stores a finished span into the ring.
func (r *Recorder) publish(s Span) {
	i := r.next.Add(1) - 1
	sp := s // private copy; the stored pointer is never mutated again
	r.slots[i&r.mask].Store(&sp)
}

// Len returns the number of spans currently held (at most the ring size).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dropped returns how many spans have been overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n <= uint64(len(r.slots)) {
		return 0
	}
	return n - uint64(len(r.slots))
}

// Snapshot returns the finished spans currently in the ring, ordered by
// start time. It is safe to call while spans are being recorded: each slot
// is read with one atomic load and published spans are immutable.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans by start time, breaking ties by ID (IDs are
// allocated in Start order, so the tiebreak is stable and parent-first).
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
}
