package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		fr.Add(FlightRecord{Kind: "log", Msg: fmt.Sprintf("m%d", i)})
	}
	if fr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", fr.Len())
	}
	snap := fr.Snapshot()
	var msgs []string
	for _, r := range snap {
		msgs = append(msgs, r.Msg)
	}
	if got, want := strings.Join(msgs, " "), "m2 m3 m4 m5"; got != want {
		t.Errorf("snapshot order = %q, want %q (oldest first, oldest evicted)", got, want)
	}
	for _, r := range snap {
		if r.Time.IsZero() {
			t.Error("Add did not stamp a zero Time")
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Add(FlightRecord{Kind: "log"}) // must not panic
}

func TestFlightRecorderWriteJSONL(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Add(FlightRecord{Kind: "log", RequestID: "req-1", Msg: "hello"})
	fr.Add(FlightRecord{Kind: "request", RequestID: "req-1", Request: &RequestRecord{Status: 200}})
	var buf bytes.Buffer
	if err := fr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []FlightRecord
	for sc.Scan() {
		var r FlightRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", len(lines), err)
		}
		lines = append(lines, r)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].Msg != "hello" || lines[0].RequestID != "req-1" {
		t.Errorf("first line = %+v", lines[0])
	}
	if lines[1].Kind != "request" || lines[1].Request == nil || lines[1].Request.Status != 200 {
		t.Errorf("second line = %+v", lines[1])
	}
}

// TestFlightLoggerRecordsBelowInnerLevel is the black-box property: the
// ring keeps debug-grade records even when the live handler's level filters
// them out of the visible log.
func TestFlightLoggerRecordsBelowInnerLevel(t *testing.T) {
	fr := NewFlightRecorder(8)
	var out bytes.Buffer
	inner := slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelWarn})
	log := FlightLogger(fr, inner)

	log.Debug("quiet decision", "request_id", "req-9", "queue", 3)
	log.Warn("loud decision", "request_id", "req-9")

	if !strings.Contains(out.String(), "loud decision") {
		t.Error("warn record did not reach the inner handler")
	}
	if strings.Contains(out.String(), "quiet decision") {
		t.Error("debug record leaked past the inner handler's level")
	}
	snap := fr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("flight ring has %d records, want 2 (records regardless of level)", len(snap))
	}
	if snap[0].Msg != "quiet decision" || snap[0].Level != "DEBUG" {
		t.Errorf("first ring record = %+v", snap[0])
	}
	if snap[0].RequestID != "req-9" {
		t.Errorf("request_id attr not folded into RequestID: %+v", snap[0])
	}
	if _, ok := snap[0].Attrs["request_id"]; ok {
		t.Error("request_id duplicated in Attrs")
	}
	if got := snap[0].Attrs["queue"]; got != int64(3) && got != 3 {
		t.Errorf("queue attr = %v (%T)", got, got)
	}
}

func TestFlightLoggerNilInner(t *testing.T) {
	fr := NewFlightRecorder(4)
	log := FlightLogger(fr, nil)
	log.Info("only the ring", "request_id", "r")
	if fr.Len() != 1 {
		t.Fatalf("ring has %d records, want 1", fr.Len())
	}
}

func TestFlightLoggerWithAttrsAndGroup(t *testing.T) {
	fr := NewFlightRecorder(8)
	log := FlightLogger(fr, nil).With("request_id", "req-w").WithGroup("srv")
	log.Info("grouped", "k", "v")
	snap := fr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("ring has %d records", len(snap))
	}
	r := snap[0]
	if r.RequestID != "req-w" {
		t.Errorf("RequestID = %q, want req-w (With attr folded)", r.RequestID)
	}
	if r.Attrs["srv.k"] != "v" {
		t.Errorf("grouped attr = %v, want srv.k=v", r.Attrs)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fr.Add(FlightRecord{Kind: "log", Msg: fmt.Sprintf("g%d-%d", g, i)})
				if i%10 == 0 {
					_ = fr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if fr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", fr.Len())
	}
}
