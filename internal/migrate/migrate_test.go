package migrate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/dep"
	"doacross/internal/lang"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func migrate(t testing.TB, src string) *Result {
	t.Helper()
	r, err := Migrate(dep.Analyze(lang.MustParse(src)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMigrateConvertibleLoop(t *testing.T) {
	// Sink (S1, reads A[I-2]) and source (S2, writes A[I]) are independent:
	// migration must move the source first, converting the LBD.
	r := migrate(t, "DO I = 1, N\nB[I+1] = A[I-2] + E[I]\nA[I] = F[I] * 2\nENDDO")
	if r.Before != 1 {
		t.Fatalf("before = %d LBDs, want 1", r.Before)
	}
	if r.After != 0 {
		t.Errorf("after = %d LBDs, want 0 (converted)\n%s", r.After, r.Loop)
	}
	if !r.Moved {
		t.Error("statements should have moved")
	}
}

func TestMigrateRespectsIntraIterationDeps(t *testing.T) {
	// S3 reads B[I] written by S1 — S3 must stay after S1 even though moving
	// S3 (the carried source) first would convert the LBDs.
	r := migrate(t, fig1Source)
	pos := map[string]int{}
	for i, st := range r.Loop.Body {
		pos[st.Label] = i
	}
	if pos["S3"] < pos["S1"] {
		t.Errorf("migration broke the B[I] flow dependence:\n%s", r.Loop)
	}
	// The A[I]→A[I-1] pair (S3→S2) is convertible: S2 has no intra-iteration
	// tie to S3.
	if pos["S3"] > pos["S2"] {
		t.Errorf("S3 should migrate above S2:\n%s", r.Loop)
	}
	if r.After >= r.Before {
		t.Errorf("migration did not reduce LBDs: %d -> %d", r.Before, r.After)
	}
}

func TestMigrateCannotFixSelfRecurrence(t *testing.T) {
	r := migrate(t, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	if r.Before != 1 || r.After != 1 {
		t.Errorf("self recurrence: %d -> %d LBDs, want 1 -> 1", r.Before, r.After)
	}
	if r.Moved {
		t.Error("single statement cannot move")
	}
}

func TestMigrateIdempotentOnForwardLoop(t *testing.T) {
	r := migrate(t, "DO I = 1, N\nA[I] = E[I]\nB[I] = A[I-1]\nENDDO")
	if r.Before != 0 || r.After != 0 {
		t.Errorf("forward loop: %d -> %d", r.Before, r.After)
	}
	if r.Moved {
		t.Errorf("forward loop should not be reordered:\n%s", r.Loop)
	}
}

func TestMigratePreservesSemanticsFig1(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	r, err := Migrate(dep.Analyze(loop))
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	a := loop.SeedStore(n, 8, 31)
	b := a.Clone()
	if err := loop.Run(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Loop.Run(b); err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("migration changed semantics: %s\noriginal:\n%s\nmigrated:\n%s", d, loop, r.Loop)
	}
}

// TestQuickMigrationSemanticsAndMonotonicity: migration never changes the
// sequential result and never increases the LBD count.
func TestQuickMigrationSemanticsAndMonotonicity(t *testing.T) {
	arrays := []string{"A", "B", "C", "D"}
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
		nst := 2 + r.Intn(5)
		ref := func() lang.Expr {
			return &lang.ArrayRef{Name: arrays[r.Intn(4)], Index: &lang.Binary{
				Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(9) - 4)}}}
		}
		for k := 0; k < nst; k++ {
			loop.Body = append(loop.Body, &lang.Assign{
				Label: "S" + string(rune('1'+k)),
				LHS:   &lang.ArrayRef{Name: arrays[r.Intn(4)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(3))}}},
				RHS:   &lang.Binary{Op: lang.BinOp(r.Intn(3)), L: ref(), R: ref()},
			})
		}
		a := dep.Analyze(loop)
		res, err := Migrate(a)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.After > res.Before {
			t.Logf("seed %d: LBDs increased %d -> %d\n%s\n%s", seed, res.Before, res.After, loop, res.Loop)
			return false
		}
		n := 7
		sa := loop.SeedStore(n, 12, uint64(seed))
		sb := sa.Clone()
		if err := loop.Run(sa); err != nil {
			return true
		}
		if err := res.Loop.Run(sb); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d := sa.Diff(sb); d != "" {
			t.Logf("seed %d: %s\n%s\nvs\n%s", seed, d, loop, res.Loop)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMigrateDoesNotMutateInput(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	before := loop.String()
	if _, err := Migrate(dep.Analyze(loop)); err != nil {
		t.Fatal(err)
	}
	if loop.String() != before {
		t.Error("Migrate mutated its input loop")
	}
}
