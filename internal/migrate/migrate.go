// Package migrate implements the source-level comparison baseline the paper
// builds on: synchronization migration (Hwang & Lai, "An Intelligent Code
// Migration Technique for Synchronization Operations on a Multiprocessor",
// and Hwang, "Synchronization Migration for Performance Enhancement in a
// DOACROSS Loop", both cited in §1/§5).
//
// Migration works at statement granularity, before instruction scheduling:
// it reorders the loop body (respecting all loop-independent dependences) so
// that as many loop-carried dependences as possible become lexically
// forward — the dependence source statement textually precedes its sink, so
// the inserted Send_Signal is reached before the matching Wait_Signal.
//
// Reordering statements inside an iteration is always semantics-preserving
// when the intra-iteration (distance-0) dependences are respected:
// loop-carried dependences connect *different* iterations, and iterations
// still execute in order, so the cross-iteration producer/consumer pairing
// is untouched. The differential tests verify this property directly.
//
// Migration alone cannot fix same-statement recurrences (A[I] = A[I-d]+...)
// or dependence cycles between statements; those remain LBD and are exactly
// the cases the paper's instruction-level technique then squeezes to the
// synchronization-path length. The comparison experiment (cmd/benchtab
// -migration, BenchmarkMigration) quantifies how much of the win each layer
// contributes.
package migrate

import (
	"fmt"

	"doacross/internal/dep"
	"doacross/internal/lang"
)

// Result is a migrated loop with its statistics.
type Result struct {
	// Loop is the reordered loop (a deep copy; the input is not modified).
	Loop *lang.Loop
	// Order maps new position -> original statement index.
	Order []int
	// Before and After count lexically backward carried dependences in the
	// original and migrated statement orders.
	Before, After int
	// Moved reports whether any statement changed position.
	Moved bool
}

// Migrate reorders the loop body to minimize lexically backward carried
// dependences. The returned loop is re-analyzed from scratch by callers; the
// input loop and analysis are left untouched.
func Migrate(a *dep.Analysis) (*Result, error) {
	loop := a.Loop
	n := len(loop.Body)
	// Intra-iteration precedence graph over statements: distance-0
	// dependences force order.
	succ := make([][]int, n)
	indeg := make([]int, n)
	edge := map[[2]int]bool{}
	for _, d := range a.Deps {
		if d.Distance != 0 || d.Src.Stmt == d.Snk.Stmt {
			continue
		}
		key := [2]int{d.Src.Stmt, d.Snk.Stmt}
		if edge[key] {
			continue
		}
		edge[key] = true
		succ[d.Src.Stmt] = append(succ[d.Src.Stmt], d.Snk.Stmt)
		indeg[d.Snk.Stmt]++
	}
	// Carried-dependence wish list: src should precede snk.
	type wish struct{ src, snk int }
	var wishes []wish
	for _, d := range a.Carried() {
		if d.Src.Stmt != d.Snk.Stmt {
			wishes = append(wishes, wish{d.Src.Stmt, d.Snk.Stmt})
		}
	}
	// Greedy topological order: among ready statements, prefer (1) sources
	// of carried dependences whose sink is not yet placed, then (2) original
	// order. This is the classic migration heuristic: hoist dependence
	// sources (and with them their Send_Signal) toward the loop top.
	placed := make([]bool, n)
	order := make([]int, 0, n)
	remaining := make([]int, n)
	copy(remaining, indeg)
	for len(order) < n {
		best := -1
		bestScore := -1 << 30
		for s := 0; s < n; s++ {
			if placed[s] || remaining[s] != 0 {
				continue
			}
			score := 0
			for _, w := range wishes {
				if w.src == s && !placed[w.snk] {
					score += 2 // placing the source first converts the pair
				}
				if w.snk == s && !placed[w.src] {
					score-- // placing the sink first keeps it backward
				}
			}
			// Tie-break on original position (stable).
			score = score*1024 - s
			if score > bestScore {
				bestScore = score
				best = s
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("migrate: intra-iteration dependence cycle")
		}
		placed[best] = true
		order = append(order, best)
		for _, t := range succ[best] {
			remaining[t]--
		}
	}
	clone := loop.Clone()
	out := &lang.Loop{Doacross: clone.Doacross, Var: clone.Var, Lo: clone.Lo, Hi: clone.Hi}
	moved := false
	for newPos, oldPos := range order {
		if newPos != oldPos {
			moved = true
		}
		out.Body = append(out.Body, clone.Body[oldPos])
	}
	res := &Result{Loop: out, Order: order, Moved: moved}
	_, res.Before = a.CountLexical()
	_, res.After = dep.Analyze(out).CountLexical()
	if res.After > res.Before {
		// The greedy placement can lose on tangled multi-dependence bodies
		// (hoisting one source flips other pairs backward). Migration is
		// defined to never degrade: keep the original order.
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		return &Result{Loop: loop.Clone(), Order: id, Before: res.Before, After: res.Before}, nil
	}
	return res, nil
}

// MustMigrate is Migrate for known-good inputs.
func MustMigrate(a *dep.Analysis) *Result {
	r, err := Migrate(a)
	if err != nil {
		panic(err)
	}
	return r
}
