package passes

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// fig1 is the paper's running example (Fig. 1(a)).
const fig1 = `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`

func TestDefaultOrder(t *testing.T) {
	got := New(Options{}).Names()
	want := []string{"parse", "ifconvert", "analyze", "syncinsert", "codegen", "graph"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("default pipeline = %v, want %v", got, want)
	}
}

func TestOptionalPassInsertion(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want []string
	}{
		{"unroll", Options{Unroll: 4},
			[]string{"parse", "unroll", "ifconvert", "analyze", "syncinsert", "codegen", "graph"}},
		{"unroll-1-is-noop", Options{Unroll: 1},
			[]string{"parse", "ifconvert", "analyze", "syncinsert", "codegen", "graph"}},
		{"migrate", Options{Migrate: true},
			[]string{"parse", "ifconvert", "analyze", "migrate", "syncinsert", "codegen", "graph"}},
		{"no-ifconvert", Options{NoIfConvert: true},
			[]string{"parse", "analyze", "syncinsert", "codegen", "graph"}},
		{"everything", Options{Unroll: 2, Migrate: true, NoIfConvert: true},
			[]string{"parse", "unroll", "analyze", "migrate", "syncinsert", "codegen", "graph"}},
	}
	for _, tc := range cases {
		if got := New(tc.opts).Names(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: pipeline = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMatchesHardWiredSequence is the acceptance check that the default
// pipeline is byte-identical to the historical hard-wired compile sequence.
func TestMatchesHardWiredSequence(t *testing.T) {
	ctx, err := Compile(fig1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loop := lang.MustParse(fig1)
	a := dep.Analyze(loop)
	sl := syncop.Insert(a, syncop.Options{})
	code, err := tac.Generate(sl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Build(code, a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ctx.Sync.String(), sl.String(); got != want {
		t.Errorf("sync form diverges:\n%s\nvs\n%s", got, want)
	}
	if got, want := tac.Listing(ctx.Code.Instrs), tac.Listing(code.Instrs); got != want {
		t.Errorf("TAC diverges:\n%s\nvs\n%s", got, want)
	}
	if got, want := ctx.Graph.SyncInfo(), g.SyncInfo(); got != want {
		t.Errorf("graph diverges:\n%s\nvs\n%s", got, want)
	}
}

func TestParseDiagnosticPosition(t *testing.T) {
	_, err := Compile("DO I = 1, N\nS1: B[I] = ,\nENDDO", Options{})
	if err == nil {
		t.Fatal("bad source compiled")
	}
	d, ok := diag.As(err)
	if !ok {
		t.Fatalf("error %v is not a Diagnostic", err)
	}
	if d.Stage != "lang" {
		t.Errorf("stage = %q, want lang", d.Stage)
	}
	if d.Pos.Line != 2 {
		t.Errorf("error position = %v, want line 2", d.Pos)
	}
}

func TestCodegenRejectsGuardWithoutIfConvert(t *testing.T) {
	src := "DO I = 1, N\nS1: A[I] = A[I-1] + 1\nS2: IF (E[I] > 0) B[I] = A[I]\nENDDO"
	// With if-conversion (default), the guarded loop compiles.
	if _, err := Compile(src, Options{}); err != nil {
		t.Fatalf("guarded loop failed under default pipeline: %v", err)
	}
	// Without it, codegen must reject the guarded statement and point at it.
	ctx, err := Compile(src, Options{NoIfConvert: true})
	if err == nil {
		t.Fatal("guarded loop compiled without the ifconvert pass")
	}
	d, ok := diag.As(err)
	if !ok {
		t.Fatalf("error %v is not a Diagnostic", err)
	}
	if d.Stmt != "S2" {
		t.Errorf("diagnostic statement = %q, want S2", d.Stmt)
	}
	if d.Pos.Line != 3 {
		t.Errorf("diagnostic position = %v, want line 3 (the guarded statement)", d.Pos)
	}
	// The failure is also recorded in the context's diagnostics.
	if len(ctx.Diags.Errors()) != 1 {
		t.Errorf("ctx.Diags errors = %d, want 1", len(ctx.Diags.Errors()))
	}
}

func TestUnrollPass(t *testing.T) {
	ctx, err := Compile(fig1, Options{Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.UnrollFactor != 4 {
		t.Errorf("UnrollFactor = %d, want 4", ctx.UnrollFactor)
	}
	if got := len(ctx.Loop.Body); got != 12 {
		t.Errorf("unrolled body = %d statements, want 12", got)
	}
	// An invalid factor surfaces as a positioned unroll diagnostic.
	if _, err := Compile(fig1, Options{Unroll: -2}); err == nil {
		t.Error("negative unroll factor accepted")
	} else if d, ok := diag.As(err); !ok || d.Stage != "unroll" {
		t.Errorf("unroll error = %v, want unroll diagnostic", err)
	}
}

func TestMigratePass(t *testing.T) {
	ctx, err := Compile(fig1, Options{Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Migration == nil {
		t.Fatal("migrate pass left no Migration result")
	}
	if ctx.Migration.After > ctx.Migration.Before {
		t.Errorf("migration raised LBD %d -> %d", ctx.Migration.Before, ctx.Migration.After)
	}
}

// countingTracer records pass observations, guarding against concurrent use.
type countingTracer struct {
	mu   sync.Mutex
	obs  map[string]int
	errs map[string]int
}

func (c *countingTracer) ObservePass(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.obs == nil {
		c.obs = map[string]int{}
	}
	c.obs[name]++
}

func (c *countingTracer) PassError(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.errs == nil {
		c.errs = map[string]int{}
	}
	c.errs[name]++
}

func TestTracerAndTrace(t *testing.T) {
	tr := &countingTracer{}
	ctx, err := Compile(fig1, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	names := New(Options{}).Names()
	if got := len(ctx.Trace.Timings); got != len(names) {
		t.Fatalf("trace has %d timings, want %d", got, len(names))
	}
	for i, tm := range ctx.Trace.Timings {
		if tm.Pass != names[i] {
			t.Errorf("timing %d = %s, want %s", i, tm.Pass, names[i])
		}
	}
	for _, n := range names {
		if tr.obs[n] != 1 {
			t.Errorf("tracer saw %s %d times, want 1", n, tr.obs[n])
		}
	}
	if len(tr.errs) != 0 {
		t.Errorf("tracer saw errors on a clean compile: %v", tr.errs)
	}
	if s := ctx.Trace.String(); !strings.Contains(s, "total") {
		t.Errorf("trace report missing total:\n%s", s)
	}
	// A failing compile reports the error to the tracer too.
	tr2 := &countingTracer{}
	if _, err := Compile("DO I = ,", Options{Tracer: tr2}); err == nil {
		t.Fatal("bad source compiled")
	}
	if tr2.errs["parse"] != 1 {
		t.Errorf("tracer parse errors = %d, want 1", tr2.errs["parse"])
	}
}

func TestDumpSelection(t *testing.T) {
	ctx, err := Compile(fig1, Options{Dump: []string{"syncinsert"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Trace.Artifact("syncinsert"); !ok {
		t.Error("requested artifact missing")
	}
	if _, ok := ctx.Trace.Artifact("codegen"); ok {
		t.Error("unrequested artifact dumped")
	}
	all, err := Compile(fig1, Options{Dump: []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range New(Options{}).Names() {
		if a, ok := all.Trace.Artifact(n); !ok || a == "" {
			t.Errorf("Dump=all missing artifact for %s", n)
		}
	}
}

func TestRunLoopDoesNotMutateInput(t *testing.T) {
	loop := lang.MustParse(fig1)
	before := loop.String()
	ctx, err := CompileLoop(loop, Options{Unroll: 2, Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if loop.String() != before {
		t.Error("transforming passes mutated the input loop")
	}
	if ctx.Loop == loop {
		t.Error("context still aliases the input loop after transforms")
	}
}
