package passes

// Tests of the pass manager's hardened execution: panic recovery into
// structured diagnostics, fault-hook probing, and cancellation between
// passes.

import (
	"context"
	"errors"
	"regexp"
	"strings"
	"testing"

	"doacross/internal/diag"
)

const robustSrc = `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: A[I] = B[I] + C[I+3]
ENDDO`

var digestRe = regexp.MustCompile(`stack [0-9a-f]{12}`)

// TestPassPanicRecovered: a panic inside a pass (here: its fault probe)
// becomes a structured diagnostic with the pass name, the request label and
// a stable stack digest; earlier passes' products survive in the context.
func TestPassPanicRecovered(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == PassAnalyze {
			panic("kaboom")
		}
		return nil
	}
	ctx, err := Compile(robustSrc, Options{FaultHook: hook, Request: "r1"})
	if err == nil {
		t.Fatal("panicking pass succeeded")
	}
	d, ok := diag.As(err)
	if !ok {
		t.Fatalf("panic surfaced as unstructured error: %v", err)
	}
	if d.Stage != PassAnalyze {
		t.Errorf("stage = %q, want %q", d.Stage, PassAnalyze)
	}
	for _, want := range []string{"request r1", "panic: kaboom"} {
		if !strings.Contains(d.Msg, want) {
			t.Errorf("diagnostic %q missing %q", d.Msg, want)
		}
	}
	if !digestRe.MatchString(d.Msg) {
		t.Errorf("diagnostic %q carries no stack digest", d.Msg)
	}
	if ctx.Loop == nil {
		t.Error("parse product lost in the panic")
	}
	if ctx.Analysis != nil {
		t.Error("failed pass left a product")
	}
	if len(ctx.Trace.Diags.Errors()) == 0 {
		t.Error("trace lost the panic diagnostic")
	}
	// Two compilations panicking at the same site share a digest: crash
	// signatures aggregate.
	_, err2 := Compile(robustSrc, Options{FaultHook: hook, Request: "r2"})
	d2, _ := diag.As(err2)
	if digestRe.FindString(d.Msg) != digestRe.FindString(d2.Msg) {
		t.Errorf("same crash site, different digests:\n%s\n%s", d.Msg, d2.Msg)
	}
}

// TestFaultHookError: a hook error fails the pass with a diagnostic naming
// it; products of the completed passes stay, later ones never run.
func TestFaultHookError(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == PassCodegen {
			return errors.New("injected hook failure")
		}
		return nil
	}
	ctx, err := Compile(robustSrc, Options{FaultHook: hook})
	if err == nil {
		t.Fatal("hook error ignored")
	}
	d, ok := diag.As(err)
	if !ok || d.Stage != PassCodegen {
		t.Fatalf("error = %v, want codegen diagnostic", err)
	}
	if ctx.Sync == nil {
		t.Error("products before the failed pass lost")
	}
	if ctx.Code != nil || ctx.Graph != nil {
		t.Error("passes after the failure still ran")
	}
}

// TestRunCtxCancelled: an expired context stops the pipeline between passes
// with the context error and a diagnostic naming the pass it stopped at.
func TestRunCtxCancelled(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx, err := CompileCtx(cctx, robustSrc, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ctx.Diags.Errors()) == 0 {
		t.Error("cancellation left no diagnostic")
	}
	if len(ctx.Trace.Timings) != 0 {
		t.Error("cancelled pipeline still ran passes")
	}
}
