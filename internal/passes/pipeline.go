package passes

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/exact"
	"doacross/internal/lang"
	"doacross/internal/migrate"
	"doacross/internal/obs"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Options selects and configures the passes of a Pipeline. The zero value
// builds the default pipeline, equivalent to the historical hard-wired
// compile sequence.
type Options struct {
	// Unroll >= 2 inserts the unroll pass with that factor right after
	// parsing (0 and 1 insert nothing; invalid factors fail in the pass).
	Unroll int
	// Migrate inserts the source-level synchronization-migration pass after
	// dependence analysis.
	Migrate bool
	// NoIfConvert drops the ifconvert pass: guarded (IF ...) statements are
	// rejected with a positioned diagnostic instead of being lowered to
	// compare/select.
	NoIfConvert bool
	// FlowOnly limits synchronization insertion to loop-carried flow
	// dependences (syncop.Options.FlowOnly).
	FlowOnly bool
	// BaselineDeps runs the dependence analysis in baseline mode
	// (dep.Options.Baseline): the seed analyzer's syntactic matching, without
	// the precise GCD/Banerjee/enumeration decision procedure. Audits compile
	// a loop both ways and diff the results; production compiles leave it
	// false.
	BaselineDeps bool
	// Verify appends the static verification pass: re-derive the dependence
	// edges independently of the data-flow graph, audit the graph against
	// them, and lint the loop's synchronization (internal/check). Lint
	// findings of Error severity fail the compilation.
	Verify bool
	// Backend names the scheduling backend consumers of the compiled graph
	// should use ("" = "sync", the paper's heuristic; see BackendNames).
	// The compile passes themselves stop at the data-flow graph — the
	// facade's Program.Schedule and the batch pipeline resolve the name via
	// Backend() when they schedule.
	Backend string
	// Exact configures the exact branch-and-bound backend when Backend is
	// "exact" (trip count for the objective, node/time budget).
	Exact exact.Options
	// Dump lists pass names whose artifacts are rendered into the trace;
	// "all" (or "*") dumps every pass.
	Dump []string
	// Tracer, when non-nil, receives every pass execution (latency and
	// failure). internal/pipeline's metrics registry implements this.
	Tracer Tracer
	// FaultHook, when non-nil, is probed before every pass with the pass
	// name and the request label (internal/faults.Injector.Hook fits). A
	// returned error fails the pass; a panic is isolated like any pass
	// panic. Production pipelines leave it nil.
	FaultHook func(stage, name string) error
	// Request labels the compilation in fault probes and panic diagnostics
	// ("" outside the batch pipeline).
	Request string
	// Observer, when non-nil, records one span per executed pass into its
	// ring buffer, parented under ParentSpan (the batch pipeline passes its
	// per-request compile-stage span). A nil Observer costs one nil check
	// per pass.
	Observer *obs.Recorder
	// ParentSpan is the span the pass spans nest under (zero: the pass
	// spans are roots).
	ParentSpan obs.Span
}

// Tracer observes pass executions. Implementations must be safe for
// concurrent use when the same Options are shared across goroutines.
type Tracer interface {
	// ObservePass records one completed execution of the named pass.
	ObservePass(name string, d time.Duration)
	// PassError records a failed execution of the named pass.
	PassError(name string)
}

// Timing is one pass execution time.
type Timing struct {
	Pass     string
	Duration time.Duration
}

// Trace is the observability side of one compilation: per-pass timings in
// execution order, requested artifacts, and all collected diagnostics.
type Trace struct {
	// Timings holds one entry per executed pass, in order.
	Timings []Timing
	// Artifacts maps pass name to its rendered product, for the passes
	// requested via Options.Dump.
	Artifacts map[string]string
	// Diags are the diagnostics collected across all passes (warnings and,
	// when compilation failed, the final error).
	Diags diag.List
}

// Artifact returns the named pass's dumped artifact.
func (t *Trace) Artifact(pass string) (string, bool) {
	a, ok := t.Artifacts[pass]
	return a, ok
}

// Total returns the summed pass time.
func (t *Trace) Total() time.Duration {
	var total time.Duration
	for _, tm := range t.Timings {
		total += tm.Duration
	}
	return total
}

// String renders the per-pass timing table.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, tm := range t.Timings {
		fmt.Fprintf(&sb, "%-10s %12v\n", tm.Pass, tm.Duration)
	}
	fmt.Fprintf(&sb, "%-10s %12v\n", "total", t.Total())
	return sb.String()
}

// Context is the compile context threaded through the passes: the inputs,
// every intermediate product, and the trace. Passes fill the fields top to
// bottom; later passes read what earlier ones produced.
type Context struct {
	// Source is the unparsed loop source ("" when seeded with a Loop).
	Source string
	// Loop is the (possibly transformed) AST.
	Loop *lang.Loop
	// Analysis is the data-dependence analysis of Loop.
	Analysis *dep.Analysis
	// Sync is the DOACROSS form with synchronization operations.
	Sync *syncop.Loop
	// Code is the compiled three-address body of one iteration.
	Code *tac.Program
	// Graph is the synchronization-augmented data-flow graph.
	Graph *dfg.Graph
	// UnrollFactor is the applied unroll factor (0 when not unrolled).
	UnrollFactor int
	// Migration is the synchronization-migration result (nil when the pass
	// did not run).
	Migration *migrate.Result
	// IfConverted lists the labels of guarded statements the ifconvert pass
	// cleared for lowering.
	IfConverted []string
	// VerifyEdges is the number of dependence edges the verify pass
	// re-derived and cross-checked against the graph (0 unless it ran).
	VerifyEdges int
	// LintFindings are the synchronization-linter findings of the verify
	// pass (also appended to Diags).
	LintFindings diag.List
	// Diags collects every diagnostic reported so far.
	Diags diag.List
	// Trace holds timings and artifacts.
	Trace *Trace

	// ifConvertOK records that the ifconvert pass ran, authorizing the code
	// generator to lower guarded statements.
	ifConvertOK bool
}

// Pipeline is an ordered list of passes built from Options.
type Pipeline struct {
	passes []Pass
	opts   Options
}

// New builds the pipeline for the given options:
//
//	parse [unroll] [ifconvert] analyze [migrate] syncinsert codegen graph [verify]
func New(opts Options) *Pipeline {
	ps := make([]Pass, 0, 8)
	ps = append(ps, parsePass{})
	if opts.Unroll != 0 && opts.Unroll != 1 {
		// Invalid (negative) factors still get the pass, so they fail with
		// a positioned diagnostic instead of being silently ignored.
		ps = append(ps, unrollPass{factor: opts.Unroll})
	}
	if !opts.NoIfConvert {
		ps = append(ps, ifConvertPass{})
	}
	ps = append(ps, analyzePass{baseline: opts.BaselineDeps})
	if opts.Migrate {
		ps = append(ps, migratePass{baseline: opts.BaselineDeps})
	}
	ps = append(ps,
		syncInsertPass{flowOnly: opts.FlowOnly},
		codegenPass{},
		graphPass{},
	)
	if opts.Verify {
		ps = append(ps, verifyPass{})
	}
	return &Pipeline{passes: ps, opts: opts}
}

// Names returns the pass names in execution order.
func (p *Pipeline) Names() []string {
	out := make([]string, len(p.passes))
	for i, pass := range p.passes {
		out[i] = pass.Name()
	}
	return out
}

// dump reports whether the named pass's artifact was requested.
func (p *Pipeline) dump(name string) bool {
	for _, d := range p.opts.Dump {
		if d == name || d == "all" || d == "*" {
			return true
		}
	}
	return false
}

// runPass executes one pass, converting a panic — in the pass itself or in
// the fault hook — into a structured diagnostic carrying the pass name, the
// request label and a stack digest, so a poisoned compilation never unwinds
// past the pass manager.
func (p *Pipeline) runPass(pass Pass, ctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Tracers that additionally count panics (the batch pipeline's
			// metrics registry) get told; plain tracers still see the
			// failure via PassError.
			if pp, ok := p.opts.Tracer.(interface{ PassPanic(name string) }); ok {
				pp.PassPanic(pass.Name())
			}
			err = diag.FromPanic(pass.Name(), p.opts.Request, r, debug.Stack())
		}
	}()
	if p.opts.FaultHook != nil {
		if err := p.opts.FaultHook(pass.Name(), p.opts.Request); err != nil {
			return diag.Errorf(pass.Name(), diag.Pos{}, "%v", err)
		}
	}
	return pass.Run(ctx)
}

// Run threads the context through every pass in order, recording timings,
// artifacts and diagnostics. On the first pass failure it records the error
// as a diagnostic and stops; the context keeps the products of the passes
// that did complete. A pass that panics fails with a structured diagnostic
// instead of unwinding.
func (p *Pipeline) Run(ctx *Context) error {
	return p.RunCtx(context.Background(), ctx)
}

// RunCtx is Run under a cancellation context, checked before every pass: a
// compilation caught by a batch deadline stops between passes and reports
// the context error (the completed passes' products stay in the context).
func (p *Pipeline) RunCtx(cctx context.Context, ctx *Context) error {
	if ctx.Trace == nil {
		ctx.Trace = &Trace{Timings: make([]Timing, 0, len(p.passes))}
	}
	for _, pass := range p.passes {
		if err := cctx.Err(); err != nil {
			err = fmt.Errorf("passes: %s: %w", pass.Name(), err)
			ctx.Diags = append(ctx.Diags, diag.Errorf(pass.Name(), diag.Pos{}, "%v", err))
			ctx.Trace.Diags = ctx.Diags
			return err
		}
		sp := p.opts.Observer.Start(obs.KindPass, pass.Name(), p.opts.ParentSpan)
		start := time.Now()
		err := p.runPass(pass, ctx)
		d := time.Since(start)
		p.opts.Observer.End(&sp, err)
		ctx.Trace.Timings = append(ctx.Trace.Timings, Timing{Pass: pass.Name(), Duration: d})
		if p.opts.Tracer != nil {
			p.opts.Tracer.ObservePass(pass.Name(), d)
			if err != nil {
				p.opts.Tracer.PassError(pass.Name())
			}
		}
		if err != nil {
			if dg, ok := diag.As(err); ok {
				ctx.Diags = append(ctx.Diags, dg)
			} else {
				ctx.Diags = append(ctx.Diags, diag.Errorf(pass.Name(), diag.Pos{}, "%v", err))
			}
			ctx.Trace.Diags = ctx.Diags
			return err
		}
		if p.dump(pass.Name()) {
			if a := pass.Artifact(ctx); a != "" {
				if ctx.Trace.Artifacts == nil {
					ctx.Trace.Artifacts = map[string]string{}
				}
				ctx.Trace.Artifacts[pass.Name()] = a
			}
		}
	}
	ctx.Trace.Diags = ctx.Diags
	return nil
}

// RunSource compiles loop source text through the pipeline.
func (p *Pipeline) RunSource(src string) (*Context, error) {
	return p.RunSourceCtx(context.Background(), src)
}

// RunSourceCtx is RunSource under a cancellation context.
func (p *Pipeline) RunSourceCtx(cctx context.Context, src string) (*Context, error) {
	ctx := &Context{Source: src}
	err := p.RunCtx(cctx, ctx)
	return ctx, err
}

// RunLoop compiles an already parsed loop through the pipeline. The loop is
// not modified: transforming passes (unroll, migrate) replace ctx.Loop with
// a rewritten copy.
func (p *Pipeline) RunLoop(loop *lang.Loop) (*Context, error) {
	return p.RunLoopCtx(context.Background(), loop)
}

// RunLoopCtx is RunLoop under a cancellation context.
func (p *Pipeline) RunLoopCtx(cctx context.Context, loop *lang.Loop) (*Context, error) {
	ctx := &Context{Loop: loop}
	err := p.RunCtx(cctx, ctx)
	return ctx, err
}

// Compile is the one-shot convenience: build the pipeline for opts and run
// src through it.
func Compile(src string, opts Options) (*Context, error) {
	return New(opts).RunSource(src)
}

// CompileCtx is Compile under a cancellation context, checked between
// passes.
func CompileCtx(cctx context.Context, src string, opts Options) (*Context, error) {
	return New(opts).RunSourceCtx(cctx, src)
}

// CompileLoop is Compile over an already parsed loop.
func CompileLoop(loop *lang.Loop, opts Options) (*Context, error) {
	return New(opts).RunLoop(loop)
}

// CompileLoopCtx is CompileLoop under a cancellation context.
func CompileLoopCtx(cctx context.Context, loop *lang.Loop, opts Options) (*Context, error) {
	return New(opts).RunLoopCtx(cctx, loop)
}
