package passes

import (
	"fmt"
	"strings"

	"doacross/internal/core"
	"doacross/internal/exact"
)

// BackendConfig carries the per-backend knobs a resolved Scheduler is built
// with. The zero value configures every backend with its defaults (the
// paper's heuristic, critical-path list priority, the exact solver's
// default trip count and node budget).
type BackendConfig struct {
	// Sync configures the paper's heuristic ("sync" backend).
	Sync core.SyncOptions
	// Exact configures the branch-and-bound solver ("exact" backend).
	Exact exact.Options
}

// BackendNames lists the recognized scheduling backend names, sorted. The
// empty name is accepted as an alias for "sync" (the paper's heuristic, the
// historical default).
func BackendNames() []string {
	return []string{"best", "exact", "list", "order", "sync"}
}

// Backend resolves a backend name to its Scheduler:
//
//	""/"sync"  the paper's Sig/Wat/Sigwat heuristic
//	"list"     critical-path list scheduling (no sync awareness)
//	"order"    program-order list scheduling (the naive baseline)
//	"best"     the never-degrades pick among sync and both list baselines
//	"exact"    the branch-and-bound solver (internal/exact)
//
// Unknown names fail with the accepted list, so a mistyped -backend flag
// surfaces before any compilation work happens.
func Backend(name string, cfg BackendConfig) (core.Scheduler, error) {
	switch name {
	case "", "sync":
		return core.SyncScheduler{Opts: cfg.Sync}, nil
	case "list":
		return core.ListScheduler{Priority: core.CriticalPath}, nil
	case "order":
		return core.ListScheduler{Priority: core.ProgramOrder}, nil
	case "best":
		return core.BestScheduler{}, nil
	case "exact":
		return exact.Backend{Opt: cfg.Exact}, nil
	default:
		return nil, fmt.Errorf("passes: unknown scheduling backend %q (have %s)",
			name, strings.Join(BackendNames(), ", "))
	}
}
