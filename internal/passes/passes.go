// Package passes is the pass manager of the compilation pipeline: an
// explicit, composable replacement for the hard-wired
// parse → analyze → sync-insert → codegen → graph sequence that used to be
// duplicated across doacross.CompileLoop, Unroll, Migrate, internal/pipeline
// and the cmd/ tools.
//
// A Pass is a named stage that advances a CompileContext; a Pipeline is an
// ordered list of passes built from Options, with the optional
// source-to-source transformations (unroll, migrate, if-conversion) inserted
// as first-class passes rather than recompile wrappers. The pipeline records
// per-pass wall-clock timings and rendered intermediate artifacts (the
// paper's Fig. 1(b)/2/3 views) into a Trace, reports them to an optional
// Tracer (internal/pipeline's metrics registry implements it), and collects
// structured diagnostics (internal/diag) with source positions from every
// stage.
//
// The default pipeline is byte-for-byte equivalent to the old hard-wired
// sequence:
//
//	parse → ifconvert → analyze → syncinsert → codegen → graph
package passes

import (
	"fmt"
	"strings"

	"doacross/internal/check"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/lang"
	"doacross/internal/migrate"
	"doacross/internal/syncop"
	"doacross/internal/tac"
	"doacross/internal/unroll"
)

// Pass is one named compilation stage. Run advances the context; Artifact
// renders the stage's product for -dump style inspection (it must only be
// called after Run succeeded, and may return "" when the pass has nothing
// presentable).
type Pass interface {
	Name() string
	Run(*Context) error
	Artifact(*Context) string
}

// Pass names of the default and optional passes.
const (
	PassParse      = "parse"
	PassUnroll     = "unroll"
	PassIfConvert  = "ifconvert"
	PassAnalyze    = "analyze"
	PassMigrate    = "migrate"
	PassSyncInsert = "syncinsert"
	PassCodegen    = "codegen"
	PassGraph      = "graph"
	PassVerify     = "verify"
)

// parsePass turns source text into a Loop. A context seeded with an already
// parsed Loop skips the work but still reports the pass (count, ~0 latency),
// so traces stay uniform.
type parsePass struct{}

func (parsePass) Name() string { return PassParse }

func (parsePass) Run(ctx *Context) error {
	if ctx.Loop != nil {
		return nil
	}
	loop, err := lang.Parse(ctx.Source)
	if err != nil {
		return err
	}
	ctx.Loop = loop
	return nil
}

func (parsePass) Artifact(ctx *Context) string { return ctx.Loop.String() }

// unrollPass unrolls the loop by a fixed factor before analysis, replacing
// the Program.Unroll recompile wrapper.
type unrollPass struct{ factor int }

func (unrollPass) Name() string { return PassUnroll }

func (p unrollPass) Run(ctx *Context) error {
	r, err := unroll.Unroll(ctx.Loop, p.factor)
	if err != nil {
		return diag.Errorf("unroll", ctx.Loop.Pos(), "%v", err)
	}
	ctx.Loop = r.Loop
	ctx.UnrollFactor = r.Factor
	return nil
}

func (p unrollPass) Artifact(ctx *Context) string {
	return fmt.Sprintf("! unrolled by %d\n%s", ctx.UnrollFactor, ctx.Loop)
}

// ifConvertPass authorizes and records the if-conversion of guarded
// statements. The compare/select lowering itself lives in the code
// generator; without this pass in the pipeline (Options.NoIfConvert) the
// codegen pass rejects guarded statements with a positioned diagnostic
// instead of lowering them.
type ifConvertPass struct{}

func (ifConvertPass) Name() string { return PassIfConvert }

func (ifConvertPass) Run(ctx *Context) error {
	ctx.ifConvertOK = true
	ctx.IfConverted = nil
	for _, st := range ctx.Loop.Body {
		if st.Cond != nil {
			ctx.IfConverted = append(ctx.IfConverted, st.Label)
		}
	}
	return nil
}

func (ifConvertPass) Artifact(ctx *Context) string {
	if len(ctx.IfConverted) == 0 {
		return "no guarded statements\n"
	}
	var sb strings.Builder
	for _, label := range ctx.IfConverted {
		st := ctx.Loop.Stmt(label)
		fmt.Fprintf(&sb, "if-converted %s (%s): %s\n", label, st.Pos(), st)
	}
	return sb.String()
}

// analyzePass runs the data-dependence analysis and surfaces its
// conservative-assumption warnings as diagnostics.
type analyzePass struct{ baseline bool }

func (analyzePass) Name() string { return PassAnalyze }

func (p analyzePass) Run(ctx *Context) error {
	ctx.Analysis = dep.AnalyzeOpts(ctx.Loop, dep.Options{Baseline: p.baseline})
	ctx.Diags = append(ctx.Diags, ctx.Analysis.Diagnostics()...)
	return nil
}

func (analyzePass) Artifact(ctx *Context) string {
	var sb strings.Builder
	for _, d := range ctx.Analysis.Deps {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	if len(ctx.Analysis.Deps) == 0 {
		sb.WriteString("no dependences (DOALL)\n")
	}
	if len(ctx.Analysis.Pairs) > 0 {
		exact, indep, cons := ctx.Analysis.Counts()
		fmt.Fprintf(&sb, "-- decisions: %d exact, %d independent, %d conservative\n",
			exact, indep, cons)
		for i := range ctx.Analysis.Pairs {
			fmt.Fprintf(&sb, "%s\n", &ctx.Analysis.Pairs[i])
		}
	}
	return sb.String()
}

// migratePass applies source-level synchronization migration (statement
// reordering) and re-analyzes the reordered loop, replacing the
// Program.Migrate + CompileLoop recompile wrapper.
type migratePass struct{ baseline bool }

func (migratePass) Name() string { return PassMigrate }

func (p migratePass) Run(ctx *Context) error {
	r, err := migrate.Migrate(ctx.Analysis)
	if err != nil {
		if _, ok := diag.As(err); ok {
			return err
		}
		return diag.Errorf("migrate", ctx.Loop.Pos(), "%v", err)
	}
	ctx.Migration = r
	ctx.Loop = r.Loop
	ctx.Analysis = dep.AnalyzeOpts(r.Loop, dep.Options{Baseline: p.baseline})
	return nil
}

func (migratePass) Artifact(ctx *Context) string {
	return fmt.Sprintf("! migration: %d -> %d LBD (moved=%v)\n%s",
		ctx.Migration.Before, ctx.Migration.After, ctx.Migration.Moved, ctx.Loop)
}

// syncInsertPass converts the analyzed DO loop to DOACROSS form with
// Send_Signal/Wait_Signal operations (the Fig. 1(b) view).
type syncInsertPass struct{ flowOnly bool }

func (syncInsertPass) Name() string { return PassSyncInsert }

func (p syncInsertPass) Run(ctx *Context) error {
	ctx.Sync = syncop.Insert(ctx.Analysis, syncop.Options{FlowOnly: p.flowOnly})
	return nil
}

func (syncInsertPass) Artifact(ctx *Context) string { return ctx.Sync.String() }

// codegenPass lowers the synchronized loop to three-address code (the
// Fig. 2 view). Guarded statements require the ifconvert pass to have run;
// otherwise they are rejected with a positioned diagnostic.
type codegenPass struct{}

func (codegenPass) Name() string { return PassCodegen }

func (codegenPass) Run(ctx *Context) error {
	if !ctx.ifConvertOK {
		for _, st := range ctx.Loop.Body {
			if st.Cond != nil {
				return diag.Errorf("tac", st.Pos(),
					"guarded statement requires the ifconvert pass (disabled by options)").WithStmt(st.Label)
			}
		}
	}
	code, err := tac.Generate(ctx.Sync)
	if err != nil {
		return err
	}
	ctx.Code = code
	return nil
}

func (codegenPass) Artifact(ctx *Context) string { return tac.Listing(ctx.Code.Instrs) }

// graphPass builds the synchronization-augmented data-flow graph and its
// Sig/Wat/Sigwat partition (the Fig. 3 view).
type graphPass struct{}

func (graphPass) Name() string { return PassGraph }

func (graphPass) Run(ctx *Context) error {
	g, err := dfg.Build(ctx.Code, ctx.Analysis)
	if err != nil {
		return err
	}
	ctx.Graph = g
	return nil
}

func (graphPass) Artifact(ctx *Context) string { return ctx.Graph.SyncInfo() }

// verifyPass is the opt-in static verification stage: it re-derives the
// dependence edges from the compiled code and the analysis (internal/check,
// which deliberately shares no code with internal/dfg), audits the built
// data-flow graph against them — every derived edge must be present, or
// the graph the schedulers are about to consume is missing a constraint —
// and runs the synchronization linter over both the compiler-inserted sync
// ops and any explicit Send_Signal/Wait_Signal statements of the source.
// Lint findings land in the diagnostics; findings of Error severity (a
// statically deadlocking source, a missing graph arc) fail the pass.
type verifyPass struct{}

func (verifyPass) Name() string { return PassVerify }

func (verifyPass) Run(ctx *Context) error {
	edges, err := check.Edges(ctx.Code)
	if err != nil {
		return diag.Errorf(check.Stage, ctx.Loop.Pos(), "%v", err)
	}
	ctx.VerifyEdges = len(edges)
	present := make(map[[2]int]bool, len(ctx.Graph.Arcs))
	for _, a := range ctx.Graph.Arcs {
		present[[2]int{a.From, a.To}] = true
	}
	for _, e := range edges {
		if !present[[2]int{e.From, e.To}] {
			return diag.Errorf(check.Stage, ctx.Loop.Pos(),
				"dfg audit: derived %s edge %d->%d missing from the data-flow graph", e.Kind, e.From+1, e.To+1)
		}
	}
	lint := append(check.Lint(ctx.Loop), check.LintSync(ctx.Sync)...)
	ctx.LintFindings = lint
	ctx.Diags = append(ctx.Diags, lint...)
	if errs := lint.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func (verifyPass) Artifact(ctx *Context) string {
	return fmt.Sprintf("verified %d derived dependence edges against the data-flow graph\n%d lint findings\n",
		ctx.VerifyEdges, len(ctx.LintFindings))
}
