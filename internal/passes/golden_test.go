package passes

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFig1GoldenArtifacts pins the -dump artifacts of the paper's Fig. 1(a)
// loop to golden files: the synchronized DOACROSS form (Fig. 1(b)), the
// three-address code (Fig. 2), and the data-flow graph summary (Fig. 3).
// Regenerate with: go test ./internal/passes -run Golden -update
func TestFig1GoldenArtifacts(t *testing.T) {
	ctx, err := Compile(fig1, Options{Dump: []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{PassAnalyze, PassSyncInsert, PassCodegen, PassGraph} {
		got, ok := ctx.Trace.Artifact(pass)
		if !ok {
			t.Fatalf("no %s artifact", pass)
		}
		path := filepath.Join("testdata", "fig1_"+pass+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if got != string(want) {
			t.Errorf("%s artifact diverges from %s:\n-- got --\n%s\n-- want --\n%s",
				pass, path, got, want)
		}
	}
}
