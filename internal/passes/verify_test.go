package passes

import (
	"strings"
	"testing"
)

func TestVerifyPassAuditsGraph(t *testing.T) {
	ctx, err := Compile(fig1, Options{Verify: true, Dump: []string{PassVerify}})
	if err != nil {
		t.Fatalf("verify pass failed on the Fig. 1 loop: %v", err)
	}
	if ctx.VerifyEdges == 0 {
		t.Error("verify pass derived no edges")
	}
	names := New(Options{Verify: true}).Names()
	if names[len(names)-1] != PassVerify {
		t.Errorf("verify pass not last: %v", names)
	}
	a, ok := ctx.Trace.Artifact(PassVerify)
	if !ok || !strings.Contains(a, "verified") {
		t.Errorf("verify artifact = %q, %v", a, ok)
	}
	found := false
	for _, tm := range ctx.Trace.Timings {
		if tm.Pass == PassVerify {
			found = true
		}
	}
	if !found {
		t.Error("no verify timing recorded")
	}
}

func TestVerifyPassRejectsDeadlockingSource(t *testing.T) {
	// The wait on S2 has no matching send: a static deadlock the linter
	// must fail the compilation for (only under Options.Verify).
	src := `DOACROSS I = 1, N
  Wait_Signal(S2, I-1)
  S1: A[I] = B[I-1] + 1
  Send_Signal(S1)
  S2: B[I] = A[I-1] * 2
ENDDO`
	if _, err := Compile(src, Options{}); err != nil {
		t.Fatalf("default pipeline must ignore explicit sync: %v", err)
	}
	ctx, err := Compile(src, Options{Verify: true})
	if err == nil {
		t.Fatal("verify pass accepted a statically deadlocking loop")
	}
	if !strings.Contains(err.Error(), "static deadlock") {
		t.Errorf("error %q does not mention the deadlock", err)
	}
	if len(ctx.LintFindings) == 0 {
		t.Error("no lint findings recorded in the context")
	}
}
