// Package scheditest is the shared conformance suite for scheduling
// backends: one table-driven battery, run against every implementation of
// core.Scheduler, asserting the contract the pipeline and the facade rely
// on — schedules that validate and pass the independent verifier,
// deterministic results, self-consistent optimality evidence, and the
// analytical bound T = (n/d)(i-j)+l never exceeding the simulated time.
//
// New backends get the whole battery for one Run call; a backend that
// cannot honor the contract fails here before it can corrupt a cache or a
// golden table.
package scheditest

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Case is one conformance corpus entry.
type Case struct {
	// Name labels the subtest.
	Name string
	// Graph is the compiled scheduling problem.
	Graph *dfg.Graph
}

// Corpus compiles the kernel corpus under dir (testdata/kernels at the repo
// root) into conformance cases, in name order. Multi-loop files contribute
// "<name>#k" cases.
func Corpus(t testing.TB, dir string) []Case {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scheditest: %v", err)
	}
	var cases []Case
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".loop") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("scheditest: %v", err)
		}
		name := strings.TrimSuffix(e.Name(), ".loop")
		f, err := lang.ParseFile(string(b))
		if err != nil {
			t.Fatalf("scheditest: %s: %v", name, err)
		}
		for i, l := range f.Loops {
			a := dep.Analyze(l)
			prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
			if err != nil {
				t.Fatalf("scheditest: %s: %v", name, err)
			}
			g, err := dfg.Build(prog, a)
			if err != nil {
				t.Fatalf("scheditest: %s: %v", name, err)
			}
			label := name
			if len(f.Loops) > 1 {
				label = name + "#" + string(rune('1'+i))
			}
			cases = append(cases, Case{Name: label, Graph: g})
		}
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	if len(cases) < 10 {
		t.Fatalf("scheditest: corpus too small: %d cases in %s", len(cases), dir)
	}
	return cases
}

// Options tunes a conformance run.
type Options struct {
	// N is the trip count for the Predict-vs-simulation check (0 = 100).
	N int
	// Configs are the machine shapes to run (nil = the paper's four).
	Configs []dlx.Config
	// Short limits each (backend, config) to the first Short cases — for
	// -short CI runs of expensive backends (0 = all).
	Short int
}

func (o Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o Options) configs() []dlx.Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return dlx.PaperConfigs()
}

// Run exercises one backend against the corpus on every machine shape. For
// every case it asserts:
//
//   - Schedule returns a non-nil schedule that passes Schedule.Validate and
//     the independent verifier (internal/check).
//   - Two runs produce identical cycle assignments and identical outcome
//     evidence (determinism — the cache and golden tables rely on it).
//   - The closed-form prediction T = (n/d)(i-j)+l never exceeds the
//     simulated parallel time (the model is a lower bound on execution).
//   - The outcome's evidence is self-consistent: a claimed objective T
//     matches model.Predict; Optimal implies LowerBound == T and an empty
//     note; non-Optimal exact evidence implies a diagnostic note.
func Run(t *testing.T, sched core.Scheduler, cases []Case, opt Options) {
	n := opt.n()
	for _, cfg := range opt.configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			run := cases
			if opt.Short > 0 && len(run) > opt.Short {
				run = run[:opt.Short]
			}
			for _, c := range run {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					out, err := sched.Schedule(c.Graph, cfg)
					if err != nil {
						t.Fatalf("%s: %v", sched.Name(), err)
					}
					if out == nil || out.Schedule == nil {
						t.Fatalf("%s: nil outcome schedule", sched.Name())
					}
					s := out.Schedule
					if err := s.Validate(); err != nil {
						t.Fatalf("%s: schedule failed validation: %v", sched.Name(), err)
					}
					if err := check.Err(check.Verify(s)); err != nil {
						t.Fatalf("%s: independent verifier rejected schedule: %v", sched.Name(), err)
					}
					// Determinism: an identical second run.
					out2, err := sched.Schedule(c.Graph, cfg)
					if err != nil {
						t.Fatalf("%s: second run: %v", sched.Name(), err)
					}
					if out2.T != out.T || out2.Optimal != out.Optimal ||
						out2.LowerBound != out.LowerBound || out2.Nodes != out.Nodes {
						t.Fatalf("%s: nondeterministic outcome: %+v vs %+v", sched.Name(), out, out2)
					}
					for v := range s.Cycle {
						if out2.Schedule.Cycle[v] != s.Cycle[v] {
							t.Fatalf("%s: nondeterministic schedule: node %d at cycle %d then %d",
								sched.Name(), v, s.Cycle[v], out2.Schedule.Cycle[v])
						}
					}
					// The analytical model must lower-bound the simulation.
					predicted := model.Predict(s, n)
					tm, err := sim.Time(s, sim.Options{Lo: 1, Hi: n})
					if err != nil {
						t.Fatalf("%s: simulate: %v", sched.Name(), err)
					}
					if predicted > tm.Total {
						t.Fatalf("%s: Predict=%d exceeds simulated %d at n=%d",
							sched.Name(), predicted, tm.Total, n)
					}
					// Evidence self-consistency.
					if out.T != 0 && out.T != model.Predict(s, 100) {
						t.Fatalf("%s: outcome T=%d but Predict(n=100)=%d",
							sched.Name(), out.T, model.Predict(s, 100))
					}
					if out.LowerBound > 0 && out.T > 0 && out.LowerBound > out.T {
						t.Fatalf("%s: lower bound %d above T=%d", sched.Name(), out.LowerBound, out.T)
					}
					if out.Optimal {
						if out.LowerBound != out.T {
							t.Fatalf("%s: optimal but LowerBound=%d != T=%d",
								sched.Name(), out.LowerBound, out.T)
						}
						if out.Note != "" {
							t.Fatalf("%s: optimal outcome carries note %q", sched.Name(), out.Note)
						}
					}
				})
			}
		})
	}
}
