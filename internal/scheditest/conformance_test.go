package scheditest

import (
	"path/filepath"
	"testing"

	"doacross/internal/exact"
	"doacross/internal/passes"
)

// kernelDir locates the shared kernel corpus from this package.
var kernelDir = filepath.Join("..", "..", "testdata", "kernels")

// TestBackendConformance runs the shared battery against every registered
// backend, heuristic and exact alike, on every paper machine shape.
func TestBackendConformance(t *testing.T) {
	cases := Corpus(t, kernelDir)
	for _, name := range passes.BackendNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := passes.BackendConfig{}
			opt := Options{}
			if name == "exact" {
				// The default node budget proves most of the corpus optimal
				// and returns an anytime bound on the rest; -short trims the
				// case list to keep the -race CI lane quick.
				cfg.Exact = exact.Options{MaxNodes: exact.DefaultMaxNodes}
				if testing.Short() {
					opt.Short = 6
				}
			}
			sched, err := passes.Backend(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sched.Name() != name {
				t.Fatalf("Backend(%q).Name() = %q", name, sched.Name())
			}
			Run(t, sched, cases, opt)
		})
	}
}

// TestBackendUnknownName pins the seam's error contract: a mistyped backend
// fails fast, naming the accepted list.
func TestBackendUnknownName(t *testing.T) {
	if _, err := passes.Backend("exacto", passes.BackendConfig{}); err == nil {
		t.Fatal("unknown backend name accepted")
	}
	if s, err := passes.Backend("", passes.BackendConfig{}); err != nil || s.Name() != "sync" {
		t.Fatalf("empty backend name: %v, %v", s, err)
	}
}
