package perfect

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

func TestProfilesShape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("got %d profiles, want 5", len(ps))
	}
	wantOrder := []string{"FLQ52", "QCD", "MDG", "TRACK", "ADM"}
	for i, p := range ps {
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, wantOrder[i])
		}
		if p.N != 100 {
			t.Errorf("%s: N = %d, want 100 (paper's trip count)", p.Name, p.N)
		}
		if p.MaxDistance < 1 {
			t.Errorf("%s: MaxDistance = %d", p.Name, p.MaxDistance)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	s1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Loops) != len(s2.Loops) {
		t.Fatal("nondeterministic loop count")
	}
	for i := range s1.Loops {
		if s1.Loops[i].Source != s2.Loops[i].Source {
			t.Errorf("loop %d differs between runs", i)
		}
	}
}

func TestSuitesGenerate(t *testing.T) {
	suites, err := Suites()
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 5 {
		t.Fatalf("got %d suites", len(suites))
	}
	for _, s := range suites {
		wantLoops := 0
		for _, mc := range s.Profile.Mix {
			wantLoops += mc.Count
		}
		if len(s.Loops) != wantLoops {
			t.Errorf("%s: %d loops, want %d", s.Profile.Name, len(s.Loops), wantLoops)
		}
	}
}

func TestTemplatesValidatedByConstruction(t *testing.T) {
	for _, s := range MustSuites() {
		for i, l := range s.Loops {
			a := dep.Analyze(l.AST)
			switch l.Template {
			case Doall:
				if !a.IsDoall() {
					t.Errorf("%s loop %d: DOALL template carries deps:\n%s", s.Profile.Name, i, l.Source)
				}
			case ForwardDep:
				lfd, lbd := a.CountLexical()
				if lfd == 0 || lbd != 0 {
					t.Errorf("%s loop %d: forward template has (lfd=%d,lbd=%d)", s.Profile.Name, i, lfd, lbd)
				}
			case TrueRecurrence, ControlDep:
				prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
				if err != nil {
					t.Fatal(err)
				}
				g, err := dfg.Build(prog, a)
				if err != nil {
					t.Fatal(err)
				}
				if len(g.SyncPaths()) == 0 {
					t.Errorf("%s loop %d: true recurrence has no sync path:\n%s", s.Profile.Name, i, l.Source)
				}
			case Reduction, Induction, ConvertibleLBD:
				if a.IsDoall() {
					t.Errorf("%s loop %d: %v template is DOALL", s.Profile.Name, i, l.Template)
				}
			}
		}
	}
}

func TestTable1Characteristics(t *testing.T) {
	for _, s := range MustSuites() {
		c, err := s.Characteristics()
		if err != nil {
			t.Fatal(err)
		}
		if c.TotalLoops != len(s.Loops) {
			t.Errorf("%s: total loops %d != %d", c.Name, c.TotalLoops, len(s.Loops))
		}
		if c.DoallLoops >= c.TotalLoops {
			t.Errorf("%s: all loops DOALL", c.Name)
		}
		if c.DLXLines == 0 || c.SourceLines == 0 {
			t.Errorf("%s: empty characteristics %+v", c.Name, c)
		}
		// Paper: FLQ52, QCD and TRACK are all-LBD.
		switch c.Name {
		case "FLQ52", "QCD", "TRACK":
			if c.LFD != 0 {
				t.Errorf("%s: LFD = %d, want 0 (all-LBD benchmark)", c.Name, c.LFD)
			}
			if c.LBD == 0 {
				t.Errorf("%s: no LBDs", c.Name)
			}
		case "MDG", "ADM":
			if c.LFD == 0 || c.LBD == 0 {
				t.Errorf("%s: want mixed LFD/LBD, got %d/%d", c.Name, c.LFD, c.LBD)
			}
			if c.LFD >= c.LBD {
				t.Errorf("%s: LBDs should dominate (%d LFD vs %d LBD)", c.Name, c.LFD, c.LBD)
			}
		}
	}
}

func TestDoacrossSubset(t *testing.T) {
	s := MustSuites()[0]
	da := s.Doacross()
	if len(da) >= len(s.Loops) {
		t.Error("Doacross() should exclude the DOALL loops")
	}
	for _, l := range da {
		if l.Template == Doall {
			t.Error("Doacross() returned a DOALL loop")
		}
	}
}

func TestAllDoacrossLoopsCompileAndSchedule(t *testing.T) {
	for _, s := range MustSuites() {
		for i, l := range s.Doacross() {
			a := dep.Analyze(l.AST)
			prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
			if err != nil {
				t.Fatalf("%s loop %d: %v", s.Profile.Name, i, err)
			}
			if _, err := dfg.Build(prog, a); err != nil {
				t.Fatalf("%s loop %d: %v", s.Profile.Name, i, err)
			}
		}
	}
}

// TestSuitesGolden pins the generated workload bit for bit: every number in
// EXPERIMENTS.md and REPORT.md depends on these sources, so an accidental
// generator change must fail loudly. When the profiles are changed on
// purpose, update the hash and regenerate the documented results.
func TestSuitesGolden(t *testing.T) {
	h := sha256.New()
	for _, s := range MustSuites() {
		for _, l := range s.Loops {
			h.Write([]byte(l.Source))
		}
	}
	const want = "e5fe0b133833589e6a1e031bb69e0ce201fa3fe1642acd9074cde9ccd41f5293"
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Errorf("suite sources changed: hash %s (expected %s).\nIf intentional, update the hash and regenerate EXPERIMENTS.md/REPORT.md.", got, want)
	}
}

func TestQCDIsTight(t *testing.T) {
	// QCD's profile promises tight recurrences: little filler, so its
	// DOACROSS bodies are much smaller than TRACK's.
	suites := MustSuites()
	var qcd, track int
	for _, s := range suites {
		total, count := 0, 0
		for _, l := range s.Doacross() {
			total += len(l.AST.Body)
			count++
		}
		avg := total / count
		switch s.Profile.Name {
		case "QCD":
			qcd = avg
		case "TRACK":
			track = avg
		}
	}
	if qcd >= track {
		t.Errorf("QCD avg body %d >= TRACK avg body %d; profiles should differ", qcd, track)
	}
}
