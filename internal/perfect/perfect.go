// Package perfect synthesizes the evaluation workload: five benchmark
// suites standing in for the Perfect-benchmark programs the paper measures
// (FLQ52, QCD, MDG, TRACK, ADM).
//
// The real Perfect Benchmarks are FORTRAN 77 applications that the paper
// runs through Parafrase to extract the DO loops it cannot parallelize,
// converts to DOACROSS form, and compiles with a DLX compiler. Neither the
// benchmarks nor Parafrase are available, so this package generates
// deterministic loop suites whose aggregate characteristics follow the
// paper's Table 1 and §4.1 taxonomy:
//
//   - FLQ52, QCD and TRACK carry only lexically backward dependences (LBD);
//     MDG and ADM mix in a few forward ones (LFD).
//   - Loop bodies span the paper's DOACROSS types: induction variables
//     (type 3), reductions (type 4), simple subscript expressions (type 5)
//     and mixed/other (type 6).
//   - QCD is dominated by tight recurrences whose synchronization path is
//     essentially the whole body — the shape on which list scheduling is
//     already near-optimal and the paper measures its smallest improvement.
//   - TRACK and FLQ52 put many independent instructions between each
//     Wait_Signal and its sink, the shape on which the paper measures ~90 %
//     improvement.
//
// Every generated loop is validated against its intended dependence shape
// (via the dep analyzer and the dfg partition) at generation time, with
// bounded deterministic retries, so the suites are reproducible bit for bit.
package perfect

import (
	"fmt"
	"math/rand"
	"strings"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Template names a generated loop shape.
type Template int

// Loop templates, following the paper's DOACROSS taxonomy.
const (
	// TrueRecurrence is an unavoidable LBD: the dependence sink's value
	// flows into the dependence source (A[I] = f(A[I-d])), possibly through
	// a chain of intermediate statements. Its Sigwat graph has a real
	// synchronization path.
	TrueRecurrence Template = iota
	// ConvertibleLBD is an LBD whose sink and source statements are data
	// independent: the new scheduler can issue the send before the wait,
	// converting it to LFD.
	ConvertibleLBD
	// ForwardDep is an LFD: the source statement is textually first.
	ForwardDep
	// Reduction is the paper's type-4 DOACROSS (S = S + expr).
	Reduction
	// Induction is the paper's type-3 DOACROSS (a scalar recurrence feeding
	// the body).
	Induction
	// ControlDep is the paper's type-1 DOACROSS: a conditionally executed
	// recurrence (IF (cond) A[I] = f(A[I-d])). If-conversion turns it into
	// straight-line code with a merge load and select, and synchronization
	// is inserted conservatively as if the dependence always fires.
	ControlDep
	// Doall has no loop-carried dependence; it contributes to the Table 1
	// loop counts but needs no synchronization.
	Doall
)

// String names the template.
func (t Template) String() string {
	switch t {
	case TrueRecurrence:
		return "true-recurrence"
	case ConvertibleLBD:
		return "convertible-lbd"
	case ForwardDep:
		return "forward-dep"
	case Reduction:
		return "reduction"
	case Induction:
		return "induction"
	case ControlDep:
		return "control-dep"
	case Doall:
		return "doall"
	}
	return fmt.Sprintf("Template(%d)", int(t))
}

// TemplateCount is one entry of a profile's loop mix.
type TemplateCount struct {
	Template Template
	Count    int
}

// Profile describes one synthetic benchmark.
type Profile struct {
	Name        string
	Description string
	Seed        uint64
	Mix         []TemplateCount
	// MinFiller/MaxFiller bound the number of independent filler statements
	// inserted around the dependence pattern — the "distance from a Wat to
	// its corresponding Snk" knob of §4.2.
	MinFiller, MaxFiller int
	// MaxDistance bounds dependence distances (>= 1).
	MaxDistance int
	// ChainLen bounds the length of value chains inside true recurrences.
	ChainLen int
	// N is the trip count used in the experiments (the paper uses 100).
	N int
}

// Loop is one generated loop with its metadata.
type Loop struct {
	Template Template
	Source   string
	AST      *lang.Loop
}

// Suite is one generated benchmark.
type Suite struct {
	Profile Profile
	Loops   []Loop
}

// Profiles returns the five benchmark profiles in the paper's table order.
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "FLQ52",
			Description: "fluid dynamics; all-LBD loops with long independent sections",
			Seed:        0xF152,
			Mix: []TemplateCount{
				{TrueRecurrence, 5}, {ConvertibleLBD, 6}, {Reduction, 2}, {Doall, 4},
			},
			MinFiller: 12, MaxFiller: 20, MaxDistance: 3, ChainLen: 1, N: 100,
		},
		{
			Name:        "QCD",
			Description: "lattice gauge; tight recurrences with little slack",
			Seed:        0x9CD,
			Mix: []TemplateCount{
				{TrueRecurrence, 7}, {Reduction, 3}, {ControlDep, 1}, {Doall, 2},
			},
			MinFiller: 0, MaxFiller: 1, MaxDistance: 2, ChainLen: 0, N: 100,
		},
		{
			Name:        "MDG",
			Description: "molecular dynamics; mostly LBD with a few forward dependences",
			Seed:        0x3D6,
			Mix: []TemplateCount{
				{TrueRecurrence, 4}, {ConvertibleLBD, 6}, {ForwardDep, 2}, {Induction, 2}, {ControlDep, 2}, {Doall, 5},
			},
			MinFiller: 10, MaxFiller: 16, MaxDistance: 4, ChainLen: 2, N: 100,
		},
		{
			Name:        "TRACK",
			Description: "missile tracking; all-LBD, sinks far from their waits",
			Seed:        0x77AC,
			Mix: []TemplateCount{
				{TrueRecurrence, 3}, {ConvertibleLBD, 8}, {Reduction, 1}, {Doall, 3},
			},
			MinFiller: 14, MaxFiller: 22, MaxDistance: 2, ChainLen: 1, N: 100,
		},
		{
			Name:        "ADM",
			Description: "air pollution; large mixed loop population",
			Seed:        0xAD3,
			Mix: []TemplateCount{
				{TrueRecurrence, 6}, {ConvertibleLBD, 7}, {ForwardDep, 3}, {Reduction, 2}, {Induction, 2}, {ControlDep, 2}, {Doall, 6},
			},
			MinFiller: 8, MaxFiller: 14, MaxDistance: 4, ChainLen: 1, N: 100,
		},
	}
}

// Generate builds the suite for a profile. Generation is deterministic in
// the profile's seed.
func Generate(p Profile) (*Suite, error) {
	r := rand.New(rand.NewSource(int64(p.Seed)))
	s := &Suite{Profile: p}
	for _, mc := range p.Mix {
		for k := 0; k < mc.Count; k++ {
			loop, err := generateLoop(r, p, mc.Template)
			if err != nil {
				return nil, fmt.Errorf("perfect: %s loop %d (%v): %w", p.Name, k, mc.Template, err)
			}
			s.Loops = append(s.Loops, loop)
		}
	}
	return s, nil
}

// Suites generates all five benchmarks.
func Suites() ([]*Suite, error) {
	var out []*Suite
	for _, p := range Profiles() {
		s, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// MustSuites is Suites for known-good profiles.
func MustSuites() []*Suite {
	s, err := Suites()
	if err != nil {
		panic(err)
	}
	return s
}

// generateLoop builds one loop of the given template, retrying (with fresh
// randomness from r, which stays deterministic) until the generated loop
// verifiably has the intended dependence shape.
func generateLoop(r *rand.Rand, p Profile, tpl Template) (Loop, error) {
	const attempts = 64
	for a := 0; a < attempts; a++ {
		src := buildSource(r, p, tpl)
		loop, err := lang.Parse(src)
		if err != nil {
			return Loop{}, fmt.Errorf("generated source does not parse: %v\n%s", err, src)
		}
		if validate(loop, tpl) {
			return Loop{Template: tpl, Source: src, AST: loop}, nil
		}
	}
	return Loop{}, fmt.Errorf("no valid %v loop after %d attempts", tpl, attempts)
}

// validate checks the generated loop has the dependence shape its template
// promises.
func validate(loop *lang.Loop, tpl Template) bool {
	a := dep.Analyze(loop)
	switch tpl {
	case Doall:
		return a.IsDoall()
	case ForwardDep:
		if a.IsDoall() {
			return false
		}
		lfd, lbd := a.CountLexical()
		return lfd > 0 && lbd == 0
	case Reduction, Induction:
		return !a.IsDoall()
	}
	// LBD templates: must carry at least one backward dependence and build a
	// graph with the promised structure.
	lfd, lbd := a.CountLexical()
	if lbd == 0 || lfd > 0 {
		return false
	}
	prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		return false
	}
	g, err := dfg.Build(prog, a)
	if err != nil {
		return false
	}
	switch tpl {
	case TrueRecurrence, ControlDep:
		// The Sigwat component must contain a real synchronization path.
		return len(g.SyncPaths()) > 0
	case ConvertibleLBD:
		// At least one pair must be convertible: its wait cannot reach its
		// send, so the scheduler can order the send first. The simplest
		// sufficient witness is a pair arc candidate or a pair with no sync
		// path in a Sigwat component.
		if len(g.PairArcs()) > 0 {
			return true
		}
		pairs := 0
		for _, in := range prog.Instrs {
			if in.Op == tac.Wait {
				pairs++
			}
		}
		return pairs > len(g.SyncPaths())
	}
	return true
}

// name pools. Template arrays are disjoint from filler arrays so filler
// never creates accidental carried dependences.
var (
	coreArrays   = []string{"A", "B", "C", "D"}
	inputArrays  = []string{"E", "F", "G", "H"}
	fillerArrays = []string{"P", "Q", "R", "T", "U", "V", "W", "X", "Y", "Z"}
)

// buildSource emits the mini-FORTRAN source for one loop.
func buildSource(r *rand.Rand, p Profile, tpl Template) string {
	var body []string
	filler := func(k int) {
		for i := 0; i < k; i++ {
			dst := fillerArrays[r.Intn(len(fillerArrays))]
			a := inputArrays[r.Intn(len(inputArrays))]
			b := inputArrays[r.Intn(len(inputArrays))]
			op := []string{"+", "-", "*"}[r.Intn(3)]
			// The destination subscript is fixed at I+4 so two filler writes
			// to the same array stay loop-independent (distance 0), keeping
			// filler free of carried dependences by construction.
			body = append(body, fmt.Sprintf("%s[I+4] = %s[I+%d] %s %s[I-%d]",
				dst, a, 5+r.Intn(4), op, b, 5+r.Intn(4)))
		}
	}
	nf := p.MinFiller
	if p.MaxFiller > p.MinFiller {
		nf += r.Intn(p.MaxFiller - p.MinFiller + 1)
	}
	d := 1 + r.Intn(p.MaxDistance)
	op := []string{"+", "-", "*"}[r.Intn(3)]

	switch tpl {
	case TrueRecurrence:
		// Filler precedes the sink — in real codes the recurrence sits deep
		// in the loop body, which is what lets list scheduling hoist the wait
		// far ahead of its sink (§4.2, "the distance from a Wat to its
		// corresponding Snk is so far").
		carrier := "A"
		chain := r.Intn(p.ChainLen + 1)
		filler(nf / 2)
		body = append(body, fmt.Sprintf("B[I] = %s[I-%d] %s %s[I+1]", carrier, d, op, inputArrays[r.Intn(4)]))
		last := "B[I]"
		for c := 0; c < chain; c++ {
			dst := coreArrays[2+c%2] // C or D
			body = append(body, fmt.Sprintf("%s[I] = %s %s %s[I+2]", dst, last, op, inputArrays[r.Intn(4)]))
			last = dst + "[I]"
		}
		body = append(body, fmt.Sprintf("%s[I] = %s + %s[I+3]", carrier, last, inputArrays[r.Intn(4)]))
		filler(nf - nf/2)
	case ConvertibleLBD:
		// sink group independent of source group; disjoint subscript
		// expressions keep their address temps (and thus components) apart.
		filler(nf / 2)
		body = append(body, fmt.Sprintf("B[I+1] = A[I-%d] %s %s[I-1]", d+1, op, inputArrays[r.Intn(4)]))
		filler(nf - nf/2)
		body = append(body, fmt.Sprintf("A[I] = %s[I] + %s[I+2]", inputArrays[r.Intn(4)], inputArrays[r.Intn(4)]))
	case ForwardDep:
		body = append(body, fmt.Sprintf("A[I] = %s[I] %s %s[I+1]", inputArrays[r.Intn(4)], op, inputArrays[r.Intn(4)]))
		filler(nf)
		body = append(body, fmt.Sprintf("B[I] = A[I-%d] + %s[I+2]", d, inputArrays[r.Intn(4)]))
	case Reduction:
		filler(nf / 2)
		body = append(body, fmt.Sprintf("S = S + %s[I] * %s[I]", inputArrays[r.Intn(4)], inputArrays[r.Intn(4)]))
		filler(nf - nf/2)
	case Induction:
		body = append(body, "K = K + 2")
		body = append(body, fmt.Sprintf("A[I] = %s[I] + K", inputArrays[r.Intn(4)]))
		filler(nf)
	case ControlDep:
		filler(nf / 2)
		body = append(body, fmt.Sprintf("IF (%s[I] > 0) A[I] = A[I-%d] %s %s[I+1]",
			inputArrays[r.Intn(4)], d, op, inputArrays[r.Intn(4)]))
		filler(nf - nf/2)
	case Doall:
		if nf < 1 {
			nf = 1
		}
		filler(nf)
	}
	var sb strings.Builder
	sb.WriteString("DOACROSS I = 1, N\n")
	for _, st := range body {
		sb.WriteString("  " + st + "\n")
	}
	sb.WriteString("ENDDO\n")
	return sb.String()
}

// Characteristics are the Table 1 statistics of one suite.
type Characteristics struct {
	Name string
	// SourceLines counts lines of the generated mini-FORTRAN (the Table 1
	// "lines parsed by Parafrase" analogue).
	SourceLines int
	TotalLoops  int
	DoallLoops  int
	// DLXLines counts three-address instructions generated for the DOACROSS
	// loops (the "lines generated by DLX compiler" analogue).
	DLXLines int
	// LFD and LBD count loop-carried dependences by lexical direction.
	LFD, LBD int
}

// Characteristics computes the suite's Table 1 row.
func (s *Suite) Characteristics() (Characteristics, error) {
	c := Characteristics{Name: s.Profile.Name}
	for _, l := range s.Loops {
		c.TotalLoops++
		c.SourceLines += strings.Count(l.Source, "\n")
		a := dep.Analyze(l.AST)
		if a.IsDoall() {
			c.DoallLoops++
			continue
		}
		lfd, lbd := a.CountLexical()
		c.LFD += lfd
		c.LBD += lbd
		prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return c, fmt.Errorf("perfect: %s: %w", s.Profile.Name, err)
		}
		c.DLXLines += len(prog.Instrs)
	}
	return c, nil
}

// Doacross returns the suite's DOACROSS loops (the ones the experiments
// schedule and simulate).
func (s *Suite) Doacross() []Loop {
	var out []Loop
	for _, l := range s.Loops {
		if l.Template != Doall {
			out = append(out, l)
		}
	}
	return out
}
