package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doacross/internal/faults"
	"doacross/internal/pipeline"
)

// fig1 is the paper's running example, the corpus of every daemon test.
const fig1 = `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post serves one schedule request through the handler and decodes the
// answer into out (which may be *ScheduleResponse or *ErrorResponse).
func post(t *testing.T, h http.Handler, req ScheduleRequest, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(string(body)))
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w, w.Body.Bytes()
}

func decodeOK(t *testing.T, w *httptest.ResponseRecorder, body []byte) *ScheduleResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	return &resp
}

func decodeErr(t *testing.T, body []byte) *ErrorResponse {
	t.Helper()
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode error body: %v (%s)", err, body)
	}
	return &resp
}

// TestScheduleBasic: a cold request compiles and schedules; an identical
// follow-up is a verified cache hit with the same content address.
func TestScheduleBasic(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w, body := post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	first := decodeOK(t, w, body)
	if len(first.Machines) == 0 {
		t.Fatal("no machine results")
	}
	m := first.Machines[0]
	if m.CacheHit {
		t.Error("cold request served from cache")
	}
	if m.SyncTime <= 0 || m.ListTime <= 0 {
		t.Errorf("times = (%d, %d), want positive", m.ListTime, m.SyncTime)
	}
	if first.Key == "" || m.Key == "" {
		t.Error("response is missing content-address keys")
	}

	w, body = post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	second := decodeOK(t, w, body)
	if !second.Machines[0].CacheHit {
		t.Error("identical follow-up was not a cache hit")
	}
	if second.Key != first.Key || second.Machines[0].SyncTime != m.SyncTime {
		t.Error("cache hit differs from the cold answer")
	}
}

// TestBadRequests: malformed input is refused with 400 before any work
// (405 for the wrong method), never 500.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	r := httptest.NewRequest(http.MethodGet, "/v1/schedule", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", w.Code)
	}

	cases := []struct {
		name string
		body string
	}{
		{"bad json", "{not json"},
		{"missing source", `{"name":"x"}`},
		{"negative n", fmt.Sprintf(`{"source":%q,"n":-1}`, fig1)},
		{"unknown backend", fmt.Sprintf(`{"source":%q,"backend":"bogus"}`, fig1)},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}

	// A compile diagnostic in well-formed JSON is the client's bad source.
	w2, body := post(t, h, ScheduleRequest{Source: "DO I = ,\n"}, nil)
	if w2.Code != http.StatusBadRequest {
		t.Errorf("unparseable loop: status = %d, want 400 (%s)", w2.Code, body)
	}
	if er := decodeErr(t, body); er.Error == "" {
		t.Error("400 carries no error text")
	}
}

// TestCoalescing: concurrent identical requests share one flight — one
// pipeline run, N-1 coalesced responses — and the counters agree.
func TestCoalescing(t *testing.T) {
	const n = 5
	release := make(chan struct{})
	var compiles atomic.Int64
	hook := func(stage, name string) error {
		if stage == "compile" && name == "blockme" {
			compiles.Add(1)
			<-release
		}
		return nil
	}
	s := newTestServer(t, Config{MaxInFlight: 2 * n, FaultHook: hook})
	h := s.Handler()

	var wg sync.WaitGroup
	var coalesced atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, body := post(t, h, ScheduleRequest{Name: "blockme", Source: fig1}, nil)
			if w.Code != http.StatusOK {
				t.Errorf("status = %d (%s)", w.Code, body)
				return
			}
			var resp ScheduleResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Error(err)
				return
			}
			if resp.Coalesced {
				coalesced.Add(1)
			}
		}()
	}
	// Release the leader only once every caller joined the flight — that is
	// what makes the coalesced count exact.
	waitFor(t, "all callers to join the flight", func() bool {
		flights, waiters := s.flights.Stats()
		return flights == 1 && waiters == n
	})
	close(release)
	wg.Wait()

	if got := coalesced.Load(); got != n-1 {
		t.Errorf("coalesced responses = %d, want %d", got, n-1)
	}
	if got := compiles.Load(); got != 1 {
		t.Errorf("pipeline ran %d times, want 1", got)
	}
	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	text := w.Body.String()
	if !strings.Contains(text, fmt.Sprintf("scheduld_coalesced_total %d", n-1)) {
		t.Errorf("/metrics does not report %d coalesced requests", n-1)
	}
	if !strings.Contains(text, "scheduld_flights_total 1") {
		t.Error("/metrics does not report exactly 1 flight")
	}
}

// TestRateLimit: an exhausted tenant bucket sheds with 429 + Retry-After
// while other tenants keep their own budget.
func TestRateLimit(t *testing.T) {
	s := newTestServer(t, Config{RatePerSec: 1, Burst: 1})
	h := s.Handler()

	w, body := post(t, h, ScheduleRequest{Source: fig1}, nil)
	decodeOK(t, w, body)

	w, body = post(t, h, ScheduleRequest{Source: fig1}, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429 (%s)", w.Code, body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if er := decodeErr(t, body); er.Reason != "ratelimit" || er.RetryAfterSeconds < 1 {
		t.Errorf("429 body = %+v", er)
	}

	// Another tenant's bucket is untouched.
	w, body = post(t, h, ScheduleRequest{Source: fig1}, map[string]string{"X-Tenant": "other"})
	decodeOK(t, w, body)
}

// TestQueueShed: with one slot and no queue, a second request is shed
// immediately with 503 reason "queue" instead of waiting unboundedly.
func TestQueueShed(t *testing.T) {
	release := make(chan struct{})
	hook := func(stage, name string) error {
		if stage == "compile" && name == "hold" {
			<-release
		}
		return nil
	}
	s := newTestServer(t, Config{MaxInFlight: 1, QueueLimit: -1, FaultHook: hook})
	h := s.Handler()

	done := make(chan struct{})
	go func() {
		defer close(done)
		w, body := post(t, h, ScheduleRequest{Name: "hold", Source: fig1}, nil)
		if w.Code != http.StatusOK {
			t.Errorf("held request = %d (%s)", w.Code, body)
		}
	}()
	waitFor(t, "first request to hold the slot", func() bool { return s.adm.inFlight() == 1 })

	w, body := post(t, h, ScheduleRequest{Name: "shed", Source: fig1}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503 (%s)", w.Code, body)
	}
	if er := decodeErr(t, body); er.Reason != "queue" {
		t.Errorf("shed reason = %q, want queue", er.Reason)
	}
	close(release)
	<-done
}

// TestBreaker: consecutive degraded (fallback-served) answers open the
// backend's circuit — subsequent requests shed with 503 reason "breaker" —
// while a healthy backend's circuit stays closed.
func TestBreaker(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == "schedule" && strings.HasPrefix(name, "bad") {
			return fmt.Errorf("injected backend failure")
		}
		return nil
	}
	s := newTestServer(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		FaultHook:        hook,
	})
	h := s.Handler()

	// Two degraded 200s: correct answers served by the verified fallback,
	// but each one a backend failure the breaker must count.
	for i := 0; i < 2; i++ {
		w, body := post(t, h, ScheduleRequest{Name: fmt.Sprintf("bad%d", i), Source: fig1}, nil)
		resp := decodeOK(t, w, body)
		if !resp.Machines[0].Degraded {
			t.Fatalf("request %d not degraded; the hook did not fire", i)
		}
	}

	w, body := post(t, h, ScheduleRequest{Name: "bad2", Source: fig1}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-threshold request = %d, want 503 (%s)", w.Code, body)
	}
	if er := decodeErr(t, body); er.Reason != "breaker" {
		t.Errorf("shed reason = %q, want breaker", er.Reason)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker 503 without Retry-After")
	}

	// A different backend is a different circuit: still served.
	w, body = post(t, h, ScheduleRequest{Name: "good", Source: fig1, Backend: "list"}, nil)
	decodeOK(t, w, body)

	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if !strings.Contains(rec.Body.String(), "scheduld_breaker_open_total 1") {
		t.Error("/metrics does not count the circuit opening")
	}
}

// TestDrainingSheds: after Shutdown the handler sheds new requests with
// 503 reason "draining" (handler-only embedding: no listener involved).
func TestDrainingSheds(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	w, body := post(t, s.Handler(), ScheduleRequest{Source: fig1}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining request = %d, want 503 (%s)", w.Code, body)
	}
	if er := decodeErr(t, body); er.Reason != "draining" {
		t.Errorf("shed reason = %q, want draining", er.Reason)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
}

// TestGracefulDrain: a request admitted before SIGTERM finishes during the
// drain window and Shutdown returns clean.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	hook := func(stage, name string) error {
		if stage == "compile" && name == "hold" {
			<-release
		}
		return nil
	}
	s := newTestServer(t, Config{FaultHook: hook})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/schedule", "application/json",
			strings.NewReader(fmt.Sprintf(`{"name":"hold","source":%q}`, fig1)))
		if err != nil {
			t.Error(err)
			reqDone <- 0
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	waitFor(t, "request to be admitted", func() bool { return s.adm.inFlight() == 1 })

	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(context.Background()) }()
	waitFor(t, "drain to begin", func() bool { return s.draining.Load() })

	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain, want 200", code)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
}

// TestServerWarmRestart is the acceptance scenario: a cold daemon fills the
// persistent tier, a restarted daemon re-verifies and loads it, and then
// serves the same request as a warm hit with zero request-time recompiles.
func TestServerWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{DiskDir: dir})
	w, body := post(t, s1.Handler(), ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	cold := decodeOK(t, w, body)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{DiskDir: dir})
	if ls := s2.LoadStats(); ls.Loaded < 1 || ls.Corrupt != 0 {
		t.Fatalf("warm start loaded %d entries (%s), want >= 1 clean", ls.Loaded, ls)
	}
	w, body = post(t, s2.Handler(), ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	warm := decodeOK(t, w, body)
	if !warm.Machines[0].CacheHit {
		t.Error("restarted daemon did not serve the warm entry")
	}
	if warm.Key != cold.Key || warm.Machines[0].SyncTime != cold.Machines[0].SyncTime {
		t.Error("warm answer differs from the cold answer")
	}
	// Zero request-time scheduling: the entry came off disk, verified.
	if n := s2.Metrics().Stats().Stage(pipeline.StageSchedule).Count; n != 0 {
		t.Errorf("warm daemon ran the scheduler %d times, want 0", n)
	}
}

// TestNetFaults: an injected network delay serves slow, not wrong — the
// request still answers 200 and the injection is counted.
func TestNetFaults(t *testing.T) {
	in := faults.MustNew(faults.Plan{
		NetDelay: 1, DelayFor: 5 * time.Millisecond,
		Stages: []string{faults.StageNet},
	})
	s := newTestServer(t, Config{FaultHook: in.Probe})
	start := time.Now()
	w, body := post(t, s.Handler(), ScheduleRequest{Source: fig1}, nil)
	decodeOK(t, w, body)
	if time.Since(start) < 5*time.Millisecond {
		t.Error("request did not observe the injected delay")
	}
	if c := in.Counts(); c.NetDelays < 1 {
		t.Errorf("counts = %s, want a net delay", c)
	}
}

// TestHealthAndStats: the observability endpoints answer well-formed JSON.
func TestHealthAndStats(t *testing.T) {
	s := newTestServer(t, Config{DiskDir: t.TempDir()})
	h := s.Handler()
	for _, path := range []string{"/healthz", "/stats"} {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Errorf("%s = %d", path, w.Code)
			continue
		}
		var v map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
