package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sleepRecorder captures the waits a Client would have slept, without
// actually sleeping.
type sleepRecorder struct {
	waits []time.Duration
}

func (r *sleepRecorder) sleep(_ context.Context, d time.Duration) error {
	r.waits = append(r.waits, d)
	return nil
}

// TestClientHonorsRetryAfter: a shed answer's Retry-After overrides the
// client's computed backoff, and the retry succeeds.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "shed", Reason: "ratelimit"})
			return
		}
		_ = json.NewEncoder(w).Encode(ScheduleResponse{Name: "x", Key: "00"})
	}))
	defer stub.Close()

	rec := &sleepRecorder{}
	c := &Client{BaseURL: stub.URL, Sleep: rec.sleep}
	resp, err := c.Schedule(context.Background(), ScheduleRequest{Source: "src"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "x" {
		t.Errorf("response = %+v", resp)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
	if len(rec.waits) != 1 || rec.waits[0] != 3*time.Second {
		t.Errorf("client waited %v, want [3s] from Retry-After", rec.waits)
	}
}

// TestClientBacksOffExponentially: without Retry-After the waits follow the
// jittered exponential schedule: each in [base*2^i / 2, base*2^i].
func TestClientBacksOffExponentially(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "down"})
	}))
	defer stub.Close()

	rec := &sleepRecorder{}
	c := &Client{BaseURL: stub.URL, MaxRetries: 3, BaseBackoff: 8 * time.Millisecond, Sleep: rec.sleep}
	_, err := c.Schedule(context.Background(), ScheduleRequest{Source: "src"})
	if err == nil {
		t.Fatal("Schedule succeeded against an always-503 daemon")
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Errorf("err = %v, want exhaustion after 4 attempts", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Errorf("err = %v, want wrapped StatusError 503", err)
	}
	if len(rec.waits) != 3 {
		t.Fatalf("client slept %d times, want 3", len(rec.waits))
	}
	for i, d := range rec.waits {
		hi := 8 * time.Millisecond << i
		if d < hi/2 || d > hi {
			t.Errorf("wait %d = %v, want in [%v, %v]", i, d, hi/2, hi)
		}
	}
}

// TestClientDoesNotRetryClientErrors: a 400 is the caller's bad loop —
// retrying it only adds load, so the client returns it immediately.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "bad loop"})
	}))
	defer stub.Close()

	rec := &sleepRecorder{}
	c := &Client{BaseURL: stub.URL, Sleep: rec.sleep}
	_, err := c.Schedule(context.Background(), ScheduleRequest{Source: "src"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if calls.Load() != 1 || len(rec.waits) != 0 {
		t.Errorf("client retried a 400: %d calls, %d sleeps", calls.Load(), len(rec.waits))
	}
}

// TestClientEndToEnd: the retrying client against a real rate-limited
// daemon — the first call lands, the immediate second is shed and then
// served on retry, all through the public API.
func TestClientEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{RatePerSec: 50, Burst: 1})
	stub := httptest.NewServer(s.Handler())
	defer stub.Close()

	c := &Client{BaseURL: stub.URL, Tenant: "e2e"}
	for i := 0; i < 2; i++ {
		resp, err := c.Schedule(context.Background(), ScheduleRequest{Name: "fig1", Source: fig1})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(resp.Machines) == 0 {
			t.Fatalf("request %d: empty result", i)
		}
	}
}
