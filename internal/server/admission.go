package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// tenantID extracts the caller's tenant for rate accounting ("" falls back
// to the shared default bucket, so unlabeled callers still share fairly).
const defaultTenant = "default"

// rateLimiter is a per-tenant token-bucket limiter: each tenant accrues
// rate tokens per second up to burst, and one request costs one token. A
// nil *rateLimiter admits everything (rate limiting disabled).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter, or nil when rate <= 0 (disabled).
func newRateLimiter(rate, burst float64) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// admit spends one token from tenant's bucket. When the bucket is empty it
// reports false plus how long until a full token has accrued — the 429's
// Retry-After.
func (l *rateLimiter) admit(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[tenant]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// admission bounds the work the daemon accepts: at most inFlight requests
// hold a slot at once, and at most queueLimit more may wait for one. Past
// both bounds requests are shed immediately (503) instead of piling onto
// an unbounded queue — the load-shedding half of admission control.
type admission struct {
	slots      chan struct{}
	queueLimit int
	waiting    atomic.Int64
	held       atomic.Int64
}

func newAdmission(inFlight, queueLimit int) *admission {
	if inFlight < 1 {
		inFlight = 1
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &admission{slots: make(chan struct{}, inFlight), queueLimit: queueLimit}
}

// acquire takes a slot, queuing (bounded) when all are held. It returns the
// release func on success; ok=false means the request was shed — the queue
// was full, or ctx expired while waiting.
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), true
	default:
	}
	// All slots held: join the bounded wait queue or shed.
	if int(a.waiting.Add(1)) > a.queueLimit {
		a.waiting.Add(-1)
		return nil, false
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), true
	case <-ctx.Done():
		return nil, false
	}
}

func (a *admission) releaseFunc() func() {
	a.held.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.held.Add(-1)
			<-a.slots
		})
	}
}

// inFlight and queued are the admission gauges.
func (a *admission) inFlight() int64 { return a.held.Load() }
func (a *admission) queued() int64   { return a.waiting.Load() }

// Circuit-breaker states. The breaker is keyed per scheduling backend: a
// backend that keeps failing (degraded fallbacks, server-side errors) trips
// its own circuit without taking the healthy backends down with it.
const (
	breakerClosed   = iota // normal operation
	breakerOpen            // tripped: requests shed until cooldown passes
	breakerHalfOpen        // cooldown passed: one probe request allowed
)

// breakerSet holds one circuit breaker per backend. threshold consecutive
// failures open a circuit; after cooldown one probe is let through — its
// success closes the circuit, its failure re-opens it for another cooldown.
// Client errors (bad source) never count: only outcomes that indicate the
// backend itself is unhealthy do.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	opens     atomic.Int64

	mu sync.Mutex
	m  map[string]*breaker
}

type breaker struct {
	state       int
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
}

// newBreakerSet builds the registry, or nil when threshold <= 0 (disabled).
func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

// allow reports whether a request for backend may proceed. When the circuit
// is open it returns the remaining cooldown as the 503's Retry-After.
func (s *breakerSet) allow(backend string, now time.Time) (ok bool, retryAfter time.Duration) {
	if s == nil {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, found := s.m[backend]
	if !found {
		return true, 0
	}
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if remaining := b.openedAt.Add(s.cooldown).Sub(now); remaining > 0 {
			return false, remaining
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, s.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// record feeds one request outcome back into backend's circuit. Callers
// must report only backend-health outcomes: degraded (fallback-served)
// results and server-side failures as ok=false, clean results as ok=true;
// client errors are not recorded at all.
func (s *breakerSet) record(backend string, ok bool, now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, found := s.m[backend]
	if !found {
		if ok {
			return
		}
		b = &breaker{}
		s.m[backend] = b
	}
	if ok {
		b.state = breakerClosed
		b.consecFails = 0
		b.probing = false
		return
	}
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = now
		s.opens.Add(1)
	default:
		b.consecFails++
		if b.state == breakerClosed && b.consecFails >= s.threshold {
			b.state = breakerOpen
			b.openedAt = now
			s.opens.Add(1)
		}
	}
}

// states snapshots every backend's circuit state for /metrics.
func (s *breakerSet) states() map[string]int {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.m))
	for name, b := range s.m {
		out[name] = b.state
	}
	return out
}
