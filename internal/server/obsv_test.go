package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/pipeline"
)

// TestRequestIDEcho: the client's X-Request-Id comes back on the response
// header and in the body, and a request without one gets a minted ID.
func TestRequestIDEcho(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w, body := post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, map[string]string{"X-Request-Id": "test-id-123"})
	resp := decodeOK(t, w, body)
	if got := w.Header().Get("X-Request-Id"); got != "test-id-123" {
		t.Errorf("echoed header = %q, want test-id-123", got)
	}
	if resp.RequestID != "test-id-123" {
		t.Errorf("body request_id = %q, want test-id-123", resp.RequestID)
	}

	w2, body2 := post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	resp2 := decodeOK(t, w2, body2)
	if resp2.RequestID == "" || w2.Header().Get("X-Request-Id") != resp2.RequestID {
		t.Errorf("minted ID missing or inconsistent: header %q, body %q",
			w2.Header().Get("X-Request-Id"), resp2.RequestID)
	}
}

// TestRequestIDOnErrors: shed and failed requests still carry the
// correlation ID, so a client can quote it when reporting the refusal.
func TestRequestIDOnErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	w, body := post(t, h, ScheduleRequest{Name: "bad", Source: "DO I = 1, N\nOOPS\nENDDO"},
		map[string]string{"X-Request-Id": "err-77"})
	if w.Code == http.StatusOK {
		t.Fatalf("malformed loop served OK: %s", body)
	}
	if got := w.Header().Get("X-Request-Id"); got != "err-77" {
		t.Errorf("error response header = %q, want err-77", got)
	}
	if e := decodeErr(t, body); e.RequestID != "err-77" {
		t.Errorf("error body request_id = %q, want err-77", e.RequestID)
	}
}

// TestRequestIDSanitized: a hostile header (newlines, huge) cannot be
// reflected into logs or the response; it is replaced by a minted ID.
func TestRequestIDSanitized(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/schedule", nil)
	r.Header.Set("X-Request-Id", "ok-id.v2_3")
	if got := requestID(r); got != "ok-id.v2_3" {
		t.Errorf("clean ID rewritten to %q", got)
	}
	r.Header.Set("X-Request-Id", "bad id \x00 with junk ")
	if got := requestID(r); strings.ContainsAny(got, " \x00") || got == "" {
		t.Errorf("hostile ID survived: %q", got)
	}
	r.Header.Set("X-Request-Id", strings.Repeat("a", 500))
	if got := requestID(r); len(got) > 128 {
		t.Errorf("oversized ID kept %d bytes", len(got))
	}
	// W3C traceparent supplies the ID when X-Request-Id is absent.
	r2 := httptest.NewRequest(http.MethodPost, "/v1/schedule", nil)
	r2.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if got := requestID(r2); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("traceparent trace-id not used: %q", got)
	}
}

// TestFlightRecordEndpoint: the ring is served as JSONL and contains both
// the structured log records and the request records of served traffic,
// keyed by the correlation ID.
func TestFlightRecordEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, map[string]string{"X-Request-Id": "fr-1"})

	r := httptest.NewRequest(http.MethodGet, "/debug/flightrecord", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/flightrecord = %d", w.Code)
	}
	var kinds []string
	var sawServed, sawRequest bool
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var rec struct {
			Kind      string `json:"kind"`
			RequestID string `json:"request_id"`
			Msg       string `json:"msg"`
			Request   *struct {
				Status int `json:"status"`
			} `json:"request"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == "log" && rec.RequestID == "fr-1" && strings.Contains(rec.Msg, "served") {
			sawServed = true
		}
		if rec.Kind == "request" && rec.RequestID == "fr-1" && rec.Request != nil && rec.Request.Status == 200 {
			sawRequest = true
		}
	}
	if !sawServed {
		t.Errorf("no 'request served' log record for fr-1 in ring (kinds: %v)", kinds)
	}
	if !sawRequest {
		t.Errorf("no request record for fr-1 in ring (kinds: %v)", kinds)
	}
}

// TestFlightDumpToDir: DumpFlightRecord writes a JSONL file into FlightDir
// and returns its path.
func TestFlightDumpToDir(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{FlightDir: dir})
	h := s.Handler()
	post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, map[string]string{"X-Request-Id": "dump-1"})
	path, err := s.DumpFlightRecord("test")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "flightrecord-test-") {
		t.Errorf("dump path = %q", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("dump-1")) {
		t.Errorf("dump does not mention the request ID:\n%s", b)
	}
}

// TestStructuredLogCarriesRequestID: the slog JSON line for a served
// request carries the correlation ID, so logs can be grepped by it.
func TestStructuredLogCarriesRequestID(t *testing.T) {
	var out bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s := newTestServer(t, Config{Logger: logger})
	h := s.Handler()
	post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, map[string]string{"X-Request-Id": "log-42"})
	if !strings.Contains(out.String(), `"request_id":"log-42"`) {
		t.Errorf("slog output lacks request_id=log-42:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "request served") {
		t.Errorf("slog output lacks the served line:\n%s", out.String())
	}
}

// TestPanicRecoveredAndDumped: a handler panic is converted to a flight
// dump instead of being lost, and the trigger record names the reason.
func TestPanicRecoveredAndDumped(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{FlightDir: dir})
	var h http.Handler = s.recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("panic swallowed: net/http must still see it to close the connection")
		}
		files, err := filepath.Glob(filepath.Join(dir, "flightrecord-panic-*.jsonl"))
		if err != nil || len(files) != 1 {
			t.Fatalf("panic dump files = %v (%v)", files, err)
		}
		b, _ := os.ReadFile(files[0])
		if !bytes.Contains(b, []byte(`"trigger"`)) || !bytes.Contains(b, []byte("panic")) {
			t.Errorf("panic dump lacks trigger record:\n%s", b)
		}
	}()
	r := httptest.NewRequest(http.MethodPost, "/v1/schedule", nil)
	h.ServeHTTP(httptest.NewRecorder(), r)
}

// TestUtilizationInResponse: with Options.Utilization on, every served
// machine result carries the verified stall-cause report; without it the
// field stays absent.
func TestUtilizationInResponse(t *testing.T) {
	s := newTestServer(t, Config{Pipeline: pipeline.Options{Utilization: true}})
	h := s.Handler()
	w, body := post(t, h, ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	resp := decodeOK(t, w, body)
	m := resp.Machines[0]
	u := m.Utilization
	if u == nil {
		t.Fatal("no utilization report with Utilization on")
	}
	if u.Cycles != m.SyncTime {
		t.Errorf("utilization cycles %d != sync time %d", u.Cycles, m.SyncTime)
	}
	if got := u.IssuedCycles + u.SyncWaitCycles + u.WindowWaitCycles + u.DrainCycles; got != u.Procs*u.Cycles {
		t.Errorf("attribution covers %d proc-cycles, want %d", got, u.Procs*u.Cycles)
	}

	s2 := newTestServer(t, Config{})
	w2, body2 := post(t, s2.Handler(), ScheduleRequest{Name: "fig1", Source: fig1}, nil)
	if resp2 := decodeOK(t, w2, body2); resp2.Machines[0].Utilization != nil {
		t.Error("utilization attached without opting in")
	}
}
