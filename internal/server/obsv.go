package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doacross/internal/obs"
)

// Request correlation. Every schedule request carries an ID: the client's
// X-Request-Id when it sent one, the trace-id of a W3C traceparent header
// when only that is present, or a fresh random ID otherwise. The ID is
// echoed on every response (header and body), attached to the pipeline
// request's observer span, keyed into every structured log line the daemon
// emits about the request, and recorded in the flight recorder — one join
// key from client retry loop to pass-level span.

// requestID extracts or mints the correlation ID of a request.
func requestID(r *http.Request) string {
	if id := sanitizeID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	// traceparent: version-traceid-parentid-flags; reuse the trace-id so
	// daemon logs join an existing distributed trace.
	if tp := r.Header.Get("traceparent"); tp != "" {
		if parts := strings.Split(tp, "-"); len(parts) == 4 && len(parts[1]) == 32 {
			if id := sanitizeID(parts[1]); id != "" {
				return id
			}
		}
	}
	return newRequestID()
}

// sanitizeID accepts client-supplied IDs only when they are short and
// log/header-safe; anything else is discarded (a fresh ID is minted).
func sanitizeID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return ""
		}
	}
	return id
}

// newRequestID mints a 16-hex-digit random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// maybeDump dumps the flight recorder for the given trigger, rate-limited
// to one dump per second so a failure storm cannot turn the black box into
// a disk filler. The trigger itself is recorded in the ring first, so the
// dump explains why it exists.
func (s *Server) maybeDump(reason string) {
	now := time.Now().UnixNano()
	last := s.lastDump.Load()
	if now-last < int64(time.Second) || !s.lastDump.CompareAndSwap(last, now) {
		return
	}
	s.flight.Add(obs.FlightRecord{Kind: "trigger", Msg: reason})
	path, err := s.DumpFlightRecord(reason)
	if err != nil {
		s.log.Error("flight-record dump failed", "reason", reason, "error", err.Error())
		return
	}
	s.log.Warn("flight record dumped", "reason", reason, "path", path)
}

// DumpFlightRecord writes the flight recorder's ring as JSONL to a
// timestamped file under Config.FlightDir (to stderr when unset) and
// returns the path written. Triggered automatically on panic, deadline
// breach and breaker-open; cmd/scheduld also calls it on SIGQUIT.
func (s *Server) DumpFlightRecord(reason string) (string, error) {
	if s.cfg.FlightDir == "" {
		return "stderr", s.flight.WriteJSONL(os.Stderr)
	}
	path := filepath.Join(s.cfg.FlightDir,
		fmt.Sprintf("flightrecord-%s-%d.jsonl", reason, time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = s.flight.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	return path, nil
}

// handleFlightRecord serves the current ring as JSONL: the same content a
// trigger would dump, on demand.
func (s *Server) handleFlightRecord(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	_ = s.flight.WriteJSONL(w)
}

// recovered wraps a handler so a panic dumps the flight recorder before the
// connection dies — the black box survives even when the handler does not.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic in handler",
					"path", r.URL.Path, "panic", fmt.Sprint(p))
				s.maybeDump("panic")
				panic(p)
			}
		}()
		h(w, r)
	}
}
