package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// serverMetrics are the daemon-level counters, kept alongside (not inside)
// the pipeline's registry: the pipeline counts compile/schedule/simulate
// work, the daemon counts what happened to requests before and after the
// pipeline ran — coalescing, shedding, breaker trips, response classes.
type serverMetrics struct {
	requests     atomic.Int64 // /v1/schedule requests received
	responsesOK  atomic.Int64 // 200s served
	clientErrors atomic.Int64 // 4xx (bad JSON, bad source, unknown backend)
	serverErrors atomic.Int64 // 5xx other than sheds
	timeouts     atomic.Int64 // 504s (caller's deadline expired)
	flights      atomic.Int64 // singleflight leaders (computations started)
	coalesced    atomic.Int64 // followers served by another caller's flight
	shedRate     atomic.Int64 // 429s: per-tenant token bucket empty
	shedQueue    atomic.Int64 // 503s: admission queue full or wait cut off
	shedBreaker  atomic.Int64 // 503s: backend circuit open
	shedDraining atomic.Int64 // 503s: daemon draining for shutdown
	netFaults    atomic.Int64 // injected network faults served as 503s
}

// Stats is the JSON-marshalable snapshot of the daemon counters for /stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	ResponsesOK  int64 `json:"responses_ok"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	Timeouts     int64 `json:"timeouts"`
	Flights      int64 `json:"flights"`
	Coalesced    int64 `json:"coalesced"`
	ShedRate     int64 `json:"shed_ratelimit"`
	ShedQueue    int64 `json:"shed_queue"`
	ShedBreaker  int64 `json:"shed_breaker"`
	ShedDraining int64 `json:"shed_draining"`
	BreakerOpens int64 `json:"breaker_opens"`
	NetFaults    int64 `json:"net_faults"`
}

func (m *serverMetrics) snapshot(breakerOpens int64) Stats {
	return Stats{
		Requests:     m.requests.Load(),
		ResponsesOK:  m.responsesOK.Load(),
		ClientErrors: m.clientErrors.Load(),
		ServerErrors: m.serverErrors.Load(),
		Timeouts:     m.timeouts.Load(),
		Flights:      m.flights.Load(),
		Coalesced:    m.coalesced.Load(),
		ShedRate:     m.shedRate.Load(),
		ShedQueue:    m.shedQueue.Load(),
		ShedBreaker:  m.shedBreaker.Load(),
		ShedDraining: m.shedDraining.Load(),
		BreakerOpens: breakerOpens,
		NetFaults:    m.netFaults.Load(),
	}
}

// writePrometheus appends the scheduld_* exposition after the pipeline's
// doacross_* metrics on /metrics: one scrape covers both layers.
func (s *Server) writePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP scheduld_%s %s\n# TYPE scheduld_%s counter\nscheduld_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP scheduld_%s %s\n# TYPE scheduld_%s gauge\nscheduld_%s %d\n",
			name, help, name, name, v)
	}
	m := &s.sm
	counter("requests_total", "schedule requests received", m.requests.Load())
	counter("responses_ok_total", "schedule requests answered 200", m.responsesOK.Load())
	counter("client_errors_total", "schedule requests answered 4xx (excluding rate-limit sheds)", m.clientErrors.Load())
	counter("server_errors_total", "schedule requests answered 5xx (excluding sheds)", m.serverErrors.Load())
	counter("timeouts_total", "schedule requests answered 504 after the caller's deadline expired", m.timeouts.Load())
	counter("flights_total", "singleflight computations started (leaders)", m.flights.Load())
	counter("coalesced_total", "requests served by another caller's in-flight computation", m.coalesced.Load())
	counter("shed_ratelimit_total", "requests shed 429 by the per-tenant token bucket", m.shedRate.Load())
	counter("shed_queue_total", "requests shed 503 by the bounded admission queue", m.shedQueue.Load())
	counter("shed_breaker_total", "requests shed 503 by an open backend circuit", m.shedBreaker.Load())
	counter("shed_draining_total", "requests shed 503 while draining for shutdown", m.shedDraining.Load())
	counter("net_faults_total", "injected network faults served as errors", m.netFaults.Load())
	if s.breakers != nil {
		counter("breaker_open_total", "circuit-breaker open transitions", s.breakers.opens.Load())
		states := s.breakers.states()
		names := make([]string, 0, len(states))
		for name := range states {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP scheduld_breaker_state circuit state per backend (0 closed, 1 open, 2 half-open)\n# TYPE scheduld_breaker_state gauge\n")
		for _, name := range names {
			fmt.Fprintf(w, "scheduld_breaker_state{backend=%q} %d\n", name, states[name])
		}
	}
	gauge("inflight", "requests holding an admission slot", s.adm.inFlight())
	gauge("queue_waiting", "requests waiting for an admission slot", s.adm.queued())
	flights, waiters := s.flights.Stats()
	gauge("flights_live", "singleflight computations currently running", int64(flights))
	gauge("flight_waiters", "callers currently waiting on a flight (leaders included)", int64(waiters))
	var draining int64
	if s.draining.Load() {
		draining = 1
	}
	gauge("draining", "1 while the daemon is draining for shutdown", draining)
	gauge("cache_entries", "in-memory cache entries", int64(s.cache.Len()))
	if s.disk != nil {
		ds := s.disk.Stats()
		gauge("disk_entries", "persistent-tier entries on disk", ds.Entries)
		counter("disk_writes_total", "persistent-tier writes", ds.Writes)
		counter("disk_write_errors_total", "persistent-tier write failures (request unaffected)", ds.WriteErrors)
		counter("disk_reads_total", "persistent-tier reads", ds.Reads)
		counter("disk_read_errors_total", "persistent-tier read failures", ds.ReadErrors)
		counter("disk_corrupt_total", "persistent-tier entries that failed integrity checks", ds.Corrupt)
		counter("disk_quarantined_total", "persistent-tier entries moved to quarantine", ds.Quarantined)
		gauge("disk_loaded", "entries restored warm from disk at startup", int64(s.loadStats.Loaded))
		gauge("disk_load_stale", "disk entries skipped at startup (produced under other options)", int64(s.loadStats.Stale))
		gauge("disk_load_corrupt", "disk entries quarantined at startup", int64(s.loadStats.Corrupt))
	}
}
