package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"doacross/internal/diag"
	"doacross/internal/obs"
	"doacross/internal/passes"
	"doacross/internal/pipeline"
)

// stageNet mirrors internal/faults' StageNet without importing it (the
// fault hook is plain func values in both directions): the network-edge
// probe point of every schedule request.
const stageNet = "net"

// Config configures the daemon. The zero value serves the paper's default
// pipeline options with admission control sized to the machine, no rate
// limit, no circuit breaker and no persistent tier.
type Config struct {
	// Pipeline is the base options every request is served under. Cache,
	// Disk and Metrics are owned by the server and overwritten; Workers
	// applies per flight.
	Pipeline pipeline.Options
	// CacheCap bounds the in-memory cache (0 = unbounded).
	CacheCap int
	// DiskDir roots the crash-safe persistent cache tier ("" = disabled).
	// On startup every entry is re-verified through internal/check and
	// published to the in-memory cache; corrupt entries are quarantined.
	DiskDir string
	// MaxInFlight bounds concurrently served requests (0 = 2*GOMAXPROCS).
	MaxInFlight int
	// QueueLimit bounds requests waiting for an admission slot
	// (0 = 4*MaxInFlight, negative = no queue: shed immediately when full).
	QueueLimit int
	// RatePerSec is the per-tenant token-bucket refill rate (<= 0 =
	// rate limiting disabled). Tenants are named by the X-Tenant header.
	RatePerSec float64
	// Burst is the token-bucket capacity (0 = max(1, RatePerSec)).
	Burst float64
	// BreakerThreshold is the consecutive backend failures that open its
	// circuit (0 = 5, negative = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds before allowing a
	// probe (0 = 30s).
	BreakerCooldown time.Duration
	// RequestTimeout bounds each request, queue wait included (0 = 30s,
	// negative = none).
	RequestTimeout time.Duration
	// MaxSourceBytes bounds the request body (0 = 1 MiB).
	MaxSourceBytes int64
	// FaultHook, when non-nil, is threaded everywhere the pipeline's is
	// (see pipeline.Options.FaultHook) and additionally probed at the
	// daemon's own boundaries: "net" on request arrival, "disk-write" and
	// "disk-read" in the persistent tier. internal/faults provides the
	// seeded implementation; production daemons leave it nil.
	FaultHook func(stage, name string) error
	// Logger receives the daemon's structured decision log (admission,
	// sheds, breaker transitions, served requests), every line keyed by
	// request_id. Nil logs nowhere live — but every record still lands in
	// the always-on flight recorder, which keeps debug-grade context
	// regardless of the live level.
	Logger *slog.Logger
	// FlightDir is where triggered flight-recorder dumps are written
	// ("" = stderr). Triggers: handler panic, deadline breach,
	// breaker-open, SIGQUIT (via DumpFlightRecord).
	FlightDir string
	// FlightRing bounds the flight recorder (0 = 256 records).
	FlightRing int
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c Config) queueLimit() int {
	if c.QueueLimit > 0 {
		return c.QueueLimit
	}
	if c.QueueLimit < 0 {
		return 0
	}
	return 4 * c.maxInFlight()
}

func (c Config) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return math.Max(1, c.RatePerSec)
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	if c.BreakerThreshold < 0 {
		return 0 // disabled
	}
	return 5
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	if c.RequestTimeout < 0 {
		return 0
	}
	return 30 * time.Second
}

func (c Config) maxSourceBytes() int64 {
	if c.MaxSourceBytes > 0 {
		return c.MaxSourceBytes
	}
	return 1 << 20
}

// Server is the scheduling daemon. Build with New, wire Handler into an
// HTTP server (or call Start), and Shutdown on SIGTERM.
type Server struct {
	cfg     Config
	opt     pipeline.Options // resolved base options (cache/disk/metrics wired)
	cache   *pipeline.Cache
	disk    *pipeline.DiskStore
	metrics *pipeline.Metrics

	flights  pipeline.Group
	limiter  *rateLimiter
	adm      *admission
	breakers *breakerSet
	sm       serverMetrics

	log      *slog.Logger
	flight   *obs.FlightRecorder
	lastDump atomic.Int64

	loadStats pipeline.LoadStats
	draining  atomic.Bool
	start     time.Time
	srv       *http.Server
	ln        net.Listener
}

// New builds the daemon: it opens the persistent tier (when configured),
// re-verifies and loads every disk entry into the in-memory cache — so a
// restart serves warm, verified hits without recompiling at request time —
// and wires admission control from cfg.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:      cfg,
		cache:    pipeline.NewCacheBounded(cfg.CacheCap),
		metrics:  pipeline.NewMetrics(),
		limiter:  newRateLimiter(cfg.RatePerSec, cfg.burst()),
		adm:      newAdmission(cfg.maxInFlight(), cfg.queueLimit()),
		breakers: newBreakerSet(cfg.breakerThreshold(), cfg.BreakerCooldown),
		flight:   obs.NewFlightRecorder(cfg.FlightRing),
		start:    time.Now(),
	}
	var inner slog.Handler
	if cfg.Logger != nil {
		inner = cfg.Logger.Handler()
	}
	s.log = obs.FlightLogger(s.flight, inner)
	s.opt = cfg.Pipeline
	s.opt.Cache = s.cache
	s.opt.Metrics = s.metrics
	s.opt.FaultHook = cfg.FaultHook
	s.opt.RequestTimeout = 0 // deadlines are inherited through the flight
	s.opt.Deadline = 0
	s.metrics.AttachCache(s.cache)
	if cfg.DiskDir != "" {
		disk, err := pipeline.OpenDiskStore(cfg.DiskDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		disk.SetFaultHook(cfg.FaultHook)
		// Warm start under load-time options: no fault hook (startup is
		// not a request) and no request metrics — the recompile that
		// re-derives each entry's graph happens once here, so the runtime
		// registry shows zero compile-stage runs for warm-served keys.
		loadOpt := cfg.Pipeline
		loadOpt.Cache = s.cache
		loadOpt.Metrics = nil
		loadOpt.FaultHook = nil
		loadOpt.Observer = nil
		ls, err := pipeline.LoadDisk(context.Background(), disk, s.cache, loadOpt)
		if err != nil {
			return nil, fmt.Errorf("server: load disk tier: %w", err)
		}
		s.disk = disk
		s.loadStats = ls
		s.opt.Disk = disk
		s.log.Info("disk tier loaded",
			"dir", cfg.DiskDir, "scanned", ls.Scanned, "loaded", ls.Loaded,
			"stale", ls.Stale, "corrupt", ls.Corrupt, "errors", ls.Errors)
	}
	return s, nil
}

// LoadStats reports the warm-start outcome of the persistent tier.
func (s *Server) LoadStats() pipeline.LoadStats { return s.loadStats }

// Metrics exposes the pipeline registry shared by every flight.
func (s *Server) Metrics() *pipeline.Metrics { return s.metrics }

// Handler builds the daemon mux:
//
//	POST /v1/schedule        schedule one loop (coalesced, admission-controlled)
//	GET  /healthz            liveness: status, uptime, admission gauges
//	GET  /metrics            Prometheus exposition: doacross_* then scheduld_*
//	GET  /stats              JSON snapshot: server, pipeline, disk, warm-start
//	GET  /debug/flightrecord the flight recorder's ring as JSONL
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.recovered(s.handleSchedule))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/debug/flightrecord", s.handleFlightRecord)
	return mux
}

// retrySeconds renders a wait as a Retry-After value (whole seconds, >= 1).
func retrySeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeError answers with a JSON ErrorResponse; retryAfter > 0 adds the
// Retry-After header clients back off on.
func writeError(w http.ResponseWriter, code int, retryAfter time.Duration, resp ErrorResponse) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		resp.RetryAfterSeconds = retrySeconds(retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterSeconds))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// backendName normalizes a request's effective backend ("" is "sync",
// mirroring the pipeline) — the circuit breaker's key.
func backendName(b string) string {
	if b == "" {
		return "sync"
	}
	return b
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, 0, ErrorResponse{Error: "POST only"})
		return
	}
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	started := time.Now()
	name := "loop"
	backend := ""
	// deny answers with an error response, logging the decision and landing
	// it in the flight recorder, everything keyed by the correlation ID.
	deny := func(level slog.Level, code int, retryAfter time.Duration, resp ErrorResponse) {
		resp.RequestID = rid
		writeError(w, code, retryAfter, resp)
		s.log.Log(r.Context(), level, "request refused",
			"request_id", rid, "loop", name, "backend", backend,
			"status", code, "reason", resp.Reason, "error", resp.Error)
		s.flight.Add(obs.FlightRecord{Kind: "request", RequestID: rid,
			Request: &obs.RequestRecord{
				Name: name, Backend: backend, Status: code,
				DurationMS: float64(time.Since(started).Microseconds()) / 1e3,
				Err:        resp.Error,
			}})
	}
	s.sm.requests.Add(1)
	if s.draining.Load() {
		s.sm.shedDraining.Add(1)
		deny(slog.LevelWarn, http.StatusServiceUnavailable, time.Second,
			ErrorResponse{Error: "daemon is draining for shutdown", Reason: "draining"})
		return
	}
	var req ScheduleRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxSourceBytes()))
	if err := dec.Decode(&req); err != nil {
		s.sm.clientErrors.Add(1)
		deny(slog.LevelInfo, http.StatusBadRequest, 0, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Name != "" {
		name = req.Name
	}
	if strings.TrimSpace(req.Source) == "" {
		s.sm.clientErrors.Add(1)
		deny(slog.LevelInfo, http.StatusBadRequest, 0, ErrorResponse{Error: "missing source"})
		return
	}
	if req.N < 0 {
		s.sm.clientErrors.Add(1)
		deny(slog.LevelInfo, http.StatusBadRequest, 0, ErrorResponse{Error: fmt.Sprintf("negative trip count n=%d", req.N)})
		return
	}

	// Per-request backend override; fail unknown names before any work.
	opt := s.opt
	if req.Backend != "" {
		opt.Compile.Backend = req.Backend
	}
	backend = backendName(opt.Compile.Backend)
	if _, err := passes.Backend(opt.Compile.Backend, passes.BackendConfig{Sync: opt.Sync, Exact: opt.Compile.Exact}); err != nil {
		s.sm.clientErrors.Add(1)
		deny(slog.LevelInfo, http.StatusBadRequest, 0, ErrorResponse{Error: err.Error()})
		return
	}

	// Network-edge fault probe: chaos tests inject delays (served slow) and
	// failures (served 503) here, before any admission decision.
	if s.cfg.FaultHook != nil {
		if err := s.cfg.FaultHook(stageNet, name); err != nil {
			s.sm.netFaults.Add(1)
			s.sm.serverErrors.Add(1)
			deny(slog.LevelWarn, http.StatusServiceUnavailable, time.Second,
				ErrorResponse{Error: "network fault: " + err.Error()})
			return
		}
	}

	// Admission control: token bucket, then circuit, then bounded queue.
	if ok, wait := s.limiter.admit(r.Header.Get("X-Tenant"), time.Now()); !ok {
		s.sm.shedRate.Add(1)
		deny(slog.LevelWarn, http.StatusTooManyRequests, wait,
			ErrorResponse{Error: "tenant rate limit exceeded", Reason: "ratelimit"})
		return
	}
	if ok, wait := s.breakers.allow(backend, time.Now()); !ok {
		s.sm.shedBreaker.Add(1)
		deny(slog.LevelWarn, http.StatusServiceUnavailable, wait,
			ErrorResponse{Error: fmt.Sprintf("backend %q circuit open", backend), Reason: "breaker"})
		return
	}
	ctx := r.Context()
	if d := s.cfg.requestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, admitted := s.adm.acquire(ctx)
	if !admitted {
		s.sm.shedQueue.Add(1)
		deny(slog.LevelWarn, http.StatusServiceUnavailable, time.Second,
			ErrorResponse{Error: "admission queue full", Reason: "queue"})
		return
	}
	defer release()

	// recordBreaker feeds the circuit only from flight leaders and dumps
	// the flight recorder when this very outcome opened the circuit.
	recordBreaker := func(ok bool, coalesced bool) {
		if coalesced {
			return
		}
		before := s.breakers.opens.Load()
		s.breakers.record(backend, ok, time.Now())
		if s.breakers.opens.Load() > before {
			s.log.Error("circuit breaker opened", "request_id", rid, "backend", backend)
			s.maybeDump("breaker-open")
		}
	}

	// Coalesce on the content address of the scheduling problem: among
	// concurrent identical requests exactly one runs the pipeline; the
	// flight inherits the latest deadline of everyone who joined. The
	// leader's flight carries this request's correlation ID and, when no
	// batch-level observer is configured, a per-flight span recorder whose
	// tree lands in the flight record.
	preq := pipeline.Request{Name: name, Source: req.Source, N: req.N, ID: rid}
	key := pipeline.RequestKey(preq, opt)
	var frec *obs.Recorder
	v, err, coalesced := s.flights.Do(ctx, key, func(fctx context.Context) (any, error) {
		fopt := opt
		if fopt.Observer == nil {
			frec = obs.NewRecorder(512)
			fopt.Observer = frec
		}
		b, err := pipeline.RunContext(fctx, []pipeline.Request{preq}, fopt)
		if err != nil {
			return nil, err
		}
		return &b.Loops[0], nil
	})
	if coalesced {
		s.sm.coalesced.Add(1)
	} else {
		s.sm.flights.Add(1)
	}
	var spans []obs.SpanNode
	if frec != nil {
		spans = obs.SpanNodes(frec.Snapshot())
	}
	record := func(status int, degraded bool, errText string) {
		s.flight.Add(obs.FlightRecord{Kind: "request", RequestID: rid,
			Request: &obs.RequestRecord{
				Name: name, Backend: backend, Status: status,
				DurationMS: float64(time.Since(started).Microseconds()) / 1e3,
				Coalesced:  coalesced, Degraded: degraded,
				Err: errText, Spans: spans,
			}})
	}
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// Our own deadline expired; the flight may still finish for
			// other waiters, so this says nothing about backend health.
			s.sm.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, 0, ErrorResponse{Error: err.Error(), RequestID: rid})
			s.log.Error("request deadline breached",
				"request_id", rid, "loop", name, "backend", backend,
				"error", err.Error())
			record(http.StatusGatewayTimeout, false, err.Error())
			s.maybeDump("deadline")
			return
		}
		s.sm.serverErrors.Add(1)
		recordBreaker(false, coalesced)
		writeError(w, http.StatusInternalServerError, 0, ErrorResponse{Error: err.Error(), RequestID: rid})
		s.log.Error("flight failed",
			"request_id", rid, "loop", name, "backend", backend, "error", err.Error())
		record(http.StatusInternalServerError, false, err.Error())
		return
	}
	res := v.(*pipeline.LoopResult)
	if res.Err != nil {
		status := s.finishError(w, res, rid, func(ok bool) { recordBreaker(ok, coalesced) })
		s.log.Error("request failed",
			"request_id", rid, "loop", name, "backend", backend,
			"status", status, "error", res.Err.Error())
		record(status, false, res.Err.Error())
		if status == http.StatusGatewayTimeout {
			s.maybeDump("deadline")
		}
		return
	}

	// Degraded (fallback-served) results are still correct answers — the
	// fallback passed internal/check — but they mean the backend failed,
	// which is exactly what the circuit breaker wants to know.
	recordBreaker(!res.Degraded(), coalesced)
	s.sm.responsesOK.Add(1)
	resp := &ScheduleResponse{
		Name:      res.Name,
		N:         res.N,
		Key:       fmt.Sprintf("%x", key[:]),
		RequestID: rid,
		Coalesced: coalesced,
		Machines:  make([]MachineResult, len(res.Machines)),
	}
	cacheHits := 0
	for i := range res.Machines {
		m := &res.Machines[i]
		if m.CacheHit {
			cacheHits++
		}
		resp.Machines[i] = MachineResult{
			Machine:        m.Machine,
			Key:            fmt.Sprintf("%x", m.Key[:]),
			ListTime:       m.ListTime,
			SyncTime:       m.SyncTime,
			BestTime:       m.BestTime,
			Improvement:    m.Improvement,
			Backend:        m.Backend,
			PredictedT:     m.PredictedT,
			Optimal:        m.Optimal,
			LowerBound:     m.LowerBound,
			CacheHit:       m.CacheHit,
			Degraded:       m.Degraded,
			DegradedReason: m.DegradedReason,
			SyncSignals:    m.SyncSignals,
			StallCycles:    m.SyncStalls,
			Utilization:    m.SyncUtil,
		}
	}
	for _, d := range res.Lint {
		resp.Lint = append(resp.Lint, d.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
	s.log.Info("request served",
		"request_id", rid, "loop", name, "backend", backend,
		"n", res.N, "machines", len(res.Machines), "cache_hits", cacheHits,
		"coalesced", coalesced, "degraded", res.Degraded(),
		"duration_ms", float64(time.Since(started).Microseconds())/1e3)
	record(http.StatusOK, res.Degraded(), "")
}

// finishError classifies a per-request pipeline error into a status code
// and feeds the circuit breaker (through recordBreaker) only backend-health
// outcomes: compile diagnostics are the client's bad source (400,
// breaker-neutral), expired deadlines are timeouts (504, breaker-neutral —
// the flight may still finish for other waiters), everything else is a
// server failure (500). Returns the status served, for the decision log.
func (s *Server) finishError(w http.ResponseWriter, res *pipeline.LoopResult, rid string, recordBreaker func(ok bool)) int {
	err := res.Err
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.sm.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, 0, ErrorResponse{Error: err.Error(), RequestID: rid})
		return http.StatusGatewayTimeout
	}
	var d *diag.Diagnostic
	if errors.As(err, &d) && !strings.Contains(d.Msg, "panic:") {
		s.sm.clientErrors.Add(1)
		resp := ErrorResponse{Error: err.Error(), RequestID: rid}
		for _, dd := range res.Diags {
			resp.Diagnostics = append(resp.Diagnostics, dd.Error())
		}
		writeError(w, http.StatusBadRequest, 0, resp)
		return http.StatusBadRequest
	}
	s.sm.serverErrors.Add(1)
	recordBreaker(false)
	writeError(w, http.StatusInternalServerError, 0, ErrorResponse{Error: err.Error(), RequestID: rid})
	return http.StatusInternalServerError
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	resp := map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"inflight":       s.adm.inFlight(),
		"queued":         s.adm.queued(),
		"cache_entries":  s.cache.Len(),
	}
	if s.disk != nil {
		resp["disk_entries"] = s.disk.Len()
		resp["disk_loaded"] = s.loadStats.Loaded
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
	s.writePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]any{
		"server":   s.sm.snapshot(s.breakerOpens()),
		"pipeline": s.metrics.Stats(),
	}
	if s.disk != nil {
		resp["disk"] = s.disk.Stats()
		resp["load"] = s.loadStats
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) breakerOpens() int64 {
	if s.breakers == nil {
		return 0
	}
	return s.breakers.opens.Load()
}

// Start listens on addr (":0" picks a free port) and serves the daemon in
// a background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains the daemon: new schedule requests are shed with 503 +
// Retry-After immediately, requests already admitted (and the flights they
// lead) finish up to ctx's deadline, then the listener closes and the
// persistent tier is flushed. Safe without Start (handler-only embeddings):
// it still flips draining and flushes the disk tier.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.srv != nil {
		s.srv.SetKeepAlivesEnabled(false)
		if serr := s.srv.Shutdown(ctx); serr != nil {
			_ = s.srv.Close()
			err = serr
		}
	}
	if s.disk != nil {
		if ferr := s.disk.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
