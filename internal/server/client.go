package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client calls a scheduld daemon with retries: shed responses (429, 503)
// and transport errors are retried under jittered exponential backoff, and
// a Retry-After from the server overrides the computed backoff — the
// daemon knows better than the client when capacity frees up. Other errors
// (400s, 500s, 504s) are returned immediately: retrying a bad loop or a
// deterministic failure only adds load.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Tenant is sent as X-Tenant for rate accounting ("" = default).
	Tenant string
	// RequestID fixes the X-Request-Id sent with every call ("" = a fresh
	// ID per Schedule call, stable across its retries so the daemon's logs
	// show one correlation ID for the whole retry loop).
	RequestID string
	// MaxRetries bounds retry attempts after the first try (0 = 4,
	// negative = no retries).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff (0 = 100ms); MaxBackoff
	// caps it (0 = 5s).
	BaseBackoff, MaxBackoff time.Duration
	// Sleep is the wait function, injectable for tests (nil = real sleep
	// honoring ctx cancellation).
	Sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
}

// StatusError is a non-200 daemon answer that was not retried (or
// exhausted its retries).
type StatusError struct {
	Code int
	Resp ErrorResponse
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("scheduld: %s: %s", http.StatusText(e.Code), e.Resp.Error)
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return 4
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 100 * time.Millisecond
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 5 * time.Second
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the jittered exponential wait for retry attempt (0-based):
// uniform over [base*2^attempt / 2, base*2^attempt], capped at MaxBackoff —
// full-magnitude jitter so a thundering herd of retries decorrelates.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseBackoff() << attempt
	if max := c.maxBackoff(); d > max || d <= 0 {
		d = max
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	half := d / 2
	d = half + time.Duration(c.rng.Int63n(int64(half)+1))
	c.mu.Unlock()
	return d
}

// retryable reports whether a status is worth retrying: only the daemon's
// load sheds are — capacity may free up. Retry-After, when present,
// overrides the exponential backoff.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Schedule posts one loop and returns the daemon's answer, retrying sheds
// as documented on Client.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("scheduld: encode request: %w", err)
	}
	rid := c.RequestID
	if rid == "" {
		rid = newRequestID()
	}
	var last error
	for attempt := 0; ; attempt++ {
		resp, retryAfter, err := c.once(ctx, body, rid)
		if err == nil {
			return resp, nil
		}
		last = err
		se, shed := err.(*StatusError)
		if shed && !retryable(se.Code) {
			return nil, err
		}
		if attempt >= c.maxRetries() {
			return nil, fmt.Errorf("scheduld: giving up after %d attempts: %w", attempt+1, last)
		}
		wait := c.backoff(attempt)
		if retryAfter > 0 {
			wait = retryAfter
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, fmt.Errorf("scheduld: %w (last error: %v)", err, last)
		}
	}
}

// once performs a single attempt; retryAfter carries the server's
// Retry-After on shed responses (0 when absent).
func (c *Client) once(ctx context.Context, body []byte, rid string) (*ScheduleResponse, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("scheduld: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", rid)
	if c.Tenant != "" {
		hreq.Header.Set("X-Tenant", c.Tenant)
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, 0, fmt.Errorf("scheduld: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK {
		var out ScheduleResponse
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			return nil, 0, fmt.Errorf("scheduld: decode response: %w", err)
		}
		return &out, 0, nil
	}
	se := &StatusError{Code: hresp.StatusCode}
	_ = json.NewDecoder(io.LimitReader(hresp.Body, 64<<10)).Decode(&se.Resp)
	var retryAfter time.Duration
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, retryAfter, se
}
