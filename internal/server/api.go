// Package server is the scheduling daemon over the batch pipeline: a
// long-running HTTP/JSON service that turns the library into shared
// infrastructure. Around each request it adds what a batch run never
// needed — request coalescing (concurrent identical requests share one
// computation, see pipeline.Group), admission control and load shedding
// (per-tenant token buckets, a bounded admission queue, a per-backend
// circuit breaker), a crash-safe persistent cache tier (pipeline.DiskStore)
// so restarts come up warm with verified schedules, and a graceful drain on
// SIGTERM. Client is the matching retrying client.
package server

import "doacross/internal/sim"

// ScheduleRequest is the POST /v1/schedule body: one loop to schedule
// under the daemon's configured options. The optional Backend field
// overrides the scheduling backend per request (see passes.BackendNames);
// requests for different backends never coalesce and trip separate
// circuit breakers.
type ScheduleRequest struct {
	// Name labels the loop in responses and logs (defaults to "loop").
	Name string `json:"name,omitempty"`
	// Source is the DOACROSS loop source text.
	Source string `json:"source"`
	// N is the trip count to simulate (0 = the daemon's default).
	N int `json:"n,omitempty"`
	// Backend overrides the scheduling backend ("" = the daemon's).
	Backend string `json:"backend,omitempty"`
}

// MachineResult is one machine configuration's outcome in a response.
type MachineResult struct {
	Machine        string  `json:"machine"`
	Key            string  `json:"key"`
	ListTime       int     `json:"list_time"`
	SyncTime       int     `json:"sync_time"`
	BestTime       int     `json:"best_time,omitempty"`
	Improvement    float64 `json:"improvement_pct"`
	Backend        string  `json:"backend"`
	PredictedT     int     `json:"predicted_t"`
	Optimal        bool    `json:"optimal,omitempty"`
	LowerBound     int     `json:"lower_bound,omitempty"`
	CacheHit       bool    `json:"cache_hit"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	SyncSignals    int     `json:"sync_signals"`
	StallCycles    int     `json:"stall_cycles"`
	// Utilization is the machine-level utilization report of the served
	// (synchronization-aware) schedule's traced simulation — present only
	// when the daemon runs with pipeline utilization tracing and the
	// timing was not served from an untraced cache entry.
	Utilization *sim.Utilization `json:"utilization,omitempty"`
}

// ScheduleResponse is the 200 body of POST /v1/schedule.
type ScheduleResponse struct {
	Name string `json:"name"`
	// N is the trip count the loop was simulated with.
	N int `json:"n"`
	// Key is the content address of the scheduling problem — equal keys
	// mean byte-identical results, and are what concurrent duplicates
	// coalesce on.
	Key string `json:"key"`
	// RequestID echoes the request's correlation ID (the client's
	// X-Request-Id, or the one the daemon minted), the join key for the
	// daemon's structured logs and flight-recorder entries.
	RequestID string `json:"request_id,omitempty"`
	// Coalesced reports that this response was served by another caller's
	// in-flight computation of the same key.
	Coalesced bool `json:"coalesced"`
	// Machines holds one result per configured machine, in order.
	Machines []MachineResult `json:"machines"`
	// Lint carries the synchronization linter's advisory findings.
	Lint []string `json:"lint,omitempty"`
}

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	// Error describes what went wrong.
	Error string `json:"error"`
	// RequestID echoes the request's correlation ID, when one was resolved
	// before the failure.
	RequestID string `json:"request_id,omitempty"`
	// Reason classifies sheds: "draining", "ratelimit", "queue", "breaker".
	Reason string `json:"reason,omitempty"`
	// Diagnostics carries positioned compile diagnostics on 400s.
	Diagnostics []string `json:"diagnostics,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}
