package dlxisa

import (
	"strings"
	"testing"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	n := 14
	for _, src := range []string{
		fig1Source,
		"DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO",
		"DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-2] + E[I]\nENDDO",
		"DO I = 1, N\nS = S + A[I] * B[I]\nENDDO",
	} {
		loop, prog := assemble(t, src, n)
		for _, procs := range []int{0, 1, 3} {
			ref := loop.SeedStore(n, 8, 11)
			got := ref.Clone()
			if err := loop.Run(ref); err != nil {
				t.Fatal(err)
			}
			res, err := prog.RunParallel(got, procs)
			if err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
			if res.Cycles == 0 {
				t.Errorf("procs=%d: zero cycles", procs)
			}
			if d := diffWithin(ref, got, prog.Layout); d != "" {
				t.Errorf("procs=%d: ISA parallel run diverges at %s\n%s", procs, d, src)
			}
		}
	}
}

func TestRunParallelSpeedup(t *testing.T) {
	// A DOALL-ish loop (no carried deps) should scale with processors.
	n := 32
	loop, prog := assemble(t, "DO I = 1, N\nA[I] = E[I] * F[I] + G[I]\nENDDO", n)
	_ = loop
	st1 := loop.SeedStore(n, 4, 3)
	stN := st1.Clone()
	one, err := prog.RunParallel(st1, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := prog.RunParallel(stN, 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.Cycles >= one.Cycles {
		t.Errorf("n processors (%d cycles) not faster than 1 (%d cycles)", all.Cycles, one.Cycles)
	}
	// Perfect parallelism: n processors finish in one body length.
	if all.Cycles != len(prog.Insts) {
		t.Errorf("DOALL parallel cycles = %d, want body length %d", all.Cycles, len(prog.Insts))
	}
}

func TestRunParallelRecurrenceSerializes(t *testing.T) {
	n := 16
	loop, prog := assemble(t, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", n)
	_ = loop
	st := loop.SeedStore(n, 4, 9)
	res, err := prog.RunParallel(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == 0 {
		t.Error("distance-1 recurrence should stall waiting processors")
	}
	// The recurrence forces near-serial progress: total grows with n.
	st2 := loop.SeedStore(2*n, 4, 9)
	st2.SetScalar("N", float64(2*n))
	// Re-assemble with a wider window to cover 2n iterations.
	loop2, prog2 := assemble(t, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", 2*n)
	_ = loop2
	res2, err := prog2.RunParallel(st2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles <= res.Cycles {
		t.Errorf("doubling n did not increase serialized time: %d vs %d", res2.Cycles, res.Cycles)
	}
}

func TestRunParallelRejectsSpills(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("DO I = 1, N\nX[I] = E[I+1]")
	for k := 2; k <= 40; k++ {
		sb.WriteString(" + (E[I+" + itoa(k) + "]")
	}
	sb.WriteString(" + F[I]")
	sb.WriteString(strings.Repeat(")", 39))
	sb.WriteString("\nENDDO")
	loop, prog := assemble(t, sb.String(), 50)
	_ = loop
	if prog.NumSpills == 0 {
		t.Skip("no spills generated")
	}
	st := loop.SeedStore(4, 45, 1)
	if _, err := prog.RunParallel(st, 0); err == nil {
		t.Error("expected spill-free requirement error")
	}
}
