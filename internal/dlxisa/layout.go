package dlxisa

import (
	"fmt"
	"sort"

	"doacross/internal/lang"
)

// Layout assigns flat byte addresses to every array, scalar, constant-pool
// entry and spill slot a compiled loop touches. Addresses are multiples of 4
// (one 64-bit cell per 4-byte "word", matching the front end's scale-by-4
// subscripts).
type Layout struct {
	// ArrayBase maps array name -> byte address of element 0. Element i
	// lives at ArrayBase + 4*i, so bases are chosen so the supported index
	// window [MinIndex, MaxIndex] stays inside the arena.
	ArrayBase map[string]int32
	// ScalarAddr maps scalar name -> byte address.
	ScalarAddr map[string]int32
	// Pool maps float constants to their byte addresses.
	Pool map[float64]int32
	// SpillBase is the byte address of the spill area; slot k lives at
	// SpillBase + 4*k.
	SpillBase int32
	// SpillSlots is the number of reserved spill slots.
	SpillSlots int
	// MinIndex and MaxIndex bound the supported array subscripts.
	MinIndex, MaxIndex int
	// Cells is the total memory size in 64-bit cells.
	Cells int
}

// NewLayout builds a layout for the loop covering subscripts in
// [minIdx, maxIdx], with room for the given float constants and spill slots.
func NewLayout(loop *lang.Loop, minIdx, maxIdx int, consts []float64, spillSlots int) (*Layout, error) {
	if minIdx > maxIdx {
		return nil, fmt.Errorf("dlxisa: bad index window [%d, %d]", minIdx, maxIdx)
	}
	l := &Layout{
		ArrayBase:  map[string]int32{},
		ScalarAddr: map[string]int32{},
		Pool:       map[float64]int32{},
		MinIndex:   minIdx,
		MaxIndex:   maxIdx,
		SpillSlots: spillSlots,
	}
	next := int32(4) // cell 0 reserved (null)
	window := int32(maxIdx - minIdx + 1)
	for _, name := range loop.Arrays() {
		// base + 4*minIdx == next  =>  base = next - 4*minIdx.
		l.ArrayBase[name] = next - 4*int32(minIdx)
		next += 4 * window
	}
	for _, name := range loop.Scalars() {
		l.ScalarAddr[name] = next
		next += 4
	}
	seen := map[float64]bool{}
	ordered := append([]float64(nil), consts...)
	sort.Float64s(ordered)
	for _, c := range ordered {
		if seen[c] {
			continue
		}
		seen[c] = true
		l.Pool[c] = next
		next += 4
	}
	l.SpillBase = next
	next += 4 * int32(spillSlots)
	l.Cells = int(next/4) + 1
	// All absolute addresses are used as signed 16-bit immediates off R0.
	if next > 32000 {
		return nil, fmt.Errorf("dlxisa: layout of %d bytes exceeds the 16-bit addressing window", next)
	}
	return l, nil
}

// ElemAddr returns the byte address of an array element.
func (l *Layout) ElemAddr(name string, idx int) (int32, error) {
	base, ok := l.ArrayBase[name]
	if !ok {
		return 0, fmt.Errorf("dlxisa: unknown array %s", name)
	}
	if idx < l.MinIndex || idx > l.MaxIndex {
		return 0, fmt.Errorf("dlxisa: index %d outside window [%d, %d]", idx, l.MinIndex, l.MaxIndex)
	}
	return base + 4*int32(idx), nil
}

// NewMemory allocates a zeroed memory arena for the layout.
func (l *Layout) NewMemory() []float64 {
	return make([]float64, l.Cells)
}

// LoadStore copies a symbolic store into a flat memory arena. Elements
// outside the index window are rejected.
func (l *Layout) LoadStore(st *lang.Store) ([]float64, error) {
	mem := l.NewMemory()
	for name, arr := range st.Arrays {
		if _, ok := l.ArrayBase[name]; !ok {
			// Arrays the loop never touches can't affect execution.
			continue
		}
		for idx, v := range arr {
			if idx < l.MinIndex || idx > l.MaxIndex {
				// Seeded data outside the arena window is ignored; a real
				// access outside the window faults in the machine instead.
				continue
			}
			a, err := l.ElemAddr(name, idx)
			if err != nil {
				return nil, err
			}
			mem[a/4] = v
		}
	}
	for name, v := range st.Scalars {
		a, ok := l.ScalarAddr[name]
		if !ok {
			// Scalars not referenced by the loop (e.g. stray inputs) are
			// simply dropped; they cannot affect execution.
			continue
		}
		mem[a/4] = v
	}
	for c, a := range l.Pool {
		mem[a/4] = c
	}
	return mem, nil
}

// StoreBack copies a flat memory arena into a symbolic store (overwriting
// the loop's arrays and scalars; other entries are preserved).
func (l *Layout) StoreBack(mem []float64, st *lang.Store) error {
	if len(mem) < l.Cells {
		return fmt.Errorf("dlxisa: memory too small (%d < %d cells)", len(mem), l.Cells)
	}
	for name := range l.ArrayBase {
		for idx := l.MinIndex; idx <= l.MaxIndex; idx++ {
			a, err := l.ElemAddr(name, idx)
			if err != nil {
				return err
			}
			st.SetElem(name, idx, mem[a/4])
		}
	}
	for name, a := range l.ScalarAddr {
		st.SetScalar(name, mem[a/4])
	}
	return nil
}
