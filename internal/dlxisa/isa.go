// Package dlxisa is the machine-code backend standing in for the paper's
// DLX compiler output: it assembles the three-address internal form down to
// a DLX-like 32-bit RISC ISA with real architectural registers (32 integer +
// 32 floating point), linear-scan register allocation with spilling, a
// constant pool, binary encoding, and a straight-line machine interpreter
// over a flat word-addressed memory.
//
// The layer exists for fidelity and validation: the differential tests
// execute every compiled loop three ways — reference interpreter,
// three-address code, and encoded DLX machine code — and require identical
// memory images. Scheduling and multiprocessor simulation operate on the
// three-address form (as the paper's simulator does on its "internal form");
// the ISA backend demonstrates the internal form really is machine-level.
//
// Conventions:
//
//   - Memory is an array of 64-bit cells addressed in bytes, 4 bytes per
//     cell (matching the front end's scale-by-4 subscripts). Integer values
//     stored to memory (spills) travel through float64 cells, exact for
//     |v| < 2^53.
//   - R0 is hardwired zero. R1 holds the induction variable. R2..R31 are
//     allocatable. F0..F31 are allocatable.
//   - There is no control flow inside a loop body (if-conversion upstream),
//     so a body is a straight-line instruction sequence executed once per
//     iteration.
package dlxisa

import (
	"fmt"

	"doacross/internal/lang"
)

// Op is a DLX-like machine opcode.
type Op uint8

// Machine opcodes.
const (
	NOP Op = iota
	// Integer ALU.
	ADD  // rd = rs1 + rs2
	SUB  // rd = rs1 - rs2
	MUL  // rd = rs1 * rs2
	DIV  // rd = rs1 / rs2 (truncating)
	ADDI // rd = rs1 + imm
	SLLI // rd = rs1 << imm
	// Memory.
	LD  // fd = mem[rs1 + imm]        (load double)
	SD  // mem[rs1 + imm] = fs2       (store double)
	LWI // rd = int(mem[rs1 + imm])   (integer spill load)
	SWI // mem[rs1 + imm] = rs2       (integer spill store)
	// Floating point.
	ADDD  // fd = fs1 + fs2
	SUBD  // fd = fs1 - fs2
	MULTD // fd = fs1 * fs2
	DIVD  // fd = fs1 / fs2
	// Conversions.
	CVTI2D // fd = float(rs1)
	CVTD2I // rd = trunc(fs1)
	// Compare (FP operands, integer 0/1 result) — DLX-style set-on-condition.
	CLTD
	CLED
	CGTD
	CGED
	CEQD
	CNED
	// Conditional move: fd = (rs3 != 0) ? fs1 : fs2.
	CMOVD
	// Synchronization (the paper's Send_Signal / Wait_Signal as machine ops).
	SENDS // signal #imm
	WAITS // wait for signal #rd of iteration I-imm
	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	ADDI: "addi", SLLI: "slli", LD: "ld", SD: "sd", LWI: "lwi", SWI: "swi",
	ADDD: "addd", SUBD: "subd", MULTD: "multd", DIVD: "divd",
	CVTI2D: "cvti2d", CVTD2I: "cvtd2i",
	CLTD: "cltd", CLED: "cled", CGTD: "cgtd", CGED: "cged", CEQD: "ceqd", CNED: "cned",
	CMOVD: "cmovd", SENDS: "sends", WAITS: "waits",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Inst is one machine instruction in decoded form.
type Inst struct {
	Op Op
	// Rd is the destination register (integer or FP depending on Op).
	Rd uint8
	// Rs1, Rs2, Rs3 are source registers.
	Rs1, Rs2, Rs3 uint8
	// Imm is the signed 16-bit immediate (address offset, shift amount,
	// signal id/distance).
	Imm int16
}

// CmpOf maps a front-end relational operator to its compare opcode.
func CmpOf(op lang.RelOp) Op {
	switch op {
	case lang.RelLT:
		return CLTD
	case lang.RelLE:
		return CLED
	case lang.RelGT:
		return CGTD
	case lang.RelGE:
		return CGED
	case lang.RelEQ:
		return CEQD
	case lang.RelNE:
		return CNED
	}
	return NOP
}

// String renders the instruction in assembly style.
func (in Inst) String() string {
	switch in.Op {
	case NOP:
		return "nop"
	case ADD, SUB, MUL, DIV:
		return fmt.Sprintf("%-6s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ADDI, SLLI:
		return fmt.Sprintf("%-6s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LD:
		return fmt.Sprintf("%-6s f%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case SD:
		return fmt.Sprintf("%-6s f%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case LWI:
		return fmt.Sprintf("%-6s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case SWI:
		return fmt.Sprintf("%-6s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ADDD, SUBD, MULTD, DIVD:
		return fmt.Sprintf("%-6s f%d, f%d, f%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case CVTI2D:
		return fmt.Sprintf("%-6s f%d, r%d", in.Op, in.Rd, in.Rs1)
	case CVTD2I:
		return fmt.Sprintf("%-6s r%d, f%d", in.Op, in.Rd, in.Rs1)
	case CLTD, CLED, CGTD, CGED, CEQD, CNED:
		return fmt.Sprintf("%-6s r%d, f%d, f%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case CMOVD:
		return fmt.Sprintf("%-6s f%d, r%d, f%d, f%d", in.Op, in.Rd, in.Rs3, in.Rs1, in.Rs2)
	case SENDS:
		return fmt.Sprintf("%-6s #%d", in.Op, in.Imm)
	case WAITS:
		return fmt.Sprintf("%-6s #%d, -%d", in.Op, in.Rd, in.Imm)
	}
	return fmt.Sprintf("%v ?", in.Op)
}

// Encoding: op(6) | rd(5) | rs1(5) | rs2(5) | rs3(5) | spare(6) for register
// forms; the immediate forms reuse the low 16 bits:
// op(6) | rd(5) | rs1(5) | imm(16).

// hasImm reports whether the op uses the 16-bit immediate field.
func hasImm(o Op) bool {
	switch o {
	case ADDI, SLLI, LD, SD, LWI, SWI, SENDS, WAITS:
		return true
	}
	return false
}

// Encode packs the instruction into a 32-bit word.
func Encode(in Inst) (uint32, error) {
	if in.Op >= numOps {
		return 0, fmt.Errorf("dlxisa: invalid opcode %d", in.Op)
	}
	if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 || in.Rs3 > 31 {
		return 0, fmt.Errorf("dlxisa: register out of range in %v", in)
	}
	w := uint32(in.Op)<<26 | uint32(in.Rd)<<21
	if hasImm(in.Op) {
		// Immediate form keeps one register source beside rd; SD/SWI carry
		// the stored register in Rs2, which must fit the 5 bits above imm...
		// it does not in this layout, so stores place the base in rs1 and
		// the source register in rd (rd is otherwise unused for stores).
		reg := in.Rs1
		if in.Op == SD || in.Op == SWI {
			// rd field = source register, rs1 field = base.
			w = uint32(in.Op)<<26 | uint32(in.Rs2)<<21
			reg = in.Rs1
		}
		w |= uint32(reg) << 16
		w |= uint32(uint16(in.Imm))
		return w, nil
	}
	w |= uint32(in.Rs1)<<16 | uint32(in.Rs2)<<11 | uint32(in.Rs3)<<6
	return w, nil
}

// Decode unpacks a 32-bit word.
func Decode(w uint32) (Inst, error) {
	op := Op(w >> 26)
	if op >= numOps {
		return Inst{}, fmt.Errorf("dlxisa: invalid opcode %d in %#x", op, w)
	}
	var in Inst
	in.Op = op
	if hasImm(op) {
		rd := uint8(w >> 21 & 31)
		rs1 := uint8(w >> 16 & 31)
		in.Imm = int16(uint16(w & 0xFFFF))
		switch op {
		case SD, SWI:
			in.Rs2 = rd // stored register
			in.Rs1 = rs1
		default:
			in.Rd = rd
			in.Rs1 = rs1
		}
		return in, nil
	}
	in.Rd = uint8(w >> 21 & 31)
	in.Rs1 = uint8(w >> 16 & 31)
	in.Rs2 = uint8(w >> 11 & 31)
	in.Rs3 = uint8(w >> 6 & 31)
	return in, nil
}

// EncodeAll encodes a sequence.
func EncodeAll(ins []Inst) ([]uint32, error) {
	out := make([]uint32, len(ins))
	for i, in := range ins {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// DecodeAll decodes a sequence.
func DecodeAll(ws []uint32) ([]Inst, error) {
	out := make([]Inst, len(ws))
	for i, w := range ws {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
