package dlxisa

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"doacross/internal/tac"
)

// Program is an assembled loop body: machine instructions with physical
// registers, the memory layout, and the encoded words.
type Program struct {
	TAC    *tac.Program
	Layout *Layout
	// Insts is the straight-line body of one iteration.
	Insts []Inst
	// Words is the binary encoding of Insts.
	Words []uint32
	// Signals maps signal id -> signal (source statement) name.
	Signals []string
	// NumSpills is the number of spill slots used by register allocation.
	NumSpills int
}

// regClass partitions virtual registers.
type regClass int

const (
	intReg regClass = iota
	fpReg
)

// vreg is a virtual register id (per class).
type vreg struct {
	class regClass
	id    int
}

// virtual instruction: an Inst whose register fields hold vreg ids instead
// of physical numbers, plus late-patched address info.
type vinst struct {
	op             Op
	rd, s1, s2, s3 int // vreg ids (-1 = unused); for int fields of fp ops see class tables below
	imm            int32
	// addr describes how imm must be patched after layout:
	// "": literal imm; "array:NAME": array base; "scalar:NAME": scalar
	// address; "pool": pool address of constVal; "spill": spill slot base.
	addr     string
	constVal float64
	slot     int
}

// classes of the register fields per opcode (dest, s1, s2, s3).
func fieldClasses(op Op) (d, a, b, c regClass, hasD, hasA, hasB, hasC bool) {
	switch op {
	case ADD, SUB, MUL, DIV:
		return intReg, intReg, intReg, 0, true, true, true, false
	case ADDI, SLLI:
		return intReg, intReg, 0, 0, true, true, false, false
	case LD:
		return fpReg, intReg, 0, 0, true, true, false, false
	case SD:
		return 0, intReg, fpReg, 0, false, true, true, false
	case LWI:
		return intReg, intReg, 0, 0, true, true, false, false
	case SWI:
		return 0, intReg, intReg, 0, false, true, true, false
	case ADDD, SUBD, MULTD, DIVD:
		return fpReg, fpReg, fpReg, 0, true, true, true, false
	case CVTI2D:
		return fpReg, intReg, 0, 0, true, true, false, false
	case CVTD2I:
		return intReg, fpReg, 0, 0, true, true, false, false
	case CLTD, CLED, CGTD, CGED, CEQD, CNED:
		return intReg, fpReg, fpReg, 0, true, true, true, false
	case CMOVD:
		return fpReg, fpReg, fpReg, intReg, true, true, true, true
	case WAITS:
		return 0, 0, 0, 0, false, false, false, false
	}
	return 0, 0, 0, 0, false, false, false, false
}

// asm is the instruction-selection and allocation state.
type asm struct {
	prog    *tac.Program
	vinsts  []vinst
	nextVR  [2]int
	tempVR  map[int]vreg // TAC temp -> vreg
	consts  map[float64]bool
	signals []string
	sigID   map[string]int
}

// ivVreg is the pinned virtual register holding the induction variable
// (int class, id 0, mapped to R1).
const ivID = 0

func (a *asm) newVR(c regClass) vreg {
	a.nextVR[c]++
	return vreg{class: c, id: a.nextVR[c]}
}

func (a *asm) emit(v vinst) int {
	a.vinsts = append(a.vinsts, v)
	return len(a.vinsts) - 1
}

// asInt returns a vreg id holding the operand as an integer, emitting
// conversion/materialization code as needed.
func (a *asm) asInt(o tac.Operand) (int, error) {
	switch o.Kind {
	case tac.Temp:
		vr, ok := a.tempVR[o.Reg]
		if !ok {
			return 0, fmt.Errorf("dlxisa: use of unassigned temp t%d", o.Reg)
		}
		if vr.class == intReg {
			return vr.id, nil
		}
		nv := a.newVR(intReg)
		a.emit(vinst{op: CVTD2I, rd: nv.id, s1: vr.id})
		return nv.id, nil
	case tac.IV:
		return ivID, nil
	case tac.Const:
		if o.Val != math.Trunc(o.Val) || o.Val > 32000 || o.Val < -32000 {
			return 0, fmt.Errorf("dlxisa: integer immediate %v out of range", o.Val)
		}
		nv := a.newVR(intReg)
		a.emit(vinst{op: ADDI, rd: nv.id, s1: -1, imm: int32(o.Val)}) // s1=-1 means R0
		return nv.id, nil
	}
	return 0, fmt.Errorf("dlxisa: bad operand")
}

// asFP returns a vreg id holding the operand as a float.
func (a *asm) asFP(o tac.Operand) (int, error) {
	switch o.Kind {
	case tac.Temp:
		vr, ok := a.tempVR[o.Reg]
		if !ok {
			return 0, fmt.Errorf("dlxisa: use of unassigned temp t%d", o.Reg)
		}
		if vr.class == fpReg {
			return vr.id, nil
		}
		nv := a.newVR(fpReg)
		a.emit(vinst{op: CVTI2D, rd: nv.id, s1: vr.id})
		return nv.id, nil
	case tac.IV:
		nv := a.newVR(fpReg)
		a.emit(vinst{op: CVTI2D, rd: nv.id, s1: ivID})
		return nv.id, nil
	case tac.Const:
		a.consts[o.Val] = true
		nv := a.newVR(fpReg)
		a.emit(vinst{op: LD, rd: nv.id, s1: -1, addr: "pool", constVal: o.Val})
		return nv.id, nil
	}
	return 0, fmt.Errorf("dlxisa: bad operand")
}

// defTemp binds a TAC temp to a fresh vreg of the given class.
func (a *asm) defTemp(t int, c regClass) int {
	vr := a.newVR(c)
	a.tempVR[t] = vr
	return vr.id
}

// selectInstr lowers one TAC instruction.
func (a *asm) selectInstr(in *tac.Instr) error {
	switch in.Op {
	case tac.Shl:
		s, err := a.asInt(in.A)
		if err != nil {
			return err
		}
		a.emit(vinst{op: SLLI, rd: a.defTemp(in.Dst, intReg), s1: s, imm: 2})
	case tac.Add, tac.Sub:
		if in.IntegerTyped {
			// Fold a constant right operand into ADDI.
			if in.B.Kind == tac.Const && in.B.Val == math.Trunc(in.B.Val) &&
				in.B.Val < 32000 && in.B.Val > -32000 {
				s, err := a.asInt(in.A)
				if err != nil {
					return err
				}
				imm := int32(in.B.Val)
				if in.Op == tac.Sub {
					imm = -imm
				}
				a.emit(vinst{op: ADDI, rd: a.defTemp(in.Dst, intReg), s1: s, imm: imm})
				return nil
			}
			s1, err := a.asInt(in.A)
			if err != nil {
				return err
			}
			s2, err := a.asInt(in.B)
			if err != nil {
				return err
			}
			op := ADD
			if in.Op == tac.Sub {
				op = SUB
			}
			a.emit(vinst{op: op, rd: a.defTemp(in.Dst, intReg), s1: s1, s2: s2})
			return nil
		}
		s1, err := a.asFP(in.A)
		if err != nil {
			return err
		}
		s2, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		op := ADDD
		if in.Op == tac.Sub {
			op = SUBD
		}
		a.emit(vinst{op: op, rd: a.defTemp(in.Dst, fpReg), s1: s1, s2: s2})
	case tac.Mul, tac.Div:
		s1, err := a.asFP(in.A)
		if err != nil {
			return err
		}
		s2, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		op := MULTD
		if in.Op == tac.Div {
			op = DIVD
		}
		a.emit(vinst{op: op, rd: a.defTemp(in.Dst, fpReg), s1: s1, s2: s2})
	case tac.Move:
		if in.IntegerTyped {
			s, err := a.asInt(in.A)
			if err != nil {
				return err
			}
			a.emit(vinst{op: ADDI, rd: a.defTemp(in.Dst, intReg), s1: s, imm: 0})
			return nil
		}
		// FP move: fd = fs + 0.0 via the pool zero.
		s, err := a.asFP(in.A)
		if err != nil {
			return err
		}
		a.consts[0] = true
		z := a.newVR(fpReg)
		a.emit(vinst{op: LD, rd: z.id, s1: -1, addr: "pool", constVal: 0})
		a.emit(vinst{op: ADDD, rd: a.defTemp(in.Dst, fpReg), s1: s, s2: z.id})
	case tac.Load:
		addr, err := a.asInt(in.A)
		if err != nil {
			return err
		}
		a.emit(vinst{op: LD, rd: a.defTemp(in.Dst, fpReg), s1: addr, addr: "array:" + in.Array})
	case tac.Store:
		addr, err := a.asInt(in.A)
		if err != nil {
			return err
		}
		val, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		a.emit(vinst{op: SD, s1: addr, s2: val, addr: "array:" + in.Array})
	case tac.LoadS:
		a.emit(vinst{op: LD, rd: a.defTemp(in.Dst, fpReg), s1: -1, addr: "scalar:" + in.Array})
	case tac.StoreS:
		val, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		a.emit(vinst{op: SD, s1: -1, s2: val, addr: "scalar:" + in.Array})
	case tac.Cmp:
		s1, err := a.asFP(in.A)
		if err != nil {
			return err
		}
		s2, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		a.emit(vinst{op: CmpOf(in.Rel), rd: a.defTemp(in.Dst, intReg), s1: s1, s2: s2})
	case tac.Select:
		cnd, err := a.asInt(in.C)
		if err != nil {
			return err
		}
		s1, err := a.asFP(in.A)
		if err != nil {
			return err
		}
		s2, err := a.asFP(in.B)
		if err != nil {
			return err
		}
		a.emit(vinst{op: CMOVD, rd: a.defTemp(in.Dst, fpReg), s1: s1, s2: s2, s3: cnd})
	case tac.Send:
		a.emit(vinst{op: SENDS, imm: int32(a.signalID(in.Signal))})
	case tac.Wait:
		a.emit(vinst{op: WAITS, rd: a.signalID(in.Signal), imm: int32(in.SigDist)})
	default:
		return fmt.Errorf("dlxisa: cannot select %v", in)
	}
	return nil
}

func (a *asm) signalID(name string) int {
	if id, ok := a.sigID[name]; ok {
		return id
	}
	id := len(a.signals)
	a.signals = append(a.signals, name)
	a.sigID[name] = id
	return id
}

// Assemble compiles a TAC program to machine code. minIdx/maxIdx bound the
// array subscripts the generated code may touch at run time.
func Assemble(p *tac.Program, minIdx, maxIdx int) (*Program, error) {
	a := &asm{
		prog:   p,
		tempVR: map[int]vreg{},
		consts: map[float64]bool{},
		sigID:  map[string]int{},
	}
	for _, in := range p.Instrs {
		if err := a.selectInstr(in); err != nil {
			return nil, err
		}
	}
	consts := make([]float64, 0, len(a.consts))
	for c := range a.consts {
		consts = append(consts, c)
	}
	sort.Float64s(consts)

	alloc, spills, err := allocate(a.vinsts, a.nextVR)
	if err != nil {
		return nil, err
	}
	layout, err := NewLayout(p.Sync.Base, minIdx, maxIdx, consts, spills)
	if err != nil {
		return nil, err
	}
	insts, err := patch(alloc, layout)
	if err != nil {
		return nil, err
	}
	words, err := EncodeAll(insts)
	if err != nil {
		return nil, err
	}
	return &Program{
		TAC:       p,
		Layout:    layout,
		Insts:     insts,
		Words:     words,
		Signals:   a.signals,
		NumSpills: spills,
	}, nil
}

// patch resolves symbolic addresses to layout immediates.
func patch(vs []vinst, l *Layout) ([]Inst, error) {
	out := make([]Inst, len(vs))
	for i, v := range vs {
		imm := v.imm
		switch {
		case v.addr == "":
		case v.addr == "pool":
			imm += int32(l.Pool[v.constVal])
		case v.addr == "spill":
			imm = l.SpillBase + 4*int32(v.slot)
		case strings.HasPrefix(v.addr, "array:"):
			base, ok := l.ArrayBase[v.addr[6:]]
			if !ok {
				return nil, fmt.Errorf("dlxisa: unknown array %q", v.addr[6:])
			}
			imm += base
		case strings.HasPrefix(v.addr, "scalar:"):
			addr, ok := l.ScalarAddr[v.addr[7:]]
			if !ok {
				return nil, fmt.Errorf("dlxisa: unknown scalar %q", v.addr[7:])
			}
			imm += addr
		default:
			return nil, fmt.Errorf("dlxisa: bad address kind %q", v.addr)
		}
		if imm > 32767 || imm < -32768 {
			return nil, fmt.Errorf("dlxisa: immediate %d overflows 16 bits", imm)
		}
		out[i] = Inst{
			Op:  v.op,
			Rd:  uint8(v.rd),
			Rs1: uint8(v.s1),
			Rs2: uint8(v.s2),
			Rs3: uint8(v.s3),
			Imm: int16(imm),
		}
	}
	return out, nil
}

// Listing renders the assembled body.
func (p *Program) Listing() string {
	var sb strings.Builder
	for i, in := range p.Insts {
		fmt.Fprintf(&sb, "%4d: %08x  %s\n", i, p.Words[i], in)
	}
	return sb.String()
}

// Signal name for an id.
func (p *Program) Signal(id int) string {
	if id < 0 || id >= len(p.Signals) {
		return fmt.Sprintf("sig%d", id)
	}
	return p.Signals[id]
}
