package dlxisa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"doacross/internal/dep"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func assemble(t testing.TB, src string, n int) (*lang.Loop, *Program) {
	t.Helper()
	loop := lang.MustParse(src)
	a := dep.Analyze(loop)
	p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(p, 1-16, n+16)
	if err != nil {
		t.Fatal(err)
	}
	return loop, prog
}

func TestEncodeDecodeRoundTripAll(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: ADD, Rd: 3, Rs1: 4, Rs2: 5},
		{Op: SUB, Rd: 31, Rs1: 0, Rs2: 1},
		{Op: ADDI, Rd: 7, Rs1: 1, Imm: -32768},
		{Op: SLLI, Rd: 2, Rs1: 3, Imm: 2},
		{Op: LD, Rd: 12, Rs1: 9, Imm: 32767},
		{Op: SD, Rs1: 9, Rs2: 13, Imm: -4},
		{Op: LWI, Rd: 8, Rs1: 0, Imm: 400},
		{Op: SWI, Rs1: 0, Rs2: 8, Imm: 404},
		{Op: ADDD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: MULTD, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: CVTI2D, Rd: 5, Rs1: 6},
		{Op: CVTD2I, Rd: 6, Rs1: 5},
		{Op: CLTD, Rd: 4, Rs1: 1, Rs2: 2},
		{Op: CMOVD, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4},
		{Op: SENDS, Imm: 3},
		{Op: WAITS, Rd: 2, Imm: 7},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: %v -> %#x -> %v", in, w, got)
		}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := Inst{Op: Op(r.Intn(int(numOps)))}
		if hasImm(in.Op) {
			in.Imm = int16(r.Intn(1 << 16))
			switch in.Op {
			case SD, SWI:
				in.Rs1 = uint8(r.Intn(32))
				in.Rs2 = uint8(r.Intn(32))
			default:
				in.Rd = uint8(r.Intn(32))
				in.Rs1 = uint8(r.Intn(32))
			}
		} else {
			in.Rd = uint8(r.Intn(32))
			in.Rs1 = uint8(r.Intn(32))
			in.Rs2 = uint8(r.Intn(32))
			in.Rs3 = uint8(r.Intn(32))
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 26); err == nil {
		t.Error("expected decode error for invalid opcode")
	}
}

func TestAssembleFig1(t *testing.T) {
	_, prog := assemble(t, fig1Source, 20)
	if len(prog.Insts) == 0 {
		t.Fatal("no instructions")
	}
	if len(prog.Words) != len(prog.Insts) {
		t.Fatal("encoding length mismatch")
	}
	ls := prog.Listing()
	for _, want := range []string{"slli", "ld", "sd", "multd", "sends", "waits"} {
		if !strings.Contains(ls, want) {
			t.Errorf("listing missing %s:\n%s", want, ls)
		}
	}
	if len(prog.Signals) != 1 || prog.Signal(0) != "S3" {
		t.Errorf("signals = %v", prog.Signals)
	}
}

func TestRunMatchesInterpreter(t *testing.T) {
	n := 12
	loop, prog := assemble(t, fig1Source, n)
	ref := loop.SeedStore(n, 8, 77)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(got, false); err != nil {
		t.Fatal(err)
	}
	// The flat arena only covers the index window; compare within it.
	if d := diffWithin(ref, got, prog.Layout); d != "" {
		t.Errorf("DLX execution diverges: %s\n%s", d, prog.Listing())
	}
}

func TestRunEncodedMatchesDecoded(t *testing.T) {
	n := 8
	loop, prog := assemble(t, fig1Source, n)
	a := loop.SeedStore(n, 8, 3)
	b := a.Clone()
	if err := prog.Run(a, false); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(b, true); err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("encoded vs decoded execution differ: %s", d)
	}
}

// diffWithin compares two stores on the arrays/scalars and index window the
// layout covers.
func diffWithin(ref, got *lang.Store, l *Layout) string {
	for name := range l.ArrayBase {
		for i := l.MinIndex; i <= l.MaxIndex; i++ {
			a, b := ref.Elem(name, i), got.Elem(name, i)
			if a != b && !(a != a && b != b) {
				return name + "[" + itoa(i) + "]"
			}
		}
	}
	for name := range l.ScalarAddr {
		if ref.Scalar(name) != got.Scalar(name) {
			return "scalar " + name
		}
	}
	return ""
}

func itoa(i int) string {
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
		if i == 0 {
			break
		}
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestConditionalLoopOnISA(t *testing.T) {
	n := 10
	src := "DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + E[I]\nENDDO"
	loop, prog := assemble(t, src, n)
	ref := loop.SeedStore(n, 6, 5)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(got, true); err != nil {
		t.Fatal(err)
	}
	if d := diffWithin(ref, got, prog.Layout); d != "" {
		t.Errorf("conditional ISA execution diverges at %s", d)
	}
	ls := prog.Listing()
	if !strings.Contains(ls, "cgtd") || !strings.Contains(ls, "cmovd") {
		t.Errorf("expected compare+cmov in listing:\n%s", ls)
	}
}

func TestReductionOnISA(t *testing.T) {
	n := 9
	src := "DO I = 1, N\nS = S + A[I] * B[I]\nENDDO"
	loop, prog := assemble(t, src, n)
	ref := loop.SeedStore(n, 4, 8)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(got, true); err != nil {
		t.Fatal(err)
	}
	if ref.Scalar("S") != got.Scalar("S") {
		t.Errorf("S = %v, want %v", got.Scalar("S"), ref.Scalar("S"))
	}
}

// TestSpillPressure forces more live values than registers and checks
// correctness survives spilling.
func TestSpillPressure(t *testing.T) {
	// A right-nested product keeps every operand live until the recursion
	// unwinds: ~40 simultaneously live FP values against 32 registers.
	var sb strings.Builder
	sb.WriteString("DO I = 1, N\nX[I] = E[I+1]")
	depth := 40
	for k := 2; k <= depth; k++ {
		sb.WriteString(" + (E[I+" + itoa(k) + "]")
	}
	sb.WriteString(" + F[I]")
	sb.WriteString(strings.Repeat(")", depth-1))
	sb.WriteString("\nENDDO")
	n := 4
	loop, prog := assemble(t, sb.String(), n+50)
	if prog.NumSpills == 0 {
		t.Fatalf("expected spills for 40 live products, got none")
	}
	ref := loop.SeedStore(n, 60, 21)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(got, true); err != nil {
		t.Fatal(err)
	}
	if d := diffWithin(ref, got, prog.Layout); d != "" {
		t.Errorf("spilled execution diverges at %s", d)
	}
}

func TestQuickISAMatchesInterpreter(t *testing.T) {
	arrays := []string{"A", "B", "C"}
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
		nst := 1 + r.Intn(4)
		ref := func() lang.Expr {
			return &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{
				Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(7) - 3)}}}
		}
		for k := 0; k < nst; k++ {
			st := &lang.Assign{
				Label: "S" + itoa(k+1),
				LHS:   &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(3))}}},
				RHS:   &lang.Binary{Op: lang.BinOp(r.Intn(3)), L: ref(), R: ref()},
			}
			if r.Intn(3) == 0 {
				st.Cond = &lang.Cond{Op: lang.RelOp(r.Intn(6)), L: ref(), R: &lang.Const{Value: float64(r.Intn(5) - 2)}}
			}
			loop.Body = append(loop.Body, st)
		}
		a := dep.Analyze(loop)
		p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return false
		}
		n := 6
		prog, err := Assemble(p, 1-12, n+12)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		refSt := loop.SeedStore(n, 10, uint64(seed))
		gotSt := refSt.Clone()
		if err := loop.Run(refSt); err != nil {
			return true
		}
		if err := prog.Run(gotSt, true); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, loop)
			return false
		}
		if d := diffWithin(refSt, gotSt, prog.Layout); d != "" {
			t.Logf("seed %d: diverges at %s\n%s\n%s", seed, d, loop, prog.Listing())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLayoutAddressing(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	l, err := NewLayout(loop, -5, 25, []float64{1.5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct arrays never overlap.
	type span struct{ lo, hi int32 }
	var spans []span
	for name := range l.ArrayBase {
		lo, err := l.ElemAddr(name, -5)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := l.ElemAddr(name, 25)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span{lo, hi})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo <= spans[j].hi && spans[j].lo <= spans[i].hi {
				t.Errorf("array spans overlap: %v vs %v", spans[i], spans[j])
			}
		}
	}
	if _, err := l.ElemAddr("A", 26); err == nil {
		t.Error("expected out-of-window error")
	}
	if _, err := l.ElemAddr("NOPE", 0); err == nil {
		t.Error("expected unknown-array error")
	}
}

func TestLayoutStoreRoundTrip(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	l, err := NewLayout(loop, -8, 20, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := loop.SeedStore(12, 8, 4)
	mem, err := l.LoadStore(st)
	if err != nil {
		t.Fatal(err)
	}
	back := lang.NewStore()
	if err := l.StoreBack(mem, back); err != nil {
		t.Fatal(err)
	}
	for _, name := range loop.Arrays() {
		for i := -8 + 1; i <= 20; i++ {
			if st.Elem(name, i) != back.Elem(name, i) {
				t.Fatalf("%s[%d]: %v vs %v", name, i, st.Elem(name, i), back.Elem(name, i))
			}
		}
	}
	if back.Scalar("N") != st.Scalar("N") {
		t.Error("scalar N lost in round trip")
	}
}

func TestLayoutTooBig(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	if _, err := NewLayout(loop, 0, 10000, nil, 0); err == nil {
		t.Error("expected 16-bit window overflow error")
	}
}

func TestMachineFaults(t *testing.T) {
	m := NewMachine(make([]float64, 8))
	if err := m.Step(Inst{Op: LD, Rd: 1, Rs1: 0, Imm: 400}); err == nil {
		t.Error("expected out-of-bounds fault")
	}
	m.R[2] = 3
	if err := m.Step(Inst{Op: LD, Rd: 1, Rs1: 2, Imm: 0}); err == nil {
		t.Error("expected misalignment fault")
	}
	m.R[3] = 0
	if err := m.Step(Inst{Op: DIV, Rd: 1, Rs1: 2, Rs2: 3}); err == nil {
		t.Error("expected divide-by-zero fault")
	}
}

func TestR0Hardwired(t *testing.T) {
	m := NewMachine(make([]float64, 8))
	if err := m.Step(Inst{Op: ADDI, Rd: 0, Rs1: 0, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	if m.R[0] != 0 {
		t.Error("R0 must stay zero")
	}
}

func TestSyncHooks(t *testing.T) {
	n := 4
	loop, prog := assemble(t, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO", n)
	_ = loop
	mem := prog.Layout.NewMemory()
	m := NewMachine(mem)
	var sends, waits int
	m.Hooks.Send = func(sig int) { sends++ }
	m.Hooks.Wait = func(sig, dist int) error {
		waits++
		if dist != 1 {
			t.Errorf("wait distance = %d, want 1", dist)
		}
		return nil
	}
	if err := prog.RunIteration(m, 1); err != nil {
		t.Fatal(err)
	}
	if sends != 1 || waits != 1 {
		t.Errorf("sends=%d waits=%d, want 1/1", sends, waits)
	}
}

func TestAssembleScalarSubscriptAndDivision(t *testing.T) {
	// Exercises: scalar load in index position (asInt of an FP temp ->
	// CVTD2I), float constants in value arithmetic (pool loads), division,
	// and a guarded statement mixing IV into the compare (CVTI2D).
	n := 6
	src := "DO I = 1, N\nB[I] = A[J+1] / 2.5\nIF (E[I] > I) C[I] = 0.5 * E[I]\nENDDO"
	loop, prog := assemble(t, src, n)
	ref := loop.SeedStore(n, 10, 9)
	ref.SetScalar("J", 3)
	got := ref.Clone()
	if err := loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(got, true); err != nil {
		t.Fatal(err)
	}
	if d := diffWithin(ref, got, prog.Layout); d != "" {
		t.Errorf("mixed-class execution diverges at %s\n%s", d, prog.Listing())
	}
	ls := prog.Listing()
	for _, want := range []string{"cvtd2i", "cvti2d", "divd"} {
		if !strings.Contains(ls, want) {
			t.Errorf("expected %s in listing:\n%s", want, ls)
		}
	}
}

func TestAssembleRejectsHugeIntImmediate(t *testing.T) {
	loop := lang.MustParse("DO I = 1, N\nA[I+40000] = 1\nENDDO")
	a := dep.Analyze(loop)
	p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(p, 1, 8); err == nil {
		t.Error("expected immediate-range or layout error for subscript offset 40000")
	}
}

func TestInstStringsAllOps(t *testing.T) {
	for op := NOP; op < numOps; op++ {
		s := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4, Imm: 5}.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("op %v renders %q", op, s)
		}
	}
}
