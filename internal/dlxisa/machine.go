package dlxisa

import (
	"fmt"
	"math"

	"doacross/internal/lang"
)

// Machine is one DLX-like processor: 32 integer registers, 32 FP registers,
// and a (shared) flat memory of 64-bit cells addressed in 4-byte words.
type Machine struct {
	R   [32]int64
	F   [32]float64
	Mem []float64
	// Hooks intercept synchronization instructions. Nil hooks make SENDS /
	// WAITS no-ops (sequential execution).
	Hooks Hooks
}

// Hooks connect the machine to a synchronization substrate.
type Hooks struct {
	// Send is called with the signal id when SENDS executes.
	Send func(sig int)
	// Wait is called with the signal id and distance; it may block (in a
	// simulation sense) or return an error.
	Wait func(sig, dist int) error
}

// NewMachine returns a machine over the given memory.
func NewMachine(mem []float64) *Machine {
	return &Machine{Mem: mem}
}

func (m *Machine) cell(addr int64) (int, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("dlxisa: misaligned address %d", addr)
	}
	c := int(addr / 4)
	if c < 0 || c >= len(m.Mem) {
		return 0, fmt.Errorf("dlxisa: address %d out of bounds (%d cells)", addr, len(m.Mem))
	}
	return c, nil
}

// Step executes one decoded instruction.
func (m *Machine) Step(in Inst) error {
	m.R[0] = 0
	switch in.Op {
	case NOP:
	case ADD:
		m.R[in.Rd] = m.R[in.Rs1] + m.R[in.Rs2]
	case SUB:
		m.R[in.Rd] = m.R[in.Rs1] - m.R[in.Rs2]
	case MUL:
		m.R[in.Rd] = m.R[in.Rs1] * m.R[in.Rs2]
	case DIV:
		if m.R[in.Rs2] == 0 {
			return fmt.Errorf("dlxisa: integer division by zero")
		}
		m.R[in.Rd] = m.R[in.Rs1] / m.R[in.Rs2]
	case ADDI:
		m.R[in.Rd] = m.R[in.Rs1] + int64(in.Imm)
	case SLLI:
		m.R[in.Rd] = m.R[in.Rs1] << uint(in.Imm)
	case LD:
		c, err := m.cell(m.R[in.Rs1] + int64(in.Imm))
		if err != nil {
			return err
		}
		m.F[in.Rd] = m.Mem[c]
	case SD:
		c, err := m.cell(m.R[in.Rs1] + int64(in.Imm))
		if err != nil {
			return err
		}
		m.Mem[c] = m.F[in.Rs2]
	case LWI:
		c, err := m.cell(m.R[in.Rs1] + int64(in.Imm))
		if err != nil {
			return err
		}
		m.R[in.Rd] = int64(m.Mem[c])
	case SWI:
		c, err := m.cell(m.R[in.Rs1] + int64(in.Imm))
		if err != nil {
			return err
		}
		m.Mem[c] = float64(m.R[in.Rs2])
	case ADDD:
		m.F[in.Rd] = m.F[in.Rs1] + m.F[in.Rs2]
	case SUBD:
		m.F[in.Rd] = m.F[in.Rs1] - m.F[in.Rs2]
	case MULTD:
		m.F[in.Rd] = m.F[in.Rs1] * m.F[in.Rs2]
	case DIVD:
		m.F[in.Rd] = m.F[in.Rs1] / m.F[in.Rs2]
	case CVTI2D:
		m.F[in.Rd] = float64(m.R[in.Rs1])
	case CVTD2I:
		v := m.F[in.Rs1]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dlxisa: converting non-finite %v to integer", v)
		}
		m.R[in.Rd] = int64(math.Trunc(v))
	case CLTD, CLED, CGTD, CGED, CEQD, CNED:
		a, b := m.F[in.Rs1], m.F[in.Rs2]
		var holds bool
		switch in.Op {
		case CLTD:
			holds = a < b
		case CLED:
			holds = a <= b
		case CGTD:
			holds = a > b
		case CGED:
			holds = a >= b
		case CEQD:
			holds = a == b
		case CNED:
			holds = a != b
		}
		if holds {
			m.R[in.Rd] = 1
		} else {
			m.R[in.Rd] = 0
		}
	case CMOVD:
		if m.R[in.Rs3] != 0 {
			m.F[in.Rd] = m.F[in.Rs1]
		} else {
			m.F[in.Rd] = m.F[in.Rs2]
		}
	case SENDS:
		if m.Hooks.Send != nil {
			m.Hooks.Send(int(in.Imm))
		}
	case WAITS:
		if m.Hooks.Wait != nil {
			return m.Hooks.Wait(int(in.Rd), int(in.Imm))
		}
	default:
		return fmt.Errorf("dlxisa: cannot execute %v", in)
	}
	m.R[0] = 0
	return nil
}

// RunIteration executes the program body once with the induction variable
// set to i.
func (p *Program) RunIteration(m *Machine, i int) error {
	m.R[1] = int64(i)
	for idx, in := range p.Insts {
		if err := m.Step(in); err != nil {
			return fmt.Errorf("dlxisa: pc %d (%v): %w", idx, in, err)
		}
	}
	return nil
}

// RunEncoded decodes and executes the binary words — the strictest check
// that the encoding is faithful.
func (p *Program) RunEncoded(m *Machine, i int) error {
	insts, err := DecodeAll(p.Words)
	if err != nil {
		return err
	}
	m.R[1] = int64(i)
	for idx, in := range insts {
		if err := m.Step(in); err != nil {
			return fmt.Errorf("dlxisa: pc %d (%v): %w", idx, in, err)
		}
	}
	return nil
}

// Run executes the compiled loop sequentially against a symbolic store:
// the store is marshalled into flat memory, all iterations execute on one
// machine, and the results are marshalled back.
func (p *Program) Run(st *lang.Store, encoded bool) error {
	lo, hi, err := p.TAC.Sync.Base.Bounds(st)
	if err != nil {
		return err
	}
	mem, err := p.Layout.LoadStore(st)
	if err != nil {
		return err
	}
	m := NewMachine(mem)
	for i := lo; i <= hi; i++ {
		if encoded {
			err = p.RunEncoded(m, i)
		} else {
			err = p.RunIteration(m, i)
		}
		if err != nil {
			return fmt.Errorf("dlxisa: iteration %d: %w", i, err)
		}
	}
	return p.Layout.StoreBack(mem, st)
}
