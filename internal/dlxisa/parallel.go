package dlxisa

import (
	"fmt"

	"doacross/internal/lang"
)

// ParallelResult reports an ISA-level parallel run.
type ParallelResult struct {
	// Cycles is the total execution time: one instruction per processor per
	// cycle (scalar in-order pipelines), waits busy-stall.
	Cycles int
	// Stalls counts processor-cycles spent blocked in WAITS.
	Stalls int
}

// RunParallel executes the assembled loop as a DOACROSS at the machine
// level: iterations lo..hi are distributed round-robin over procs scalar
// processors (procs <= 0 means one per iteration) sharing one memory and a
// signal table. Each processor executes its body in order, one instruction
// per cycle; WAITS stalls until the producing iteration's SENDS has
// executed in an earlier cycle.
//
// This is the unscheduled baseline the paper's superscalar schedules are
// measured against, and it validates the synchronization semantics all the
// way down at the encoded-instruction level: final memory must equal
// sequential execution, which the differential tests assert.
func (p *Program) RunParallel(st *lang.Store, procs int) (ParallelResult, error) {
	if p.NumSpills > 0 {
		// The spill area is a single R0-addressed region; concurrent
		// iterations would clobber each other's slots. Real systems give
		// each thread a private stack — out of scope for this backend.
		return ParallelResult{}, fmt.Errorf("dlxisa: parallel execution requires spill-free code (%d spill slots in use)", p.NumSpills)
	}
	lo, hi, err := p.TAC.Sync.Base.Bounds(st)
	if err != nil {
		return ParallelResult{}, err
	}
	n := hi - lo + 1
	if n <= 0 {
		return ParallelResult{}, nil
	}
	if procs <= 0 || procs > n {
		procs = n
	}
	mem, err := p.Layout.LoadStore(st)
	if err != nil {
		return ParallelResult{}, err
	}
	// sent[sig][iterIdx] = cycle the send executed, -1 otherwise.
	sent := make([][]int, len(p.Signals))
	for s := range sent {
		sent[s] = make([]int, n)
		for i := range sent[s] {
			sent[s][i] = -1
		}
	}
	type pstate struct {
		iterIdx int // current iteration index, -1 idle
		pc      int
		m       *Machine
	}
	ps := make([]*pstate, procs)
	nextIter := 0
	for i := range ps {
		ps[i] = &pstate{iterIdx: -1, m: NewMachine(mem)}
		if nextIter < n {
			ps[i].iterIdx = nextIter
			ps[i].m.R[1] = int64(lo + nextIter)
			nextIter++
		}
	}
	res := ParallelResult{}
	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > (n+2)*(len(p.Insts)+4)*4+1024 {
			// Report which iterations are stuck: essential when diagnosing a
			// bad schedule or signal pattern in a large batch.
			var blocked []int
			for _, s := range ps {
				if s.iterIdx >= 0 {
					blocked = append(blocked, lo+s.iterIdx)
				}
			}
			return ParallelResult{}, fmt.Errorf("dlxisa: parallel deadlock at cycle %d (%d iterations unfinished; blocked iterations %v)",
				cycle, remaining, blocked)
		}
		for _, s := range ps {
			if s.iterIdx < 0 {
				continue
			}
			in := p.Insts[s.pc]
			switch in.Op {
			case WAITS:
				srcIdx := s.iterIdx - int(in.Imm)
				if srcIdx >= 0 {
					t := sent[in.Rd][srcIdx]
					if t == -1 || t >= cycle {
						res.Stalls++
						continue // stall this cycle
					}
				}
			case SENDS:
				sent[in.Imm][s.iterIdx] = cycle
			}
			if in.Op != SENDS { // SENDS handled above; everything else executes
				if err := s.m.Step(in); err != nil {
					return ParallelResult{}, fmt.Errorf("dlxisa: iteration %d pc %d: %w", lo+s.iterIdx, s.pc, err)
				}
			}
			s.pc++
			if s.pc == len(p.Insts) {
				remaining--
				res.Cycles = cycle + 1
				s.pc = 0
				s.iterIdx = -1
				if nextIter < n {
					s.iterIdx = nextIter
					s.m.R[1] = int64(lo + nextIter)
					nextIter++
				}
			}
		}
	}
	if err := p.Layout.StoreBack(mem, st); err != nil {
		return ParallelResult{}, err
	}
	return res, nil
}
