package dlxisa

import (
	"fmt"
	"math"
)

// Register allocation: the loop body is straight-line code (if-converted
// upstream), so a local Belady allocator is near-optimal: registers are
// assigned on demand, and when none is free the live value whose next use is
// farthest away is evicted — spilled to a dedicated slot if it is still
// needed, dropped otherwise. Every virtual register has a single definition,
// so spilled values are reloaded from their slot without write-back
// bookkeeping.
//
// Conventions: R0 = 0, R1 = induction variable (pinned), R2..R31 and
// F0..F31 allocatable.

const (
	firstIntPhys = 2
	numIntPhys   = 30 // R2..R31
	numFpPhys    = 32 // F0..F31
)

// vkey flattens (class, id) for map keys.
func vkey(c regClass, id int) int { return int(c)<<24 | id }

// allocator state for one class.
type classAlloc struct {
	class  regClass
	base   int         // first physical register number
	n      int         // number of physical registers
	regOf  map[int]int // vreg id -> physical
	vregIn []int       // physical slot (0-based) -> vreg id, -1 free
	slotOf map[int]int // vreg id -> spill slot
}

type allocator struct {
	vs      []vinst
	out     []vinst
	uses    map[int][]int // vkey -> ordered instruction indices of uses
	lastUse map[int]int
	cls     [2]*classAlloc
	spills  int
}

// allocate rewrites virtual registers to physical ones, inserting spill
// code. Returns the rewritten instructions and the number of spill slots.
func allocate(vs []vinst, counts [2]int) ([]vinst, int, error) {
	al := &allocator{
		vs:      vs,
		uses:    map[int][]int{},
		lastUse: map[int]int{},
	}
	al.cls[intReg] = &classAlloc{class: intReg, base: firstIntPhys, n: numIntPhys,
		regOf: map[int]int{}, vregIn: make([]int, numIntPhys), slotOf: map[int]int{}}
	al.cls[fpReg] = &classAlloc{class: fpReg, base: 0, n: numFpPhys,
		regOf: map[int]int{}, vregIn: make([]int, numFpPhys), slotOf: map[int]int{}}
	for c := range al.cls {
		for i := range al.cls[c].vregIn {
			al.cls[c].vregIn[i] = -1
		}
	}
	// Collect use positions.
	for i, v := range vs {
		for _, f := range sourceFields(v) {
			if f.id <= 0 { // R0 (-1) and IV (0) are pinned
				continue
			}
			k := vkey(f.class, f.id)
			al.uses[k] = append(al.uses[k], i)
			al.lastUse[k] = i
		}
	}
	for i := range vs {
		if err := al.rewrite(i); err != nil {
			return nil, 0, err
		}
	}
	return al.out, al.spills, nil
}

// field describes one register field of a vinst.
type field struct {
	class regClass
	id    int
	set   func(v *vinst, phys int)
}

func sourceFields(v vinst) []field {
	_, ca, cb, cc, _, hasA, hasB, hasC := fieldClasses(v.op)
	var out []field
	if hasA {
		out = append(out, field{class: ca, id: v.s1, set: func(x *vinst, p int) { x.s1 = p }})
	}
	if hasB {
		out = append(out, field{class: cb, id: v.s2, set: func(x *vinst, p int) { x.s2 = p }})
	}
	if hasC {
		out = append(out, field{class: cc, id: v.s3, set: func(x *vinst, p int) { x.s3 = p }})
	}
	return out
}

// nextUseAfter returns the next use index of vreg strictly after i, or MaxInt.
func (al *allocator) nextUseAfter(k, i int) int {
	for _, u := range al.uses[k] {
		if u > i {
			return u
		}
	}
	return math.MaxInt
}

// physFor resolves a source vreg to a physical register at instruction i,
// reloading from its spill slot if needed. locked prevents evicting
// registers already claimed by the current instruction.
func (al *allocator) physFor(c regClass, id, i int, locked map[int]bool) (int, error) {
	if id == -1 {
		return 0, nil // R0
	}
	if c == intReg && id == ivID {
		return 1, nil // pinned induction variable
	}
	ca := al.cls[c]
	if p, ok := ca.regOf[id]; ok {
		locked[int(c)<<8|p] = true
		return p, nil
	}
	slot, ok := ca.slotOf[id]
	if !ok {
		return 0, fmt.Errorf("dlxisa: vreg %d/%d used before definition", c, id)
	}
	p, err := al.claim(c, i, locked)
	if err != nil {
		return 0, err
	}
	reload := vinst{addr: "spill", slot: slot}
	if c == intReg {
		reload.op = LWI
		reload.rd = p
		reload.s1 = 0 // R0 base — physical now
	} else {
		reload.op = LD
		reload.rd = p
		reload.s1 = 0
	}
	al.out = append(al.out, reload)
	ca.regOf[id] = p
	ca.vregIn[p-ca.base] = id
	locked[int(c)<<8|p] = true
	return p, nil
}

// claim returns a free physical register of the class, evicting if needed.
func (al *allocator) claim(c regClass, i int, locked map[int]bool) (int, error) {
	ca := al.cls[c]
	// Free register?
	for s := 0; s < ca.n; s++ {
		if ca.vregIn[s] == -1 && !locked[int(c)<<8|(ca.base+s)] {
			return ca.base + s, nil
		}
	}
	// Evict the unlocked vreg with the farthest next use.
	victimSlot, victimNext := -1, -1
	for s := 0; s < ca.n; s++ {
		p := ca.base + s
		if locked[int(c)<<8|p] {
			continue
		}
		id := ca.vregIn[s]
		if id == -1 {
			continue
		}
		nu := al.nextUseAfter(vkey(c, id), i-1)
		if nu > victimNext {
			victimNext = nu
			victimSlot = s
		}
	}
	if victimSlot == -1 {
		return 0, fmt.Errorf("dlxisa: register pressure exceeds pool (all %d %v registers locked)", ca.n, c)
	}
	id := ca.vregIn[victimSlot]
	p := ca.base + victimSlot
	if victimNext != math.MaxInt {
		// Still live: store to its spill slot (assign one if new).
		slot, ok := ca.slotOf[id]
		if !ok {
			slot = al.spills
			al.spills++
			ca.slotOf[id] = slot
		}
		st := vinst{addr: "spill", slot: slot}
		if c == intReg {
			st.op = SWI
			st.s1 = 0
			st.s2 = p
		} else {
			st.op = SD
			st.s1 = 0
			st.s2 = p
		}
		al.out = append(al.out, st)
	}
	delete(ca.regOf, id)
	ca.vregIn[victimSlot] = -1
	return p, nil
}

// rewrite processes instruction i.
func (al *allocator) rewrite(i int) error {
	v := al.vs[i]
	locked := map[int]bool{}
	cd, _, _, _, hasD, _, _, _ := fieldClasses(v.op)
	// Sources first.
	for _, f := range sourceFields(v) {
		p, err := al.physFor(f.class, f.id, i, locked)
		if err != nil {
			return err
		}
		f.set(&v, p)
	}
	// Destination.
	if hasD {
		ca := al.cls[cd]
		if v.rd <= 0 {
			return fmt.Errorf("dlxisa: instruction %d defines invalid vreg %d", i, v.rd)
		}
		id := v.rd
		p, err := al.claim(cd, i, locked)
		if err != nil {
			return err
		}
		ca.regOf[id] = p
		ca.vregIn[p-ca.base] = id
		v.rd = p
	}
	al.out = append(al.out, v)
	// Release vregs whose last use was here.
	for c := range al.cls {
		ca := al.cls[c]
		for s := 0; s < ca.n; s++ {
			id := ca.vregIn[s]
			if id == -1 {
				continue
			}
			k := vkey(regClass(c), id)
			if lu, ok := al.lastUse[k]; !ok || lu <= i {
				// Defined but never used later (dead) or fully consumed.
				// Keep just-defined values alive until their first use.
				if al.nextUseAfter(k, i) == math.MaxInt {
					delete(ca.regOf, id)
					ca.vregIn[s] = -1
				}
			}
		}
	}
	return nil
}
