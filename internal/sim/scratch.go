package sim

import (
	"fmt"
	"sync"

	"doacross/internal/core"
	"doacross/internal/tac"
)

// timeScratch is the pooled working state of the recurrence engine: the
// schedule's row/signal structure lowered to interned-signal CSR form
// (struct-of-arrays, no per-row slices or per-signal maps in the iteration
// loop) plus the ring of recent iterations' issue times.
//
// The iteration loop walks EVENT rows only — rows containing a Wait or Send.
// Between events the issue recurrence is a straight run (issue[r] =
// issue[r-1]+1), so each run's contribution to the completion time is
// precomputed as max(r + rowLat[r]) and the per-iteration work is O(events),
// not O(schedule length). Time is the batch pipeline's per-request hot loop,
// so the state is pooled and every buffer grows once to the largest schedule
// seen.
type timeScratch struct {
	sigID   map[string]int
	sigName []string
	// Event rows (ascending) and per-event CSRs of waits (signal, distance)
	// and sends (signal).
	evRow    []int32
	waitOff  []int32
	waitSig  []int32
	waitDist []int32
	sendOff  []int32
	sendSig  []int32
	// Per-signal: the send's row (for window validation) and event slot (for
	// ring reads). Per-consumer: the wait's row, distance and event slot.
	sendRow  []int32
	sendEv   []int32
	consOff  []int32
	consRow  []int32
	consDist []int32
	consEv   []int32
	rowLat   []int
	// headMax is max(r + rowLat[r]) before the first event row (over the
	// whole schedule when there are no events); segMax[i] the same over the
	// rows strictly between event i and the next event (or the end).
	headMax int
	segMax  []int
	ring    []int
	maxDist int
	nwaits  int
	nsends  int
}

const segEmpty = -1 << 30

var timePool = sync.Pool{New: func() any { return &timeScratch{sigID: map[string]int{}} }}

func growIntBuf(buf *[]int, n int) []int {
	b := *buf
	if cap(b) < n {
		b = make([]int, n)
		*buf = b
	}
	return b[:n]
}

func growInt32Buf(buf *[]int32, n int) []int32 {
	b := *buf
	if cap(b) < n {
		b = make([]int32, n)
		*buf = b
	}
	return b[:n]
}

func (sc *timeScratch) intern(sig string) int {
	if id, ok := sc.sigID[sig]; ok {
		return id
	}
	id := len(sc.sigName)
	sc.sigID[sig] = id
	sc.sigName = append(sc.sigName, sig)
	return id
}

// build lowers the schedule's synchronization structure into the scratch
// form (the allocation-free analogue of newRowMeta).
func (sc *timeScratch) build(s *core.Schedule) error {
	L := s.Length()
	clear(sc.sigID)
	sc.sigName = sc.sigName[:0]
	sc.evRow = sc.evRow[:0]
	sc.maxDist = 1
	rowLat := growIntBuf(&sc.rowLat, L)
	nw, ns := 0, 0
	for r, row := range s.Rows {
		rowLat[r] = 0
		sync := false
		for _, v := range row {
			in := s.Prog.Instrs[v]
			if lat := s.Cfg.Latency[in.Class()]; lat > rowLat[r] {
				rowLat[r] = lat
			}
			switch in.Op {
			case tac.Wait:
				sc.intern(in.Signal)
				if in.SigDist > sc.maxDist {
					sc.maxDist = in.SigDist
				}
				nw++
				sync = true
			case tac.Send:
				sc.intern(in.Signal)
				ns++
				sync = true
			}
		}
		if sync {
			sc.evRow = append(sc.evRow, int32(r))
		}
	}
	sc.nwaits, sc.nsends = nw, ns
	E := len(sc.evRow)
	nsig := len(sc.sigName)
	waitOff := growInt32Buf(&sc.waitOff, E+1)
	sendOff := growInt32Buf(&sc.sendOff, E+1)
	sendRow := growInt32Buf(&sc.sendRow, nsig)
	sendEv := growInt32Buf(&sc.sendEv, nsig)
	consCnt := growInt32Buf(&sc.consOff, nsig+1) // reused as counts first
	for i := range sendRow {
		sendRow[i] = -1
	}
	for i := range consCnt {
		consCnt[i] = 0
	}
	waitSig := growInt32Buf(&sc.waitSig, nw)
	waitDist := growInt32Buf(&sc.waitDist, nw)
	sendSig := growInt32Buf(&sc.sendSig, ns)
	waitOff[0], sendOff[0] = 0, 0
	nw, ns = 0, 0
	for e, r32 := range sc.evRow {
		for _, v := range s.Rows[r32] {
			in := s.Prog.Instrs[v]
			switch in.Op {
			case tac.Wait:
				id := sc.sigID[in.Signal]
				waitSig[nw] = int32(id)
				waitDist[nw] = int32(in.SigDist)
				consCnt[id+1]++
				nw++
			case tac.Send:
				id := sc.sigID[in.Signal]
				sendSig[ns] = int32(id)
				sendRow[id] = r32
				sendEv[id] = int32(e)
				ns++
			}
		}
		waitOff[e+1] = int32(nw)
		sendOff[e+1] = int32(ns)
	}
	// Consumer CSR grouped by signal, in row order (waitSig is row-ordered).
	for i := 0; i < nsig; i++ {
		consCnt[i+1] += consCnt[i]
	}
	consRow := growInt32Buf(&sc.consRow, nw)
	consDist := growInt32Buf(&sc.consDist, nw)
	consEv := growInt32Buf(&sc.consEv, nw)
	for e := 0; e < E; e++ {
		for k := waitOff[e]; k < waitOff[e+1]; k++ {
			id := waitSig[k]
			at := consCnt[id]
			consCnt[id]++
			consRow[at] = sc.evRow[e]
			consDist[at] = waitDist[k]
			consEv[at] = int32(e)
		}
	}
	// consCnt[id] now holds the end offset of id's consumers == start of
	// id+1's; shift back into offset form.
	for i := nsig; i > 0; i-- {
		consCnt[i] = consCnt[i-1]
	}
	consCnt[0] = 0
	// Every wait needs a send, reported in row order like newRowMeta.
	for e := 0; e < E; e++ {
		for k := waitOff[e]; k < waitOff[e+1]; k++ {
			if sendRow[waitSig[k]] == -1 {
				return fmt.Errorf("sim: wait on signal %s with no send in schedule", sc.sigName[waitSig[k]])
			}
		}
	}
	// Straight-run completion offsets: headMax before the first event (the
	// whole schedule when E == 0), segMax[i] between event i and the next.
	sc.headMax = segEmpty
	first := L
	if E > 0 {
		first = int(sc.evRow[0])
	}
	for r := 0; r < first; r++ {
		if v := r + rowLat[r]; v > sc.headMax {
			sc.headMax = v
		}
	}
	segMax := growIntBuf(&sc.segMax, E)
	for i := 0; i < E; i++ {
		next := L
		if i+1 < E {
			next = int(sc.evRow[i+1])
		}
		segMax[i] = segEmpty
		for r := int(sc.evRow[i]) + 1; r < next; r++ {
			if v := r + rowLat[r]; v > segMax[i] {
				segMax[i] = v
			}
		}
	}
	return nil
}

// checkWindow is rowMeta.checkWindow over the interned form.
func (sc *timeScratch) checkWindow(window int) error {
	if window <= 0 {
		return nil
	}
	if window < sc.maxDist {
		return fmt.Errorf("sim: signal window %d smaller than the largest dependence distance %d (deadlock)", window, sc.maxDist)
	}
	for id := range sc.sigName {
		for k := sc.consOff[id]; k < sc.consOff[id+1]; k++ {
			if int(sc.consDist[k]) == window && sc.sendRow[id] <= sc.consRow[k] {
				return fmt.Errorf("sim: signal window %d equals distance %d of an LFD pair on %s (send would wait for its own iteration's wait)", window, sc.consDist[k], sc.sigName[id])
			}
		}
	}
	return nil
}

// run is the recurrence model over scratch state; it produces timings
// bit-identical to the pre-scratch row-by-row implementation.
func (sc *timeScratch) run(s *core.Schedule, opt Options) (Timing, error) {
	if err := sc.build(s); err != nil {
		return Timing{}, err
	}
	if err := sc.checkWindow(opt.Window); err != nil {
		return Timing{}, err
	}
	L := s.Length()
	n := opt.N()
	tr := opt.Tracer
	if tr != nil {
		tr.reset(s, opt)
	}
	t := Timing{IterIssue: make([]int, n), IterDone: make([]int, n)}
	if n == 0 || L == 0 {
		if tr != nil {
			tr.Timing = t
		}
		return t, nil
	}
	procs := opt.procs()
	// Only the issue times of the last few iterations matter: back to the
	// maximum wait distance, the processor-reuse distance, and the signal
	// window. Keep a flat ring of that depth; each iteration's ring row holds
	// the issue time of every event row plus (slot E) the last schedule row.
	depth := sc.maxDist
	if procs < n && procs > depth {
		depth = procs
	}
	if opt.Window > depth {
		depth = opt.Window
	}
	E := len(sc.evRow)
	stride := E + 1
	ringSize := (depth + 1) * stride
	ring := growIntBuf(&sc.ring, ringSize)
	base := 0
	for idx := 0; idx < n; idx++ {
		start := 0
		if idx >= procs {
			// Processor reuse: the previous iteration on this processor must
			// have issued its last row.
			pb := base - procs*stride
			if pb < 0 {
				pb += ringSize
			}
			start = ring[pb+E] + 1
		}
		if tr != nil {
			it := &tr.Iters[idx]
			it.Proc = idx % procs
			it.Start = start
		}
		for e := 0; e < E; e++ {
			row := int(sc.evRow[e])
			// Chain-propagated earliest issue: a straight run since the
			// previous event (or the iteration start).
			var unconstrained int
			if e == 0 {
				unconstrained = start + row
			} else {
				unconstrained = ring[base+e-1] + row - int(sc.evRow[e-1])
			}
			earliest := unconstrained
			for k := sc.waitOff[e]; k < sc.waitOff[e+1]; k++ {
				dist := int(sc.waitDist[k])
				if idx-dist < 0 {
					continue // no earlier iteration to wait for
				}
				sb := base - dist*stride
				if sb < 0 {
					sb += ringSize
				}
				sendT := ring[sb+int(sc.sendEv[sc.waitSig[k]])]
				if sendT+1 > earliest {
					earliest = sendT + 1
				}
			}
			// Bounded signal window: iteration idx's send reuses the slot of
			// iteration idx-Window; every wait that consumes that old signal
			// must have issued first.
			if opt.Window > 0 && idx-opt.Window >= 0 {
				for k := sc.sendOff[e]; k < sc.sendOff[e+1]; k++ {
					id := sc.sendSig[k]
					for c := sc.consOff[id]; c < sc.consOff[id+1]; c++ {
						back := opt.Window - int(sc.consDist[c])
						if idx-back < 0 {
							continue
						}
						// back == 0 is the same iteration: the consumer row
						// precedes this row (validated by checkWindow) and its
						// issue time is already in this iteration's slots.
						cb := base - back*stride
						if cb < 0 {
							cb += ringSize
						}
						if ct := ring[cb+int(sc.consEv[c])]; ct+1 > earliest {
							earliest = ct + 1
						}
					}
				}
			}
			t.StallCycles += earliest - unconstrained
			if tr != nil && earliest > unconstrained {
				sc.attributeStalls(&tr.Iters[idx], idx, e, row, unconstrained, earliest, opt, ring, base, stride, ringSize)
			}
			ring[base+e] = earliest
		}
		t.SignalsSent += sc.nsends
		// Issue time of the last schedule row (straight run past the last
		// event), kept for processor reuse.
		last := start + L - 1
		if E > 0 {
			last = ring[base+E-1] + (L - 1 - int(sc.evRow[E-1]))
		}
		ring[base+E] = last
		// First-row issue time and completion horizon.
		issue0 := start
		if E > 0 && sc.evRow[0] == 0 {
			issue0 = ring[base]
		}
		t.IterIssue[idx] = issue0
		done := 0
		if sc.headMax != segEmpty {
			done = start + sc.headMax
		}
		for e := 0; e < E; e++ {
			row := int(sc.evRow[e])
			te := ring[base+e]
			if fin := te + sc.rowLat[row]; fin > done {
				done = fin
			}
			if sc.segMax[e] != segEmpty {
				if fin := te - row + sc.segMax[e]; fin > done {
					done = fin
				}
			}
		}
		t.IterDone[idx] = done
		if done > t.Total {
			t.Total = done
		}
		if tr != nil {
			// Reconstruct every row's issue time from the event ring: rows
			// between events are a straight run, one row per cycle.
			it := &tr.Iters[idx]
			it.Done = done
			t0, lastRow := start, 0
			for e := 0; e < E; e++ {
				er := int(sc.evRow[e])
				for r := lastRow; r < er; r++ {
					it.Rows[r] = int32(t0 + r - lastRow)
				}
				it.Rows[er] = int32(ring[base+e])
				t0, lastRow = ring[base+e]+1, er+1
			}
			for r := lastRow; r < L; r++ {
				it.Rows[r] = int32(t0 + r - lastRow)
			}
		}
		base += stride
		if base == ringSize {
			base = 0
		}
	}
	if tr != nil {
		tr.Timing = t
	}
	return t, nil
}

// attributeStalls is the recurrence engine's twin of rowMeta.attributeStalls:
// at an event row that stalled (earliest > unconstrained), re-scan the same
// constraints in the same order to split [unconstrained, earliest) into the
// binding synchronization wait and the bounded-window gate. The scans mirror
// the issue-time computation exactly, so both engines attribute bit-identical
// spans.
func (sc *timeScratch) attributeStalls(it *IterTrace, idx, e, row, unconstrained, earliest int, opt Options, ring []int, base, stride, ringSize int) {
	syncTo := unconstrained
	bind := int32(-1)
	for k := sc.waitOff[e]; k < sc.waitOff[e+1]; k++ {
		dist := int(sc.waitDist[k])
		if idx-dist < 0 {
			continue
		}
		sb := base - dist*stride
		if sb < 0 {
			sb += ringSize
		}
		if sendT := ring[sb+int(sc.sendEv[sc.waitSig[k]])]; sendT+1 > syncTo {
			syncTo = sendT + 1
			bind = k
		}
	}
	if syncTo > earliest {
		syncTo = earliest
	}
	if bind >= 0 && syncTo > unconstrained {
		id := sc.waitSig[bind]
		dist := int(sc.waitDist[bind])
		it.Stalls = append(it.Stalls, Stall{
			Row: row, From: unconstrained, To: syncTo, Cause: CauseSyncWait,
			Signal: sc.sigName[id], Dist: dist, SrcIter: idx - dist,
			SendCycle: syncTo - 1, LBD: int(sc.sendRow[id]) >= row,
		})
	}
	if earliest > syncTo {
		st := Stall{Row: row, From: syncTo, To: earliest, Cause: CauseWindowWait}
		if opt.Window > 0 && idx-opt.Window >= 0 {
			winTo := syncTo
			for k := sc.sendOff[e]; k < sc.sendOff[e+1]; k++ {
				id := sc.sendSig[k]
				for c := sc.consOff[id]; c < sc.consOff[id+1]; c++ {
					back := opt.Window - int(sc.consDist[c])
					if back == 0 || idx-back < 0 {
						continue
					}
					cb := base - back*stride
					if cb < 0 {
						cb += ringSize
					}
					if ct := ring[cb+int(sc.consEv[c])]; ct+1 > winTo {
						winTo = ct + 1
						st.Signal, st.Dist, st.SrcIter, st.SendCycle = sc.sigName[id], int(sc.consDist[c]), idx-back, ct
					}
				}
			}
		}
		it.Stalls = append(it.Stalls, st)
	}
}
