// Package sim is the multiprocessor DOACROSS simulator (the paper's §4.1
// statistical model backend): n iterations of a scheduled loop run on a
// shared-memory multiprocessor, one iteration per superscalar processor,
// synchronized through a shared signal vector.
//
// Two engines are provided:
//
//   - Time: a fast recurrence model that computes issue times analytically.
//     Each processor issues schedule rows in order, one row per cycle; a row
//     containing Wait_Signal(S, i−d) cannot issue before iteration i−d's
//     Send_Signal(S) has issued and become visible (one cycle later).
//   - Run: a detailed cycle-stepped simulator that additionally *executes*
//     the instructions against a shared memory store, setting and testing
//     real signals. Its final memory is compared against sequential
//     execution by the differential tests, which is the strongest evidence
//     that scheduling plus synchronization preserved the loop's meaning. Its
//     timing is bit-identical to Time's by construction, which the tests
//     also verify.
//
// Both engines support fewer processors than iterations (blocked cyclic
// assignment: processor p runs iterations p, p+P, ...), defaulting to the
// paper's assumption of n processors for n iterations.
package sim

import (
	"fmt"

	"doacross/internal/core"
	"doacross/internal/lang"
	"doacross/internal/tac"
)

// Options configures a simulation.
type Options struct {
	// Lo and Hi are the iteration bounds (inclusive). Hi < Lo means a
	// zero-trip loop.
	Lo, Hi int
	// Procs is the processor count; 0 means one processor per iteration.
	Procs int
	// Window bounds the synchronization hardware: each signal has Window
	// slots, and slot (i mod Window) cannot be overwritten by iteration i's
	// send until every wait consuming iteration i-Window's signal has
	// executed (the bounded signal buffers of the Zhu/Yew and Su/Yew schemes
	// the paper cites). 0 means unbounded (one slot per iteration, the
	// paper's idealized assumption). A window smaller than the largest
	// dependence distance deadlocks and is reported as an error.
	Window int
	// MaxCycles is a hard cycle budget for the detailed simulator (Run):
	// when the simulation reaches it with iterations unfinished, a
	// budget-exhausted error reporting the blocked iteration set is returned
	// instead of spinning. 0 derives a generous bound from n and the
	// schedule length (any correct schedule finishes well inside it), so a
	// pathological schedule is always caught.
	MaxCycles int
	// Tracer, when non-nil, records a cycle-accurate execution trace with
	// stall-cause attribution (both engines fill it identically). Nil costs
	// the hot path nothing.
	Tracer *Tracer
}

// N returns the trip count.
func (o Options) N() int {
	if o.Hi < o.Lo {
		return 0
	}
	return o.Hi - o.Lo + 1
}

func (o Options) procs() int {
	if o.Procs > 0 {
		return o.Procs
	}
	n := o.N()
	if n == 0 {
		return 1
	}
	return n
}

// Timing is the result of a simulation.
type Timing struct {
	// Total is the parallel execution time in cycles: the cycle after the
	// last instruction of the last iteration completes.
	Total int
	// StallCycles counts cycles lost to synchronization waits, summed over
	// all iterations.
	StallCycles int
	// SignalsSent counts Send_Signal issues over all iterations — the
	// paper-level synchronization traffic (every send issues once per
	// iteration regardless of whether a consumer iteration exists).
	SignalsSent int
	// IterIssue[i] is the issue time of the first row of iteration Lo+i;
	// IterDone[i] the completion time of its last instruction.
	IterIssue, IterDone []int
}

// consumer is one wait instruction's placement: the row it issues in and its
// dependence distance.
type consumer struct {
	row, dist int
}

// rowMeta precomputes per-row wait constraints and the per-signal send row.
type rowMeta struct {
	length   int
	rows     [][]int
	waits    [][]*tac.Instr // waits issued in each row
	sendRow  map[string]int // signal -> row of its send
	sends    [][]string     // signals sent in each row
	consume  map[string][]consumer
	rowLat   []int // max completion offset of a row's instructions
	maxDist  int
	schedule *core.Schedule
}

func newRowMeta(s *core.Schedule) (*rowMeta, error) {
	m := &rowMeta{
		length:   s.Length(),
		rows:     s.Rows,
		waits:    make([][]*tac.Instr, s.Length()),
		sendRow:  map[string]int{},
		sends:    make([][]string, s.Length()),
		consume:  map[string][]consumer{},
		rowLat:   make([]int, s.Length()),
		maxDist:  1,
		schedule: s,
	}
	for r, row := range s.Rows {
		for _, v := range row {
			in := s.Prog.Instrs[v]
			lat := s.Cfg.Latency[in.Class()]
			if lat > m.rowLat[r] {
				m.rowLat[r] = lat
			}
			switch in.Op {
			case tac.Wait:
				m.waits[r] = append(m.waits[r], in)
				m.consume[in.Signal] = append(m.consume[in.Signal], consumer{row: r, dist: in.SigDist})
				if in.SigDist > m.maxDist {
					m.maxDist = in.SigDist
				}
			case tac.Send:
				m.sendRow[in.Signal] = r
				m.sends[r] = append(m.sends[r], in.Signal)
			}
		}
	}
	for r := range m.waits {
		for _, w := range m.waits[r] {
			if _, ok := m.sendRow[w.Signal]; !ok {
				return nil, fmt.Errorf("sim: wait on signal %s with no send in schedule", w.Signal)
			}
		}
	}
	return m, nil
}

// checkWindow validates a bounded signal window against the schedule.
func (m *rowMeta) checkWindow(window int) error {
	if window <= 0 {
		return nil
	}
	if window < m.maxDist {
		return fmt.Errorf("sim: signal window %d smaller than the largest dependence distance %d (deadlock)", window, m.maxDist)
	}
	for sig, cs := range m.consume {
		for _, c := range cs {
			if c.dist == window && m.sendRow[sig] <= c.row {
				return fmt.Errorf("sim: signal window %d equals distance %d of an LFD pair on %s (send would wait for its own iteration's wait)", window, c.dist, sig)
			}
		}
	}
	return nil
}

// Time computes the parallel execution time with the recurrence model. Its
// working state (the schedule's synchronization structure in interned CSR
// form plus the iteration ring) is pooled, so steady-state calls allocate
// only the returned per-iteration timing slices.
func Time(s *core.Schedule, opt Options) (Timing, error) {
	sc := timePool.Get().(*timeScratch)
	t, err := sc.run(s, opt)
	timePool.Put(sc)
	return t, err
}

// MustTime is Time for known-good inputs.
func MustTime(s *core.Schedule, opt Options) Timing {
	t, err := Time(s, opt)
	if err != nil {
		panic(err)
	}
	return t
}

// Run executes the scheduled loop on the detailed simulator against st,
// which must contain the loop's input data (including the bound scalar,
// e.g. N). The store is mutated in place. The returned timing matches Time.
func Run(s *core.Schedule, st *lang.Store, opt Options) (Timing, error) {
	m, err := newRowMeta(s)
	if err != nil {
		return Timing{}, err
	}
	if err := m.checkWindow(opt.Window); err != nil {
		return Timing{}, err
	}
	n := opt.N()
	tr := opt.Tracer
	if tr != nil {
		tr.reset(s, opt)
	}
	t := Timing{IterIssue: make([]int, n), IterDone: make([]int, n)}
	if n == 0 || m.length == 0 {
		if tr != nil {
			tr.Timing = t
		}
		return t, nil
	}
	procs := opt.procs()
	// rowTime[i][r] is the cycle iteration i issued row r (-1 = not yet) —
	// used for bounded-window send gating.
	var rowTime [][]int
	if opt.Window > 0 {
		rowTime = make([][]int, n)
		for i := range rowTime {
			rowTime[i] = make([]int, m.length)
			for r := range rowTime[i] {
				rowTime[i][r] = -1
			}
		}
	}

	type proc struct {
		idx     int // iteration index currently executing (0-based), -1 done
		row     int
		frame   *tac.Frame
		prevT   int // issue time of previous row
		maxDone int // completion horizon of issued rows
		started bool
	}
	// signals[sig][iterIdx] = cycle the send issued (-1 = not yet).
	signals := map[string][]int{}
	for sig := range m.sendRow {
		v := make([]int, n)
		for i := range v {
			v[i] = -1
		}
		signals[sig] = v
	}
	ps := make([]*proc, procs)
	nextIter := 0
	for p := range ps {
		ps[p] = &proc{idx: -1}
		if nextIter < n {
			ps[p].idx = nextIter
			ps[p].frame = tac.NewFrame(s.Prog.NumTemps, opt.Lo+nextIter)
			if tr != nil {
				tr.Iters[nextIter].Proc = p
				tr.Iters[nextIter].Start = 0
			}
			nextIter++
		}
	}
	// Hard cycle budget: explicit (Options.MaxCycles) or derived from the
	// trip count and schedule length — any correct schedule finishes well
	// inside the derived bound, so exceeding it means a deadlock or a
	// pathological schedule rather than slow progress.
	budget := opt.MaxCycles
	derived := budget <= 0
	if derived {
		budget = (n+1)*(m.length+8)*4 + 1024
	}
	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > budget {
			// Error path only: the blocked-iteration set is built lazily here
			// so the happy path constructs nothing.
			var blocked []int
			for _, p := range ps {
				if p.idx >= 0 {
					blocked = append(blocked, opt.Lo+p.idx)
				}
			}
			if derived {
				return Timing{}, fmt.Errorf("sim: deadlock at cycle %d (%d iterations unfinished; blocked iterations %v)",
					cycle, remaining, blocked)
			}
			return Timing{}, fmt.Errorf("sim: cycle budget %d exhausted (%d iterations unfinished; blocked iterations %v)",
				budget, remaining, blocked)
		}
		for pi, p := range ps {
			if p.idx < 0 {
				continue
			}
			if p.started && cycle < p.prevT+1 {
				continue
			}
			// Check wait constraints for the next row.
			ok := true
			for _, w := range m.waits[p.row] {
				iter := opt.Lo + p.idx
				if iter-w.SigDist < opt.Lo {
					continue
				}
				srcIdx := p.idx - w.SigDist
				sendT := signals[w.Signal][srcIdx]
				if sendT == -1 || cycle < sendT+1 {
					ok = false
					break
				}
			}
			// Bounded-window send gating: sends in this row reuse the slot of
			// iteration idx-Window; every consumer of the old signal must
			// have issued strictly earlier.
			if ok && opt.Window > 0 && p.idx-opt.Window >= 0 {
			gate:
				for _, sig := range m.sends[p.row] {
					for _, c := range m.consume[sig] {
						cIdx := p.idx - opt.Window + c.dist
						if cIdx < 0 || cIdx == p.idx {
							// Same-iteration consumers sit in earlier rows
							// (validated) and have necessarily issued.
							continue
						}
						if ct := rowTime[cIdx][c.row]; ct == -1 || ct >= cycle {
							ok = false
							break gate
						}
					}
				}
			}
			if !ok {
				t.StallCycles++
				continue
			}
			if tr != nil {
				it := &tr.Iters[p.idx]
				it.Rows[p.row] = int32(cycle)
				lower := 0
				if p.started {
					lower = p.prevT + 1
				}
				if cycle > lower {
					m.attributeStalls(it, p.idx, p.row, lower, cycle, opt, signals, rowTime)
				}
			}
			// Issue the row: execute its instructions against shared memory.
			for _, v := range m.rows[p.row] {
				in := s.Prog.Instrs[v]
				if in.Op == tac.Send {
					signals[in.Signal][p.idx] = cycle
					t.SignalsSent++
					continue
				}
				if err := tac.Exec(in, p.frame, st); err != nil {
					return Timing{}, fmt.Errorf("sim: iteration %d instr %d: %w", opt.Lo+p.idx, in.ID, err)
				}
			}
			if p.row == 0 {
				t.IterIssue[p.idx] = cycle
			}
			if rowTime != nil {
				rowTime[p.idx][p.row] = cycle
			}
			if fin := cycle + m.rowLat[p.row]; fin > p.maxDone {
				p.maxDone = fin
			}
			p.prevT = cycle
			p.started = true
			p.row++
			if p.row == m.length {
				done := p.maxDone
				t.IterDone[p.idx] = done
				if tr != nil {
					tr.Iters[p.idx].Done = done
				}
				if done > t.Total {
					t.Total = done
				}
				remaining--
				// Blocked cyclic reuse (matching the recurrence engine and the
				// package doc): processor p runs iterations p, p+P, ... — the
				// next iteration's first row can issue no earlier than the
				// cycle after this one (started stays true so the prevT gate
				// applies).
				next := p.idx + procs
				p.idx = -1
				if next < n {
					p.idx = next
					p.row = 0
					p.maxDone = 0
					p.frame = tac.NewFrame(s.Prog.NumTemps, opt.Lo+next)
					if tr != nil {
						tr.Iters[next].Proc = pi
						tr.Iters[next].Start = cycle + 1
					}
				}
			}
		}
	}
	if tr != nil {
		tr.Timing = t
	}
	return t, nil
}

// attributeStalls reconstructs, at a row's issue cycle, the attributed wait
// spans covering [lower, issue): first the binding synchronization wait
// (the latest send the row waited on), then the bounded-window gate. The
// constraints are monotone — once satisfiable they stay satisfiable — so the
// issue cycle is exactly their maximum and the spans partition the gap.
func (m *rowMeta) attributeStalls(it *IterTrace, idx, row, lower, issue int, opt Options, signals map[string][]int, rowTime [][]int) {
	syncTo := lower
	var bind *tac.Instr
	for _, w := range m.waits[row] {
		if idx-w.SigDist < 0 {
			continue
		}
		if sendT := signals[w.Signal][idx-w.SigDist]; sendT+1 > syncTo {
			syncTo = sendT + 1
			bind = w
		}
	}
	if syncTo > issue {
		syncTo = issue
	}
	if bind != nil && syncTo > lower {
		it.Stalls = append(it.Stalls, Stall{
			Row: row, From: lower, To: syncTo, Cause: CauseSyncWait,
			Signal: bind.Signal, Dist: bind.SigDist, SrcIter: idx - bind.SigDist,
			SendCycle: syncTo - 1, LBD: m.sendRow[bind.Signal] >= row,
		})
	}
	if issue > syncTo {
		st := Stall{Row: row, From: syncTo, To: issue, Cause: CauseWindowWait}
		if opt.Window > 0 && idx-opt.Window >= 0 {
			winTo := syncTo
			for _, sig := range m.sends[row] {
				for _, c := range m.consume[sig] {
					cIdx := idx - opt.Window + c.dist
					if cIdx < 0 || cIdx == idx {
						continue
					}
					if ct := rowTime[cIdx][c.row]; ct+1 > winTo {
						winTo = ct + 1
						st.Signal, st.Dist, st.SrcIter, st.SendCycle = sig, c.dist, cIdx, ct
					}
				}
			}
		}
		it.Stalls = append(it.Stalls, st)
	}
}
