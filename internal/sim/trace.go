package sim

import (
	"fmt"
	"sort"

	"doacross/internal/core"
	"doacross/internal/dlx"
)

// Cause classifies where a machine cycle (or an empty issue slot) went.
// Causes are exhaustive: every non-issue processor cycle is attributed to
// exactly one of them, and Tracer.Check enforces that the attribution adds
// up bit-exactly against the engine's own Timing counters.
type Cause uint8

const (
	// CauseIssued is a cycle (or slot) doing useful work.
	CauseIssued Cause = iota
	// CauseRAW marks an empty issue slot whose next candidate instruction
	// was not data-ready: a RAW/latency dependence on a named instruction.
	CauseRAW
	// CauseFUBusy marks an empty issue slot whose next candidate was ready
	// but its function-unit class was fully occupied that cycle.
	CauseFUBusy
	// CauseIssueWidth marks an empty issue slot whose next candidate was
	// ready with a free unit — the scheduler spent its issue bandwidth
	// elsewhere (heuristic placement, not a hardware hazard).
	CauseIssueWidth
	// CauseSyncWait is a processor cycle stalled on a DOACROSS
	// Wait_Signal whose producing Send_Signal had not yet become visible.
	CauseSyncWait
	// CauseWindowWait is a processor cycle stalled by the bounded signal
	// window: a send could not overwrite its slot until every consumer of
	// the old signal had issued.
	CauseWindowWait
	// CauseDrain is a processor cycle with no iteration to issue (before
	// its first assignment, after its last row, or an empty slot past the
	// last candidate instruction) — pipeline fill/drain, the epilogue.
	CauseDrain
)

func (c Cause) String() string {
	switch c {
	case CauseIssued:
		return "issued"
	case CauseRAW:
		return "raw"
	case CauseFUBusy:
		return "fu_busy"
	case CauseIssueWidth:
		return "issue_width"
	case CauseSyncWait:
		return "sync_wait"
	case CauseWindowWait:
		return "window_wait"
	case CauseDrain:
		return "drain"
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Stall is one attributed wait span of an iteration: the half-open cycle
// range [From, To) during which row Row was ready in program order but
// could not issue.
type Stall struct {
	// Row is the schedule row that was blocked.
	Row int
	// From and To bound the stalled cycles, half-open.
	From, To int
	// Cause is CauseSyncWait or CauseWindowWait.
	Cause Cause
	// Signal names the binding synchronization signal: for a sync wait the
	// awaited Send_Signal, for a window wait the signal whose buffer slot
	// the send had to reuse.
	Signal string
	// Dist is the dependence distance of the binding pair.
	Dist int
	// SrcIter is the 0-based iteration index the stall waited on: the
	// sender iteration (sync) or the lagging consumer iteration (window).
	SrcIter int
	// SendCycle is the cycle the binding event issued (the send for a sync
	// wait; the consuming wait for a window wait). The stall ends one cycle
	// later — signals become visible the cycle after they are set.
	SendCycle int
	// LBD reports whether the binding pair is lexically backward in the
	// schedule (send row at or after the wait row); only set for sync waits.
	LBD bool
}

// Cycles is the span length.
func (s Stall) Cycles() int { return s.To - s.From }

// IterTrace is the per-iteration machine trace: which cycle every schedule
// row issued, on which processor, and every attributed stall span.
type IterTrace struct {
	// Index is the 0-based iteration index (absolute iteration = Lo+Index).
	Index int
	// Proc is the processor the iteration ran on.
	Proc int
	// Start is the first cycle the processor considered the iteration's
	// first row; Done is the completion cycle of its last instruction.
	Start, Done int
	// Rows[r] is the cycle schedule row r issued.
	Rows []int32
	// Stalls are the attributed wait spans, in row order.
	Stalls []Stall
}

// slotAttr is the static attribution of one empty issue slot of one
// schedule row (identical across iterations: every iteration executes the
// same schedule).
type slotAttr struct {
	cause   Cause
	cand    int32 // candidate instruction index considered, -1 = none
	blocker int32 // RAW: the unfinished predecessor it depended on
}

// Tracer is the opt-in cycle-accurate execution trace of one simulation.
// Set Options.Tracer before calling Run or Time and the engine fills it;
// a nil tracer costs the hot path nothing. A Tracer may be reused across
// simulations — each run resets it.
type Tracer struct {
	// Loop is an optional caller-supplied label for exports.
	Loop string

	// Geometry of the traced run.
	N, Procs, Length, Width, Window, Lo int

	// Timing is a copy of the engine's result.
	Timing Timing
	// Iters holds one trace per iteration.
	Iters []IterTrace

	sched   *core.Schedule
	rowsBuf []int32
	slots   []slotAttr
	slotOff []int32
}

// Machine returns the traced machine configuration's name.
func (tr *Tracer) Machine() string {
	if tr.sched == nil {
		return ""
	}
	return tr.sched.Cfg.Name
}

// Schedule returns the schedule the trace was recorded against.
func (tr *Tracer) Schedule() *core.Schedule { return tr.sched }

// reset prepares the tracer for a run of schedule s under opt. Rows buffers
// are carved from one flat grow-once backing array.
func (tr *Tracer) reset(s *core.Schedule, opt Options) {
	tr.sched = s
	tr.N = opt.N()
	tr.Procs = opt.procs()
	tr.Lo = opt.Lo
	tr.Window = opt.Window
	tr.Length = s.Length()
	tr.Width = s.Cfg.Issue
	tr.Timing = Timing{}
	n, L := tr.N, tr.Length
	if cap(tr.rowsBuf) < n*L {
		tr.rowsBuf = make([]int32, n*L)
	}
	buf := tr.rowsBuf[:n*L]
	for i := range buf {
		buf[i] = -1
	}
	if cap(tr.Iters) < n {
		grown := make([]IterTrace, n)
		copy(grown, tr.Iters)
		tr.Iters = grown
	}
	tr.Iters = tr.Iters[:n]
	for i := range tr.Iters {
		stalls := tr.Iters[i].Stalls
		if stalls != nil {
			stalls = stalls[:0]
		}
		tr.Iters[i] = IterTrace{Index: i, Proc: -1, Rows: buf[i*L : (i+1)*L : (i+1)*L], Stalls: stalls}
	}
	tr.buildSlots()
}

// buildSlots statically attributes every empty issue slot of every schedule
// row. The candidate stream walks instructions in schedule order: an empty
// slot in row r is explained by the next instruction the scheduler placed
// later — RAW if it was not data-ready at r, FUBusy if its unit class was
// saturated, IssueWidth otherwise; no candidate left means drain.
func (tr *Tracer) buildSlots() {
	tr.slots = tr.slots[:0]
	tr.slotOff = append(tr.slotOff[:0], 0)
	s := tr.sched
	L := tr.Length
	if s == nil || L == 0 {
		return
	}
	nodes := len(s.Cycle)
	order := make([]int, nodes)
	for v := range order {
		order[v] = v
	}
	sort.SliceStable(order, func(a, b int) bool { return s.Cycle[order[a]] < s.Cycle[order[b]] })
	occ := s.Occupancy()
	ptr := 0
	for r := 0; r < L; r++ {
		for ptr < nodes && s.Cycle[order[ptr]] <= r {
			ptr++
		}
		empty := tr.Width - len(s.Rows[r])
		p := ptr
		for k := 0; k < empty; k++ {
			if p >= nodes {
				tr.slots = append(tr.slots, slotAttr{cause: CauseDrain, cand: -1, blocker: -1})
				continue
			}
			v := order[p]
			p++
			tr.slots = append(tr.slots, tr.classifySlot(occ, v, r))
		}
		tr.slotOff = append(tr.slotOff, int32(len(tr.slots)))
	}
}

// classifySlot explains why candidate v (scheduled later) did not fill an
// empty slot in row r, mirroring Validate's dependence and occupancy model.
func (tr *Tracer) classifySlot(occ map[dlx.Class][]int, v, r int) slotAttr {
	s := tr.sched
	if s.Graph != nil {
		blocker, worst := -1, r
		for _, u := range s.Graph.Pred[v] {
			if fin := s.Cycle[u] + s.Cfg.Latency[s.Prog.Instrs[u].Class()]; fin > worst {
				worst, blocker = fin, u
			}
		}
		if blocker >= 0 {
			return slotAttr{cause: CauseRAW, cand: int32(v), blocker: int32(blocker)}
		}
	}
	cls := s.Prog.Instrs[v].Class()
	if dlx.NeedsUnit(cls) {
		if o := occ[cls]; r < len(o) && o[r] >= s.Cfg.Units[cls] {
			return slotAttr{cause: CauseFUBusy, cand: int32(v), blocker: -1}
		}
	}
	return slotAttr{cause: CauseIssueWidth, cand: int32(v), blocker: -1}
}

// ProcUtil is one processor's cycle breakdown; the four columns sum to the
// machine's total cycle count.
type ProcUtil struct {
	Proc       int `json:"proc"`
	Issued     int `json:"issued"`
	SyncWait   int `json:"sync_wait"`
	WindowWait int `json:"window_wait"`
	Drain      int `json:"drain"`
}

// FUUtil is one function-unit class's occupancy over the whole run.
type FUUtil struct {
	Class string `json:"class"`
	// Units is the per-processor unit count of the class.
	Units int `json:"units"`
	// BusyCycles is unit-cycles held (units are not pipelined), summed over
	// iterations; Occupancy divides by Units×Procs×Cycles.
	BusyCycles int     `json:"busy_cycles"`
	Occupancy  float64 `json:"occupancy"`
}

// Utilization is the machine-level utilization report derived from a trace:
// where every processor cycle and issue slot went.
type Utilization struct {
	Loop    string `json:"loop,omitempty"`
	Machine string `json:"machine"`
	N       int    `json:"n"`
	Procs   int    `json:"procs"`
	Length  int    `json:"schedule_length"`
	Width   int    `json:"issue_width"`
	Window  int    `json:"window,omitempty"`
	// Cycles is the makespan; the per-processor breakdown sums to it.
	Cycles  int        `json:"cycles"`
	PerProc []ProcUtil `json:"per_proc"`
	// Cycle-level totals over all processors.
	IssuedCycles     int `json:"issued_cycles"`
	SyncWaitCycles   int `json:"sync_wait_cycles"`
	WindowWaitCycles int `json:"window_wait_cycles"`
	DrainCycles      int `json:"drain_cycles"`
	// Issue-slot accounting: SlotsTotal = Procs×Cycles×Width, SlotsIssued
	// the instructions actually issued.
	SlotsTotal     int     `json:"slots_total"`
	SlotsIssued    int     `json:"slots_issued"`
	SlotEfficiency float64 `json:"slot_efficiency"`
	// Empty-slot cause histogram over issued rows (per iteration × N).
	EmptyRAW    int `json:"empty_raw"`
	EmptyFUBusy int `json:"empty_fu_busy"`
	EmptyWidth  int `json:"empty_issue_width"`
	EmptyDrain  int `json:"empty_drain"`
	// Function-unit occupancy by class.
	FU []FUUtil `json:"fu"`
	// Synchronization breakdown: wait-stall cycles split by arc kind, plus
	// the paper-level counters copied from Timing.
	LBDWaitCycles   int `json:"lbd_wait_cycles"`
	LFDWaitCycles   int `json:"lfd_wait_cycles"`
	SignalsSent     int `json:"signals_sent"`
	WaitStallCycles int `json:"wait_stall_cycles"`
}

// Utilization derives the utilization report from the trace.
func (tr *Tracer) Utilization() *Utilization {
	u := &Utilization{
		Loop:    tr.Loop,
		Machine: tr.Machine(),
		N:       tr.N,
		Procs:   tr.Procs,
		Length:  tr.Length,
		Width:   tr.Width,
		Window:  tr.Window,
		Cycles:  tr.Timing.Total,
	}
	u.PerProc = make([]ProcUtil, tr.Procs)
	for p := range u.PerProc {
		u.PerProc[p].Proc = p
	}
	for i := range tr.Iters {
		it := &tr.Iters[i]
		if it.Proc < 0 || it.Proc >= tr.Procs {
			continue
		}
		pp := &u.PerProc[it.Proc]
		pp.Issued += tr.Length
		for _, st := range it.Stalls {
			switch st.Cause {
			case CauseSyncWait:
				pp.SyncWait += st.Cycles()
				if st.LBD {
					u.LBDWaitCycles += st.Cycles()
				} else {
					u.LFDWaitCycles += st.Cycles()
				}
			case CauseWindowWait:
				pp.WindowWait += st.Cycles()
			}
		}
	}
	for p := range u.PerProc {
		pp := &u.PerProc[p]
		pp.Drain = u.Cycles - pp.Issued - pp.SyncWait - pp.WindowWait
		u.IssuedCycles += pp.Issued
		u.SyncWaitCycles += pp.SyncWait
		u.WindowWaitCycles += pp.WindowWait
		u.DrainCycles += pp.Drain
	}
	u.SlotsTotal = tr.Procs * u.Cycles * tr.Width
	if s := tr.sched; s != nil {
		u.SlotsIssued = tr.N * len(s.Cycle)
		for _, sa := range tr.slots {
			switch sa.cause {
			case CauseRAW:
				u.EmptyRAW += tr.N
			case CauseFUBusy:
				u.EmptyFUBusy += tr.N
			case CauseIssueWidth:
				u.EmptyWidth += tr.N
			case CauseDrain:
				u.EmptyDrain += tr.N
			}
		}
		busy := map[dlx.Class]int{}
		for v := range s.Cycle {
			cls := s.Prog.Instrs[v].Class()
			if dlx.NeedsUnit(cls) {
				busy[cls] += s.Cfg.Latency[cls]
			}
		}
		for cls := dlx.Class(0); cls < dlx.NumClasses; cls++ {
			if !dlx.NeedsUnit(cls) || s.Cfg.Units[cls] == 0 || busy[cls] == 0 {
				continue
			}
			fu := FUUtil{Class: cls.String(), Units: s.Cfg.Units[cls], BusyCycles: tr.N * busy[cls]}
			if avail := s.Cfg.Units[cls] * tr.Procs * u.Cycles; avail > 0 {
				fu.Occupancy = float64(fu.BusyCycles) / float64(avail)
			}
			u.FU = append(u.FU, fu)
		}
	}
	if u.SlotsTotal > 0 {
		u.SlotEfficiency = float64(u.SlotsIssued) / float64(u.SlotsTotal)
	}
	u.SignalsSent = tr.Timing.SignalsSent
	u.WaitStallCycles = tr.Timing.StallCycles
	return u
}

// Check verifies the trace's books against an engine Timing: every
// processor's issued + attributed-stall + drain cycles equal the machine's
// total cycles, every iteration's non-issue cycles are fully attributed,
// and the stall totals match the engine's counters bit-exactly.
func (tr *Tracer) Check(tm Timing) error {
	if len(tr.Iters) != tr.N {
		return fmt.Errorf("sim: trace covers %d of %d iterations", len(tr.Iters), tr.N)
	}
	if tr.Timing.Total != tm.Total || tr.Timing.StallCycles != tm.StallCycles || tr.Timing.SignalsSent != tm.SignalsSent {
		return fmt.Errorf("sim: trace timing %+v disagrees with engine timing (total %d, stalls %d, signals %d)",
			tr.Timing, tm.Total, tm.StallCycles, tm.SignalsSent)
	}
	if tr.Length == 0 {
		return nil
	}
	type acc struct{ issued, sync, window int }
	per := make([]acc, tr.Procs)
	total := 0
	for i := range tr.Iters {
		it := &tr.Iters[i]
		if it.Proc < 0 || it.Proc >= tr.Procs {
			return fmt.Errorf("sim: iteration %d on processor %d of %d", i, it.Proc, tr.Procs)
		}
		per[it.Proc].issued += tr.Length
		attr := 0
		prev := it.Start - 1
		for r, c := range it.Rows {
			if int(c) <= prev {
				return fmt.Errorf("sim: iteration %d row %d issued at %d, not after cycle %d", i, r, c, prev)
			}
			prev = int(c)
		}
		for _, st := range it.Stalls {
			if st.Cycles() <= 0 {
				return fmt.Errorf("sim: iteration %d has empty stall span %+v", i, st)
			}
			switch st.Cause {
			case CauseSyncWait:
				per[it.Proc].sync += st.Cycles()
			case CauseWindowWait:
				per[it.Proc].window += st.Cycles()
			default:
				return fmt.Errorf("sim: iteration %d stall with cause %v", i, st.Cause)
			}
			attr += st.Cycles()
		}
		if tr.Length > 0 {
			gap := int(it.Rows[tr.Length-1]) - it.Start + 1 - tr.Length
			if attr != gap {
				return fmt.Errorf("sim: iteration %d attributes %d of %d non-issue cycles", i, attr, gap)
			}
		}
		total += attr
	}
	if total != tm.StallCycles {
		return fmt.Errorf("sim: attributed %d stall cycles, engine counted %d", total, tm.StallCycles)
	}
	for p := range per {
		drain := tm.Total - per[p].issued - per[p].sync - per[p].window
		if drain < 0 {
			return fmt.Errorf("sim: processor %d overcommitted: issued %d + sync %d + window %d > %d cycles",
				p, per[p].issued, per[p].sync, per[p].window, tm.Total)
		}
	}
	return nil
}

// SyncStallStat aggregates the wait-stall cycles charged to one
// synchronization pair.
type SyncStallStat struct {
	Signal string `json:"signal"`
	Dist   int    `json:"dist"`
	LBD    bool   `json:"lbd"`
	// Cycles is the total stalled cycles; Count the number of stall spans.
	Cycles int `json:"cycles"`
	Count  int `json:"count"`
}

// SyncStalls aggregates sync-wait spans by pair, hottest first.
func (tr *Tracer) SyncStalls() []SyncStallStat {
	type key struct {
		sig  string
		dist int
		lbd  bool
	}
	agg := map[key]*SyncStallStat{}
	for i := range tr.Iters {
		for _, st := range tr.Iters[i].Stalls {
			if st.Cause != CauseSyncWait {
				continue
			}
			k := key{st.Signal, st.Dist, st.LBD}
			s := agg[k]
			if s == nil {
				s = &SyncStallStat{Signal: st.Signal, Dist: st.Dist, LBD: st.LBD}
				agg[k] = s
			}
			s.Cycles += st.Cycles()
			s.Count++
		}
	}
	out := make([]SyncStallStat, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cycles != out[b].Cycles {
			return out[a].Cycles > out[b].Cycles
		}
		if out[a].Signal != out[b].Signal {
			return out[a].Signal < out[b].Signal
		}
		return out[a].Dist < out[b].Dist
	})
	return out
}

// Utilize runs the recurrence engine with a tracer, verifies the
// attribution books, and returns the timing with the utilization report —
// the one-call form used by reports and the pipeline.
func Utilize(s *core.Schedule, opt Options) (Timing, *Utilization, error) {
	tr := &Tracer{}
	opt.Tracer = tr
	tm, err := Time(s, opt)
	if err != nil {
		return tm, nil, err
	}
	if err := tr.Check(tm); err != nil {
		return tm, nil, err
	}
	return tm, tr.Utilization(), nil
}
