package sim

import (
	"fmt"
	"io"

	"doacross/internal/obs"
)

// trackStride spaces the per-processor track IDs in the machine timeline:
// each processor owns a block of trackStride thread IDs — the issue track
// first, then one track per function-unit class.
const trackStride = 16

// Events renders the machine trace as Chrome trace_event entries under the
// given pid, one process group per traced loop: a per-processor issue track
// carrying iteration spans with their attributed stall spans nested inside
// (each wait annotated with its sync arc and sender iteration), and one
// track per processor × FU class carrying the instruction occupancy
// (1 cycle = 1 µs). The result merges into the service span timeline via
// obs.WriteChromeTraceMerged, so service spans and machine cycles appear in
// one Perfetto view.
func (tr *Tracer) Events(pid uint64) []obs.Event {
	s := tr.sched
	if s == nil {
		return nil
	}
	label := tr.Loop
	if label == "" {
		label = "loop"
	}
	evs := []obs.Event{{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": fmt.Sprintf("machine %s on %s", label, s.Cfg.Name)},
	}}
	named := map[uint64]bool{}
	threadName := func(tid uint64, name string) {
		if !named[tid] {
			named[tid] = true
			evs = append(evs, obs.Event{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
	}
	for i := range tr.Iters {
		it := &tr.Iters[i]
		if it.Proc < 0 {
			continue
		}
		issueTID := uint64(it.Proc)*trackStride + 1
		threadName(issueTID, fmt.Sprintf("P%d issue", it.Proc))
		evs = append(evs, obs.Event{
			Name: fmt.Sprintf("iter %d", tr.Lo+it.Index),
			Cat:  "iteration", Ph: "X", PID: pid, TID: issueTID,
			TS: float64(it.Start), Dur: float64(it.Done + 1 - it.Start),
			Args: map[string]any{"iteration": tr.Lo + it.Index, "proc": it.Proc},
		})
		for _, st := range it.Stalls {
			args := map[string]any{"row": st.Row, "cause": st.Cause.String()}
			var nm string
			switch st.Cause {
			case CauseSyncWait:
				arc := "LFD"
				if st.LBD {
					arc = "LBD"
				}
				nm = fmt.Sprintf("wait %s d=%d <- iter %d", st.Signal, st.Dist, tr.Lo+st.SrcIter)
				args["signal"] = st.Signal
				args["distance"] = st.Dist
				args["src_iter"] = tr.Lo + st.SrcIter
				args["send_cycle"] = st.SendCycle
				args["arc"] = arc
			case CauseWindowWait:
				nm = "window"
				if st.Signal != "" {
					nm = fmt.Sprintf("window %s <- iter %d", st.Signal, tr.Lo+st.SrcIter)
					args["signal"] = st.Signal
					args["distance"] = st.Dist
					args["src_iter"] = tr.Lo + st.SrcIter
				}
			default:
				nm = st.Cause.String()
			}
			evs = append(evs, obs.Event{
				Name: nm, Cat: "stall", Ph: "X", PID: pid, TID: issueTID,
				TS: float64(st.From), Dur: float64(st.Cycles()), Args: args,
			})
		}
		for v := range s.Cycle {
			in := s.Prog.Instrs[v]
			cls := in.Class()
			tid := uint64(it.Proc)*trackStride + 2 + uint64(cls)
			threadName(tid, fmt.Sprintf("P%d %s", it.Proc, cls))
			lat := s.Cfg.Latency[cls]
			if lat < 1 {
				lat = 1
			}
			evs = append(evs, obs.Event{
				Name: fmt.Sprintf("#%d %s", in.ID, in.String()),
				Cat:  "instr", Ph: "X", PID: pid, TID: tid,
				TS: float64(it.Rows[s.Cycle[v]]), Dur: float64(lat),
				Args: map[string]any{"iteration": tr.Lo + it.Index, "row": s.Cycle[v]},
			})
		}
	}
	return evs
}

// WriteChromeTrace writes the machine timeline alone as a loadable
// Perfetto/chrome://tracing file.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	return obs.WriteEvents(w, tr.Events(2))
}
