package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

const chainSource = "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO"

type built struct {
	loop *lang.Loop
	prog *tac.Program
	g    *dfg.Graph
}

func build(t testing.TB, src string) built {
	t.Helper()
	loop := lang.MustParse(src)
	a := dep.Analyze(loop)
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return built{loop: loop, prog: p, g: g}
}

func mustList(t testing.TB, b built, cfg dlx.Config) *core.Schedule {
	t.Helper()
	s, err := core.List(b.g, cfg, core.ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSync(t testing.TB, b built, cfg dlx.Config) *core.Schedule {
	t.Helper()
	s, err := core.Sync(b.g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChainListTotal pins the analytic model on the simplest recurrence:
// A[I] = A[I-1]+1 at 2-issue/uniform latency list-schedules to 7 rows with
// the wait in row 0 and the send in row 6, so iteration i+1 starts 7 cycles
// after iteration i: total = 7n.
func TestChainListTotal(t *testing.T) {
	b := build(t, chainSource)
	s := mustList(t, b, dlx.Uniform(2, 1))
	if s.Length() != 7 {
		t.Fatalf("list schedule length = %d, want 7:\n%s", s.Length(), s.Listing())
	}
	for _, n := range []int{1, 2, 10, 100} {
		tm, err := Time(s, Options{Lo: 1, Hi: n})
		if err != nil {
			t.Fatal(err)
		}
		if tm.Total != 7*n {
			t.Errorf("n=%d: total = %d, want %d", n, tm.Total, 7*n)
		}
	}
}

// TestChainSyncTotal pins the improved recurrence: the sync scheduler delays
// the wait behind the address computation, shrinking the wait→send span to 4
// rows: total = 5n + 2.
func TestChainSyncTotal(t *testing.T) {
	b := build(t, chainSource)
	s := mustSync(t, b, dlx.Uniform(2, 1))
	for _, n := range []int{1, 2, 10, 100} {
		tm, err := Time(s, Options{Lo: 1, Hi: n})
		if err != nil {
			t.Fatal(err)
		}
		want := 5*n + 2
		if tm.Total != want {
			t.Errorf("n=%d: total = %d, want %d\n%s", n, tm.Total, want, s.Listing())
		}
	}
}

func TestFig1Improvement(t *testing.T) {
	b := build(t, fig1Source)
	cfg := dlx.Uniform(4, 1)
	list := mustList(t, b, cfg)
	syn := mustSync(t, b, cfg)
	n := 100
	lt := MustTime(list, Options{Lo: 1, Hi: n})
	st := MustTime(syn, Options{Lo: 1, Hi: n})
	if st.Total >= lt.Total {
		t.Fatalf("sync %d >= list %d at n=%d", st.Total, lt.Total, n)
	}
	improvement := 1 - float64(st.Total)/float64(lt.Total)
	// The paper's Fig. 4 example improves by roughly a factor (12·N vs
	// (N/2)·7); at n=100 that's >60 %.
	if improvement < 0.5 {
		t.Errorf("improvement = %.1f%%, want > 50%%", 100*improvement)
	}
}

func TestTimeZeroTrip(t *testing.T) {
	b := build(t, fig1Source)
	s := mustList(t, b, dlx.Standard(2, 1))
	tm, err := Time(s, Options{Lo: 5, Hi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Total != 0 || tm.StallCycles != 0 {
		t.Errorf("zero-trip timing = %+v", tm)
	}
}

func TestTimeSingleIterationNoStall(t *testing.T) {
	b := build(t, fig1Source)
	s := mustList(t, b, dlx.Standard(4, 2))
	tm := MustTime(s, Options{Lo: 1, Hi: 1})
	if tm.StallCycles != 0 {
		t.Errorf("single iteration stalled %d cycles (no one to wait for)", tm.StallCycles)
	}
	if tm.Total != s.CompletionLength() {
		t.Errorf("total = %d, want completion length %d", tm.Total, s.CompletionLength())
	}
}

func TestRunMatchesSequentialFig1(t *testing.T) {
	b := build(t, fig1Source)
	for _, cfg := range dlx.PaperConfigs() {
		for _, s := range []*core.Schedule{mustList(t, b, cfg), mustSync(t, b, cfg)} {
			n := 12
			ref := b.loop.SeedStore(n, 8, 5)
			got := ref.Clone()
			if err := b.loop.Run(ref); err != nil {
				t.Fatal(err)
			}
			if _, err := Run(s, got, Options{Lo: 1, Hi: n}); err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, s.Method, err)
			}
			if d := ref.Diff(got); d != "" {
				t.Errorf("%s/%s: parallel result wrong: %s", cfg.Name, s.Method, d)
			}
		}
	}
}

func TestRunTimingMatchesTime(t *testing.T) {
	for _, src := range []string{fig1Source, chainSource, "DO I = 1, N\nS = S + A[I]\nENDDO"} {
		b := build(t, src)
		for _, cfg := range []dlx.Config{dlx.Standard(2, 1), dlx.Standard(4, 2), dlx.Uniform(4, 1)} {
			for _, s := range []*core.Schedule{mustList(t, b, cfg), mustSync(t, b, cfg)} {
				for _, opt := range []Options{{Lo: 1, Hi: 9}, {Lo: 1, Hi: 9, Procs: 3}, {Lo: 2, Hi: 7, Procs: 2}} {
					want, err := Time(s, opt)
					if err != nil {
						t.Fatal(err)
					}
					st := b.loop.SeedStore(12, 10, 3)
					got, err := Run(s, st, opt)
					if err != nil {
						t.Fatal(err)
					}
					if got.Total != want.Total {
						t.Errorf("%s/%s %+v: detailed total %d != recurrence %d",
							cfg.Name, s.Method, opt, got.Total, want.Total)
					}
					if got.StallCycles != want.StallCycles {
						t.Errorf("%s/%s %+v: detailed stalls %d != recurrence %d",
							cfg.Name, s.Method, opt, got.StallCycles, want.StallCycles)
					}
				}
			}
		}
	}
}

func TestFewerProcessorsSlowerButCorrect(t *testing.T) {
	b := build(t, fig1Source)
	s := mustSync(t, b, dlx.Standard(4, 1))
	n := 16
	full := MustTime(s, Options{Lo: 1, Hi: n})
	quarter := MustTime(s, Options{Lo: 1, Hi: n, Procs: 4})
	if quarter.Total < full.Total {
		t.Errorf("4 procs (%d) faster than %d procs (%d)", quarter.Total, n, full.Total)
	}
	one := MustTime(s, Options{Lo: 1, Hi: n, Procs: 1})
	if one.Total < quarter.Total {
		t.Errorf("1 proc (%d) faster than 4 procs (%d)", one.Total, quarter.Total)
	}
	// Single processor executes iterations back to back: no benefit, and the
	// result must still be right.
	ref := b.loop.SeedStore(n, 8, 17)
	got := ref.Clone()
	if err := b.loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, got, Options{Lo: 1, Hi: n, Procs: 1}); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(got); d != "" {
		t.Errorf("1-proc result wrong: %s", d)
	}
}

func TestReductionSerializes(t *testing.T) {
	// S = S + A[I] has a distance-1 LBD through the whole statement; the
	// parallel time must grow linearly with a slope of several cycles.
	b := build(t, "DO I = 1, N\nS = S + A[I]\nENDDO")
	s := mustSync(t, b, dlx.Standard(2, 1))
	t10 := MustTime(s, Options{Lo: 1, Hi: 10}).Total
	t20 := MustTime(s, Options{Lo: 1, Hi: 20}).Total
	slope := float64(t20-t10) / 10
	if slope < 2 {
		t.Errorf("reduction slope = %.1f cycles/iter, expected serialization (>= 2)", slope)
	}
}

func TestDoallFlatTime(t *testing.T) {
	// Without carried deps the parallel time is independent of n (given n
	// processors).
	b := build(t, "DO I = 1, N\nA[I] = E[I] * 2 + F[I]\nENDDO")
	s := mustList(t, b, dlx.Standard(2, 1))
	t5 := MustTime(s, Options{Lo: 1, Hi: 5}).Total
	t500 := MustTime(s, Options{Lo: 1, Hi: 500}).Total
	if t5 != t500 {
		t.Errorf("DOALL time varies with n: %d vs %d", t5, t500)
	}
	if t5 != s.CompletionLength() {
		t.Errorf("DOALL time %d != completion length %d", t5, s.CompletionLength())
	}
}

func TestQuickParallelMatchesSequential(t *testing.T) {
	arrays := []string{"A", "B", "C", "D"}
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
		nst := 1 + r.Intn(4)
		ref := func() lang.Expr {
			off := r.Intn(7) - 4
			return &lang.ArrayRef{Name: arrays[r.Intn(len(arrays))],
				Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(off)}}}
		}
		for k := 0; k < nst; k++ {
			st := &lang.Assign{
				Label: "S" + string(rune('1'+k)),
				LHS:   &lang.ArrayRef{Name: arrays[r.Intn(len(arrays))], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(3))}}},
				RHS:   &lang.Binary{Op: lang.BinOp(r.Intn(3)), L: ref(), R: ref()},
			}
			if r.Intn(4) == 0 {
				st.Cond = &lang.Cond{Op: lang.RelOp(r.Intn(6)), L: ref(), R: &lang.Const{Value: float64(r.Intn(5) - 2)}}
			}
			loop.Body = append(loop.Body, st)
		}
		a := dep.Analyze(loop)
		p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return false
		}
		g, err := dfg.Build(p, a)
		if err != nil {
			return false
		}
		machine := dlx.PaperConfigs()[r.Intn(4)]
		var s *core.Schedule
		if r.Intn(2) == 0 {
			s, err = core.List(g, machine, core.ProgramOrder)
		} else {
			s, err = core.Sync(g, machine)
		}
		if err != nil {
			return false
		}
		n := 8
		refSt := loop.SeedStore(n, 12, uint64(seed))
		gotSt := refSt.Clone()
		if err := loop.Run(refSt); err != nil {
			return true
		}
		procs := []int{0, 1, 3}[r.Intn(3)]
		if _, err := Run(s, gotSt, Options{Lo: 1, Hi: n, Procs: procs}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d := refSt.Diff(gotSt); d != "" {
			t.Logf("seed %d (%s, procs=%d): %s\n%s", seed, s.Method, procs, d, loop)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestUnsynchronizedScheduleCorrupts demonstrates the differential tests
// have teeth: running WITHOUT synchronization stalls (waits stripped) on a
// recurrence loop produces wrong results, because each iteration reads
// A[I-1] before its producer ran.
func TestUnsynchronizedScheduleCorrupts(t *testing.T) {
	b := build(t, chainSource)
	s := mustList(t, b, dlx.Uniform(2, 1))
	n := 10
	ref := b.loop.SeedStore(n, 4, 1)
	got := ref.Clone()
	if err := b.loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	// Strip the wait's signal gating by lying about distances: a distance
	// beyond the trip count never waits.
	hacked := *s
	// Deep-copy instructions so the shared program is untouched.
	prog := *s.Prog
	instrs := make([]*tac.Instr, len(prog.Instrs))
	for i, in := range prog.Instrs {
		cp := *in
		if cp.Op == tac.Wait {
			cp.SigDist = 1000
		}
		instrs[i] = &cp
	}
	prog.Instrs = instrs
	hacked.Prog = &prog
	if _, err := Run(&hacked, got, Options{Lo: 1, Hi: n}); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(got); d == "" {
		t.Error("unsynchronized run produced the sequential result; differential test has no power")
	}
}

// TestMaxCyclesBudget: Options.MaxCycles caps the detailed simulator
// explicitly. A budget too small for the run fails with an exhaustion error
// naming the blocked iteration set; a generous budget changes nothing.
func TestMaxCyclesBudget(t *testing.T) {
	b := build(t, chainSource)
	s := mustList(t, b, dlx.Uniform(2, 1))
	n := 100
	_, err := Run(s, b.loop.SeedStore(n+2, 8, 5), Options{Lo: 1, Hi: n, MaxCycles: 50})
	if err == nil {
		t.Fatal("a 700-cycle run fit a 50-cycle budget")
	}
	for _, want := range []string{"cycle budget 50 exhausted", "blocked iterations"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("budget error %q missing %q", err, want)
		}
	}
	tm, err := Run(s, b.loop.SeedStore(n+2, 8, 5), Options{Lo: 1, Hi: n, MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Total != 700 {
		t.Errorf("budgeted run total = %d, want 700", tm.Total)
	}
	// The derived bound (MaxCycles 0) still reports a deadlock, not an
	// exhausted budget.
	if _, err := Run(s, b.loop.SeedStore(n+2, 8, 5), Options{Lo: 1, Hi: n}); err != nil {
		t.Errorf("derived bound rejected a correct schedule: %v", err)
	}
}
