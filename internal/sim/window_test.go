package sim

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dlx"
)

// TestWindowLargeEqualsUnbounded: a window far larger than any recurrence
// reach behaves exactly like the idealized unbounded signal vector.
func TestWindowLargeEqualsUnbounded(t *testing.T) {
	for _, src := range []string{fig1Source, chainSource} {
		b := build(t, src)
		for _, s := range []*core.Schedule{mustList(t, b, dlx.Standard(2, 1)), mustSync(t, b, dlx.Standard(4, 1))} {
			unbounded := MustTime(s, Options{Lo: 1, Hi: 60})
			windowed, err := Time(s, Options{Lo: 1, Hi: 60, Window: 50})
			if err != nil {
				t.Fatal(err)
			}
			if windowed.Total != unbounded.Total {
				t.Errorf("%s: window 50 total %d != unbounded %d", s.Method, windowed.Total, unbounded.Total)
			}
		}
	}
}

// TestWindowTooSmallRejected: a window below the largest dependence distance
// would deadlock and must be rejected up front.
func TestWindowTooSmallRejected(t *testing.T) {
	b := build(t, fig1Source) // distances 1 and 2
	s := mustSync(t, b, dlx.Standard(4, 1))
	if _, err := Time(s, Options{Lo: 1, Hi: 20, Window: 1}); err == nil {
		t.Error("window 1 < distance 2 must be rejected")
	}
	st := b.loop.SeedStore(20, 8, 1)
	if _, err := Run(s, st, Options{Lo: 1, Hi: 20, Window: 1}); err == nil {
		t.Error("detailed simulator must reject window 1 too")
	}
}

// TestWindowEqualDistanceLFDRejected: with window == d on a pair the
// scheduler made LFD, the send would wait for its own iteration's later
// wait — rejected.
func TestWindowEqualDistanceLFDRejected(t *testing.T) {
	// Forward-converted pair with d=1: sync scheduling puts the send before
	// the wait.
	b := build(t, "DO I = 1, N\nB[I+1] = A[I-1] + E[I-2]\nA[I] = F[I] + G[I+2]\nENDDO")
	s := mustSync(t, b, dlx.Standard(4, 1))
	lfd := false
	for _, p := range s.PairSpans() {
		if !p.LBD() && p.Distance == 1 {
			lfd = true
		}
	}
	if !lfd {
		t.Skip("scheduler did not produce the LFD shape this test needs")
	}
	if _, err := Time(s, Options{Lo: 1, Hi: 20, Window: 1}); err == nil {
		t.Error("window == distance on an LFD pair must be rejected")
	}
}

// TestWindowThrottles: a tight window on a convertible (LFD) schedule caps
// how far sends can run ahead, increasing total time, monotonically in the
// window size.
func TestWindowThrottles(t *testing.T) {
	b := build(t, chainSource) // distance-1 LBD chain
	s := mustList(t, b, dlx.Uniform(2, 1))
	n := 60
	prev := -1
	for _, w := range []int{1, 2, 4, 16} {
		tm, err := Time(s, Options{Lo: 1, Hi: n, Window: w})
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if prev != -1 && tm.Total > prev {
			t.Errorf("window %d total %d > smaller-window total %d (should be monotone non-increasing)", w, tm.Total, prev)
		}
		prev = tm.Total
	}
	// The chain is already fully serialized by its dependence, so even
	// window 1 cannot make it slower than the unbounded run.
	unbounded := MustTime(s, Options{Lo: 1, Hi: n}).Total
	if prev != unbounded {
		t.Logf("note: window-16 total %d vs unbounded %d", prev, unbounded)
	}
}

// TestWindowForwardPairThrottled: an LFD-converted loop runs in O(1) time
// with unbounded signals; a small window forces the producers to pace
// themselves, making time grow with n again.
func TestWindowForwardPairThrottled(t *testing.T) {
	b := build(t, "DO I = 1, N\nA[I] = E[I]\nB[I+2] = A[I-3] * F[I+1]\nENDDO")
	s := mustSync(t, b, dlx.Standard(4, 2))
	if s.NumLBD() != 0 {
		t.Skip("needs the all-LFD shape")
	}
	n1, n2 := 40, 80
	flat1 := MustTime(s, Options{Lo: 1, Hi: n1}).Total
	flat2 := MustTime(s, Options{Lo: 1, Hi: n2}).Total
	if flat1 != flat2 {
		t.Fatalf("unbounded LFD loop should be flat: %d vs %d", flat1, flat2)
	}
	w1, err := Time(s, Options{Lo: 1, Hi: n1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Time(s, Options{Lo: 1, Hi: n2, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Total <= w1.Total {
		t.Errorf("window 4 should make time grow with n: %d (n=%d) vs %d (n=%d)", w1.Total, n1, w2.Total, n2)
	}
}

// TestWindowDetailedMatchesRecurrence: the two engines agree under bounded
// windows, and memory remains correct.
func TestWindowDetailedMatchesRecurrence(t *testing.T) {
	for _, src := range []string{fig1Source, chainSource} {
		b := build(t, src)
		for _, cfg := range []dlx.Config{dlx.Standard(2, 1), dlx.Standard(4, 2)} {
			for _, s := range []*core.Schedule{mustList(t, b, cfg), mustSync(t, b, cfg)} {
				for _, w := range []int{2, 3, 8} {
					want, err := Time(s, Options{Lo: 1, Hi: 24, Window: w})
					if err != nil {
						t.Fatal(err)
					}
					ref := b.loop.SeedStore(24, 10, uint64(w))
					got := ref.Clone()
					if err := b.loop.Run(ref); err != nil {
						t.Fatal(err)
					}
					tm, err := Run(s, got, Options{Lo: 1, Hi: 24, Window: w})
					if err != nil {
						t.Fatal(err)
					}
					if tm.Total != want.Total {
						t.Errorf("%s/%s window %d: detailed %d != recurrence %d",
							cfg.Name, s.Method, w, tm.Total, want.Total)
					}
					if d := ref.Diff(got); d != "" {
						t.Errorf("%s/%s window %d: memory wrong: %s", cfg.Name, s.Method, w, d)
					}
				}
			}
		}
	}
}
