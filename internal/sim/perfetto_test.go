package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"doacross/internal/dlx"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFig1MachineTraceGolden pins the Chrome trace_event export of the
// paper's Fig. 1 loop (sync schedule, 4-issue uniform machine, n=6) to a
// golden file: track naming, iteration and stall spans with their sync-arc
// annotations, and FU occupancy must stay byte-stable, since the file is a
// user-facing artifact loaded into Perfetto.
// Regenerate with: go test ./internal/sim -run MachineTraceGolden -update
func TestFig1MachineTraceGolden(t *testing.T) {
	b := build(t, fig1Source)
	s := mustSync(t, b, dlx.Uniform(4, 1))
	tr := &Tracer{Loop: "fig1"}
	tm, err := Time(s, Options{Lo: 1, Hi: 6, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(tm); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "fig1_machine_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("machine trace diverges from %s:\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}
