package sim

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dlx"
)

// TestConditionalRecurrenceParallel runs the paper's type-1 (control
// dependence) loop shape through the whole pipeline: if-converted code,
// conservative synchronization, both schedulers, detailed parallel
// execution, and the sequential differential check.
func TestConditionalRecurrenceParallel(t *testing.T) {
	b := build(t, "DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + E[I]\nENDDO")
	for _, cfg := range []dlx.Config{dlx.Standard(2, 1), dlx.Standard(4, 2)} {
		for _, s := range []*core.Schedule{mustList(t, b, cfg), mustSync(t, b, cfg)} {
			n := 10
			ref := b.loop.SeedStore(n, 6, 21)
			got := ref.Clone()
			if err := b.loop.Run(ref); err != nil {
				t.Fatal(err)
			}
			if _, err := Run(s, got, Options{Lo: 1, Hi: n}); err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, s.Method, err)
			}
			if d := ref.Diff(got); d != "" {
				t.Errorf("%s/%s: conditional parallel result wrong: %s", cfg.Name, s.Method, d)
			}
		}
	}
}

// TestConditionalMaxReductionParallel checks a guarded scalar recurrence
// (running maximum) parallelizes correctly: the conservative distance-1
// synchronization serializes the selects, preserving the sequential result.
func TestConditionalMaxReductionParallel(t *testing.T) {
	b := build(t, "DO I = 1, N\nIF (A[I] > M) M = A[I]\nENDDO")
	s := mustSync(t, b, dlx.Standard(4, 1))
	n := 16
	ref := b.loop.SeedStore(n, 4, 13)
	ref.SetScalar("M", -4096)
	got := ref.Clone()
	if err := b.loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, got, Options{Lo: 1, Hi: n}); err != nil {
		t.Fatal(err)
	}
	if got.Scalar("M") != ref.Scalar("M") {
		t.Errorf("parallel max = %v, sequential = %v", got.Scalar("M"), ref.Scalar("M"))
	}
}
