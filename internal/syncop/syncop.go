// Package syncop converts a DO loop with loop-carried dependences into a
// DOACROSS loop by inserting synchronization operations, following the
// scheme the paper adopts from Midkiff/Padua and Zima/Chapman:
//
//   - a send statement immediately after each dependence source S:
//     Send_Signal(S)
//   - a wait statement immediately before each dependence sink S':
//     Wait_Signal(S, i-d), where d is the dependence distance.
//
// One Send_Signal(S) per source statement serves every dependence sourced at
// S (the paper's Fig. 1 inserts a single Send_Signal(S3) for both the
// distance-1 and distance-2 dependences).
package syncop

import (
	"fmt"
	"strings"

	"doacross/internal/dep"
	"doacross/internal/diag"
	"doacross/internal/lang"
)

// OpKind distinguishes sends from waits.
type OpKind int

// Synchronization operation kinds.
const (
	Send OpKind = iota
	Wait
)

// Op is one synchronization operation attached to a statement.
type Op struct {
	Kind OpKind
	// Src is the label of the dependence source statement; the signal
	// namespace is keyed by source statement, as in the paper.
	Src string
	// Distance is the dependence distance d: Wait_Signal(Src, i-d) waits for
	// iteration i-d's send. Unused for sends.
	Distance int
	// Dep is the dependence this op synchronizes. For deduplicated sends it
	// is the first dependence that requested the send.
	Dep dep.Dependence
}

// String renders the op in the paper's notation.
func (o Op) String() string {
	if o.Kind == Send {
		return fmt.Sprintf("Send_Signal(%s)", o.Src)
	}
	if o.Distance == 0 {
		return fmt.Sprintf("Wait_Signal(%s, I)", o.Src)
	}
	return fmt.Sprintf("Wait_Signal(%s, I-%d)", o.Src, o.Distance)
}

// Loop is a DOACROSS loop: the original statements plus synchronization
// operations positioned before/after them.
type Loop struct {
	Base *lang.Loop
	// Analysis is the dependence analysis the insertion was driven by.
	Analysis *dep.Analysis
	// Synced lists the dependences that received synchronization.
	Synced []dep.Dependence
	// Pre[k] are the waits immediately before statement k; Post[k] the sends
	// immediately after it.
	Pre, Post [][]Op
}

// Options controls which dependences are synchronized.
type Options struct {
	// FlowOnly limits synchronization to loop-carried flow dependences. The
	// paper's measured benchmarks are dominated by flow LBDs; anti/output
	// dependences are usually removed beforehand by renaming transformations
	// (scalar expansion etc.). Default false: synchronize everything, which
	// is what the parallel-correctness differential tests require.
	FlowOnly bool
}

// Insert builds the DOACROSS form of the loop. The analysis must be for the
// same loop object.
func Insert(a *dep.Analysis, opts Options) *Loop {
	loop := a.Loop
	prePost := make([][]Op, 2*len(loop.Body))
	out := &Loop{
		Base:     loop,
		Analysis: a,
		Pre:      prePost[:len(loop.Body)],
		Post:     prePost[len(loop.Body):],
	}
	sentFrom := make([]bool, len(loop.Body)) // source statement index -> send inserted
	type waitKey struct {
		snk, src, d int
	}
	var waited map[waitKey]bool
	for _, d := range a.Deps {
		if !d.Carried() {
			continue
		}
		if opts.FlowOnly && d.Kind != dep.Flow {
			continue
		}
		if out.Synced == nil {
			out.Synced = make([]dep.Dependence, 0, len(a.Deps))
		}
		out.Synced = append(out.Synced, d)
		srcStmt := d.Src.Stmt
		srcLabel := loop.Body[srcStmt].Label
		if !sentFrom[srcStmt] {
			sentFrom[srcStmt] = true
			out.Post[srcStmt] = append(out.Post[srcStmt], Op{Kind: Send, Src: srcLabel, Dep: d})
		}
		wk := waitKey{snk: d.Snk.Stmt, src: srcStmt, d: d.Distance}
		if !waited[wk] {
			if waited == nil {
				waited = make(map[waitKey]bool, 8)
			}
			waited[wk] = true
			out.Pre[d.Snk.Stmt] = append(out.Pre[d.Snk.Stmt], Op{
				Kind: Wait, Src: srcLabel, Distance: d.Distance, Dep: d,
			})
		}
	}
	// Waits before a statement are ordered by descending distance, matching
	// the paper's Fig. 1(b): the wait for the farthest-back iteration is
	// textually first (its signal arrives earliest, so this order minimizes
	// blocked time in a strictly in-order execution).
	for k := range out.Pre {
		pre := out.Pre[k]
		for i := 1; i < len(pre); i++ {
			for j := i; j > 0 && pre[j].Distance > pre[j-1].Distance; j-- {
				pre[j], pre[j-1] = pre[j-1], pre[j]
			}
		}
	}
	return out
}

// Item is one element of the flattened DOACROSS body: either a
// synchronization op or a statement.
type Item struct {
	// Op is non-nil for synchronization operations.
	Op *Op
	// Stmt is non-nil for assignment statements; StmtIndex is its 0-based
	// position in the original body.
	Stmt      *lang.Assign
	StmtIndex int
}

// Items returns the loop body flattened to execution order:
// waits(S1) S1 sends(S1) waits(S2) S2 sends(S2) ...
func (l *Loop) Items() []Item {
	var items []Item
	for k, st := range l.Base.Body {
		for i := range l.Pre[k] {
			op := l.Pre[k][i]
			items = append(items, Item{Op: &op, StmtIndex: k})
		}
		items = append(items, Item{Stmt: st, StmtIndex: k})
		for i := range l.Post[k] {
			op := l.Post[k][i]
			items = append(items, Item{Op: &op, StmtIndex: k})
		}
	}
	return items
}

// NumOps returns the number of sends and waits inserted.
func (l *Loop) NumOps() (sends, waits int) {
	for k := range l.Base.Body {
		sends += len(l.Post[k])
		waits += len(l.Pre[k])
	}
	return sends, waits
}

// String renders the DOACROSS loop in the paper's Fig. 1(b) style.
func (l *Loop) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DOACROSS %s = %s, %s\n", l.Base.Var, l.Base.Lo, l.Base.Hi)
	for _, it := range l.Items() {
		if it.Op != nil {
			fmt.Fprintf(&sb, "  %s;\n", it.Op)
			continue
		}
		fmt.Fprintf(&sb, "  %s: %s;\n", it.Stmt.Label, it.Stmt)
	}
	sb.WriteString("END_DOACROSS\n")
	return sb.String()
}

// Signals returns the sorted set of signal names (source statement labels)
// used by the loop.
func (l *Loop) Signals() []string {
	set := map[string]bool{}
	for k := range l.Base.Body {
		for _, op := range l.Post[k] {
			set[op.Src] = true
		}
		for _, op := range l.Pre[k] {
			set[op.Src] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// insertion sort; tiny sets
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Validate checks the two synchronization conditions of §2 on the flattened
// body: every Wait appears before its sink statement and every Send after
// its source statement. Insert constructs loops that satisfy this by
// construction; Validate exists for downstream passes (the schedulers) that
// reorder instructions.
func (l *Loop) Validate() error {
	items := l.Items()
	for idx, it := range items {
		if it.Op == nil {
			continue
		}
		srcIdx := l.Base.StmtIndex(it.Op.Src)
		if srcIdx < 0 {
			return diag.Errorf("syncop", diag.Pos{}, "op %v references unknown statement", it.Op)
		}
		src := l.Base.Body[srcIdx]
		switch it.Op.Kind {
		case Send:
			// Send must come after its source statement.
			found := false
			for j := 0; j < idx; j++ {
				if items[j].Stmt != nil && items[j].StmtIndex == srcIdx {
					found = true
					break
				}
			}
			if !found {
				return diag.Errorf("syncop", src.Pos(), "%v precedes its source statement", it.Op).WithStmt(src.Label)
			}
		case Wait:
			// Wait must come before its sink statement (the statement it is
			// attached to).
			snk := l.Base.Body[it.StmtIndex]
			for j := 0; j < idx; j++ {
				if items[j].Stmt != nil && items[j].StmtIndex == it.StmtIndex {
					return diag.Errorf("syncop", snk.Pos(), "%v follows its sink statement", it.Op).WithStmt(snk.Label)
				}
			}
		}
	}
	return nil
}
