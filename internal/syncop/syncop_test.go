package syncop

import (
	"strings"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/lang"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func insertFig1(t *testing.T) *Loop {
	t.Helper()
	a := dep.Analyze(lang.MustParse(fig1Source))
	return Insert(a, Options{})
}

func TestInsertFig1Shape(t *testing.T) {
	sl := insertFig1(t)
	sends, waits := sl.NumOps()
	if sends != 1 {
		t.Errorf("sends = %d, want 1 (single deduplicated Send_Signal(S3))", sends)
	}
	if waits != 2 {
		t.Errorf("waits = %d, want 2", waits)
	}
	// Wait_Signal(S3, I-2) before S1.
	if len(sl.Pre[0]) != 1 || sl.Pre[0][0].Src != "S3" || sl.Pre[0][0].Distance != 2 {
		t.Errorf("Pre[S1] = %v, want Wait_Signal(S3, I-2)", sl.Pre[0])
	}
	// Wait_Signal(S3, I-1) before S2.
	if len(sl.Pre[1]) != 1 || sl.Pre[1][0].Src != "S3" || sl.Pre[1][0].Distance != 1 {
		t.Errorf("Pre[S2] = %v, want Wait_Signal(S3, I-1)", sl.Pre[1])
	}
	// Send_Signal(S3) after S3.
	if len(sl.Post[2]) != 1 || sl.Post[2][0].Src != "S3" || sl.Post[2][0].Kind != Send {
		t.Errorf("Post[S3] = %v, want Send_Signal(S3)", sl.Post[2])
	}
}

func TestInsertFig1Rendering(t *testing.T) {
	s := insertFig1(t).String()
	for _, want := range []string{
		"DOACROSS I = 1, N",
		"Wait_Signal(S3, I-2)",
		"Wait_Signal(S3, I-1)",
		"Send_Signal(S3)",
		"END_DOACROSS",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Order: the distance-2 wait comes before S1, which comes before the
	// distance-1 wait.
	i2 := strings.Index(s, "Wait_Signal(S3, I-2)")
	i1 := strings.Index(s, "Wait_Signal(S3, I-1)")
	is1 := strings.Index(s, "B[I]")
	if !(i2 < is1 && is1 < i1) {
		t.Errorf("wait placement wrong:\n%s", s)
	}
}

func TestItemsOrder(t *testing.T) {
	sl := insertFig1(t)
	items := sl.Items()
	// wait, S1, wait, S2, S3, send
	var kinds []string
	for _, it := range items {
		switch {
		case it.Op != nil && it.Op.Kind == Wait:
			kinds = append(kinds, "wait")
		case it.Op != nil:
			kinds = append(kinds, "send")
		default:
			kinds = append(kinds, it.Stmt.Label)
		}
	}
	want := []string{"wait", "S1", "wait", "S2", "S3", "send"}
	if len(kinds) != len(want) {
		t.Fatalf("items = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("item %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := insertFig1(t).Validate(); err != nil {
		t.Errorf("freshly inserted loop should validate: %v", err)
	}
}

func TestSignals(t *testing.T) {
	sigs := insertFig1(t).Signals()
	if len(sigs) != 1 || sigs[0] != "S3" {
		t.Errorf("signals = %v, want [S3]", sigs)
	}
}

func TestInsertDoallNoOps(t *testing.T) {
	a := dep.Analyze(lang.MustParse("DO I = 1, N\nA[I] = E[I]\nENDDO"))
	sl := Insert(a, Options{})
	sends, waits := sl.NumOps()
	if sends != 0 || waits != 0 {
		t.Errorf("DOALL loop got %d sends, %d waits", sends, waits)
	}
}

func TestInsertFlowOnly(t *testing.T) {
	// Anti dependence only: A[I+1] read in S1, written in S2.
	a := dep.Analyze(lang.MustParse("DO I = 1, N\nB[I] = A[I+1]\nA[I] = E[I]\nENDDO"))
	full := Insert(a, Options{})
	flowOnly := Insert(a, Options{FlowOnly: true})
	fs, fw := full.NumOps()
	if fs == 0 || fw == 0 {
		t.Errorf("full sync should cover the anti dependence, got %d/%d", fs, fw)
	}
	s, w := flowOnly.NumOps()
	if s != 0 || w != 0 {
		t.Errorf("FlowOnly should skip anti deps, got %d sends %d waits", s, w)
	}
}

func TestInsertReduction(t *testing.T) {
	a := dep.Analyze(lang.MustParse("DO I = 1, N\nS = S + A[I]\nENDDO"))
	sl := Insert(a, Options{FlowOnly: true})
	sends, waits := sl.NumOps()
	if sends != 1 || waits != 1 {
		t.Fatalf("reduction: %d sends %d waits, want 1/1", sends, waits)
	}
	// The wait precedes the statement, the send follows it — a same-statement
	// pair (the tightest possible LBD).
	if sl.Pre[0][0].Distance != 1 {
		t.Errorf("reduction wait distance = %d, want 1", sl.Pre[0][0].Distance)
	}
}

func TestInsertSharedSourceDedup(t *testing.T) {
	// One source statement feeding three sinks at different distances: one
	// send, three waits.
	src := `DO I = 1, N
S1: B[I] = A[I-1]
S2: C[I] = A[I-2]
S3: D[I] = A[I-3]
S4: A[I] = E[I]
ENDDO`
	a := dep.Analyze(lang.MustParse(src))
	sl := Insert(a, Options{})
	sends, waits := sl.NumOps()
	if sends != 1 {
		t.Errorf("sends = %d, want 1", sends)
	}
	if waits != 3 {
		t.Errorf("waits = %d, want 3", waits)
	}
}

func TestInsertWaitDedup(t *testing.T) {
	// Two reads of A[I-1] in the same statement: a single wait suffices.
	a := dep.Analyze(lang.MustParse("DO I = 1, N\nB[I] = A[I-1] + A[I-1]\nA[I] = E[I]\nENDDO"))
	sl := Insert(a, Options{})
	if len(sl.Pre[0]) != 1 {
		t.Errorf("Pre[S1] = %v, want exactly one wait", sl.Pre[0])
	}
}

func TestOpString(t *testing.T) {
	send := Op{Kind: Send, Src: "S3"}
	if send.String() != "Send_Signal(S3)" {
		t.Errorf("send = %q", send.String())
	}
	wait := Op{Kind: Wait, Src: "S3", Distance: 2}
	if wait.String() != "Wait_Signal(S3, I-2)" {
		t.Errorf("wait = %q", wait.String())
	}
	wait0 := Op{Kind: Wait, Src: "S1", Distance: 0}
	if wait0.String() != "Wait_Signal(S1, I)" {
		t.Errorf("wait0 = %q", wait0.String())
	}
}
