package loopgen

import (
	"testing"

	"doacross/internal/lang"
)

// TestGenerateParses: every shape parses at several seeds and sizes.
func TestGenerateParses(t *testing.T) {
	for _, shape := range Shapes() {
		for seed := uint64(1); seed <= 25; seed++ {
			for _, cb := range []bool{false, true} {
				src := Generate(seed, Options{Shape: shape, Stmts: 1 + int(seed)%4, ConstBounds: cb})
				if _, err := lang.Parse(src); err != nil {
					t.Fatalf("shape %s seed %d const=%v: %v\n%s", shape, seed, cb, err, src)
				}
			}
		}
	}
}

// TestGenerateDeterministic: the same seed and options give the same source.
func TestGenerateDeterministic(t *testing.T) {
	opt := Options{Shape: Mixed, Stmts: 4}
	a := Generate(42, opt)
	b := Generate(42, opt)
	if a != b {
		t.Fatalf("generation is not deterministic:\n%s\nvs\n%s", a, b)
	}
	if Generate(43, opt) == a {
		t.Fatal("different seeds produced identical sources")
	}
}

// TestSuite: a suite has the requested size, covers all shapes, and parses.
func TestSuite(t *testing.T) {
	loops := Suite(7, 30)
	if len(loops) != 30 {
		t.Fatalf("got %d loops, want 30", len(loops))
	}
	for i, src := range loops {
		if _, err := lang.Parse(src); err != nil {
			t.Fatalf("loop %d: %v\n%s", i, err, src)
		}
	}
}

// TestParseShape round-trips every shape name and rejects junk.
func TestParseShape(t *testing.T) {
	for _, s := range Shapes() {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseShape(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseShape("bogus"); err == nil {
		t.Fatal("ParseShape accepted junk")
	}
}
