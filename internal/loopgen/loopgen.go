// Package loopgen generates random DOACROSS loop sources with controlled
// dependence character, for fuzzing the dependence analyzer against its
// brute-force oracle and for differential scheduling audits. Unlike
// internal/perfect — which models the Perfect-benchmark loop mix of the
// paper's Table 1 — loopgen aims the generator at the dependence analyzer's
// decision procedure: coupled subscript coefficients, symbolic offsets,
// non-affine subscripts and guard-dependent statements, with optional
// compile-time-constant bounds so the Diophantine and bound-separation rules
// get exercised.
//
// Generation is deterministic: the same seed and options always produce the
// same source, so fuzz corpora and differential suites are reproducible.
package loopgen

import (
	"fmt"
	"strings"
)

// Shape selects the dependence character of a generated loop.
type Shape int

const (
	// Affine loops use unit-stride subscripts with constant offsets — the
	// analyzer should solve every pair exactly.
	Affine Shape = iota
	// Coupled loops mix subscript coefficients (2*I vs I+3, 3*I-1 vs 2*I…),
	// exercising the GCD test and the Diophantine enumeration.
	Coupled
	// Symbolic loops offset subscripts by loop-invariant scalars (A[I+K] vs
	// A[I+K-2]), exercising symbolic-difference cancellation.
	Symbolic
	// NonAffine loops subscript through index arrays or quadratic terms,
	// forcing the conservative residue.
	NonAffine
	// Guarded loops put carried dependences under IF guards, exercising the
	// if-converted (addresses-unconditional) oracle semantics.
	Guarded
	// Mixed draws each statement from a different shape above.
	Mixed
	numShapes
)

// String names the shape for flags and labels.
func (s Shape) String() string {
	switch s {
	case Affine:
		return "affine"
	case Coupled:
		return "coupled"
	case Symbolic:
		return "symbolic"
	case NonAffine:
		return "nonaffine"
	case Guarded:
		return "guarded"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ParseShape resolves a shape name from a flag.
func ParseShape(name string) (Shape, error) {
	for s := Affine; s < numShapes; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("loopgen: unknown shape %q (want affine, coupled, symbolic, nonaffine, guarded or mixed)", name)
}

// Shapes lists every concrete shape (including Mixed).
func Shapes() []Shape {
	out := make([]Shape, numShapes)
	for i := range out {
		out[i] = Shape(i)
	}
	return out
}

// Options configures one generated loop.
type Options struct {
	// Shape is the loop's dependence character (default Affine).
	Shape Shape
	// Stmts is the number of body statements (default 3, min 1).
	Stmts int
	// ConstBounds replaces DO I = 1, N with constant bounds DO I = 1, c
	// (c in [6, 16]), unlocking the analyzer's Diophantine enumeration and
	// bound-separation rules.
	ConstBounds bool
}

// rng is the generator's own xorshift64* state, so sources do not depend on
// math/rand's stream across Go releases.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pick returns one of the strings.
func (r *rng) pick(ss ...string) string { return ss[r.intn(len(ss))] }

// Arrays the generator draws from: written carriers, read-only inputs, and
// the index arrays non-affine subscripts go through.
var (
	carriers = []string{"A", "B", "C", "D"}
	inputs   = []string{"E", "F", "G", "H"}
	indexes  = []string{"X", "Y"}
)

// Generate builds one loop source from the seed and options. The result is
// guaranteed to parse; whether it is traceable by the oracle depends on the
// seeded store (non-affine subscripts may walk out of any fixed margin).
func Generate(seed uint64, opt Options) string {
	r := newRng(seed)
	n := opt.Stmts
	if n < 1 {
		n = 3
	}
	var body []string
	for i := 0; i < n; i++ {
		shape := opt.Shape
		if shape == Mixed {
			shape = Shape(r.intn(int(Mixed)))
		}
		body = append(body, genStmt(r, shape))
	}
	var sb strings.Builder
	if opt.ConstBounds {
		fmt.Fprintf(&sb, "DO I = 1, %d\n", 6+r.intn(11))
	} else {
		sb.WriteString("DO I = 1, N\n")
	}
	for i, st := range body {
		fmt.Fprintf(&sb, "  S%d: %s\n", i+1, st)
	}
	sb.WriteString("ENDDO\n")
	return sb.String()
}

// genStmt builds one assignment of the given shape.
func genStmt(r *rng, shape Shape) string {
	op := r.pick("+", "-", "*")
	input := func() string {
		return fmt.Sprintf("%s[I%s]", r.pick(inputs...), signedOff(r, 3))
	}
	switch shape {
	case Coupled:
		// Differing subscript coefficients on a shared carrier.
		c := r.pick(carriers...)
		cw, cr := 1+r.intn(3), 1+r.intn(3)
		return fmt.Sprintf("%s[%d*I%s] = %s[%d*I%s] %s %s",
			c, cw, signedOff(r, 4), c, cr, signedOff(r, 4), op, input())
	case Symbolic:
		// A loop-invariant scalar offset shared (or not) between the sides.
		c := r.pick(carriers...)
		sym := r.pick("K", "M")
		ro := sym
		if r.intn(3) == 0 {
			ro = r.pick("K", "M") // occasionally mismatched symbols
		}
		return fmt.Sprintf("%s[I+%s%s] = %s[I+%s%s] %s %s",
			c, sym, signedOff(r, 2), c, ro, signedOff(r, 2), op, input())
	case NonAffine:
		c := r.pick(carriers...)
		if r.intn(2) == 0 {
			return fmt.Sprintf("%s[%s[I]] = %s[%s[I]%s] %s %s",
				c, r.pick(indexes...), c, r.pick(indexes...), signedOff(r, 2), op, input())
		}
		return fmt.Sprintf("%s[I*I] = %s[I%s] %s %s", c, c, signedOff(r, 2), op, input())
	case Guarded:
		c := r.pick(carriers...)
		return fmt.Sprintf("IF (%s[I] > 0) %s[I] = %s[I-%d] %s %s",
			r.pick(inputs...), c, c, 1+r.intn(3), op, input())
	default: // Affine
		c := r.pick(carriers...)
		if r.intn(4) == 0 {
			// Occasionally a scalar reduction.
			return fmt.Sprintf("S = S %s %s", r.pick("+", "*"), input())
		}
		return fmt.Sprintf("%s[I%s] = %s[I%s] %s %s",
			c, signedOff(r, 2), c, signedOff(r, 4), op, input())
	}
}

// signedOff renders a subscript offset in [-max, max] ("" for 0).
func signedOff(r *rng, max int) string {
	off := r.intn(2*max+1) - max
	switch {
	case off > 0:
		return fmt.Sprintf("+%d", off)
	case off < 0:
		return fmt.Sprintf("%d", off)
	}
	return ""
}

// Suite generates count loops cycling through every shape, alternating
// symbolic and constant bounds. Seed variation is deterministic.
func Suite(seed uint64, count int) []string {
	out := make([]string, 0, count)
	shapes := Shapes()
	for i := 0; i < count; i++ {
		opt := Options{
			Shape:       shapes[i%len(shapes)],
			Stmts:       1 + i%4,
			ConstBounds: i%2 == 1,
		}
		out = append(out, Generate(seed+uint64(i)*0x9E3779B97F4A7C15, opt))
	}
	return out
}
