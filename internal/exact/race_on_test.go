//go:build race

package exact

// raceEnabled reports that the race detector (and its ~6x slowdown) is
// compiled in; the corpus proof budget shrinks to an anytime budget under it.
const raceEnabled = true
