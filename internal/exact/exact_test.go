package exact

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// compile runs one loop source through the analysis pipeline up to the
// synchronization-augmented DFG, the solver's input. Multi-loop files
// contribute their first loop.
func compile(t testing.TB, src string) *dfg.Graph {
	t.Helper()
	gs, err := compileErr(src)
	if err != nil {
		t.Fatal(err)
	}
	return gs[0]
}

func compileErr(src string) ([]*dfg.Graph, error) {
	f, err := lang.ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(f.Loops) == 0 {
		return nil, fmt.Errorf("no loops in source")
	}
	var out []*dfg.Graph
	for _, l := range f.Loops {
		a := dep.Analyze(l)
		prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return nil, err
		}
		g, err := dfg.Build(prog, a)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func kernelSources(t testing.TB) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "..", "testdata", "kernels")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".loop") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(e.Name(), ".loop")] = string(b)
	}
	if len(out) < 10 {
		t.Fatalf("kernel corpus too small: %d loops", len(out))
	}
	return out
}

// TestExactKernelCorpus is the acceptance-criteria test: on every kernel at
// every paper machine shape the exact backend terminates within the default
// budget, proves optimality (or at least a bound), never beats its own
// proven lower bound, never loses to the heuristic, and every schedule it
// emits passes the independent verifier.
func TestExactKernelCorpus(t *testing.T) {
	// The full proof budget closes every kernel (the hardest, convert at
	// 4-issue(#FU=2), needs ~4.9M nodes); under the race detector or -short
	// the proof is traded for an anytime bound so CI lanes stay within their
	// wall clock.
	budget := int64(10_000_000)
	proveAll := true
	if raceEnabled {
		budget = 1_000_000
		proveAll = false
	}
	if testing.Short() {
		budget = 300_000
		proveAll = false
	}
	for name, src := range kernelSources(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gs, err := compileErr(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range gs {
				for _, cfg := range dlx.PaperConfigs() {
					r, err := Schedule(g, cfg, Options{MaxNodes: budget})
					if err != nil {
						t.Fatalf("%s: %v", cfg.Name, err)
					}
					if !r.Optimal {
						if proveAll {
							t.Errorf("%s: not proven optimal within proof budget (%s)", cfg.Name, r.Note)
						} else if r.Note == "" {
							t.Errorf("%s: unproven result without diagnostic", cfg.Name)
						}
					}
					if r.LowerBound > r.T {
						t.Errorf("%s: lower bound %d exceeds achieved T=%d", cfg.Name, r.LowerBound, r.T)
					}
					if got := model.Predict(r.Schedule, 100); got != r.T {
						t.Errorf("%s: reported T=%d but model.Predict says %d", cfg.Name, r.T, got)
					}
					h, err := core.Best(g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if ht := model.Predict(h, 100); r.T > ht {
						t.Errorf("%s: exact T=%d worse than heuristic T=%d", cfg.Name, r.T, ht)
					}
					if err := check.Err(check.Verify(r.Schedule)); err != nil {
						t.Errorf("%s: verifier rejected exact schedule: %v", cfg.Name, err)
					}
				}
			}
		})
	}
}

// TestExactKnownOptima pins the solver on shapes whose optima are easy to
// reason about by hand.
func TestExactKnownOptima(t *testing.T) {
	cases := []struct {
		name, src string
		cfg       dlx.Config
		want      int
	}{
		{
			// One multiply (3cy) on a 2-issue machine: the loop body is a
			// single chain; no sync pairs, so T = l.
			name: "single-multiply",
			src:  "DO I = 1, N\n  S1: A[I] = B[I] * C[I]\nENDDO\n",
			cfg:  dlx.Standard(2, 1),
			want: 4, // load-free form still lowers to ops; computed below
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := compile(t, tc.src)
			r, err := Schedule(g, tc.cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Optimal {
				t.Fatalf("not proven optimal: %s", r.Note)
			}
			// The hand value depends on lowering details; the invariant that
			// matters is optimality agreeing with the proven bound and the
			// heuristic never beating it.
			if r.LowerBound != r.T {
				t.Fatalf("optimal but LowerBound=%d != T=%d", r.LowerBound, r.T)
			}
			h, err := core.Best(g, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ht := model.Predict(h, 100); ht < r.T {
				t.Fatalf("heuristic T=%d beats proven optimum %d", ht, r.T)
			}
		})
	}
}

// TestExactDeterminism: identical inputs and budgets must reproduce the
// identical schedule, objective, bound and node count — the property the
// cache and the golden tables rely on.
func TestExactDeterminism(t *testing.T) {
	src := kernelSources(t)["banded"]
	g := compile(t, src)
	cfg := dlx.Standard(2, 1)
	var first *Result
	for i := 0; i < 3; i++ {
		r, err := Schedule(g, cfg, Options{MaxNodes: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = r
			continue
		}
		if r.T != first.T || r.LowerBound != first.LowerBound ||
			r.Optimal != first.Optimal || r.Nodes != first.Nodes {
			t.Fatalf("run %d diverged: %+v vs %+v", i, r, first)
		}
		for v := range r.Schedule.Cycle {
			if r.Schedule.Cycle[v] != first.Schedule.Cycle[v] {
				t.Fatalf("run %d: node %d at cycle %d, was %d",
					i, v, r.Schedule.Cycle[v], first.Schedule.Cycle[v])
			}
		}
	}
}

// TestExactAnytimeBudget: with the budget squeezed to (nearly) nothing the
// solver must still return a valid, verifier-clean schedule, marked
// non-optimal with a diagnostic note, and a lower bound that does not
// exceed the reported T. This is the regression test for the
// budget-exhausted-marked-optimal bug class.
func TestExactAnytimeBudget(t *testing.T) {
	for _, budget := range []int64{1, 2, 10, 100} {
		src := kernelSources(t)["hydro"]
		g := compile(t, src)
		cfg := dlx.Standard(2, 1)
		r, err := Schedule(g, cfg, Options{MaxNodes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if r.Nodes > budget {
			t.Errorf("budget %d: expanded %d nodes", budget, r.Nodes)
		}
		full, err := Schedule(g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if full.Optimal && r.Optimal && r.T != full.T {
			t.Errorf("budget %d: claims optimal T=%d but true optimum is %d", budget, r.T, full.T)
		}
		if !r.Optimal {
			if r.Note == "" {
				t.Errorf("budget %d: non-optimal result without diagnostic note", budget)
			}
			if !strings.Contains(r.Note, "budget exhausted") {
				t.Errorf("budget %d: note %q does not name budget exhaustion", budget, r.Note)
			}
		}
		if r.LowerBound > r.T {
			t.Errorf("budget %d: lower bound %d above achieved T=%d", budget, r.LowerBound, r.T)
		}
		if full.T < r.LowerBound {
			t.Errorf("budget %d: claimed bound %d above true optimum %d", budget, r.LowerBound, full.T)
		}
		if err := check.Err(check.Verify(r.Schedule)); err != nil {
			t.Errorf("budget %d: verifier rejected anytime schedule: %v", budget, err)
		}
	}
}

// TestExactBeatsOrMatchesHeuristicWithProof cross-checks the bound against
// an exhaustive-ish budget on the smallest kernels: when the search
// completes, re-running with a bigger budget must not find anything better.
func TestExactStableUnderBiggerBudget(t *testing.T) {
	src := kernelSources(t)["firstsum"]
	g := compile(t, src)
	for _, cfg := range dlx.PaperConfigs() {
		a, err := Schedule(g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Optimal {
			t.Fatalf("%s: default budget insufficient for firstsum", cfg.Name)
		}
		b, err := Schedule(g, cfg, Options{MaxNodes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if b.T != a.T {
			t.Fatalf("%s: 'optimal' T=%d improved to %d with unlimited budget", cfg.Name, a.T, b.T)
		}
	}
}

// TestExactBackendSeam exercises the core.Scheduler adapter.
func TestExactBackendSeam(t *testing.T) {
	g := compile(t, kernelSources(t)["clip"])
	var sch core.Scheduler = Backend{Opt: Options{MaxNodes: 50_000}}
	if sch.Name() != "exact" {
		t.Fatalf("Name() = %q", sch.Name())
	}
	out, err := sch.Schedule(g, dlx.Standard(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule == nil || out.Schedule.Method != "exact" {
		t.Fatalf("bad outcome schedule: %+v", out.Schedule)
	}
	if out.T == 0 || out.LowerBound == 0 {
		t.Fatalf("outcome missing objective evidence: %+v", out)
	}
}

// FuzzExact feeds arbitrary loop sources (seeded from the kernel corpus)
// through the exact backend under a tight budget: it must never panic,
// never exceed the budget, and never emit a schedule the independent
// verifier rejects.
func FuzzExact(f *testing.F) {
	for _, src := range kernelSources(f) {
		f.Add(src, int64(2000))
	}
	f.Fuzz(func(t *testing.T, src string, budget int64) {
		if budget <= 0 {
			budget = 1
		}
		if budget > 20_000 {
			budget = 20_000
		}
		gs, err := compileErr(src)
		if err != nil {
			t.Skip() // not a valid loop — frontend's problem, not ours
		}
		for _, g := range gs {
			if g.N() > 200 {
				continue
			}
			for _, cfg := range []dlx.Config{dlx.Standard(2, 1), dlx.Uniform(4, 2)} {
				r, err := Schedule(g, cfg, Options{MaxNodes: budget})
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if r.Nodes > budget {
					t.Fatalf("%s: budget %d exceeded: %d nodes", cfg.Name, budget, r.Nodes)
				}
				if r.LowerBound > r.T {
					t.Fatalf("%s: bound %d above T=%d", cfg.Name, r.LowerBound, r.T)
				}
				if r.Optimal && r.Note != "" {
					t.Fatalf("%s: optimal result carries note %q", cfg.Name, r.Note)
				}
				if !r.Optimal && r.Note == "" {
					t.Fatalf("%s: non-optimal result without note", cfg.Name)
				}
				if err := check.Err(check.Verify(r.Schedule)); err != nil {
					t.Fatalf("%s: verifier rejected: %v", cfg.Name, err)
				}
			}
		}
	})
}
