//go:build !race

package exact

const raceEnabled = false
