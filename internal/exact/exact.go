// Package exact is the exact scheduling backend: a branch-and-bound /
// constraint-propagation search over the same synchronization-augmented
// data-flow graph, resource model (issue width, function-unit mix,
// latencies) and synchronization conditions 1–2 the heuristic scheduler
// (internal/core) uses, minimizing the paper's objective
//
//	T = (n/d)·(i−j) + l
//
// directly — in its dynamic form ⌊(n−1)/d⌋·(i−j+1) + l, maximized over the
// remaining lexically-backward synchronization pairs, exactly what
// internal/model.Predict evaluates — instead of greedily shrinking spans
// the way the Sig/Wat/Sigwat heuristic does.
//
// The search enumerates cycle-by-cycle issue decisions (canonicalized to
// ascending node order within a row, which every schedule can be rewritten
// to without changing any cycle) and prunes with
//
//   - an admissible lower bound combining the latency-weighted critical
//     path of the unscheduled nodes, an issue-bandwidth bound, per-class
//     function-unit occupancy bounds, and per-pair span bounds for
//     synchronization pairs whose wait is already placed;
//   - dominance pruning at cycle boundaries: two partial schedules with the
//     same scheduled set, the same pending-latency and unit-occupancy tails
//     and component-wise no-worse pair placements explore isomorphic
//     futures, so the dominated one is cut;
//   - an incumbent seeded from the heuristic backends (sync + both list
//     baselines), which both prunes from the first expansion and gives the
//     search its anytime behavior: on budget exhaustion the best-so-far
//     schedule is returned with Optimal=false, a diagnostic note and a
//     proven lower bound on the true optimum.
//
// The returned schedule always passes core.Schedule.Validate; callers are
// expected to additionally run it through the independent verifier
// (internal/check) before publication, like every other backend's output.
package exact

import (
	"fmt"
	"math"
	"sort"
	"time"

	"doacross/internal/core"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/model"
	"doacross/internal/tac"
)

// DefaultMaxNodes is the search-node budget used when Options.MaxNodes is
// zero. Loop bodies are small (tens of instructions), so most corpus loops
// prove optimality well below it.
const DefaultMaxNodes = 200_000

// Options configures one exact scheduling run. The zero value evaluates the
// objective at the paper's trip count (n=100) under DefaultMaxNodes.
type Options struct {
	// N is the trip count the objective T is evaluated at (0 = 100, the
	// paper's). It also sets the per-pair chain link count ⌊(N−1)/d⌋.
	N int
	// MaxNodes bounds the number of search nodes expanded (0 =
	// DefaultMaxNodes, negative = unlimited). The search is deterministic
	// for a fixed budget.
	MaxNodes int64
	// MaxDuration additionally bounds the search wall clock (0 = none).
	// A run cut off by wall clock is still correct and still reports a
	// proven lower bound, but is no longer deterministic across machines —
	// prefer MaxNodes wherever results are compared or cached.
	MaxDuration time.Duration
}

func (o Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes == 0 {
		return DefaultMaxNodes
	}
	if o.MaxNodes < 0 {
		return math.MaxInt64
	}
	return o.MaxNodes
}

// Result is the outcome of one exact scheduling run.
type Result struct {
	// Schedule is the best schedule found (Method "exact"). It is never
	// nil on a nil error and always passes core.Schedule.Validate.
	Schedule *core.Schedule
	// T is the objective value of Schedule at Options.N.
	T int
	// LowerBound is a proven lower bound on the optimal objective value:
	// every feasible schedule of this graph on this machine has T at least
	// LowerBound. When Optimal, LowerBound == T.
	LowerBound int
	// Optimal reports that the search space was exhausted within budget:
	// Schedule is proven optimal for the objective.
	Optimal bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
	// Note is empty on optimal results; otherwise it carries the
	// budget-exhaustion diagnostic ("budget exhausted after N nodes: ...").
	Note string
}

// Backend adapts the exact solver to the core.Scheduler seam.
type Backend struct {
	// Opt configures every run of this backend instance.
	Opt Options
}

// Name implements core.Scheduler.
func (Backend) Name() string { return "exact" }

// Schedule implements core.Scheduler.
func (b Backend) Schedule(g *dfg.Graph, cfg dlx.Config) (*core.Outcome, error) {
	r, err := Schedule(g, cfg, b.Opt)
	if err != nil {
		return nil, err
	}
	return &core.Outcome{
		Schedule:   r.Schedule,
		T:          r.T,
		Optimal:    r.Optimal,
		LowerBound: r.LowerBound,
		Nodes:      r.Nodes,
		Note:       r.Note,
	}, nil
}

// pair is one synchronization pair of the loop, with its precomputed chain
// link count ⌊(N−1)/d⌋ and minimum achievable span.
type pair struct {
	wait, send int
	dist       int
	links      int
	// minsep is the longest latency-weighted dependency path from the wait
	// to the send: no schedule can place them closer, so the pair's span is
	// at least minsep in every completion. −1 when the send is not reachable
	// from the wait — the pair is convertible and can be placed LFD, so no
	// penalty is forced.
	minsep int
}

// Schedule runs the branch-and-bound search. It never returns a nil
// schedule alongside a nil error: even a budget of one node yields the
// heuristic-seeded incumbent (Optimal=false).
func Schedule(g *dfg.Graph, cfg dlx.Config, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSearcher(g, cfg, opt)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// searcher holds the immutable problem description and the mutable
// depth-first search state. All mutations are undone on backtrack, so one
// searcher allocates its arrays once.
type searcher struct {
	g   *dfg.Graph
	cfg dlx.Config
	opt Options

	n       int
	nTrip   int
	lat     []int
	cls     []dlx.Class
	unit    []bool
	succ    [][]int
	pred    [][]int
	order   []int // topological order of the graph
	pathlat []int // latency-weighted longest path from v to any sink, incl. own latency
	prio    []int // nodes in static branch order (critical path first)
	pairs   []pair
	maxLat  int
	horizon int
	est     []int // scratch: per-bound-call earliest starts of unscheduled nodes

	// Mutable search state.
	cycle     int
	cycleOf   []int
	scheduled int
	remPreds  []int
	readyAt   []int
	occ       [][]int // per class, absolute cycle -> busy units
	maxFinish int
	mask      []uint64
	rowSlack  []int // issue slots left when row c was closed, valid for c < cycle
	isWait    []bool

	// Per-depth undo scratch (depth = number of scheduled nodes).
	undoReady  [][]int
	undoFinish []int

	// Incumbent.
	bestT      int
	bestCycles []int
	bestSeed   *core.Schedule // heuristic seed, returned if the search never improves on it

	// Budget and bound accounting.
	nodes    int64
	maxNodes int64
	deadline time.Time
	aborted  bool
	frontier int // min lower bound over subtrees abandoned for budget
	rootLB   int

	memo   map[string][]costVec
	keyBuf []byte
	vecBuf costVec
}

// costVec is the dominance cost vector of a cycle-boundary state: the
// current cycle, then one component per synchronization pair with at least
// one endpoint placed (fixed contribution, wait age, or send lead — see
// boundaryVec). Component-wise ≤ means the stored state dominates.
type costVec []int

func newSearcher(g *dfg.Graph, cfg dlx.Config, opt Options) (*searcher, error) {
	n := g.N()
	s := &searcher{
		g: g, cfg: cfg, opt: opt,
		n: n, nTrip: opt.n(),
		lat:      make([]int, n),
		cls:      make([]dlx.Class, n),
		unit:     make([]bool, n),
		succ:     g.Succ,
		pred:     g.Pred,
		est:      make([]int, n),
		cycleOf:  make([]int, n),
		remPreds: make([]int, n),
		readyAt:  make([]int, n),
		occ:      make([][]int, dlx.NumClasses),
		mask:     make([]uint64, (n+63)/64),
		bestT:    math.MaxInt,
		maxNodes: opt.maxNodes(),
		frontier: math.MaxInt,
		memo:     map[string][]costVec{},
		horizon:  n*64 + 1024,
	}
	if opt.MaxDuration > 0 {
		s.deadline = time.Now().Add(opt.MaxDuration)
	}
	s.isWait = make([]bool, n)
	for v := 0; v < n; v++ {
		in := g.Prog.Instrs[v]
		s.cls[v] = in.Class()
		s.lat[v] = cfg.Latency[s.cls[v]]
		s.unit[v] = dlx.NeedsUnit(s.cls[v])
		s.isWait[v] = in.Op == tac.Wait
		if s.lat[v] > s.maxLat {
			s.maxLat = s.lat[v]
		}
		s.cycleOf[v] = -1
		s.remPreds[v] = len(g.Pred[v])
	}
	// Latency-weighted longest path to a sink, over the base graph (the
	// exact constraints are the graph arcs themselves — the sync conditions
	// are already encoded as src→send and wait→snk arcs).
	order, err := g.Topological()
	if err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	s.order = order
	s.pathlat = make([]int, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0
		for _, w := range s.succ[v] {
			if s.pathlat[w] > best {
				best = s.pathlat[w]
			}
		}
		s.pathlat[v] = s.lat[v] + best
	}
	// Static branch order: non-waits critical-path-first, waits last, program
	// order on ties. Any fixed total order keeps the per-row subset
	// enumeration canonical (each row set is built exactly once, in order);
	// descending path length makes the depth-first descent behave like list
	// scheduling, so tight incumbents appear early and the bound starts
	// pruning immediately. Waits go last because the objective rewards
	// placing them late (smaller spans) — the first descent then leans the
	// right way.
	s.prio = make([]int, n)
	for v := range s.prio {
		s.prio[v] = v
	}
	sort.SliceStable(s.prio, func(a, b int) bool {
		va, vb := s.prio[a], s.prio[b]
		if s.isWait[va] != s.isWait[vb] {
			return !s.isWait[va]
		}
		return s.pathlat[va] > s.pathlat[vb]
	})
	dist := make([]int, n) // scratch for per-pair longest-path DP
	for v, in := range g.Prog.Instrs {
		if in.Op != tac.Wait || in.SigDist <= 0 {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		// Longest latency-weighted path wait → send: any dependency path
		// forces the send that many cycles after the wait, so the span of
		// this pair can never drop below it.
		const unreached = math.MinInt / 2
		for i := range dist {
			dist[i] = unreached
		}
		dist[v] = 0
		for _, u := range order {
			if dist[u] == unreached {
				continue
			}
			for _, w := range s.succ[u] {
				if d := dist[u] + s.lat[u]; d > dist[w] {
					dist[w] = d
				}
			}
		}
		minsep := dist[send.ID-1]
		if minsep == unreached {
			minsep = -1 // convertible: can go LFD, no forced penalty
		}
		s.pairs = append(s.pairs, pair{
			wait: v, send: send.ID - 1, dist: in.SigDist,
			links:  (s.nTrip - 1) / in.SigDist,
			minsep: minsep,
		})
	}
	s.undoReady = make([][]int, n+1)
	s.undoFinish = make([]int, n+1)
	for v := 0; v < n; v++ {
		s.undoReady[v] = make([]int, 0, 8)
	}
	return s, nil
}

// run seeds the incumbent from the heuristics, explores, and assembles the
// result.
func (s *searcher) run() (*Result, error) {
	if err := s.seed(); err != nil {
		return nil, err
	}
	s.rootLB = s.bound(s.cfg.Issue)
	if s.rootLB < s.bestT {
		s.nodes = 1
		s.expand(-1, s.cfg.Issue)
	}
	res := &Result{Nodes: s.nodes}
	if s.bestCycles != nil {
		res.Schedule = s.assemble(s.bestCycles)
	} else {
		// The heuristic seed was never beaten; relabel a copy as this
		// backend's output.
		res.Schedule = s.assemble(s.bestSeed.Cycle)
	}
	if err := res.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("exact: produced an invalid schedule: %w", err)
	}
	res.T = s.bestT
	if s.aborted {
		res.Optimal = false
		res.LowerBound = min(s.bestT, s.frontier)
		if s.rootLB > res.LowerBound {
			res.LowerBound = s.rootLB
		}
		res.Note = fmt.Sprintf("budget exhausted after %d nodes: best T=%d, proven lower bound %d",
			s.nodes, res.T, res.LowerBound)
	} else {
		res.Optimal = true
		res.LowerBound = res.T
	}
	return res, nil
}

// seed builds the heuristic schedules and installs the best of them (under
// the exact objective) as the incumbent. The search then only has to find
// strictly better schedules, and an exhausted budget still returns a
// verified, never-worse-than-heuristic answer.
func (s *searcher) seed() error {
	var best *core.Schedule
	for _, mk := range []func() (*core.Schedule, error){
		func() (*core.Schedule, error) { return core.Sync(s.g, s.cfg) },
		func() (*core.Schedule, error) { return core.List(s.g, s.cfg, core.CriticalPath) },
		func() (*core.Schedule, error) { return core.List(s.g, s.cfg, core.ProgramOrder) },
	} {
		sched, err := mk()
		if err != nil {
			return fmt.Errorf("exact: seeding incumbent: %w", err)
		}
		if t := model.Predict(sched, s.nTrip); t < s.bestT {
			s.bestT = t
			best = sched
		}
	}
	s.bestSeed = best
	return nil
}

// assemble builds a core.Schedule from a per-node cycle assignment, rows in
// ascending node order (the search's canonical order).
func (s *searcher) assemble(cycles []int) *core.Schedule {
	sched := &core.Schedule{
		Prog: s.g.Prog, Graph: s.g, Cfg: s.cfg,
		Cycle:  append([]int(nil), cycles...),
		Method: "exact",
	}
	length := 0
	for _, c := range cycles {
		if c+1 > length {
			length = c + 1
		}
	}
	sched.Rows = make([][]int, length)
	for v, c := range cycles {
		sched.Rows[c] = append(sched.Rows[c], v)
	}
	return sched
}

// exhausted reports whether the node or wall-clock budget is spent. The
// deadline is polled sparsely so the hot path stays syscall-free.
func (s *searcher) exhausted() bool {
	if s.nodes >= s.maxNodes {
		return true
	}
	if !s.deadline.IsZero() && s.nodes&1023 == 0 && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// expand enumerates the children of the current state: issue one more node
// into the current row (ascending branch order, so each row set is built
// exactly once), or close the row and advance one cycle. The caller has
// already bounded and counted this state. lastPos is the branch-order
// position of the last node issued into the current row (−1 for none).
func (s *searcher) expand(lastPos, slotsLeft int) {
	if s.scheduled == s.n {
		s.complete()
		return
	}
	if slotsLeft > 0 {
		for k := lastPos + 1; k < s.n; k++ {
			v := s.prio[k]
			if s.cycleOf[v] >= 0 || s.remPreds[v] > 0 || s.readyAt[v] > s.cycle {
				continue
			}
			if s.unit[v] && !s.unitFree(s.cls[v], s.cycle, s.cycle+s.lat[v]) {
				continue
			}
			if s.leftShiftable(v) {
				continue
			}
			s.place(v)
			s.child(slotsLeft-1, func() { s.expand(k, slotsLeft-1) })
			s.unplace(v)
		}
	}
	if s.cycle < s.horizon {
		for len(s.rowSlack) <= s.cycle {
			s.rowSlack = append(s.rowSlack, 0)
		}
		s.rowSlack[s.cycle] = slotsLeft
		s.cycle++
		s.child(s.cfg.Issue, func() {
			if !s.dominated() {
				s.expand(-1, s.cfg.Issue)
			}
		})
		s.cycle--
	}
}

// leftShiftable reports that placing non-wait node v at the current cycle
// cc is dominated: some already-closed row c had a free issue slot and v
// was ready at c, so left-shifting v from cc to c turns any completion of
// this branch into a feasible schedule that is nowhere worse (earlier
// finishes can only shrink l and send spans; wait cycles are untouched).
// The shift only increases unit occupancy on [c, min(c+lat, cc)) — cycles
// strictly before cc, whose occupancy is final because every future
// placement occupies cycles ≥ cc — so checking the current occupancy there
// is conclusive regardless of how the branch would have continued. Waits
// are exempt: delaying a wait is exactly how spans shrink. Iterating the
// left-shift terminates (the total of all cycle numbers strictly
// decreases), so an undominated optimum always survives the prune.
func (s *searcher) leftShiftable(v int) bool {
	if s.isWait[v] {
		return false
	}
	for c := s.readyAt[v]; c < s.cycle; c++ {
		if s.rowSlack[c] <= 0 {
			continue
		}
		end := c + s.lat[v]
		if end > s.cycle {
			end = s.cycle
		}
		if !s.unit[v] || s.unitFree(s.cls[v], c, end) {
			return true
		}
	}
	return false
}

// child applies the bound / budget gate to one candidate child state and
// expands it. Pruning against the current incumbent is sound for final
// optimality because incumbents only improve: everything cut had no
// completion better than the final answer.
func (s *searcher) child(slotsLeft int, f func()) {
	lb := s.bound(slotsLeft)
	if lb >= s.bestT {
		return
	}
	if s.exhausted() {
		s.aborted = true
		if lb < s.frontier {
			s.frontier = lb
		}
		return
	}
	s.nodes++
	f()
}

// complete records a finished schedule, keeping it when strictly better.
func (s *searcher) complete() {
	t := s.objective()
	if t < s.bestT {
		s.bestT = t
		if s.bestCycles == nil {
			s.bestCycles = make([]int, s.n)
		}
		copy(s.bestCycles, s.cycleOf)
	}
}

// objective evaluates T on the complete current assignment: completion
// length plus the worst LBD chain penalty — the same number
// model.Predict reports for the assembled schedule.
func (s *searcher) objective() int {
	t := s.maxFinish
	for i := range s.pairs {
		p := &s.pairs[i]
		span := s.cycleOf[p.send] - s.cycleOf[p.wait]
		if span < 0 {
			continue // LFD
		}
		if v := p.links*(span+1) + s.maxFinish; v > t {
			t = v
		}
	}
	return t
}

// place issues node v at the current cycle.
func (s *searcher) place(v int) {
	s.cycleOf[v] = s.cycle
	s.mask[v>>6] |= 1 << (uint(v) & 63)
	s.undoFinish[s.scheduled] = s.maxFinish
	undo := s.undoReady[s.scheduled][:0]
	fin := s.cycle + s.lat[v]
	if fin > s.maxFinish {
		s.maxFinish = fin
	}
	if s.unit[v] {
		occ := s.occ[s.cls[v]]
		for len(occ) < fin {
			occ = append(occ, 0)
		}
		for c := s.cycle; c < fin; c++ {
			occ[c]++
		}
		s.occ[s.cls[v]] = occ
	}
	for _, w := range s.succ[v] {
		s.remPreds[w]--
		undo = append(undo, s.readyAt[w])
		if fin > s.readyAt[w] {
			s.readyAt[w] = fin
		}
	}
	s.undoReady[s.scheduled] = undo
	s.scheduled++
}

// unplace undoes the matching place.
func (s *searcher) unplace(v int) {
	s.scheduled--
	s.maxFinish = s.undoFinish[s.scheduled]
	undo := s.undoReady[s.scheduled]
	for i, w := range s.succ[v] {
		s.remPreds[w]++
		s.readyAt[w] = undo[i]
	}
	if s.unit[v] {
		occ := s.occ[s.cls[v]]
		for c := s.cycle; c < s.cycle+s.lat[v]; c++ {
			occ[c]--
		}
	}
	s.mask[v>>6] &^= 1 << (uint(v) & 63)
	s.cycleOf[v] = -1
}

// unitFree reports whether a unit of class cls is available over [from, to).
func (s *searcher) unitFree(cls dlx.Class, from, to int) bool {
	occ := s.occ[cls]
	limit := s.cfg.Units[cls]
	for c := from; c < to && c < len(occ); c++ {
		if occ[c] >= limit {
			return false
		}
	}
	return true
}

// bound computes an admissible lower bound on the objective of every
// completion of the current state: a lower bound on the final schedule
// length l (critical path, issue bandwidth, unit occupancy) plus a lower
// bound on the worst LBD chain penalty (pairs whose wait is placed cannot
// shrink their span below the send's earliest start).
func (s *searcher) bound(slotsLeft int) int {
	l := s.maxFinish
	remaining := s.n - s.scheduled
	if remaining > 0 {
		if s.cycle+1 > l {
			l = s.cycle + 1 // something still has to issue at >= cycle
		}
		// Critical path over unscheduled nodes, with earliest starts
		// propagated forward through the unscheduled subgraph (constraint
		// propagation: a node cannot start before any chain of unscheduled
		// ancestors completes, all of which start at >= cycle).
		for _, v := range s.order {
			if s.cycleOf[v] >= 0 {
				continue
			}
			est := s.cycle
			if s.readyAt[v] > est {
				est = s.readyAt[v]
			}
			for _, u := range s.pred[v] {
				if s.cycleOf[u] < 0 && s.est[u]+s.lat[u] > est {
					est = s.est[u] + s.lat[u]
				}
			}
			s.est[v] = est
			if est+s.pathlat[v] > l {
				l = est + s.pathlat[v]
			}
		}
		// Issue bandwidth: slotsLeft issues fit this cycle, Issue per cycle
		// after; the final issue still needs >= 1 cycle of latency.
		over := remaining - slotsLeft
		if over > 0 {
			lastIssue := s.cycle + (over+s.cfg.Issue-1)/s.cfg.Issue
			if lastIssue+1 > l {
				l = lastIssue + 1
			}
		}
		// Unit occupancy: pending tail busy-cycles plus the unscheduled
		// work of each class, spread over its units, all at >= cycle.
		for cls := dlx.Class(0); cls < dlx.NumClasses; cls++ {
			units := s.cfg.Units[cls]
			if units <= 0 || cls == dlx.Sync {
				continue
			}
			work := 0
			for v := 0; v < s.n; v++ {
				if s.cycleOf[v] < 0 && s.cls[v] == cls && s.unit[v] {
					work += s.lat[v]
				}
			}
			if work == 0 {
				continue
			}
			occ := s.occ[cls]
			for c := s.cycle; c < len(occ); c++ {
				work += occ[c]
			}
			if fin := s.cycle + (work+units-1)/units; fin > l {
				l = fin
			}
		}
	}
	pen := 0
	for i := range s.pairs {
		p := &s.pairs[i]
		wc, sc := s.cycleOf[p.wait], s.cycleOf[p.send]
		var span int
		switch {
		case wc >= 0 && sc >= 0:
			span = sc - wc
		case wc >= 0:
			// Send still unscheduled: it lands no earlier than its
			// propagated earliest start (valid whenever any node remains —
			// s.est was just refreshed above), and never closer than minsep.
			span = s.est[p.send] - wc
			if p.minsep > span {
				span = p.minsep
			}
		default:
			// Wait unscheduled: only the structural minimum separation is
			// forced (−1 for convertible pairs — they can finish LFD).
			span = p.minsep
		}
		if span < 0 {
			continue // LFD placement, no chain penalty
		}
		if v := p.links * (span + 1); v > pen {
			pen = v
		}
	}
	return l + pen
}

// dominated checks and updates the cycle-boundary dominance memo. Two
// boundary states with identical signatures (scheduled set, pending-latency
// deltas, unit-occupancy tails, pending-finish tail) reach isomorphic
// futures up to a uniform time shift; the one with component-wise >= cost
// vector (cycle, fixed pair contributions, wait ages, send leads) cannot
// beat the other and is cut.
func (s *searcher) dominated() bool {
	key := s.boundaryKey()
	vec := s.boundaryVec()
	stored, ok := s.memo[key]
	if ok {
		for _, sv := range stored {
			if dominates(sv, vec) {
				return true
			}
		}
	}
	if len(stored) < 16 {
		s.memo[string(key)] = append(stored, append(costVec(nil), vec...))
	}
	return false
}

func dominates(a, b costVec) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// boundaryKey renders the shift-invariant signature of the current
// cycle-boundary state.
func (s *searcher) boundaryKey() string {
	b := s.keyBuf[:0]
	for _, w := range s.mask {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	for v := 0; v < s.n; v++ {
		if s.cycleOf[v] >= 0 {
			continue
		}
		d := s.readyAt[v] - s.cycle
		if d < 0 {
			d = 0
		}
		b = append(b, byte(d)) // bounded by maxLat (<= 6)
	}
	for cls := dlx.Class(0); cls < dlx.NumClasses; cls++ {
		occ := s.occ[cls]
		for k := 0; k < s.maxLat; k++ {
			c := s.cycle + k
			if c < len(occ) {
				b = append(b, byte(occ[c]))
			} else {
				b = append(b, 0)
			}
		}
	}
	tail := s.maxFinish - s.cycle
	if tail < 0 {
		tail = 0
	}
	b = append(b, byte(tail)) // bounded by maxLat
	s.keyBuf = b
	return string(b)
}

// boundaryVec renders the cost vector compared under a fixed signature:
// the current cycle (a later boundary of the same signature only shifts
// the future later), then per pair either its fixed contribution (both
// endpoints placed), the wait's age cycle−j (wait placed: older waits can
// only stretch the span), or the send's lead i−cycle clamped at −1 (send
// placed: a smaller lead can only shrink the span).
func (s *searcher) boundaryVec() costVec {
	vec := s.vecBuf[:0]
	vec = append(vec, s.cycle)
	for i := range s.pairs {
		p := &s.pairs[i]
		wc, sc := s.cycleOf[p.wait], s.cycleOf[p.send]
		switch {
		case wc >= 0 && sc >= 0:
			contrib := 0
			if span := sc - wc; span >= 0 {
				contrib = p.links * (span + 1)
			}
			vec = append(vec, contrib)
		case wc >= 0:
			vec = append(vec, s.cycle-wc)
		case sc >= 0:
			lead := sc - s.cycle
			if lead < -1 {
				lead = -1
			}
			vec = append(vec, lead)
		}
	}
	s.vecBuf = vec
	return vec
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
