package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestDiskKindGating: the disk-io kinds only fire at the disk tier's probe
// points — a short write has no meaning on a read and vice versa — and
// NetDelay only at the daemon's network probe.
func TestDiskKindGating(t *testing.T) {
	stages := []string{StageCompile, StageSchedule, StageDiskWrite, StageDiskRead, StageNet}
	allowed := map[Kind]map[string]bool{
		DiskFail:       {StageDiskWrite: true, StageDiskRead: true},
		DiskShortWrite: {StageDiskWrite: true},
		DiskCorrupt:    {StageDiskRead: true},
		NetDelay:       {StageNet: true},
	}
	in := MustNew(Plan{DiskFail: 0.2, DiskShortWrite: 0.2, DiskCorrupt: 0.2, NetDelay: 0.2})
	fired := map[Kind]int{}
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("loop%d", i)
		for _, stage := range stages {
			k, ok := in.Decide(stage, name)
			if !ok {
				continue
			}
			if !allowed[k][stage] {
				t.Fatalf("%v fired at %s", k, stage)
			}
			fired[k]++
		}
	}
	for k := range allowed {
		if fired[k] == 0 {
			t.Errorf("%v never fired where it is allowed", k)
		}
	}
}

// TestDiskFaultKind pins the behavioral contract the disk store asserts
// structurally (it matches on the returned strings without importing this
// package).
func TestDiskFaultKind(t *testing.T) {
	want := map[Kind]string{
		DiskFail:       "fail",
		DiskShortWrite: "short-write",
		DiskCorrupt:    "corrupt-read",
		Error:          "",
		NetDelay:       "",
	}
	for k, s := range want {
		if got := (&Injected{Kind: k}).DiskFaultKind(); got != s {
			t.Errorf("Injected{%v}.DiskFaultKind() = %q, want %q", k, got, s)
		}
	}
}

// TestDiskProbes: DiskFail probes return an *Injected carrying the kind
// (the store turns it into a failed operation); short-write and corrupt
// probes return one too, which the store interprets as behavior rather
// than failure. Every firing is counted.
func TestDiskProbes(t *testing.T) {
	in := MustNew(Plan{DiskFail: 1})
	err := in.Probe(StageDiskWrite, "aabbccdd")
	inj, ok := IsInjected(err)
	if !ok {
		t.Fatalf("Probe returned %v, want *Injected", err)
	}
	if inj.Kind != DiskFail || inj.DiskFaultKind() != "fail" {
		t.Errorf("injected = %+v", inj)
	}
	if !strings.Contains(err.Error(), "disk") {
		t.Errorf("error text = %q", err)
	}
	if c := in.Counts(); c.DiskFails != 1 || c.Total() != 1 {
		t.Errorf("counts = %s", c)
	}

	sw := MustNew(Plan{DiskShortWrite: 1})
	if inj, ok := IsInjected(sw.Probe(StageDiskWrite, "x")); !ok || inj.DiskFaultKind() != "short-write" {
		t.Errorf("short-write probe = %v", inj)
	}
	if sw.Probe(StageDiskRead, "x") != nil {
		t.Error("short-write fired at disk-read")
	}
	if c := sw.Counts(); c.DiskShortWrites != 1 {
		t.Errorf("counts = %s", c)
	}

	cr := MustNew(Plan{DiskCorrupt: 1})
	if inj, ok := IsInjected(cr.Probe(StageDiskRead, "x")); !ok || inj.DiskFaultKind() != "corrupt-read" {
		t.Errorf("corrupt-read probe = %v", inj)
	}
	if c := cr.Counts(); c.DiskCorrupts != 1 {
		t.Errorf("counts = %s", c)
	}
}

// TestNetDelayProbe: NetDelay behaves like Delay — the probe sleeps and
// returns nil (the request is served slow, not failed).
func TestNetDelayProbe(t *testing.T) {
	in := MustNew(Plan{NetDelay: 1, DelayFor: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Probe(StageNet, "loop0"); err != nil {
		t.Errorf("NetDelay probe returned %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("NetDelay probe slept %v, want >= 5ms", d)
	}
	if c := in.Counts(); c.NetDelays != 1 {
		t.Errorf("counts = %s", c)
	}
}

// TestDiskKindsWrapped: wrapped disk faults keep their behavioral kind
// through errors.As, which is how the store sees them.
func TestDiskKindsWrapped(t *testing.T) {
	in := MustNew(Plan{DiskCorrupt: 1})
	wrapped := fmt.Errorf("store: %w", in.Probe(StageDiskRead, "k"))
	var df interface{ DiskFaultKind() string }
	if !errors.As(wrapped, &df) || df.DiskFaultKind() != "corrupt-read" {
		t.Errorf("wrapped disk fault lost its kind: %v", wrapped)
	}
}
