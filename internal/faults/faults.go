// Package faults is a seeded, deterministic fault injector for the batch
// scheduling service. It exists so the hardened execution layer —
// cancellation, panic isolation, verified-schedule fallback — can be driven
// through every failure path on demand, under the race detector, with
// reproducible results.
//
// The injector decides whether to fire a fault for a probe site purely from
// (seed, stage, name): the decision is a hash, not a random stream, so it is
// independent of goroutine interleaving and call order. Two runs of the same
// batch with the same seed inject exactly the same faults at exactly the
// same requests, which is what lets the chaos tests assert metrics counters
// (panics, fallbacks, timeouts) against the injection plan *exactly*.
//
// A probe site is a (stage, name) pair: the stage is one of the pipeline's
// probe points ("compile", "schedule", "simulate", "cache", or a pass name),
// the name identifies the request. Wire the injector through
// pipeline.Options.FaultHook / passes.Options.FaultHook via Hook:
//
//	in := faults.New(faults.Plan{Seed: 7, Error: 0.05, Panic: 0.02})
//	batch, _ := pipeline.Run(reqs, pipeline.Options{FaultHook: in.Hook()})
//	fmt.Println(in.Counts())
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

// The fault kinds. Error, Panic and Delay can fire at any stage; Corrupt
// fires only at the "cache" stage (the consumer drops the cached entry and
// recomputes); Budget fires only at the "simulate" stage (the consumer
// reports simulator cycle-budget exhaustion). The disk-io kinds fire at the
// disk tier's probe points: DiskFail fails the operation outright (both
// stages), DiskShortWrite truncates a write ("disk-write" only), and
// DiskCorrupt flips bytes in the returned data ("disk-read" only) — the
// store's checksums must catch the latter two. NetDelay stalls a network
// handler ("net" only), modelling a slow client or congested accept path.
const (
	Error Kind = iota
	Panic
	Delay
	Corrupt
	Budget
	DiskFail
	DiskShortWrite
	DiskCorrupt
	NetDelay
	numKinds
)

// Stage names the pipeline probes with; collected here so plans and tests
// spell them consistently.
const (
	StageCompile  = "compile"
	StageSchedule = "schedule"
	StageSimulate = "simulate"
	StageCache    = "cache"
	// StageDiskWrite and StageDiskRead are the disk tier's probe points,
	// fired once per entry written respectively read back.
	StageDiskWrite = "disk-write"
	StageDiskRead  = "disk-read"
	// StageNet is the scheduling daemon's per-request network probe.
	StageNet = "net"
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Budget:
		return "budget"
	case DiskFail:
		return "disk-fail"
	case DiskShortWrite:
		return "disk-short-write"
	case DiskCorrupt:
		return "disk-corrupt"
	case NetDelay:
		return "net-delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injected is the error returned (or panicked) by a fired fault.
type Injected struct {
	Stage string
	Name  string
	Kind  Kind
}

// Error renders the injected fault.
func (e *Injected) Error() string {
	switch e.Kind {
	case Corrupt:
		return fmt.Sprintf("faults: corrupted cache entry for %s", e.Name)
	case Budget:
		return fmt.Sprintf("faults: simulator cycle budget exhausted for %s (injected)", e.Name)
	case DiskFail, DiskShortWrite, DiskCorrupt:
		return fmt.Sprintf("faults: injected %s at %s of %s", e.Kind, e.Stage, e.Name)
	}
	return fmt.Sprintf("faults: injected %s at %s stage of %s", e.Kind, e.Stage, e.Name)
}

// DiskFaultKind reports the disk-behavior this fault requests from a disk
// tier probe: "fail" (the operation errors outright), "short-write" (the
// write is truncated mid-payload) or "corrupt-read" (bytes read back are
// flipped). It returns "" for every non-disk kind. The disk store asserts
// for this method with a locally declared interface, so the two packages
// stay import-decoupled just like the stage-name constants.
func (e *Injected) DiskFaultKind() string {
	switch e.Kind {
	case DiskFail:
		return "fail"
	case DiskShortWrite:
		return "short-write"
	case DiskCorrupt:
		return "corrupt-read"
	}
	return ""
}

// IsInjected reports whether err originates from an injector, returning the
// fault when it does.
func IsInjected(err error) (*Injected, bool) {
	var inj *Injected
	if errors.As(err, &inj) {
		return inj, true
	}
	return nil, false
}

// Plan configures an injector: a seed and one firing probability per kind.
// Probabilities are clamped to [0, 1] and partition the hash space, so the
// kinds are mutually exclusive at one probe site and their rates must sum to
// at most 1 (New rejects plans that oversubscribe).
type Plan struct {
	// Seed selects the deterministic fault pattern.
	Seed uint64
	// Error, Panic, Delay, Corrupt and Budget are per-probe firing
	// probabilities of each kind.
	Error, Panic, Delay, Corrupt, Budget float64
	// DiskFail, DiskShortWrite and DiskCorrupt are the disk tier's
	// per-probe firing probabilities; NetDelay the daemon's network-stall
	// probability.
	DiskFail, DiskShortWrite, DiskCorrupt, NetDelay float64
	// DelayFor is how long a Delay fault sleeps (default 25ms).
	DelayFor time.Duration
	// Stages, when non-empty, restricts injection to the named stages.
	Stages []string
}

func (p Plan) rates() [numKinds]float64 {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return [numKinds]float64{
		Error:          clamp(p.Error),
		Panic:          clamp(p.Panic),
		Delay:          clamp(p.Delay),
		Corrupt:        clamp(p.Corrupt),
		Budget:         clamp(p.Budget),
		DiskFail:       clamp(p.DiskFail),
		DiskShortWrite: clamp(p.DiskShortWrite),
		DiskCorrupt:    clamp(p.DiskCorrupt),
		NetDelay:       clamp(p.NetDelay),
	}
}

// Counts is a snapshot of fired faults per kind.
type Counts struct {
	Errors, Panics, Delays, Corrupts, Budgets int64
	DiskFails, DiskShortWrites, DiskCorrupts  int64
	NetDelays                                 int64
}

// Total sums the fired faults.
func (c Counts) Total() int64 {
	return c.Errors + c.Panics + c.Delays + c.Corrupts + c.Budgets +
		c.DiskFails + c.DiskShortWrites + c.DiskCorrupts + c.NetDelays
}

// String renders the counts.
func (c Counts) String() string {
	return fmt.Sprintf("errors=%d panics=%d delays=%d corrupts=%d budgets=%d disk-fails=%d disk-short-writes=%d disk-corrupts=%d net-delays=%d",
		c.Errors, c.Panics, c.Delays, c.Corrupts, c.Budgets,
		c.DiskFails, c.DiskShortWrites, c.DiskCorrupts, c.NetDelays)
}

// Injector injects faults per its Plan. Safe for concurrent use; decisions
// are pure functions of (seed, stage, name) while the fired-fault counters
// are atomics.
type Injector struct {
	plan   Plan
	rates  [numKinds]float64
	stages map[string]bool
	fired  [numKinds]atomic.Int64
}

// New builds an injector for the plan.
func New(plan Plan) (*Injector, error) {
	rates := plan.rates()
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	if sum > 1 {
		return nil, fmt.Errorf("faults: kind probabilities sum to %.3f > 1", sum)
	}
	if plan.DelayFor <= 0 {
		plan.DelayFor = 25 * time.Millisecond
	}
	in := &Injector{plan: plan, rates: rates}
	if len(plan.Stages) > 0 {
		in.stages = make(map[string]bool, len(plan.Stages))
		for _, s := range plan.Stages {
			in.stages[s] = true
		}
	}
	return in, nil
}

// MustNew is New panicking on a bad plan, for tests.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// kindAllowed gates stage-specific kinds: cache corruption only makes sense
// at a cache probe, budget exhaustion only at a simulate probe, the disk-io
// kinds only at the disk tier's probes (a short write has no meaning on a
// read and vice versa), and network delays only at the daemon's net probe.
func kindAllowed(k Kind, stage string) bool {
	switch k {
	case Corrupt:
		return stage == StageCache
	case Budget:
		return stage == StageSimulate
	case DiskFail:
		return stage == StageDiskWrite || stage == StageDiskRead
	case DiskShortWrite:
		return stage == StageDiskWrite
	case DiskCorrupt:
		return stage == StageDiskRead
	case NetDelay:
		return stage == StageNet
	}
	return true
}

// mix64 is the standard 64-bit finalizer (xor-shift / multiply rounds):
// every input bit avalanches into every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Decide returns the fault the plan fires at (stage, name), if any. It is a
// pure function of the seed and the arguments — chaos tests call it to
// precompute the expected outcome of every request before running the batch.
func (in *Injector) Decide(stage, name string) (Kind, bool) {
	if in.stages != nil && !in.stages[stage] {
		return 0, false
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(in.plan.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(name))
	// FNV's high bits avalanche poorly over short, near-identical keys
	// ("loop0".."loop199"), so finish with a 64-bit mixer before taking the
	// top 53 bits as a uniform [0, 1) draw.
	u := float64(mix64(h.Sum64())>>11) / (1 << 53)
	acc := 0.0
	for k := Kind(0); k < numKinds; k++ {
		acc += in.rates[k]
		if u < acc {
			if !kindAllowed(k, stage) {
				return 0, false
			}
			return k, true
		}
	}
	return 0, false
}

// Probe fires the planned fault for (stage, name): Panic faults panic with
// an *Injected value, Delay and NetDelay faults sleep for Plan.DelayFor and
// return nil, and the remaining kinds return an *Injected error (the
// disk-io behavioral kinds are interpreted by the disk store through
// Injected.DiskFaultKind). Probes with no planned fault return nil. Every
// fired fault is counted.
func (in *Injector) Probe(stage, name string) error {
	k, ok := in.Decide(stage, name)
	if !ok {
		return nil
	}
	in.fired[k].Add(1)
	inj := &Injected{Stage: stage, Name: name, Kind: k}
	switch k {
	case Panic:
		panic(inj)
	case Delay, NetDelay:
		time.Sleep(in.plan.DelayFor)
		return nil
	}
	return inj
}

// Hook adapts the injector to the pipeline/pass-manager fault-hook
// signature.
func (in *Injector) Hook() func(stage, name string) error { return in.Probe }

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Errors:          in.fired[Error].Load(),
		Panics:          in.fired[Panic].Load(),
		Delays:          in.fired[Delay].Load(),
		Corrupts:        in.fired[Corrupt].Load(),
		Budgets:         in.fired[Budget].Load(),
		DiskFails:       in.fired[DiskFail].Load(),
		DiskShortWrites: in.fired[DiskShortWrite].Load(),
		DiskCorrupts:    in.fired[DiskCorrupt].Load(),
		NetDelays:       in.fired[NetDelay].Load(),
	}
}
