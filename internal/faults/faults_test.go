package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// names returns n distinct probe names.
func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("loop%d", i)
	}
	return out
}

// TestDecideDeterministic is the injector's core contract: decisions are a
// pure function of (seed, stage, name), so two injectors built from the same
// plan agree on every probe site, in any order.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 1997, Error: 0.2, Panic: 0.1, Delay: 0.1, Corrupt: 0.1, Budget: 0.1}
	a := MustNew(plan)
	b := MustNew(plan)
	stages := []string{StageCompile, StageSchedule, StageSimulate, StageCache, "parse", "codegen"}
	fired := 0
	for _, stage := range stages {
		for _, name := range names(200) {
			ka, oka := a.Decide(stage, name)
			kb, okb := b.Decide(stage, name)
			if ka != kb || oka != okb {
				t.Fatalf("Decide(%s, %s) diverges: (%v,%v) vs (%v,%v)", stage, name, ka, oka, kb, okb)
			}
			if oka {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("plan with 60% total rate fired nothing over 1200 sites")
	}
}

// TestSeedChangesPattern: different seeds select different fault patterns.
func TestSeedChangesPattern(t *testing.T) {
	a := MustNew(Plan{Seed: 1, Error: 0.5})
	b := MustNew(Plan{Seed: 2, Error: 0.5})
	same := 0
	for _, name := range names(400) {
		_, oka := a.Decide(StageSchedule, name)
		_, okb := b.Decide(StageSchedule, name)
		if oka == okb {
			same++
		}
	}
	if same == 400 {
		t.Error("seeds 1 and 2 produced identical fault patterns over 400 sites")
	}
}

// TestRateOversubscriptionRejected: kind probabilities partition one hash
// space, so their sum must not exceed 1.
func TestRateOversubscriptionRejected(t *testing.T) {
	if _, err := New(Plan{Error: 0.7, Panic: 0.7}); err == nil {
		t.Error("oversubscribed plan accepted")
	}
	if _, err := New(Plan{Error: 1.0}); err != nil {
		t.Errorf("fully subscribed plan rejected: %v", err)
	}
	// Negative rates clamp to zero instead of poisoning the partition.
	in := MustNew(Plan{Error: -5})
	for _, name := range names(100) {
		if _, ok := in.Decide(StageCompile, name); ok {
			t.Fatal("negative rate fired")
		}
	}
}

// TestStageGating: Corrupt only makes sense at a cache probe and Budget only
// at a simulate probe; everywhere else those slots of the hash space fire
// nothing.
func TestStageGating(t *testing.T) {
	in := MustNew(Plan{Error: 0, Corrupt: 0.5, Budget: 0.5})
	corrupts, budgets := 0, 0
	for _, name := range names(300) {
		for _, stage := range []string{StageCompile, StageSchedule, StageSimulate, StageCache, "parse"} {
			k, ok := in.Decide(stage, name)
			if !ok {
				continue
			}
			switch k {
			case Corrupt:
				if stage != StageCache {
					t.Fatalf("Corrupt fired at %s", stage)
				}
				corrupts++
			case Budget:
				if stage != StageSimulate {
					t.Fatalf("Budget fired at %s", stage)
				}
				budgets++
			default:
				t.Fatalf("unplanned kind %v fired", k)
			}
		}
	}
	if corrupts == 0 || budgets == 0 {
		t.Errorf("gated kinds never fired where they are allowed: corrupts=%d budgets=%d", corrupts, budgets)
	}
}

// TestStagesFilter: Plan.Stages restricts injection to the named stages.
func TestStagesFilter(t *testing.T) {
	in := MustNew(Plan{Error: 1, Stages: []string{StageSchedule}})
	if _, ok := in.Decide(StageCompile, "x"); ok {
		t.Error("filtered stage fired")
	}
	if _, ok := in.Decide(StageSchedule, "x"); !ok {
		t.Error("allowed stage did not fire")
	}
}

// TestProbeBehaviors: Error-kind probes return *Injected, Panic-kind probes
// panic with one, Delay-kind probes sleep and return nil; every firing is
// counted.
func TestProbeBehaviors(t *testing.T) {
	in := MustNew(Plan{Error: 1})
	err := in.Probe(StageCompile, "loop0")
	inj, ok := IsInjected(err)
	if !ok {
		t.Fatalf("Probe returned %v, want *Injected", err)
	}
	if inj.Kind != Error || inj.Stage != StageCompile || inj.Name != "loop0" {
		t.Errorf("injected fault = %+v", inj)
	}
	if !strings.Contains(err.Error(), "injected error") {
		t.Errorf("error text = %q", err)
	}

	pin := MustNew(Plan{Panic: 1})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Panic-kind probe did not panic")
			}
			if _, ok := r.(*Injected); !ok {
				t.Fatalf("panicked with %T, want *Injected", r)
			}
		}()
		pin.Probe(StageSchedule, "loop0")
	}()

	din := MustNew(Plan{Delay: 1, DelayFor: 5 * time.Millisecond})
	start := time.Now()
	if err := din.Probe(StageSimulate, "loop0"); err != nil {
		t.Errorf("Delay probe returned %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("Delay probe slept %v, want >= 5ms", d)
	}

	c := in.Counts()
	if c.Errors != 1 || c.Total() != 1 {
		t.Errorf("error injector counts = %s", c)
	}
	if c := pin.Counts(); c.Panics != 1 {
		t.Errorf("panic injector counts = %s", c)
	}
	if c := din.Counts(); c.Delays != 1 {
		t.Errorf("delay injector counts = %s", c)
	}
	if s := c.String(); !strings.Contains(s, "errors=1") {
		t.Errorf("counts render = %q", s)
	}
}

// TestIsInjectedThroughWrapping: the pipeline wraps injected errors with
// request context; IsInjected must still see them.
func TestIsInjectedThroughWrapping(t *testing.T) {
	in := MustNew(Plan{Error: 1})
	wrapped := fmt.Errorf("pipeline: compile loop0: %w", in.Probe(StageCompile, "loop0"))
	if _, ok := IsInjected(wrapped); !ok {
		t.Error("wrapped injected error not recognized")
	}
	if _, ok := IsInjected(errors.New("organic")); ok {
		t.Error("organic error claimed as injected")
	}
}

// TestKindString pins the kind names used in error text and logs.
func TestKindString(t *testing.T) {
	want := map[Kind]string{Error: "error", Panic: "panic", Delay: "delay", Corrupt: "corrupt", Budget: "budget"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
