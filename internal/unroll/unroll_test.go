package unroll

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

const chain = "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO"

func TestUnrollShape(t *testing.T) {
	r := MustUnroll(lang.MustParse(chain), 4)
	if len(r.Loop.Body) != 4 {
		t.Fatalf("unrolled body = %d statements, want 4", len(r.Loop.Body))
	}
	// Copy 0 is iteration 4J-3: subscript 4*I-3.
	lhs := r.Loop.Body[0].LHS.(*lang.ArrayRef)
	c, off, ok := lang.AffineIndex(lhs.Index, "I")
	if !ok || c != 4 || off != -3 {
		t.Errorf("copy 0 LHS affine = (%d,%d,%v), want (4,-3,true)", c, off, ok)
	}
	// Copy 3 is iteration 4J: subscript 4*I.
	lhs3 := r.Loop.Body[3].LHS.(*lang.ArrayRef)
	c, off, ok = lang.AffineIndex(lhs3.Index, "I")
	if !ok || c != 4 || off != 0 {
		t.Errorf("copy 3 LHS affine = (%d,%d,%v), want (4,0,true)", c, off, ok)
	}
	// Labels are unique.
	seen := map[string]bool{}
	for _, st := range r.Loop.Body {
		if seen[st.Label] {
			t.Errorf("duplicate label %s", st.Label)
		}
		seen[st.Label] = true
	}
}

func TestUnrollSemantics(t *testing.T) {
	for _, src := range []string{
		chain,
		"DO I = 1, N\nB[I] = A[I-2] + E[I+1]\nA[I] = B[I] * 2\nENDDO",
		"DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + E[I]\nENDDO",
		"DO I = 1, N\nS = S + A[I]\nENDDO",
	} {
		loop := lang.MustParse(src)
		for _, k := range []int{1, 2, 4} {
			r, err := Unroll(loop, k)
			if err != nil {
				t.Fatal(err)
			}
			n := 12 // divisible by 1, 2 and 4
			a := loop.SeedStore(n, 8, 3)
			b := a.Clone()
			if err := loop.Run(a); err != nil {
				t.Fatal(err)
			}
			if err := r.Loop.Run(b); err != nil {
				t.Fatalf("k=%d: %v\n%s", k, err, r.Loop)
			}
			if d := a.Diff(b); d != "" {
				t.Errorf("k=%d: unroll changed semantics: %s\n%s\nvs\n%s", k, d, loop, r.Loop)
			}
		}
	}
}

func TestUnrollReducesSyncOps(t *testing.T) {
	loop := lang.MustParse(chain)
	count := func(l *lang.Loop) (int, int) {
		return syncop.Insert(dep.Analyze(l), syncop.Options{}).NumOps()
	}
	s1, w1 := count(loop)
	r := MustUnroll(loop, 4)
	s4, w4 := count(r.Loop)
	// Per original element: k=1 has 1 send + 1 wait per element; k=4 should
	// need at most the same per *body*, i.e. 4x fewer per element.
	if s4 > s1 || w4 > w1 {
		t.Errorf("unrolled loop has more sync ops per body: (%d,%d) vs (%d,%d)", s4, w4, s1, w1)
	}
}

// TestUnrollAmortizesSynchronization is the extension experiment: per-element
// parallel time of the serialized chain improves with the unroll factor.
func TestUnrollAmortizesSynchronization(t *testing.T) {
	loop := lang.MustParse(chain)
	cfg := dlx.Standard(2, 1)
	elements := 96
	perElement := func(l *lang.Loop, k int) float64 {
		a := dep.Analyze(l)
		prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		g, err := dfg.Build(prog, a)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.Sync(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tm := sim.MustTime(s, sim.Options{Lo: 1, Hi: elements / k})
		return float64(tm.Total) / float64(elements)
	}
	base := perElement(loop, 1)
	un4 := perElement(MustUnroll(loop, 4).Loop, 4)
	if un4 >= base {
		t.Errorf("unroll-4 per-element time %.2f not better than %.2f", un4, base)
	}
	t.Logf("per-element cycles: k=1 %.2f, k=4 %.2f", base, un4)
}

func TestUnrollParallelCorrectness(t *testing.T) {
	loop := lang.MustParse("DO I = 1, N\nB[I] = A[I-2] + E[I+1]\nA[I] = B[I] * 2\nENDDO")
	r := MustUnroll(loop, 2)
	a := dep.Analyze(r.Loop)
	prog, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Build(prog, a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Sync(g, dlx.Standard(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := 10 // compressed trip count; 20 original elements
	ref := r.Loop.SeedStore(2*n, 8, 7)
	got := ref.Clone()
	if err := r.Loop.Run(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(s, got, sim.Options{Lo: 1, Hi: n}); err != nil {
		t.Fatal(err)
	}
	if d := ref.Diff(got); d != "" {
		t.Errorf("parallel unrolled execution wrong: %s", d)
	}
}

func TestUnrollErrors(t *testing.T) {
	loop := lang.MustParse(chain)
	if _, err := Unroll(loop, 0); err == nil {
		t.Error("factor 0 must fail")
	}
	l2 := lang.MustParse("DO I = 3, N\nA[I] = 1\nENDDO")
	if _, err := Unroll(l2, 2); err == nil {
		t.Error("non-unit lower bound must fail")
	}
}

func TestUnrollFactorOneIsIdentity(t *testing.T) {
	loop := lang.MustParse(chain)
	r := MustUnroll(loop, 1)
	if r.Loop.String() != loop.String() {
		t.Errorf("k=1 should be identity:\n%s\nvs\n%s", loop, r.Loop)
	}
}
