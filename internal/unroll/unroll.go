// Package unroll implements DOACROSS loop unrolling, the classic
// synchronization-amortization transformation: unrolling by k turns k
// consecutive iterations into one body, so one Send/Wait pair (per
// dependence) covers k elements and the per-element synchronization overhead
// drops by ~k.
//
// The transformation is purely syntactic — the induction variable I is
// replaced by k*J - (k-1) + j in the j-th copy (j = 0..k-1) and the trip
// count becomes N/k — and the rest of the pipeline (dependence analysis,
// synchronization insertion, scheduling) handles the unrolled loop like any
// other: dependences between copies inside one body become loop-independent
// and need no signals at all.
//
// The unrolled loop is equivalent to the original exactly when the trip
// count is divisible by k; the caller owns the remainder iterations (the
// standard epilogue, which this package reports but does not emit since the
// mini-language has a single loop statement).
package unroll

import (
	"fmt"

	"doacross/internal/lang"
)

// Result is an unrolled loop.
type Result struct {
	// Loop is the unrolled loop over the compressed induction variable.
	Loop *lang.Loop
	// Factor is the unroll factor k.
	Factor int
}

// Unroll unrolls the loop by factor k. The loop's lower bound must be the
// constant 1 (the paper's normalized loops).
func Unroll(loop *lang.Loop, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("unroll: factor %d < 1", k)
	}
	if c, ok := loop.Lo.(*lang.Const); !ok || c.Value != 1 {
		return nil, fmt.Errorf("unroll: lower bound must be the constant 1, have %s", loop.Lo)
	}
	if k == 1 {
		return &Result{Loop: loop.Clone(), Factor: 1}, nil
	}
	out := &lang.Loop{
		Doacross: loop.Doacross,
		Var:      loop.Var,
		Lo:       &lang.Const{Value: 1},
		// N/k evaluates with FORTRAN integer-subscript truncation in Bounds.
		Hi: &lang.Binary{Op: lang.OpDiv, L: lang.CloneExpr(loop.Hi), R: &lang.Const{Value: float64(k)}},
	}
	for j := 0; j < k; j++ {
		// Original iteration i = k*J - (k-1) + j.
		offset := j - (k - 1)
		for _, st := range loop.Body {
			cp := &lang.Assign{
				Label: fmt.Sprintf("%s_%d", st.Label, j),
				Cond:  substCond(st.Cond, loop.Var, k, offset),
				LHS:   substExpr(lang.CloneExpr(st.LHS), loop.Var, k, offset),
				RHS:   substExpr(lang.CloneExpr(st.RHS), loop.Var, k, offset),
			}
			out.Body = append(out.Body, cp)
		}
	}
	return &Result{Loop: out, Factor: k}, nil
}

// MustUnroll is Unroll for known-good inputs.
func MustUnroll(loop *lang.Loop, k int) *Result {
	r, err := Unroll(loop, k)
	if err != nil {
		panic(err)
	}
	return r
}

// substExpr replaces every occurrence of the induction variable iv in e by
// (k*iv + offset), returning the rewritten expression.
func substExpr(e lang.Expr, iv string, k, offset int) lang.Expr {
	switch v := e.(type) {
	case *lang.Scalar:
		if v.Name != iv {
			return v
		}
		scaled := lang.Expr(&lang.Binary{
			Op: lang.OpMul,
			L:  &lang.Const{Value: float64(k)},
			R:  &lang.Scalar{Name: iv},
		})
		switch {
		case offset > 0:
			return &lang.Binary{Op: lang.OpAdd, L: scaled, R: &lang.Const{Value: float64(offset)}}
		case offset < 0:
			return &lang.Binary{Op: lang.OpSub, L: scaled, R: &lang.Const{Value: float64(-offset)}}
		}
		return scaled
	case *lang.Const:
		return v
	case *lang.ArrayRef:
		v.Index = substExpr(v.Index, iv, k, offset)
		return v
	case *lang.Binary:
		v.L = substExpr(v.L, iv, k, offset)
		v.R = substExpr(v.R, iv, k, offset)
		return v
	case *lang.Neg:
		v.X = substExpr(v.X, iv, k, offset)
		return v
	}
	return e
}

func substCond(c *lang.Cond, iv string, k, offset int) *lang.Cond {
	if c == nil {
		return nil
	}
	cl := c.Clone()
	cl.L = substExpr(cl.L, iv, k, offset)
	cl.R = substExpr(cl.R, iv, k, offset)
	return cl
}
