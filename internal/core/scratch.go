package core

import (
	"fmt"
	"sync"

	"doacross/internal/bitset"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/tac"
)

// Scratch is the reusable working state of the heuristic schedulers: every
// slice the cycle engine, the arc adder, the lazy-wait analysis and the
// priority computation need, grown once to the largest problem seen and
// reused. Steady-state scheduling of a warm Scratch allocates nothing.
//
// Lifetime rules:
//
//   - A Scratch is NOT safe for concurrent use; give each worker its own.
//   - The *Schedule returned by a Scratch method is BORROWED: its Cycle and
//     Rows storage belongs to the Scratch and is recycled by the next call
//     on the same Scratch. Call Schedule.Clone to keep it (the pipeline
//     clones before publishing to the cache, which only ever holds
//     immutable values).
//   - The zero value is ready to use.
type Scratch struct {
	// Cycle-engine state (struct-of-arrays over node indices).
	lat     []int // per-node latency under the current config
	deg     []int // merged out-degree, then reused as the fill cursor
	succOff []int // merged CSR successor offsets (len n+1)
	succ    []int // merged CSR successor backing
	rem     []int // unscheduled-predecessor counts
	readyAt []int // earliest issue cycle by latency constraints
	live    []int // unscheduled nodes in static priority order
	indeg   []int // acyclicity-check scratch
	queue   []int // Kahn/BFS queue scratch
	occ     [dlx.NumClasses][]int

	// Schedule buffers: all ever created, and the currently free ones.
	all  []*schedBuf
	free []*schedBuf

	// Arc-adder state: accepted extra arcs plus a per-node linked list so
	// duplicate and reachability checks run over base + extras with no map.
	adExtra []dfg.Arc
	adHead  []int32 // node -> first extra arc index + 1 (0 = none)
	adNext  []int32
	adMark  bitset.Bits
	adStack []int

	// Lazy-wait / priority state.
	desc    bitset.Bits
	inPath  bitset.Bits
	visited bitset.Bits
	anc     []int
	lazyBuf []dfg.Arc
	pairBuf []dfg.Arc
	prio    []int
	class   []int
	rank    []int
	cp      []int
	spans   []PairSpan
}

// NewScratch returns an empty Scratch (equivalent to new(Scratch); provided
// for symmetry with the facade).
func NewScratch() *Scratch { return &Scratch{} }

// schedBuf is one reusable Schedule allocation: the Schedule value plus the
// backing arrays its Cycle and Rows views are carved from.
type schedBuf struct {
	s      Schedule
	cycle  []int
	rowBk  []int // issued nodes, all rows concatenated
	rowEnd []int // rowEnd[c] = end offset of row c in rowBk
	rows   [][]int
}

func growInts(buf *[]int, n int) []int {
	b := *buf
	if cap(b) < n {
		b = make([]int, n)
		*buf = b
	}
	return b[:n]
}

func growInt32s(buf *[]int32, n int) []int32 {
	b := *buf
	if cap(b) < n {
		b = make([]int32, n)
		*buf = b
	}
	return b[:n]
}

// reset reclaims every schedule buffer, including the one borrowed by the
// previous call's returned Schedule. Called on entry to each exported
// Scratch method.
func (sc *Scratch) reset() {
	sc.free = append(sc.free[:0], sc.all...)
}

func (sc *Scratch) acquire(n int) *schedBuf {
	var sb *schedBuf
	if k := len(sc.free) - 1; k >= 0 {
		sb = sc.free[k]
		sc.free = sc.free[:k]
	} else {
		sb = &schedBuf{}
		sc.all = append(sc.all, sb)
	}
	sb.cycle = growInts(&sb.cycle, n)
	for i := range sb.cycle {
		sb.cycle[i] = -1
	}
	sb.rowBk = sb.rowBk[:0]
	sb.rowEnd = sb.rowEnd[:0]
	sb.rows = sb.rows[:0]
	return sb
}

func (sc *Scratch) release(sb *schedBuf) { sc.free = append(sc.free, sb) }

// releaseSched returns a borrowed schedule's buffer to the freelist (no-op
// for cloned or externally built schedules).
func (sc *Scratch) releaseSched(s *Schedule) {
	if s != nil && s.scratch != nil {
		sc.release(s.scratch)
	}
}

// sortByKey sorts a by (key[a[i]], a[i]) ascending, in place, with heapsort:
// no allocation, and the comparator is a strict weak order with unique keys
// (ties broken by index), so the result is deterministic.
func sortByKey(a []int, key []int) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownKey(a, key, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownKey(a, key, 0, i)
	}
}

func keyLess(key []int, x, y int) bool {
	if key[x] != key[y] {
		return key[x] < key[y]
	}
	return x < y
}

func siftDownKey(a, key []int, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && keyLess(key, a[c], a[c+1]) {
			c++
		}
		if !keyLess(key, a[root], a[c]) {
			return
		}
		a[root], a[c] = a[c], a[root]
		root = c
	}
}

// sortInts sorts a ascending in place (heapsort; no allocation).
func sortInts(a []int) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownInts(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownInts(a, 0, i)
	}
}

func siftDownInts(a []int, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && a[c] < a[c+1] {
			c++
		}
		if a[root] >= a[c] {
			return
		}
		a[root], a[c] = a[c], a[root]
		root = c
	}
}

// engine is the shared resource-constrained cycle scheduler over scratch
// state. priority maps node -> rank (lower = scheduled first among ready
// nodes); extra arcs are added on top of the dependence graph (the caller
// guarantees they are duplicate-free and acyclicity-checked). The returned
// Schedule is borrowed from the Scratch.
func (sc *Scratch) engine(g *dfg.Graph, cfg dlx.Config, extra []dfg.Arc, priority []int, method string) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.N()

	// Merged successor CSR (base graph + extra arcs) and predecessor counts.
	deg := growInts(&sc.deg, n)
	for i := 0; i < n; i++ {
		deg[i] = len(g.Succ[i])
	}
	for _, a := range extra {
		deg[a.From]++
	}
	off := growInts(&sc.succOff, n+1)
	total := 0
	for i := 0; i < n; i++ {
		off[i] = total
		total += deg[i]
	}
	off[n] = total
	succ := growInts(&sc.succ, total)
	for i := 0; i < n; i++ {
		copy(succ[off[i]:], g.Succ[i])
		deg[i] = off[i] + len(g.Succ[i]) // reuse deg as the extra-fill cursor
	}
	for _, a := range extra {
		succ[deg[a.From]] = a.To
		deg[a.From]++
	}
	rem := growInts(&sc.rem, n)
	for i := 0; i < n; i++ {
		rem[i] = len(g.Pred[i])
	}
	for _, a := range extra {
		rem[a.To]++
	}

	// Cycle check on the augmented graph (Kahn over the merged CSR).
	indeg := growInts(&sc.indeg, n)
	copy(indeg, rem)
	queue := sc.queue[:0]
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range succ[off[v]:off[v+1]] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue[:0]
	if len(queue) != n {
		return nil, fmt.Errorf("core: %s: augmented dependence graph is cyclic", method)
	}

	lat := growInts(&sc.lat, n)
	for i, in := range g.Prog.Instrs {
		lat[i] = cfg.Latency[in.Class()]
	}
	readyAt := growInts(&sc.readyAt, n)
	for i := range readyAt {
		readyAt[i] = 0
	}
	// Static issue preference: (priority, index) ascending. Candidates are
	// scanned in this order every cycle, which is exactly the per-cycle
	// candidate sort of the reference engine with the sort hoisted out (the
	// priority vector is constant across cycles).
	live := growInts(&sc.live, n)
	for i := range live {
		live[i] = i
	}
	sortByKey(live, priority)
	for c := range sc.occ {
		sc.occ[c] = sc.occ[c][:0]
	}

	sb := sc.acquire(n)
	cyc := sb.cycle
	done := 0
	for cycle := 0; done < n; cycle++ {
		if cycle > n*64+1024 {
			sc.release(sb)
			return nil, fmt.Errorf("core: %s: scheduler livelock at cycle %d (%d/%d scheduled)", method, cycle, done, n)
		}
		slots := cfg.Issue
		kept := 0
		for scan := 0; scan < len(live); scan++ {
			v := live[scan]
			if slots == 0 || rem[v] != 0 || readyAt[v] > cycle {
				live[kept] = v
				kept++
				continue
			}
			cls := g.Prog.Instrs[v].Class()
			l := lat[v]
			if dlx.NeedsUnit(cls) && !sc.fuFree(cls, cycle, cycle+l, cfg.Units[cls]) {
				live[kept] = v
				kept++
				continue
			}
			// Issue v.
			cyc[v] = cycle
			sb.rowBk = append(sb.rowBk, v)
			slots--
			done++
			if dlx.NeedsUnit(cls) {
				sc.occupy(cls, cycle, cycle+l)
			}
			for _, s := range succ[off[v]:off[v+1]] {
				rem[s]--
				// A successor can never issue in the cycle its predecessor
				// issues (the reference engine snapshots candidates before
				// issuing), so the ready time is at least cycle+1 even at
				// latency 0.
				ra := cycle + l
				if ra <= cycle {
					ra = cycle + 1
				}
				if ra > readyAt[s] {
					readyAt[s] = ra
				}
			}
		}
		live = live[:kept]
		sb.rowEnd = append(sb.rowEnd, len(sb.rowBk))
	}
	// Trim trailing empty rows (can appear when the last issues left gaps).
	for len(sb.rowEnd) > 0 {
		prev := 0
		if len(sb.rowEnd) > 1 {
			prev = sb.rowEnd[len(sb.rowEnd)-2]
		}
		if sb.rowEnd[len(sb.rowEnd)-1] != prev {
			break
		}
		sb.rowEnd = sb.rowEnd[:len(sb.rowEnd)-1]
	}
	// Materialize the row views over the flat backing. Empty mid-schedule
	// rows stay nil, matching the reference engine's representation.
	start := 0
	for _, end := range sb.rowEnd {
		if end == start {
			sb.rows = append(sb.rows, nil)
			continue
		}
		sb.rows = append(sb.rows, sb.rowBk[start:end:end])
		start = end
	}
	sb.s = Schedule{Prog: g.Prog, Graph: g, Cfg: cfg, Cycle: cyc, Rows: sb.rows, Method: method, scratch: sb}
	return &sb.s, nil
}

func (sc *Scratch) occupy(cls dlx.Class, from, until int) {
	occ := sc.occ[cls]
	for len(occ) < until {
		occ = append(occ, 0)
	}
	for c := from; c < until; c++ {
		occ[c]++
	}
	sc.occ[cls] = occ
}

func (sc *Scratch) fuFree(cls dlx.Class, from, until, limit int) bool {
	occ := sc.occ[cls]
	if until > len(occ) {
		until = len(occ)
	}
	for c := from; c < until; c++ {
		if occ[c] >= limit {
			return false
		}
	}
	return true
}

// List builds the baseline list schedule into scratch state. The returned
// schedule is borrowed until the next call on this Scratch.
func (sc *Scratch) List(g *dfg.Graph, cfg dlx.Config, pri ListPriority) (*Schedule, error) {
	sc.reset()
	return sc.listImpl(g, cfg, pri)
}

func (sc *Scratch) listImpl(g *dfg.Graph, cfg dlx.Config, pri ListPriority) (*Schedule, error) {
	n := g.N()
	priority := growInts(&sc.prio, n)
	switch pri {
	case ProgramOrder:
		for i := range priority {
			priority[i] = i
		}
	case CriticalPath:
		cp, err := sc.criticalPaths(g, cfg)
		if err != nil {
			return nil, err
		}
		for i := range priority {
			// Longer critical path = higher priority = lower rank value.
			priority[i] = -cp[i]
		}
	}
	return sc.engine(g, cfg, nil, priority, "list")
}

// criticalPaths computes latency-weighted longest path to a sink per node
// over scratch buffers (same values as Graph.CriticalPathLengths: the
// distances are topological-order independent).
func (sc *Scratch) criticalPaths(g *dfg.Graph, cfg dlx.Config) ([]int, error) {
	n := g.N()
	indeg := growInts(&sc.indeg, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Pred[i])
	}
	queue := sc.queue[:0]
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue[:0]
	if len(queue) != n {
		return nil, fmt.Errorf("dfg: dependence cycle detected")
	}
	cp := growInts(&sc.cp, n)
	for i := range cp {
		cp[i] = 0
	}
	for i := n - 1; i >= 0; i-- {
		v := queue[i]
		best := 0
		for _, w := range g.Succ[v] {
			if cp[w] > best {
				best = cp[w]
			}
		}
		cp[v] = cfg.Latency[g.Prog.Instrs[v].Class()] + best
	}
	return cp, nil
}

// Sync builds the paper's synchronization-aware schedule into scratch
// state. The returned schedule is borrowed until the next call.
func (sc *Scratch) Sync(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return sc.SyncWithOptions(g, cfg, SyncOptions{})
}

// SyncWithOptions is Sync with ablation knobs.
func (sc *Scratch) SyncWithOptions(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) (*Schedule, error) {
	sc.reset()
	return sc.syncImpl(g, cfg, opt)
}

func (sc *Scratch) syncImpl(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) (*Schedule, error) {
	sc.adReset(g)
	if !opt.NoPairArcs {
		// Provably safe Sig/Wat pair arcs first (the paper's rule).
		for _, a := range sc.pairArcs(g) {
			sc.adAdd(g, a)
		}
	}
	if !opt.NoLazyWaits {
		for _, a := range sc.lazyWaitArcs(g) {
			sc.adAdd(g, a)
		}
	}
	priority, err := sc.syncPriority(g, cfg, opt)
	if err != nil {
		return nil, err
	}
	best, err := sc.engine(g, cfg, sc.adExtra, priority, "sync")
	if err != nil {
		return nil, err
	}
	if opt.NoPairArcs {
		return best, nil
	}
	// Extended LBD→LFD conversion: for each pair still scheduled backward,
	// tentatively force the send before the wait (if that keeps the graph
	// acyclic — e.g. a pair whose wait and send share a component only
	// through an address subexpression has no directed wait→send path) and
	// keep the arc only when the rescheduled result is no worse. Serializing
	// one pair can delay another pair's send, so each candidate is verified
	// rather than assumed.
	for i, in := range g.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		s := send.ID - 1
		if best.Cycle[s] < best.Cycle[i] {
			continue // already LFD
		}
		if !sc.adAdd(g, dfg.Arc{From: s, To: i, Kind: dfg.SrcToSend}) {
			continue
		}
		cand, err := sc.engine(g, cfg, sc.adExtra, priority, "sync")
		if err != nil || !sc.betterThan(cand, best) {
			sc.releaseSched(cand)
			sc.adRemoveLast()
			continue
		}
		sc.releaseSched(best)
		best = cand
	}
	return best, nil
}

// Best builds the sync schedule and both list baselines into scratch state
// and returns the one with the lowest predicted parallel time. The returned
// schedule is borrowed until the next call.
func (sc *Scratch) Best(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	sc.reset()
	best, err := sc.syncImpl(g, cfg, SyncOptions{})
	if err != nil {
		return nil, err
	}
	for _, pri := range []ListPriority{CriticalPath, ProgramOrder} {
		s, err := sc.listImpl(g, cfg, pri)
		if err != nil {
			return nil, err
		}
		if sc.betterThan(s, best) {
			sc.releaseSched(best)
			best = s
		} else {
			sc.releaseSched(s)
		}
	}
	return best, nil
}

// betterThan compares schedules by predicted parallel time at a large and a
// small trip count (the recurrence slope dominates the first, the schedule
// length the second), strictly.
func (sc *Scratch) betterThan(a, b *Schedule) bool {
	la, lb := sc.predictTotal(a, 1024), sc.predictTotal(b, 1024)
	if la != lb {
		return la < lb
	}
	return a.CompletionLength() < b.CompletionLength()
}

// predictTotal is the LBD-chain bound ⌊(n−1)/d⌋·(span+1) + l (the dynamic
// form of the paper's (n/d)(i−j)+l), maximized over pairs.
func (sc *Scratch) predictTotal(s *Schedule, n int) int {
	l := s.CompletionLength()
	best := l
	sc.spans = s.PairSpansAppend(sc.spans[:0])
	for _, p := range sc.spans {
		if !p.LBD() {
			continue
		}
		if t := (n-1)/p.Distance*(p.Span()+1) + l; t > best {
			best = t
		}
	}
	return best
}

// adReset clears the arc-adder state for a new graph.
func (sc *Scratch) adReset(g *dfg.Graph) {
	n := g.N()
	sc.adExtra = sc.adExtra[:0]
	sc.adNext = sc.adNext[:0]
	head := growInt32s(&sc.adHead, n)
	for i := range head {
		head[i] = 0
	}
}

// adHas reports whether from→to exists in the base graph or the accepted
// extra arcs.
func (sc *Scratch) adHas(g *dfg.Graph, from, to int) bool {
	for _, t := range g.Succ[from] {
		if t == to {
			return true
		}
	}
	for e := sc.adHead[from]; e != 0; e = sc.adNext[e-1] {
		if sc.adExtra[e-1].To == to {
			return true
		}
	}
	return false
}

// adAdd accepts the arc unless it already exists or would close a cycle.
func (sc *Scratch) adAdd(g *dfg.Graph, arc dfg.Arc) bool {
	if arc.From == arc.To || sc.adHas(g, arc.From, arc.To) {
		return false
	}
	if sc.adReaches(g, arc.To, arc.From) {
		return false
	}
	idx := len(sc.adExtra)
	sc.adExtra = append(sc.adExtra, arc)
	sc.adNext = append(sc.adNext, sc.adHead[arc.From])
	sc.adHead[arc.From] = int32(idx) + 1
	return true
}

// adRemoveLast undoes the most recent successful adAdd.
func (sc *Scratch) adRemoveLast() {
	k := len(sc.adExtra) - 1
	if k < 0 {
		return
	}
	arc := sc.adExtra[k]
	sc.adHead[arc.From] = sc.adNext[k]
	sc.adExtra = sc.adExtra[:k]
	sc.adNext = sc.adNext[:k]
}

// adReaches reports whether dst is reachable from src over base + extras.
func (sc *Scratch) adReaches(g *dfg.Graph, src, dst int) bool {
	if src == dst {
		return true
	}
	mark := bitset.Make(sc.adMark, g.N())
	sc.adMark = mark
	stack := append(sc.adStack[:0], src)
	mark.Set(src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ[v] {
			if w == dst {
				sc.adStack = stack
				return true
			}
			if !mark.Has(w) {
				mark.Set(w)
				stack = append(stack, w)
			}
		}
		for e := sc.adHead[v]; e != 0; e = sc.adNext[e-1] {
			w := sc.adExtra[e-1].To
			if w == dst {
				sc.adStack = stack
				return true
			}
			if !mark.Has(w) {
				mark.Set(w)
				stack = append(stack, w)
			}
		}
	}
	sc.adStack = stack
	return false
}

// pairArcs is Graph.PairArcs into a scratch buffer.
func (sc *Scratch) pairArcs(g *dfg.Graph) []dfg.Arc {
	out := sc.pairBuf[:0]
	for i, in := range g.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		s := send.ID - 1
		if g.ComponentOf(s) == g.ComponentOf(i) {
			continue
		}
		waitComp := g.Component(g.ComponentOf(i)).Kind
		sendComp := g.Component(g.ComponentOf(s)).Kind
		if waitComp == dfg.Wat || sendComp == dfg.Sig {
			out = append(out, dfg.Arc{From: s, To: i, Kind: dfg.SrcToSend})
		}
	}
	sc.pairBuf = out
	return out
}

// markDescendants fills sc.desc with the descendants of node.
func (sc *Scratch) markDescendants(g *dfg.Graph, node int) bitset.Bits {
	desc := bitset.Make(sc.desc, g.N())
	sc.desc = desc
	stack := append(sc.queue[:0], g.Succ[node]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if desc.Has(v) {
			continue
		}
		desc.Set(v)
		stack = append(stack, g.Succ[v]...)
	}
	sc.queue = stack[:0]
	return desc
}

// lazyWaitArcs delays every wait as far as its synchronization path allows —
// the head end of the contiguous-SP rule. Two families of ordering arcs are
// generated (all filtered for acyclicity by the caller's arc adder):
//
//  1. For each WaitToSnk arc w→k, every non-sync predecessor p of k that is
//     not a descendant of w gets an arc p→w: the wait issues only when its
//     sink's other operands are ready.
//  2. For each synchronization path SP(w, send), every ancestor a of a path
//     node that is outside the path (and not a descendant of w) gets an arc
//     a→w. Those ancestors lower-bound the send's issue time regardless of
//     where the wait sits, so ordering them before the wait shrinks the
//     wait→send span — the LBD cost (n/d)(i−j) — without delaying the send.
func (sc *Scratch) lazyWaitArcs(g *dfg.Graph) []dfg.Arc {
	n := g.N()
	out := sc.lazyBuf[:0]
	for _, a := range g.Arcs {
		if a.Kind != dfg.WaitToSnk {
			continue
		}
		w, k := a.From, a.To
		desc := sc.markDescendants(g, w)
		for _, p := range g.Pred[k] {
			if p == w || g.Prog.Instrs[p].IsSync() || desc.Has(p) {
				continue
			}
			out = append(out, dfg.Arc{From: p, To: w, Kind: dfg.WaitToSnk})
		}
	}
	for _, sp := range g.SyncPaths() {
		w := sp.Wait
		desc := sc.markDescendants(g, w)
		inPath := bitset.Make(sc.inPath, n)
		sc.inPath = inPath
		for _, v := range sp.Nodes {
			inPath.Set(v)
		}
		// One reverse DFS per path, shared across its nodes: a visited node's
		// ancestor closure has already been explored, so expansion stops
		// there. Ancestors are filtered for output only — the closure is
		// explored through path members and descendants alike, exactly like
		// the per-node Ancestors sets this replaces.
		visited := bitset.Make(sc.visited, n)
		sc.visited = visited
		anc := sc.anc[:0]
		stack := sc.adStack[:0]
		for _, k := range sp.Nodes[1:] {
			for _, p := range g.Pred[k] {
				if !visited.Has(p) {
					visited.Set(p)
					stack = append(stack, p)
				}
			}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if !inPath.Has(v) && !desc.Has(v) && !g.Prog.Instrs[v].IsSync() {
					anc = append(anc, v)
				}
				for _, p := range g.Pred[v] {
					if !visited.Has(p) {
						visited.Set(p)
						stack = append(stack, p)
					}
				}
			}
		}
		sc.adStack = stack[:0]
		sortInts(anc) // ascending node order: arc emission is stable
		sc.anc = anc
		for _, a := range anc {
			out = append(out, dfg.Arc{From: a, To: w, Kind: dfg.WaitToSnk})
		}
	}
	sc.lazyBuf = out
	return out
}

func (sc *Scratch) syncPriority(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) ([]int, error) {
	n := g.N()
	priority := growInts(&sc.prio, n)
	if opt.NoSPPriority {
		for i := range priority {
			priority[i] = i
		}
		return priority, nil
	}
	// Per §3.2, nodes outside the synchronization paths are scheduled "by
	// the list scheduling": rank them by critical-path length within their
	// class. On a loop with no synchronization at all this makes the new
	// scheduler coincide with the critical-path baseline.
	cp, err := sc.criticalPaths(g, cfg)
	if err != nil {
		return nil, err
	}
	const stride = 1 << 20
	class := growInts(&sc.class, n)
	rank := growInts(&sc.rank, n)
	maxCP := 0
	for _, v := range cp {
		if v > maxCP {
			maxCP = v
		}
	}
	for i := 0; i < n; i++ {
		switch g.Component(g.ComponentOf(i)).Kind {
		case dfg.Sig:
			class[i] = classSig
		case dfg.Sigwat:
			class[i] = classSigwatRest
		case dfg.Wat:
			class[i] = classWat
		default:
			class[i] = classPlain
		}
		// Longer critical path = earlier; ties broken by program order.
		rank[i] = (maxCP-cp[i])*(n+1) + i
	}
	paths := g.SyncPaths()
	// SP nodes: class classSP, ranked by (path rank, position in path).
	// Overlapping paths keep the rank of the higher-priority (earlier) path,
	// which schedules shared segments with the most critical path — the
	// paper's "scheduled simultaneously" rule for intersecting paths.
	seq := 0
	assign := func(p dfg.SyncPath) {
		for _, v := range p.Nodes {
			if class[v] == classSP {
				continue
			}
			class[v] = classSP
			rank[v] = seq
			seq++
		}
	}
	if opt.AscendingSP {
		for i := len(paths) - 1; i >= 0; i-- {
			assign(paths[i])
		}
	} else {
		for _, p := range paths {
			assign(p)
		}
	}
	for i := 0; i < n; i++ {
		priority[i] = class[i]*stride + rank[i]
	}
	return priority, nil
}

// scratchPool serves the non-scratch package-level entry points (Sync,
// List, Best): they borrow a pooled Scratch, schedule, and clone the result
// so callers keep the familiar own-your-schedule contract.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}
