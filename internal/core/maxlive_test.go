package core

import (
	"testing"

	"doacross/internal/dlx"
)

func TestMaxLiveBounds(t *testing.T) {
	g := buildGraph(t, fig1Source)
	for _, mk := range []func() (*Schedule, error){
		func() (*Schedule, error) { return List(g, dlx.Standard(4, 1), ProgramOrder) },
		func() (*Schedule, error) { return Sync(g, dlx.Standard(4, 1)) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		live := s.MaxLive()
		if live < 1 {
			t.Errorf("%s: MaxLive = %d, want >= 1", s.Method, live)
		}
		if live > s.Prog.NumTemps {
			t.Errorf("%s: MaxLive = %d exceeds total temps %d", s.Method, live, s.Prog.NumTemps)
		}
	}
}

func TestMaxLiveSerialChainIsSmall(t *testing.T) {
	// A pure value chain a->b->c->... keeps at most a couple of temps live.
	g := buildGraph(t, "DO I = 1, N\nA[I] = ((E[I] + 1) * 2 - 3) / 4\nENDDO")
	s, err := List(g, dlx.Standard(1, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	if live := s.MaxLive(); live > 3 {
		t.Errorf("serial chain MaxLive = %d, want <= 3\n%s", live, s.Listing())
	}
}

func TestMaxLiveWideExpressionIsLarge(t *testing.T) {
	// A balanced sum of 8 loads at high issue width keeps many temps live.
	g := buildGraph(t, "DO I = 1, N\nA[I] = (E[I] + F[I]) + (G[I] + H[I]) + ((P[I] + Q[I]) + (R[I] + T[I]))\nENDDO")
	wide, err := List(g, dlx.Standard(8, 8), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := List(g, dlx.Standard(1, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	if wide.MaxLive() < narrow.MaxLive() {
		t.Errorf("wider issue should not reduce pressure: %d vs %d", wide.MaxLive(), narrow.MaxLive())
	}
	if wide.MaxLive() < 4 {
		t.Errorf("8-wide sum pressure = %d, want >= 4", wide.MaxLive())
	}
}
