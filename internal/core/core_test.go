package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func buildGraph(t testing.TB, src string) *dfg.Graph {
	t.Helper()
	a := dep.Analyze(lang.MustParse(src))
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestListScheduleValid(t *testing.T) {
	g := buildGraph(t, fig1Source)
	for _, cfg := range append(dlx.PaperConfigs(), dlx.Uniform(4, 1)) {
		s, err := List(g, cfg, ProgramOrder)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v\n%s", cfg.Name, err, s.Listing())
		}
	}
}

func TestSyncScheduleValid(t *testing.T) {
	g := buildGraph(t, fig1Source)
	for _, cfg := range append(dlx.PaperConfigs(), dlx.Uniform(4, 1)) {
		s, err := Sync(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v\n%s", cfg.Name, err, s.Listing())
		}
	}
}

// TestFig4 reproduces the paper's worked example: at 4-issue, list
// scheduling leaves two LBDs and a long wait→send span; the new scheduler
// converts the Wat-graph pair to LFD, leaving exactly one LBD whose span is
// much shorter.
func TestFig4(t *testing.T) {
	g := buildGraph(t, fig1Source)
	cfg := dlx.Uniform(4, 1)
	list, err := List(g, cfg, ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := Sync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr, sr := Report(list), Report(sync)
	if lr.NumLBD != 2 {
		t.Errorf("list LBDs = %d, want 2\n%s", lr.NumLBD, list.Listing())
	}
	if sr.NumLBD != 1 {
		t.Errorf("sync LBDs = %d, want 1\n%s", sr.NumLBD, sync.Listing())
	}
	if sr.NumLFD != 1 {
		t.Errorf("sync LFDs = %d, want 1 (Wat pair converted)", sr.NumLFD)
	}
	// The per-iteration recurrence slope must improve substantially.
	if sync.MaxLBDStall() >= list.MaxLBDStall() {
		t.Errorf("sync stall %.2f not better than list stall %.2f\nlist:\n%s\nsync:\n%s",
			sync.MaxLBDStall(), list.MaxLBDStall(), list.Listing(), sync.Listing())
	}
}

func TestListHoistsWaits(t *testing.T) {
	// The pathology the paper describes: with enough issue slots the list
	// scheduler issues both waits in cycle 0.
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Uniform(4, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	waitCycles := []int{}
	for v, in := range s.Prog.Instrs {
		if in.Op == tac.Wait {
			waitCycles = append(waitCycles, s.Cycle[v])
		}
	}
	if len(waitCycles) != 2 || waitCycles[0] != 0 || waitCycles[1] != 0 {
		t.Errorf("list wait cycles = %v, want both at 0", waitCycles)
	}
}

func TestSyncConvertsWatPairToLFD(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := Sync(g, dlx.Uniform(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.PairSpans() {
		if p.Distance == 1 { // the Wat-graph pair (Wait_Signal(S3, I-1))
			if p.LBD() {
				t.Errorf("Wat pair should be LFD: wait@%d send@%d\n%s",
					p.WaitCycle, p.SendCycle, s.Listing())
			}
		}
	}
}

func TestScheduleOrderExecutesCorrectly(t *testing.T) {
	// Executing instructions in issue order must compute the same iteration
	// result as program order.
	loop := lang.MustParse(fig1Source)
	a := dep.Analyze(loop)
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (*Schedule, error){
		func() (*Schedule, error) { return List(g, dlx.Standard(2, 1), ProgramOrder) },
		func() (*Schedule, error) { return Sync(g, dlx.Standard(4, 2)) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		ref := loop.SeedStore(5, 8, 11)
		got := ref.Clone()
		for i := 1; i <= 5; i++ {
			if err := tac.ExecIteration(p.Instrs, p.NumTemps, i, ref); err != nil {
				t.Fatal(err)
			}
			if err := tac.ExecIteration(s.Order(), p.NumTemps, i, got); err != nil {
				t.Fatalf("%s order execution: %v\n%s", s.Method, err, s.Listing())
			}
		}
		if d := ref.Diff(got); d != "" {
			t.Errorf("%s: issue-order execution diverges: %s", s.Method, d)
		}
	}
}

func TestIssueWidthRespected(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Standard(2, 2), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	for c, row := range s.Rows {
		if len(row) > 2 {
			t.Errorf("cycle %d issues %d > 2", c, len(row))
		}
	}
}

func TestMultiplierLatencyRespected(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Standard(4, 2), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	// The G store (consumer of the multiply) must issue >= 3 cycles after it.
	var mulC, storeC = -1, -1
	for v, in := range s.Prog.Instrs {
		if in.Op == tac.Mul {
			mulC = s.Cycle[v]
		}
		if in.Op == tac.Store && in.Array == "G" {
			storeC = s.Cycle[v]
		}
	}
	if mulC < 0 || storeC < 0 {
		t.Fatal("mul or G store not found")
	}
	if storeC < mulC+3 {
		t.Errorf("G store at %d, mul at %d: latency 3 violated", storeC, mulC)
	}
}

func TestFUContention(t *testing.T) {
	// 8 independent loads with one load/store unit: at least 8 cycles even
	// at 4-issue.
	src := "DO I = 1, N\nA[I] = B[I] + C[I] + D[I] + E[I] + F[I] + G[I] + H[I]\nENDDO"
	g := buildGraph(t, src)
	s, err := List(g, dlx.Standard(4, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Length() < 8 {
		t.Errorf("length = %d, want >= 8 (7 loads + 1 store on one unit)", s.Length())
	}
	s2, err := List(g, dlx.Standard(4, 2), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Length() >= s.Length() {
		t.Errorf("doubling load/store units did not help: %d vs %d", s2.Length(), s.Length())
	}
}

func TestCriticalPathPriorityValid(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Standard(4, 1), CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAblationsValid(t *testing.T) {
	g := buildGraph(t, fig1Source)
	cfg := dlx.Standard(4, 1)
	opts := []SyncOptions{
		{NoPairArcs: true},
		{NoLazyWaits: true},
		{NoSPPriority: true},
		{AscendingSP: true},
		{NoPairArcs: true, NoLazyWaits: true, NoSPPriority: true},
	}
	for i, o := range opts {
		s, err := SyncWithOptions(g, cfg, o)
		if err != nil {
			t.Fatalf("ablation %d: %v", i, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("ablation %d: %v", i, err)
		}
	}
}

func TestLazyWaitNoCycleOnIndirect(t *testing.T) {
	// Indirect subscripts make sink operands depend on other loads; the
	// lazification must not create cycles.
	g := buildGraph(t, "DO I = 1, N\nA[I] = A[X[I]] + A[I-1]\nENDDO")
	s, err := Sync(g, dlx.Standard(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDoallSchedulesEquivalent(t *testing.T) {
	g := buildGraph(t, "DO I = 1, N\nA[I] = E[I] + 1\nB[I] = F[I] * 2\nENDDO")
	cfg := dlx.Standard(4, 2)
	l, err := List(g, cfg, ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Length() != s.Length() {
		t.Errorf("DOALL: list %d cycles vs sync %d cycles (should match)", l.Length(), s.Length())
	}
	if s.NumLBD() != 0 || l.NumLBD() != 0 {
		t.Error("DOALL loop has no sync pairs")
	}
}

func randomDoacrossLoop(r *rand.Rand) *lang.Loop {
	arrays := []string{"A", "B", "C", "D"}
	loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
	nst := 1 + r.Intn(5)
	ref := func(maxBack int) lang.Expr {
		off := r.Intn(maxBack+3) - maxBack
		return &lang.ArrayRef{Name: arrays[r.Intn(len(arrays))],
			Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(off)}}}
	}
	for s := 0; s < nst; s++ {
		rhs := &lang.Binary{Op: lang.BinOp(r.Intn(3)), L: ref(4), R: ref(4)}
		st := &lang.Assign{
			Label: "S" + string(rune('1'+s)),
			LHS:   &lang.ArrayRef{Name: arrays[r.Intn(len(arrays))], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(3))}}},
			RHS:   rhs,
		}
		// Occasionally guard the statement (type-1 control dependence).
		if r.Intn(4) == 0 {
			st.Cond = &lang.Cond{Op: lang.RelOp(r.Intn(6)), L: ref(4), R: &lang.Const{Value: float64(r.Intn(5) - 2)}}
		}
		loop.Body = append(loop.Body, st)
	}
	return loop
}

// TestQuickSchedulesValidAndSemanticsPreserved is the central property test:
// for random DOACROSS loops, both schedulers produce validated schedules
// whose issue order computes exactly the program-order iteration result.
func TestQuickSchedulesValidAndSemanticsPreserved(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	machines := []dlx.Config{dlx.Standard(2, 1), dlx.Standard(4, 1), dlx.Standard(4, 2)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := randomDoacrossLoop(r)
		a := dep.Analyze(loop)
		p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		g, err := dfg.Build(p, a)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		m := machines[r.Intn(len(machines))]
		list, err := List(g, m, ProgramOrder)
		if err != nil {
			t.Logf("seed %d list: %v", seed, err)
			return false
		}
		syncS, err := Sync(g, m)
		if err != nil {
			t.Logf("seed %d sync: %v", seed, err)
			return false
		}
		for _, s := range []*Schedule{list, syncS} {
			if err := s.Validate(); err != nil {
				t.Logf("seed %d %s: %v\n%s", seed, s.Method, err, s.Listing())
				return false
			}
			ref := loop.SeedStore(4, 10, uint64(seed))
			got := ref.Clone()
			for i := 1; i <= 4; i++ {
				if err := tac.ExecIteration(p.Instrs, p.NumTemps, i, ref); err != nil {
					return true // non-finite data path; skip
				}
				if err := tac.ExecIteration(s.Order(), p.NumTemps, i, got); err != nil {
					t.Logf("seed %d %s: %v", seed, s.Method, err)
					return false
				}
			}
			if d := ref.Diff(got); d != "" {
				t.Logf("seed %d %s: %s", seed, s.Method, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBestNeverWorse checks the paper's "never degrades" claim as
// operationalized by Best: its worst per-iteration LBD recurrence is never
// worse than plain list scheduling's.
func TestQuickBestNeverWorse(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := randomDoacrossLoop(r)
		a := dep.Analyze(loop)
		p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			return false
		}
		g, err := dfg.Build(p, a)
		if err != nil {
			return false
		}
		m := dlx.Standard(4, 1)
		list, err1 := List(g, m, ProgramOrder)
		best, err2 := Best(g, m)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v %v", seed, err1, err2)
			return false
		}
		if best.MaxLBDStall() > list.MaxLBDStall()+1e-9 {
			t.Logf("seed %d: best stall %.3f > list %.3f", seed, best.MaxLBDStall(), list.MaxLBDStall())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSyncUsuallyWins samples a fixed set of random DOACROSS loops and
// checks the pure synchronization-path heuristic beats or ties list
// scheduling on the vast majority (it is a heuristic; rare adversarial
// shapes may lose, which Best papers over).
func TestSyncUsuallyWins(t *testing.T) {
	wins, ties, losses, total := 0, 0, 0, 0
	m := dlx.Standard(4, 1)
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		loop := randomDoacrossLoop(r)
		a := dep.Analyze(loop)
		p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		g, err := dfg.Build(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.SyncPaths()) == 0 && len(g.PairArcs()) == 0 {
			continue // nothing for the technique to act on
		}
		list, err1 := List(g, m, ProgramOrder)
		syncS, err2 := Sync(g, m)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v %v", seed, err1, err2)
		}
		total++
		ls, ss := list.MaxLBDStall(), syncS.MaxLBDStall()
		switch {
		case ss < ls-1e-9:
			wins++
		case ss > ls+1e-9:
			losses++
		default:
			ties++
		}
	}
	if total < 50 {
		t.Fatalf("only %d synchronized loops in sample", total)
	}
	if losses*5 > total {
		t.Errorf("sync heuristic loses too often: %d wins, %d ties, %d losses of %d", wins, ties, losses, total)
	}
	if wins == 0 {
		t.Error("sync heuristic never wins on random DOACROSS loops")
	}
	t.Logf("sync vs list on %d loops: %d wins, %d ties, %d losses", total, wins, ties, losses)
}

func TestScheduleStringShape(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Uniform(4, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if len(str) == 0 || str[0] != '(' {
		t.Errorf("String() = %q, want Fig.4-style rows", str)
	}
}
