package core

import (
	"doacross/internal/dfg"
	"doacross/internal/dlx"
)

// ListPriority selects the tie-breaking priority of the baseline list
// scheduler.
type ListPriority int

// Baseline priorities.
const (
	// ProgramOrder prioritizes by original instruction position, matching the
	// paper's Fig. 4(a) construction ("nodes 1, 2, 3 are arranged in an
	// instruction" — lowest-numbered ready nodes first).
	ProgramOrder ListPriority = iota
	// CriticalPath prioritizes by longest latency-weighted path to a sink,
	// the textbook list-scheduling heuristic. For DOACROSS loops it fails in
	// exactly the way the paper describes: waits are always ready (no data
	// predecessors) and head long chains, so they hoist to cycle 0 and
	// stretch the wait→send span.
	CriticalPath
)

// List builds the baseline list schedule.
func List(g *dfg.Graph, cfg dlx.Config, pri ListPriority) (*Schedule, error) {
	sc := scratchPool.Get().(*Scratch)
	s, err := sc.List(g, cfg, pri)
	if err == nil {
		s = s.Clone()
	}
	scratchPool.Put(sc)
	return s, err
}
