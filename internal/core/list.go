package core

import (
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/tac"
)

// ListPriority selects the tie-breaking priority of the baseline list
// scheduler.
type ListPriority int

// Baseline priorities.
const (
	// ProgramOrder prioritizes by original instruction position, matching the
	// paper's Fig. 4(a) construction ("nodes 1, 2, 3 are arranged in an
	// instruction" — lowest-numbered ready nodes first).
	ProgramOrder ListPriority = iota
	// CriticalPath prioritizes by longest latency-weighted path to a sink,
	// the textbook list-scheduling heuristic. For DOACROSS loops it fails in
	// exactly the way the paper describes: waits are always ready (no data
	// predecessors) and head long chains, so they hoist to cycle 0 and
	// stretch the wait→send span.
	CriticalPath
)

// List builds the baseline list schedule.
func List(g *dfg.Graph, cfg dlx.Config, pri ListPriority) (*Schedule, error) {
	n := g.N()
	priority := make([]int, n)
	switch pri {
	case ProgramOrder:
		for i := range priority {
			priority[i] = i
		}
	case CriticalPath:
		cp, err := g.CriticalPathLengths(func(in *tac.Instr) int {
			return cfg.Latency[in.Class()]
		})
		if err != nil {
			return nil, err
		}
		for i := range priority {
			// Longer critical path = higher priority = lower rank value.
			priority[i] = -cp[i]
		}
	}
	return engine(g, cfg, nil, priority, "list")
}
