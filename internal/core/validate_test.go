package core

import (
	"strings"
	"testing"

	"doacross/internal/dlx"
)

// corrupt clones a schedule's mutable state so injections don't leak.
func corrupt(t *testing.T, s *Schedule) *Schedule {
	t.Helper()
	cp := *s
	cp.Cycle = append([]int(nil), s.Cycle...)
	cp.Rows = make([][]int, len(s.Rows))
	for i, r := range s.Rows {
		cp.Rows[i] = append([]int(nil), r...)
	}
	return &cp
}

// TestValidateFailureInjection corrupts a valid schedule in every way the
// validator claims to detect and asserts each is caught.
func TestValidateFailureInjection(t *testing.T) {
	g := buildGraph(t, fig1Source)
	s, err := Sync(g, dlx.Standard(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("pristine schedule invalid: %v", err)
	}

	t.Run("dependence violation", func(t *testing.T) {
		c := corrupt(t, s)
		// Move the first arc's target to cycle 0 (before its producer).
		arc := c.Graph.Arcs[0]
		old := c.Cycle[arc.To]
		c.Cycle[arc.To] = 0
		// Patch rows to stay self-consistent (cycle map checked first
		// otherwise).
		for i, row := range c.Rows {
			for j, v := range row {
				if v == arc.To {
					c.Rows[i] = append(row[:j], row[j+1:]...)
					goto moved
				}
			}
		}
	moved:
		c.Rows[0] = append(c.Rows[0], arc.To)
		_ = old
		err := c.Validate()
		if err == nil {
			t.Fatal("dependence violation not detected")
		}
	})

	t.Run("issue width exceeded", func(t *testing.T) {
		// A 2-issue schedule has full rows to overflow.
		narrow, err := Sync(g, dlx.Standard(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		c := corrupt(t, narrow)
		// Find the last node and cram it into an already-full row.
		fullRow := -1
		for i, row := range c.Rows {
			if len(row) == c.Cfg.Issue {
				fullRow = i
				break
			}
		}
		if fullRow == -1 {
			t.Skip("no full row to overflow")
		}
		// Move the last instruction into the full row.
		lastRow := len(c.Rows) - 1
		v := c.Rows[lastRow][0]
		c.Rows[lastRow] = c.Rows[lastRow][1:]
		c.Rows[fullRow] = append(c.Rows[fullRow], v)
		c.Cycle[v] = fullRow
		verr := c.Validate()
		if verr == nil || !strings.Contains(verr.Error(), "issues") && !strings.Contains(verr.Error(), "arc") && !strings.Contains(verr.Error(), "units") {
			t.Fatalf("overflow not detected properly: %v", verr)
		}
	})

	t.Run("node scheduled twice", func(t *testing.T) {
		c := corrupt(t, s)
		v := c.Rows[len(c.Rows)-1][0]
		c.Rows[0] = append(c.Rows[0][:0:0], c.Rows[0]...)
		// Duplicate v into an empty-ish later position on a new row.
		c.Rows = append(c.Rows, []int{v})
		if err := c.Validate(); err == nil {
			t.Fatal("duplicate issue not detected")
		}
	})

	t.Run("missing node", func(t *testing.T) {
		c := corrupt(t, s)
		last := len(c.Rows) - 1
		v := c.Rows[last][0]
		c.Rows[last] = c.Rows[last][1:]
		// Cycle still claims v is scheduled; drop it from rows only.
		_ = v
		if err := c.Validate(); err == nil {
			t.Fatal("missing node not detected")
		}
	})

	t.Run("FU oversubscription", func(t *testing.T) {
		// Build a schedule on a 4-issue machine, then lie about the config:
		// claim only 1 unit per class while the schedule used 2.
		g := buildGraph(t, "DO I = 1, N\nA[I] = E[I] + F[I]\nB[I] = G[I] + H[I]\nENDDO")
		wide, err := List(g, dlx.Standard(4, 2), ProgramOrder)
		if err != nil {
			t.Fatal(err)
		}
		// Confirm some cycle really uses 2 load/store units.
		uses2 := false
		counts := map[int]int{}
		for v, cyc := range wide.Cycle {
			if wide.Prog.Instrs[v].Class() == dlx.LoadStore {
				counts[cyc]++
				if counts[cyc] > 1 {
					uses2 = true
				}
			}
		}
		if !uses2 {
			t.Skip("schedule did not exercise the second unit")
		}
		c := corrupt(t, wide)
		c.Cfg = dlx.Standard(4, 1)
		if err := c.Validate(); err == nil {
			t.Fatal("unit oversubscription not detected")
		}
	})

	t.Run("latency violation", func(t *testing.T) {
		// Validate a uniform-latency schedule against the real (mul=3)
		// latencies: the back-to-back multiply consumer must be flagged.
		g := buildGraph(t, fig1Source)
		uni, err := List(g, dlx.Uniform(4, 2), ProgramOrder)
		if err != nil {
			t.Fatal(err)
		}
		c := corrupt(t, uni)
		c.Cfg = dlx.Standard(4, 2)
		if err := c.Validate(); err == nil {
			t.Fatal("latency violation not detected")
		}
	})
}
