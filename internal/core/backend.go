package core

import (
	"doacross/internal/dfg"
	"doacross/internal/dlx"
)

// Outcome is what a scheduling backend returns: the schedule plus the
// optimality evidence an exact backend can attach. Heuristic backends leave
// Optimal false and LowerBound 0 (no bound proven); the branch-and-bound
// backend (internal/exact) fills every field.
type Outcome struct {
	// Schedule is the issue assignment the backend produced.
	Schedule *Schedule
	// T is the backend's objective value of Schedule — the paper's
	// T = (n/d)(i−j) + l predicted parallel time at the backend's reference
	// trip count (0 when the backend does not evaluate an objective).
	T int
	// Optimal reports that T is proven minimal over all feasible schedules
	// for the backend's objective. Heuristics never set it.
	Optimal bool
	// LowerBound is a proven lower bound on the optimal objective value
	// (0 = no bound proven). When Optimal, LowerBound == T.
	LowerBound int
	// Nodes counts backend search nodes expanded (0 for heuristics).
	Nodes int64
	// Note carries a human-readable qualification of the result, e.g. the
	// budget-exhaustion diagnostic of an anytime exact search.
	Note string
}

// Scheduler is the pluggable backend seam: the paper's Sig/Wat/Sigwat
// heuristic, the list baselines, the never-degrades Best pick and the exact
// branch-and-bound solver (internal/exact) all implement it, so every
// consumer — the facade, the batch pipeline, the CLIs and the conformance
// suite — schedules through one interface. Implementations must be
// deterministic (same graph + machine in, same schedule out) and safe for
// concurrent use.
type Scheduler interface {
	// Name identifies the backend ("sync", "list", "order", "best",
	// "exact") in results, cache salts and reports.
	Name() string
	// Schedule builds a schedule for one iteration of the graph's loop on
	// the machine. The returned schedule must pass Schedule.Validate; the
	// callers additionally run it through the independent verifier
	// (internal/check) before publication.
	Schedule(g *dfg.Graph, cfg dlx.Config) (*Outcome, error)
}

// ScratchScheduler is implemented by backends whose steady state can run
// allocation-free over caller-owned scratch state. The returned schedule is
// BORROWED from sc — its storage is recycled by sc's next scheduling call —
// so callers must Clone before retaining or publishing it. The batch
// pipeline type-asserts this interface and threads one Scratch per worker.
type ScratchScheduler interface {
	Scheduler
	// ScheduleScratch is Schedule without the Outcome wrapper, scheduling
	// into sc's reusable buffers.
	ScheduleScratch(sc *Scratch, g *dfg.Graph, cfg dlx.Config) (*Schedule, error)
}

// SyncScheduler is the paper's synchronization-aware heuristic behind the
// Scheduler seam.
type SyncScheduler struct {
	// Opts are the ablation knobs; the zero value is the paper's algorithm.
	Opts SyncOptions
}

// Name implements Scheduler.
func (SyncScheduler) Name() string { return "sync" }

// Schedule implements Scheduler.
func (b SyncScheduler) Schedule(g *dfg.Graph, cfg dlx.Config) (*Outcome, error) {
	s, err := SyncWithOptions(g, cfg, b.Opts)
	if err != nil {
		return nil, err
	}
	return &Outcome{Schedule: s}, nil
}

// ScheduleScratch implements ScratchScheduler.
func (b SyncScheduler) ScheduleScratch(sc *Scratch, g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return sc.SyncWithOptions(g, cfg, b.Opts)
}

// ListScheduler is the baseline list scheduler behind the Scheduler seam.
type ListScheduler struct {
	// Priority is the tie-breaking rule (CriticalPath or ProgramOrder).
	Priority ListPriority
}

// Name implements Scheduler.
func (b ListScheduler) Name() string {
	if b.Priority == ProgramOrder {
		return "order"
	}
	return "list"
}

// Schedule implements Scheduler.
func (b ListScheduler) Schedule(g *dfg.Graph, cfg dlx.Config) (*Outcome, error) {
	s, err := List(g, cfg, b.Priority)
	if err != nil {
		return nil, err
	}
	return &Outcome{Schedule: s}, nil
}

// ScheduleScratch implements ScratchScheduler.
func (b ListScheduler) ScheduleScratch(sc *Scratch, g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return sc.List(g, cfg, b.Priority)
}

// BestScheduler is the never-degrades pick (sync vs both list baselines)
// behind the Scheduler seam.
type BestScheduler struct{}

// Name implements Scheduler.
func (BestScheduler) Name() string { return "best" }

// Schedule implements Scheduler.
func (BestScheduler) Schedule(g *dfg.Graph, cfg dlx.Config) (*Outcome, error) {
	s, err := Best(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{Schedule: s}, nil
}

// ScheduleScratch implements ScratchScheduler.
func (BestScheduler) ScheduleScratch(sc *Scratch, g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return sc.Best(g, cfg)
}
