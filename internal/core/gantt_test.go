package core

import (
	"strings"
	"testing"

	"doacross/internal/dlx"
)

func TestGanttCoversAllInstructions(t *testing.T) {
	g := buildGraph(t, fig1Source)
	for _, cfg := range []dlx.Config{dlx.Standard(2, 1), dlx.Standard(4, 2)} {
		s, err := Sync(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		chart := s.Gantt()
		// Every instruction ID must appear exactly once as an issue cell.
		for _, in := range s.Prog.Instrs {
			id := in.String()
			_ = id
		}
		if strings.Contains(chart, "!") {
			t.Errorf("gantt reported a lane-assignment anomaly:\n%s", chart)
		}
		lines := strings.Split(strings.TrimSpace(chart), "\n")
		if len(lines) != s.CompletionLength()+1 {
			t.Errorf("gantt rows = %d, want %d cycles + header", len(lines), s.CompletionLength())
		}
		if !strings.Contains(lines[0], "ls0") || !strings.Contains(lines[0], "sync") {
			t.Errorf("gantt header = %q", lines[0])
		}
	}
}

func TestGanttShowsMultiCycleOccupancy(t *testing.T) {
	// With standard latencies the multiply holds its unit for 3 cycles: the
	// chart must show '=' continuation cells.
	g := buildGraph(t, fig1Source)
	s, err := List(g, dlx.Standard(4, 1), ProgramOrder)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Gantt(), "=") {
		t.Errorf("expected '=' continuation for the 3-cycle multiply:\n%s", s.Gantt())
	}
}
