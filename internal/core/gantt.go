package core

import (
	"fmt"
	"strings"

	"doacross/internal/dlx"
)

// Gantt renders the schedule as a per-cycle function-unit occupancy chart:
// one row per cycle, one lane per function-unit instance (plus a lane for
// synchronization operations, which use issue slots only). Instruction IDs
// mark issue; '=' marks a unit still busy with a multi-cycle operation.
func (s *Schedule) Gantt() string {
	type lane struct {
		class    dlx.Class
		instance int
	}
	var lanes []lane
	for cls := dlx.Class(0); cls < dlx.NumClasses; cls++ {
		if cls == dlx.Sync {
			continue
		}
		for k := 0; k < s.Cfg.Units[cls]; k++ {
			lanes = append(lanes, lane{class: cls, instance: k})
		}
	}
	syncLane := len(lanes)
	width := s.CompletionLength()
	// grid[lane][cycle] = cell text.
	grid := make([][]string, syncLane+1)
	for i := range grid {
		grid[i] = make([]string, width)
	}
	// Busy horizon per lane for greedy instance assignment.
	busyUntil := make([]int, syncLane)
	for _, row := range s.Rows {
		for _, v := range row {
			in := s.Prog.Instrs[v]
			c := s.Cycle[v]
			lat := s.Cfg.Latency[in.Class()]
			if in.Class() == dlx.Sync {
				cell := grid[syncLane][c]
				if cell != "" {
					cell += ","
				}
				grid[syncLane][c] = cell + fmt.Sprintf("%d", in.ID)
				continue
			}
			// Pick the first free instance lane of the class.
			placed := false
			for li, ln := range lanes {
				if ln.class != in.Class() || busyUntil[li] > c {
					continue
				}
				grid[li][c] = fmt.Sprintf("%d", in.ID)
				for k := c + 1; k < c+lat && k < width; k++ {
					grid[li][k] = "="
				}
				busyUntil[li] = c + lat
				placed = true
				break
			}
			if !placed {
				// Should be impossible for validated schedules; make the
				// anomaly visible rather than panicking.
				grid[syncLane][c] += fmt.Sprintf("!%d", in.ID)
			}
		}
	}
	shortName := map[dlx.Class]string{
		dlx.LoadStore: "ls", dlx.Integer: "int", dlx.Float: "fp",
		dlx.Multiplier: "mul", dlx.Divider: "div", dlx.Shifter: "shf",
	}
	var sb strings.Builder
	sb.WriteString("cycle")
	for _, ln := range lanes {
		fmt.Fprintf(&sb, " %5s", fmt.Sprintf("%s%d", shortName[ln.class], ln.instance))
	}
	sb.WriteString("  sync\n")
	for c := 0; c < width; c++ {
		fmt.Fprintf(&sb, "%5d", c)
		for li := range lanes {
			cell := grid[li][c]
			if cell == "" {
				cell = "."
			}
			fmt.Fprintf(&sb, " %5s", cell)
		}
		cell := grid[syncLane][c]
		if cell == "" {
			cell = "."
		}
		fmt.Fprintf(&sb, "  %s\n", cell)
	}
	return sb.String()
}
