// Package core implements the paper's contribution (§3.2): instruction
// scheduling for a superscalar-based multiprocessor executing DOACROSS
// loops. It provides
//
//   - List: classic resource-constrained list scheduling (the baseline the
//     paper compares against), which freely hoists Wait_Signals because they
//     have no data predecessors, and
//   - Sync: the new synchronization-aware scheduler, which converts
//     cross-component synchronization pairs to LFD (Sig graphs before, Wat
//     graphs after, all Sigwat graphs) and squeezes unavoidable LBDs to the
//     length of their synchronization path by scheduling SP nodes
//     contiguously, paths in descending (n/d)·|SP| order.
//
// Both schedulers respect the synchronization conditions by construction:
// they schedule over the dfg graph whose src→send and wait→snk arcs encode
// them.
package core

import (
	"fmt"
	"strings"

	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/tac"
)

// Schedule is a cycle-by-cycle issue assignment for one iteration's body.
type Schedule struct {
	Prog  *tac.Program
	Graph *dfg.Graph
	Cfg   dlx.Config
	// Cycle[node] is the 0-based issue cycle of each instruction.
	Cycle []int
	// Rows[c] lists the nodes issued at cycle c, in issue order.
	Rows [][]int
	// Method names the scheduler that produced this schedule.
	Method string
	// scratch, when non-nil, marks the Cycle/Rows storage as borrowed from a
	// Scratch buffer (recycled by that Scratch's next scheduling call). Clone
	// detaches; the package-level entry points always return detached
	// schedules.
	scratch *schedBuf
}

// Clone returns a deep copy of the schedule whose Cycle and Rows storage is
// owned by the caller (detached from any Scratch buffer). The Prog/Graph
// references are shared: both are immutable after construction.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.scratch = nil
	c.Cycle = append([]int(nil), s.Cycle...)
	total := 0
	for _, r := range s.Rows {
		total += len(r)
	}
	flat := make([]int, 0, total)
	c.Rows = make([][]int, len(s.Rows))
	for i, r := range s.Rows {
		if len(r) == 0 {
			c.Rows[i] = r // preserve nil-ness of empty rows
			continue
		}
		off := len(flat)
		flat = append(flat, r...)
		c.Rows[i] = flat[off:len(flat):len(flat)]
	}
	return &c
}

// Length returns the number of issue cycles (the paper's l, the instruction
// count of one scheduled iteration).
func (s *Schedule) Length() int { return len(s.Rows) }

// CompletionLength returns the cycle count until every instruction has
// completed (issue length plus trailing latency of the last finishers).
func (s *Schedule) CompletionLength() int {
	end := 0
	for v, c := range s.Cycle {
		fin := c + s.latency(v)
		if fin > end {
			end = fin
		}
	}
	return end
}

func (s *Schedule) latency(node int) int {
	return s.Cfg.Latency[s.Prog.Instrs[node].Class()]
}

// Occupancy returns, per function-unit class, the number of units busy in
// every cycle up to CompletionLength. Units are not pipelined — an
// instruction holds its unit for its full latency — matching Validate's
// resource model. Classes that need no unit (synchronization) are absent.
// Validate uses it for the oversubscription check and the simulator's
// tracer for empty-slot attribution.
func (s *Schedule) Occupancy() map[dlx.Class][]int {
	occupancy := map[dlx.Class][]int{}
	horizon := s.CompletionLength()
	for v := range s.Cycle {
		cls := s.Prog.Instrs[v].Class()
		if !dlx.NeedsUnit(cls) {
			continue
		}
		occ := occupancy[cls]
		if occ == nil {
			occ = make([]int, horizon)
			occupancy[cls] = occ
		}
		for c := s.Cycle[v]; c < s.Cycle[v]+s.latency(v); c++ {
			occ[c]++
		}
	}
	return occupancy
}

// PairSpan describes one synchronization pair's placement in the schedule.
type PairSpan struct {
	Signal string
	// Distance is the dependence distance d.
	Distance int
	// WaitCycle and SendCycle are issue cycles (j and i in the paper's
	// formula, measured in cycles rather than instruction positions).
	WaitCycle, SendCycle int
	// WaitNode and SendNode are the instruction indices.
	WaitNode, SendNode int
}

// LBD reports whether the pair remains lexically backward in the schedule:
// the send is not issued strictly before the wait.
func (p PairSpan) LBD() bool { return p.SendCycle >= p.WaitCycle }

// Span is i−j, the send-to-wait distance in cycles; only meaningful for LBD
// pairs (positive or zero).
func (p PairSpan) Span() int { return p.SendCycle - p.WaitCycle }

// PairSpans returns the placement of every synchronization pair, ordered by
// wait node index.
func (s *Schedule) PairSpans() []PairSpan {
	return s.PairSpansAppend(nil)
}

// PairSpansAppend appends the placement of every synchronization pair to dst
// and returns the extended slice — the allocation-free form of PairSpans for
// callers with a reusable buffer.
func (s *Schedule) PairSpansAppend(dst []PairSpan) []PairSpan {
	for v, in := range s.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := s.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		dst = append(dst, PairSpan{
			Signal:    in.Signal,
			Distance:  in.SigDist,
			WaitCycle: s.Cycle[v],
			SendCycle: s.Cycle[send.ID-1],
			WaitNode:  v,
			SendNode:  send.ID - 1,
		})
	}
	return dst
}

// NumLBD returns the number of synchronization pairs that remain LBD.
func (s *Schedule) NumLBD() int {
	n := 0
	for _, p := range s.PairSpans() {
		if p.LBD() {
			n++
		}
	}
	return n
}

// MaxLBDStall returns the worst per-iteration pipeline recurrence
// (n/d)·span over the remaining LBD pairs, normalized per iteration:
// max(span/d). This is the slope of the parallel execution time in n.
func (s *Schedule) MaxLBDStall() float64 {
	worst := 0.0
	for _, p := range s.PairSpans() {
		if !p.LBD() {
			continue
		}
		// The iteration-to-iteration recurrence advances d iterations per
		// span cycles (+1 cycle for the send to become visible).
		v := float64(p.Span()+1) / float64(p.Distance)
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Validate checks that the schedule is well formed: every node scheduled
// exactly once, dependence arcs respected with latencies, issue width and
// function-unit capacity never exceeded, and the synchronization conditions
// hold (they follow from the graph arcs, but Validate re-checks them
// directly as a second line of defense).
func (s *Schedule) Validate() error {
	n := s.Graph.N()
	if len(s.Cycle) != n {
		return fmt.Errorf("core: schedule covers %d of %d nodes", len(s.Cycle), n)
	}
	seen := make([]bool, n)
	for c, row := range s.Rows {
		if len(row) > s.Cfg.Issue {
			return fmt.Errorf("core: cycle %d issues %d > width %d", c, len(row), s.Cfg.Issue)
		}
		for _, v := range row {
			if seen[v] {
				return fmt.Errorf("core: node %d scheduled twice", v)
			}
			seen[v] = true
			if s.Cycle[v] != c {
				return fmt.Errorf("core: node %d cycle mismatch (%d vs row %d)", v, s.Cycle[v], c)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("core: node %d (instr %v) not scheduled", v, s.Prog.Instrs[v])
		}
	}
	// Dependence + latency.
	for _, a := range s.Graph.Arcs {
		if s.Cycle[a.To] < s.Cycle[a.From]+s.latency(a.From) {
			return fmt.Errorf("core: arc %v violated: %d -> %d with latency %d",
				a, s.Cycle[a.From], s.Cycle[a.To], s.latency(a.From))
		}
	}
	// Function-unit occupancy (units are not pipelined: an instruction holds
	// its unit for its full latency).
	for cls, occ := range s.Occupancy() {
		for c, busy := range occ {
			if busy > s.Cfg.Units[cls] {
				return fmt.Errorf("core: cycle %d oversubscribes %s units (%d > %d)",
					c, cls, busy, s.Cfg.Units[cls])
			}
		}
	}
	// Synchronization conditions.
	for _, in := range s.Prog.Instrs {
		switch in.Op {
		case tac.Send:
			// The send must follow every store of its source statement that
			// carries a synchronized dependence — covered by SrcToSend arcs,
			// re-checked via the arc loop above.
		case tac.Wait:
			// Covered by WaitToSnk arcs.
		}
	}
	return nil
}

// MaxLive returns the peak number of simultaneously live temps in the
// schedule: a temp is live from its defining instruction's issue until its
// last consumer issues. This is the register-pressure cost of a schedule —
// the tension with scheduling freedom that the paper's reference [7]
// (Goodman & Hsu) studies. Both schedulers can trade pressure for span;
// the report tables expose the trade.
func (s *Schedule) MaxLive() int {
	lastUse := map[int]int{} // temp -> last issue cycle of a consumer
	defAt := map[int]int{}
	for v, in := range s.Prog.Instrs {
		if in.Dst != 0 {
			defAt[in.Dst] = s.Cycle[v]
		}
		for _, t := range in.Uses() {
			if s.Cycle[v] > lastUse[t] {
				lastUse[t] = s.Cycle[v]
			}
		}
	}
	// Sweep cycles counting live intervals [def, lastUse].
	horizon := s.Length()
	delta := make([]int, horizon+2)
	for t, d := range defAt {
		end, used := lastUse[t]
		if !used {
			end = d // dead value: live for its def cycle only
		}
		delta[d]++
		if end+1 <= horizon+1 {
			delta[end+1]--
		}
	}
	live, peak := 0, 0
	for c := 0; c <= horizon; c++ {
		live += delta[c]
		if live > peak {
			peak = live
		}
	}
	return peak
}

// String renders the schedule in the paper's Fig. 4 style: one line per
// cycle listing issued instruction IDs, dashes for empty slots.
func (s *Schedule) String() string {
	var sb strings.Builder
	for _, row := range s.Rows {
		parts := make([]string, 0, s.Cfg.Issue)
		for _, v := range row {
			parts = append(parts, fmt.Sprintf("%d", s.Prog.Instrs[v].ID))
		}
		for len(parts) < s.Cfg.Issue {
			parts = append(parts, "-")
		}
		fmt.Fprintf(&sb, "(%s)\n", strings.Join(parts, ", "))
	}
	return sb.String()
}

// Listing renders the schedule with full instruction text per row.
func (s *Schedule) Listing() string {
	var sb strings.Builder
	for c, row := range s.Rows {
		fmt.Fprintf(&sb, "cycle %3d:", c)
		for _, v := range row {
			fmt.Fprintf(&sb, "  [%d] %s", s.Prog.Instrs[v].ID, s.Prog.Instrs[v])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Order returns the instructions in issue order (row by row, left to right).
func (s *Schedule) Order() []*tac.Instr {
	out := make([]*tac.Instr, 0, len(s.Cycle))
	for _, row := range s.Rows {
		for _, v := range row {
			out = append(out, s.Prog.Instrs[v])
		}
	}
	return out
}

// The shared resource-constrained cycle engine lives in scratch.go: it runs
// entirely over reusable Scratch state (merged CSR successors, per-class
// occupancy slices, a statically prioritized live list) and the package-level
// Sync/List/Best entry points below borrow a pooled Scratch and Clone the
// result.
