package core_test

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// compile builds the DFG for a loop source (external-test twin of the
// package-internal helper).
func compile(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	a := dep.Analyze(lang.MustParse(src))
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var ablationLoops = map[string]string{
	"fig1": `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`,
	"convertible": `DO I = 1, N
S1: C[I] = A[I-1] + D[I]
S2: A[I] = B[I] * 2
ENDDO`,
	"forward": `DO I = 1, N
S1: B[I] = A[I-3] + 1
S2: E[I] = B[I] * C[I]
S3: A[I] = E[I] - D[I+2]
ENDDO`,
	"reduction": `DO I = 1, N
S = S + A[I] * B[I]
ENDDO`,
}

// TestSyncOptionsAblation flips every SyncOptions knob individually (and all
// at once): each ablated scheduler must still emit a schedule that passes
// Validate on every loop/machine combination. The knobs may cost performance
// — that is their point — but never correctness.
func TestSyncOptionsAblation(t *testing.T) {
	cases := []struct {
		name string
		opt  core.SyncOptions
	}{
		{"paper", core.SyncOptions{}},
		{"no-pair-arcs", core.SyncOptions{NoPairArcs: true}},
		{"no-lazy-waits", core.SyncOptions{NoLazyWaits: true}},
		{"no-sp-priority", core.SyncOptions{NoSPPriority: true}},
		{"ascending-sp", core.SyncOptions{AscendingSP: true}},
		{"all-ablated", core.SyncOptions{
			NoPairArcs: true, NoLazyWaits: true, NoSPPriority: true, AscendingSP: true,
		}},
	}
	machines := append(dlx.PaperConfigs(), dlx.Uniform(2, 1))
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for name, src := range ablationLoops {
				g := compile(t, src)
				for _, cfg := range machines {
					s, err := core.SyncWithOptions(g, cfg, tc.opt)
					if err != nil {
						t.Fatalf("%s on %s: %v", name, cfg.Name, err)
					}
					if err := s.Validate(); err != nil {
						t.Errorf("%s on %s: invalid schedule: %v", name, cfg.Name, err)
					}
					// Every ablation must still simulate to completion.
					tm := sim.MustTime(s, sim.Options{Lo: 1, Hi: 25})
					if tm.Total <= 0 {
						t.Errorf("%s on %s: nonpositive simulated time %d", name, cfg.Name, tm.Total)
					}
				}
			}
		})
	}
}

// TestBestNeverWorseThanBaselines: Best must never simulate slower than
// either list-scheduling baseline — the paper's "never degrades the system
// performance" claim, checked by simulation rather than the analytic model.
func TestBestNeverWorseThanBaselines(t *testing.T) {
	const n = 100
	for name, src := range ablationLoops {
		g := compile(t, src)
		for _, cfg := range dlx.PaperConfigs() {
			best, err := core.Best(g, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, cfg.Name, err)
			}
			bestT := sim.MustTime(best, sim.Options{Lo: 1, Hi: n}).Total
			for _, pri := range []core.ListPriority{core.CriticalPath, core.ProgramOrder} {
				ls, err := core.List(g, cfg, pri)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, cfg.Name, err)
				}
				if lt := sim.MustTime(ls, sim.Options{Lo: 1, Hi: n}).Total; bestT > lt {
					t.Errorf("%s on %s: Best %d slower than list(%v) %d",
						name, cfg.Name, bestT, pri, lt)
				}
			}
		}
	}
}
