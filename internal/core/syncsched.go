package core

import (
	"doacross/internal/dfg"
	"doacross/internal/dlx"
)

// SyncOptions tunes the new scheduler; the zero value is the paper's
// algorithm. The knobs exist for the ablation benchmarks.
type SyncOptions struct {
	// NoPairArcs disables the artificial send→wait arcs that convert
	// cross-component pairs to LFD (the "Sig before / Wat after all Sigwat
	// graphs" rule).
	NoPairArcs bool
	// NoLazyWaits disables delaying each wait until its sink's other
	// operands are ready (the contiguous-synchronization-path rule applied
	// to the path head).
	NoLazyWaits bool
	// NoSPPriority disables the synchronization-path priority classes and
	// falls back to program order within the dependence constraints.
	NoSPPriority bool
	// AscendingSP sorts synchronization paths by ascending (n/d)·|SP|
	// instead of the paper's descending order (ablation).
	AscendingSP bool
}

// Sync builds the paper's synchronization-aware schedule.
func Sync(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return SyncWithOptions(g, cfg, SyncOptions{})
}

// SyncWithOptions builds the schedule with ablation knobs.
func SyncWithOptions(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) (*Schedule, error) {
	sc := scratchPool.Get().(*Scratch)
	s, err := sc.SyncWithOptions(g, cfg, opt)
	if err == nil {
		s = s.Clone()
	}
	scratchPool.Put(sc)
	return s, err
}

// Best builds the sync schedule and both list baselines and returns the one
// with the lowest predicted parallel time. This operationalizes the paper's
// claim that the technique "never degrades the system performance": on the
// rare loop shapes where the synchronization-path heuristic loses to plain
// list scheduling, the list schedule is kept.
func Best(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	sc := scratchPool.Get().(*Scratch)
	s, err := sc.Best(g, cfg)
	if err == nil {
		s = s.Clone()
	}
	scratchPool.Put(sc)
	return s, err
}

// Priority classes of the new scheduler, §3.2 order: synchronization paths
// first (rank by descending (n/d)·|SP|), then the remaining Sigwat nodes,
// then Sig graphs (their sends must land just before the partner waits —
// enforced by pair arcs; the early class keeps them from starving), then Wat
// graphs, then plain nodes.
const (
	classSig = iota
	classSP
	classSigwatRest
	classWat
	classPlain
	numClasses
)

// SpanReport summarizes how a schedule treats each synchronization pair —
// used by examples and the experiment tables.
type SpanReport struct {
	Pairs   []PairSpan
	NumLBD  int
	NumLFD  int
	Longest int // longest LBD span in cycles
}

// Report computes the span report of a schedule.
func Report(s *Schedule) SpanReport {
	r := SpanReport{Pairs: s.PairSpans()}
	for _, p := range r.Pairs {
		if p.LBD() {
			r.NumLBD++
			if p.Span() > r.Longest {
				r.Longest = p.Span()
			}
		} else {
			r.NumLFD++
		}
	}
	return r
}
