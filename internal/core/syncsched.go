package core

import (
	"sort"

	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/tac"
)

// SyncOptions tunes the new scheduler; the zero value is the paper's
// algorithm. The knobs exist for the ablation benchmarks.
type SyncOptions struct {
	// NoPairArcs disables the artificial send→wait arcs that convert
	// cross-component pairs to LFD (the "Sig before / Wat after all Sigwat
	// graphs" rule).
	NoPairArcs bool
	// NoLazyWaits disables delaying each wait until its sink's other
	// operands are ready (the contiguous-synchronization-path rule applied
	// to the path head).
	NoLazyWaits bool
	// NoSPPriority disables the synchronization-path priority classes and
	// falls back to program order within the dependence constraints.
	NoSPPriority bool
	// AscendingSP sorts synchronization paths by ascending (n/d)·|SP|
	// instead of the paper's descending order (ablation).
	AscendingSP bool
}

// Sync builds the paper's synchronization-aware schedule.
func Sync(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	return SyncWithOptions(g, cfg, SyncOptions{})
}

// Best builds the sync schedule and both list baselines and returns the one
// with the lowest predicted parallel time. This operationalizes the paper's
// claim that the technique "never degrades the system performance": on the
// rare loop shapes where the synchronization-path heuristic loses to plain
// list scheduling, the list schedule is kept.
func Best(g *dfg.Graph, cfg dlx.Config) (*Schedule, error) {
	var best *Schedule
	for _, mk := range []func() (*Schedule, error){
		func() (*Schedule, error) { return Sync(g, cfg) },
		func() (*Schedule, error) { return List(g, cfg, CriticalPath) },
		func() (*Schedule, error) { return List(g, cfg, ProgramOrder) },
	} {
		s, err := mk()
		if err != nil {
			return nil, err
		}
		if best == nil || betterThan(s, best) {
			best = s
		}
	}
	return best, nil
}

// betterThan compares schedules by predicted parallel time at a large and a
// small trip count (the recurrence slope dominates the first, the schedule
// length the second), strictly.
func betterThan(a, b *Schedule) bool {
	la, lb := predictTotal(a, 1024), predictTotal(b, 1024)
	if la != lb {
		return la < lb
	}
	return a.CompletionLength() < b.CompletionLength()
}

// predictTotal is the LBD-chain bound ⌊(n−1)/d⌋·(span+1) + l (the dynamic
// form of the paper's (n/d)·(i−j)+l), maximized over pairs.
func predictTotal(s *Schedule, n int) int {
	l := s.CompletionLength()
	best := l
	for _, p := range s.PairSpans() {
		if !p.LBD() {
			continue
		}
		if t := (n-1)/p.Distance*(p.Span()+1) + l; t > best {
			best = t
		}
	}
	return best
}

// SyncWithOptions builds the schedule with ablation knobs.
func SyncWithOptions(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) (*Schedule, error) {
	adder := newArcAdder(g)
	if !opt.NoPairArcs {
		// Provably safe Sig/Wat pair arcs first (the paper's rule).
		for _, a := range g.PairArcs() {
			adder.add(a)
		}
	}
	if !opt.NoLazyWaits {
		for _, a := range lazyWaitArcs(g) {
			adder.add(a)
		}
	}
	priority, err := syncPriority(g, cfg, opt)
	if err != nil {
		return nil, err
	}
	best, err := engine(g, cfg, adder.arcs, priority, "sync")
	if err != nil {
		return nil, err
	}
	if opt.NoPairArcs {
		return best, nil
	}
	// Extended LBD→LFD conversion: for each pair still scheduled backward,
	// tentatively force the send before the wait (if that keeps the graph
	// acyclic — e.g. a pair whose wait and send share a component only
	// through an address subexpression has no directed wait→send path) and
	// keep the arc only when the rescheduled result is no worse. Serializing
	// one pair can delay another pair's send, so each candidate is verified
	// rather than assumed.
	for i, in := range g.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		s := send.ID - 1
		if best.Cycle[s] < best.Cycle[i] {
			continue // already LFD
		}
		if !adder.add(dfg.Arc{From: s, To: i, Kind: dfg.SrcToSend}) {
			continue
		}
		cand, err := engine(g, cfg, adder.arcs, priority, "sync")
		if err != nil || !betterThan(cand, best) {
			adder.removeLast()
			continue
		}
		best = cand
	}
	return best, nil
}

// arcAdder accumulates extra scheduling arcs, accepting each candidate only
// if it keeps the augmented graph acyclic (checked by reachability over base
// + accepted arcs). Loop bodies are small, so the repeated DFS is cheap.
type arcAdder struct {
	g     *dfg.Graph
	succ  [][]int
	have  map[[2]int]bool
	arcs  []dfg.Arc
	stack []int
	mark  []bool
}

func newArcAdder(g *dfg.Graph) *arcAdder {
	n := g.N()
	a := &arcAdder{g: g, succ: make([][]int, n), have: map[[2]int]bool{}, mark: make([]bool, n)}
	for i := 0; i < n; i++ {
		a.succ[i] = append(a.succ[i], g.Succ[i]...)
	}
	for _, arc := range g.Arcs {
		a.have[[2]int{arc.From, arc.To}] = true
	}
	return a
}

// removeLast undoes the most recent successful add.
func (a *arcAdder) removeLast() {
	if len(a.arcs) == 0 {
		return
	}
	arc := a.arcs[len(a.arcs)-1]
	a.arcs = a.arcs[:len(a.arcs)-1]
	delete(a.have, [2]int{arc.From, arc.To})
	s := a.succ[arc.From]
	a.succ[arc.From] = s[:len(s)-1]
}

// add accepts the arc unless it already exists or would close a cycle.
func (a *arcAdder) add(arc dfg.Arc) bool {
	if arc.From == arc.To || a.have[[2]int{arc.From, arc.To}] {
		return false
	}
	if a.reaches(arc.To, arc.From) {
		return false
	}
	a.have[[2]int{arc.From, arc.To}] = true
	a.succ[arc.From] = append(a.succ[arc.From], arc.To)
	a.arcs = append(a.arcs, arc)
	return true
}

// reaches reports whether dst is reachable from src.
func (a *arcAdder) reaches(src, dst int) bool {
	if src == dst {
		return true
	}
	for i := range a.mark {
		a.mark[i] = false
	}
	a.stack = append(a.stack[:0], src)
	a.mark[src] = true
	for len(a.stack) > 0 {
		v := a.stack[len(a.stack)-1]
		a.stack = a.stack[:len(a.stack)-1]
		for _, w := range a.succ[v] {
			if w == dst {
				return true
			}
			if !a.mark[w] {
				a.mark[w] = true
				a.stack = append(a.stack, w)
			}
		}
	}
	return false
}

// lazyWaitArcs delays every wait as far as its synchronization path allows —
// the head end of the contiguous-SP rule. Two families of ordering arcs are
// generated (all filtered for acyclicity by the caller's arcAdder):
//
//  1. For each WaitToSnk arc w→k, every non-sync predecessor p of k that is
//     not a descendant of w gets an arc p→w: the wait issues only when its
//     sink's other operands are ready.
//  2. For each synchronization path SP(w, send), every ancestor a of a path
//     node that is outside the path (and not a descendant of w) gets an arc
//     a→w. Those ancestors lower-bound the send's issue time regardless of
//     where the wait sits, so ordering them before the wait shrinks the
//     wait→send span — the LBD cost (n/d)·(i−j) — without delaying the send.
func lazyWaitArcs(g *dfg.Graph) []dfg.Arc {
	var out []dfg.Arc
	for _, a := range g.Arcs {
		if a.Kind != dfg.WaitToSnk {
			continue
		}
		w, k := a.From, a.To
		desc := descendants(g, w)
		for _, p := range g.Pred[k] {
			if p == w || g.Prog.Instrs[p].IsSync() || desc[p] {
				continue
			}
			out = append(out, dfg.Arc{From: p, To: w, Kind: dfg.WaitToSnk})
		}
	}
	for _, sp := range g.SyncPaths() {
		w := sp.Wait
		desc := descendants(g, w)
		inPath := map[int]bool{}
		for _, v := range sp.Nodes {
			inPath[v] = true
		}
		seen := map[int]bool{}
		var anc []int
		for _, k := range sp.Nodes[1:] {
			for a := range g.Ancestors(k) {
				if seen[a] || inPath[a] || desc[a] || g.Prog.Instrs[a].IsSync() {
					continue
				}
				seen[a] = true
				anc = append(anc, a)
			}
		}
		sort.Ints(anc) // map iteration order must not leak into the schedule
		for _, a := range anc {
			out = append(out, dfg.Arc{From: a, To: w, Kind: dfg.WaitToSnk})
		}
	}
	return out
}

func descendants(g *dfg.Graph, node int) map[int]bool {
	out := map[int]bool{}
	stack := append([]int(nil), g.Succ[node]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[v] {
			continue
		}
		out[v] = true
		stack = append(stack, g.Succ[v]...)
	}
	return out
}

// Priority classes of the new scheduler, §3.2 order: synchronization paths
// first (rank by descending (n/d)·|SP|), then the remaining Sigwat nodes,
// then Sig graphs (their sends must land just before the partner waits —
// enforced by pair arcs; the early class keeps them from starving), then Wat
// graphs, then plain nodes.
const (
	classSig = iota
	classSP
	classSigwatRest
	classWat
	classPlain
	numClasses
)

func syncPriority(g *dfg.Graph, cfg dlx.Config, opt SyncOptions) ([]int, error) {
	n := g.N()
	priority := make([]int, n)
	if opt.NoSPPriority {
		for i := range priority {
			priority[i] = i
		}
		return priority, nil
	}
	// Per §3.2, nodes outside the synchronization paths are scheduled "by
	// the list scheduling": rank them by critical-path length within their
	// class. On a loop with no synchronization at all this makes the new
	// scheduler coincide with the critical-path baseline.
	cp, err := g.CriticalPathLengths(func(in *tac.Instr) int {
		return cfg.Latency[in.Class()]
	})
	if err != nil {
		return nil, err
	}
	const stride = 1 << 20
	class := make([]int, n)
	rank := make([]int, n)
	maxCP := 0
	for _, v := range cp {
		if v > maxCP {
			maxCP = v
		}
	}
	for i := 0; i < n; i++ {
		switch g.Component(g.ComponentOf(i)).Kind {
		case dfg.Sig:
			class[i] = classSig
		case dfg.Sigwat:
			class[i] = classSigwatRest
		case dfg.Wat:
			class[i] = classWat
		default:
			class[i] = classPlain
		}
		// Longer critical path = earlier; ties broken by program order.
		rank[i] = (maxCP-cp[i])*(n+1) + i
	}
	paths := g.SyncPaths()
	if opt.AscendingSP {
		rev := make([]dfg.SyncPath, len(paths))
		for i, p := range paths {
			rev[len(paths)-1-i] = p
		}
		paths = rev
	}
	// SP nodes: class classSP, ranked by (path rank, position in path).
	// Overlapping paths keep the rank of the higher-priority (earlier) path,
	// which schedules shared segments with the most critical path — the
	// paper's "scheduled simultaneously" rule for intersecting paths.
	seq := 0
	for _, p := range paths {
		for _, v := range p.Nodes {
			if class[v] == classSP {
				continue
			}
			class[v] = classSP
			rank[v] = seq
			seq++
		}
	}
	for i := 0; i < n; i++ {
		priority[i] = class[i]*stride + rank[i]
	}
	return priority, nil
}

// SpanReport summarizes how a schedule treats each synchronization pair —
// used by examples and the experiment tables.
type SpanReport struct {
	Pairs   []PairSpan
	NumLBD  int
	NumLFD  int
	Longest int // longest LBD span in cycles
}

// Report computes the span report of a schedule.
func Report(s *Schedule) SpanReport {
	r := SpanReport{Pairs: s.PairSpans()}
	for _, p := range r.Pairs {
		if p.LBD() {
			r.NumLBD++
			if p.Span() > r.Longest {
				r.Longest = p.Span()
			}
		} else {
			r.NumLFD++
		}
	}
	return r
}
