// Package diag defines the structured diagnostic type shared by every
// compilation layer (lang, dep, syncop, tac) and aggregated by the pass
// manager (internal/passes).
//
// A Diagnostic carries the source position the lexer tracked for the
// offending token or statement, the originating stage, and — when the error
// surfaces downstream of the parser — the label of the source statement it
// belongs to. Before this type, positions died at the parser boundary:
// internal/tac could only report "statement S2: unsupported expression",
// with no way back to the source line.
package diag

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

// Pos is a source position. The zero value (line 0) means "unknown".
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position is known.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position in the repo's historical "line L col C" form.
func (p Pos) String() string {
	if !p.IsValid() {
		return "?"
	}
	return fmt.Sprintf("line %d col %d", p.Line, p.Col)
}

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	// Error diagnostics abort the pipeline.
	Error Severity = iota
	// Warning diagnostics are collected but do not stop compilation (e.g.
	// conservative dependence assumptions).
	Warning
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic is one structured error or warning with its source position.
// It implements the error interface, so existing call sites that thread
// plain errors keep working; errors.As recovers the structure.
type Diagnostic struct {
	// Stage is the originating compilation stage ("lang", "dep", "syncop",
	// "tac", ...). It doubles as the message prefix, preserving the
	// repo's historical "lang: line 3 col 7: ..." error format.
	Stage string
	// Severity grades the diagnostic; errors returned from passes are
	// Severity Error.
	Severity Severity
	// Pos is the source position of the offending token or statement.
	Pos Pos
	// Stmt is the label of the source statement the diagnostic belongs to
	// ("S2"), or "" when the diagnostic is not tied to one statement.
	Stmt string
	// Msg is the human-readable message without prefix or position.
	Msg string
}

// Error renders the diagnostic, matching the historical error formats:
//
//	lang: line 3 col 7: expected expression, found ...
//	tac: line 2 col 5: statement S2: unsupported expression ...
//	dep: statement S1: conservative dependence assumed ...   (no position)
func (d *Diagnostic) Error() string {
	var sb strings.Builder
	if d.Stage != "" {
		sb.WriteString(d.Stage)
		sb.WriteString(": ")
	}
	if d.Pos.IsValid() {
		sb.WriteString(d.Pos.String())
		sb.WriteString(": ")
	}
	if d.Stmt != "" {
		fmt.Fprintf(&sb, "statement %s: ", d.Stmt)
	}
	sb.WriteString(d.Msg)
	return sb.String()
}

// Errorf builds an Error-severity diagnostic.
func Errorf(stage string, pos Pos, format string, args ...any) *Diagnostic {
	return &Diagnostic{Stage: stage, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Warningf builds a Warning-severity diagnostic.
func Warningf(stage string, pos Pos, format string, args ...any) *Diagnostic {
	return &Diagnostic{Stage: stage, Severity: Warning, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// FromPanic builds an Error diagnostic for a panic recovered in the named
// stage while processing the named request ("" when unknown). The stack is
// reduced to a short digest: full goroutine stacks are not stable across
// runs (addresses, goroutine ids), but the digest of their call-site lines
// is, so identical crash signatures aggregate while staying greppable.
func FromPanic(stage, request string, v any, stack []byte) *Diagnostic {
	msg := fmt.Sprintf("panic: %v [stack %s]", v, StackDigest(stack))
	if request != "" {
		msg = fmt.Sprintf("request %s: %s", request, msg)
	}
	return &Diagnostic{Stage: stage, Msg: msg}
}

// StackDigest hashes the call-site lines of a debug.Stack dump into a short
// stable signature. Lines carrying addresses, offsets or goroutine ids are
// normalized away so two panics from the same site share a digest.
func StackDigest(stack []byte) string {
	h := sha256.New()
	for _, line := range strings.Split(string(stack), "\n") {
		line = strings.TrimSpace(line)
		// Keep only function-name lines ("pkg.Func(...)"); file:line rows
		// carry hex offsets and goroutine headers carry ids.
		if line == "" || strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if i := strings.IndexByte(line, '('); i > 0 {
			line = line[:i]
		} else if strings.Contains(line, ":") {
			continue
		}
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:12]
}

// WithStmt returns a copy of the diagnostic attributed to the labeled
// statement.
func (d *Diagnostic) WithStmt(label string) *Diagnostic {
	cp := *d
	cp.Stmt = label
	return &cp
}

// As extracts the structured diagnostic from an error chain, if present.
func As(err error) (*Diagnostic, bool) {
	var d *Diagnostic
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// List is an ordered collection of diagnostics.
type List []*Diagnostic

// Errors returns the Error-severity subset.
func (l List) Errors() List {
	var out List
	for _, d := range l {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns the Warning-severity subset.
func (l List) Warnings() List {
	var out List
	for _, d := range l {
		if d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// String renders one diagnostic per line ("severity: message").
func (l List) String() string {
	var sb strings.Builder
	for _, d := range l {
		fmt.Fprintf(&sb, "%s: %s\n", d.Severity, d.Error())
	}
	return sb.String()
}
