package diag

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestPos(t *testing.T) {
	if (Pos{}).IsValid() {
		t.Error("zero Pos is valid")
	}
	p := Pos{Line: 3, Col: 7}
	if !p.IsValid() {
		t.Error("Pos{3,7} invalid")
	}
	if got := p.String(); got != "line 3 col 7" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestErrorFormat(t *testing.T) {
	d := Errorf("lang", Pos{Line: 2, Col: 5}, "unexpected %q", ",")
	want := `lang: line 2 col 5: unexpected ","`
	if d.Error() != want {
		t.Errorf("Error() = %q, want %q", d.Error(), want)
	}
	if d.Severity != Error {
		t.Error("Errorf did not set Error severity")
	}
	// WithStmt threads the statement label into the message.
	d2 := Errorf("syncop", Pos{Line: 4, Col: 1}, "bad op").WithStmt("S2")
	if got := d2.Error(); !strings.Contains(got, "statement S2") {
		t.Errorf("WithStmt missing from %q", got)
	}
	// A positionless diagnostic omits the position clause.
	d3 := Errorf("tac", Pos{}, "boom")
	if got := d3.Error(); strings.Contains(got, "line") {
		t.Errorf("zero position rendered: %q", got)
	}
}

func TestAs(t *testing.T) {
	d := Errorf("lang", Pos{Line: 1, Col: 1}, "x")
	wrapped := fmt.Errorf("outer: %w", d)
	got, ok := As(wrapped)
	if !ok || got.Stage != "lang" || got.Pos.Line != 1 {
		t.Errorf("As(wrapped) = %v, %v", got, ok)
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Error("As matched a plain error")
	}
	if _, ok := As(nil); ok {
		t.Error("As matched nil")
	}
}

func TestList(t *testing.T) {
	var l List
	l = append(l, Errorf("lang", Pos{Line: 1, Col: 1}, "e1"))
	l = append(l, Warningf("dep", Pos{Line: 2, Col: 3}, "w1"))
	l = append(l, Errorf("tac", Pos{Line: 3, Col: 1}, "e2"))
	if n := len(l.Errors()); n != 2 {
		t.Errorf("Errors() = %d, want 2", n)
	}
	if n := len(l.Warnings()); n != 1 {
		t.Errorf("Warnings() = %d, want 1", n)
	}
	s := l.String()
	for _, want := range []string{"e1", "w1", "e2"} {
		if !strings.Contains(s, want) {
			t.Errorf("List.String() missing %q:\n%s", want, s)
		}
	}
}

func TestFromPanic(t *testing.T) {
	stack := []byte(`goroutine 17 [running]:
runtime/debug.Stack()
	/usr/local/go/src/runtime/debug/stack.go:26 +0x64
doacross/internal/passes.(*Pipeline).runPass.func1()
	/root/repo/internal/passes/pipeline.go:199 +0x84
doacross/internal/passes.analyzePass.Run(...)
	/root/repo/internal/passes/passes.go:140
`)
	d := FromPanic("analyze", "loop3", "index out of range", stack)
	if d.Stage != "analyze" || d.Severity != Error {
		t.Errorf("FromPanic stage/severity = %q/%v", d.Stage, d.Severity)
	}
	for _, want := range []string{"request loop3", "panic: index out of range", "stack "} {
		if !strings.Contains(d.Msg, want) {
			t.Errorf("FromPanic message %q missing %q", d.Msg, want)
		}
	}
	// Without a request label the clause is omitted.
	if d2 := FromPanic("schedule", "", "boom", stack); strings.Contains(d2.Msg, "request") {
		t.Errorf("empty request rendered: %q", d2.Msg)
	}
}

func TestStackDigest(t *testing.T) {
	mk := func(goroutine, addr1, addr2 string) []byte {
		return []byte("goroutine " + goroutine + " [running]:\n" +
			"pkg.A(0x" + addr1 + ")\n\t/src/a.go:10 +0x" + addr1 + "\n" +
			"pkg.B(0x" + addr2 + ")\n\t/src/b.go:20 +0x" + addr2 + "\n")
	}
	a := StackDigest(mk("7", "c0de", "beef"))
	// Same call sites, different goroutine id, addresses and offsets: the
	// digest must not move.
	b := StackDigest(mk("42", "1234", "5678"))
	if a != b {
		t.Errorf("digest unstable across runs: %q vs %q", a, b)
	}
	if len(a) != 12 {
		t.Errorf("digest length = %d, want 12", len(a))
	}
	// A different call chain digests differently.
	c := StackDigest([]byte("goroutine 7 [running]:\npkg.C(0x1)\n\t/src/c.go:30 +0x1\n"))
	if c == a {
		t.Error("distinct stacks share a digest")
	}
}
