// Package bitset provides a dense []uint64 bit set used by the hot
// scheduling paths in place of map[int]bool membership sets. The zero-value
// Bits is empty; Make grows a caller-owned buffer so steady-state reuse
// allocates nothing once the buffer has reached the working-set size.
package bitset

import "math/bits"

// Bits is a fixed-universe bit set over [0, 64·len(b)).
type Bits []uint64

// Words returns the number of 64-bit words needed for a universe of n bits.
func Words(n int) int { return (n + 63) >> 6 }

// Make returns a zeroed set able to hold n bits, reusing buf's backing
// array when it is large enough (the common steady-state case).
func Make(buf Bits, n int) Bits {
	w := Words(n)
	if cap(buf) < w {
		return make(Bits, w)
	}
	b := buf[:w]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Set adds i to the set.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b Bits) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (b Bits) Has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset empties the set in place.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
