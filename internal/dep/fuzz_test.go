package dep

import (
	"errors"
	"testing"

	"doacross/internal/lang"
	"doacross/internal/loopgen"
)

// FuzzDepOracle cross-validates the analyzer — precise and baseline modes —
// against the brute-force memory-trace oracle over generated loops of every
// shape: affine, coupled-coefficient, symbolic-offset, non-affine and
// guard-dependent. Any divergence (refuted independence, missed or phantom
// exact dependence, evidence that fails its own re-check) is an analyzer bug
// and fails the fuzz run.
func FuzzDepOracle(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		for shape := 0; shape < 6; shape++ {
			f.Add(seed, uint8(shape), uint8(seed%5), seed%2 == 0, uint8(seed), seed*77+1)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint64, shape, stmts uint8, constBounds bool, n uint8, storeSeed uint64) {
		opt := loopgen.Options{
			Shape:       loopgen.Shape(int(shape) % 6),
			Stmts:       1 + int(stmts)%4,
			ConstBounds: constBounds,
		}
		src := loopgen.Generate(seed, opt)
		loop, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("generated source does not parse: %v\n%s", err, src)
		}
		trip := 4 + int(n)%12
		for _, baseline := range []bool{false, true} {
			a := AnalyzeOpts(loop, Options{Baseline: baseline})
			err := a.ValidateOracle(trip, storeSeed|1)
			if errors.Is(err, ErrUntraceable) {
				continue
			}
			if err != nil {
				t.Fatalf("baseline=%v: %v\n%s", baseline, err, src)
			}
		}
	})
}
