package dep

import (
	"strings"
	"testing"

	"doacross/internal/lang"
)

func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	return Analyze(lang.MustParse(src))
}

func pairFor(a *Analysis, nameA, nameB string, stmtA, stmtB int) *PairDecision {
	for i := range a.Pairs {
		p := &a.Pairs[i]
		if p.A.Name() == nameA && p.B.Name() == nameB && p.A.Stmt == stmtA && p.B.Stmt == stmtB {
			return p
		}
	}
	return nil
}

// oracle runs the brute-force memory-trace cross-validation over a few
// iteration-space sizes and seeds; any disagreement is an analyzer bug.
func oracle(t *testing.T, a *Analysis) {
	t.Helper()
	for _, n := range []int{4, 7, 12} {
		for seed := uint64(1); seed <= 3; seed++ {
			if err := a.ValidateOracle(n, seed); err != nil {
				t.Fatalf("oracle (n=%d seed=%d): %v", n, seed, err)
			}
		}
	}
}

// TestSymbolicSameElement: A[J] with loop-invariant J is one fixed location;
// the seed analyzer assumed a conservative web, the precise engine proves
// the exact scalar-style web.
func TestSymbolicSameElement(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[J] = A[J] + B[I]
ENDDO
`)
	if n := a.CountConservative(); n != 0 {
		t.Fatalf("conservative deps = %d, want 0 (A[J] is a fixed location): %v", n, a.Deps)
	}
	// Reduction shape: carried flow S1->S1 dist 1 plus same-iteration anti.
	if find(a.Deps, Flow, 0, 0, 1) == nil || find(a.Deps, Anti, 0, 0, 0) == nil {
		t.Fatalf("missing exact reduction web, have %v", a.Deps)
	}
	p := pairFor(a, "A", "A", 0, 0)
	if p == nil || p.Verdict != VerdictExact || p.Evidence.Rule != RuleSameElement {
		t.Fatalf("pair decision = %+v, want exact same-element", p)
	}
	oracle(t, a)
}

// TestConstantElementWeb: A[3] vs A[3] across statements was the seed's
// conservative blind spot (coefficient zero); precise proves the web exact.
func TestConstantElementWeb(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[3] = B[I] + 1
  S2: C[I] = A[3] * 2
ENDDO
`)
	if n := a.CountConservative(); n != 0 {
		t.Fatalf("conservative deps = %d, want 0: %v", n, a.Deps)
	}
	if find(a.Deps, Flow, 0, 1, 0) == nil || find(a.Deps, Anti, 1, 0, 1) == nil {
		t.Fatalf("missing exact same-element web, have %v", a.Deps)
	}
	oracle(t, a)
}

// TestCoupledSymbolicDistance: A[I+J] vs A[I+J-2] — the symbolic terms
// cancel, leaving an exact distance-2 flow dependence.
func TestCoupledSymbolicDistance(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[I+J] = B[I]
  S2: C[I] = A[I+J-2]
ENDDO
`)
	if n := a.CountConservative(); n != 0 {
		t.Fatalf("conservative deps = %d, want 0: %v", n, a.Deps)
	}
	d := find(a.Deps, Flow, 0, 1, 2)
	if d == nil {
		t.Fatalf("missing flow S1->S2 dist 2, have %v", a.Deps)
	}
	if d.Evidence.Rule != RuleUniformStride {
		t.Fatalf("evidence rule = %s, want uniform-stride", d.Evidence.Rule)
	}
	w := d.Evidence.Witness
	if w.SnkIter-w.SrcIter != 2 {
		t.Fatalf("witness %+v does not span distance 2", w)
	}
	oracle(t, a)
}

// TestSymbolicIndependence: A[J+1] vs A[J-1] differ by a constant 2 with
// stride 0 — provably distinct elements, no dependence at all.
func TestSymbolicIndependence(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[J+1] = B[I]
  S2: C[I] = A[J-1]
ENDDO
`)
	if len(a.Deps) != 0 {
		t.Fatalf("deps = %v, want none", a.Deps)
	}
	p := pairFor(a, "A", "A", 0, 1)
	if p == nil || p.Verdict != VerdictIndependent || p.Evidence.Rule != RuleDistinctElem {
		t.Fatalf("pair decision = %+v, want independent distinct-elements", p)
	}
	oracle(t, a)
}

// TestGCDIndependence: A[2*I] vs A[2*I+1] — even vs odd elements; the GCD
// certificate proves independence where the seed only had the cheap disproof
// for differing strides.
func TestGCDIndependence(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[2*I] = B[I]
  S2: C[I] = A[2*I+1]
ENDDO
`)
	if len(a.Deps) != 0 {
		t.Fatalf("deps = %v, want none", a.Deps)
	}
	p := pairFor(a, "A", "A", 0, 1)
	if p == nil || p.Verdict != VerdictIndependent || p.Evidence.Rule != RuleGCD {
		t.Fatalf("pair decision = %+v, want independent gcd", p)
	}
	if p.Evidence.Div != 2 || p.Evidence.Rem != 1 {
		t.Fatalf("gcd certificate = div %d rem %d, want 2,1", p.Evidence.Div, p.Evidence.Rem)
	}
	oracle(t, a)
}

// TestDiophantineEnumeration: A[2*I] vs A[I+3] over constant bounds — the
// seed assumed a conservative both-direction web; the precise engine
// enumerates the collisions exactly and direction-prunes what is refutable.
func TestDiophantineEnumeration(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, 6
  S1: A[2*I] = B[I]
  S2: C[I] = A[I+3]
ENDDO
`)
	if n := a.CountConservative(); n != 0 {
		t.Fatalf("conservative deps = %d, want 0: %v", n, a.Deps)
	}
	// Collisions 2x = y+3 in [1,6]^2: (2,1),(3,3),(4,5) → gaps -1, 0, +1.
	if find(a.Deps, Flow, 0, 1, 1) == nil {
		t.Errorf("missing flow S1->S2 dist 1, have %v", a.Deps)
	}
	if find(a.Deps, Flow, 0, 1, 0) == nil {
		t.Errorf("missing loop-independent flow S1->S2, have %v", a.Deps)
	}
	if find(a.Deps, Anti, 1, 0, 1) == nil {
		t.Errorf("missing anti S2->S1 dist 1, have %v", a.Deps)
	}
	if len(a.Deps) != 3 {
		t.Errorf("deps = %v, want exactly the three enumerated arcs", a.Deps)
	}
	p := pairFor(a, "A", "A", 0, 1)
	if p == nil || p.Evidence.Rule != RuleDiophantine {
		t.Fatalf("pair decision = %+v, want diophantine", p)
	}
	oracle(t, a)
}

// TestBoundSeparation: with constant bounds 1..4 a distance-6 dependence
// cannot connect two in-range iterations — Banerjee-style separation proves
// independence where the subscripts alone would admit a dependence.
func TestBoundSeparation(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, 4
  S1: A[I] = B[I]
  S2: C[I] = A[I-6]
ENDDO
`)
	p := pairFor(a, "A", "A", 0, 1)
	if p == nil || p.Verdict != VerdictIndependent || p.Evidence.Rule != RuleBoundSep {
		t.Fatalf("pair decision = %+v, want independent bound-separation", p)
	}
	if find(a.Deps, Flow, 0, 1, 6) != nil {
		t.Fatalf("distance-6 dependence emitted despite 4-iteration bounds: %v", a.Deps)
	}
	oracle(t, a)
}

// TestConservativeResidue: genuinely undecidable shapes stay conservative,
// each with its reason.
func TestConservativeResidue(t *testing.T) {
	cases := []struct {
		name, src string
		rule      Rule
	}{
		{"indirect", "DO I = 1, N\n S1: A[IX[I]] = B[I]\n S2: C[I] = A[I]\nENDDO\n", RuleNonAffine},
		{"quadratic", "DO I = 1, N\n S1: A[I*I] = B[I]\n S2: C[I] = A[I]\nENDDO\n", RuleNonAffine},
		{"symbol-mismatch", "DO I = 1, N\n S1: A[I+J] = B[I]\n S2: C[I] = A[I+K]\nENDDO\n", RuleSymbolMismatch},
		{"unbounded-stride", "DO I = 1, N\n S1: A[2*I] = B[I]\n S2: C[I] = A[I]\nENDDO\n", RuleUnboundedStride},
		{"written-symbol", "DO I = 1, N\n S1: J = J + 1\n S2: A[J] = B[I]\n S3: C[I] = A[J]\nENDDO\n", RuleNonAffine},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := analyzeSrc(t, tc.src)
			found := false
			for _, d := range a.Deps {
				if d.Conservative && d.Evidence.Rule == tc.rule {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no conservative dependence with rule %s; deps %v", tc.rule, a.Deps)
			}
			oracle(t, a)
		})
	}
}

// TestBaselineReproducesSeed: baseline mode must match the seed analyzer's
// verdicts — conservative where the seed was conservative, exact where it
// was exact — so the precision audit compares against the true seed.
func TestBaselineReproducesSeed(t *testing.T) {
	srcs := []string{
		fig1Source,
		"DO I = 1, N\n S1: A[J] = A[J] + B[I]\nENDDO\n",
		"DO I = 1, 6\n S1: A[2*I] = B[I]\n S2: C[I] = A[I+3]\nENDDO\n",
		"DO I = 1, N\n S1: A[3] = B[I]\n S2: C[I] = A[3]\nENDDO\n",
	}
	for _, src := range srcs {
		base := AnalyzeOpts(lang.MustParse(src), Options{Baseline: true})
		prec := Analyze(lang.MustParse(src))
		// The baseline is never *more* precise than the engine.
		if base.CountConservative() < prec.CountConservative() {
			t.Errorf("%sbaseline conservative %d < precise %d", src, base.CountConservative(), prec.CountConservative())
		}
		if err := base.CheckEvidence(); err != nil {
			t.Errorf("baseline evidence: %v", err)
		}
	}
	// Spot-check the seed's signature behaviors.
	base := AnalyzeOpts(lang.MustParse("DO I = 1, N\n S1: A[3] = B[I]\n S2: C[I] = A[3]\nENDDO\n"), Options{Baseline: true})
	if base.CountConservative() == 0 {
		t.Error("baseline must keep A[3] vs A[3] conservative like the seed")
	}
	base = AnalyzeOpts(lang.MustParse(fig1Source), Options{Baseline: true})
	if base.CountConservative() != 0 {
		t.Errorf("baseline fig1 must be fully exact, got %v", base.Deps)
	}
	if find(base.Deps, Flow, 2, 0, 2) == nil {
		t.Errorf("baseline fig1 lost the distance-2 dependence: %v", base.Deps)
	}
}

// TestFig1FamilyDirectionPruning is the satellite regression: Fig. 1 kernel
// variants whose symmetric conservative pairs are now refuted in one
// direction must emit deduplicated, direction-pruned exact arcs — and the
// surviving schedule constraints must still cover the oracle's trace.
func TestFig1FamilyDirectionPruning(t *testing.T) {
	// Fig. 1 with constant bounds and a strided read: the seed emitted the
	// symmetric conservative web for the (A[I], A[2*I-7]) pair; collisions
	// 2y-7 = x in [1,6]^2 are (1,4),(3,5),(5,6) — all flow direction, the
	// anti direction is refutable.
	src := `
DO I = 1, 6
  S1: B[I] = A[2*I-7] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`
	a := analyzeSrc(t, src)
	base := AnalyzeOpts(lang.MustParse(src), Options{Baseline: true})
	if base.CountConservative() == 0 {
		t.Fatal("seed baseline should be conservative on A[I] vs A[2*I-7]")
	}
	if n := a.CountConservative(); n != 0 {
		t.Fatalf("precise engine left %d conservative deps: %v", n, a.Deps)
	}
	// Direction pruning: only flow S3->S1 arcs (distances 3, 2, 1 at the
	// three collisions), no anti S1->S3 arc.
	for _, d := range a.Deps {
		if d.Kind == Anti && d.Src.Stmt == 0 && d.Snk.Stmt == 2 && d.Src.Name() == "A" {
			t.Errorf("refutable anti direction not pruned: %v", d)
		}
	}
	for _, dist := range []int{1, 2, 3} {
		if find(a.Deps, Flow, 2, 0, dist) == nil {
			t.Errorf("missing enumerated flow S3->S1 dist %d: %v", dist, a.Deps)
		}
	}
	// Dedup: each (kind, src, snk, dist) at most once.
	seen := map[string]bool{}
	for _, d := range a.Deps {
		k := d.String()
		if seen[k] {
			t.Errorf("duplicate dependence %v", d)
		}
		seen[k] = true
	}
	oracle(t, a)
}

// TestEvidenceCheckRejectsTampering: flipping any certificate field must
// fail the machine check — the evidence is load-bearing, not decorative.
func TestEvidenceCheckRejectsTampering(t *testing.T) {
	a := analyzeSrc(t, `
DO I = 1, N
  S1: A[2*I] = B[I]
  S2: C[I] = A[2*I+1]
ENDDO
`)
	p := pairFor(a, "A", "A", 0, 1)
	if p == nil {
		t.Fatal("missing pair decision")
	}
	if err := p.Check(a.Loop); err != nil {
		t.Fatalf("genuine evidence rejected: %v", err)
	}
	bad := *p
	bad.Evidence.Rem = 0
	if err := bad.Check(a.Loop); err == nil {
		t.Error("tampered GCD certificate accepted")
	}
	a2 := analyzeSrc(t, "DO I = 1, N\n S1: A[I] = A[I-2]\nENDDO\n")
	var ex *PairDecision
	for i := range a2.Pairs {
		if a2.Pairs[i].Verdict == VerdictExact && a2.Pairs[i].Evidence.Rule == RuleUniformStride {
			ex = &a2.Pairs[i]
		}
	}
	if ex == nil {
		t.Fatal("missing uniform-stride decision")
	}
	bad2 := *ex
	bad2.Evidence.Witness.SnkIter += 5
	if err := bad2.Check(a2.Loop); err == nil {
		t.Error("tampered witness accepted")
	}
}

// TestOracleCatchesWrongVerdicts: hand-corrupting an analysis must be caught
// by the trace diff — the oracle is a real refuter, not a rubber stamp.
func TestOracleCatchesWrongVerdicts(t *testing.T) {
	a := analyzeSrc(t, "DO I = 1, N\n S1: A[I] = B[I]\n S2: C[I] = A[I-2]\nENDDO\n")
	// Corrupt: claim the pair independent and drop its dependences.
	for i := range a.Pairs {
		if a.Pairs[i].A.Name() == "A" && a.Pairs[i].B.Name() == "A" {
			a.Pairs[i].Verdict = VerdictIndependent
			a.Pairs[i].Evidence = Evidence{Rule: RuleDistinctElem}
		}
	}
	err := a.ValidateOracle(6, 1)
	if err == nil {
		t.Fatal("oracle accepted a falsified independence verdict")
	}
	if !strings.Contains(err.Error(), "refuted") && !strings.Contains(err.Error(), "rule") {
		t.Fatalf("unexpected oracle error: %v", err)
	}

	// Corrupt: shift an exact distance.
	a2 := analyzeSrc(t, "DO I = 1, N\n S1: A[I] = B[I]\n S2: C[I] = A[I-2]\nENDDO\n")
	for i := range a2.Deps {
		if a2.Deps[i].Kind == Flow && a2.Deps[i].Distance == 2 {
			a2.Deps[i].Distance = 3
			a2.Deps[i].Evidence.Witness.SnkIter++
		}
	}
	if err := a2.ValidateOracle(6, 1); err == nil {
		t.Fatal("oracle accepted a falsified exact distance")
	}
}

// TestCorpusOracle sweeps the kernel-style shapes the repo schedules through
// the oracle, including guard-dependent and merge-load cases.
func TestCorpusOracle(t *testing.T) {
	srcs := []string{
		fig1Source,
		"DO I = 1, N\n S1: A[I] = A[I-1] + 1\nENDDO\n",
		"DO I = 1, N\n S1: IF (A[I-1] > 0) A[I] = B[I]\nENDDO\n",
		"DO I = 1, N\n S1: S = S + A[I]\nENDDO\n",
		"DO I = 2, 9\n S1: A[2*I] = B[I]\n S2: B[I+1] = A[I] * 2\nENDDO\n",
		"DO I = 1, N\n S1: A[I+J] = A[I+J-1] + C[J]\nENDDO\n",
		"DO I = 1, N\n S1: IF (I > 3) A[J] = A[J] + B[I]\nENDDO\n",
		"DO I = 1, 8\n S1: A[3*I-2] = B[I]\n S2: C[I] = A[2*I+1]\nENDDO\n",
	}
	for _, src := range srcs {
		a := analyzeSrc(t, src)
		oracle(t, a)
		if err := a.CheckEvidence(); err != nil {
			t.Errorf("%s: evidence: %v", src, err)
		}
	}
}
