package dep

import "doacross/internal/lang"

const (
	// maxGaps caps how many distinct exact distances the engine will emit as
	// individual arcs for one reference pair; solution sets wider than this
	// stay conservative (RuleDistanceSpread).
	maxGaps = 8
	// enumTrip caps the constant trip count the Diophantine enumeration
	// walks; larger constant-bound loops with differing strides stay
	// conservative rather than spending quadratic work.
	enumTrip = 64
)

// form caches a reference's reduced subscript: the affine form over the
// induction variable and loop-invariant symbols, or ok=false when the
// subscript is non-linear or uses a symbol written inside the loop body.
type form struct {
	f  lang.AffineForm
	ok bool
}

// decision is the outcome of the decision procedure for one reference pair.
type decision struct {
	verdict Verdict
	ev      Evidence
	// web marks an exact fixed-location pair (same element every iteration):
	// the emitter produces the scalar-style distance-0/1 web instead of
	// per-distance arcs.
	web bool
	// gaps[:ngaps] are the exact iteration gaps (B touches A's element gap
	// iterations after A; negative means before), each witnessed by A
	// executing at iteration wit[k].
	ngaps int
	gaps  [maxGaps]int
	wit   [maxGaps]int
}

func conservativeDecision(rule Rule) decision {
	return decision{verdict: VerdictConservative, ev: Evidence{Rule: rule}}
}

// baseIter is the canonical witness base iteration: the constant lower bound
// when known, otherwise the normalized 1.
func (a *Analysis) baseIter() int {
	if a.bounded {
		return a.lo
	}
	return 1
}

// witBase picks an A-iteration from which both witness iterations are inside
// the (known or normalized) iteration range for the given gap.
func (a *Analysis) witBase(gap int) int {
	b := a.baseIter()
	if gap < 0 {
		b -= gap
	}
	return b
}

// decideArray runs the decision procedure for one array reference pair whose
// subscripts reduced to fw and fx. In baseline mode it reproduces the seed
// analyzer's syntactic matching exactly.
func (a *Analysis) decideArray(fw, fx form) decision {
	if a.opt.Baseline {
		return a.decideBaseline(fw, fx)
	}
	if !fw.ok || !fx.ok {
		return conservativeDecision(RuleNonAffine)
	}
	if !fw.f.SymsEqual(fx.f) {
		return conservativeDecision(RuleSymbolMismatch)
	}
	// Equal symbolic parts cancel in the subscript difference; from here the
	// pair behaves like pure affine subscripts ca*i+oa vs cb*i+ob.
	ca, oa := fw.f.Coef, fw.f.Off
	cb, ob := fx.f.Coef, fx.f.Off
	if ca == cb {
		if ca == 0 {
			if oa == ob {
				b := a.baseIter()
				return decision{verdict: VerdictExact, web: true,
					ev: Evidence{Rule: RuleSameElement, Witness: Witness{SrcIter: b, SnkIter: b, Elem: oa}}}
			}
			return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleDistinctElem}}
		}
		diff := oa - ob
		if diff%ca != 0 {
			g := abs(ca)
			return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleGCD, Div: g, Rem: mod(ob-oa, g)}}
		}
		gap := diff / ca
		if a.bounded && abs(gap) > a.hi-a.lo {
			// Bound separation: the unique collision distance exceeds the
			// constant iteration range, so no two in-range iterations collide.
			return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleBoundSep, Lo: a.lo, Hi: a.hi}}
		}
		d := decision{verdict: VerdictExact, ngaps: 1}
		d.gaps[0], d.wit[0] = gap, a.witBase(gap)
		d.ev = Evidence{Rule: RuleUniformStride,
			Witness: Witness{SrcIter: d.wit[0], SnkIter: d.wit[0] + gap, Elem: ca*d.wit[0] + oa}}
		return d
	}
	// Differing strides. gcd > 0 because ca != cb excludes ca == cb == 0.
	g := gcd(abs(ca), abs(cb))
	if (ob-oa)%g != 0 {
		return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleGCD, Div: g, Rem: mod(ob-oa, g)}}
	}
	if !a.bounded {
		return conservativeDecision(RuleUnboundedStride)
	}
	if a.hi-a.lo+1 > enumTrip {
		return conservativeDecision(RuleDistanceSpread)
	}
	// Enumerate the Diophantine solutions ca*x+oa = cb*y+ob over the
	// iteration box, collecting the distinct gaps y-x with one witness each.
	d := decision{verdict: VerdictExact}
	found := false
	for x := a.lo; x <= a.hi; x++ {
		ea := ca*x + oa
		for y := a.lo; y <= a.hi; y++ {
			if ea != cb*y+ob {
				continue
			}
			found = true
			gap := y - x
			known := false
			for k := 0; k < d.ngaps; k++ {
				if d.gaps[k] == gap {
					known = true
					break
				}
			}
			if known {
				continue
			}
			if d.ngaps == maxGaps {
				return conservativeDecision(RuleDistanceSpread)
			}
			d.gaps[d.ngaps], d.wit[d.ngaps] = gap, x
			d.ngaps++
		}
	}
	if !found {
		return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleBoundSep, Lo: a.lo, Hi: a.hi}}
	}
	// Sort gaps ascending (witnesses ride along) so emission order is
	// canonical regardless of enumeration order.
	for i := 1; i < d.ngaps; i++ {
		for j := i; j > 0 && d.gaps[j] < d.gaps[j-1]; j-- {
			d.gaps[j], d.gaps[j-1] = d.gaps[j-1], d.gaps[j]
			d.wit[j], d.wit[j-1] = d.wit[j-1], d.wit[j]
		}
	}
	d.ev = Evidence{Rule: RuleDiophantine, Lo: a.lo, Hi: a.hi,
		Witness: Witness{SrcIter: d.wit[0], SnkIter: d.wit[0] + d.gaps[0], Elem: ca*d.wit[0] + oa}}
	return d
}

// decideBaseline reproduces the seed analyzer's pair classification: pure
// affine subscripts only (any symbolic term defeats the match), equal
// coefficients solved exactly, differing strides refuted only by the cheap
// GCD disproof, constant pairs A[c] vs A[c] assumed conservative.
func (a *Analysis) decideBaseline(fw, fx form) decision {
	if !fw.ok || fw.f.HasSyms() || !fx.ok || fx.f.HasSyms() {
		return conservativeDecision(RuleAssumed)
	}
	ca, oa := fw.f.Coef, fw.f.Off
	cb, ob := fx.f.Coef, fx.f.Off
	if ca != cb {
		if !mayOverlap(ca, oa, cb, ob) {
			g := gcd(abs(ca), abs(cb))
			return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleGCD, Div: g, Rem: mod(ob-oa, g)}}
		}
		return conservativeDecision(RuleAssumed)
	}
	if ca == 0 {
		if oa == ob {
			return conservativeDecision(RuleAssumed)
		}
		return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleDistinctElem}}
	}
	diff := oa - ob
	if diff%ca != 0 {
		g := abs(ca)
		return decision{verdict: VerdictIndependent, ev: Evidence{Rule: RuleGCD, Div: g, Rem: mod(ob-oa, g)}}
	}
	gap := diff / ca
	d := decision{verdict: VerdictExact, ngaps: 1}
	d.gaps[0], d.wit[0] = gap, a.witBase(gap)
	d.ev = Evidence{Rule: RuleUniformStride,
		Witness: Witness{SrcIter: d.wit[0], SnkIter: d.wit[0] + gap, Elem: ca*d.wit[0] + oa}}
	return d
}

// mayOverlap is the seed analyzer's cheap GCD-style disproof for differing
// strides, kept verbatim for baseline mode. It errs on the side of overlap.
func mayOverlap(ca, oa, cb, ob int) bool {
	g := gcd(abs(ca), abs(cb))
	if g == 0 {
		return oa == ob
	}
	return (oa-ob)%g == 0
}
