// Package dep implements the data-dependence analysis the paper obtains from
// Parafrase: for a single DO loop it finds every flow, anti and output
// dependence between statement pairs, computes loop-carried dependence
// distances for affine subscripts, and classifies each dependence as
// lexically forward (LFD) or lexically backward (LBD).
//
// The analysis is a decision procedure with machine-checkable evidence
// (decide.go, evidence.go): subscripts reduce to affine forms over the
// induction variable and loop-invariant symbols, pairs are solved by exact
// distance computation, GCD tests, Banerjee-style bound separation, and
// Diophantine enumeration over constant iteration ranges. Every proven
// dependence carries a witness iteration pair, every proven independence an
// infeasibility certificate, and the Conservative residue an explicit
// undecidability reason. Options.Baseline reproduces the seed analyzer's
// purely syntactic matching for audit comparison.
//
// Terminology follows the paper (§2):
//
//   - Src / Snk: dependence source and sink statements.
//   - Si bef Sj: Si occurs textually before Sj.
//   - A dependence Si δ Sj is *forward* iff Si bef Sj; otherwise *backward*.
//   - Distance d: the sink iteration reads/writes the element the source
//     touched d iterations earlier. d = 0 is loop-independent.
package dep

import (
	"fmt"
	"sort"

	"doacross/internal/diag"
	"doacross/internal/lang"
)

// Kind is the data-dependence class.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write → read (true dependence)
	Anti               // read → write
	Output             // write → write
)

// String names the dependence kind.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Ref identifies one memory reference inside the loop body.
type Ref struct {
	// Stmt is the 0-based statement index.
	Stmt int
	// Write reports whether the reference stores (LHS) or loads (RHS).
	Write bool
	// Array is the referenced array ref node, nil for scalar references.
	// Node identity ties the dependence to the load/store instruction the
	// code generator emits for it.
	Array *lang.ArrayRef
	// ScalarName is set for scalar references.
	ScalarName string
	// Pos is the ordinal of the reference within its statement (guard reads
	// first, then LHS, then RHS references left to right); used only for
	// deterministic ordering.
	Pos int
	// Merge marks the implicit read of a *conditionally* written location:
	// if-conversion lowers `IF (c) A[I] = v` to a load of the old element, a
	// select, and an unconditional store, so the statement reads what it may
	// overwrite. The flag lets the code generator map the reference to that
	// merge load.
	Merge bool
}

// Name returns the variable name referenced.
func (r Ref) Name() string {
	if r.Array != nil {
		return r.Array.Name
	}
	return r.ScalarName
}

// Dependence is one data dependence of the loop.
type Dependence struct {
	Kind Kind
	// Src and Snk are the dependence endpoints. Execution must preserve
	// Src-before-Snk (offset by Distance iterations).
	Src, Snk Ref
	// Distance is the dependence distance in iterations; 0 means
	// loop-independent (within one iteration).
	Distance int
	// Conservative marks dependences assumed (distance 1) because the
	// subscript pair was not analyzable; Evidence.Rule names why.
	Conservative bool
	// Evidence justifies the dependence: the rule that proved it plus a
	// witness iteration pair for exact distances, or the undecidability
	// reason for conservative assumptions.
	Evidence Evidence
}

// Carried reports whether the dependence crosses iterations.
func (d Dependence) Carried() bool { return d.Distance > 0 }

// LexForward reports whether the dependence is an LFD: the source statement
// occurs textually strictly before the sink statement. Per the paper,
// everything else — including same-statement dependences such as reductions —
// is an LBD.
func (d Dependence) LexForward() bool { return d.Src.Stmt < d.Snk.Stmt }

// String renders the dependence for diagnostics, e.g.
// "flow S3->S1 dist 2 (A)".
func (d Dependence) String() string {
	carried := ""
	if d.Conservative {
		carried = " (conservative)"
	}
	return fmt.Sprintf("%s S%d->S%d dist %d (%s)%s",
		d.Kind, d.Src.Stmt+1, d.Snk.Stmt+1, d.Distance, d.Src.Name(), carried)
}

// Options configures the analysis.
type Options struct {
	// Baseline disables the precise decision procedure and reproduces the
	// seed analyzer's syntactic subscript matching: symbolic terms, coupled
	// subscripts and fixed-element pairs all fall back to conservative
	// distance-1 webs. Used by the precision audit as the comparison point.
	Baseline bool
}

// Analysis holds the dependence analysis result for one loop.
type Analysis struct {
	Loop *lang.Loop
	// Deps lists every dependence, deterministic order.
	Deps []Dependence
	// Pairs records the per-decision provenance: one verdict with evidence
	// for every ordered (write, other) reference pair examined.
	Pairs []PairDecision

	opt     Options
	lo, hi  int  // constant loop bounds when bounded
	bounded bool // both bounds are compile-time integer constants
}

// Analyze computes all dependences of the loop with the precise engine.
func Analyze(loop *lang.Loop) *Analysis { return AnalyzeOpts(loop, Options{}) }

// AnalyzeOpts computes all dependences of the loop under the given options.
func AnalyzeOpts(loop *lang.Loop, opt Options) *Analysis {
	refs := collectRefs(loop)
	a := &Analysis{Loop: loop, Deps: make([]Dependence, 0, 2*len(refs)), opt: opt}
	if lo, ok := lang.ConstInt(loop.Lo); ok {
		if hi, ok := lang.ConstInt(loop.Hi); ok {
			a.lo, a.hi, a.bounded = lo, hi, lo <= hi
		}
	}
	// Group references by variable (scalar and array namespaces are
	// disjoint): a stable sort brings each variable's references together
	// while keeping textual order within the group. The final sortDeps pass
	// makes the output order independent of group order. Single-variable
	// loops are already grouped; the pre-check skips the sort's interface
	// allocation for them.
	grouped := true
	for i := 1; i < len(refs); i++ {
		if refLess(refs[i], refs[i-1]) {
			grouped = false
			break
		}
	}
	if !grouped {
		sort.Stable(refsByVar(refs))
	}
	forms := subscriptForms(loop, refs)
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) && !refLess(refs[i], refs[j]) && !refLess(refs[j], refs[i]) {
			j++
		}
		lo := i
		group := refs[i:j]
		i = j
		for gi := 0; gi < len(group); gi++ {
			for gj := 0; gj < len(group); gj++ {
				w, x := group[gi], group[gj]
				if !w.Write {
					continue
				}
				// Pair each write with every read (flow/anti) and with later
				// writes (output). The write/write case is handled once per
				// unordered pair by requiring gi <= gj.
				if x.Write {
					if gi > gj {
						continue
					}
					a.addWriteWrite(w, x, forms[lo+gi], forms[lo+gj])
				} else {
					a.addWriteRead(w, x, forms[lo+gi], forms[lo+gj])
				}
			}
		}
	}
	sortDeps(a.Deps)
	return a
}

// subscriptForms reduces every array reference's subscript once, aligned
// with refs. A form whose symbols are written inside the loop body is not
// loop-invariant and is demoted to non-affine.
func subscriptForms(loop *lang.Loop, refs []Ref) []form {
	forms := make([]form, len(refs))
	var written []string
	for _, st := range loop.Body {
		if s, ok := st.LHS.(*lang.Scalar); ok {
			written = append(written, s.Name)
		}
	}
	isWritten := func(name string) bool {
		for _, w := range written {
			if w == name {
				return true
			}
		}
		return false
	}
	for i, r := range refs {
		if r.Array == nil {
			continue
		}
		f, ok := lang.AffineSym(r.Array.Index, loop.Var)
		if ok {
			for _, t := range f.Syms {
				if isWritten(t.Name) {
					ok = false
					break
				}
			}
		}
		forms[i] = form{f: f, ok: ok}
	}
	return forms
}

// refsByVar stable-sorts references into per-variable groups: scalars first,
// then arrays, by name. Only the grouping matters — sortDeps canonicalizes
// the final order.
type refsByVar []Ref

func (s refsByVar) Len() int           { return len(s) }
func (s refsByVar) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s refsByVar) Less(i, j int) bool { return refLess(s[i], s[j]) }

func refLess(a, b Ref) bool {
	as, bs := a.Array == nil, b.Array == nil
	if as != bs {
		return as // scalars first
	}
	return a.Name() < b.Name()
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (a *Analysis) recordPair(w, x Ref, v Verdict, ev Evidence, ndeps int) {
	a.Pairs = append(a.Pairs, PairDecision{A: w, B: x, Verdict: v, Evidence: ev, Deps: ndeps})
}

// webEvidence builds oriented per-dependence evidence for a fixed-location
// (scalar or same-element) web arc.
func (a *Analysis) webEvidence(rule Rule, distance, elem int) Evidence {
	b := a.baseIter()
	return Evidence{Rule: rule, Witness: Witness{SrcIter: b, SnkIter: b + distance, Elem: elem}}
}

// emitWeb emits the exact fixed-location web between a write and a read of
// the same memory location (a scalar, or an array element whose subscript is
// iteration-invariant): within an iteration the textual order decides the
// distance-0 arc, and the location being re-touched every iteration adds the
// carried distance-1 arc in the opposite direction. rule is RuleScalar or
// RuleSameElement; elem is the element index (0 for scalars).
func (a *Analysis) emitWebWriteRead(w, r Ref, rule Rule, elem int) int {
	if w.Stmt < r.Stmt {
		a.Deps = append(a.Deps,
			Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0, Evidence: a.webEvidence(rule, 0, elem)},
			// The read in the *next* iteration still sees this write unless
			// rewritten, but the textually-later same-iteration flow carries
			// the constraint; the carried anti arc closes the web.
			Dependence{Kind: Anti, Src: r, Snk: w, Distance: 1, Evidence: a.webEvidence(rule, 1, elem)})
		return 2
	}
	// Read at or before the write within an iteration: the read sees the
	// previous iteration's write (loop-carried flow), and anti-depends on
	// this iteration's write (including same statement: the RHS read
	// precedes the LHS store — a reduction).
	a.Deps = append(a.Deps,
		Dependence{Kind: Flow, Src: w, Snk: r, Distance: 1, Evidence: a.webEvidence(rule, 1, elem)},
		Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0, Evidence: a.webEvidence(rule, 0, elem)})
	return 2
}

func (a *Analysis) emitWebWriteWrite(w1, w2 Ref, rule Rule, elem int) int {
	src, snk := w1, w2
	if w2.Stmt < w1.Stmt {
		src, snk = w2, w1
	}
	a.Deps = append(a.Deps,
		Dependence{Kind: Output, Src: src, Snk: snk, Distance: 0, Evidence: a.webEvidence(rule, 0, elem)},
		Dependence{Kind: Output, Src: snk, Snk: src, Distance: 1, Evidence: a.webEvidence(rule, 1, elem)})
	return 2
}

// exactEvidence builds the oriented evidence for one exact-distance arc: the
// decision's witness base for that gap, oriented source→sink.
func exactEvidence(rule Rule, aIter, gap, elem int) Evidence {
	src, snk := aIter, aIter+gap
	if gap < 0 {
		src, snk = aIter+gap, aIter
	}
	return Evidence{Rule: rule, Witness: Witness{SrcIter: src, SnkIter: snk, Elem: elem}}
}

func (a *Analysis) addWriteRead(w, r Ref, fw, fr form) {
	if w.Array == nil {
		// Scalar write/read: one fixed location, exact web.
		n := a.emitWebWriteRead(w, r, RuleScalar, 0)
		a.recordPair(w, r, VerdictExact, Evidence{Rule: RuleScalar}, n)
		return
	}
	d := a.decideArray(fw, fr)
	switch d.verdict {
	case VerdictIndependent:
		a.recordPair(w, r, VerdictIndependent, d.ev, 0)
		return
	case VerdictConservative:
		a.Deps = append(a.Deps,
			Dependence{Kind: Flow, Src: w, Snk: r, Distance: 1, Conservative: true, Evidence: d.ev},
			Dependence{Kind: Anti, Src: r, Snk: w, Distance: 1, Conservative: true, Evidence: d.ev})
		n := 2
		if w.Stmt < r.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0, Conservative: true, Evidence: d.ev})
			n++
		} else if r.Stmt <= w.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0, Conservative: true, Evidence: d.ev})
			n++
		}
		a.recordPair(w, r, VerdictConservative, d.ev, n)
		return
	}
	if d.web {
		n := a.emitWebWriteRead(w, r, d.ev.Rule, d.ev.Witness.Elem)
		a.recordPair(w, r, VerdictExact, d.ev, n)
		return
	}
	n := 0
	for k := 0; k < d.ngaps; k++ {
		gap := d.gaps[k]
		elem := fw.f.Coef*d.wit[k] + fw.f.Off
		ev := exactEvidence(d.ev.Rule, d.wit[k], gap, elem)
		switch {
		case gap > 0:
			// Read gap iterations after the write: loop-carried flow dependence.
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: gap, Evidence: ev})
			n++
		case gap < 0:
			// Read earlier than the write: anti dependence read → write.
			a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: -gap, Evidence: ev})
			n++
		default:
			// Same iteration: textual order decides.
			if w.Stmt < r.Stmt {
				a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0, Evidence: ev})
			} else {
				// Read first (including same statement: RHS evaluates before
				// the LHS store).
				a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0, Evidence: ev})
			}
			n++
		}
	}
	a.recordPair(w, r, VerdictExact, d.ev, n)
}

func (a *Analysis) addWriteWrite(w1, w2 Ref, f1, f2 form) {
	if w1 == w2 {
		return
	}
	if w1.Array == nil {
		// Scalar output dependences: same location every iteration.
		n := a.emitWebWriteWrite(w1, w2, RuleScalar, 0)
		a.recordPair(w1, w2, VerdictExact, Evidence{Rule: RuleScalar}, n)
		return
	}
	d := a.decideArray(f1, f2)
	switch d.verdict {
	case VerdictIndependent:
		a.recordPair(w1, w2, VerdictIndependent, d.ev, 0)
		return
	case VerdictConservative:
		a.Deps = append(a.Deps,
			Dependence{Kind: Output, Src: w1, Snk: w2, Distance: 1, Conservative: true, Evidence: d.ev},
			Dependence{Kind: Output, Src: w2, Snk: w1, Distance: 1, Conservative: true, Evidence: d.ev})
		n := 2
		if w1.Stmt != w2.Stmt {
			src, snk := w1, w2
			if w2.Stmt < w1.Stmt {
				src, snk = w2, w1
			}
			a.Deps = append(a.Deps, Dependence{Kind: Output, Src: src, Snk: snk, Distance: 0, Conservative: true, Evidence: d.ev})
			n++
		}
		a.recordPair(w1, w2, VerdictConservative, d.ev, n)
		return
	}
	if d.web {
		n := a.emitWebWriteWrite(w1, w2, d.ev.Rule, d.ev.Witness.Elem)
		a.recordPair(w1, w2, VerdictExact, d.ev, n)
		return
	}
	n := 0
	for k := 0; k < d.ngaps; k++ {
		gap := d.gaps[k]
		elem := f1.f.Coef*d.wit[k] + f1.f.Off
		ev := exactEvidence(d.ev.Rule, d.wit[k], gap, elem)
		switch {
		case gap > 0:
			a.Deps = append(a.Deps, Dependence{Kind: Output, Src: w1, Snk: w2, Distance: gap, Evidence: ev})
			n++
		case gap < 0:
			a.Deps = append(a.Deps, Dependence{Kind: Output, Src: w2, Snk: w1, Distance: -gap, Evidence: ev})
			n++
		default:
			if w1.Stmt == w2.Stmt {
				continue
			}
			src, snk := w1, w2
			if w2.Stmt < w1.Stmt {
				src, snk = w2, w1
			}
			a.Deps = append(a.Deps, Dependence{Kind: Output, Src: src, Snk: snk, Distance: 0, Evidence: ev})
			n++
		}
	}
	a.recordPair(w1, w2, VerdictExact, d.ev, n)
}

// collectRefs enumerates all memory references of the loop body in textual
// order. The induction variable is not a memory reference (it lives in a
// register on every processor).
func collectRefs(loop *lang.Loop) []Ref {
	refs := make([]Ref, 0, 4*len(loop.Body))
	// One walk closure shared by every expression of the loop (st/pos/mode
	// are rebound per site), so the traversal allocates nothing per
	// statement.
	si, pos := 0, 0
	scalarsOnly := false
	walk := func(x lang.Expr) {
		switch v := x.(type) {
		case *lang.ArrayRef:
			if !scalarsOnly {
				refs = append(refs, Ref{Stmt: si, Write: false, Array: v, Pos: pos})
				pos++
			}
		case *lang.Scalar:
			if v.Name != loop.Var {
				refs = append(refs, Ref{Stmt: si, Write: false, ScalarName: v.Name, Pos: pos})
				pos++
			}
		}
	}
	for i, st := range loop.Body {
		si, pos = i, 0
		if st.Cond != nil {
			lang.Walk(st.Cond.L, walk)
			lang.Walk(st.Cond.R, walk)
		}
		switch lhs := st.LHS.(type) {
		case *lang.ArrayRef:
			refs = append(refs, Ref{Stmt: si, Write: true, Array: lhs, Pos: pos})
			pos++
			if st.Cond != nil {
				// Conditional write also reads the old element (merge load).
				refs = append(refs, Ref{Stmt: si, Write: false, Array: lhs, Pos: pos, Merge: true})
				pos++
			}
			// Subscript reads of scalars other than the induction variable.
			scalarsOnly = true
			lang.Walk(lhs.Index, walk)
			scalarsOnly = false
		case *lang.Scalar:
			refs = append(refs, Ref{Stmt: si, Write: true, ScalarName: lhs.Name, Pos: pos})
			pos++
			if st.Cond != nil {
				refs = append(refs, Ref{Stmt: si, Write: false, ScalarName: lhs.Name, Pos: pos, Merge: true})
				pos++
			}
		}
		lang.Walk(st.RHS, walk)
	}
	return refs
}

// conservativeReason phrases the undecidability reason of a conservative
// dependence for diagnostics.
func conservativeReason(r Rule) string {
	switch r {
	case RuleNonAffine:
		return "non-affine subscript"
	case RuleSymbolMismatch:
		return "symbolic subscript parts differ"
	case RuleUnboundedStride:
		return "differing strides over symbolic bounds"
	case RuleDistanceSpread:
		return "dependence distances too spread to enumerate"
	}
	return "subscript pair not analyzable"
}

// Diagnostics reports analysis warnings: one per reference pair whose
// subscripts were not analyzable and therefore forced a conservative
// distance-1 dependence. Each warning is positioned at the dependence
// source statement, so `schedcmp -trace` can point at the source line that
// defeats the distance test.
func (a *Analysis) Diagnostics() diag.List {
	var out diag.List
	seen := map[string]bool{}
	for _, d := range a.Deps {
		if !d.Conservative {
			continue
		}
		st := a.Loop.Body[d.Src.Stmt]
		w := diag.Warningf("dep", st.Pos(),
			"conservative dependence assumed (%s): %s", conservativeReason(d.Evidence.Rule), d).WithStmt(st.Label)
		key := w.Error()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, w)
	}
	return out
}

// Carried returns the loop-carried dependences (distance > 0).
func (a *Analysis) Carried() []Dependence {
	n := 0
	for _, d := range a.Deps {
		if d.Carried() {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Dependence, 0, n)
	for _, d := range a.Deps {
		if d.Carried() {
			out = append(out, d)
		}
	}
	return out
}

// CarriedFlow returns loop-carried flow dependences — the ones requiring
// explicit synchronization in a DOACROSS execution where each iteration's
// statements execute in program order on its own processor. (Anti and output
// loop-carried dependences on arrays are also synchronized by callers that
// request full coverage; the paper's benchmarks are dominated by flow LBDs.)
func (a *Analysis) CarriedFlow() []Dependence {
	var out []Dependence
	for _, d := range a.Deps {
		if d.Carried() && d.Kind == Flow {
			out = append(out, d)
		}
	}
	return out
}

// IsDoall reports whether the loop has no loop-carried dependence at all and
// can run fully parallel without synchronization.
func (a *Analysis) IsDoall() bool { return len(a.Carried()) == 0 }

// CountLexical returns how many loop-carried dependences are LFD and LBD —
// the paper's Table 1 statistics.
func (a *Analysis) CountLexical() (lfd, lbd int) {
	for _, d := range a.Carried() {
		if d.LexForward() {
			lfd++
		} else {
			lbd++
		}
	}
	return lfd, lbd
}

func sortDeps(deps []Dependence) {
	sort.Stable(depOrder(deps))
}

// depOrder is the canonical dependence order (a typed sort.Interface rather
// than sort.SliceStable: Analyze is on the compile hot path and the typed
// form avoids the reflection swapper).
type depOrder []Dependence

func (s depOrder) Len() int      { return len(s) }
func (s depOrder) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s depOrder) Less(i, j int) bool {
	a, b := s[i], s[j]
	if a.Src.Stmt != b.Src.Stmt {
		return a.Src.Stmt < b.Src.Stmt
	}
	if a.Snk.Stmt != b.Snk.Stmt {
		return a.Snk.Stmt < b.Snk.Stmt
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Src.Pos != b.Src.Pos {
		return a.Src.Pos < b.Src.Pos
	}
	return a.Snk.Pos < b.Snk.Pos
}
