// Package dep implements the data-dependence analysis the paper obtains from
// Parafrase: for a single DO loop it finds every flow, anti and output
// dependence between statement pairs, computes loop-carried dependence
// distances for affine subscripts, and classifies each dependence as
// lexically forward (LFD) or lexically backward (LBD).
//
// Terminology follows the paper (§2):
//
//   - Src / Snk: dependence source and sink statements.
//   - Si bef Sj: Si occurs textually before Sj.
//   - A dependence Si δ Sj is *forward* iff Si bef Sj; otherwise *backward*.
//   - Distance d: the sink iteration reads/writes the element the source
//     touched d iterations earlier. d = 0 is loop-independent.
package dep

import (
	"fmt"
	"sort"

	"doacross/internal/diag"
	"doacross/internal/lang"
)

// Kind is the data-dependence class.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write → read (true dependence)
	Anti               // read → write
	Output             // write → write
)

// String names the dependence kind.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Ref identifies one memory reference inside the loop body.
type Ref struct {
	// Stmt is the 0-based statement index.
	Stmt int
	// Write reports whether the reference stores (LHS) or loads (RHS).
	Write bool
	// Array is the referenced array ref node, nil for scalar references.
	// Node identity ties the dependence to the load/store instruction the
	// code generator emits for it.
	Array *lang.ArrayRef
	// ScalarName is set for scalar references.
	ScalarName string
	// Pos is the ordinal of the reference within its statement (guard reads
	// first, then LHS, then RHS references left to right); used only for
	// deterministic ordering.
	Pos int
	// Merge marks the implicit read of a *conditionally* written location:
	// if-conversion lowers `IF (c) A[I] = v` to a load of the old element, a
	// select, and an unconditional store, so the statement reads what it may
	// overwrite. The flag lets the code generator map the reference to that
	// merge load.
	Merge bool
}

// Name returns the variable name referenced.
func (r Ref) Name() string {
	if r.Array != nil {
		return r.Array.Name
	}
	return r.ScalarName
}

// Dependence is one data dependence of the loop.
type Dependence struct {
	Kind Kind
	// Src and Snk are the dependence endpoints. Execution must preserve
	// Src-before-Snk (offset by Distance iterations).
	Src, Snk Ref
	// Distance is the dependence distance in iterations; 0 means
	// loop-independent (within one iteration).
	Distance int
	// Conservative marks dependences assumed (distance 1) because the
	// subscript pair was not analyzable (non-affine, coefficient mismatch,
	// or coefficient zero).
	Conservative bool
}

// Carried reports whether the dependence crosses iterations.
func (d Dependence) Carried() bool { return d.Distance > 0 }

// LexForward reports whether the dependence is an LFD: the source statement
// occurs textually strictly before the sink statement. Per the paper,
// everything else — including same-statement dependences such as reductions —
// is an LBD.
func (d Dependence) LexForward() bool { return d.Src.Stmt < d.Snk.Stmt }

// String renders the dependence for diagnostics, e.g.
// "flow S3->S1 dist 2 (A)".
func (d Dependence) String() string {
	carried := ""
	if d.Conservative {
		carried = " (conservative)"
	}
	return fmt.Sprintf("%s S%d->S%d dist %d (%s)%s",
		d.Kind, d.Src.Stmt+1, d.Snk.Stmt+1, d.Distance, d.Src.Name(), carried)
}

// Analysis holds the dependence analysis result for one loop.
type Analysis struct {
	Loop *lang.Loop
	// Deps lists every dependence, deterministic order.
	Deps []Dependence
}

// Analyze computes all dependences of the loop.
func Analyze(loop *lang.Loop) *Analysis {
	refs := collectRefs(loop)
	a := &Analysis{Loop: loop, Deps: make([]Dependence, 0, 2*len(refs))}
	// Group references by variable (scalar and array namespaces are
	// disjoint): a stable sort brings each variable's references together
	// while keeping textual order within the group. The final sortDeps pass
	// makes the output order independent of group order. Single-variable
	// loops are already grouped; the pre-check skips the sort's interface
	// allocation for them.
	grouped := true
	for i := 1; i < len(refs); i++ {
		if refLess(refs[i], refs[i-1]) {
			grouped = false
			break
		}
	}
	if !grouped {
		sort.Stable(refsByVar(refs))
	}
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) && !refLess(refs[i], refs[j]) && !refLess(refs[j], refs[i]) {
			j++
		}
		group := refs[i:j]
		i = j
		for gi := 0; gi < len(group); gi++ {
			for gj := 0; gj < len(group); gj++ {
				w, x := group[gi], group[gj]
				if !w.Write {
					continue
				}
				// Pair each write with every read (flow/anti) and with later
				// writes (output). The write/write case is handled once per
				// unordered pair by requiring gi <= gj.
				if x.Write {
					if gi > gj {
						continue
					}
					a.addWriteWrite(loop, w, x)
				} else {
					a.addWriteRead(loop, w, x)
				}
			}
		}
	}
	sortDeps(a.Deps)
	return a
}

// refsByVar stable-sorts references into per-variable groups: scalars first,
// then arrays, by name. Only the grouping matters — sortDeps canonicalizes
// the final order.
type refsByVar []Ref

func (s refsByVar) Len() int           { return len(s) }
func (s refsByVar) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s refsByVar) Less(i, j int) bool { return refLess(s[i], s[j]) }

func refLess(a, b Ref) bool {
	as, bs := a.Array == nil, b.Array == nil
	if as != bs {
		return as // scalars first
	}
	return a.Name() < b.Name()
}

// subscript classification for a pair of references.
type pairClass int

const (
	pairExact        pairClass = iota // distance computed exactly
	pairNone                          // provably independent
	pairConservative                  // unknown; assume distance 1
)

// classify computes the iteration gap between two affine references to the
// same array: how many iterations after the iteration executing `a` does the
// iteration executing `b` touch the same element. gap>0 means b later,
// gap<0 means b earlier, gap==0 same iteration.
func classify(loop *lang.Loop, a, b Ref) (gap int, cls pairClass) {
	if a.Array == nil {
		// Scalar: every iteration touches the same location; handled by the
		// caller with distance-1 loop-carried plus distance-0 rules.
		return 0, pairExact
	}
	ca, oa, oka := lang.AffineIndex(a.Array.Index, loop.Var)
	cb, ob, okb := lang.AffineIndex(b.Array.Index, loop.Var)
	if !oka || !okb {
		return 0, pairConservative
	}
	if ca != cb {
		// Different strides (e.g. A[I] vs A[2*I]) — a full test (GCD/Banerjee)
		// is overkill for the paper's loop shapes; be conservative unless a
		// cheap GCD disproof applies.
		if !mayOverlap(ca, oa, cb, ob) {
			return 0, pairNone
		}
		return 0, pairConservative
	}
	if ca == 0 {
		// Same fixed element every iteration (A[3] vs A[3]) or provably
		// different elements (A[3] vs A[5]).
		if oa == ob {
			return 0, pairConservative
		}
		return 0, pairNone
	}
	diff := oa - ob
	if diff%ca != 0 {
		return 0, pairNone
	}
	return diff / ca, pairExact
}

// mayOverlap is a cheap GCD-style disproof for differing strides over the
// iteration ranges the paper uses. It errs on the side of overlap.
func mayOverlap(ca, oa, cb, ob int) bool {
	g := gcd(abs(ca), abs(cb))
	if g == 0 {
		return oa == ob
	}
	return (oa-ob)%g == 0
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (a *Analysis) addWriteRead(loop *lang.Loop, w, r Ref) {
	if w.Array == nil {
		// Scalar write/read.
		if w.Stmt < r.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0})
			// The read in the *next* iteration still sees this write unless
			// rewritten, but the textually-later same-iteration flow carries
			// the constraint; adding the carried one too is harmless and
			// matches conservative scalar handling.
			a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 1})
		} else {
			// Read at or before the write within an iteration: the read sees
			// the previous iteration's write (loop-carried flow), and
			// anti-depends on this iteration's write.
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 1})
			if r.Stmt < w.Stmt {
				a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0})
			} else if r.Stmt == w.Stmt {
				// Same statement: RHS read precedes LHS write (reduction).
				a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0})
			}
		}
		return
	}
	gap, cls := classify(loop, w, r)
	switch cls {
	case pairNone:
		return
	case pairConservative:
		a.Deps = append(a.Deps,
			Dependence{Kind: Flow, Src: w, Snk: r, Distance: 1, Conservative: true},
			Dependence{Kind: Anti, Src: r, Snk: w, Distance: 1, Conservative: true})
		if w.Stmt < r.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0, Conservative: true})
		} else if r.Stmt <= w.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0, Conservative: true})
		}
		return
	}
	switch {
	case gap > 0:
		// Read gap iterations after the write: loop-carried flow dependence.
		a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: gap})
	case gap < 0:
		// Read earlier than the write: anti dependence read → write.
		a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: -gap})
	default:
		// Same iteration: textual order decides.
		if w.Stmt < r.Stmt {
			a.Deps = append(a.Deps, Dependence{Kind: Flow, Src: w, Snk: r, Distance: 0})
		} else {
			// Read first (including same statement: RHS evaluates before the
			// LHS store).
			a.Deps = append(a.Deps, Dependence{Kind: Anti, Src: r, Snk: w, Distance: 0})
		}
	}
}

func (a *Analysis) addWriteWrite(loop *lang.Loop, w1, w2 Ref) {
	if w1 == w2 {
		return
	}
	if w1.Array == nil {
		// Scalar output dependences: same location every iteration.
		if w1.Stmt < w2.Stmt {
			a.Deps = append(a.Deps,
				Dependence{Kind: Output, Src: w1, Snk: w2, Distance: 0},
				Dependence{Kind: Output, Src: w2, Snk: w1, Distance: 1})
		} else {
			a.Deps = append(a.Deps,
				Dependence{Kind: Output, Src: w2, Snk: w1, Distance: 0},
				Dependence{Kind: Output, Src: w1, Snk: w2, Distance: 1})
		}
		return
	}
	gap, cls := classify(loop, w1, w2)
	switch cls {
	case pairNone:
		return
	case pairConservative:
		a.Deps = append(a.Deps,
			Dependence{Kind: Output, Src: w1, Snk: w2, Distance: 1, Conservative: true},
			Dependence{Kind: Output, Src: w2, Snk: w1, Distance: 1, Conservative: true})
		if w1.Stmt != w2.Stmt {
			src, snk := w1, w2
			if w2.Stmt < w1.Stmt {
				src, snk = w2, w1
			}
			a.Deps = append(a.Deps, Dependence{Kind: Output, Src: src, Snk: snk, Distance: 0, Conservative: true})
		}
		return
	}
	switch {
	case gap > 0:
		a.Deps = append(a.Deps, Dependence{Kind: Output, Src: w1, Snk: w2, Distance: gap})
	case gap < 0:
		a.Deps = append(a.Deps, Dependence{Kind: Output, Src: w2, Snk: w1, Distance: -gap})
	default:
		if w1.Stmt == w2.Stmt {
			return
		}
		src, snk := w1, w2
		if w2.Stmt < w1.Stmt {
			src, snk = w2, w1
		}
		a.Deps = append(a.Deps, Dependence{Kind: Output, Src: src, Snk: snk, Distance: 0})
	}
}

// collectRefs enumerates all memory references of the loop body in textual
// order. The induction variable is not a memory reference (it lives in a
// register on every processor).
func collectRefs(loop *lang.Loop) []Ref {
	refs := make([]Ref, 0, 4*len(loop.Body))
	// One walk closure shared by every expression of the loop (st/pos/mode
	// are rebound per site), so the traversal allocates nothing per
	// statement.
	si, pos := 0, 0
	scalarsOnly := false
	walk := func(x lang.Expr) {
		switch v := x.(type) {
		case *lang.ArrayRef:
			if !scalarsOnly {
				refs = append(refs, Ref{Stmt: si, Write: false, Array: v, Pos: pos})
				pos++
			}
		case *lang.Scalar:
			if v.Name != loop.Var {
				refs = append(refs, Ref{Stmt: si, Write: false, ScalarName: v.Name, Pos: pos})
				pos++
			}
		}
	}
	for i, st := range loop.Body {
		si, pos = i, 0
		if st.Cond != nil {
			lang.Walk(st.Cond.L, walk)
			lang.Walk(st.Cond.R, walk)
		}
		switch lhs := st.LHS.(type) {
		case *lang.ArrayRef:
			refs = append(refs, Ref{Stmt: si, Write: true, Array: lhs, Pos: pos})
			pos++
			if st.Cond != nil {
				// Conditional write also reads the old element (merge load).
				refs = append(refs, Ref{Stmt: si, Write: false, Array: lhs, Pos: pos, Merge: true})
				pos++
			}
			// Subscript reads of scalars other than the induction variable.
			scalarsOnly = true
			lang.Walk(lhs.Index, walk)
			scalarsOnly = false
		case *lang.Scalar:
			refs = append(refs, Ref{Stmt: si, Write: true, ScalarName: lhs.Name, Pos: pos})
			pos++
			if st.Cond != nil {
				refs = append(refs, Ref{Stmt: si, Write: false, ScalarName: lhs.Name, Pos: pos, Merge: true})
				pos++
			}
		}
		lang.Walk(st.RHS, walk)
	}
	return refs
}

// Diagnostics reports analysis warnings: one per reference pair whose
// subscripts were not analyzable and therefore forced a conservative
// distance-1 dependence. Each warning is positioned at the dependence
// source statement, so `schedcmp -trace` can point at the source line that
// defeats the distance test.
func (a *Analysis) Diagnostics() diag.List {
	var out diag.List
	seen := map[string]bool{}
	for _, d := range a.Deps {
		if !d.Conservative {
			continue
		}
		st := a.Loop.Body[d.Src.Stmt]
		w := diag.Warningf("dep", st.Pos(),
			"conservative dependence assumed (subscript pair not analyzable): %s", d).WithStmt(st.Label)
		key := w.Error()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, w)
	}
	return out
}

// Carried returns the loop-carried dependences (distance > 0).
func (a *Analysis) Carried() []Dependence {
	n := 0
	for _, d := range a.Deps {
		if d.Carried() {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Dependence, 0, n)
	for _, d := range a.Deps {
		if d.Carried() {
			out = append(out, d)
		}
	}
	return out
}

// CarriedFlow returns loop-carried flow dependences — the ones requiring
// explicit synchronization in a DOACROSS execution where each iteration's
// statements execute in program order on its own processor. (Anti and output
// loop-carried dependences on arrays are also synchronized by callers that
// request full coverage; the paper's benchmarks are dominated by flow LBDs.)
func (a *Analysis) CarriedFlow() []Dependence {
	var out []Dependence
	for _, d := range a.Deps {
		if d.Carried() && d.Kind == Flow {
			out = append(out, d)
		}
	}
	return out
}

// IsDoall reports whether the loop has no loop-carried dependence at all and
// can run fully parallel without synchronization.
func (a *Analysis) IsDoall() bool { return len(a.Carried()) == 0 }

// CountLexical returns how many loop-carried dependences are LFD and LBD —
// the paper's Table 1 statistics.
func (a *Analysis) CountLexical() (lfd, lbd int) {
	for _, d := range a.Carried() {
		if d.LexForward() {
			lfd++
		} else {
			lbd++
		}
	}
	return lfd, lbd
}

func sortDeps(deps []Dependence) {
	sort.Stable(depOrder(deps))
}

// depOrder is the canonical dependence order (a typed sort.Interface rather
// than sort.SliceStable: Analyze is on the compile hot path and the typed
// form avoids the reflection swapper).
type depOrder []Dependence

func (s depOrder) Len() int      { return len(s) }
func (s depOrder) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s depOrder) Less(i, j int) bool {
	a, b := s[i], s[j]
	if a.Src.Stmt != b.Src.Stmt {
		return a.Src.Stmt < b.Src.Stmt
	}
	if a.Snk.Stmt != b.Snk.Stmt {
		return a.Snk.Stmt < b.Snk.Stmt
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Src.Pos != b.Src.Pos {
		return a.Src.Pos < b.Src.Pos
	}
	return a.Snk.Pos < b.Snk.Pos
}
