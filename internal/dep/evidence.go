package dep

import (
	"fmt"

	"doacross/internal/lang"
)

// Verdict classifies the analyzer's decision for one reference pair.
type Verdict uint8

// Pair verdicts.
const (
	// VerdictExact: every dependence between the pair is emitted with an
	// exact distance (or an exact fixed-location web for scalars and
	// constant-subscript elements).
	VerdictExact Verdict = iota
	// VerdictIndependent: the pair provably never touches a common element;
	// no dependence is emitted and the evidence carries the infeasibility
	// certificate.
	VerdictIndependent
	// VerdictConservative: the pair is genuinely undecidable for the engine;
	// the distance-1 both-direction web is assumed.
	VerdictConservative
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictExact:
		return "exact"
	case VerdictIndependent:
		return "independent"
	case VerdictConservative:
		return "conservative"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Rule identifies the decision-procedure rule that produced a verdict — the
// first component of every piece of evidence.
type Rule uint8

// Decision rules. The first group proves exact dependences, the second
// proves independence, the third names why a pair stayed conservative.
const (
	// RuleAssumed marks baseline-mode decisions where no decision procedure
	// ran (the seed analyzer's behavior, kept for audit comparison).
	RuleAssumed Rule = iota

	// RuleScalar: both references name the same scalar — one fixed location,
	// exact distance-0/1 web.
	RuleScalar
	// RuleSameElement: both subscripts reduce to the same fixed element
	// (equal constants and equal symbolic parts, no induction-variable
	// term) — one fixed location, exact distance-0/1 web.
	RuleSameElement
	// RuleUniformStride: equal induction-variable coefficients and equal
	// symbolic parts — the subscript difference is constant and yields one
	// exact distance.
	RuleUniformStride
	// RuleDiophantine: differing strides inside constant loop bounds — the
	// linear Diophantine equation was enumerated over the iteration box and
	// every solution's distance emitted exactly.
	RuleDiophantine

	// RuleGCD: independence by non-divisibility — gcd(|ca|,|cb|) does not
	// divide the constant subscript difference, so no iteration pair can
	// collide (Evidence.Div, Evidence.Rem hold the certificate).
	RuleGCD
	// RuleDistinctElem: both subscripts are fixed elements with equal
	// symbolic parts but different constants — provably disjoint.
	RuleDistinctElem
	// RuleBoundSep: a Banerjee-style bound separation — the only candidate
	// distances fall outside the loop's constant iteration range
	// (Evidence.Lo, Evidence.Hi hold the bounds used).
	RuleBoundSep

	// RuleNonAffine: a subscript is not affine in the induction variable and
	// loop-invariant symbols (A[I*I], A[IX[I]], division, or a symbol
	// written inside the loop body).
	RuleNonAffine
	// RuleSymbolMismatch: both subscripts are affine but their symbolic
	// parts differ (A[J] vs A[K]), so the difference is not a constant.
	RuleSymbolMismatch
	// RuleUnboundedStride: differing strides with symbolic loop bounds —
	// the Diophantine solution set cannot be enumerated.
	RuleUnboundedStride
	// RuleDistanceSpread: the enumerated solution set exists but spans more
	// distinct distances than the engine will emit as individual arcs.
	RuleDistanceSpread
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleAssumed:
		return "assumed"
	case RuleScalar:
		return "scalar-location"
	case RuleSameElement:
		return "same-element"
	case RuleUniformStride:
		return "uniform-stride"
	case RuleDiophantine:
		return "diophantine"
	case RuleGCD:
		return "gcd"
	case RuleDistinctElem:
		return "distinct-elements"
	case RuleBoundSep:
		return "bound-separation"
	case RuleNonAffine:
		return "non-affine"
	case RuleSymbolMismatch:
		return "symbol-mismatch"
	case RuleUnboundedStride:
		return "unbounded-stride"
	case RuleDistanceSpread:
		return "distance-spread"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// Witness is a concrete iteration pair proving a dependence: the source
// reference at iteration SrcIter and the sink reference at iteration SnkIter
// touch the same element. For loops with symbolic bounds the witness is
// normalized to a lower bound of 1; Elem is the element index with all
// symbolic subscript terms evaluated as 0 (they cancel between the two
// sides, so any valuation yields a valid witness).
type Witness struct {
	SrcIter, SnkIter int
	Elem             int
}

// Evidence is the machine-checkable justification attached to a verdict.
// Exactly which fields are meaningful depends on Rule:
//
//   - dependence rules (scalar-location, same-element, uniform-stride,
//     diophantine): Witness is the iteration pair;
//   - gcd: Div and Rem certify Rem = (Δoff mod Div) ≠ 0;
//   - bound-separation: Lo and Hi are the constant loop bounds that exclude
//     every candidate distance;
//   - conservative rules: only Rule itself (the residue reason).
//
// The struct is flat (no pointers, no strings) so attaching it to every
// Dependence costs a few words and no allocations.
type Evidence struct {
	Rule    Rule
	Witness Witness
	// Div, Rem form the GCD certificate: Div > 0, Rem = Δoff mod Div, Rem != 0.
	Div, Rem int
	// Lo, Hi are the constant loop bounds used by bound-separation and
	// Diophantine enumeration.
	Lo, Hi int
}

// PairDecision records the analyzer's verdict for one ordered reference pair
// (A is always the write of the pair) — the per-decision provenance surfaced
// in -dump artifacts and validated by the brute-force oracle.
type PairDecision struct {
	// A is the write reference, B the read (flow/anti pairs) or the second
	// write (output pairs).
	A, B     Ref
	Verdict  Verdict
	Evidence Evidence
	// Deps is how many dependences the decision emitted (0 for independent).
	Deps int
}

// String renders the decision for provenance dumps, e.g.
// "S1[A w] x S3[A r]: exact (uniform-stride, witness i=1->3 elem -1)".
func (p PairDecision) String() string {
	mode := func(r Ref) string {
		if r.Write {
			return "w"
		}
		return "r"
	}
	head := fmt.Sprintf("S%d[%s %s] x S%d[%s %s]: %s (%s",
		p.A.Stmt+1, p.A.Name(), mode(p.A), p.B.Stmt+1, p.B.Name(), mode(p.B),
		p.Verdict, p.Evidence.Rule)
	switch p.Evidence.Rule {
	case RuleGCD:
		return head + fmt.Sprintf(", gcd %d rem %d)", p.Evidence.Div, p.Evidence.Rem)
	case RuleBoundSep:
		return head + fmt.Sprintf(", bounds %d..%d)", p.Evidence.Lo, p.Evidence.Hi)
	case RuleUniformStride, RuleDiophantine:
		w := p.Evidence.Witness
		return head + fmt.Sprintf(", witness i=%d->%d elem %d)", w.SrcIter, w.SnkIter, w.Elem)
	}
	return head + ")"
}

// Check re-verifies the decision's evidence against the loop from first
// principles — subscripts are re-evaluated, certificates re-derived — and
// returns an error describing the first inconsistency. It shares no
// conclusions with the decision procedure: witnesses are checked by
// evaluating both subscript expressions, GCD certificates by recomputing the
// gcd and remainder, separations by re-enumerating the iteration box.
func (p PairDecision) Check(loop *lang.Loop) error {
	switch p.Evidence.Rule {
	case RuleAssumed, RuleNonAffine, RuleSymbolMismatch, RuleUnboundedStride, RuleDistanceSpread:
		if p.Verdict == VerdictIndependent {
			return fmt.Errorf("independence verdict with residue rule %s", p.Evidence.Rule)
		}
		return nil
	case RuleScalar:
		if p.A.ScalarName == "" || p.A.ScalarName != p.B.ScalarName {
			return fmt.Errorf("scalar-location rule on non-matching refs %q vs %q", p.A.ScalarName, p.B.ScalarName)
		}
		return nil
	}
	if p.A.Array == nil || p.B.Array == nil {
		return fmt.Errorf("%s rule on scalar references", p.Evidence.Rule)
	}
	fa, oka := lang.AffineSym(p.A.Array.Index, loop.Var)
	fb, okb := lang.AffineSym(p.B.Array.Index, loop.Var)
	if !oka || !okb {
		return fmt.Errorf("%s rule on non-affine subscripts", p.Evidence.Rule)
	}
	if !fa.SymsEqual(fb) {
		return fmt.Errorf("%s rule with mismatched symbolic parts", p.Evidence.Rule)
	}
	evalAt := func(f lang.AffineForm, i int) int { return f.Coef*i + f.Off }
	switch p.Evidence.Rule {
	case RuleSameElement:
		if fa.Coef != 0 || fb.Coef != 0 || fa.Off != fb.Off {
			return fmt.Errorf("same-element rule on subscripts %s vs %s", p.A.Array.Index, p.B.Array.Index)
		}
		return nil
	case RuleDistinctElem:
		if fa.Coef != 0 || fb.Coef != 0 || fa.Off == fb.Off {
			return fmt.Errorf("distinct-elements rule on subscripts %s vs %s", p.A.Array.Index, p.B.Array.Index)
		}
		return nil
	case RuleGCD:
		g := gcd(abs(fa.Coef), abs(fb.Coef))
		if p.Evidence.Div != g || g == 0 {
			return fmt.Errorf("gcd certificate divisor %d, recomputed %d", p.Evidence.Div, g)
		}
		rem := mod(fb.Off-fa.Off, g)
		if rem != p.Evidence.Rem || rem == 0 {
			return fmt.Errorf("gcd certificate remainder %d, recomputed %d", p.Evidence.Rem, rem)
		}
		return nil
	case RuleBoundSep:
		lo, hi := p.Evidence.Lo, p.Evidence.Hi
		if clo, ok := lang.ConstInt(loop.Lo); !ok || clo != lo {
			return fmt.Errorf("bound-separation lower bound %d does not match the loop", lo)
		}
		if chi, ok := lang.ConstInt(loop.Hi); !ok || chi != hi {
			return fmt.Errorf("bound-separation upper bound %d does not match the loop", hi)
		}
		for ia := lo; ia <= hi; ia++ {
			for ib := lo; ib <= hi; ib++ {
				if evalAt(fa, ia) == evalAt(fb, ib) {
					return fmt.Errorf("bound-separation refuted: iterations %d and %d share element %d", ia, ib, evalAt(fa, ia))
				}
			}
		}
		return nil
	case RuleUniformStride, RuleDiophantine:
		w := p.Evidence.Witness
		// The witness is stored source→sink; map back to the (A,B) pair by
		// matching the element on both orientations.
		ea1, eb1 := evalAt(fa, w.SrcIter), evalAt(fb, w.SnkIter)
		ea2, eb2 := evalAt(fa, w.SnkIter), evalAt(fb, w.SrcIter)
		if !(ea1 == eb1 && ea1 == w.Elem) && !(ea2 == eb2 && ea2 == w.Elem) {
			return fmt.Errorf("witness (%d,%d) does not touch a common element %d", w.SrcIter, w.SnkIter, w.Elem)
		}
		return nil
	}
	return fmt.Errorf("unknown rule %s", p.Evidence.Rule)
}

// mod is the non-negative remainder.
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Counts tallies the pair verdicts of the analysis — the numbers behind the
// doacross_dep_{exact,independent,conservative}_total pipeline metrics.
func (a *Analysis) Counts() (exact, independent, conservative int) {
	for _, p := range a.Pairs {
		switch p.Verdict {
		case VerdictExact:
			exact++
		case VerdictIndependent:
			independent++
		case VerdictConservative:
			conservative++
		}
	}
	return
}

// CountConservative returns how many dependences carry the conservative
// flag — the audit's headline refinement metric.
func (a *Analysis) CountConservative() int {
	n := 0
	for _, d := range a.Deps {
		if d.Conservative {
			n++
		}
	}
	return n
}

// Independents returns the pair decisions proven independent, for linting
// provably-redundant synchronization.
func (a *Analysis) Independents() []PairDecision {
	var out []PairDecision
	for _, p := range a.Pairs {
		if p.Verdict == VerdictIndependent {
			out = append(out, p)
		}
	}
	return out
}

// CheckEvidence re-verifies every pair decision's evidence and returns the
// first inconsistency, or nil. It is the analyzer's self-audit: each verdict
// must be re-derivable from the loop text alone.
func (a *Analysis) CheckEvidence() error {
	for _, p := range a.Pairs {
		if err := p.Check(a.Loop); err != nil {
			return fmt.Errorf("dep: pair %s: %w", p, err)
		}
	}
	return nil
}
