package dep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/lang"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func find(deps []Dependence, kind Kind, src, snk, dist int) *Dependence {
	for i := range deps {
		d := deps[i]
		if d.Kind == kind && d.Src.Stmt == src && d.Snk.Stmt == snk && d.Distance == dist {
			return &deps[i]
		}
	}
	return nil
}

func TestAnalyzeFig1(t *testing.T) {
	a := Analyze(lang.MustParse(fig1Source))
	// The paper's two loop-carried dependences: S3 writes A[I]; S1 reads
	// A[I-2] (distance 2), S2 reads A[I-1] (distance 1).
	if d := find(a.Deps, Flow, 2, 0, 2); d == nil {
		t.Errorf("missing flow S3->S1 dist 2; have %v", a.Deps)
	} else if d.LexForward() {
		t.Error("S3->S1 should be lexically backward (LBD)")
	}
	if d := find(a.Deps, Flow, 2, 1, 1); d == nil {
		t.Errorf("missing flow S3->S2 dist 1; have %v", a.Deps)
	} else if d.LexForward() {
		t.Error("S3->S2 should be lexically backward (LBD)")
	}
	// Loop-independent flow: S1 writes B[I], S3 reads B[I].
	if d := find(a.Deps, Flow, 0, 2, 0); d == nil {
		t.Errorf("missing loop-independent flow S1->S3 (B); have %v", a.Deps)
	} else if !d.LexForward() {
		t.Error("S1->S3 should be lexically forward")
	}
	carried := a.Carried()
	if len(carried) != 2 {
		t.Errorf("carried deps = %v, want exactly the two A dependences", carried)
	}
	if a.IsDoall() {
		t.Error("Fig.1 loop must not be DOALL")
	}
	lfd, lbd := a.CountLexical()
	if lfd != 0 || lbd != 2 {
		t.Errorf("lexical counts = (%d LFD, %d LBD), want (0, 2)", lfd, lbd)
	}
}

func TestAnalyzeForwardCarried(t *testing.T) {
	// S1 writes A[I], S2 reads A[I-1]: carried flow S1->S2 dist 1, and the
	// source is textually first => LFD.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[I] = E[I]\nB[I] = A[I-1]\nENDDO"))
	d := find(a.Deps, Flow, 0, 1, 1)
	if d == nil {
		t.Fatalf("missing flow S1->S2 dist 1; have %v", a.Deps)
	}
	if !d.LexForward() {
		t.Error("S1->S2 should be LFD")
	}
}

func TestAnalyzeAntiDependence(t *testing.T) {
	// S1 reads A[I+1]; S2 writes A[I]: iteration i+1 writes the element read
	// at iteration i => anti dependence read->write distance 1.
	a := Analyze(lang.MustParse("DO I = 1, N\nB[I] = A[I+1]\nA[I] = E[I]\nENDDO"))
	if d := find(a.Deps, Anti, 0, 1, 1); d == nil {
		t.Errorf("missing anti S1->S2 dist 1; have %v", a.Deps)
	}
}

func TestAnalyzeOutputDependence(t *testing.T) {
	// S1 writes A[I]; S2 writes A[I-1]: S2 at iteration i+1 overwrites what
	// S1 wrote at iteration i => output S1->S2 distance 1.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[I] = 1\nA[I-1] = 2\nENDDO"))
	if d := find(a.Deps, Output, 0, 1, 1); d == nil {
		t.Errorf("missing output S1->S2 dist 1; have %v", a.Deps)
	}
	// And the loop-independent output A[I-1] after A[I]? Different elements
	// in one iteration, so none at distance 0 in that direction.
	if d := find(a.Deps, Output, 0, 1, 0); d != nil {
		t.Errorf("unexpected distance-0 output dependence %v", *d)
	}
}

func TestAnalyzeSameStatementRecurrence(t *testing.T) {
	// A[I] = A[I-1]: same statement, carried flow distance 1, LBD (src not
	// strictly before snk).
	a := Analyze(lang.MustParse("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO"))
	d := find(a.Deps, Flow, 0, 0, 1)
	if d == nil {
		t.Fatalf("missing self flow dist 1; have %v", a.Deps)
	}
	if d.LexForward() {
		t.Error("same-statement dependence must be LBD")
	}
}

func TestAnalyzeScalarReduction(t *testing.T) {
	a := Analyze(lang.MustParse("DO I = 1, N\nS = S + A[I]\nENDDO"))
	// Carried flow on S with distance 1 (each iteration reads the previous
	// iteration's S).
	if d := find(a.Deps, Flow, 0, 0, 1); d == nil {
		t.Errorf("missing scalar carried flow; have %v", a.Deps)
	}
	if a.IsDoall() {
		t.Error("reduction loop is not DOALL")
	}
}

func TestAnalyzeScalarFlowForward(t *testing.T) {
	// T = A[I]; B[I] = T: loop-independent scalar flow S1->S2, plus carried
	// anti S2's read... the key check: distance-0 flow exists and is LFD.
	a := Analyze(lang.MustParse("DO I = 1, N\nT = A[I]\nB[I] = T\nENDDO"))
	d := find(a.Deps, Flow, 0, 1, 0)
	if d == nil {
		t.Fatalf("missing scalar loop-independent flow; have %v", a.Deps)
	}
	if !d.LexForward() {
		t.Error("T flow should be LFD")
	}
}

func TestAnalyzeDoall(t *testing.T) {
	a := Analyze(lang.MustParse("DO I = 1, N\nA[I] = E[I] + 1\nB[I] = E[I] * 2\nENDDO"))
	if !a.IsDoall() {
		t.Errorf("independent loop should be DOALL; carried = %v", a.Carried())
	}
}

func TestAnalyzeDifferentArraysIndependent(t *testing.T) {
	a := Analyze(lang.MustParse("DO I = 1, N\nA[I] = B[I-1]\nB[I] = C[I-1]\nENDDO"))
	// A write never meets a B read of the same array... B[I] write vs B[I-1]
	// read IS a dependence (S2 -> S1 next iteration, distance 1).
	if d := find(a.Deps, Flow, 1, 0, 1); d == nil {
		t.Errorf("missing B dependence; have %v", a.Deps)
	}
	// But no dependence between A and C.
	for _, d := range a.Deps {
		if d.Src.Name() != d.Snk.Name() {
			t.Errorf("cross-array dependence reported: %v", d)
		}
	}
}

func TestAnalyzeNonAffineConservative(t *testing.T) {
	a := Analyze(lang.MustParse("DO I = 1, N\nA[X[I]] = 1\nB[I] = A[I]\nENDDO"))
	found := false
	for _, d := range a.Deps {
		if d.Conservative && d.Src.Name() == "A" {
			found = true
			if d.Distance != 1 && d.Distance != 0 {
				t.Errorf("conservative distance = %d, want 0 or 1", d.Distance)
			}
		}
	}
	if !found {
		t.Errorf("expected conservative dependence for A[X[I]]; have %v", a.Deps)
	}
}

func TestAnalyzeStrideMismatchGCD(t *testing.T) {
	// A[2*I] vs A[2*I+1]: even vs odd elements never collide.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[2*I] = 1\nB[I] = A[2*I+1]\nENDDO"))
	for _, d := range a.Deps {
		if d.Src.Name() == "A" {
			t.Errorf("even/odd references should be independent: %v", d)
		}
	}
}

func TestAnalyzeConstantSubscript(t *testing.T) {
	// A[3] written every iteration and read every iteration: conservative
	// carried dependences must exist.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[3] = A[3] + B[I]\nENDDO"))
	if a.IsDoall() {
		t.Error("A[3] accumulation must not be DOALL")
	}
}

func TestAnalyzeDistinctConstantsIndependent(t *testing.T) {
	a := Analyze(lang.MustParse("DO I = 1, N\nA[3] = B[I]\nC[I] = A[5]\nENDDO"))
	for _, d := range a.Deps {
		if d.Src.Name() == "A" {
			t.Errorf("A[3] vs A[5] should be independent: %v", d)
		}
	}
}

func TestNonUnitCoefficientDistance(t *testing.T) {
	// A[2*I] write, A[2*I-4] read: gap = ((2*i) - (2*j-4))=0 -> j = i+2.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[2*I] = 1\nB[I] = A[2*I-4]\nENDDO"))
	if d := find(a.Deps, Flow, 0, 1, 2); d == nil {
		t.Errorf("missing flow dist 2 for stride-2 refs; have %v", a.Deps)
	}
}

func TestNonDivisibleOffsetIndependent(t *testing.T) {
	// A[2*I] vs A[2*I-3]: offsets differ by odd amount with stride 2.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[2*I] = 1\nB[I] = A[2*I-3]\nENDDO"))
	for _, d := range a.Deps {
		if d.Src.Name() == "A" {
			t.Errorf("non-divisible offset should be independent: %v", d)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	loop := lang.MustParse(fig1Source)
	a1 := Analyze(loop)
	a2 := Analyze(loop)
	if len(a1.Deps) != len(a2.Deps) {
		t.Fatal("non-deterministic dependence count")
	}
	for i := range a1.Deps {
		if a1.Deps[i].String() != a2.Deps[i].String() {
			t.Errorf("dep %d differs: %v vs %v", i, a1.Deps[i], a2.Deps[i])
		}
	}
}

// TestQuickCarriedDepsJustifySequentialObservations is the semantic property
// anchoring the analyzer: if the analyzer says a loop is DOALL, executing
// iterations in any order must produce the sequential result.
func TestQuickDoallMeansOrderIndependent(t *testing.T) {
	arrays := []string{"A", "B", "C"}
	cfg := &quick.Config{MaxCount: 250}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := &lang.Loop{Var: "I", Lo: &lang.Const{Value: 1}, Hi: &lang.Scalar{Name: "N"}}
		nst := 1 + r.Intn(4)
		for s := 0; s < nst; s++ {
			lhs := &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(5) - 2)}}}
			rhs := &lang.Binary{Op: lang.BinOp(r.Intn(2)), // + or - keeps arithmetic exact
				L: &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(5) - 2)}}},
				R: &lang.ArrayRef{Name: arrays[r.Intn(3)], Index: &lang.Binary{Op: lang.OpAdd, L: &lang.Scalar{Name: "I"}, R: &lang.Const{Value: float64(r.Intn(5) - 2)}}}}
			loop.Body = append(loop.Body, &lang.Assign{Label: "S" + string(rune('1'+s)), LHS: lhs, RHS: rhs})
		}
		a := Analyze(loop)
		if !a.IsDoall() {
			return true // property only constrains DOALL verdicts
		}
		n := 6
		seq := loop.SeedStore(n, 8, uint64(seed)+9)
		rev := seq.Clone()
		if err := loop.Run(seq); err != nil {
			return true
		}
		// Reverse iteration order.
		for i := n; i >= 1; i-- {
			if err := loop.RunIteration(rev, i); err != nil {
				return true
			}
		}
		if d := seq.Diff(rev); d != "" {
			t.Logf("seed %d: DOALL verdict but order matters: %s\n%s", seed, d, loop)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Error("Kind.String mismatch")
	}
}

func TestStrideMismatchOverlap(t *testing.T) {
	// A[2*I] vs A[3*I]: gcd 1 divides everything -> conservative dependence.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[2*I] = 1\nB[I] = A[3*I]\nENDDO"))
	found := false
	for _, d := range a.Deps {
		if d.Src.Name() == "A" && d.Conservative {
			found = true
		}
	}
	if !found {
		t.Errorf("expected conservative dependence for mismatched strides: %v", a.Deps)
	}
}

func TestStrideMismatchGCDDisproof(t *testing.T) {
	// A[2*I] vs A[4*I+1]: gcd 2 does not divide 1 -> provably independent.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[2*I] = 1\nB[I] = A[4*I+1]\nENDDO"))
	for _, d := range a.Deps {
		if d.Src.Name() == "A" {
			t.Errorf("even/odd stride pair should be independent: %v", d)
		}
	}
}

func TestCarriedFlowFilter(t *testing.T) {
	// One carried flow (A) and one carried anti (B).
	a := Analyze(lang.MustParse("DO I = 1, N\nC[I] = A[I-1] + B[I+1]\nA[I] = 1\nB[I] = 2\nENDDO"))
	flows := a.CarriedFlow()
	for _, d := range flows {
		if d.Kind != Flow || !d.Carried() {
			t.Errorf("CarriedFlow returned %v", d)
		}
	}
	if len(flows) == 0 {
		t.Error("expected at least one carried flow dependence")
	}
	if len(flows) >= len(a.Carried()) {
		t.Errorf("CarriedFlow (%d) should filter out the anti dep (%d carried total)", len(flows), len(a.Carried()))
	}
}

func TestScalarOutputDependences(t *testing.T) {
	// Two writes to the same scalar in one iteration: loop-independent
	// output S1->S2 plus carried output S2->S1 (next iteration overwrites).
	a := Analyze(lang.MustParse("DO I = 1, N\nT = A[I]\nT = B[I]\nC[I] = T\nENDDO"))
	if find(a.Deps, Output, 0, 1, 0) == nil {
		t.Errorf("missing loop-independent scalar output dep: %v", a.Deps)
	}
	if find(a.Deps, Output, 1, 0, 1) == nil {
		t.Errorf("missing carried scalar output dep: %v", a.Deps)
	}
}

func TestConservativeOutputDependences(t *testing.T) {
	// Two writes through unanalyzable subscripts.
	a := Analyze(lang.MustParse("DO I = 1, N\nA[X[I]] = 1\nA[Y[I]] = 2\nENDDO"))
	found := false
	for _, d := range a.Deps {
		if d.Kind == Output && d.Conservative {
			found = true
		}
	}
	if !found {
		t.Errorf("expected conservative output dependences: %v", a.Deps)
	}
}
