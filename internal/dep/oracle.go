package dep

import (
	"errors"
	"fmt"

	"doacross/internal/lang"
)

// ErrUntraceable reports that the oracle could not execute the loop (a
// subscript evaluated to a non-finite value, or the bounds are empty), so no
// verdict about the analysis can be drawn.
var ErrUntraceable = errors.New("dep: loop not traceable")

// oracleMaxTrip caps how many iterations the oracle enumerates. Tracing a
// prefix is sound for everything the oracle asserts: a collision observed in
// the prefix refutes independence outright, and the analyzer's dependence
// set must cover the prefix's dependences regardless of what later
// iterations add.
const oracleMaxTrip = 24

// ValidateOracle cross-checks the analysis against a brute-force memory
// trace: it executes the loop sequentially over a small iteration space
// (bounds from the loop, with N bound to n for symbolic bounds; values from
// the seeded store), records the exact address every reference touches at
// every iteration under if-converted semantics (guarded statements still
// touch their locations — the merged store makes the accesses
// unconditional), and diffs the observed dependence set against the
// analyzer's verdicts:
//
//   - a pair proven Independent must show zero common-element collisions;
//   - a pair solved with exact distances must emit precisely the observed
//     (kind, direction, distance) arcs — nothing missing;
//   - a Conservative or fixed-location-web pair must cover its observed
//     collisions by the distance-0/1 web (always true by construction, but
//     the pair decision must exist);
//   - every piece of evidence must re-verify via PairDecision.Check.
//
// It returns nil when the analysis is consistent with the trace,
// ErrUntraceable when the loop cannot be executed, and a descriptive error
// for any disagreement — which is an analyzer bug, never a loop property.
func (a *Analysis) ValidateOracle(n int, seed uint64) error {
	loop := a.Loop
	if err := a.CheckEvidence(); err != nil {
		return err
	}
	store := loop.SeedStore(n, 8, seed)
	lo, hi, err := loop.Bounds(store)
	if err != nil || lo > hi {
		return ErrUntraceable
	}
	if hi-lo+1 > oracleMaxTrip {
		hi = lo + oracleMaxTrip - 1
	}
	refs := collectRefs(loop)

	// Index the analysis: pair decisions and emitted deps by reference
	// identity (statement index + in-statement ordinal).
	type refKey struct{ stmt, pos int }
	type pairKey struct{ a, b refKey }
	key := func(r Ref) refKey { return refKey{r.Stmt, r.Pos} }
	pairs := make(map[pairKey]*PairDecision, len(a.Pairs))
	for i := range a.Pairs {
		p := &a.Pairs[i]
		pairs[pairKey{key(p.A), key(p.B)}] = p
		pairs[pairKey{key(p.B), key(p.A)}] = p
	}
	type depKey struct {
		src, snk refKey
		kind     Kind
		dist     int
	}
	emitted := make(map[depKey]bool, len(a.Deps))
	for _, d := range a.Deps {
		emitted[depKey{key(d.Src), key(d.Snk), d.Kind, d.Distance}] = true
	}

	// Trace: per location, the ordered list of (ref index, iteration)
	// accesses. Within a statement all reads precede the write, matching the
	// analyzer's same-iteration conventions (RHS evaluates before the LHS
	// store); statements execute in textual order; each statement's value
	// effect is applied before the next statement's addresses are evaluated,
	// so subscripts depending on earlier scalar updates trace accurately.
	type loc struct {
		scalar bool
		name   string
		idx    int
	}
	type access struct {
		ref  int
		iter int
	}
	trace := make(map[loc][]access)
	locate := func(r Ref, i int) (loc, error) {
		if r.Array == nil {
			return loc{scalar: true, name: r.ScalarName}, nil
		}
		idx, err := lang.EvalIndex(r.Array.Index, store, loop.Var, i)
		if err != nil {
			return loc{}, err
		}
		return loc{name: r.Array.Name, idx: idx}, nil
	}
	for i := lo; i <= hi; i++ {
		for si, st := range loop.Body {
			// Addresses first: reads, then the statement's write.
			var writes []int
			for ri := range refs {
				if refs[ri].Stmt != si {
					continue
				}
				if refs[ri].Write {
					writes = append(writes, ri)
					continue
				}
				l, err := locate(refs[ri], i)
				if err != nil {
					return ErrUntraceable
				}
				trace[l] = append(trace[l], access{ref: ri, iter: i})
			}
			for _, ri := range writes {
				l, err := locate(refs[ri], i)
				if err != nil {
					return ErrUntraceable
				}
				trace[l] = append(trace[l], access{ref: ri, iter: i})
			}
			// Value effect (real guard semantics — only values, the
			// addresses above were already recorded unconditionally).
			if err := execStmt(st, store, loop.Var, i); err != nil {
				return ErrUntraceable
			}
		}
	}

	// Diff every observed collision against the verdicts.
	for l, accs := range trace {
		for pi := 0; pi < len(accs); pi++ {
			for qi := pi + 1; qi < len(accs); qi++ {
				p, q := accs[pi], accs[qi]
				rp, rq := refs[p.ref], refs[q.ref]
				if !rp.Write && !rq.Write {
					continue
				}
				if p.ref == q.ref && p.iter == q.iter {
					continue
				}
				dist := q.iter - p.iter
				var kind Kind
				switch {
				case rp.Write && rq.Write:
					kind = Output
				case rp.Write:
					kind = Flow
				default:
					kind = Anti
				}
				pd := pairs[pairKey{key(rp), key(rq)}]
				if pd == nil {
					if p.ref == q.ref {
						// A reference colliding with itself across iterations
						// (same location, at most one write side) has no pair
						// of its own; write self-collisions are the
						// fixed-location case handled via other pairs.
						continue
					}
					return fmt.Errorf("dep: no pair decision for observed %s %s[%v] S%d->S%d dist %d",
						kind, l.name, l.idx, rp.Stmt+1, rq.Stmt+1, dist)
				}
				switch pd.Verdict {
				case VerdictIndependent:
					return fmt.Errorf("dep: independence refuted: pair %s observed %s collision at %s[%d] dist %d (iterations %d and %d)",
						pd, kind, l.name, l.idx, dist, p.iter, q.iter)
				case VerdictConservative:
					// Covered transitively by the distance-1 both-direction
					// web plus the distance-0 arc.
					continue
				}
				switch pd.Evidence.Rule {
				case RuleScalar, RuleSameElement:
					// Fixed location: covered transitively by the exact
					// distance-0/1 web.
					continue
				}
				if !emitted[depKey{key(rp), key(rq), kind, dist}] {
					return fmt.Errorf("dep: missed dependence: pair %s observed %s at %s[%d] dist %d (iterations %d and %d) not in exact dependence set",
						pd, kind, l.name, l.idx, dist, p.iter, q.iter)
				}
			}
		}
	}

	// The reverse diff: every exact-distance arc whose witness lies inside
	// the traced range must have been observed.
	observed := make(map[depKey]bool)
	for _, accs := range trace {
		for pi := 0; pi < len(accs); pi++ {
			for qi := pi + 1; qi < len(accs); qi++ {
				p, q := accs[pi], accs[qi]
				rp, rq := refs[p.ref], refs[q.ref]
				if !rp.Write && !rq.Write {
					continue
				}
				var kind Kind
				switch {
				case rp.Write && rq.Write:
					kind = Output
				case rp.Write:
					kind = Flow
				default:
					kind = Anti
				}
				observed[depKey{key(rp), key(rq), kind, q.iter - p.iter}] = true
			}
		}
	}
	for _, d := range a.Deps {
		switch d.Evidence.Rule {
		case RuleUniformStride, RuleDiophantine:
		default:
			continue
		}
		w := d.Evidence.Witness
		if w.SrcIter < lo || w.SnkIter > hi || w.SrcIter > hi || w.SnkIter < lo {
			continue
		}
		if !observed[depKey{key(d.Src), key(d.Snk), d.Kind, d.Distance}] {
			return fmt.Errorf("dep: phantom dependence: %s (witness i=%d->%d) never observed in trace", d, w.SrcIter, w.SnkIter)
		}
	}
	return nil
}

// execStmt applies one statement's value effect to the store with real
// guard semantics (a false guard writes nothing).
func execStmt(st *lang.Assign, store *lang.Store, iv string, i int) error {
	if st.Cond != nil {
		holds, err := st.Cond.Holds(store, iv, i)
		if err != nil {
			return err
		}
		if !holds {
			return nil
		}
	}
	val, err := lang.EvalExpr(st.RHS, store, iv, i)
	if err != nil {
		return err
	}
	switch lhs := st.LHS.(type) {
	case *lang.Scalar:
		store.SetScalar(lhs.Name, val)
	case *lang.ArrayRef:
		idx, err := lang.EvalIndex(lhs.Index, store, iv, i)
		if err != nil {
			return err
		}
		store.SetElem(lhs.Name, idx, val)
	}
	return nil
}
