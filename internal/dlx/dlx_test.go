package dlx

import "testing"

func TestStandardConfig(t *testing.T) {
	c := Standard(4, 2)
	if c.Issue != 4 {
		t.Errorf("issue = %d", c.Issue)
	}
	if c.Units[LoadStore] != 2 || c.Units[Divider] != 2 {
		t.Errorf("units = %v", c.Units)
	}
	if c.Latency[Multiplier] != 3 {
		t.Errorf("mul latency = %d, want 3", c.Latency[Multiplier])
	}
	if c.Latency[Divider] != 6 {
		t.Errorf("div latency = %d, want 6", c.Latency[Divider])
	}
	if c.Latency[LoadStore] != 1 || c.Latency[Integer] != 1 || c.Latency[Shifter] != 1 {
		t.Error("single-cycle units must have latency 1")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUniformConfig(t *testing.T) {
	c := Uniform(4, 1)
	if c.Latency[Multiplier] != 1 || c.Latency[Divider] != 1 {
		t.Error("uniform config must have all-1 latencies")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPaperConfigs(t *testing.T) {
	cs := PaperConfigs()
	if len(cs) != 4 {
		t.Fatalf("got %d configs, want 4", len(cs))
	}
	wantNames := []string{"2-issue(#FU=1)", "2-issue(#FU=2)", "4-issue(#FU=1)", "4-issue(#FU=2)"}
	for i, c := range cs {
		if c.Name != wantNames[i] {
			t.Errorf("config %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := Standard(2, 1)
	c.Issue = 0
	if err := c.Validate(); err == nil {
		t.Error("issue=0 should fail validation")
	}
	c = Standard(2, 1)
	c.Units[Float] = 0
	if err := c.Validate(); err == nil {
		t.Error("no float unit should fail validation")
	}
	c = Standard(2, 1)
	c.Latency[Integer] = 0
	if err := c.Validate(); err == nil {
		t.Error("latency 0 should fail validation")
	}
}

func TestSyncNeedsNoUnit(t *testing.T) {
	if NeedsUnit(Sync) {
		t.Error("sync ops must not occupy a function unit")
	}
	for _, cls := range []Class{LoadStore, Integer, Float, Multiplier, Divider, Shifter} {
		if !NeedsUnit(cls) {
			t.Errorf("%v should need a unit", cls)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		LoadStore: "load/store", Integer: "integer", Float: "float",
		Multiplier: "multiplier", Divider: "divider", Shifter: "shifter", Sync: "sync",
	}
	for cls, want := range names {
		if cls.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(cls), cls.String(), want)
		}
	}
}

func TestStandardPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Standard(0, 1) },
		func() { Standard(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
