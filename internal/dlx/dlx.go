// Package dlx describes the DLX-like superscalar target machine of the
// paper's evaluation: an in-order multi-issue processor with typed function
// units. Section 4 of the paper fixes the unit mix — load/store, integer,
// floating-point, multiplier, divider and shifter units — with the
// multiplier taking 3 cycles, the divider 6, and everything else 1, and
// evaluates four configurations: {2,4}-issue × {1,2} units of each type.
package dlx

import "fmt"

// Class identifies a function-unit class.
type Class int

// Function-unit classes. Sync is the pseudo-class for Send_Signal /
// Wait_Signal operations: they consume an issue slot but no function unit
// (the synchronization hardware is a shared signal vector, not a pipeline).
const (
	LoadStore Class = iota
	Integer
	Float
	Multiplier
	Divider
	Shifter
	Sync
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case LoadStore:
		return "load/store"
	case Integer:
		return "integer"
	case Float:
		return "float"
	case Multiplier:
		return "multiplier"
	case Divider:
		return "divider"
	case Shifter:
		return "shifter"
	case Sync:
		return "sync"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Config is one superscalar machine configuration.
type Config struct {
	// Name identifies the configuration in reports (e.g. "4-issue(#FU=2)").
	Name string
	// Issue is the number of instructions issued per cycle.
	Issue int
	// Units[c] is the number of function units of class c. Units[Sync] is
	// ignored: sync operations never contend for a unit.
	Units [NumClasses]int
	// Latency[c] is the result latency in cycles of class c.
	Latency [NumClasses]int
}

// Standard returns the paper's configuration with the given issue width and
// per-class function-unit count.
func Standard(issue, fuCount int) Config {
	if issue < 1 {
		panic(fmt.Sprintf("dlx: invalid issue width %d", issue))
	}
	if fuCount < 1 {
		panic(fmt.Sprintf("dlx: invalid FU count %d", fuCount))
	}
	c := Config{
		Name:  fmt.Sprintf("%d-issue(#FU=%d)", issue, fuCount),
		Issue: issue,
	}
	for cls := Class(0); cls < NumClasses; cls++ {
		c.Units[cls] = fuCount
		c.Latency[cls] = 1
	}
	c.Latency[Multiplier] = 3
	c.Latency[Divider] = 6
	c.Units[Sync] = 0 // unused
	return c
}

// Uniform returns a configuration where every unit has single-cycle latency
// (the setting of the paper's Fig. 4 worked example, which packs multiply
// results into the very next row).
func Uniform(issue, fuCount int) Config {
	c := Standard(issue, fuCount)
	c.Name = fmt.Sprintf("%d-issue(#FU=%d,uniform)", issue, fuCount)
	c.Latency[Multiplier] = 1
	c.Latency[Divider] = 1
	return c
}

// PaperConfigs returns the four machine configurations of Table 2 in
// presentation order: 2-issue(#FU=1), 2-issue(#FU=2), 4-issue(#FU=1),
// 4-issue(#FU=2).
func PaperConfigs() []Config {
	return []Config{
		Standard(2, 1),
		Standard(2, 2),
		Standard(4, 1),
		Standard(4, 2),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Issue < 1 {
		return fmt.Errorf("dlx: issue width %d < 1", c.Issue)
	}
	for cls := Class(0); cls < NumClasses; cls++ {
		if cls == Sync {
			continue
		}
		if c.Units[cls] < 1 {
			return fmt.Errorf("dlx: no %s unit", cls)
		}
		if c.Latency[cls] < 1 {
			return fmt.Errorf("dlx: %s latency %d < 1", cls, c.Latency[cls])
		}
	}
	return nil
}

// NeedsUnit reports whether instructions of class c occupy a function unit.
func NeedsUnit(c Class) bool { return c != Sync }
