package pipeline

import (
	"strings"
	"testing"

	"doacross/internal/exact"
	"doacross/internal/passes"
)

// exactOpts returns batch options scheduling the sync slot through the exact
// backend with the given node budget.
func exactOpts(budget int64, cache *Cache) Options {
	return Options{
		Cache:   cache,
		Compile: passes.Options{Backend: "exact", Exact: exact.Options{MaxNodes: budget}},
	}
}

// TestExactBackendPipeline drives the exact backend through the full batch
// pipeline: the served schedule must carry a proof, pass the verify stage,
// and be restored intact from the cache on a second batch.
func TestExactBackendPipeline(t *testing.T) {
	cache := NewCache()
	b := run(t, []string{fig1}, exactOpts(0, cache))
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	mr := b.Loops[0].Machines[0]
	if mr.Backend != "exact" {
		t.Fatalf("backend = %q, want exact", mr.Backend)
	}
	if mr.Degraded {
		t.Fatalf("degraded: %s", mr.DegradedReason)
	}
	if !mr.Optimal {
		t.Fatalf("default budget did not prove fig1 optimal: %s", mr.BackendNote)
	}
	if mr.LowerBound != mr.PredictedT {
		t.Fatalf("optimal but bound %d != T=%d", mr.LowerBound, mr.PredictedT)
	}
	if mr.SearchNodes == 0 {
		t.Fatal("no search nodes recorded")
	}
	if mr.Sync.Method != "exact" {
		t.Fatalf("served schedule method %q", mr.Sync.Method)
	}
	if mr.SyncTime < mr.PredictedT {
		t.Fatalf("simulated %d below the predicted bound %d", mr.SyncTime, mr.PredictedT)
	}
	// Second batch: the proven result is served from the cache with its
	// evidence intact.
	b2 := run(t, []string{fig1}, exactOpts(0, cache))
	mr2 := b2.Loops[0].Machines[0]
	if !mr2.CacheHit {
		t.Fatal("proven-optimal exact result missed the cache")
	}
	if !mr2.Optimal || mr2.PredictedT != mr.PredictedT || mr2.LowerBound != mr.LowerBound ||
		mr2.SearchNodes != mr.SearchNodes || mr2.Backend != "exact" {
		t.Fatalf("cache hit lost the outcome evidence: %+v vs %+v", mr2, mr)
	}
	if n := b2.Stats.Stage("schedule").Count; n != 0 {
		t.Fatalf("second batch rescheduled %d times, want 0", n)
	}
}

// TestExactBudgetExhaustedNeverCached is the regression test for the
// verify-before-publish cache path: a budget-exhausted exact result must be
// marked non-optimal with a diagnostic, still be served (verified, not
// degraded) — and never be published to the schedule cache, so a later run
// with more budget is free to do better.
func TestExactBudgetExhaustedNeverCached(t *testing.T) {
	cache := NewCache()
	b := run(t, []string{fig1}, exactOpts(1, cache))
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	mr := b.Loops[0].Machines[0]
	if mr.Backend != "exact" {
		t.Fatalf("backend = %q, want exact", mr.Backend)
	}
	if mr.Optimal {
		t.Fatal("budget-exhausted result claims optimality")
	}
	if !strings.Contains(mr.BackendNote, "budget exhausted") {
		t.Fatalf("note %q does not name budget exhaustion", mr.BackendNote)
	}
	if mr.Degraded {
		t.Fatalf("anytime result needlessly degraded: %s", mr.DegradedReason)
	}
	if mr.Sync == nil || mr.Sync.Validate() != nil {
		t.Fatal("served schedule invalid")
	}
	if mr.LowerBound > mr.PredictedT {
		t.Fatalf("bound %d above served T=%d", mr.LowerBound, mr.PredictedT)
	}
	// Second batch over the same cache: the compile memo may hit, but the
	// schedule must be recomputed — the non-optimal entry was not published.
	b2 := run(t, []string{fig1}, exactOpts(1, cache))
	if err := b2.FirstErr(); err != nil {
		t.Fatal(err)
	}
	mr2 := b2.Loops[0].Machines[0]
	if mr2.CacheHit {
		t.Fatal("budget-exhausted exact result was served from the cache")
	}
	if n := b2.Stats.Stage("schedule").Count; n != 1 {
		t.Fatalf("second batch ran schedule %d times, want 1 (recompute)", n)
	}
	if mr2.Optimal {
		t.Fatal("recomputed budget-exhausted result claims optimality")
	}
	// A third batch with an adequate budget must now be allowed to publish
	// its proven result under the same options-independent key space.
	b3 := run(t, []string{fig1}, exactOpts(0, cache))
	mr3 := b3.Loops[0].Machines[0]
	if !mr3.Optimal {
		t.Fatalf("default budget did not prove fig1: %s", mr3.BackendNote)
	}
	if mr3.PredictedT > mr.PredictedT {
		t.Fatalf("bigger budget produced worse T: %d vs %d", mr3.PredictedT, mr.PredictedT)
	}
	b4 := run(t, []string{fig1}, exactOpts(0, cache))
	if !b4.Loops[0].Machines[0].CacheHit {
		t.Fatal("proven result from the bigger budget was not published")
	}
}

// TestBackendCacheKeysDisjoint: entries produced under different backends
// must never cross in a shared cache.
func TestBackendCacheKeysDisjoint(t *testing.T) {
	cache := NewCache()
	b := run(t, []string{fig1}, Options{Cache: cache})
	if b.Loops[0].Machines[0].Backend != "sync" {
		t.Fatalf("default backend = %q", b.Loops[0].Machines[0].Backend)
	}
	b2 := run(t, []string{fig1}, Options{Cache: cache, Compile: passes.Options{Backend: "order"}})
	mr2 := b2.Loops[0].Machines[0]
	if mr2.CacheHit {
		t.Fatal("order backend served the sync backend's cached schedule")
	}
	if mr2.Backend != "order" {
		t.Fatalf("backend = %q, want order", mr2.Backend)
	}
	if n := b2.Stats.Stage("schedule").Count; n != 1 {
		t.Fatalf("schedule ran %d times, want 1", n)
	}
}

// TestBackendUnknownFailsFast: a mistyped backend fails the batch before any
// compilation, naming the accepted backends.
func TestBackendUnknownFailsFast(t *testing.T) {
	_, err := Run([]Request{{Source: fig1}}, Options{Compile: passes.Options{Backend: "exacto"}})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	if !strings.Contains(err.Error(), "exact") {
		t.Fatalf("error %q does not list the accepted backends", err)
	}
}
