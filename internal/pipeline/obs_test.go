package pipeline

// Tests of the observability layer as wired into the pipeline: the span tree
// a real batch records, and the chaos scrape test that hammers the admin
// surface while a fault-injected batch runs (in CI this runs under -race).

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"doacross/internal/faults"
	"doacross/internal/obs"
)

// TestSpanTree: a traced batch records the full batch → request → stage →
// pass hierarchy, one request span per loop with its stages nested inside.
func TestSpanTree(t *testing.T) {
	rec := obs.NewRecorder(0)
	srcs := corpus(6)
	b := run(t, srcs, Options{Workers: 3, Observer: rec})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}

	spans := rec.Snapshot()
	tree := obs.BuildTree(spans)
	var batches, requests, stages, passes int
	for _, s := range spans {
		switch s.Kind {
		case obs.KindBatch:
			batches++
		case obs.KindRequest:
			requests++
		case obs.KindStage:
			stages++
			if s.Name != "compile" && s.Name != StageSchedule && s.Name != StageVerify && s.Name != StageSimulate {
				t.Errorf("unexpected stage span %q", s.Name)
			}
		case obs.KindPass:
			passes++
			// Every pass span chains pass → stage → request → batch.
			path := tree.Path(s.ID)
			want := []obs.Kind{obs.KindBatch, obs.KindRequest, obs.KindStage, obs.KindPass}
			if len(path) != len(want) {
				t.Fatalf("pass %q path %v, want %v", s.Name, path, want)
			}
			for i := range want {
				if path[i] != want[i] {
					t.Fatalf("pass %q path %v, want %v", s.Name, path, want)
				}
			}
		}
	}
	if batches != 1 {
		t.Errorf("got %d batch spans, want 1", batches)
	}
	if requests != len(srcs) {
		t.Errorf("got %d request spans, want %d", requests, len(srcs))
	}
	// Each request runs compile, schedule, verify and simulate (one machine).
	if stages != 4*len(srcs) {
		t.Errorf("got %d stage spans, want %d", stages, 4*len(srcs))
	}
	if passes == 0 {
		t.Error("no pass spans recorded")
	}
	// Stage spans live on their request's track (parallel-lane rendering).
	for _, s := range spans {
		if s.Kind != obs.KindStage {
			continue
		}
		parent, ok := tree.ByID[s.Parent]
		if !ok {
			t.Fatalf("stage %q has no parent in snapshot", s.Name)
		}
		if s.Track != parent.Track {
			t.Errorf("stage %q track %d, parent track %d", s.Name, s.Track, parent.Track)
		}
	}
}

// TestSpanTreeDisabled: a nil Observer must record nothing and change
// nothing — the disabled path is exercised by every other pipeline test, but
// pin the explicit contract here.
func TestSpanTreeDisabled(t *testing.T) {
	var rec *obs.Recorder
	b := run(t, corpus(2), Options{Observer: rec})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot(); got != nil {
		t.Fatalf("nil observer recorded %d spans", len(got))
	}
}

// TestChaosScrapeMetrics drives a fault-injected batch while goroutines
// concurrently scrape the admin surface and snapshot the span ring — the
// -race CI job turns any unsynchronized access in the hot path into a
// failure. Afterwards the final exposition and trace must be well-formed.
func TestChaosScrapeMetrics(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 80
	}
	in := faults.MustNew(faults.Plan{
		Seed:     1997,
		Error:    0.05,
		Panic:    0.04,
		Budget:   0.04,
		DelayFor: 0,
	})
	metrics := NewMetrics()
	rec := obs.NewRecorder(1024)
	srv := &obs.Server{
		Recorder: rec,
		Metrics:  metrics.WritePrometheus,
		Stats:    func() any { return metrics.Stats() },
	}
	handler := srv.Handler()

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/stats", "/trace", "/healthz"} {
					w := httptest.NewRecorder()
					handler.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
					if w.Code != 200 {
						t.Errorf("%s returned %d mid-batch", path, w.Code)
						return
					}
					_, _ = io.Copy(io.Discard, w.Result().Body)
				}
				if tr := obs.BuildTree(rec.Snapshot()); tr == nil {
					t.Error("snapshot tree nil")
					return
				}
			}
		}()
	}

	b, err := Run(reqsFor(corpus(n)), Options{
		Workers:   8,
		Cache:     NewCacheBounded(64),
		Metrics:   metrics,
		FaultHook: in.Hook(),
		Observer:  rec,
	})
	close(done)
	scrapers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Loops) != n {
		t.Fatalf("got %d results for %d requests", len(b.Loops), n)
	}

	// Final exposition: well-formed histogram plus the chaos counters.
	w := httptest.NewRecorder()
	handler.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE doacross_stage_duration_seconds histogram",
		`doacross_stage_duration_seconds_bucket{stage="schedule",le="+Inf"}`,
		"doacross_sim_signals_sent_total",
		"doacross_workers_in_flight 0",
		"doacross_queue_depth 0",
		"doacross_cache_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
	// The span ring survived the batch: one batch root, every span's parent
	// resolvable or promoted to root, and the Chrome export is valid JSON
	// (exercised via the /trace endpoint above; here check shape).
	spans := rec.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded under chaos")
	}
	tree := obs.BuildTree(spans)
	if len(tree.Children[0]) == 0 {
		t.Fatal("no root spans in tree")
	}
	st := metrics.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("gauges not drained: inflight=%d queue=%d", st.InFlight, st.QueueDepth)
	}
}
