package pipeline

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// statsJSON marshals a snapshot for expvar (errors cannot happen: Stats is
// a plain struct of integers, strings and durations).
func statsJSON(s Stats) string {
	b, err := json.Marshal(s)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Prometheus text-format exposition of the metrics registry. The per-stage
// latency buckets synthesize native Prometheus histograms (the bucket
// bounds become cumulative `le` labels), the cache/robustness counters and
// the liveness/cache gauges are exported under stable doacross_* names, and
// the paper-level simulation counters ride along so dashboards can plot
// Send_Signal traffic and wait-stall cycles next to wall-clock latency.

// promBounds renders the shared bucket bounds as Prometheus `le` values in
// seconds.
func promBounds() []string {
	out := make([]string, len(bucketBounds))
	for i, b := range bucketBounds {
		out[i] = strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
	}
	return out
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histogram buckets are cumulative per the format;
// the registry's per-stage buckets are disjoint, so they are summed on the
// way out.
func (s Stats) WritePrometheus(w io.Writer) {
	le := promBounds()
	fmt.Fprintln(w, "# HELP doacross_stage_duration_seconds Latency of pipeline stages and compilation passes.")
	fmt.Fprintln(w, "# TYPE doacross_stage_duration_seconds histogram")
	for _, st := range s.Stages {
		cum := int64(0)
		for i, bound := range le {
			cum += st.Buckets[i]
			fmt.Fprintf(w, "doacross_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", st.Stage, bound, cum)
		}
		fmt.Fprintf(w, "doacross_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.Stage, st.Count)
		fmt.Fprintf(w, "doacross_stage_duration_seconds_sum{stage=%q} %s\n", st.Stage,
			strconv.FormatFloat(st.Total.Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, "doacross_stage_duration_seconds_count{stage=%q} %d\n", st.Stage, st.Count)
	}

	fmt.Fprintln(w, "# HELP doacross_stage_runs_total Completed executions per stage.")
	fmt.Fprintln(w, "# TYPE doacross_stage_runs_total counter")
	for _, st := range s.Stages {
		fmt.Fprintf(w, "doacross_stage_runs_total{stage=%q} %d\n", st.Stage, st.Count)
	}
	fmt.Fprintln(w, "# HELP doacross_stage_errors_total Failed executions per stage.")
	fmt.Fprintln(w, "# TYPE doacross_stage_errors_total counter")
	for _, st := range s.Stages {
		fmt.Fprintf(w, "doacross_stage_errors_total{stage=%q} %d\n", st.Stage, st.Errors)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("doacross_cache_hits_total", "Schedule-cache hits.", s.CacheHits)
	counter("doacross_cache_misses_total", "Schedule-cache misses.", s.CacheMisses)
	counter("doacross_cache_evictions_total", "Schedule-cache entries evicted by the capacity bound.", s.CacheEvictions)
	counter("doacross_panics_recovered_total", "Panics recovered inside workers, stages and passes.", s.Panics)
	counter("doacross_request_timeouts_total", "Requests lost to deadlines or cancellation.", s.Timeouts)
	counter("doacross_fallbacks_total", "Requests served by the verified program-order fallback schedule.", s.Fallbacks)
	counter("doacross_schedules_verified_total", "Schedule sets accepted by the independent post-schedule verifier.", s.Verified)
	counter("doacross_schedules_rejected_total", "Schedule sets the independent post-schedule verifier refused to serve.", s.Rejected)
	counter("doacross_lint_findings_total", "Synchronization-linter findings across fresh compilations.", s.LintFindings)
	counter("doacross_dep_exact_total", "Dependence pairs proven exact (distances enumerated with witnesses) across fresh compilations.", s.DepExact)
	counter("doacross_dep_independent_total", "Dependence pairs proven independent (GCD or bound-separation certificate) across fresh compilations.", s.DepIndependent)
	counter("doacross_dep_conservative_total", "Dependence pairs assumed conservative (undecidable residue) across fresh compilations.", s.DepConservative)
	counter("doacross_sim_signals_sent_total", "Send_Signal issues across served simulations (paper-level sync traffic).", s.SignalsSent)
	counter("doacross_sim_wait_stall_cycles_total", "Cycles lost to Wait_Signal stalls across served simulations.", s.WaitStallCycles)
	counter("doacross_sched_lbd_arcs_total", "Synchronization arcs left lexically backward by served schedules.", s.LBDArcs)
	counter("doacross_sched_lfd_arcs_total", "Synchronization arcs placed lexically forward by served schedules.", s.LFDArcs)
	if s.MachineSlotsTotal > 0 {
		labeled := func(name, help string, vals ...struct {
			label string
			v     int64
		}) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, lv := range vals {
				fmt.Fprintf(w, "%s{cause=%q} %d\n", name, lv.label, lv.v)
			}
		}
		type lv = struct {
			label string
			v     int64
		}
		counter("doacross_sim_issue_slots_total", "Issue slots offered by the machine (procs x cycles x width) across traced served simulations.", s.MachineSlotsTotal)
		counter("doacross_sim_issue_slots_used_total", "Issue slots actually filled by an instruction across traced served simulations.", s.MachineSlotsUsed)
		labeled("doacross_sim_machine_cycles_total",
			"Processor cycles across traced served simulations, split by attributed cause.",
			lv{"issued", s.MachineCyclesIssued},
			lv{"sync_wait", s.MachineCyclesSyncWait},
			lv{"window_wait", s.MachineCyclesWindowWait},
			lv{"drain", s.MachineCyclesDrain})
		labeled("doacross_sim_empty_slots_total",
			"Empty issue slots on cycles that did issue, split by the static reason the slot stayed empty.",
			lv{"raw", s.MachineEmptyRAW},
			lv{"fu_busy", s.MachineEmptyFUBusy},
			lv{"issue_width", s.MachineEmptyIssueWidth},
			lv{"drain", s.MachineEmptyDrain})
	}
	gauge("doacross_workers_in_flight", "Requests currently executing inside a worker.", s.InFlight)
	gauge("doacross_queue_depth", "Requests enqueued but not yet picked up by a worker.", s.QueueDepth)
	gauge("doacross_cache_entries", "Entries resident in the attached schedule cache.", s.CacheEntries)
}

// WritePrometheus snapshots the registry and writes the exposition; the
// obs.Server /metrics hook is exactly this method.
func (m *Metrics) WritePrometheus(w io.Writer) { m.Stats().WritePrometheus(w) }

// expvarMu serializes expvar publication (expvar.Publish panics on
// duplicate names, and tests publish concurrently under -race).
var expvarMu sync.Mutex

// PublishExpvar publishes the registry under the given expvar name (default
// "doacross.pipeline"): `GET /debug/vars` then carries the full Stats
// snapshot as JSON. Publishing the same name twice rebinds it to the latest
// registry instead of panicking.
func (m *Metrics) PublishExpvar(name string) {
	if name == "" {
		name = "doacross.pipeline"
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if h, ok := v.(*expvarHolder); ok {
			h.mu.Lock()
			h.m = m
			h.mu.Unlock()
			return
		}
		return // name taken by someone else; leave it alone
	}
	h := &expvarHolder{m: m}
	expvar.Publish(name, h)
}

// expvarHolder adapts a Metrics registry to expvar.Var, rebinding-friendly.
type expvarHolder struct {
	mu sync.Mutex
	m  *Metrics
}

// String implements expvar.Var: the JSON of a fresh Stats snapshot.
func (h *expvarHolder) String() string {
	h.mu.Lock()
	m := h.m
	h.mu.Unlock()
	return statsJSON(m.Stats())
}
