package pipeline

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage for metrics.
type Stage int

// Pipeline stages.
const (
	// StageCompile covers parse → dependence analysis → synchronization
	// insertion → code generation → graph construction.
	StageCompile Stage = iota
	// StageSchedule covers building the list/sync/best schedules.
	StageSchedule
	// StageSimulate covers timing the schedules.
	StageSimulate
	numStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageCompile:
		return "compile"
	case StageSchedule:
		return "schedule"
	case StageSimulate:
		return "simulate"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Latency bucket upper bounds; the final bucket is unbounded.
var bucketBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// numBuckets is len(bucketBounds) plus the overflow bucket.
const numBuckets = len(bucketBounds) + 1

// bucketLabel names bucket i for reports.
func bucketLabel(i int) string {
	if i < len(bucketBounds) {
		return "<" + bucketBounds[i].String()
	}
	return ">=" + bucketBounds[len(bucketBounds)-1].String()
}

// stageMetrics is the hot-path side of one stage: atomic counters only, safe
// for concurrent workers without locks.
type stageMetrics struct {
	count   atomic.Int64
	errs    atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Metrics is the embedded metrics registry of a pipeline: per-stage counts,
// error counts and latency buckets, plus cache hit/miss counters. All
// methods are safe for concurrent use; the zero value is ready to use.
type Metrics struct {
	stages       [numStages]stageMetrics
	hits, misses atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe records one completed stage execution.
func (m *Metrics) Observe(st Stage, d time.Duration) {
	s := &m.stages[st]
	s.count.Add(1)
	ns := d.Nanoseconds()
	s.totalNS.Add(ns)
	for {
		old := s.maxNS.Load()
		if ns <= old || s.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	b := len(bucketBounds)
	for i, bound := range bucketBounds {
		if d < bound {
			b = i
			break
		}
	}
	s.buckets[b].Add(1)
}

// Error records a failed stage execution.
func (m *Metrics) Error(st Stage) { m.stages[st].errs.Add(1) }

// CacheHit records a schedule-cache hit.
func (m *Metrics) CacheHit() { m.hits.Add(1) }

// CacheMiss records a schedule-cache miss.
func (m *Metrics) CacheMiss() { m.misses.Add(1) }

// timed runs f, records its latency under st, and counts an error if f
// reports one.
func (m *Metrics) timed(st Stage, f func() error) error {
	start := time.Now()
	err := f()
	m.Observe(st, time.Since(start))
	if err != nil {
		m.Error(st)
	}
	return err
}

// StageStats is a point-in-time snapshot of one stage.
type StageStats struct {
	Stage  string
	Count  int64
	Errors int64
	Total  time.Duration
	Max    time.Duration
	// Buckets[i] counts executions with latency below bucketBounds[i]
	// (the last bucket is the overflow).
	Buckets [numBuckets]int64
}

// Mean returns the average latency, 0 when nothing ran.
func (s StageStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Stats is a consistent-enough snapshot of a Metrics registry (each counter
// is read atomically; the set is not a transaction, which is fine for
// monitoring).
type Stats struct {
	Stages                 [numStages]StageStats
	CacheHits, CacheMisses int64
}

// Stats snapshots the registry.
func (m *Metrics) Stats() Stats {
	var out Stats
	for i := Stage(0); i < numStages; i++ {
		s := &m.stages[i]
		ss := StageStats{
			Stage:  i.String(),
			Count:  s.count.Load(),
			Errors: s.errs.Load(),
			Total:  time.Duration(s.totalNS.Load()),
			Max:    time.Duration(s.maxNS.Load()),
		}
		for b := 0; b < numBuckets; b++ {
			ss.Buckets[b] = s.buckets[b].Load()
		}
		out.Stages[i] = ss
	}
	out.CacheHits = m.hits.Load()
	out.CacheMisses = m.misses.Load()
	return out
}

// HitRate returns the cache hit fraction in [0, 1], 0 when the cache was
// never consulted.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stage returns the snapshot of the named stage, or a zero snapshot.
func (s Stats) Stage(name string) StageStats {
	for _, st := range s.Stages {
		if st.Stage == name {
			return st
		}
	}
	return StageStats{}
}

// String renders a monitoring report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
		s.CacheHits, s.CacheMisses, 100*s.HitRate())
	for _, st := range s.Stages {
		fmt.Fprintf(&sb, "%-9s %6d runs, %3d errors, mean %9v, max %9v, total %9v\n",
			st.Stage, st.Count, st.Errors, st.Mean().Round(time.Microsecond),
			st.Max.Round(time.Microsecond), st.Total.Round(time.Microsecond))
		if st.Count == 0 {
			continue
		}
		sb.WriteString("          latency:")
		for b := 0; b < numBuckets; b++ {
			if st.Buckets[b] == 0 {
				continue
			}
			fmt.Fprintf(&sb, " %s=%d", bucketLabel(b), st.Buckets[b])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
