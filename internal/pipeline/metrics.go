package pipeline

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doacross/internal/passes"
	"doacross/internal/sim"
)

// Stage names of the batch pipeline's own stages. Compilation is no longer
// one coarse "compile" stage: the pass manager (internal/passes) reports
// each compilation pass under its own name (parse, ifconvert, analyze,
// syncinsert, codegen, graph, plus the optional unroll/migrate), so the
// registry holds per-pass latency buckets next to these two.
const (
	// StageSchedule covers building the list/sync/best schedules.
	StageSchedule = "schedule"
	// StageVerify covers the independent post-schedule verification of the
	// schedules about to be served (internal/check re-derives the dependence
	// edges and re-checks the synchronization conditions; the name matches
	// the check package's diagnostic stage).
	StageVerify = "check"
	// StageSimulate covers timing the schedules.
	StageSimulate = "simulate"
)

// stageOrder fixes the reporting order: compilation passes in pipeline
// order, then scheduling and simulation; stages the registry saw that are
// not listed here sort alphabetically after them.
var stageOrder = []string{
	passes.PassParse, passes.PassUnroll, passes.PassIfConvert, passes.PassAnalyze,
	passes.PassMigrate, passes.PassSyncInsert, passes.PassCodegen, passes.PassGraph,
	StageSchedule, StageVerify, StageSimulate,
}

// stageRank maps a stage name to its reporting position.
func stageRank(name string) int {
	for i, s := range stageOrder {
		if s == name {
			return i
		}
	}
	return len(stageOrder)
}

// Latency bucket upper bounds; the final bucket is unbounded.
var bucketBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// numBuckets is len(bucketBounds) plus the overflow bucket.
const numBuckets = len(bucketBounds) + 1

// bucketLabel names bucket i for reports.
func bucketLabel(i int) string {
	if i < len(bucketBounds) {
		return "<" + bucketBounds[i].String()
	}
	return ">=" + bucketBounds[len(bucketBounds)-1].String()
}

// stageMetrics is the hot-path side of one stage: atomic counters only, safe
// for concurrent workers without locks.
type stageMetrics struct {
	count   atomic.Int64
	errs    atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Metrics is the embedded metrics registry of a pipeline: per-stage counts,
// error counts and latency buckets keyed by stage name, plus cache hit/miss
// counters. Stages register themselves on first observation, so the
// registry needs no advance knowledge of which optional passes a pipeline
// runs. All methods are safe for concurrent use; the zero value is ready.
//
// Metrics implements passes.Tracer, so a registry can be handed straight to
// the pass manager for per-pass latency tracking.
type Metrics struct {
	mu           sync.RWMutex
	stages       map[string]*stageMetrics
	hits, misses atomic.Int64
	// Robustness counters: recovered worker/pass panics, requests that hit
	// a deadline or cancellation, and schedules served by the verified
	// program-order fallback.
	panics, timeouts, fallbacks atomic.Int64
	// Verification counters: schedule sets the independent verifier
	// (internal/check) accepted respectively rejected before serving, and
	// synchronization-linter findings recorded at compile time.
	verified, rejected, lintFindings atomic.Int64
	// Dependence-analysis decision counters across fresh compilations: pair
	// verdicts proven exact (distances enumerated with witnesses), proven
	// independent (GCD / bound-separation certificate), and assumed
	// conservative (undecidable residue).
	depExact, depIndependent, depConservative atomic.Int64
	// Liveness gauges: requests currently inside a worker and requests not
	// yet handed to one, maintained by the batch pipeline.
	inFlight, queueDepth atomic.Int64
	// Paper-level simulation counters for the schedules actually served:
	// Send_Signal issues, wait-stall cycles, and the LBD/LFD split of the
	// synchronization arcs (the paper's LBD loop theorem quantities).
	signals, stallCycles, lbdArcs, lfdArcs atomic.Int64
	// Machine-level utilization counters, accumulated from the traced
	// simulations of served schedules when the batch runs with
	// Options.Utilization: processor-cycle totals split by attributed
	// cause, and issue-slot totals split by the static reason each empty
	// slot stayed empty.
	simCyclesIssued, simCyclesSyncWait, simCyclesWindowWait, simCyclesDrain atomic.Int64
	simSlotsTotal, simSlotsUsed                                             atomic.Int64
	simEmptyRAW, simEmptyFUBusy, simEmptyWidth, simEmptyDrain               atomic.Int64
	// cache, when attached, supplies occupancy and eviction gauges to
	// snapshots.
	cache atomic.Pointer[Cache]
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// stage returns the named stage's counters, registering it on first use.
func (m *Metrics) stage(name string) *stageMetrics {
	m.mu.RLock()
	s := m.stages[name]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.stages[name]; s != nil {
		return s
	}
	if m.stages == nil {
		m.stages = map[string]*stageMetrics{}
	}
	s = &stageMetrics{}
	m.stages[name] = s
	return s
}

// Observe records one completed execution of the named stage.
func (m *Metrics) Observe(name string, d time.Duration) {
	s := m.stage(name)
	s.count.Add(1)
	ns := d.Nanoseconds()
	s.totalNS.Add(ns)
	for {
		old := s.maxNS.Load()
		if ns <= old || s.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	b := len(bucketBounds)
	for i, bound := range bucketBounds {
		if d < bound {
			b = i
			break
		}
	}
	s.buckets[b].Add(1)
}

// Error records a failed execution of the named stage.
func (m *Metrics) Error(name string) { m.stage(name).errs.Add(1) }

// ObservePass implements passes.Tracer.
func (m *Metrics) ObservePass(name string, d time.Duration) { m.Observe(name, d) }

// PassError implements passes.Tracer.
func (m *Metrics) PassError(name string) { m.Error(name) }

// PassPanic records a panic recovered inside the named compilation pass (an
// optional extension of passes.Tracer the pass manager probes for).
func (m *Metrics) PassPanic(string) { m.Panic() }

// CacheHit records a schedule-cache hit.
func (m *Metrics) CacheHit() { m.hits.Add(1) }

// CacheMiss records a schedule-cache miss.
func (m *Metrics) CacheMiss() { m.misses.Add(1) }

// Panic records a recovered panic (worker- or pass-level).
func (m *Metrics) Panic() { m.panics.Add(1) }

// Timeout records a request lost to a deadline or cancellation.
func (m *Metrics) Timeout() { m.timeouts.Add(1) }

// Fallback records a request served by the verified program-order fallback
// schedule instead of the synchronization-aware one.
func (m *Metrics) Fallback() { m.fallbacks.Add(1) }

// Verified records one schedule set accepted by the independent
// post-schedule verifier.
func (m *Metrics) Verified() { m.verified.Add(1) }

// Rejected records one schedule set the independent post-schedule verifier
// refused to serve.
func (m *Metrics) Rejected() { m.rejected.Add(1) }

// LintFindings records n synchronization-linter findings from one fresh
// compilation (cache hits share the original compilation's findings and are
// not recounted).
func (m *Metrics) LintFindings(n int64) { m.lintFindings.Add(n) }

// ObserveDeps records the dependence-analysis verdict counts of one fresh
// compilation (cache hits share the original compilation's analysis and are
// not recounted).
func (m *Metrics) ObserveDeps(exact, independent, conservative int64) {
	m.depExact.Add(exact)
	m.depIndependent.Add(independent)
	m.depConservative.Add(conservative)
}

// WorkerStart marks a request entering a worker; WorkerDone its exit.
func (m *Metrics) WorkerStart() { m.inFlight.Add(1) }

// WorkerDone marks a request leaving a worker.
func (m *Metrics) WorkerDone() { m.inFlight.Add(-1) }

// QueueAdd adjusts the queued-request gauge by delta (positive when a batch
// enqueues its requests, -1 as each is handed to a worker).
func (m *Metrics) QueueAdd(delta int64) { m.queueDepth.Add(delta) }

// ObserveSim records the paper-level counters of one served result: signals
// sent and wait-stall cycles from the simulator, and the schedule's LBD/LFD
// synchronization-arc split.
func (m *Metrics) ObserveSim(signals, stalls, lbd, lfd int64) {
	m.signals.Add(signals)
	m.stallCycles.Add(stalls)
	m.lbdArcs.Add(lbd)
	m.lfdArcs.Add(lfd)
}

// ObserveUtil folds one machine-level utilization report (the served
// schedule's traced simulation) into the aggregate machine counters. A nil
// report — an untraced batch, or a cache hit recorded without tracing — is
// a no-op.
func (m *Metrics) ObserveUtil(u *sim.Utilization) {
	if u == nil {
		return
	}
	m.simCyclesIssued.Add(int64(u.IssuedCycles))
	m.simCyclesSyncWait.Add(int64(u.SyncWaitCycles))
	m.simCyclesWindowWait.Add(int64(u.WindowWaitCycles))
	m.simCyclesDrain.Add(int64(u.DrainCycles))
	m.simSlotsTotal.Add(int64(u.SlotsTotal))
	m.simSlotsUsed.Add(int64(u.SlotsIssued))
	m.simEmptyRAW.Add(int64(u.EmptyRAW))
	m.simEmptyFUBusy.Add(int64(u.EmptyFUBusy))
	m.simEmptyWidth.Add(int64(u.EmptyWidth))
	m.simEmptyDrain.Add(int64(u.EmptyDrain))
}

// AttachCache points snapshots at the batch's schedule cache, whose
// occupancy and eviction count then appear as gauges in Stats.
func (m *Metrics) AttachCache(c *Cache) {
	if c != nil {
		m.cache.Store(c)
	}
}

// timed runs f, records its latency under the named stage, and counts an
// error if f reports one.
func (m *Metrics) timed(name string, f func() error) error {
	start := time.Now()
	err := f()
	m.Observe(name, time.Since(start))
	if err != nil {
		m.Error(name)
	}
	return err
}

// StageStats is a point-in-time snapshot of one stage.
type StageStats struct {
	Stage  string
	Count  int64
	Errors int64
	Total  time.Duration
	Max    time.Duration
	// Buckets[i] counts executions with latency below bucketBounds[i]
	// (the last bucket is the overflow).
	Buckets [numBuckets]int64
}

// Mean returns the average latency, 0 when nothing ran.
func (s StageStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// bucketEdges returns the latency range bucket i covers, using max as the
// overflow bucket's upper edge. The first bucket's lower edge is a decade
// below its bound, matching the log-spaced bucket layout.
func bucketEdges(i int, max time.Duration) (lo, hi time.Duration) {
	switch {
	case i == 0:
		return bucketBounds[0] / 10, bucketBounds[0]
	case i < len(bucketBounds):
		return bucketBounds[i-1], bucketBounds[i]
	default:
		lo = bucketBounds[len(bucketBounds)-1]
		if max > lo {
			return lo, max
		}
		return lo, lo
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) of the stage's latency
// distribution by log-linear interpolation inside the bucket containing the
// target rank: the buckets are decade-spaced, so latency is interpolated on
// a log scale between the bucket's edges. The overflow bucket interpolates
// up to the observed maximum. Returns 0 when the stage never ran.
func (s StageStats) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i := 0; i < numBuckets; i++ {
		c := float64(s.Buckets[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank || i == numBuckets-1 {
			lo, hi := bucketEdges(i, s.Max)
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if lo <= 0 || hi <= lo {
				return hi
			}
			v := math.Exp(math.Log(float64(lo)) + frac*(math.Log(float64(hi))-math.Log(float64(lo))))
			return time.Duration(v)
		}
		cum += c
	}
	return s.Max
}

// Stats is a consistent-enough snapshot of a Metrics registry (each counter
// is read atomically; the set is not a transaction, which is fine for
// monitoring).
type Stats struct {
	// Stages holds one snapshot per observed stage: compilation passes in
	// pipeline order, then schedule and simulate.
	Stages                 []StageStats
	CacheHits, CacheMisses int64
	// Panics counts recovered panics, Timeouts counts requests lost to
	// deadlines or cancellation, Fallbacks counts requests served by the
	// verified program-order fallback schedule.
	Panics, Timeouts, Fallbacks int64
	// Verified and Rejected count schedule sets the independent verifier
	// (internal/check) accepted respectively refused before serving;
	// LintFindings counts synchronization-linter findings across fresh
	// compilations.
	Verified, Rejected, LintFindings int64
	// Dependence-analysis verdicts across fresh compilations: reference pairs
	// proven exact, proven independent, and assumed conservative.
	DepExact, DepIndependent, DepConservative int64
	// InFlight and QueueDepth are point-in-time gauges: requests inside a
	// worker and requests enqueued but not yet picked up.
	InFlight, QueueDepth int64
	// CacheEntries and CacheEvictions are gauges of the attached schedule
	// cache (0 when no cache was attached; evictions stay 0 on an
	// unbounded cache).
	CacheEntries, CacheEvictions int64
	// Paper-level counters over the served results: Send_Signal issues and
	// wait-stall cycles from the simulator, and the LBD/LFD split of the
	// synchronization arcs.
	SignalsSent, WaitStallCycles int64
	LBDArcs, LFDArcs             int64
	// Machine-level utilization totals (zero unless utilization tracing
	// was enabled): processor cycles by attributed cause and issue slots
	// by static empty-slot reason, summed over served schedules.
	MachineCyclesIssued, MachineCyclesSyncWait  int64
	MachineCyclesWindowWait, MachineCyclesDrain int64
	MachineSlotsTotal, MachineSlotsUsed         int64
	MachineEmptyRAW, MachineEmptyFUBusy         int64
	MachineEmptyIssueWidth, MachineEmptyDrain   int64
}

// Stats snapshots the registry.
func (m *Metrics) Stats() Stats {
	m.mu.RLock()
	names := make([]string, 0, len(m.stages))
	snap := make(map[string]*stageMetrics, len(m.stages))
	for name, s := range m.stages {
		names = append(names, name)
		snap[name] = s
	}
	m.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool {
		ri, rj := stageRank(names[i]), stageRank(names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	var out Stats
	for _, name := range names {
		s := snap[name]
		ss := StageStats{
			Stage:  name,
			Count:  s.count.Load(),
			Errors: s.errs.Load(),
			Total:  time.Duration(s.totalNS.Load()),
			Max:    time.Duration(s.maxNS.Load()),
		}
		for b := 0; b < numBuckets; b++ {
			ss.Buckets[b] = s.buckets[b].Load()
		}
		out.Stages = append(out.Stages, ss)
	}
	out.CacheHits = m.hits.Load()
	out.CacheMisses = m.misses.Load()
	out.Panics = m.panics.Load()
	out.Timeouts = m.timeouts.Load()
	out.Fallbacks = m.fallbacks.Load()
	out.Verified = m.verified.Load()
	out.Rejected = m.rejected.Load()
	out.LintFindings = m.lintFindings.Load()
	out.DepExact = m.depExact.Load()
	out.DepIndependent = m.depIndependent.Load()
	out.DepConservative = m.depConservative.Load()
	out.InFlight = m.inFlight.Load()
	out.QueueDepth = m.queueDepth.Load()
	out.SignalsSent = m.signals.Load()
	out.WaitStallCycles = m.stallCycles.Load()
	out.LBDArcs = m.lbdArcs.Load()
	out.LFDArcs = m.lfdArcs.Load()
	out.MachineCyclesIssued = m.simCyclesIssued.Load()
	out.MachineCyclesSyncWait = m.simCyclesSyncWait.Load()
	out.MachineCyclesWindowWait = m.simCyclesWindowWait.Load()
	out.MachineCyclesDrain = m.simCyclesDrain.Load()
	out.MachineSlotsTotal = m.simSlotsTotal.Load()
	out.MachineSlotsUsed = m.simSlotsUsed.Load()
	out.MachineEmptyRAW = m.simEmptyRAW.Load()
	out.MachineEmptyFUBusy = m.simEmptyFUBusy.Load()
	out.MachineEmptyIssueWidth = m.simEmptyWidth.Load()
	out.MachineEmptyDrain = m.simEmptyDrain.Load()
	if c := m.cache.Load(); c != nil {
		out.CacheEntries = int64(c.Len())
		out.CacheEvictions = c.Evictions()
	}
	return out
}

// HitRate returns the cache hit fraction in [0, 1], 0 when the cache was
// never consulted.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stage returns the snapshot of the named stage, or a zero snapshot.
func (s Stats) Stage(name string) StageStats {
	for _, st := range s.Stages {
		if st.Stage == name {
			return st
		}
	}
	return StageStats{}
}

// Quantile estimates the q-quantile of the named stage's latency
// distribution from its buckets (see StageStats.Quantile); 0 when the stage
// never ran.
func (s Stats) Quantile(stage string, q float64) time.Duration {
	return s.Stage(stage).Quantile(q)
}

// CompileTime sums the latency of every stage that is a compilation pass
// (everything except schedule and simulate) — the old coarse "compile"
// stage's total, derivable from the per-pass buckets.
func (s Stats) CompileTime() time.Duration {
	var total time.Duration
	for _, st := range s.Stages {
		if st.Stage == StageSchedule || st.Stage == StageVerify || st.Stage == StageSimulate {
			continue
		}
		total += st.Total
	}
	return total
}

// String renders a monitoring report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
		s.CacheHits, s.CacheMisses, 100*s.HitRate())
	if s.CacheEntries > 0 || s.CacheEvictions > 0 {
		fmt.Fprintf(&sb, "cache: %d entries resident, %d evicted\n",
			s.CacheEntries, s.CacheEvictions)
	}
	if s.Panics+s.Timeouts+s.Fallbacks > 0 {
		fmt.Fprintf(&sb, "faults: %d panics recovered, %d timeouts, %d fallbacks\n",
			s.Panics, s.Timeouts, s.Fallbacks)
	}
	if s.Verified+s.Rejected+s.LintFindings > 0 {
		fmt.Fprintf(&sb, "verify: %d schedule sets verified, %d rejected, %d lint findings\n",
			s.Verified, s.Rejected, s.LintFindings)
	}
	if s.DepExact+s.DepIndependent+s.DepConservative > 0 {
		fmt.Fprintf(&sb, "deps: %d exact, %d independent, %d conservative\n",
			s.DepExact, s.DepIndependent, s.DepConservative)
	}
	if s.SignalsSent+s.WaitStallCycles+s.LBDArcs+s.LFDArcs > 0 {
		fmt.Fprintf(&sb, "sync: %d signals sent, %d wait-stall cycles, arcs %d LBD / %d LFD\n",
			s.SignalsSent, s.WaitStallCycles, s.LBDArcs, s.LFDArcs)
	}
	if s.MachineSlotsTotal > 0 {
		fmt.Fprintf(&sb, "machine: %d/%d issue slots used (%.1f%%), cycles %d issued / %d sync / %d window / %d drain\n",
			s.MachineSlotsUsed, s.MachineSlotsTotal,
			100*float64(s.MachineSlotsUsed)/float64(s.MachineSlotsTotal),
			s.MachineCyclesIssued, s.MachineCyclesSyncWait,
			s.MachineCyclesWindowWait, s.MachineCyclesDrain)
	}
	for _, st := range s.Stages {
		fmt.Fprintf(&sb, "%-10s %6d runs, %3d errors, mean %9v, max %9v, total %9v\n",
			st.Stage, st.Count, st.Errors, st.Mean().Round(time.Microsecond),
			st.Max.Round(time.Microsecond), st.Total.Round(time.Microsecond))
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(&sb, "           p50 %9v, p95 %9v, p99 %9v\n",
			st.Quantile(0.50).Round(time.Microsecond),
			st.Quantile(0.95).Round(time.Microsecond),
			st.Quantile(0.99).Round(time.Microsecond))
		sb.WriteString("           latency:")
		for b := 0; b < numBuckets; b++ {
			if st.Buckets[b] == 0 {
				continue
			}
			fmt.Fprintf(&sb, " %s=%d", bucketLabel(b), st.Buckets[b])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
