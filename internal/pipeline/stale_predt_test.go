package pipeline

import (
	"testing"

	"doacross/internal/model"
)

const staleLoop = `DO I = 3, N
  A(I) = A(I-2) + 1.0
  B(I) = A(I) * 2.0
ENDDO
`

func TestPredictedTCacheStaleness(t *testing.T) {
	cache := NewCache()
	reqs := []Request{
		{Name: "a", Source: staleLoop, N: 100},
		{Name: "b", Source: staleLoop, N: 10},
	}
	b, err := Run(reqs, Options{Cache: cache, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		mr := lr.Machines[0]
		want := model.Predict(mr.Sync, lr.N)
		t.Logf("loop=%s N=%d cacheHit=%v PredictedT=%d want(model.Predict at this N)=%d",
			lr.Name, lr.N, mr.CacheHit, mr.PredictedT, want)
		if mr.PredictedT != want {
			t.Errorf("PredictedT mismatch for %s: got %d want %d", lr.Name, mr.PredictedT, want)
		}
	}
}
