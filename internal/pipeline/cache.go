package pipeline

import (
	"sync"

	"doacross/internal/dfg"
)

// cacheShards is the shard count; keys are SHA-256 outputs, so the first
// byte distributes uniformly.
const cacheShards = 32

// Cache is a sharded, content-addressed schedule cache. Keys are
// dfg.ConfigKey fingerprints: a key determines the full scheduling problem
// (graph content + machine configuration + scheduler options), so two
// computations that produce a value for the same key produce interchangeable
// values. The cache exploits that with first-writer-wins semantics: once a
// key is bound, later Puts return the existing value instead of replacing
// it, so every reader of a key observes one immutable value regardless of
// worker interleaving. A Cache may be shared across batches (and across
// goroutines); the zero value is NOT ready — use NewCache.
type Cache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[dfg.Fingerprint]any
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[dfg.Fingerprint]any)
	}
	return c
}

func (c *Cache) shard(k dfg.Fingerprint) *cacheShard {
	return &c.shards[int(k[0])%cacheShards]
}

// Get returns the value bound to k, if any.
func (c *Cache) Get(k dfg.Fingerprint) (any, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Put binds k to v unless k is already bound, returning the bound value and
// whether it was already present (compare-and-swap publication: the first
// writer wins, later writers adopt the winner's value).
func (c *Cache) Put(k dfg.Fingerprint, v any) (any, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[k]; ok {
		return old, true
	}
	s.m[k] = v
	return v, false
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
