package pipeline

import (
	"sync"
	"sync/atomic"

	"doacross/internal/dfg"
)

// cacheShards is the shard count; keys are SHA-256 outputs, so the first
// byte distributes uniformly.
const cacheShards = 32

// Cache is a sharded, content-addressed schedule cache. Keys are
// dfg.ConfigKey fingerprints: a key determines the full scheduling problem
// (graph content + machine configuration + scheduler options), so two
// computations that produce a value for the same key produce interchangeable
// values. The cache exploits that with first-writer-wins semantics: once a
// key is bound, later Puts return the existing value instead of replacing
// it, so every reader of a key observes one immutable value regardless of
// worker interleaving. A Cache may be shared across batches (and across
// goroutines); the zero value is NOT ready — use NewCache or NewCacheBounded.
type Cache struct {
	shards [cacheShards]cacheShard
	// perShard bounds each shard's entry count (0 = unbounded). Because
	// every cached value is recomputable from its key, eviction is safe: a
	// victim is simply dropped and the next reader recomputes it.
	perShard  int
	evictions atomic.Int64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[dfg.Fingerprint]any
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache { return NewCacheBounded(0) }

// NewCacheBounded returns an empty cache holding at most capacity entries
// (approximately: the bound is enforced per shard). capacity <= 0 means
// unbounded. When a full shard admits a new key, an arbitrary resident entry
// is evicted and counted — cached values are pure functions of their keys,
// so an evicted entry costs only a recompute, never correctness.
func NewCacheBounded(capacity int) *Cache {
	c := &Cache{}
	if capacity > 0 {
		c.perShard = (capacity + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[dfg.Fingerprint]any)
	}
	return c
}

func (c *Cache) shard(k dfg.Fingerprint) *cacheShard {
	return &c.shards[int(k[0])%cacheShards]
}

// Get returns the value bound to k, if any.
func (c *Cache) Get(k dfg.Fingerprint) (any, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Put binds k to v unless k is already bound, returning the bound value and
// whether it was already present (compare-and-swap publication: the first
// writer wins, later writers adopt the winner's value). On a bounded cache,
// admitting a new key to a full shard evicts an arbitrary resident entry
// first.
func (c *Cache) Put(k dfg.Fingerprint, v any) (any, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[k]; ok {
		return old, true
	}
	if c.perShard > 0 && len(s.m) >= c.perShard {
		for victim := range s.m {
			delete(s.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	s.m[k] = v
	return v, false
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Evictions returns how many entries have been evicted by the capacity
// bound (always 0 on an unbounded cache).
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
