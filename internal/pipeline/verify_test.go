package pipeline

// Differential test of the independent schedule verifier against the
// pipeline: every schedule the service emits — list, sync and best, across
// machine shapes, fresh and cached, and degraded under injected faults —
// must pass internal/check's re-derivation of the dependence and
// synchronization constraints. The verifier shares no code with the
// schedulers, so agreement here is a translation-validation result, not a
// tautology.

import (
	"errors"
	"strings"
	"testing"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dlx"
)

// TestDifferentialVerify: the pipeline's verify stage accepts 100% of the
// schedules the schedulers emit over a 200-loop corpus, and the counters
// account for every schedule set exactly.
func TestDifferentialVerify(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	srcs := corpus(n)
	machines := dlx.PaperConfigs()
	b := run(t, srcs, Options{
		Workers:  8,
		Best:     true,
		Machines: machines,
		Metrics:  NewMetrics(),
	})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	sets := 0
	for _, lr := range b.Loops {
		if lr.Degraded() {
			t.Fatalf("%s degraded without fault injection", lr.Name)
		}
		for _, mr := range lr.Machines {
			sets++
			for which, s := range map[string]*core.Schedule{
				"list": mr.List, "sync": mr.Sync, "best": mr.Best,
			} {
				if s == nil {
					t.Fatalf("%s on %s: missing %s schedule", lr.Name, mr.Machine, which)
				}
				if l := check.Verify(s); check.Err(l) != nil {
					t.Errorf("%s on %s: emitted %s schedule rejected by the verifier:\n%s",
						lr.Name, mr.Machine, which, l)
				}
			}
			// The timing audit the pipeline applied must also re-confirm
			// standalone, for both served schedules.
			if err := check.Err(check.VerifyTiming(mr.Sync, mr.SyncTime, lr.N)); err != nil {
				t.Errorf("%s on %s: sync timing audit failed: %v", lr.Name, mr.Machine, err)
			}
			if err := check.Err(check.VerifyTiming(mr.List, mr.ListTime, lr.N)); err != nil {
				t.Errorf("%s on %s: list timing audit failed: %v", lr.Name, mr.Machine, err)
			}
		}
	}
	if b.Stats.Verified != int64(sets) {
		t.Errorf("verified counter = %d, want %d (one per loop × machine)", b.Stats.Verified, sets)
	}
	if b.Stats.Rejected != 0 {
		t.Errorf("rejected counter = %d on an organic batch, want 0", b.Stats.Rejected)
	}
	if b.Stats.Stage(StageVerify).Count != int64(sets) {
		t.Errorf("verify stage ran %d times, want %d", b.Stats.Stage(StageVerify).Count, sets)
	}
}

// TestVerifyRejectionDegrades: an injected verify-stage failure degrades the
// request onto the fallback — which itself passes the verifier — instead of
// failing it, and bumps the rejected counter.
func TestVerifyRejectionDegrades(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == StageVerify {
			return errors.New("synthetic verifier rejection")
		}
		return nil
	}
	b := run(t, []string{fig1, fig1}, Options{Best: true, FaultHook: hook, Metrics: NewMetrics()})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		mr := lr.Machines[0]
		if !mr.Degraded || !strings.Contains(mr.DegradedReason, "synthetic verifier rejection") {
			t.Fatalf("%s not degraded by the verify stage: %+q", lr.Name, mr.DegradedReason)
		}
		if mr.List != mr.Sync || mr.Best != mr.Sync {
			t.Errorf("%s: degraded result not served by the single fallback", lr.Name)
		}
		if l := check.Verify(mr.Sync); check.Err(l) != nil {
			t.Errorf("%s: served fallback fails the verifier:\n%s", lr.Name, l)
		}
		if mr.SyncTime <= 0 {
			t.Errorf("%s: fallback not simulated: SyncTime = %d", lr.Name, mr.SyncTime)
		}
	}
	if b.Stats.Rejected != int64(len(b.Loops)) {
		t.Errorf("rejected = %d, want %d", b.Stats.Rejected, len(b.Loops))
	}
	if b.Stats.Fallbacks != int64(len(b.Loops)) {
		t.Errorf("fallbacks = %d, want %d", b.Stats.Fallbacks, len(b.Loops))
	}
	if b.Stats.Verified != 0 {
		t.Errorf("verified = %d when every set was rejected, want 0", b.Stats.Verified)
	}
}

// TestVerifyRejectedNotCached: a rejected schedule set is never published —
// the next batch over the same cache recomputes and serves the real,
// verified schedules.
func TestVerifyRejectedNotCached(t *testing.T) {
	cache := NewCache()
	hook := func(stage, name string) error {
		if stage == StageVerify {
			return errors.New("transient verifier rejection")
		}
		return nil
	}
	b1, err := Run([]Request{{Source: fig1}}, Options{Cache: cache, FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Loops[0].Degraded() {
		t.Fatal("first batch not degraded")
	}
	b2, err := Run([]Request{{Source: fig1}}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	lr := b2.Loops[0]
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	if lr.Degraded() {
		t.Error("rejected entry leaked through the cache")
	}
	if n := b2.Stats.Stage(StageSchedule).Count; n != 1 {
		t.Errorf("second batch ran schedule %d times, want 1 (recompute after rejection)", n)
	}
}

// TestLintFindingsSurfaced: loops whose synchronization placement the linter
// flags carry the findings on the result, and the counter sums them across
// fresh compilations only.
func TestLintFindingsSurfaced(t *testing.T) {
	// The compiler-inserted sync of these corpus loops is clean; an explicit
	// DOACROSS with a dead send and an always-satisfied wait is not.
	messy := `DOACROSS I = 1, N
  Send_Signal(S1)
  S1: A[I] = A[I-1] + 1
  Wait_Signal(S1, I-1)
  S2: B[I] = A[I] * 2
ENDDO`
	cache := NewCache()
	b := run(t, []string{fig1, messy}, Options{Cache: cache, Metrics: NewMetrics()})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(b.Loops[0].Lint) != 0 {
		t.Errorf("clean loop carries lint findings:\n%s", b.Loops[0].Lint)
	}
	if len(b.Loops[1].Lint) == 0 {
		t.Error("messy loop carries no lint findings")
	}
	if want := int64(len(b.Loops[1].Lint)); b.Stats.LintFindings != want {
		t.Errorf("lint counter = %d, want %d", b.Stats.LintFindings, want)
	}
	// A cache hit shares the findings without recounting them.
	b2 := run(t, []string{messy}, Options{Cache: cache, Metrics: NewMetrics()})
	if len(b2.Loops[0].Lint) == 0 {
		t.Error("cached compilation lost its lint findings")
	}
	if b2.Stats.LintFindings != 0 {
		t.Errorf("cache hit recounted %d lint findings", b2.Stats.LintFindings)
	}
}
