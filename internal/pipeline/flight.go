package pipeline

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"
	"time"

	"doacross/internal/dfg"
)

// RequestKey fingerprints the complete scheduling problem one request poses
// under opt: the loop source, the compile options, the scheduler options
// (backend included), the machines, the trip count and the simulation
// window. Two requests with equal keys are guaranteed interchangeable — the
// pipeline would compute byte-identical results for both — which makes the
// key the content address concurrent identical requests coalesce on
// (Group) and the daemon's response-identity.
func RequestKey(req Request, opt Options) dfg.Fingerprint {
	n := req.N
	if n == 0 {
		n = opt.n()
	}
	h := sha256.New()
	io.WriteString(h, "request\x00")
	io.WriteString(h, opt.compileSalt())
	io.WriteString(h, "\x00")
	io.WriteString(h, opt.salt())
	fmt.Fprintf(h, "\x00n=%d w=%d x=%s\x00", n, opt.Window, opt.exactSalt(n))
	for _, m := range opt.machines() {
		fmt.Fprintf(h, "m=%+v\x00", m)
	}
	src := req.Source
	if req.Loop != nil {
		src = req.Loop.String()
	}
	io.WriteString(h, src)
	var fp dfg.Fingerprint
	h.Sum(fp[:0])
	return fp
}

// Group coalesces concurrent identical computations by content-addressed
// key: among callers that Do the same key at the same time, exactly one
// (the leader) runs the function; the rest (followers) wait for its result.
// This is the homegrown singleflight of the scheduling daemon, with one
// addition the stock pattern lacks — per-flight deadline inheritance:
//
//   - The flight runs under its own context, detached from the leader's
//     cancellation: a leader whose client disconnects does not strand the
//     followers still waiting.
//   - The flight's deadline is the LATEST deadline among everyone who
//     joined (a joiner with no deadline lifts the bound entirely), extended
//     live as followers arrive. The flight works exactly as long as anyone
//     who asked for the result is still entitled to wait for it.
//   - Every caller waits under its OWN context: a follower with a short
//     timeout gets its deadline error on time even while the flight keeps
//     running for the others. A slow leader never strands followers past
//     their own timeouts.
//   - When the last waiter abandons, the flight is cancelled: nobody wants
//     the result anymore.
//
// The zero value is ready. All methods are safe for concurrent use.
type Group struct {
	mu      sync.Mutex
	flights map[dfg.Fingerprint]*flight
}

type flight struct {
	g    *Group
	key  dfg.Fingerprint
	done chan struct{}
	val  any
	err  error

	// The flight owns its detached context: it must outlive the leader
	// (followers keep the computation alive, extending the deadline), so it
	// cannot be threaded through any single caller's chain.
	ctx    context.Context //schedvet:allow flight-scoped context by design
	cancel context.CancelFunc

	mu        sync.Mutex
	waiters   int
	unbounded bool
	deadline  time.Time
	timer     *time.Timer
}

// Do returns the result of fn for key, coalescing with any in-flight
// computation of the same key. coalesced reports that this caller joined a
// flight another caller leads — the daemon's "duplicate work avoided"
// counter is the number of Do calls that return coalesced=true. fn runs
// under the flight's own context (see Group); err is either fn's error,
// shared by everyone who waited it out, or this caller's own ctx error if
// its context expired first.
func (g *Group) Do(ctx context.Context, key dfg.Fingerprint, fn func(context.Context) (any, error)) (v any, err error, coalesced bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.join(ctx)
		g.mu.Unlock()
		v, err = f.wait(ctx)
		return v, err, true
	}
	if g.flights == nil {
		g.flights = make(map[dfg.Fingerprint]*flight)
	}
	f := &flight{g: g, key: key, done: make(chan struct{}), waiters: 1}
	f.ctx, f.cancel = context.WithCancel(context.WithoutCancel(ctx))
	f.extendDeadline(ctx)
	g.flights[key] = f
	g.mu.Unlock()
	go f.run(fn)
	v, err = f.wait(ctx)
	return v, err, false
}

// Stats reports the live flights and the callers currently waiting on them
// (leaders included) — the daemon's coalescing gauges, and what the
// deterministic coalescing tests poll to know every concurrent duplicate
// has joined before releasing the leader.
func (g *Group) Stats() (flights, waiters int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, f := range g.flights {
		f.mu.Lock()
		flights++
		waiters += f.waiters
		f.mu.Unlock()
	}
	return flights, waiters
}

// run executes fn and publishes the outcome. The flight is removed from the
// group before done is closed, so a request arriving after completion
// starts a fresh flight instead of reading a stale one.
func (f *flight) run(fn func(context.Context) (any, error)) {
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("pipeline: flight panicked: %v", r)
		}
		f.mu.Lock()
		if f.timer != nil {
			f.timer.Stop()
		}
		f.mu.Unlock()
		f.cancel()
		f.g.mu.Lock()
		delete(f.g.flights, f.key)
		f.g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn(f.ctx)
}

// join registers one more waiter and inherits its deadline.
func (f *flight) join(ctx context.Context) {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
	f.extendDeadline(ctx)
}

// extendDeadline widens the flight's deadline to cover ctx's: the latest
// joined deadline wins, and a joiner with no deadline lifts the bound.
func (f *flight) extendDeadline(ctx context.Context) {
	d, ok := ctx.Deadline()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unbounded {
		return
	}
	if !ok {
		f.unbounded = true
		if f.timer != nil {
			f.timer.Stop()
		}
		return
	}
	if !d.After(f.deadline) && !f.deadline.IsZero() {
		return
	}
	f.deadline = d
	if f.timer == nil {
		f.timer = time.AfterFunc(time.Until(d), f.expire)
	} else {
		f.timer.Reset(time.Until(d))
	}
}

// expire fires when the flight's inherited deadline passes; a deadline
// extended after the timer was armed re-arms instead of cancelling.
func (f *flight) expire() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unbounded {
		return
	}
	if remaining := time.Until(f.deadline); remaining > 0 {
		f.timer.Reset(remaining)
		return
	}
	f.cancel()
}

// wait blocks until the flight completes or the caller's own context
// expires. An abandoning caller decrements the waiter count; the last one
// out cancels the flight.
func (f *flight) wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		f.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		f.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}
